package setagree_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example main and checks its
// key output line, protecting the runnable documentation from rot.
// Requires the go toolchain on PATH (skipped otherwise and in -short).
func TestExamplesRun(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("examples build subprocesses")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "agreement holds"},
		{"dacsolver", "all three executions satisfied"},
		{"separation", "Conclusion (Corollary 6.6)"},
		{"universalqueue", "every value dequeued exactly once"},
		{"bivalency", "engine behind every impossibility result"},
		{"resilience", "nobody waited for it"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+tc.dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("example %s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}

// Benchmarks for the experiment suite of EXPERIMENTS.md. The paper has
// no empirical tables (it is a theory paper); these benches are the
// synthetic-performance experiment E12 plus one bench per experiment
// family, so every row of the experiment index is regenerable with
//
//	go test -bench=. -benchmem
package setagree_test

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"testing"

	"setagree"
	"setagree/internal/core"
	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/history"
	"setagree/internal/lincheck"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/power"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/spec"
	"setagree/internal/store"
	"setagree/internal/task"
	"setagree/internal/universal"
	"setagree/internal/value"
)

// --- E1: object operation throughput -------------------------------

// BenchmarkPACProposeDecide measures one propose/decide pair on an
// n-PAC object (the §3 pairing discipline), sequentially.
func BenchmarkPACProposeDecide(b *testing.B) {
	for _, n := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := setagree.NewPAC(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := d.Propose(1, 1); err != nil {
					b.Fatal(err)
				}
				if _, err := d.Decide(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPACContention measures the pairing discipline under real
// goroutine contention (each goroutine uses its own label).
func BenchmarkPACContention(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			d := setagree.NewPAC(procs)
			b.ReportAllocs()
			b.SetParallelism(procs)
			var ctr int64
			var mu sync.Mutex
			label := func() int {
				mu.Lock()
				defer mu.Unlock()
				ctr++
				return int(ctr-1)%procs + 1
			}
			b.RunParallel(func(pb *testing.PB) {
				i := label()
				for pb.Next() {
					if err := d.Propose(setagree.Value(i), i); err != nil {
						b.Fatal(err)
					}
					if _, err := d.Decide(i); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkObjectOps measures a single operation on each object type.
func BenchmarkObjectOps(b *testing.B) {
	b.Run("register-write", func(b *testing.B) {
		r := setagree.NewRegister()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Write(setagree.Value(i))
		}
	})
	b.Run("consensus-propose", func(b *testing.B) {
		// Exhausted consensus objects answer ⊥ in O(1); re-use one.
		c := setagree.NewConsensus(1 << 30)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Propose(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("2sa-propose", func(b *testing.B) {
		s := setagree.NewTwoSA()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Propose(setagree.Value(i & 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pacm-proposec", func(b *testing.B) {
		o := setagree.NewPACM(4, 1<<30)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := o.ProposeC(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("oprime-propose-k2", func(b *testing.B) {
		o := setagree.NewOPrime(2, core.SequenceFunc(func(int) int { return setagree.Unbounded }))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := o.Propose(setagree.Value(i&1), 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E2: Algorithm 2 ------------------------------------------------

// BenchmarkRunDACLive measures a complete live n-DAC execution
// (goroutine spawn + Algorithm 2 + join).
func BenchmarkRunDACLive(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inputs := make([]setagree.Value, n)
			inputs[0] = 1
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := setagree.RunDAC(n, 1, inputs, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimDAC measures one simulated Algorithm 2 run under a seeded
// random schedule (deterministic work per iteration).
func BenchmarkSimDAC(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prot := programs.Algorithm2(n, 1)
			inputs := sim.Inputs(n, 1, 0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := prot.System(inputs)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.Random(uint64(i+1)),
					sim.Options{MaxSteps: 1 << 14})
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation != nil {
					b.Fatal(res.Violation)
				}
			}
		})
	}
}

// BenchmarkModelCheckDAC measures exhaustive verification of Theorem
// 4.1 (the state space growth is the real measurement; states/op and
// obs-derived states/sec are reported as custom metrics). The largest
// instance adds the -workers dimension: the level-synchronized
// parallel BFS produces a byte-identical Report at every setting, so
// the workers=N rows measure pure speedup. The symmetry=MODE rows add
// the orbit-reduction dimension at workers=1: the verdict is the same,
// but the reduced rows intern orbit representatives only, so "states"
// shrinks by up to the group order while each interned state pays the
// canonicalization minimum over the group (allocs/op measures the
// per-shard key-scratch pooling).
func BenchmarkModelCheckDAC(b *testing.B) {
	workerCounts := []int{1, 2, 4}
	if max := runtime.GOMAXPROCS(0); max > 4 {
		workerCounts = append(workerCounts, max)
	}
	for _, n := range []int{2, 3, 4} {
		ws := []int{1}
		if n == 4 {
			ws = workerCounts
		}
		for _, w := range ws {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, w), func(b *testing.B) {
				benchModelCheckDAC(b, n, sim.Inputs(n, 1, 0), w, explore.SymmetryOff)
			})
		}
	}
	// The symmetry rows use the canonical input vector 1,0,…,0 (the
	// CLI's default), whose n-1 zero-input processes give the largest
	// admissible group; sim.Inputs' cycling vector would cut it to 2.
	canonical := make([]value.Value, 4)
	canonical[0] = 1
	for _, mode := range []explore.Symmetry{explore.SymmetryOff, explore.SymmetryIDs} {
		b.Run(fmt.Sprintf("n=4/symmetry=%s", mode), func(b *testing.B) {
			benchModelCheckDAC(b, 4, canonical, 1, mode)
		})
	}
	// The checkpoint rows measure durable-run overhead: the same
	// exploration with snapshots written atomically to a throwaway file
	// at every level and at every 4th level. n=7 is the smallest
	// instance big enough to be representative — checkpointing exists
	// for long runs, and on tiny graphs the per-snapshot write+fsync
	// latency (~10ms here) swamps the levels between snapshots.
	// BENCH_checkpoint.json (make bench-json) takes its overhead figure
	// from the in-run ckpt_frac metric (snapshot-write ns over wall
	// time, from the explorer's own counters); the target is
	// ckpt_frac < 5% at every=4. The checkpoint=off row stays as a raw
	// ns/op reference, not the denominator of the target.
	for _, every := range []int{0, 1, 4} {
		name := "off"
		if every > 0 {
			name = fmt.Sprint(every)
		}
		every := every
		b.Run(fmt.Sprintf("n=7/checkpoint=%s", name), func(b *testing.B) {
			ckpt := explore.CheckpointOptions{}
			if every > 0 {
				ckpt = explore.CheckpointOptions{Path: b.TempDir() + "/bench.ckpt", EveryLevels: every}
			}
			benchModelCheckDACCkpt(b, 7, sim.Inputs(7, 1, 0), 1, explore.SymmetryOff, ckpt)
		})
	}
	// The store rows compare the in-memory engine against the disk-backed
	// out-of-core store (internal/store) on the same n=7 instance. The
	// disk row runs under a 1.5 GiB live-heap budget — exceeding it would
	// fail the row, so a passing run is itself the acceptance evidence —
	// and both rows report report_fp, an FNV-32a fingerprint of the
	// verdict counts, which must agree between the engines (full
	// byte-identity, including DOT and event streams, is pinned by
	// TestDiskStoreReportEquivalence). BENCH_store.json (make bench-json)
	// snapshots these rows; the spill volume shows up as spilled_mb and
	// the observed heap high-water mark as heap_max_mb.
	for _, disk := range []bool{false, true} {
		name := "mem"
		so := store.Options{}
		if disk {
			name = "disk"
			so = store.Options{Dir: b.TempDir(), Budget: 3 << 29} // 1.5 GiB
		}
		b.Run(fmt.Sprintf("n=7/store=%s", name), func(b *testing.B) {
			benchModelCheckDACStore(b, 7, sim.Inputs(7, 1, 0), so)
		})
	}
	// The obs rows measure the instrumentation tax directly: the same
	// n=7 instance with metrics disabled (nil sink — every counter,
	// gauge, and histogram handle is a nil no-op) and enabled (a live
	// sink, whose per-level explore.level_ns histogram is the heaviest
	// hook added for the dacd ops surface). BENCH_obs.json (make
	// bench-json) takes the min ns/op over -count runs per row and
	// requires the on-vs-off delta under 2%; the on row also exports
	// the histogram's quantiles, which verify's schema gate checks.
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		on := on
		b.Run(fmt.Sprintf("n=7/obs=%s", name), func(b *testing.B) {
			benchModelCheckDACObs(b, 7, sim.Inputs(7, 1, 0), on)
		})
	}
}

// benchModelCheckDACObs is the instrumentation-dimension variant: the
// exploration with and without a metrics sink attached, reporting the
// level-latency histogram when instrumented.
func benchModelCheckDACObs(b *testing.B, n int, inputs []value.Value, instrumented bool) {
	prot := programs.Algorithm2(n, 1)
	var sink *obs.Sink // nil disables every obs hook in the engine
	if instrumented {
		sink = obs.NewSink()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := prot.System(inputs)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := explore.Check(sys, task.DAC{N: n, P: 0},
			explore.Options{Obs: sink, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Solved() {
			b.Fatal(rep.Violations[0])
		}
	}
	if instrumented {
		h := sink.Snapshot().Histograms["explore.level_ns"]
		b.ReportMetric(float64(h.Count)/float64(b.N), "levels/op")
		b.ReportMetric(float64(h.P50), "level_p50_ns")
		b.ReportMetric(float64(h.P99), "level_p99_ns")
	}
}

// benchModelCheckDACStore is the store-dimension variant: same
// exploration, optionally through the disk-backed store, with the
// fingerprint and spill metrics described at the call site.
func benchModelCheckDACStore(b *testing.B, n int, inputs []value.Value, so store.Options) {
	prot := programs.Algorithm2(n, 1)
	sink := obs.NewSink()
	var last *explore.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := prot.System(inputs)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := explore.Check(sys, task.DAC{N: n, P: 0},
			explore.Options{Obs: sink, Workers: 1, Store: so})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Solved() {
			b.Fatal(rep.Violations[0])
		}
		if last != nil {
			last.Close()
		}
		last = rep
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%d/%d/%d/%d", last.States, last.Transitions, last.Quiescent, len(last.Violations))
	last.Close()
	b.ReportMetric(float64(h.Sum32()), "report_fp")
	b.ReportMetric(float64(last.States), "states")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(sink.Counter("explore.states").Load())/secs, "states/sec")
	}
	if so.Enabled() {
		b.ReportMetric(float64(sink.Counter("store.spilled_bytes").Load())/float64(b.N)/(1<<20), "spilled_mb")
		b.ReportMetric(float64(sink.Gauge("store.heap_bytes_max").Load())/(1<<20), "heap_max_mb")
	}
}

func benchModelCheckDAC(b *testing.B, n int, inputs []value.Value, workers int, mode explore.Symmetry) {
	benchModelCheckDACCkpt(b, n, inputs, workers, mode, explore.CheckpointOptions{})
}

func benchModelCheckDACCkpt(b *testing.B, n int, inputs []value.Value, workers int, mode explore.Symmetry, ckpt explore.CheckpointOptions) {
	prot := programs.Algorithm2(n, 1)
	sink := obs.NewSink()
	states := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys, err := prot.System(inputs)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := explore.Check(sys, task.DAC{N: n, P: 0},
			explore.Options{Obs: sink, Workers: workers, Symmetry: mode, Checkpoint: ckpt})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Solved() {
			b.Fatal(rep.Violations[0])
		}
		states = rep.States
	}
	b.ReportMetric(float64(states), "states")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(sink.Counter("explore.states").Load())/secs, "states/sec")
	}
	// In-run overhead fraction: nanoseconds spent inside snapshot
	// writes over the run's total wall time, from the explorer's own
	// counters. Unlike a cross-row ns/op differential this needs no
	// baseline row, so it is immune to run-to-run host noise.
	if ckpt.Path != "" {
		if ns := b.Elapsed().Nanoseconds(); ns > 0 {
			b.ReportMetric(float64(sink.Counter("explore.checkpoint_ns").Load())/float64(ns), "ckpt_frac")
			b.ReportMetric(float64(sink.Counter("explore.checkpoint_encode_ns").Load())/float64(ns), "ckpt_enc_frac")
		}
		b.ReportMetric(float64(sink.Counter("explore.checkpoints").Load())/float64(b.N), "ckpts/op")
	}
}

// --- E3: candidate-family falsification ------------------------------

// BenchmarkEnumerateDAC measures the depth-1 Theorem 4.2 sweep across
// worker counts (the -workers dimension: the sweep engine fans the
// candidate model checks out to a goroutine pool with a byte-identical
// Report at every setting, so this measures pure speedup). The sweep's
// obs sink derives candidates/sec and states/sec throughput metrics.
func BenchmarkEnumerateDAC(b *testing.B) {
	fam := &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewRegister(), objects.NewTwoSA()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
			{Obj: 2, Method: value.MethodPropose, Arg: enumerate.ArgInput},
		},
		Depth: 1,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
	vectors := [][]value.Value{{1, 0, 0}, {0, 1, 1}, {0, 0, 0}, {1, 1, 1}}
	workerCounts := []int{1, 2, 4}
	if max := runtime.GOMAXPROCS(0); max > 4 {
		workerCounts = append(workerCounts, max)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sink := obs.NewSink()
			candidates := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := enumerate.FalsifyDAC(fam, 3, vectors, enumerate.SweepOptions{Workers: w, Obs: sink})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Solvers) != 0 {
					b.Fatal("solver found")
				}
				candidates = rep.Candidates
			}
			b.ReportMetric(float64(candidates), "candidates")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(sink.Counter("sweep.candidates").Load())/secs, "candidates/sec")
				b.ReportMetric(float64(sink.Counter("sweep.states").Load())/secs, "states/sec")
			}
		})
	}
}

// --- E5: (n,m)-PAC level --------------------------------------------

// BenchmarkConsensusFromPACM measures exhaustive verification of the
// positive half of Theorem 5.3.
func BenchmarkConsensusFromPACM(b *testing.B) {
	for _, m := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			prot := programs.ConsensusFromPACM(m+1, m, m)
			inputs := sim.Inputs(m, 0, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := prot.System(inputs)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := explore.Check(sys, task.Consensus{N: m}, explore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Solved() {
					b.Fatal(rep.Violations[0])
				}
			}
		})
	}
}

// --- E7: O'_n tasks ---------------------------------------------------

// BenchmarkKSetFromOPrime measures exhaustive verification of the
// level-k task on O'_2 and on the Lemma 6.4 implementation.
func BenchmarkKSetFromOPrime(b *testing.B) {
	const n, k = 2, 2
	procs := k * n
	for _, variant := range []struct {
		name string
		prot programs.Protocol
	}{
		{"abstract", programs.KSetFromOPrime(core.NewOPrime(n, nil), k, procs)},
		{"lemma64-base", programs.KSetFromOPrimeBase(n, k, procs)},
	} {
		b.Run(variant.name, func(b *testing.B) {
			inputs := make([]value.Value, procs)
			for i := range inputs {
				inputs[i] = value.Value(10 + i)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := variant.prot.System(inputs)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := explore.Check(sys, task.KSetAgreement{N: procs, K: k}, explore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Solved() {
					b.Fatal(rep.Violations[0])
				}
			}
		})
	}
}

// --- E9: universal construction --------------------------------------

// BenchmarkUniversalQueue measures one enqueue+dequeue pair through
// Herlihy's construction under goroutine contention.
func BenchmarkUniversalQueue(b *testing.B) {
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			u, err := universal.New(objects.NewQueue(), procs)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			per := b.N/procs + 1
			b.ReportAllocs()
			b.ResetTimer()
			for p := 1; p <= procs; p++ {
				h, err := u.Handle(p)
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func(h *universal.Handle) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if _, err := h.Apply(value.Enqueue(1)); err != nil {
							b.Error(err)
							return
						}
						if _, err := h.Apply(value.Dequeue()); err != nil {
							b.Error(err)
							return
						}
					}
				}(h)
			}
			wg.Wait()
		})
	}
}

// --- E11: valency analysis -------------------------------------------

// BenchmarkValency measures full valence labelling + critical
// configuration detection on Algorithm 2.
func BenchmarkValency(b *testing.B) {
	for _, n := range []int{2, 3} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prot := programs.Algorithm2(n, 1)
			inputs := sim.Inputs(n, 1, 0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := prot.System(inputs)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := explore.Check(sys, task.DAC{N: n, P: 0}, explore.Options{Valency: true})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Valency.Initial.Bivalent() {
					b.Fatal("expected bivalent initial configuration")
				}
			}
		})
	}
}

// --- E10: power arithmetic -------------------------------------------

// BenchmarkPowerTable measures computing a full power table.
func BenchmarkPowerTable(b *testing.B) {
	rows := []power.Sequence{
		power.Consensus(2), power.Consensus(3), power.Consensus(4),
		power.SA(power.Infinite, 2), power.SA(6, 3), power.ObjectO(3),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if power.Table(rows, 8) == "" {
			b.Fatal("empty table")
		}
	}
}

// --- E12: linearizability checking -----------------------------------

// BenchmarkLincheck measures Wing–Gong verification cost against
// history length on concurrent PAC histories.
func BenchmarkLincheck(b *testing.B) {
	for _, events := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			h := recordPACHistory(b, events)
			sp := core.NewPAC(4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lincheck.CheckObject(h, sp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// recordPACHistory produces a concurrent history with the given number
// of completed operations.
func recordPACHistory(b *testing.B, events int) *history.History {
	b.Helper()
	rec := history.NewRecorder()
	obj := rec.Wrap(spec.NewAtomic(core.NewPAC(4), nil), 0)
	var wg sync.WaitGroup
	per := events / 4
	for p := 1; p <= 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := value.ProposeAt(value.Value(p), p)
				if i%2 == 1 {
					op = value.Decide(p)
				}
				if _, err := obj.Apply(p, op); err != nil {
					b.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	return rec.History()
}

// --- Ablations (design-choice benches called out in DESIGN.md) --------

// BenchmarkEnumerateAblation measures what the solo prefilter buys the
// falsification sweep: with the filter on, most doomed shapes die in a
// 64-step probe instead of a full model check per input vector.
func BenchmarkEnumerateAblation(b *testing.B) {
	fam := &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewRegister(), objects.NewTwoSA()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
			{Obj: 2, Method: value.MethodPropose, Arg: enumerate.ArgInput},
		},
		Depth: 1,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
	// All 8 binary vectors: without the solo filter, refutation power
	// must come entirely from the model checks (a constant-deciding
	// shape survives any vector set that misses a unanimous input).
	var vectors [][]value.Value
	for mask := 0; mask < 8; mask++ {
		in := make([]value.Value, 3)
		for i := range in {
			if mask&(1<<uint(i)) != 0 {
				in[i] = 1
			}
		}
		vectors = append(vectors, in)
	}
	for _, disabled := range []bool{false, true} {
		name := "solo-filter-on"
		if disabled {
			name = "solo-filter-off"
		}
		b.Run(name, func(b *testing.B) {
			candidates := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := enumerate.FalsifyDAC(fam, 3, vectors,
					enumerate.SweepOptions{DisableSoloFilter: disabled})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Solvers) != 0 {
					b.Fatal("solver found")
				}
				candidates = rep.Candidates
			}
			b.ReportMetric(float64(candidates), "candidates")
		})
	}
}

// BenchmarkValencyAblation isolates the valency pass: exploring the
// Algorithm 2 graph with and without valence labelling + critical
// detection.
func BenchmarkValencyAblation(b *testing.B) {
	prot := programs.Algorithm2(3, 1)
	inputs := sim.Inputs(3, 1, 0)
	for _, valency := range []bool{false, true} {
		name := "valency-off"
		if valency {
			name = "valency-on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := prot.System(inputs)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{Valency: valency}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: Chaudhuri's resilient protocol ------------------------------

// BenchmarkChaudhuri measures exhaustive verification of the
// (k-1)-resilient k-set agreement protocol from registers.
func BenchmarkChaudhuri(b *testing.B) {
	for _, tc := range []struct{ n, k int }{{2, 2}, {3, 2}, {3, 3}} {
		b.Run(fmt.Sprintf("n=%d,k=%d", tc.n, tc.k), func(b *testing.B) {
			prot := programs.ChaudhuriKSet(tc.n, tc.k)
			inputs := make([]value.Value, tc.n)
			for i := range inputs {
				inputs[i] = value.Value(10 + i)
			}
			tsk := task.ResilientKSet{N: tc.n, K: tc.k, F: tc.k - 1}
			states := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys, err := prot.System(inputs)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := explore.Check(sys, tsk, explore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Solved() {
					b.Fatal(rep.Violations[0])
				}
				states = rep.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// --- E14: safe agreement / BG primitives ------------------------------

// BenchmarkSafeAgreement measures a full propose+resolve round under
// contention.
func BenchmarkSafeAgreement(b *testing.B) {
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sa := setagree.NewSafeAgreement(procs)
				var wg sync.WaitGroup
				for p := 1; p <= procs; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						if err := sa.Propose(p, setagree.Value(p)); err != nil {
							b.Error(err)
						}
					}(p)
				}
				wg.Wait()
				if _, ok := sa.Resolve(); !ok {
					b.Fatal("unresolved after all proposes")
				}
			}
		})
	}
}

# Builds BENCH_obs.json (see Makefile bench-json). Input arrives as
# --rawfile bench: the obs-dimension rows of BenchmarkModelCheckDAC
# (alg2 n=7 at -workers 1, metrics off vs on, -count repetitions of
# each on the identical instance).
#
# The measurement is the instrumentation tax of the live-operations
# surface: the "on" row runs with a full obs.Sink attached — atomic
# counters and gauges flushed once per run, plus the per-level
# explore.level_ns histogram (one clock read + one atomic add per BFS
# level), the heaviest hook the dacd /metrics endpoint relies on. The
# "off" row passes a nil sink, so every handle is a nil no-op — the
# zero-cost-when-disabled claim. The estimator is the minimum ns/op
# across the -count runs of each row (noise-robust on a shared host,
# same methodology as the original BENCH_obs.json sweep measurement);
# the evidence target is an on-vs-off delta under 2%. The on row's
# histogram quantiles ride along as schema evidence that the quantile
# pipeline produces plausible values end to end (verify's bench-schema
# gate checks them without rerunning the bench).

# Row names may carry go test's -GOMAXPROCS suffix on multi-core hosts.
def rows(name):
  $bench | split("\n") | map(select(test("/obs=" + name + "(-\\d+)?\\s")));
def nsops(name):
  rows(name) | map(capture("\\s(?<ns>[0-9.]+) ns/op") | (.ns | tonumber));
def metric(name; m):
  rows(name) | map(capture("\\s(?<v>[0-9.eE+-]+) " + m) | (.v | tonumber)) | max;

(nsops("off") | min) as $off |
(nsops("on") | min) as $on |
(($on - $off) / $off * 100) as $delta |
{
  benchmark: "BenchmarkModelCheckDAC/n=7/obs={off,on}",
  question: "do the obs hooks (atomic counters/gauges flushed once per run, plus the per-level explore.level_ns latency histogram behind /metrics) add measurable cost to an exploration?",
  methodology: "one binary, obs=off (nil sink; all handles nil no-ops) vs obs=on (live sink + level histogram), interleaved by go test -count; min ns/op per row is the noise-robust estimator",
  date: $date,
  workload: "alg2 n=7, -workers 1 (~284k configurations per op)",
  threshold_percent: 2,
  results: [
    { case: "obs=off", min_ns_op: $off, runs_ns_op: nsops("off") },
    { case: "obs=on",  min_ns_op: $on,  runs_ns_op: nsops("on"),
      delta_percent: ($delta * 100 | round / 100) }
  ],
  histogram: {
    level_count_per_op: metric("on"; "levels/op"),
    level_p50_ns: metric("on"; "level_p50_ns"),
    level_p99_ns: metric("on"; "level_p99_ns")
  },
  verdict: (if $delta < 2
    then "PASS — instrumentation delta \($delta * 100 | round / 100)% stays under the 2% budget"
    else "FAIL — instrumentation delta \($delta * 100 | round / 100)% exceeds the 2% budget"
    end),
  raw_rows: ($bench | split("\n") | map(select(contains("/obs="))))
}

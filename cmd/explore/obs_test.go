package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"setagree/internal/obs"
)

// TestMetricsRunReport checks the -metrics flag writes a valid
// obs.RunReport containing the acceptance-criteria minimum: states,
// transitions, wall-clock duration, and throughput rates.
func TestMetricsRunReport(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "metrics.json")
	code, out, errOut := runCLI(t, "-protocol", "alg2", "-n", "3", "-p", "1", "-metrics", path)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "explore" {
		t.Errorf("tool = %q, want explore", rep.Tool)
	}
	if rep.DurationNS <= 0 || rep.DurationSeconds <= 0 {
		t.Errorf("no wall-clock duration recorded: %+v", rep)
	}
	for _, c := range []string{"explore.states", "explore.transitions", "machine.steps"} {
		if rep.Counters[c] <= 0 {
			t.Errorf("counter %s missing or zero: %v", c, rep.Counters)
		}
		if rep.Rates[c+"_per_sec"] <= 0 {
			t.Errorf("rate %s_per_sec missing or zero: %v", c, rep.Rates)
		}
	}
	// The explorer touched every transition through the machine, so the
	// global step counter must agree with the transition counter.
	if rep.Counters["machine.steps"] < rep.Counters["explore.transitions"] {
		t.Errorf("machine.steps (%d) < explore.transitions (%d)",
			rep.Counters["machine.steps"], rep.Counters["explore.transitions"])
	}
}

// TestEventsJSONL checks the -events stream is well-formed JSONL
// bracketed by run.start and run.done.
func TestEventsJSONL(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "events.jsonl")
	code, _, errOut := runCLI(t, "-protocol", "alg2", "-n", "3", "-p", "1", "-events", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("malformed event line %q: %v", sc.Text(), err)
		}
		name, _ := ev["event"].(string)
		names = append(names, name)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("want at least run.start, explore.done, run.done; got %v", names)
	}
	if names[0] != "run.start" || names[len(names)-1] != "run.done" {
		t.Errorf("stream not bracketed by run.start/run.done: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "explore.done" {
			found = true
		}
	}
	if !found {
		t.Errorf("no explore.done event in %v", names)
	}
}

// TestInconclusiveElapsed checks the INCONCLUSIVE (exit 3) path also
// reports wall time and throughput, not just the success path.
func TestInconclusiveElapsed(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-protocol", "alg2", "-n", "3", "-p", "1", "-max-states", "10")
	if code != 3 {
		t.Fatalf("exit %d, want 3\n%s", code, out)
	}
	if !strings.Contains(out, "elapsed:") || !strings.Contains(out, "states/sec") {
		t.Errorf("INCONCLUSIVE path missing elapsed/throughput line:\n%s", out)
	}
}

// TestSuccessElapsed pins the elapsed line on the solved path too.
func TestSuccessElapsed(t *testing.T) {
	t.Parallel()
	code, out, errOut := runCLI(t, "-protocol", "alg2", "-n", "2", "-p", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "elapsed:") || !strings.Contains(out, "states/sec") {
		t.Errorf("solved path missing elapsed/throughput line:\n%s", out)
	}
}

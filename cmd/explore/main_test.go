package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestAlg2Solved(t *testing.T) {
	t.Parallel()
	code, out, errOut := runCLI(t, "-protocol", "alg2", "-n", "3", "-p", "1", "-valency")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"SOLVED", "bivalent", "critical", "3-PAC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestNaiveTwoSARefuted(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-protocol", "naive-2sa", "-inputs", "0,1", "-witness")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REFUTED") {
		t.Errorf("output: %s", out)
	}
	if !strings.Contains(out, "PROPOSE") {
		t.Errorf("witness schedule not printed: %s", out)
	}
}

func TestOversubRefutedWithCycle(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-protocol", "oversub", "-m", "2", "-witness")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "cycle (repeats forever)") {
		t.Errorf("cycle witness missing: %s", out)
	}
}

func TestNamedProtocols(t *testing.T) {
	t.Parallel()
	solved := [][]string{
		{"-protocol", "consensus-pacm", "-n", "3", "-m", "2"},
		{"-protocol", "consensus-direct", "-m", "2"},
		{"-protocol", "partition", "-k", "2", "-m", "2"},
		{"-protocol", "partition-on", "-k", "2", "-n", "2"},
		{"-protocol", "kset-sa", "-n", "4", "-k", "2", "-procs", "3"},
		{"-protocol", "kset-oprime", "-n", "2", "-k", "2"},
		{"-protocol", "kset-oprime-base", "-n", "2", "-k", "2"},
	}
	for _, args := range solved {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			t.Parallel()
			code, out, errOut := runCLI(t, args...)
			if code != 0 {
				t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
			}
		})
	}
	refuted := [][]string{
		{"-protocol", "alg2-upset", "-n", "3", "-p", "1"},
		{"-protocol", "dac-attempt", "-n", "2", "-p", "1", "-inputs", "1,0,0"},
	}
	for _, args := range refuted {
		args := args
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			t.Parallel()
			code, _, _ := runCLI(t, args...)
			if code != 1 {
				t.Fatalf("exit %d, want 1", code)
			}
		})
	}
}

// TestStateLimitInconclusive: hitting -max-states reports the partial
// exploration with a dedicated verdict and exit code instead of a bare
// error, and the printed partial counts are self-consistent.
func TestStateLimitInconclusive(t *testing.T) {
	t.Parallel()
	code, out, errOut := runCLI(t, "-protocol", "alg2", "-n", "3", "-p", "1", "-max-states", "10")
	if code != 3 {
		t.Fatalf("exit %d, want 3\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "INCONCLUSIVE") {
		t.Errorf("verdict missing: %s", out)
	}
	if !strings.Contains(out, "11 configurations") {
		t.Errorf("partial state count missing (want 11 = cap+1): %s", out)
	}
	if strings.Contains(out, " 0 configurations") {
		t.Errorf("partial report lost its state count: %s", out)
	}
}

func TestAsmProtocol(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	src := "invoke r2, obj0, PROPOSE, r0\ndecide r2\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t,
		"-asm", path, "-objects", "consensus:2", "-task", "consensus", "-procs", "2")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "SOLVED") {
		t.Errorf("output: %s", out)
	}

	// The same program run by 3 processes over a 2-consensus object is
	// refuted (the third response is ⊥).
	code, out, _ = runCLI(t,
		"-asm", path, "-objects", "consensus:2", "-task", "consensus", "-procs", "3")
	if code != 1 {
		t.Fatalf("3 procs: exit %d\n%s", code, out)
	}
}

func TestAsmKSetTask(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.s")
	src := "invoke r2, obj0, PROPOSE, r0\ndecide r2\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t,
		"-asm", path, "-objects", "2sa", "-task", "kset:2", "-procs", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}

func TestUsageErrors(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		nil, // neither -protocol nor -asm
		{"-protocol", "warp"},
		{"-protocol", "alg2", "-n", "3", "-inputs", "1,0"},
		{"-asm", "/nonexistent.s", "-objects", "register", "-task", "consensus", "-procs", "2"},
		{"-asm", "x", "-task", "consensus"}, // missing -objects/-procs
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestAdversaryFlag(t *testing.T) {
	t.Parallel()
	code, out, errOut := runCLI(t, "-protocol", "alg2", "-n", "3", "-p", "1", "-adversary")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "BIVALENT FOREVER") {
		t.Errorf("adversary output missing:\n%s", out)
	}
	code, out, _ = runCLI(t, "-protocol", "consensus-pacm", "-n", "3", "-m", "2", "-inputs", "0,1", "-adversary")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "critical configuration") {
		t.Errorf("adversary output missing:\n%s", out)
	}
}

// TestShippedProtocolSamples drives the .s files under
// examples/protocols through the -asm path and pins their documented
// verdicts.
func TestShippedProtocolSamples(t *testing.T) {
	t.Parallel()
	base := "../../examples/protocols/"
	cases := []struct {
		args []string
		exit int
	}{
		{[]string{"-asm", base + "consensus-direct.s", "-objects", "consensus:2", "-task", "consensus", "-procs", "2"}, 0},
		{[]string{"-asm", base + "consensus-direct.s", "-objects", "consensus:2", "-task", "consensus", "-procs", "3"}, 1},
		{[]string{"-asm", base + "kset-2sa.s", "-objects", "2sa", "-task", "kset:2", "-procs", "4"}, 0},
		{[]string{"-asm", base + "pac-retry.s", "-objects", "pac:3", "-task", "consensus", "-procs", "3"}, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.Join(tc.args, " "), func(t *testing.T) {
			t.Parallel()
			code, out, errOut := runCLI(t, tc.args...)
			if code != tc.exit {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.exit, out, errOut)
			}
		})
	}
}

func TestAnnotateFlag(t *testing.T) {
	t.Parallel()
	code, out, _ := runCLI(t, "-protocol", "naive-2sa", "-inputs", "0,1", "-annotate")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "2-SA state:") || !strings.Contains(out, "DECIDES") {
		t.Errorf("annotated output missing:\n%s", out)
	}
}

func TestDotFlag(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "g.dot")
	code, out, errOut := runCLI(t, "-protocol", "alg2", "-n", "2", "-p", "1", "-valency", "-dot", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "wrote configuration graph") {
		t.Errorf("missing confirmation: %s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph configurations") {
		t.Error("DOT file malformed")
	}
}

// Command explore model-checks a protocol exhaustively over every
// schedule and every nondeterministic object response, mechanizing the
// bivalency technique of the paper's proofs (§§4–5): it reports safety
// and termination verdicts with concrete witness schedules, and with
// -valency it labels configurations bivalent/univalent, counts critical
// configurations, and checks the "all processes poised on one object"
// structure (Claims 4.2.7, 5.2.3).
//
// Usage:
//
//	explore -protocol alg2 -n 3 -p 1 [-inputs 1,0,0] [-valency] [-witness] [-workers N]
//	explore -protocol consensus-pacm -n 3 -m 2
//	explore -protocol partition -k 2 -m 2
//	explore -protocol naive-2sa -procs 2
//	explore -protocol oversub -m 2
//	explore -protocol dac-attempt -n 2 -p 1
//	explore -asm prog.s -objects consensus:2,register -task consensus -procs 2
//
// Named protocols: alg2, alg2-upset, alg2-pacm, consensus-pacm,
// consensus-direct, consensus-queue, consensus-tas, partition,
// partition-on, kset-sa, kset-oprime, kset-oprime-base, chaudhuri,
// naive-2sa, oversub, dac-attempt.
//
// Exit status: 0 solved, 1 refuted, 2 usage or internal error, 3
// inconclusive (the -max-states cap was hit; the partial exploration
// counts, elapsed wall time, and states/sec are printed).
//
// Exploration runs a level-synchronized parallel BFS; -workers sets
// the goroutine count (default GOMAXPROCS) and every report, witness
// schedule, valency label, and DOT file is byte-identical at any
// setting. Systems are capped at 64 processes (the Stepped bitmask).
//
// -symmetry ids|values interns one canonical representative per orbit
// of the admissible process (and, for values, input-value) permutation
// group: verdicts are identical to an unreduced run and witnesses stay
// concrete, but the state graph shrinks by up to the group order.
// Incompatible requests are rejected up front: systems whose objects
// or task admit no symmetry (ErrNotSymmetric), and -valency with
// -symmetry values, -adversary, or resilience-bounded liveness under
// any reduction (ErrSymmetryUnsupported).
//
// Observability (shared with every cmd tool; see EXPERIMENTS.md
// "Reading run reports"): -metrics <file> writes the final run-report
// JSON, -events <file> streams JSONL events (explore.heartbeat while
// the search runs, explore.done / explore.statelimit / explore.error
// at the end, all carrying a "workers" field), -cpuprofile /
// -memprofile write pprof profiles.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"setagree/cmd/internal/obsflags"
	"setagree/cmd/internal/specname"
	"setagree/internal/core"
	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/programs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	protocol  string
	asm       string
	objects   string
	taskName  string
	inputsRaw string
	n, m, k   int
	p, procs  int
	valency   bool
	adversary bool
	witness   bool
	annotate  bool
	maxStates int
	workers   int
	symmetry  string
	dotFile   string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.protocol, "protocol", "", "named protocol (see doc)")
	fs.StringVar(&c.asm, "asm", "", "assembly file: one symmetric program for all processes")
	fs.StringVar(&c.objects, "objects", "", "object list for -asm, e.g. consensus:2,register,2sa")
	fs.StringVar(&c.taskName, "task", "", "task for -asm: consensus | kset:K | dac")
	fs.StringVar(&c.inputsRaw, "inputs", "", "comma-separated inputs (default: task-appropriate)")
	fs.IntVar(&c.n, "n", 3, "n parameter (processes / PAC labels)")
	fs.IntVar(&c.m, "m", 2, "m parameter (consensus width)")
	fs.IntVar(&c.k, "k", 2, "k parameter (agreement bound)")
	fs.IntVar(&c.p, "p", 1, "distinguished process (1-based, DAC protocols)")
	fs.IntVar(&c.procs, "procs", 0, "process count override")
	fs.BoolVar(&c.valency, "valency", false, "compute valence labels and critical configurations")
	fs.BoolVar(&c.adversary, "adversary", false, "run the bivalence-preserving adversary (implies -valency)")
	fs.StringVar(&c.dotFile, "dot", "", "write the configuration graph (Graphviz DOT) to this file")
	fs.BoolVar(&c.annotate, "annotate", false, "replay witnesses with object-state annotations (implies -witness)")
	fs.BoolVar(&c.witness, "witness", false, "print full witness schedules")
	fs.IntVar(&c.maxStates, "max-states", 1<<21, "state cap")
	fs.IntVar(&c.workers, "workers", 0, "BFS worker goroutines (0 = GOMAXPROCS; output is byte-identical at any setting)")
	fs.StringVar(&c.symmetry, "symmetry", "off", "symmetry reduction: off | ids | values (intern orbit representatives; verdicts match -symmetry off)")
	obsF := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	symMode, err := explore.ParseSymmetry(c.symmetry)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}

	prot, tsk, inputs, err := buildInstance(&c)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	sys, err := prot.System(inputs)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	sess, err := obsflags.Start("explore", obsF, args)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	defer sess.CloseTo(stderr)

	if c.adversary {
		c.valency = true
	}
	fmt.Fprintf(stdout, "protocol: %s\n", prot.Name)
	fmt.Fprintf(stdout, "task:     %s, inputs %v\n", tsk.Name(), inputs)
	start := time.Now()
	rep, err := explore.Check(sys, tsk, explore.Options{
		Valency:   c.valency,
		MaxStates: c.maxStates,
		Workers:   c.workers,
		Symmetry:  symMode,
		Obs:       sess.Sink,
		Events:    sess.Events,
	})
	elapsed := time.Since(start)
	if errors.Is(err, explore.ErrStateLimit) {
		// The state-limit path prints the same timing diagnostics as a
		// completed run, so state-limit hits are tunable from the output
		// alone (how fast was the search going, how far did it get).
		fmt.Fprintf(stdout, "explored: %d configurations, %d transitions (partial)\n",
			rep.States, rep.Transitions)
		fmt.Fprintf(stdout, "elapsed:  %s (%.0f states/sec)\n",
			elapsed.Round(time.Microsecond), statesPerSec(rep.States, elapsed))
		fmt.Fprintf(stdout, "verdict:  INCONCLUSIVE — %v (raise -max-states)\n", err)
		return 3
	}
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "explored: %d configurations, %d transitions, %d quiescent\n",
		rep.States, rep.Transitions, rep.Quiescent)
	if symMode != explore.SymmetryOff {
		fmt.Fprintf(stdout, "symmetry: %s (group order %d) — counts are orbit representatives\n",
			symMode, rep.SymmetryGroupOrder())
	}
	fmt.Fprintf(stdout, "elapsed:  %s (%.0f states/sec)\n",
		elapsed.Round(time.Microsecond), statesPerSec(rep.States, elapsed))

	if rep.Solved() {
		fmt.Fprintln(stdout, "verdict:  SOLVED — all safety and termination properties hold on every schedule")
	} else {
		fmt.Fprintf(stdout, "verdict:  REFUTED — %d violation(s)\n", len(rep.Violations))
		for i, v := range rep.Violations {
			fmt.Fprintf(stdout, "  [%d] %s\n", i+1, v.Error())
			if c.annotate {
				fresh, err := prot.System(inputs)
				if err != nil {
					fmt.Fprintf(stderr, "explore: %v\n", err)
					return 2
				}
				full := append(append([]explore.Step(nil), v.Witness...), v.Cycle...)
				if err := explore.AnnotateSchedule(stdout, fresh, full); err != nil {
					fmt.Fprintf(stderr, "explore: annotate: %v\n", err)
					return 2
				}
				continue
			}
			if c.witness {
				for _, s := range v.Witness {
					fmt.Fprintf(stdout, "        %s\n", s)
				}
				if len(v.Cycle) > 0 {
					fmt.Fprintln(stdout, "      cycle (repeats forever):")
					for _, s := range v.Cycle {
						fmt.Fprintf(stdout, "        %s\n", s)
					}
				}
			} else {
				fmt.Fprintf(stdout, "      witness: %d steps", len(v.Witness))
				if len(v.Cycle) > 0 {
					fmt.Fprintf(stdout, " + %d-step cycle", len(v.Cycle))
				}
				fmt.Fprintln(stdout, "  (-witness to print)")
			}
		}
	}

	if rep.Valency != nil {
		v := rep.Valency
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "valency:  initial configuration is %s\n", v.Initial)
		fmt.Fprintf(stdout, "          %d bivalent, %d 0-valent, %d 1-valent, %d null-valent\n",
			v.Bivalent, v.Univalent0, v.Univalent1, v.Null)
		fmt.Fprintf(stdout, "critical: %d critical configuration(s); %d with every process poised on one object\n",
			v.CriticalCount, v.CriticalSameObject)
		for i, cc := range v.Critical {
			if i >= 4 && !c.witness {
				fmt.Fprintf(stdout, "          ... (%d more)\n", len(v.Critical)-i)
				break
			}
			obj := "mixed objects"
			if cc.SameObject {
				obj = "all poised on " + cc.ObjectName
			}
			fmt.Fprintf(stdout, "  config #%d after %d steps: %s\n", cc.ID, len(cc.Schedule), obj)
		}
	}
	if c.adversary {
		adv, err := rep.Adversary()
		if err != nil {
			fmt.Fprintf(stderr, "explore: adversary: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
		if adv.KeepsBivalentForever() {
			fmt.Fprintf(stdout, "adversary: the protocol can be kept BIVALENT FOREVER — after %d steps, repeat:\n",
				len(adv.Schedule))
			for _, s := range adv.Cycle {
				fmt.Fprintf(stdout, "  %s\n", s)
			}
		} else {
			fmt.Fprintf(stdout, "adversary: forced to a critical configuration (id %d) after %d steps\n",
				adv.CriticalID, len(adv.Schedule))
			if c.witness {
				for _, s := range adv.Schedule {
					fmt.Fprintf(stdout, "  %s\n", s)
				}
			}
		}
	}
	if c.dotFile != "" {
		f, err := os.Create(c.dotFile)
		if err != nil {
			fmt.Fprintf(stderr, "explore: %v\n", err)
			return 2
		}
		writeErr := rep.WriteDOT(f, 512)
		if closeErr := f.Close(); writeErr == nil {
			writeErr = closeErr
		}
		if writeErr != nil {
			fmt.Fprintf(stderr, "explore: %v\n", writeErr)
			return 2
		}
		fmt.Fprintf(stdout, "wrote configuration graph to %s\n", c.dotFile)
	}
	if rep.Solved() {
		return 0
	}
	return 1
}

func buildInstance(c *config) (programs.Protocol, task.Task, []value.Value, error) {
	if c.asm != "" {
		return buildAsm(c)
	}
	var (
		prot programs.Protocol
		tsk  task.Task
	)
	switch c.protocol {
	case "alg2":
		prot, tsk = programs.Algorithm2(c.n, c.p), task.DAC{N: c.n, P: c.p - 1}
	case "alg2-upset":
		prot, tsk = programs.UpsettingAlgorithm2(c.n, c.p), task.DAC{N: c.n, P: c.p - 1}
	case "consensus-pacm":
		procs := orDefault(c.procs, c.m)
		prot, tsk = programs.ConsensusFromPACM(c.n, c.m, procs), task.Consensus{N: procs}
	case "consensus-direct":
		procs := orDefault(c.procs, c.m)
		prot, tsk = programs.ConsensusFromObject(c.m, procs), task.Consensus{N: procs}
	case "partition":
		prot, tsk = programs.Partition(c.k, c.m), task.KSetAgreement{N: c.k * c.m, K: c.k}
	case "partition-on":
		prot, tsk = programs.PartitionObjectO(c.k, c.n), task.KSetAgreement{N: c.k * c.n, K: c.k}
	case "kset-sa":
		procs := orDefault(c.procs, c.n)
		prot, tsk = programs.KSetFromSA(c.n, c.k, procs), task.KSetAgreement{N: procs, K: c.k}
	case "kset-oprime":
		procs := orDefault(c.procs, c.k*c.n)
		prot = programs.KSetFromOPrime(core.NewOPrime(c.n, nil), c.k, procs)
		tsk = task.KSetAgreement{N: procs, K: c.k}
	case "kset-oprime-base":
		procs := orDefault(c.procs, c.k*c.n)
		prot, tsk = programs.KSetFromOPrimeBase(c.n, c.k, procs), task.KSetAgreement{N: procs, K: c.k}
	case "naive-2sa":
		procs := orDefault(c.procs, 2)
		prot, tsk = programs.NaiveTwoSAConsensus(procs), task.Consensus{N: procs}
	case "oversub":
		prot, tsk = programs.OverSubscribedConsensus(c.m), task.Consensus{N: c.m + 1}
	case "dac-attempt":
		prot, tsk = programs.DACFromConsensusAndTwoSA(c.n, c.p), task.DAC{N: c.n + 1, P: c.p - 1}
	case "chaudhuri":
		prot = programs.ChaudhuriKSet(c.n, c.k)
		tsk = task.ResilientKSet{N: c.n, K: c.k, F: c.k - 1}
	case "alg2-pacm":
		prot, tsk = programs.Algorithm2ViaPACM(c.n, c.m, c.p), task.DAC{N: c.n, P: c.p - 1}
	case "consensus-queue":
		prot, tsk = programs.ConsensusFromQueue(), task.Consensus{N: 2}
	case "consensus-tas":
		prot, tsk = programs.ConsensusFromTAS(), task.Consensus{N: 2}
	case "":
		return programs.Protocol{}, nil, nil, fmt.Errorf("-protocol or -asm is required")
	default:
		return programs.Protocol{}, nil, nil, fmt.Errorf("unknown protocol %q", c.protocol)
	}
	inputs, err := parseInputs(c.inputsRaw, prot.Procs(), tsk)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	return prot, tsk, inputs, nil
}

func buildAsm(c *config) (programs.Protocol, task.Task, []value.Value, error) {
	if c.objects == "" || c.taskName == "" || c.procs == 0 {
		return programs.Protocol{}, nil, nil, fmt.Errorf("-asm needs -objects, -task, and -procs")
	}
	src, err := os.ReadFile(c.asm)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	prog, err := machine.Parse(c.asm, string(src), 16)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	var objs []spec.Spec
	for _, name := range strings.Split(c.objects, ",") {
		sp, err := specname.Parse(strings.TrimSpace(name))
		if err != nil {
			return programs.Protocol{}, nil, nil, err
		}
		objs = append(objs, sp)
	}
	progs := make([]*machine.Program, c.procs)
	for i := range progs {
		progs[i] = prog
	}
	prot := programs.Protocol{Name: "asm:" + c.asm, Programs: progs, Objects: objs}

	var tsk task.Task
	switch {
	case c.taskName == "consensus":
		tsk = task.Consensus{N: c.procs}
	case c.taskName == "dac":
		tsk = task.DAC{N: c.procs, P: c.p - 1}
	case strings.HasPrefix(c.taskName, "kset:"):
		k, err := strconv.Atoi(strings.TrimPrefix(c.taskName, "kset:"))
		if err != nil {
			return programs.Protocol{}, nil, nil, fmt.Errorf("bad task %q", c.taskName)
		}
		tsk = task.KSetAgreement{N: c.procs, K: k}
	default:
		return programs.Protocol{}, nil, nil, fmt.Errorf("unknown task %q", c.taskName)
	}
	inputs, err := parseInputs(c.inputsRaw, c.procs, tsk)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	return prot, tsk, inputs, nil
}

// parseInputs parses "-inputs", defaulting to the proofs' canonical
// vectors: 1 for the distinguished/first process, 0 elsewhere for
// binary tasks; distinct values for k-set agreement.
func parseInputs(raw string, procs int, tsk task.Task) ([]value.Value, error) {
	if raw != "" {
		parts := strings.Split(raw, ",")
		if len(parts) != procs {
			return nil, fmt.Errorf("%d inputs for %d processes", len(parts), procs)
		}
		out := make([]value.Value, procs)
		for i, part := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad input %q", part)
			}
			out[i] = value.Value(v)
		}
		return out, nil
	}
	out := make([]value.Value, procs)
	wantDistinct := false
	if kt, ok := tsk.(task.KSetAgreement); ok && kt.K >= 2 {
		wantDistinct = true
	}
	if rt, ok := tsk.(task.ResilientKSet); ok && rt.K >= 2 {
		wantDistinct = true
	}
	if wantDistinct {
		for i := range out {
			out[i] = value.Value(10 + i)
		}
		return out, nil
	}
	d := 0
	if dt, ok := tsk.(task.DAC); ok {
		d = dt.P
	}
	out[d] = 1
	return out, nil
}

// orDefault returns v if nonzero, else fallback.
func orDefault(v, fallback int) int {
	if v != 0 {
		return v
	}
	return fallback
}

// statesPerSec computes exploration throughput, 0 on a degenerate
// elapsed time.
func statesPerSec(states int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(states) / elapsed.Seconds()
}

// Command explore model-checks a protocol exhaustively over every
// schedule and every nondeterministic object response, mechanizing the
// bivalency technique of the paper's proofs (§§4–5): it reports safety
// and termination verdicts with concrete witness schedules, and with
// -valency it labels configurations bivalent/univalent, counts critical
// configurations, and checks the "all processes poised on one object"
// structure (Claims 4.2.7, 5.2.3).
//
// Usage:
//
//	explore -protocol alg2 -n 3 -p 1 [-inputs 1,0,0] [-valency] [-witness] [-workers N]
//	explore -protocol alg2 -n 4 -checkpoint run.ckpt [-checkpoint-every L] [-resume]
//	explore -protocol alg2 -n 7 -store ./run-store:1.5GB
//	explore -protocol consensus-pacm -n 3 -m 2
//	explore -protocol partition -k 2 -m 2
//	explore -protocol naive-2sa -procs 2
//	explore -protocol oversub -m 2
//	explore -protocol dac-attempt -n 2 -p 1
//	explore -asm prog.s -objects consensus:2,register -task consensus -procs 2
//
// Named protocols: alg2, alg2-upset, alg2-pacm, consensus-pacm,
// consensus-direct, consensus-queue, consensus-tas, partition,
// partition-on, kset-sa, kset-oprime, kset-oprime-base, chaudhuri,
// naive-2sa, oversub, dac-attempt.
//
// Exit status: 0 solved, 1 refuted, 2 usage or internal error, 3
// inconclusive (the -max-states cap was hit; the partial exploration
// counts, elapsed wall time, and states/sec are printed), 4
// interrupted (SIGINT/SIGTERM landed mid-search; the same partial
// counts are printed, and with -checkpoint a final snapshot is
// written first so the run can continue with -resume).
//
// Durable runs: -checkpoint <file> snapshots the search at BFS level
// boundaries (cadence -checkpoint-every, default every level) with an
// atomic temp+fsync+rename write, and -resume restores it — the
// resumed run's report, witnesses, valency labels, and DOT output are
// byte-identical to an uninterrupted run, at any -workers setting.
// Snapshots embed a fingerprint of the system, task, inputs, and
// analysis options; a -resume against a different instance is
// rejected. The -events stream of a resumed CLI run starts fresh
// (run.start, then events from the restored level on); the
// byte-continuous event stream across kills is the dacd daemon's job.
// See EXPERIMENTS.md "Durable runs" for the container format.
//
// Out-of-core runs: -store <dir>[:<budget>] spills the configuration
// store to mmap'd append-only arenas under dir, keeping only the
// active BFS frontier hot; an optional budget (e.g. 1.5GB) bounds the
// live heap, aborting at a level barrier with a final checkpoint when
// exceeded. Reports, witnesses, valency labels, DOT output, and event
// streams are byte-identical to an in-memory run. See EXPERIMENTS.md
// "Out-of-core exploration".
//
// Exploration runs a level-synchronized parallel BFS; -workers sets
// the goroutine count (default GOMAXPROCS) and every report, witness
// schedule, valency label, and DOT file is byte-identical at any
// setting. Systems are capped at 64 processes (the Stepped bitmask).
//
// -symmetry ids|values interns one canonical representative per orbit
// of the admissible process (and, for values, input-value) permutation
// group: verdicts are identical to an unreduced run and witnesses stay
// concrete, but the state graph shrinks by up to the group order.
// Incompatible requests are rejected up front: systems whose objects
// or task admit no symmetry (ErrNotSymmetric), and -valency with
// -symmetry values, -adversary, or resilience-bounded liveness under
// any reduction (ErrSymmetryUnsupported).
//
// Observability (shared with every cmd tool; see EXPERIMENTS.md
// "Reading run reports"): -metrics <file> writes the final run-report
// JSON, -events <file> streams JSONL events (explore.heartbeat while
// the search runs, explore.done / explore.statelimit / explore.error
// at the end, all carrying a "workers" field), -cpuprofile /
// -memprofile write pprof profiles.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"setagree/cmd/internal/obsflags"
	"setagree/cmd/internal/protobuild"
	"setagree/internal/explore"
	"setagree/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	pb        protobuild.Config
	valency   bool
	adversary bool
	witness   bool
	annotate  bool
	maxStates int
	workers   int
	symmetry  string
	dotFile   string
	storeFlag string
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c config
	fs.StringVar(&c.pb.Protocol, "protocol", "", "named protocol (see doc)")
	fs.StringVar(&c.pb.Asm, "asm", "", "assembly file: one symmetric program for all processes")
	fs.StringVar(&c.pb.Objects, "objects", "", "object list for -asm, e.g. consensus:2,register,2sa")
	fs.StringVar(&c.pb.Task, "task", "", "task for -asm: consensus | kset:K | dac")
	fs.StringVar(&c.pb.Inputs, "inputs", "", "comma-separated inputs (default: task-appropriate)")
	fs.IntVar(&c.pb.N, "n", 3, "n parameter (processes / PAC labels)")
	fs.IntVar(&c.pb.M, "m", 2, "m parameter (consensus width)")
	fs.IntVar(&c.pb.K, "k", 2, "k parameter (agreement bound)")
	fs.IntVar(&c.pb.P, "p", 1, "distinguished process (1-based, DAC protocols)")
	fs.IntVar(&c.pb.Procs, "procs", 0, "process count override")
	fs.BoolVar(&c.valency, "valency", false, "compute valence labels and critical configurations")
	fs.BoolVar(&c.adversary, "adversary", false, "run the bivalence-preserving adversary (implies -valency)")
	fs.StringVar(&c.dotFile, "dot", "", "write the configuration graph (Graphviz DOT) to this file")
	fs.BoolVar(&c.annotate, "annotate", false, "replay witnesses with object-state annotations (implies -witness)")
	fs.BoolVar(&c.witness, "witness", false, "print full witness schedules")
	fs.IntVar(&c.maxStates, "max-states", 1<<21, "state cap")
	fs.IntVar(&c.workers, "workers", 0, "BFS worker goroutines (0 = GOMAXPROCS; output is byte-identical at any setting)")
	fs.StringVar(&c.symmetry, "symmetry", "off", "symmetry reduction: off | ids | values (intern orbit representatives; verdicts match -symmetry off)")
	fs.StringVar(&c.storeFlag, "store", "", "out-of-core exploration: spill the configuration store to this directory, optionally with an in-memory budget, e.g. ./run-store or ./run-store:1.5GB (output is byte-identical to an in-memory run)")
	obsF := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	symMode, err := explore.ParseSymmetry(c.symmetry)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	storeOpts, err := store.ParseFlag(c.storeFlag)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	ck := obsF.Checkpointing()
	if err := ck.Validate(); err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}

	prot, tsk, inputs, err := c.pb.Build()
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	sys, err := prot.System(inputs)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	sess, err := obsflags.Start("explore", obsF, args)
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	defer sess.CloseTo(stderr)

	if c.adversary {
		c.valency = true
	}
	fmt.Fprintf(stdout, "protocol: %s\n", prot.Name)
	fmt.Fprintf(stdout, "task:     %s, inputs %v\n", tsk.Name(), inputs)
	// SIGINT/SIGTERM cancel the context; the explorer notices at the
	// next level barrier, writes a final checkpoint (when -checkpoint
	// is set), flushes its counters, and returns the partial report.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opts := explore.Options{
		Valency:   c.valency,
		MaxStates: c.maxStates,
		Workers:   c.workers,
		Symmetry:  symMode,
		Obs:       sess.Sink,
		Events:    sess.Events,
		Ctx:       ctx,
		Store:     storeOpts,
		Checkpoint: explore.CheckpointOptions{
			Path:        ck.Path,
			EveryLevels: ck.EveryLevels,
		},
	}
	start := time.Now()
	var rep *explore.Report
	// Close releases the disk-backed store (no-op for in-memory runs)
	// after every report artifact — witnesses, valency, DOT — has been
	// rendered.
	defer func() {
		if rep != nil {
			rep.Close()
		}
	}()
	if ck.Resume {
		rep, err = explore.Resume(ck.Path, sys, tsk, opts)
	} else {
		rep, err = explore.Check(sys, tsk, opts)
	}
	elapsed := time.Since(start)
	if ctxErr := ctx.Err(); ctxErr != nil && err != nil && errors.Is(err, ctxErr) {
		fmt.Fprintf(stdout, "explored: %d configurations, %d transitions (partial)\n",
			rep.States, rep.Transitions)
		fmt.Fprintf(stdout, "elapsed:  %s (%.0f states/sec)\n",
			elapsed.Round(time.Microsecond), statesPerSec(rep.States, elapsed))
		fmt.Fprintf(stdout, "verdict:  INTERRUPTED — %v\n", err)
		if ck.Path != "" {
			fmt.Fprintf(stdout, "checkpoint: final snapshot in %s — continue with -resume -checkpoint %s\n",
				ck.Path, ck.Path)
		}
		return 4
	}
	if errors.Is(err, explore.ErrStateLimit) {
		// The state-limit path prints the same timing diagnostics as a
		// completed run, so state-limit hits are tunable from the output
		// alone (how fast was the search going, how far did it get).
		fmt.Fprintf(stdout, "explored: %d configurations, %d transitions (partial)\n",
			rep.States, rep.Transitions)
		fmt.Fprintf(stdout, "elapsed:  %s (%.0f states/sec)\n",
			elapsed.Round(time.Microsecond), statesPerSec(rep.States, elapsed))
		fmt.Fprintf(stdout, "verdict:  INCONCLUSIVE — %v (raise -max-states)\n", err)
		return 3
	}
	if err != nil {
		fmt.Fprintf(stderr, "explore: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "explored: %d configurations, %d transitions, %d quiescent\n",
		rep.States, rep.Transitions, rep.Quiescent)
	if symMode != explore.SymmetryOff {
		fmt.Fprintf(stdout, "symmetry: %s (group order %d) — counts are orbit representatives\n",
			symMode, rep.SymmetryGroupOrder())
	}
	fmt.Fprintf(stdout, "elapsed:  %s (%.0f states/sec)\n",
		elapsed.Round(time.Microsecond), statesPerSec(rep.States, elapsed))

	if rep.Solved() {
		fmt.Fprintln(stdout, "verdict:  SOLVED — all safety and termination properties hold on every schedule")
	} else {
		fmt.Fprintf(stdout, "verdict:  REFUTED — %d violation(s)\n", len(rep.Violations))
		for i, v := range rep.Violations {
			fmt.Fprintf(stdout, "  [%d] %s\n", i+1, v.Error())
			if c.annotate {
				fresh, err := prot.System(inputs)
				if err != nil {
					fmt.Fprintf(stderr, "explore: %v\n", err)
					return 2
				}
				full := append(append([]explore.Step(nil), v.Witness...), v.Cycle...)
				if err := explore.AnnotateSchedule(stdout, fresh, full); err != nil {
					fmt.Fprintf(stderr, "explore: annotate: %v\n", err)
					return 2
				}
				continue
			}
			if c.witness {
				for _, s := range v.Witness {
					fmt.Fprintf(stdout, "        %s\n", s)
				}
				if len(v.Cycle) > 0 {
					fmt.Fprintln(stdout, "      cycle (repeats forever):")
					for _, s := range v.Cycle {
						fmt.Fprintf(stdout, "        %s\n", s)
					}
				}
			} else {
				fmt.Fprintf(stdout, "      witness: %d steps", len(v.Witness))
				if len(v.Cycle) > 0 {
					fmt.Fprintf(stdout, " + %d-step cycle", len(v.Cycle))
				}
				fmt.Fprintln(stdout, "  (-witness to print)")
			}
		}
	}

	if rep.Valency != nil {
		v := rep.Valency
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "valency:  initial configuration is %s\n", v.Initial)
		fmt.Fprintf(stdout, "          %d bivalent, %d 0-valent, %d 1-valent, %d null-valent\n",
			v.Bivalent, v.Univalent0, v.Univalent1, v.Null)
		fmt.Fprintf(stdout, "critical: %d critical configuration(s); %d with every process poised on one object\n",
			v.CriticalCount, v.CriticalSameObject)
		for i, cc := range v.Critical {
			if i >= 4 && !c.witness {
				fmt.Fprintf(stdout, "          ... (%d more)\n", len(v.Critical)-i)
				break
			}
			obj := "mixed objects"
			if cc.SameObject {
				obj = "all poised on " + cc.ObjectName
			}
			fmt.Fprintf(stdout, "  config #%d after %d steps: %s\n", cc.ID, len(cc.Schedule), obj)
		}
	}
	if c.adversary {
		adv, err := rep.Adversary()
		if err != nil {
			fmt.Fprintf(stderr, "explore: adversary: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout)
		if adv.KeepsBivalentForever() {
			fmt.Fprintf(stdout, "adversary: the protocol can be kept BIVALENT FOREVER — after %d steps, repeat:\n",
				len(adv.Schedule))
			for _, s := range adv.Cycle {
				fmt.Fprintf(stdout, "  %s\n", s)
			}
		} else {
			fmt.Fprintf(stdout, "adversary: forced to a critical configuration (id %d) after %d steps\n",
				adv.CriticalID, len(adv.Schedule))
			if c.witness {
				for _, s := range adv.Schedule {
					fmt.Fprintf(stdout, "  %s\n", s)
				}
			}
		}
	}
	if c.dotFile != "" {
		f, err := os.Create(c.dotFile)
		if err != nil {
			fmt.Fprintf(stderr, "explore: %v\n", err)
			return 2
		}
		writeErr := rep.WriteDOT(f, 512)
		if closeErr := f.Close(); writeErr == nil {
			writeErr = closeErr
		}
		if writeErr != nil {
			fmt.Fprintf(stderr, "explore: %v\n", writeErr)
			return 2
		}
		fmt.Fprintf(stdout, "wrote configuration graph to %s\n", c.dotFile)
	}
	if rep.Solved() {
		return 0
	}
	return 1
}

// statesPerSec computes exploration throughput, 0 on a degenerate
// elapsed time.
func statesPerSec(states int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(states) / elapsed.Seconds()
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"setagree/internal/cluster"
	"setagree/internal/jobs"
	"setagree/internal/obs"
)

// sweepShardRunner returns the jobs.Runner for kind "sweep-shard": the
// worker half of the checking cluster. The spec is a cluster.ShardJob
// ({"sweep":{...},"lo":L,"hi":H}); the result is the shard's
// ShardReport. Shards are not checkpointed: verdicts are deterministic
// and shards are sized to re-run cheaply, so a lost worker costs one
// shard re-check, not a resume protocol.
func sweepShardRunner(reg *obs.Registry) jobs.Runner {
	return func(ctx context.Context, store *jobs.Store, job jobs.Job) ([]byte, error) {
		var sj cluster.ShardJob
		if err := json.Unmarshal(job.Spec, &sj); err != nil {
			return nil, fmt.Errorf("bad spec: %w", err)
		}
		emitter, closeEvents, err := jobEmitter(store, job.ID)
		if err != nil {
			return nil, err
		}
		defer closeEvents()
		sink := reg.Attach()
		if sink == nil {
			sink = obs.NewSink()
		}
		defer reg.Release(sink)
		rep, err := cluster.RunShard(ctx, sj, sink, emitter)
		if err != nil {
			emitter.Sync()
			return nil, err
		}
		if err := emitter.Sync(); err != nil {
			return nil, fmt.Errorf("event stream: %w", err)
		}
		return json.MarshalIndent(rep, "", "  ")
	}
}

// sweepJobSpec is the JSON spec of a "sweep" job: the sweep plus the
// coordinator's partitioning knobs. The worker list is the daemon's
// -workers flag, not part of the spec — topology is an operator
// decision, and the same submitted job runs in-process on a plain
// daemon and sharded on a coordinator, with byte-identical results.
type sweepJobSpec struct {
	Sweep cluster.SweepSpec `json:"sweep"`
	// Shards overrides the shard count (0 = 4 per worker, or 1 local).
	Shards int `json:"shards,omitempty"`
	// PaceMs sleeps each shard this long per candidate — the demo/test
	// knob that makes a sweep long-lived enough to kill a worker under.
	PaceMs int `json:"pace_ms,omitempty"`
}

// sweepRunner returns the jobs.Runner for kind "sweep": coordinate a
// partitioned sweep over the configured workers (in-process when the
// list is empty) and store the canonical merged SweepReport.
func sweepRunner(reg *obs.Registry, workers []string) jobs.Runner {
	return func(ctx context.Context, store *jobs.Store, job jobs.Job) ([]byte, error) {
		var sp sweepJobSpec
		if err := json.Unmarshal(job.Spec, &sp); err != nil {
			return nil, fmt.Errorf("bad spec: %w", err)
		}
		emitter, closeEvents, err := jobEmitter(store, job.ID)
		if err != nil {
			return nil, err
		}
		defer closeEvents()
		sink := reg.Attach()
		if sink == nil {
			sink = obs.NewSink()
		}
		defer reg.Release(sink)
		rep, err := cluster.Run(ctx, sp.Sweep, cluster.Options{
			Workers: workers,
			Shards:  sp.Shards,
			PaceMs:  sp.PaceMs,
			Obs:     sink,
			Events:  emitter,
		})
		if err != nil {
			emitter.Sync()
			return nil, err
		}
		if err := emitter.Sync(); err != nil {
			return nil, fmt.Errorf("event stream: %w", err)
		}
		return rep.Render()
	}
}

// jobEmitter opens the job's event stream fresh (sweeps re-run from
// scratch on retry, so any stale stream is dropped).
func jobEmitter(store *jobs.Store, id string) (*obs.Emitter, func() error, error) {
	ef, err := os.Create(store.EventsPath(id))
	if err != nil {
		return nil, nil, err
	}
	return obs.NewEmitter(ef), ef.Close, nil
}

package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"setagree/internal/jobs"
	"setagree/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestMetricsGolden pins the /metrics exposition byte-for-byte: a
// fixed registry state and server stats must always render the same
// text, so scrape configs and recording rules can rely on the names.
func TestMetricsGolden(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	s := reg.Attach()
	s.Counter(httpRequestsPrefix + "GET /healthz").Add(3)
	s.Counter(httpRequestsPrefix + "GET /jobs").Add(2)
	s.Counter("explore.states").Add(12345)
	s.Counter("explore.transitions").Add(67890)
	s.Counter("cluster.shards").Add(3)
	s.Counter("collections.decided").Add(6)
	s.Counter("collections.pruned").Add(2)
	s.Counter("collections.solvable").Add(4)
	s.Counter("collections.crosschecked").Add(5)
	s.Gauge("explore.frontier_max").SetMax(512)
	s.Timer("explore.wall").Observe(3 * time.Millisecond)
	s.Timer("explore.wall").Observe(3 * time.Millisecond)
	for _, v := range []int64{1000, 2000, 4000} {
		s.Histogram("explore.level_ns").Observe(v)
	}
	s.Histogram(httpLatencyName).Observe(1500)
	// Half the state retired, half live: Gather must merge both.
	reg.Release(s)
	live := reg.Attach()
	live.Counter("explore.states").Add(55)

	var buf bytes.Buffer
	renderMetrics(&buf, reg.Gather(), serverStats{
		Pending:      1,
		MaxPending:   8,
		States:       map[jobs.State]int{jobs.Done: 2, jobs.Running: 1, jobs.Pending: 1},
		JournalBytes: 4096,
		ArchiveBytes: 1024,
	})

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/dacd -run TestMetricsGolden -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Rendering twice from the same state must be byte-identical (map
	// iteration order must never leak into the output).
	var again bytes.Buffer
	renderMetrics(&again, reg.Gather(), serverStats{
		Pending:      1,
		MaxPending:   8,
		States:       map[jobs.State]int{jobs.Done: 2, jobs.Running: 1, jobs.Pending: 1},
		JournalBytes: 4096,
		ArchiveBytes: 1024,
	})
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same state differ")
	}
}

// TestMetricsEndpoint runs a real explore job through a registry-wired
// pool and checks GET /metrics serves the aggregated run counters with
// the stable names, HTTP request counters included.
func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := obs.NewRegistry()
	pool := jobs.NewPool(store, 1, map[string]jobs.Runner{"explore": exploreRunner(reg)})
	ts := httptest.NewServer(newServer(store, pool, serverOptions{Registry: reg}))
	defer ts.Close()
	defer pool.Drain(context.Background())

	job := submitExplore(t, ts.URL, map[string]any{"protocol": "alg2", "n": 3, "p": 1})
	waitJob(t, ts.URL, job.ID, jobs.Done, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"explore_states_total ",
		"explore_level_ns{quantile=\"0.5\"}",
		"dacd_http_requests_total{route=\"POST /jobs\"} 1",
		"dacd_http_requests_total{route=\"GET /metrics\"} 1",
		"dacd_jobs{state=\"done\"} 1",
		"dacd_jobs_pending 0",
		"dacd_journal_bytes ",
		"dacd_archive_bytes 0",
		"dacd_http_request_duration_ns{quantile=\"0.99\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The finished (released) job's counters must have survived into
	// the retired accumulator with real values.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "explore_states_total ") && strings.TrimSpace(line) == "explore_states_total 0" {
			t.Error("explore_states_total is 0 after a finished job: registry lost retired state")
		}
	}
}

// TestPprofGate: the profiler mounts only behind the -pprof flag.
func TestPprofGate(t *testing.T) {
	t.Parallel()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pool := jobs.NewPool(store, 1, nil)
	defer pool.Drain(context.Background())

	off := httptest.NewServer(newServer(store, pool, serverOptions{}))
	defer off.Close()
	if resp, err := http.Get(off.URL + "/debug/pprof/"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: %v %v, want 404", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	on := httptest.NewServer(newServer(store, pool, serverOptions{Pprof: true}))
	defer on.Close()
	if resp, err := http.Get(on.URL + "/debug/pprof/"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: %v %v, want 200", resp.Status, err)
	} else {
		resp.Body.Close()
	}
}

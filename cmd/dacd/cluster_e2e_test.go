package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"testing"
	"time"

	"setagree/internal/cluster"
	"setagree/internal/jobs"
)

// submitJob posts a job of any kind and requires acceptance.
func submitJob(t *testing.T, base, kind string, spec any) jobs.Job {
	t.Helper()
	resp := postJSON(t, base+"/jobs", map[string]any{"kind": kind, "spec": spec})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit %s: %s: %s", kind, resp.Status, body)
	}
	return decodeJob(t, resp)
}

// rawResult fetches a done job's result document verbatim.
func rawResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s: %s", resp.Status, buf)
	}
	return buf
}

// TestClusterShardRetryE2E is the cluster acceptance test: the
// Theorem 7.1 sweep (1116 candidates) submitted to a coordinator with
// two worker daemons, one of which is kill -9ed mid-sweep, must finish
// with a merged report byte-identical to the same sweep run on a
// single plain daemon — no lost ranges, no duplicated ranges, and the
// retry visible in the coordinator's /metrics. The baseline runs with
// cross-candidate memoization explicitly DISABLED while the cluster
// runs with it on (the default), so the byte-equality also certifies
// that a memoized sweep losing a worker mid-shard — its memo table
// mid-population, its verdicts partly attributed — retries and merges
// to exactly the plain engine's bytes.
func TestClusterShardRetryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon e2e")
	}

	w1 := startDaemon(t, t.TempDir())
	w2 := startDaemon(t, t.TempDir())
	coord := startDaemon(t, t.TempDir(), "-coordinator", "-workers", w1.base+","+w2.base)
	single := startDaemon(t, t.TempDir())

	// Baseline: the same sweep on a plain daemon, in-process, with the
	// memoizer off — the unmemoized engine is the reference bytes.
	memoOff := false
	offSpec := cluster.Thm71()
	offSpec.Memo = &memoOff
	base := submitJob(t, single.base, "sweep", map[string]any{"sweep": offSpec, "shards": 8})
	waitJob(t, single.base, base.ID, jobs.Done, 2*time.Minute)
	want := rawResult(t, single.base, base.ID)
	if !bytes.Contains(want, []byte(`"candidates": 1116`)) {
		t.Fatalf("baseline sweep is not the 1116-candidate Thm 7.1 sweep:\n%.400s", want)
	}

	// Cluster run: memoized (the default), paced so each shard takes
	// long enough to die under.
	spec := map[string]any{"sweep": cluster.Thm71(), "shards": 8, "pace_ms": 5}
	cj := submitJob(t, coord.base, "sweep", spec)
	waitJob(t, coord.base, cj.ID, jobs.Running, 30*time.Second)
	time.Sleep(1 * time.Second) // let shards land on both workers

	resp, err := http.Get(coord.base + "/jobs/" + cj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j := decodeJob(t, resp); j.State.Terminal() {
		t.Fatalf("sweep already %s before the kill; pacing too fast for this host", j.State)
	}
	if err := w1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w1.cmd.Wait()
	t.Log("killed worker 1 mid-sweep")

	done := waitJob(t, coord.base, cj.ID, jobs.Done, 4*time.Minute)
	if done.Error != "" {
		t.Fatalf("cluster sweep finished with error %q", done.Error)
	}
	got := rawResult(t, coord.base, cj.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("cluster report differs from single-daemon report:\n--- cluster\n%.800s\n--- single\n%.800s", got, want)
	}

	// The worker death must be visible as shard retries in the
	// coordinator's dacd_cluster_* metric families.
	mresp, err := http.Get(coord.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	retried := metricValue(t, metrics, "dacd_cluster_shards_retried_total")
	if retried < 1 {
		t.Errorf("dacd_cluster_shards_retried_total = %d, want >= 1 after a worker death", retried)
	}
	if shards := metricValue(t, metrics, "dacd_cluster_shards_total"); shards != 8 {
		t.Errorf("dacd_cluster_shards_total = %d, want 8 (each shard completed exactly once)", shards)
	}
	if cands := metricValue(t, metrics, "dacd_cluster_candidates_total"); cands != 1116 {
		t.Errorf("dacd_cluster_candidates_total = %d, want 1116", cands)
	}
}

// metricValue extracts an un-labeled counter/gauge value from a
// Prometheus text exposition.
func metricValue(t *testing.T, exposition []byte, name string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindSubmatch(exposition)
	if m == nil {
		t.Fatalf("metric %s not found in exposition", name)
	}
	v, err := strconv.ParseInt(string(m[1]), 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"setagree/internal/jobs"
)

// server is dacd's HTTP surface. Every response body is JSON except
// the SSE event stream.
type server struct {
	store *jobs.Store
	pool  *jobs.Pool
	mux   *http.ServeMux
}

func newServer(store *jobs.Store, pool *jobs.Pool) *server {
	s := &server{store: store, pool: pool, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.get)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.events)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": len(s.store.List())})
}

// submitRequest is the POST /jobs body: a runner kind and its spec.
type submitRequest struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Kind == "" {
		writeError(w, http.StatusBadRequest, errors.New("kind is required"))
		return
	}
	job, err := s.pool.Submit(req.Kind, req.Spec)
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			// Back-pressure, not failure: the client should retry once
			// the pool has drained some of the queue.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// listResponse is the GET /jobs body: the job table plus the queue's
// occupancy and Submit bound (max_pending 0 = unlimited).
type listResponse struct {
	Jobs       []jobs.Job `json:"jobs"`
	Pending    int        `json:"pending"`
	MaxPending int        `json:"max_pending"`
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	pending, limit := s.store.QueueStats()
	writeJSON(w, http.StatusOK, listResponse{Jobs: s.store.List(), Pending: pending, MaxPending: limit})
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	job, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.pool.Cancel(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrUnknownJob) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	job, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if job.State != jobs.Done {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s (error %q); no result", job.ID, job.State, job.Error))
		return
	}
	res, err := s.store.ReadResult(job.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

// events streams the job's JSONL event file over Server-Sent Events:
// each complete line becomes one `data:` frame, tailed live while the
// job runs. The stream ends with an `event: done` frame carrying the
// job's terminal state once the job finishes and the file is drained
// (a resumed job's stream picks up exactly where the checkpoint left
// it — trimmed overshoot lines are re-sent by the resumed run).
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.store.Get(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	path := s.store.EventsPath(id)
	var off int64
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		n, sent := s.sendFrom(w, path, off)
		off = n
		if sent {
			flusher.Flush()
		}
		job, err := s.store.Get(id)
		if err == nil && job.State.Terminal() && !sent {
			fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", job.State)
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// sendFrom writes every complete JSONL line at or beyond byte offset
// off as an SSE data frame and returns the new offset and whether
// anything was sent. Partial trailing lines stay unsent until their
// newline lands.
func (s *server) sendFrom(w http.ResponseWriter, path string, off int64) (int64, bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return off, false
	}
	// A resumed job truncates the file; restart the tail from zero so
	// the client sees the stream the resumed run is rebuilding.
	if int64(len(buf)) < off {
		off = 0
	}
	sent := false
	for {
		rest := buf[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		fmt.Fprintf(w, "data: %s\n\n", rest[:nl])
		off += int64(nl) + 1
		sent = true
	}
	return off, sent
}

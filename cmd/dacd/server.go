package main

import (
	"bytes"
	"embed"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"setagree/internal/jobs"
	"setagree/internal/obs"
)

//go:embed web
var webFS embed.FS

// serverOptions configures the operational surface of the HTTP server.
// The zero value serves the full API with self-contained metrics, a
// 15-second SSE keepalive, and no profiler.
type serverOptions struct {
	// Registry aggregates metrics across job sinks; nil makes the
	// server create a private one (its HTTP metrics still export).
	Registry *obs.Registry
	// Pprof mounts net/http/pprof under GET /debug/pprof/.
	Pprof bool
	// KeepAlive is the idle cadence of SSE comment frames (`: keepalive`)
	// that hold proxies and dead-peer detection open on quiet streams.
	// 0 means the 15-second default; negative disables.
	KeepAlive time.Duration
}

const defaultKeepAlive = 15 * time.Second

// server is dacd's HTTP surface. Every response body is JSON except
// the SSE event stream, GET /metrics (Prometheus text), GET /jobs/{id}/dot
// (Graphviz), and the embedded dashboard under GET /.
type server struct {
	store     *jobs.Store
	pool      *jobs.Pool
	mux       *http.ServeMux
	reg       *obs.Registry
	sink      *obs.Sink // server-lifetime sink for HTTP metrics
	keepAlive time.Duration
}

func newServer(store *jobs.Store, pool *jobs.Pool, opts serverOptions) *server {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ka := opts.KeepAlive
	if ka == 0 {
		ka = defaultKeepAlive
	}
	s := &server{
		store:     store,
		pool:      pool,
		mux:       http.NewServeMux(),
		reg:       reg,
		sink:      reg.Attach(),
		keepAlive: ka,
	}
	s.handle("GET /healthz", s.healthz, true)
	s.handle("POST /jobs", s.submit, true)
	s.handle("GET /jobs", s.list, true)
	s.handle("GET /jobs/{id}", s.get, true)
	s.handle("POST /jobs/{id}/cancel", s.cancel, true)
	s.handle("GET /jobs/{id}/result", s.result, true)
	s.handle("GET /jobs/{id}/dot", s.dot, true)
	// The SSE stream lives as long as the job: counted, never timed
	// (it would dominate the latency histogram with stream lifetimes).
	s.handle("GET /jobs/{id}/events", s.events, false)
	s.handle("GET /metrics", s.metrics, true)

	// Dashboard: one embedded page, no build step. "/{$}" is exact, so
	// unknown paths still 404 instead of serving the index.
	s.handle("GET /{$}", s.index, true)
	static, err := fs.Sub(webFS, "web")
	if err != nil {
		panic(err) // embed layout is fixed at compile time
	}
	s.mux.Handle("GET /static/", http.StripPrefix("/static/", http.FileServerFS(static)))

	if opts.Pprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// handle registers h with a per-route request counter and (for timed
// routes) the shared latency histogram. The route label is the pattern
// string itself, captured here at registration so the hot path is one
// map-free counter add.
func (s *server) handle(pattern string, h http.HandlerFunc, timed bool) {
	requests := s.sink.Counter(httpRequestsPrefix + pattern)
	latency := s.sink.Histogram(httpLatencyName)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		if timed {
			defer latency.Start()()
		}
		h(w, r)
	})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": len(s.store.List())})
}

func (s *server) index(w http.ResponseWriter, r *http.Request) {
	buf, err := webFS.ReadFile("web/index.html")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(buf)
}

// metrics serves the Prometheus text exposition of everything the
// registry has seen (live jobs, finished jobs, the server itself) plus
// the job table, queue occupancy, and on-disk footprint.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	pending, limit := s.store.QueueStats()
	st := serverStats{
		Pending:    pending,
		MaxPending: limit,
		States:     make(map[jobs.State]int),
	}
	for _, j := range s.store.List() {
		st.States[j.State]++
	}
	st.JournalBytes, st.ArchiveBytes = s.store.Sizes()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	renderMetrics(w, s.reg.Gather(), st)
}

// submitRequest is the POST /jobs body: a runner kind and its spec.
type submitRequest struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Kind == "" {
		writeError(w, http.StatusBadRequest, errors.New("kind is required"))
		return
	}
	job, err := s.pool.Submit(req.Kind, req.Spec)
	if err != nil {
		if errors.Is(err, jobs.ErrQueueFull) {
			// Back-pressure, not failure: the client should retry once
			// the pool has drained some of the queue. The hint is the
			// store's backlog/drain-rate estimate, clamped to [1,30]s.
			w.Header().Set("Retry-After", strconv.Itoa(s.store.RetryAfter()))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// listResponse is the GET /jobs body: the job table, the queue's
// occupancy and Submit bound (max_pending 0 = unlimited), and the
// on-disk footprint (journal plus gzipped archive) the sweeps bound.
type listResponse struct {
	Jobs         []jobs.Job `json:"jobs"`
	Pending      int        `json:"pending"`
	MaxPending   int        `json:"max_pending"`
	JournalBytes int64      `json:"journal_bytes"`
	ArchiveBytes int64      `json:"archive_bytes"`
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	pending, limit := s.store.QueueStats()
	journal, archive := s.store.Sizes()
	writeJSON(w, http.StatusOK, listResponse{
		Jobs:         s.store.List(),
		Pending:      pending,
		MaxPending:   limit,
		JournalBytes: journal,
		ArchiveBytes: archive,
	})
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	job, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.pool.Cancel(r.PathValue("id"))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrUnknownJob) {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	job, err := s.store.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if job.State != jobs.Done {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s (error %q); no result", job.ID, job.State, job.Error))
		return
	}
	res, err := s.store.ReadResult(job.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

// dot serves the Graphviz rendering a job produced (spec {"dot":true});
// jobs without one 404. Archived jobs decompress transparently.
func (s *server) dot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.store.Get(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	buf, err := s.store.ReadJobFile(id, "graph.dot")
	if err != nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("job %s has no DOT rendering (submit with \"dot\": true): %w", id, err))
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	w.Write(buf)
}

// events streams the job's JSONL event file over Server-Sent Events:
// each complete line becomes one `data:` frame, tailed live while the
// job runs. The stream ends with an `event: done` frame carrying the
// job's terminal state once the job finishes and the file is drained
// (a resumed job's stream picks up exactly where the checkpoint left
// it — trimmed overshoot lines are re-sent by the resumed run). Idle
// streams carry a `: keepalive` comment frame on the configured
// cadence so intermediaries don't reap quiet connections.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.store.Get(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// Tell buffering reverse proxies (nginx et al.) to pass frames
	// through as they are written.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	var off int64
	lastWrite := time.Now()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		n, sent := s.sendFrom(w, id, off)
		off = n
		if sent {
			flusher.Flush()
			lastWrite = time.Now()
		}
		job, err := s.store.Get(id)
		if err == nil && job.State.Terminal() && !sent {
			fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", job.State)
			flusher.Flush()
			return
		}
		if s.keepAlive > 0 && time.Since(lastWrite) >= s.keepAlive {
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
			lastWrite = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// sendFrom writes every complete JSONL line at or beyond byte offset
// off as an SSE data frame and returns the new offset and whether
// anything was sent. Partial trailing lines stay unsent until their
// newline lands. Reads go through the store, so a stream whose job is
// archived mid-tail keeps serving from the compressed copy.
func (s *server) sendFrom(w http.ResponseWriter, id string, off int64) (int64, bool) {
	buf, err := s.store.ReadEvents(id)
	if err != nil {
		return off, false
	}
	// A resumed job truncates the file; restart the tail from zero so
	// the client sees the stream the resumed run is rebuilding.
	if int64(len(buf)) < off {
		off = 0
	}
	sent := false
	for {
		rest := buf[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break
		}
		fmt.Fprintf(w, "data: %s\n\n", rest[:nl])
		off += int64(nl) + 1
		sent = true
	}
	return off, sent
}

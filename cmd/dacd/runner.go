package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"setagree/cmd/internal/protobuild"
	"setagree/internal/explore"
	"setagree/internal/jobs"
	"setagree/internal/obs"
	cfgstore "setagree/internal/store"
)

// exploreSpec is the JSON spec of an "explore" job: a protobuild
// instance description plus the model checker's knobs. The daemon
// checkpoints every run into the job's directory, so a job interrupted
// by cancel-free shutdown (drain or crash) resumes from its last
// checkpoint with a byte-identical report and event stream.
type exploreSpec struct {
	protobuild.Config
	// MaxStates caps the exploration (0 = explore.Options default).
	MaxStates int `json:"max_states,omitempty"`
	// Workers sets the BFS worker count (0 = GOMAXPROCS). Reports are
	// identical at any setting, so resumes may use a different value.
	Workers int `json:"workers,omitempty"`
	// Symmetry is the reduction mode: "" or "off", "ids", "values".
	Symmetry string `json:"symmetry,omitempty"`
	// Valency asks for valence labels and critical configurations.
	Valency bool `json:"valency,omitempty"`
	// CheckpointEvery is the snapshot cadence in BFS levels (0 = every
	// level).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// HeartbeatEvery is the explore.heartbeat cadence in interned
	// configurations (0 = explore.Options default).
	HeartbeatEvery int `json:"heartbeat_every,omitempty"`
	// PaceMs throttles the search by sleeping this many milliseconds at
	// each checkpointed level — a demo/testing knob that makes a small
	// instance long-lived enough to watch over SSE (or to kill and
	// resume).
	PaceMs int `json:"pace_ms,omitempty"`
	// Store spills the configuration store to a "store" subdirectory of
	// the job's working directory (out-of-core exploration); reports and
	// event streams stay byte-identical to in-memory runs.
	Store bool `json:"store,omitempty"`
	// StoreBudget bounds the live heap of a Store run, in the CLI
	// -store budget syntax (e.g. "1.5GB"); exceeding it fails the job at
	// a level barrier after a final checkpoint. Empty means no bound.
	StoreBudget string `json:"store_budget,omitempty"`
	// Dot renders the explored graph to graph.dot in the job directory
	// after the run, served by GET /jobs/{id}/dot (and archived with
	// the job).
	Dot bool `json:"dot,omitempty"`
	// DotMaxNodes caps the DOT rendering (0 = 256 nodes).
	DotMaxNodes int `json:"dot_max_nodes,omitempty"`
}

// exploreResult is the result document of a finished explore job. The
// verdict fields (verdict, states, transitions, quiescent, violations)
// are deterministic: a job that was killed and resumed produces the
// same values as an uninterrupted one.
type exploreResult struct {
	Verdict     string   `json:"verdict"` // solved | refuted | inconclusive
	States      int      `json:"states"`
	Transitions int      `json:"transitions"`
	Quiescent   int      `json:"quiescent"`
	Violations  []string `json:"violations,omitempty"`
	Resumed     bool     `json:"resumed,omitempty"`
	Attempt     int      `json:"attempt"`
	ElapsedNs   int64    `json:"elapsed_ns"`
}

// exploreRunner returns the jobs.Runner for kind "explore" with each
// run's metrics sink attached to reg, so /metrics aggregates every
// job's counters and latency histograms — running and finished alike.
func exploreRunner(reg *obs.Registry) jobs.Runner {
	return func(ctx context.Context, store *jobs.Store, job jobs.Job) ([]byte, error) {
		return runExploreJobWith(ctx, store, job, reg)
	}
}

// runExploreJob is the registry-less jobs.Runner for kind "explore"
// (the in-process tests use it directly).
func runExploreJob(ctx context.Context, store *jobs.Store, job jobs.Job) ([]byte, error) {
	return runExploreJobWith(ctx, store, job, nil)
}

func runExploreJobWith(ctx context.Context, store *jobs.Store, job jobs.Job, reg *obs.Registry) ([]byte, error) {
	var sp exploreSpec
	if err := json.Unmarshal(job.Spec, &sp); err != nil {
		return nil, fmt.Errorf("bad spec: %w", err)
	}
	symMode := explore.SymmetryOff
	if sp.Symmetry != "" {
		var err error
		if symMode, err = explore.ParseSymmetry(sp.Symmetry); err != nil {
			return nil, err
		}
	}
	prot, tsk, inputs, err := sp.Build()
	if err != nil {
		return nil, err
	}
	sys, err := prot.System(inputs)
	if err != nil {
		return nil, err
	}

	ckptPath := store.CheckpointPath(job.ID)
	eventsPath := store.EventsPath(job.ID)
	resume := false
	if info, err := explore.PeekCheckpoint(ckptPath); err == nil {
		// Trim events emitted after the snapshot (and any torn line the
		// kill left), so the resumed stream continues byte-identically.
		if err := obs.TruncateEventsFile(eventsPath, info.EventSeq); err != nil {
			return nil, err
		}
		resume = true
	} else if !errors.Is(err, fs.ErrNotExist) {
		// Unreadable checkpoint (e.g. damaged disk): start the job over
		// rather than failing it — correctness never depends on a
		// snapshot, only wall time does.
		os.Remove(ckptPath)
	}
	openFlags := os.O_CREATE | os.O_WRONLY
	if resume {
		openFlags |= os.O_APPEND
	} else {
		openFlags |= os.O_TRUNC // drop any stale pre-checkpoint stream
	}
	ef, err := os.OpenFile(eventsPath, openFlags, 0o644)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	emitter := obs.NewEmitter(ef)

	// A registry-attached sink makes the run visible to /metrics while
	// it executes; releasing it folds the final totals into the
	// registry's retired accumulator when the run ends.
	sink := reg.Attach()
	if sink == nil {
		sink = obs.NewSink()
	}
	defer reg.Release(sink)
	opts := explore.Options{
		Valency:        sp.Valency,
		MaxStates:      sp.MaxStates,
		Workers:        sp.Workers,
		HeartbeatEvery: sp.HeartbeatEvery,
		Symmetry:       symMode,
		Obs:            sink,
		Events:         emitter,
		Ctx:            ctx,
		Checkpoint: explore.CheckpointOptions{
			Path:        ckptPath,
			EveryLevels: sp.CheckpointEvery,
		},
	}
	if sp.Store {
		// The arena directory lives in the job's working directory; a
		// resumed attempt reopens (and truncates) any leftover arenas, so
		// crash debris never accumulates.
		opts.Store = cfgstore.Options{Dir: filepath.Join(store.Dir(job.ID), "store")}
		if sp.StoreBudget != "" {
			budget, err := cfgstore.ParseBudget(sp.StoreBudget)
			if err != nil {
				return nil, fmt.Errorf("bad spec: %w", err)
			}
			opts.Store.Budget = budget
		}
	} else if sp.StoreBudget != "" {
		return nil, fmt.Errorf("bad spec: store_budget without store")
	}
	if sp.PaceMs > 0 {
		pace := time.Duration(sp.PaceMs) * time.Millisecond
		opts.Checkpoint.After = func(int) error {
			// Sleep but stay cancellable; the barrier's own context poll
			// turns the cancellation into a final checkpoint + clean exit.
			select {
			case <-time.After(pace):
			case <-ctx.Done():
			}
			return nil
		}
	}

	start := time.Now()
	var rep *explore.Report
	// Release the disk-backed store (and remove its arenas) however the
	// run ends; the checkpoint alone carries resume state.
	defer func() {
		if rep != nil {
			rep.Close()
		}
	}()
	if resume {
		rep, err = explore.Resume(ckptPath, sys, tsk, opts)
	} else {
		rep, err = explore.Check(sys, tsk, opts)
	}
	verdict := ""
	switch {
	case errors.Is(err, explore.ErrStateLimit):
		verdict = "inconclusive"
	case err != nil:
		emitter.Sync()
		return nil, err
	case rep.Solved():
		verdict = "solved"
	default:
		verdict = "refuted"
	}
	if err := emitter.Sync(); err != nil {
		return nil, fmt.Errorf("event stream: %w", err)
	}
	if sp.Dot {
		maxNodes := sp.DotMaxNodes
		if maxNodes == 0 {
			maxNodes = 256
		}
		df, err := os.Create(filepath.Join(store.Dir(job.ID), "graph.dot"))
		if err != nil {
			return nil, err
		}
		if err := rep.WriteDOT(df, maxNodes); err != nil {
			df.Close()
			return nil, fmt.Errorf("dot: %w", err)
		}
		if err := df.Close(); err != nil {
			return nil, err
		}
	}
	res := exploreResult{
		Verdict:     verdict,
		States:      rep.States,
		Transitions: rep.Transitions,
		Quiescent:   rep.Quiescent,
		Resumed:     resume,
		Attempt:     job.Attempt,
		ElapsedNs:   int64(time.Since(start)),
	}
	for _, v := range rep.Violations {
		res.Violations = append(res.Violations, v.Error())
	}
	return json.MarshalIndent(&res, "", "  ")
}

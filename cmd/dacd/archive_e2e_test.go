package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"setagree/internal/jobs"
)

// TestArchiveKill9E2E is the bounded-journal acceptance test: run a
// daemon with aggressive archival (age 0, tiny journal bound, fast
// sweeps), finish jobs until they are gzipped out of the hot store,
// kill -9 the daemon, restart on the same data directory, and require
// every archived job to still be listed Done with its result, events,
// and DOT readable through the API — while the hot directories stay
// gone and the journal stays compacted.
func TestArchiveKill9E2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	dataDir := t.TempDir()
	archiveDir := filepath.Join(dataDir, "archive")
	archiveArgs := []string{
		"-archive", archiveDir,
		"-archive-age", "0s",
		"-archive-sweep", "100ms",
		"-journal-max", "256",
	}
	d := startDaemon(t, dataDir, archiveArgs...)

	var ids []string
	for i := 0; i < 3; i++ {
		job := submitExplore(t, d.base, map[string]any{
			"protocol": "alg2", "n": 3, "p": 1, "dot": true, "heartbeat_every": 64,
		})
		ids = append(ids, job.ID)
		waitJob(t, d.base, job.ID, jobs.Done, 60*time.Second)
	}

	// Wait for the sweeps to evict all three.
	waitArchived := func(base string) listResponse {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			resp, err := http.Get(base + "/jobs")
			if err != nil {
				t.Fatal(err)
			}
			var list listResponse
			if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			archived := 0
			for _, j := range list.Jobs {
				if j.Archived {
					archived++
				}
			}
			if archived == len(ids) {
				return list
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d/%d jobs archived in time", archived, len(ids))
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	list := waitArchived(d.base)
	if list.ArchiveBytes <= 0 {
		t.Errorf("archive_bytes = %d after archival", list.ArchiveBytes)
	}

	// kill -9: archival state must be fully recoverable from disk.
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	d2 := startDaemon(t, dataDir, archiveArgs...)
	list = waitArchived(d2.base)
	if len(list.Jobs) != len(ids) {
		t.Fatalf("restarted daemon lists %d jobs, want %d", len(list.Jobs), len(ids))
	}
	for _, j := range list.Jobs {
		if j.State != jobs.Done || !j.Archived {
			t.Errorf("job %s after restart: state=%s archived=%v", j.ID, j.State, j.Archived)
		}
	}
	for _, id := range ids {
		res := getResult(t, d2.base, id)
		if res.Verdict != "solved" {
			t.Errorf("archived job %s verdict %q after restart", id, res.Verdict)
		}
		// SSE replay of an archived stream must still deliver the full
		// event log and the done frame.
		resp, err := http.Get(d2.base + "/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		stream := readUntilDone(t, resp)
		if !strings.Contains(stream, `"event":"explore.done"`) {
			t.Errorf("archived SSE replay of %s missing explore.done", id)
		}
		dresp, err := http.Get(d2.base + "/jobs/" + id + "/dot")
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Errorf("archived DOT fetch of %s: %s", id, dresp.Status)
		}
		// The hot directory stays evicted; the archive carries the data.
		if _, err := os.Stat(filepath.Join(dataDir, "jobs", id)); !os.IsNotExist(err) {
			t.Errorf("hot dir of archived job %s reappeared: %v", id, err)
		}
		if _, err := os.Stat(filepath.Join(archiveDir, id, "events.jsonl.gz")); err != nil {
			t.Errorf("archive of %s missing events: %v", id, err)
		}
	}
	// Compaction holds the journal to one line per job (plus any
	// post-compaction appends before the next sweep).
	buf, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(buf), "\n"); lines > 2*len(ids) {
		t.Errorf("journal has %d lines for %d jobs after compaction", lines, len(ids))
	}

	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Errorf("daemon exited uncleanly after SIGTERM: %v", err)
	}
}

// readUntilDone drains an SSE response until its done frame (or EOF)
// and returns everything read.
func readUntilDone(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if strings.Contains(sb.String(), "event: done") || err != nil {
			return sb.String()
		}
	}
	t.Fatal("SSE stream never reached done frame")
	return ""
}

package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"setagree/internal/jobs"
)

// TestSubmitBackpressure pins the HTTP face of the bounded queue: a
// full pending queue turns POST /jobs into 429 with a Retry-After
// header, GET /jobs reports the occupancy and bound, and capacity
// freed by the pool makes submissions succeed again.
func TestSubmitBackpressure(t *testing.T) {
	t.Parallel()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	release := make(chan struct{})
	pool := jobs.NewPool(store, 1, map[string]jobs.Runner{
		"block": func(ctx context.Context, s *jobs.Store, j jobs.Job) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})
	ts := httptest.NewServer(newServer(store, pool, serverOptions{}))
	defer ts.Close()
	defer pool.Drain(context.Background())
	defer close(release)

	// Occupy the single worker, then fill the queue.
	running := postJSON(t, ts.URL+"/jobs", map[string]any{"kind": "block"})
	blocked := decodeJob(t, running)
	waitJob(t, ts.URL, blocked.ID, jobs.Running, 10*time.Second)
	store.LimitPending(1)
	queued := decodeJob(t, postJSON(t, ts.URL+"/jobs", map[string]any{"kind": "block"}))

	resp := postJSON(t, ts.URL+"/jobs", map[string]any{"kind": "block"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over bound: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 response carries no Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 30 {
		// The hint is derived from the observed drain rate; whatever the
		// history, it must parse and stay within the clamp.
		t.Errorf("Retry-After = %q, want an integer in [1,30]", ra)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("429 body = %+v, %v; want an error message", body, err)
	}

	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list listResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Pending != 1 || list.MaxPending != 1 || len(list.Jobs) != 2 {
		t.Fatalf("GET /jobs = pending %d, max_pending %d, %d jobs; want 1, 1, 2",
			list.Pending, list.MaxPending, len(list.Jobs))
	}

	// Draining the queue restores capacity.
	release <- struct{}{} // finish the running job; the worker claims the queued one
	waitJob(t, ts.URL, queued.ID, jobs.Running, 10*time.Second)
	resp2 := postJSON(t, ts.URL+"/jobs", map[string]any{"kind": "block"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after drain: %s, want 202", resp2.Status)
	}
}

// TestExploreJobDiskStore runs an explore job with the out-of-core
// store and checks its verdict matches an in-memory job's, the arena
// files are cleaned out of the job directory, and budget misuse in the
// spec fails the job up front.
func TestExploreJobDiskStore(t *testing.T) {
	t.Parallel()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pool := jobs.NewPool(store, 1, map[string]jobs.Runner{"explore": runExploreJob})
	ts := httptest.NewServer(newServer(store, pool, serverOptions{}))
	defer ts.Close()
	defer pool.Drain(context.Background())

	spec := map[string]any{"protocol": "alg2", "n": 3, "p": 1, "valency": true}
	mem := submitExplore(t, ts.URL, spec)
	waitJob(t, ts.URL, mem.ID, jobs.Done, 30*time.Second)

	spec["store"] = true
	spec["store_budget"] = "1GB"
	disk := submitExplore(t, ts.URL, spec)
	waitJob(t, ts.URL, disk.ID, jobs.Done, 30*time.Second)
	if got, want := verdictOf(getResult(t, ts.URL, disk.ID)), verdictOf(getResult(t, ts.URL, mem.ID)); got.Verdict != want.Verdict ||
		got.States != want.States || got.Transitions != want.Transitions || got.Quiescent != want.Quiescent {
		t.Errorf("disk-store job verdict %+v, want %+v", got, want)
	}
	if ents, err := os.ReadDir(filepath.Join(store.Dir(disk.ID), "store")); err == nil && len(ents) != 0 {
		t.Errorf("arena files left in job dir after run: %v", ents)
	}

	bad := submitExplore(t, ts.URL, map[string]any{"protocol": "alg2", "n": 3, "p": 1, "store_budget": "1GB"})
	j := waitJob(t, ts.URL, bad.ID, jobs.Failed, 30*time.Second)
	if j.Error == "" {
		t.Errorf("budget-without-store job failed with no error message")
	}
}

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"setagree/internal/explore"
	"setagree/internal/jobs"
)

// TestMain doubles as the daemon entry point for the e2e tests: when
// DACD_CHILD is set, the test binary becomes dacd itself (re-exec
// pattern), so the kill -9 smoke test needs no separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("DACD_CHILD") == "1" {
		os.Exit(run(strings.Fields(os.Getenv("DACD_ARGS")), os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobs.Job {
	t.Helper()
	defer resp.Body.Close()
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func submitExplore(t *testing.T, base string, spec map[string]any) jobs.Job {
	t.Helper()
	resp := postJSON(t, base+"/jobs", map[string]any{"kind": "explore", "spec": spec})
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	return decodeJob(t, resp)
}

func waitJob(t *testing.T, base, id string, want jobs.State, timeout time.Duration) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decodeJob(t, resp)
		if j.State == want {
			return j
		}
		if j.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (error %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getResult(t *testing.T, base, id string) exploreResult {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("result: %s: %s", resp.Status, body)
	}
	var res exploreResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// verdictOf projects the deterministic fields of a result — the part
// that must be identical between a resumed and an uninterrupted run.
func verdictOf(r exploreResult) exploreResult {
	return exploreResult{
		Verdict:     r.Verdict,
		States:      r.States,
		Transitions: r.Transitions,
		Quiescent:   r.Quiescent,
		Violations:  r.Violations,
	}
}

// normalizeEvents strips the wall-time "ts" key from every JSONL line,
// leaving the deterministic stream (seq, event name, payload).
func normalizeEvents(t *testing.T, path string) []string {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(buf)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		delete(m, "ts")
		norm, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(norm))
	}
	return out
}

// TestServerAPI exercises the HTTP surface in-process: submit, status,
// result, SSE streaming to end-of-job, cancel, and the error statuses.
func TestServerAPI(t *testing.T) {
	t.Parallel()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	pool := jobs.NewPool(store, 1, map[string]jobs.Runner{"explore": runExploreJob})
	ts := httptest.NewServer(newServer(store, pool, serverOptions{}))
	defer ts.Close()
	defer pool.Drain(context.Background())

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	job := submitExplore(t, ts.URL, map[string]any{"protocol": "alg2", "n": 3, "p": 1})
	waitJob(t, ts.URL, job.ID, jobs.Done, 30*time.Second)
	res := getResult(t, ts.URL, job.ID)
	if res.Verdict != "solved" || res.States == 0 {
		t.Fatalf("result: %+v", res)
	}

	// SSE: the full stream of a finished job replays, then `event: done`.
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var dataLines int
	var sawDone bool
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: {") {
			dataLines++
		}
		if line == "event: done" {
			sawDone = true
			break
		}
	}
	if dataLines == 0 || !sawDone {
		t.Fatalf("SSE stream: %d data lines, done=%v", dataLines, sawDone)
	}
	if !strings.Contains(string(mustRead(t, store.EventsPath(job.ID))), `"event":"explore.done"`) {
		t.Error("events file missing explore.done terminal event")
	}

	// Cancel a paced job mid-run.
	slow := submitExplore(t, ts.URL, map[string]any{
		"protocol": "alg2", "n": 3, "p": 1, "checkpoint_every": 1, "pace_ms": 300,
	})
	waitJob(t, ts.URL, slow.ID, jobs.Running, 10*time.Second)
	cresp := postJSON(t, ts.URL+"/jobs/"+slow.ID+"/cancel", nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", cresp.Status)
	}
	cresp.Body.Close()
	waitJob(t, ts.URL, slow.ID, jobs.Canceled, 10*time.Second)
	if rr, err := http.Get(ts.URL + "/jobs/" + slow.ID + "/result"); err != nil || rr.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: %v %v", rr.Status, err)
	} else {
		rr.Body.Close()
	}

	// Unknown job IDs 404 everywhere.
	for _, path := range []string{"/jobs/job-999999", "/jobs/job-999999/result", "/jobs/job-999999/events"} {
		if resp, err := http.Get(ts.URL + path); err != nil || resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: %v %v", path, resp.Status, err)
		} else {
			resp.Body.Close()
		}
	}
	// Bad submissions 400.
	if resp := postJSON(t, ts.URL+"/jobs", map[string]any{"spec": map[string]any{}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("kindless submit: %s", resp.Status)
	} else {
		resp.Body.Close()
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// daemon is one spawned dacd child process.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

func startDaemon(t *testing.T, dataDir string, extraArgs ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	args := "-addr 127.0.0.1:0 -data " + dataDir + " -job-workers 1"
	if len(extraArgs) > 0 {
		args += " " + strings.Join(extraArgs, " ")
	}
	cmd.Env = append(os.Environ(),
		"DACD_CHILD=1",
		"DACD_ARGS="+args)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		t.Fatal("daemon exited before announcing its address")
	}
	line := sc.Text()
	const marker = "listening on http://"
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected daemon greeting: %q", line)
	}
	base := "http://" + strings.Fields(line[i+len(marker):])[0]
	go io.Copy(io.Discard, out) // keep the pipe drained
	return &daemon{cmd: cmd, base: base}
}

// TestKill9ResumeE2E is the acceptance smoke test: submit an explore
// job over HTTP, watch its SSE stream, kill -9 the daemon mid-run,
// restart it on the same data directory, and require the job to finish
// from its last checkpoint with the same verdict — and the same
// deterministic event stream — as an uninterrupted run.
func TestKill9ResumeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir)

	spec := map[string]any{
		"protocol": "alg2", "n": 4, "p": 1,
		"workers": 1, "heartbeat_every": 64,
		"checkpoint_every": 1, "pace_ms": 100,
	}
	job := submitExplore(t, d.base, spec)

	// Stream SSE live while the job runs.
	sseResp, err := http.Get(d.base + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sseData := make(chan string, 256)
	go func() {
		defer close(sseData)
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				select {
				case sseData <- strings.TrimPrefix(line, "data: "):
				default:
				}
			}
		}
	}()
	defer sseResp.Body.Close()
	select {
	case line := <-sseData:
		if !strings.Contains(line, `"event"`) {
			t.Fatalf("unexpected SSE payload: %q", line)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("no SSE event arrived while the job ran")
	}

	// Wait until at least two checkpointed levels are on disk, then
	// kill -9 mid-run.
	ckptPath := filepath.Join(dataDir, "jobs", job.ID, "checkpoint.ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if info, err := explore.PeekCheckpoint(ckptPath); err == nil && info.Level >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint reached level 2 in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	// Restart on the same data directory: the orphaned job is requeued
	// and resumes from the checkpoint.
	d2 := startDaemon(t, dataDir)
	done := waitJob(t, d2.base, job.ID, jobs.Done, 120*time.Second)
	if done.Attempt < 2 {
		t.Errorf("attempt = %d, want >= 2 (job must have been resumed)", done.Attempt)
	}
	res := getResult(t, d2.base, job.ID)
	if !res.Resumed {
		t.Error("result not marked resumed")
	}

	// Reference: the identical instance, uninterrupted (no pacing).
	ref := submitExplore(t, d2.base, map[string]any{
		"protocol": "alg2", "n": 4, "p": 1, "workers": 1, "heartbeat_every": 64,
	})
	waitJob(t, d2.base, ref.ID, jobs.Done, 120*time.Second)
	refRes := getResult(t, d2.base, ref.ID)

	if got, want := verdictOf(res), verdictOf(refRes); !reflect.DeepEqual(got, want) {
		t.Errorf("resumed verdict differs from uninterrupted run:\n%+v\nvs\n%+v", got, want)
	}
	if res.Verdict != "solved" {
		t.Errorf("verdict = %q, want solved", res.Verdict)
	}
	killed := normalizeEvents(t, filepath.Join(dataDir, "jobs", job.ID, "events.jsonl"))
	refEvents := normalizeEvents(t, filepath.Join(dataDir, "jobs", ref.ID, "events.jsonl"))
	if !reflect.DeepEqual(killed, refEvents) {
		t.Errorf("resumed event stream differs from uninterrupted run (%d vs %d lines)",
			len(killed), len(refEvents))
		for i := 0; i < len(killed) && i < len(refEvents); i++ {
			if killed[i] != refEvents[i] {
				t.Errorf("first divergence at line %d:\n%s\nvs\n%s", i, killed[i], refEvents[i])
				break
			}
		}
	}

	// Graceful shutdown of the second daemon: SIGTERM drains cleanly.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d2.cmd.Wait(); err != nil {
		t.Errorf("daemon exited uncleanly after SIGTERM: %v", err)
	}
	if fmt.Sprint(d2.cmd.ProcessState.ExitCode()) != "0" {
		t.Errorf("exit code %d after SIGTERM, want 0", d2.cmd.ProcessState.ExitCode())
	}
}

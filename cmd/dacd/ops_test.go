package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"setagree/internal/jobs"
)

func opsServer(t *testing.T, opts serverOptions, runners map[string]jobs.Runner) (*httptest.Server, *jobs.Store) {
	t.Helper()
	store, err := jobs.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	pool := jobs.NewPool(store, 1, runners)
	ts := httptest.NewServer(newServer(store, pool, opts))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { pool.Drain(context.Background()) })
	return ts, store
}

// TestDashboardAssets: the embedded dashboard serves with the right
// content types and unknown paths still 404 (the index route is exact).
func TestDashboardAssets(t *testing.T) {
	t.Parallel()
	ts, _ := opsServer(t, serverOptions{}, nil)
	cases := []struct {
		path, wantType, marker string
	}{
		{"/", "text/html", "<table id=\"jobs\">"},
		{"/static/app.js", "text/javascript", "explore.heartbeat"},
		{"/static/style.css", "text/css", ".spark"},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + c.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %s", c.path, resp.Status)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, c.wantType) {
			t.Errorf("GET %s: content type %q, want %s", c.path, ct, c.wantType)
		}
		if !strings.Contains(string(body), c.marker) {
			t.Errorf("GET %s: body missing %q", c.path, c.marker)
		}
	}
	for _, path := range []string{"/nonsense", "/static/missing.js", "/jobs/job-999999/dot"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %s, want 404", path, resp.Status)
		}
	}
}

// TestDotEndpoint: a job submitted with "dot": true serves its graph,
// and one without 404s.
func TestDotEndpoint(t *testing.T) {
	t.Parallel()
	ts, _ := opsServer(t, serverOptions{}, map[string]jobs.Runner{"explore": runExploreJob})

	withDot := submitExplore(t, ts.URL, map[string]any{"protocol": "alg2", "n": 3, "p": 1, "dot": true})
	waitJob(t, ts.URL, withDot.ID, jobs.Done, 30*time.Second)
	resp, err := http.Get(ts.URL + "/jobs/" + withDot.ID + "/dot")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dot fetch: %s: %s", resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/vnd.graphviz") {
		t.Errorf("dot content type %q", ct)
	}
	if !strings.HasPrefix(string(body), "digraph") {
		t.Errorf("dot body does not start with digraph: %.60q", body)
	}

	plain := submitExplore(t, ts.URL, map[string]any{"protocol": "alg2", "n": 3, "p": 1})
	waitJob(t, ts.URL, plain.ID, jobs.Done, 30*time.Second)
	if resp, err := http.Get(ts.URL + "/jobs/" + plain.ID + "/dot"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dotless job: %v %v, want 404", resp.Status, err)
	} else {
		resp.Body.Close()
	}
}

// TestSSEKeepalive: a slow stream (running job that emits nothing)
// still carries `: keepalive` comment frames on the configured cadence
// and the X-Accel-Buffering opt-out, so proxies neither buffer nor
// reap it; when the job finishes, the done frame still arrives.
func TestSSEKeepalive(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	ts, _ := opsServer(t, serverOptions{KeepAlive: 80 * time.Millisecond}, map[string]jobs.Runner{
		"block": func(ctx context.Context, s *jobs.Store, j jobs.Job) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return []byte(`{}`), nil
		},
	})
	job := decodeJob(t, postJSON(t, ts.URL+"/jobs", map[string]any{"kind": "block"}))
	waitJob(t, ts.URL, job.ID, jobs.Running, 10*time.Second)

	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Accel-Buffering"); got != "no" {
		t.Errorf("X-Accel-Buffering = %q, want no", got)
	}

	type scanMsg struct {
		line string
		err  error
	}
	lines := make(chan scanMsg, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- scanMsg{line: sc.Text()}
		}
		lines <- scanMsg{err: io.EOF}
	}()
	readLine := func() string {
		t.Helper()
		select {
		case m := <-lines:
			if m.err != nil {
				t.Fatal("stream ended before expected frame")
			}
			return m.line
		case <-time.After(5 * time.Second):
			t.Fatal("no SSE frame within 5s")
			return ""
		}
	}

	// The idle stream must produce two keepalive comments (proving a
	// cadence, not a one-shot) before any data.
	keepalives := 0
	for keepalives < 2 {
		line := readLine()
		if strings.HasPrefix(line, "data:") {
			t.Fatalf("unexpected data frame on idle stream: %q", line)
		}
		if strings.HasPrefix(line, ": keepalive") {
			keepalives++
		}
	}

	close(release)
	deadline := time.After(10 * time.Second)
	for {
		select {
		case m := <-lines:
			if m.err != nil {
				t.Fatal("stream ended without done frame")
			}
			if m.line == "event: done" {
				return
			}
		case <-deadline:
			t.Fatal("no done frame after job completion")
		}
	}
}

// TestDashboardLiveDataPath drives exactly the pipeline the dashboard
// JS consumes for its sparkline: poll GET /jobs for a running paced
// job, tail its SSE stream, and turn explore.heartbeat events into
// rate samples. The run must yield at least two samples with growing
// state counts — the data a live sparkline is drawn from.
func TestDashboardLiveDataPath(t *testing.T) {
	t.Parallel()
	ts, _ := opsServer(t, serverOptions{}, map[string]jobs.Runner{"explore": runExploreJob})
	job := submitExplore(t, ts.URL, map[string]any{
		"protocol": "alg2", "n": 4, "p": 1,
		"workers": 1, "heartbeat_every": 64, "checkpoint_every": 1, "pace_ms": 50,
	})
	waitJob(t, ts.URL, job.ID, jobs.Running, 10*time.Second)

	// The dashboard's poll loop: GET /jobs must list the job running
	// with the disk-size footer fields present.
	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list listResponse
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Jobs) != 1 || list.JournalBytes <= 0 {
		t.Fatalf("poll view: %d jobs, journal %d bytes", len(list.Jobs), list.JournalBytes)
	}

	// The dashboard's EventSource: collect heartbeat samples live.
	resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	type sample struct{ states, frontier float64 }
	var samples []sample
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(60 * time.Second)
	for sc.Scan() && time.Now().Before(deadline) {
		line := sc.Text()
		if line == "event: done" {
			break
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if ev["event"] != "explore.heartbeat" {
			continue
		}
		states, ok := ev["states"].(float64)
		frontier, fok := ev["frontier"].(float64)
		if !ok || !fok {
			t.Fatalf("heartbeat missing sparkline fields: %v", ev)
		}
		samples = append(samples, sample{states, frontier})
		if len(samples) >= 2 {
			break
		}
	}
	if len(samples) < 2 {
		t.Fatalf("got %d heartbeat samples, want >= 2 for a sparkline", len(samples))
	}
	if samples[1].states <= samples[0].states {
		t.Errorf("states not growing across heartbeats: %v", samples)
	}
	waitJob(t, ts.URL, job.ID, jobs.Done, 120*time.Second)
}

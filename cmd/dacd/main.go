// Command dacd is the durable-runs daemon: it keeps a disk-backed job
// store (internal/jobs), runs submitted explorations on a worker pool,
// checkpoints them at BFS level boundaries (internal/checkpoint), and
// serves an HTTP API with live event streaming, a Prometheus /metrics
// endpoint, and an embedded live dashboard.
//
// Usage:
//
//	dacd -addr 127.0.0.1:8099 -data ./dacd-data [-job-workers N] [-max-pending N]
//	     [-archive DIR] [-journal-max SIZE] [-archive-age D] [-archive-sweep D]
//	     [-pprof] [-coordinator [-workers URL,URL,...]]
//
// Checking cluster: every daemon accepts "sweep" (a whole falsification
// sweep) and "sweep-shard" (one candidate range of a sweep) jobs. A
// daemon started with -coordinator -workers splits each "sweep" into
// candidate-range shards, dispatches them as "sweep-shard" jobs to the
// worker daemons, retries shards lost to worker death, steals work from
// stragglers, and merges the shard reports. The merged result is
// byte-identical to running the same "sweep" on a single plain daemon:
// candidates index deterministically, so shard boundaries, retries, and
// steals never show in the report. See EXPERIMENTS.md "Running a
// checking cluster".
//
// Set-consensus collections sweeps ride the same machinery:
// "collections-sweep" decides task solvability for every collection in
// a multiset space (internal/collections) and "collections-shard" is
// its per-range worker job. The same byte-identity guarantee holds —
// collections index deterministically, so the merged report never
// shows the shard schedule. See EXPERIMENTS.md "Set-consensus
// collections".
//
// API (see EXPERIMENTS.md "Durable runs" for the full catalog):
//
//	GET  /                   live dashboard (embedded, no build step)
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus text exposition: request
//	                         counters/latency quantiles, job-table
//	                         gauges, journal/archive sizes, and the
//	                         aggregated run metrics of every job
//	POST /jobs               submit {"kind":"explore","spec":{...}};
//	                         429 + Retry-After when the pending queue
//	                         is at -max-pending
//	GET  /jobs               list all jobs, plus pending/max_pending
//	                         and journal/archive byte sizes
//	GET  /jobs/{id}          one job's state
//	POST /jobs/{id}/cancel   cancel (pending or running)
//	GET  /jobs/{id}/result   result document of a done job
//	GET  /jobs/{id}/dot      Graphviz graph of a job run with "dot":true
//	GET  /jobs/{id}/events   live JSONL event stream over SSE
//	GET  /debug/pprof/*      profiler (only with -pprof)
//
// Durability: every job transition is journaled; every exploration
// checkpoints into the job's directory. SIGINT/SIGTERM drains
// gracefully — in-flight jobs write a final checkpoint, flush their
// event streams, and return to the queue. A kill -9 loses nothing the
// last checkpoint didn't cover: on restart, orphaned jobs are requeued
// and resume from their checkpoints with byte-identical reports and
// event streams.
//
// Bounded footprint: with -archive set, a background sweep gzips
// finished jobs' payloads into the archive directory every
// -archive-sweep interval (keeping jobs younger than -archive-age
// hot), and compacts the journal to one line per job whenever it
// exceeds -journal-max. Reads of archived jobs (result, events, DOT)
// decompress transparently; kill -9 at any point of a sweep leaves
// either the hot copy or a complete archive.
//
// Exit status: 0 clean shutdown, 2 startup or shutdown error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"setagree/internal/jobs"
	"setagree/internal/obs"
	cfgstore "setagree/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dacd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8099", "listen address (port 0 picks a free port)")
	dataDir := fs.String("data", "dacd-data", "durable state directory (journal, checkpoints, events, results)")
	workers := fs.Int("job-workers", 2, "concurrent job runners")
	maxPending := fs.Int("max-pending", 256, "pending-queue bound: submissions beyond it get 429 with Retry-After (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget (final checkpoints + flushes)")
	archiveDir := fs.String("archive", "", "archive directory: finished jobs' payloads are gzipped here and evicted from the hot store (empty = keep everything hot)")
	journalMax := fs.String("journal-max", "4MB", "compact the job journal when it exceeds this size (store -budget syntax; 0 = never)")
	archiveAge := fs.Duration("archive-age", time.Minute, "keep finished jobs hot for this long before archiving them")
	archiveSweep := fs.Duration("archive-sweep", 30*time.Second, "interval between archival sweeps")
	pprofOn := fs.Bool("pprof", false, "serve the profiler under /debug/pprof/")
	coordinator := fs.Bool("coordinator", false, "coordinate \"sweep\" jobs across the -workers cluster (without -workers, sweeps run in-process)")
	workerURLs := fs.String("workers", "", "comma-separated worker daemon base URLs for -coordinator shard dispatch")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var clusterWorkers []string
	if *workerURLs != "" {
		if !*coordinator {
			fmt.Fprintln(stderr, "dacd: -workers requires -coordinator")
			return 2
		}
		for _, u := range strings.Split(*workerURLs, ",") {
			if u = strings.TrimSpace(strings.TrimSuffix(u, "/")); u != "" {
				clusterWorkers = append(clusterWorkers, u)
			}
		}
	}
	journalBound, err := cfgstore.ParseBudget(*journalMax)
	if err != nil {
		fmt.Fprintf(stderr, "dacd: -journal-max: %v\n", err)
		return 2
	}

	store, err := jobs.Open(*dataDir)
	if err != nil {
		fmt.Fprintf(stderr, "dacd: %v\n", err)
		return 2
	}
	store.LimitPending(*maxPending)
	policy := jobs.ArchivePolicy{Dir: *archiveDir, JournalMax: journalBound, MaxAge: *archiveAge}
	if err := store.SetArchive(policy); err != nil {
		fmt.Fprintf(stderr, "dacd: %v\n", err)
		store.Close()
		return 2
	}

	reg := obs.NewRegistry()
	pool := jobs.NewPool(store, *workers, map[string]jobs.Runner{
		"explore":           exploreRunner(reg),
		"sweep":             sweepRunner(reg, clusterWorkers),
		"sweep-shard":       sweepShardRunner(reg),
		"collections-sweep": collectionsRunner(reg, clusterWorkers),
		"collections-shard": collectionsShardRunner(reg),
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "dacd: %v\n", err)
		store.Close()
		return 2
	}
	srv := &http.Server{Handler: newServer(store, pool, serverOptions{Registry: reg, Pprof: *pprofOn})}
	fmt.Fprintf(stdout, "dacd: listening on http://%s (data in %s)\n", ln.Addr(), *dataDir)

	// Background archival: bound the hot footprint while the daemon
	// serves. Sweeps never touch non-terminal jobs, so they are safe to
	// run alongside the pool.
	sweepDone := make(chan struct{})
	sweepStop := make(chan struct{})
	if policy.Dir != "" || policy.JournalMax > 0 {
		go func() {
			defer close(sweepDone)
			ticker := time.NewTicker(*archiveSweep)
			defer ticker.Stop()
			for {
				if _, err := store.Sweep(); err != nil {
					fmt.Fprintf(stderr, "dacd: archive sweep: %v\n", err)
				}
				select {
				case <-sweepStop:
					return
				case <-ticker.C:
				}
			}
		}()
	} else {
		close(sweepDone)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	code := 0
	select {
	case s := <-sig:
		fmt.Fprintf(stdout, "dacd: received %v, draining\n", s)
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "dacd: %v\n", err)
			code = 2
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.Shutdown(ctx)
	close(sweepStop)
	<-sweepDone
	// Drain the pool before closing the store: in-flight runs
	// checkpoint, flush their event streams, and requeue as pending.
	if err := pool.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "dacd: %v\n", err)
		code = 2
	}
	if err := store.Close(); err != nil {
		fmt.Fprintf(stderr, "dacd: %v\n", err)
		code = 2
	}
	if code == 0 {
		fmt.Fprintln(stdout, "dacd: clean shutdown")
	}
	return code
}

package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"setagree/internal/jobs"
	"setagree/internal/obs"
)

// Metric names under the server's own sink. HTTP request counters are
// keyed per route pattern behind a separator the renderer splits back
// into a label, so the hot path stays a single map lookup + atomic add.
const (
	httpRequestsPrefix = "dacd.http.requests|"
	httpLatencyName    = "dacd.http_ns"
)

// serverStats is the store-level state /metrics exports alongside the
// obs registry: queue occupancy, the job table by lifecycle state, and
// the on-disk footprint the archival sweeps bound.
type serverStats struct {
	Pending      int
	MaxPending   int
	States       map[jobs.State]int
	JournalBytes int64
	ArchiveBytes int64
}

// jobStates is every lifecycle state, in exposition order. All states
// are always exported (at 0 when absent) so scrape series never
// appear and disappear.
var jobStates = []jobs.State{jobs.Canceled, jobs.Done, jobs.Failed, jobs.Pending, jobs.Running}

// renderMetrics writes the Prometheus text exposition of a gathered
// snapshot plus the server stats. It is a pure function of its inputs
// — names are sorted and all formatting is fixed — so the output is
// byte-stable for a given state (the golden test pins it).
//
// Naming scheme, stable across releases:
//
//   - dacd_* families describe the daemon: per-route request counters,
//     request-latency quantiles, job-table gauges, journal/archive
//     sizes.
//   - every other sink metric exports under its dotted name with dots
//     flattened to underscores: counters as <name>_total, gauges
//     verbatim, timers as <name>_ns_total + <name>_calls_total,
//     histograms as ns summaries with quantile labels. The explorer's
//     metrics all start with explore_.
func renderMetrics(w io.Writer, snap obs.Snapshot, st serverStats) {
	writeHeader(w, "dacd_archive_bytes", "gauge", "Bytes of gzipped archived job payloads.")
	fmt.Fprintf(w, "dacd_archive_bytes %d\n", st.ArchiveBytes)

	writeHeader(w, "dacd_http_request_duration_ns", "summary", "HTTP request latency in nanoseconds (log-bucketed estimates; SSE streams excluded).")
	writeSummary(w, "dacd_http_request_duration_ns", snap.Histograms[httpLatencyName])

	writeHeader(w, "dacd_http_requests_total", "counter", "HTTP requests served, by route pattern.")
	var routes []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, httpRequestsPrefix) {
			routes = append(routes, strings.TrimPrefix(name, httpRequestsPrefix))
		}
	}
	sort.Strings(routes)
	for _, route := range routes {
		fmt.Fprintf(w, "dacd_http_requests_total{route=%q} %d\n", route, snap.Counters[httpRequestsPrefix+route])
	}

	writeHeader(w, "dacd_jobs", "gauge", "Jobs in the store, by lifecycle state.")
	for _, state := range jobStates {
		fmt.Fprintf(w, "dacd_jobs{state=%q} %d\n", state, st.States[state])
	}
	writeHeader(w, "dacd_jobs_max_pending", "gauge", "Submit bound on the pending queue (0 = unlimited).")
	fmt.Fprintf(w, "dacd_jobs_max_pending %d\n", st.MaxPending)
	writeHeader(w, "dacd_jobs_pending", "gauge", "Jobs waiting in the queue.")
	fmt.Fprintf(w, "dacd_jobs_pending %d\n", st.Pending)
	writeHeader(w, "dacd_journal_bytes", "gauge", "Size of the hot job journal.")
	fmt.Fprintf(w, "dacd_journal_bytes %d\n", st.JournalBytes)

	// Everything else in the registry (explore_* today), sorted by
	// family name. Server-internal dacd.* names were rendered above.
	type family struct {
		name, typ, help string
		write           func(io.Writer)
	}
	var fams []family
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "dacd.") {
			continue
		}
		fam, v := flatten(name)+"_total", v
		fams = append(fams, family{fam, "counter", "Run counter " + name + ".",
			func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", fam, v) }})
	}
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "dacd.") {
			continue
		}
		fam, v := flatten(name), v
		fams = append(fams, family{fam, "gauge", "Run gauge " + name + ".",
			func(w io.Writer) { fmt.Fprintf(w, "%s %d\n", fam, v) }})
	}
	for name, t := range snap.Timers {
		if strings.HasPrefix(name, "dacd.") {
			continue
		}
		fam, t := flatten(name), t
		fams = append(fams, family{fam + "_ns_total", "counter", "Total nanoseconds in timer " + name + ".",
			func(w io.Writer) { fmt.Fprintf(w, "%s_ns_total %d\n", fam, t.TotalNS) }})
		fams = append(fams, family{fam + "_calls_total", "counter", "Observations of timer " + name + ".",
			func(w io.Writer) { fmt.Fprintf(w, "%s_calls_total %d\n", fam, t.Count) }})
	}
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "dacd.") {
			continue
		}
		fam, h := flatten(name), h
		fams = append(fams, family{fam, "summary", "Latency distribution " + name + " (log-bucketed estimates).",
			func(w io.Writer) { writeSummary(w, fam, h) }})
	}
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })
	for _, f := range fams {
		writeHeader(w, f.name, f.typ, f.help)
		f.write(w)
	}
}

func writeHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeSummary renders one histogram as a Prometheus summary: the
// three quantile estimates, then the _sum and _count series.
func writeSummary(w io.Writer, name string, h obs.HistogramSnapshot) {
	fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", name, h.P50)
	fmt.Fprintf(w, "%s{quantile=\"0.9\"} %d\n", name, h.P90)
	fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", name, h.P99)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// flatten turns a dotted sink name into a Prometheus-legal one.
// Coordinator metrics (cluster.*) and collections-sweep metrics
// (collections.*) are daemon-level, not run-level, so they export in
// the daemon's namespace as dacd_cluster_* / dacd_collections_*
// families.
func flatten(name string) string {
	flat := strings.NewReplacer(".", "_", "-", "_").Replace(name)
	if strings.HasPrefix(name, "cluster.") || strings.HasPrefix(name, "collections.") {
		return "dacd_" + flat
	}
	return flat
}

package main

import (
	"context"
	"encoding/json"
	"fmt"

	"setagree/internal/cluster"
	"setagree/internal/jobs"
	"setagree/internal/obs"
)

// collectionsShardRunner returns the jobs.Runner for kind
// "collections-shard": the worker half of a partitioned collections
// sweep. The spec is a cluster.CollectionsShardJob
// ({"collections":{...},"lo":L,"hi":H}); the result is the shard's
// RangeReport. Like sweep shards, collections shards are not
// checkpointed — verdicts are deterministic and each shard is cheap to
// re-decide, so a lost worker costs one shard re-run.
func collectionsShardRunner(reg *obs.Registry) jobs.Runner {
	return func(ctx context.Context, store *jobs.Store, job jobs.Job) ([]byte, error) {
		var cj cluster.CollectionsShardJob
		if err := json.Unmarshal(job.Spec, &cj); err != nil {
			return nil, fmt.Errorf("bad spec: %w", err)
		}
		emitter, closeEvents, err := jobEmitter(store, job.ID)
		if err != nil {
			return nil, err
		}
		defer closeEvents()
		sink := reg.Attach()
		if sink == nil {
			sink = obs.NewSink()
		}
		defer reg.Release(sink)
		rep, err := cluster.RunCollectionsShard(ctx, cj, sink, emitter)
		if err != nil {
			emitter.Sync()
			return nil, err
		}
		if err := emitter.Sync(); err != nil {
			return nil, fmt.Errorf("event stream: %w", err)
		}
		return json.MarshalIndent(rep, "", "  ")
	}
}

// collectionsJobSpec is the JSON spec of a "collections-sweep" job:
// the collections spec plus the coordinator's partitioning knobs, the
// same split as sweepJobSpec — topology stays an operator decision.
type collectionsJobSpec struct {
	Collections cluster.CollectionsSpec `json:"collections"`
	// Shards overrides the shard count (0 = 4 per worker, or 1 local).
	Shards int `json:"shards,omitempty"`
	// PaceMs sleeps each shard this long per collection decided.
	PaceMs int `json:"pace_ms,omitempty"`
}

// collectionsRunner returns the jobs.Runner for kind
// "collections-sweep": coordinate a partitioned collections sweep over
// the configured workers (in-process when the list is empty) and store
// the canonical merged collections.Report.
func collectionsRunner(reg *obs.Registry, workers []string) jobs.Runner {
	return func(ctx context.Context, store *jobs.Store, job jobs.Job) ([]byte, error) {
		var sp collectionsJobSpec
		if err := json.Unmarshal(job.Spec, &sp); err != nil {
			return nil, fmt.Errorf("bad spec: %w", err)
		}
		emitter, closeEvents, err := jobEmitter(store, job.ID)
		if err != nil {
			return nil, err
		}
		defer closeEvents()
		sink := reg.Attach()
		if sink == nil {
			sink = obs.NewSink()
		}
		defer reg.Release(sink)
		rep, err := cluster.RunCollections(ctx, sp.Collections, cluster.Options{
			Workers: workers,
			Shards:  sp.Shards,
			PaceMs:  sp.PaceMs,
			Obs:     sink,
			Events:  emitter,
		})
		if err != nil {
			emitter.Sync()
			return nil, err
		}
		if err := emitter.Sync(); err != nil {
			return nil, fmt.Errorf("event stream: %w", err)
		}
		return rep.Render()
	}
}

// dacd dashboard: a plain-JS client of the daemon's existing API.
// The job table refreshes by polling GET /jobs; each running job also
// gets an EventSource on its SSE stream. Explore jobs sample every
// explore.heartbeat (cumulative states + frontier); sweep jobs sample
// every sweep.candidate (cumulative states + candidate index); cluster
// coordinator jobs sample every cluster.shard.done (cumulative states
// + shard high bound). All three feed the states/sec + progress
// sparklines the same way.
"use strict";

const POLL_MS = 2000;
const SPARK_POINTS = 60; // sliding window of heartbeat-derived samples

// id -> {es: EventSource, samples: [{t, states, frontier, rate}], last: {t, states}}
const tracks = new Map();

function fmtBytes(n) {
  if (n < 1024) return n + " B";
  const units = ["KiB", "MiB", "GiB", "TiB"];
  let u = -1;
  do { n /= 1024; u++; } while (n >= 1024 && u < units.length - 1);
  return n.toFixed(1) + " " + units[u];
}

// sparkline renders two polylines (rate in accent, frontier in amber)
// as an inline SVG, each normalized to its own max over the window.
function sparkline(samples) {
  const w = 160, h = 28;
  if (!samples.length) return `<svg class="spark" width="${w}" height="${h}"></svg>`;
  const line = (key, cls) => {
    const max = Math.max(...samples.map(s => s[key]), 1);
    const pts = samples.map((s, i) => {
      const x = samples.length === 1 ? w : (i / (samples.length - 1)) * w;
      const y = h - 2 - (s[key] / max) * (h - 4);
      return x.toFixed(1) + "," + y.toFixed(1);
    }).join(" ");
    return `<polyline class="${cls}" points="${pts}"/>`;
  };
  return `<svg class="spark" width="${w}" height="${h}">` +
    line("frontier", "frontier") + line("rate", "rate") + "</svg>";
}

// track wires one SSE stream into a sample series. Heartbeats carry
// level-boundary snapshots; the rate is the delta between consecutive
// heartbeats over wall time.
function track(id) {
  if (tracks.has(id)) return tracks.get(id);
  const tr = { es: new EventSource(`/jobs/${id}/events`), samples: [], last: null };
  tr.es.onmessage = (msg) => {
    let ev;
    try { ev = JSON.parse(msg.data); } catch { return; }
    // Each event family yields (cumulative states, progress marker).
    let states, marker;
    if (ev.event === "explore.heartbeat") {
      states = ev.states;
      marker = ev.frontier;
    } else if (ev.event === "sweep.candidate") {
      tr.total = (tr.total || 0) + (ev.states || 0);
      states = tr.total;
      marker = ev.index;
    } else if (ev.event === "cluster.shard.done") {
      tr.total = (tr.total || 0) + (ev.states || 0);
      states = tr.total;
      marker = ev.hi;
    } else if (ev.event === "collections.progress") {
      // One event per decided collection; count events so the series
      // stays monotone across shard boundaries.
      tr.total = (tr.total || 0) + 1;
      states = tr.total;
      marker = ev.index;
    } else {
      return;
    }
    const now = Date.now();
    let rate = 0;
    if (tr.last && now > tr.last.t) {
      rate = ((states - tr.last.states) * 1000) / (now - tr.last.t);
    }
    tr.last = { t: now, states };
    tr.samples.push({ t: now, states, frontier: marker, rate: Math.max(rate, 0) });
    if (tr.samples.length > SPARK_POINTS) tr.samples.shift();
    const row = document.getElementById("row-" + id);
    if (row) {
      row.querySelector(".rate-cell").textContent = tr.samples.at(-1).rate.toFixed(0);
      row.querySelector(".frontier-cell").textContent = ev.frontier;
      row.querySelector(".spark-cell").innerHTML = sparkline(tr.samples);
    }
  };
  tr.es.addEventListener("done", () => tr.es.close());
  tr.es.onerror = () => {}; // EventSource retries on its own
  tracks.set(id, tr);
  return tr;
}

function untrackFinished(jobsById) {
  for (const [id, tr] of tracks) {
    const j = jobsById.get(id);
    if (!j || (j.state !== "running" && j.state !== "pending")) {
      tr.es.close();
      // Keep the samples so a finished job's sparkline stays visible.
      if (!j) tracks.delete(id);
    }
  }
}

function render(data) {
  const tbody = document.querySelector("#jobs tbody");
  const byId = new Map(data.jobs.map(j => [j.id, j]));
  untrackFinished(byId);
  document.getElementById("empty").hidden = data.jobs.length > 0;
  tbody.innerHTML = data.jobs.map(j => {
    const tr = j.state === "running" ? track(j.id) : tracks.get(j.id);
    const samples = tr ? tr.samples : [];
    const lastRate = samples.length ? samples.at(-1).rate.toFixed(0) : "";
    const lastFrontier = samples.length ? samples.at(-1).frontier : "";
    const fetches = [];
    if (j.state === "done") {
      fetches.push(`<a href="/jobs/${j.id}/result">result</a>`);
      fetches.push(`<a href="/jobs/${j.id}/dot">dot</a>`);
    }
    fetches.push(`<a href="/jobs/${j.id}/events">events</a>`);
    return `<tr id="row-${j.id}">
      <td>${j.id}${j.archived ? " 🗜" : ""}</td>
      <td>${j.kind}</td>
      <td class="state-${j.state}">${j.state}${j.error ? " — " + j.error : ""}</td>
      <td class="num">${j.attempt || 0}</td>
      <td class="num rate-cell">${lastRate}</td>
      <td class="num frontier-cell">${lastFrontier}</td>
      <td class="spark-cell">${sparkline(samples)}</td>
      <td>${fetches.join(" · ")}</td>
    </tr>`;
  }).join("");
  document.getElementById("queue").textContent =
    `queue ${data.pending}/${data.max_pending || "∞"} pending`;
  document.getElementById("disk").textContent =
    `journal ${fmtBytes(data.journal_bytes)} · archive ${fmtBytes(data.archive_bytes)}`;
}

async function poll() {
  const conn = document.getElementById("conn");
  try {
    const resp = await fetch("/jobs");
    render(await resp.json());
    conn.textContent = "live";
    conn.className = "conn live";
  } catch {
    conn.textContent = "connection lost";
    conn.className = "conn lost";
  }
  setTimeout(poll, POLL_MS);
}

poll();

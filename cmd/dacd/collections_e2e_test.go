package main

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"setagree/internal/cluster"
	"setagree/internal/jobs"
)

// TestCollectionsSweepE2E runs the reference collections sweep twice —
// once on a plain daemon in-process, once through a coordinator
// dispatching collections-shard jobs to a worker daemon — and requires
// byte-identical reports, the dacd_collections_* metric families on
// the worker, and collections.progress events in the job's stream (the
// dashboard's sparkline feed).
func TestCollectionsSweepE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon e2e")
	}

	worker := startDaemon(t, t.TempDir())
	coord := startDaemon(t, t.TempDir(), "-coordinator", "-workers", worker.base)
	single := startDaemon(t, t.TempDir())

	spec := map[string]any{"collections": cluster.CollectionsRef(), "shards": 3}
	base := submitJob(t, single.base, "collections-sweep", spec)
	waitJob(t, single.base, base.ID, jobs.Done, time.Minute)
	want := rawResult(t, single.base, base.ID)
	if !bytes.Contains(want, []byte(`"collections": 6`)) {
		t.Fatalf("baseline is not the 6-collection reference sweep:\n%.400s", want)
	}

	cj := submitJob(t, coord.base, "collections-sweep", spec)
	done := waitJob(t, coord.base, cj.ID, jobs.Done, 2*time.Minute)
	if done.Error != "" {
		t.Fatalf("cluster collections sweep finished with error %q", done.Error)
	}
	got := rawResult(t, coord.base, cj.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("coordinated report differs from single-daemon report:\n--- cluster\n%s\n--- single\n%s", got, want)
	}

	// The worker decided every collection; its sink exports the
	// daemon-namespace collections families.
	mresp, err := http.Get(worker.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if decided := metricValue(t, metrics, "dacd_collections_decided_total"); decided != 6 {
		t.Errorf("dacd_collections_decided_total = %d, want 6", decided)
	}
	if _, err := http.Get(worker.base + "/healthz"); err != nil {
		t.Fatal(err)
	}

	// The single-daemon job's event stream feeds the dashboard: one
	// collections.progress line per decided collection.
	eresp, err := http.Get(single.base + "/jobs/" + base.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	events := readSome(t, eresp.Body, []byte("cluster.done"), 10*time.Second)
	if n := bytes.Count(events, []byte(`"event":"collections.progress"`)); n != 6 {
		t.Errorf("event stream has %d collections.progress events, want 6:\n%s", n, events)
	}
}

// readSome reads from r until the marker appears or the deadline
// passes (SSE streams stay open, so a plain ReadAll would hang).
func readSome(t *testing.T, r io.Reader, marker []byte, timeout time.Duration) []byte {
	t.Helper()
	var buf bytes.Buffer
	deadline := time.Now().Add(timeout)
	chunk := make([]byte, 4096)
	for time.Now().Before(deadline) {
		n, err := r.Read(chunk)
		buf.Write(chunk[:n])
		if bytes.Contains(buf.Bytes(), marker) {
			break
		}
		if err != nil {
			break
		}
	}
	return buf.Bytes()
}

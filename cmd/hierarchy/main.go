// Command hierarchy prints consensus-hierarchy and set-agreement-power
// tables for the repository's object zoo (§1, §6; Chaudhuri–Reiners
// formulas in internal/power).
//
// Usage:
//
//	hierarchy [-levels K] [-n N] [-collections] [-metrics out.json]
//	          [-events out.jsonl] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The first table lists each object's k-set agreement numbers n_k for
// k = 1..K. The second table demonstrates Corollary 6.6's setting for
// the given n: O_n and O'_n share one power sequence, yet O'_n is
// implementable from {n-consensus, 2-SA, registers} (Lemma 6.4) while
// O_n is not (Observation 6.3). With -collections, a third set of
// tables ranges over multisets of SA types (internal/collections):
// each collection's canonical form under dominance pruning, its power
// prefix, and the least K such that n processes solve K-set agreement
// with it. The observability flags follow the repository-wide
// convention (see EXPERIMENTS.md "Reading run reports").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"setagree/cmd/internal/obsflags"
	"setagree/internal/power"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	levels := fs.Int("levels", 5, "number of power-sequence levels to print")
	n := fs.Int("n", 3, "hierarchy level n for the O_n / O'_n comparison")
	collectionsOn := fs.Bool("collections", false, "also print the set-consensus collections tables (power and least solvable K per multiset)")
	obsF := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := obsF.Checkpointing().Reject("hierarchy"); err != nil {
		fmt.Fprintf(stderr, "hierarchy: %v\n", err)
		return 2
	}
	// Loud per-flag validation: name the flag, the bad value, and the
	// bound, then show usage — a silent exit 2 is unhelpful in scripts.
	bad := false
	if *levels < 1 {
		fmt.Fprintf(stderr, "hierarchy: invalid -levels %d: must be >= 1 (number of power-sequence entries to print)\n", *levels)
		bad = true
	}
	if *n < 2 {
		fmt.Fprintf(stderr, "hierarchy: invalid -n %d: must be >= 2 (the O_n / O'_n comparison needs a hierarchy level above registers)\n", *n)
		bad = true
	}
	if bad {
		fs.Usage()
		return 2
	}
	sess, err := obsflags.Start("hierarchy", obsF, args)
	if err != nil {
		fmt.Fprintf(stderr, "hierarchy: %v\n", err)
		return 2
	}
	defer sess.CloseTo(stderr)

	fmt.Fprintln(stdout, "Set agreement power (n_k = k-set agreement number; ∞ = any number of processes)")
	fmt.Fprintln(stdout)
	rows := []power.Sequence{
		power.New("register", func(k int) int { return k }), // consensus number 1; k procs solve k-set agreement trivially
		power.Consensus(2),
		power.Consensus(3),
		power.Consensus(4),
		power.SA(power.Infinite, 2), // the strong 2-SA object of §4
		power.SA(6, 3),
		power.SA(power.Infinite, 1), // sticky consensus
	}
	fmt.Fprint(stdout, power.Table(rows, *levels))
	fmt.Fprintln(stdout)
	sess.Sink.Counter("hierarchy.rows").Add(int64(len(rows)))
	sess.Sink.Counter("hierarchy.levels").Add(int64(*levels))

	fmt.Fprintf(stdout, "Corollary 6.6 at level n = %d of the consensus hierarchy:\n", *n)
	on := power.ObjectO(*n)
	fmt.Fprintf(stdout, "  %-28s power %s\n", on.Describe()+" (= O_"+strconv.Itoa(*n)+")", power.Format(on, *levels))
	fmt.Fprintf(stdout, "  %-28s power %s\n", "O'_"+strconv.Itoa(*n), power.Format(on, *levels))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "  Same set agreement power — but not equivalent:")
	fmt.Fprintf(stdout, "  - O'_%d is implementable from {%d-consensus, 2-SA, registers} (Lemma 6.4)\n", *n, *n)
	fmt.Fprintf(stdout, "  - O_%d is NOT (Theorem 4.3 + Observation 5.1(b)); see the falsification\n", *n)
	fmt.Fprintln(stdout, "    experiments in EXPERIMENTS.md for the executable evidence.")

	if *collectionsOn {
		fmt.Fprintln(stdout)
		if err := printCollections(stdout, *levels, *n, sess.Sink); err != nil {
			fmt.Fprintf(stderr, "hierarchy: %v\n", err)
			return 1
		}
	}
	return 0
}

package main

import (
	"fmt"
	"io"

	"setagree/internal/collections"
	"setagree/internal/obs"
	"setagree/internal/power"
)

// collectionsMenu is the reference menu the -collections tables range
// over: the same three types as cluster.CollectionsRef, spanning a
// consensus object, a bounded SA type, and an unbounded one.
func collectionsMenu() []collections.Type {
	return []collections.Type{
		{N: 2, K: 1},
		{N: 3, K: 2},
		{N: power.Infinite, K: 2},
	}
}

// printCollections renders the set-consensus collections tables: for
// every multiset of sizes 1 and 2 over the reference menu, the
// canonical form after dominance pruning, the collection's power
// prefix, and the least K such that n processes solve K-set agreement
// with it (registers always free).
func printCollections(w io.Writer, levels, procs int, sink *obs.Sink) error {
	eng := collections.NewEngine()
	fmt.Fprintln(w, "Set-consensus collections (registers free; dominated types struck by pruning)")
	for size := 1; size <= 2; size++ {
		space := collections.Space{Menu: collectionsMenu(), Size: size}
		fmt.Fprintf(w, "\n  size %d:\n", size)
		fmt.Fprintf(w, "  %-24s %-14s %-*s %s\n", "collection", "canonical", levels*4+8, "power", fmt.Sprintf("least K for n=%d", procs))
		for i := 0; i < space.Count(); i++ {
			c, err := space.At(i)
			if err != nil {
				return err
			}
			seq, err := eng.Power(c)
			if err != nil {
				return err
			}
			ma, err := eng.MinAgreement(c, procs)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %-24s %-14s %-*s %d\n",
				c.String(), c.Canonical().String(), levels*4+8, power.Format(seq, levels), ma)
			sink.Counter("hierarchy.collections").Inc()
		}
	}
	fmt.Fprintln(w)
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"2-consensus", "2-SA", "O_3", "O'_3", "Lemma 6.4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCustomLevel(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "4", "-levels", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "n = 4") {
		t.Error("custom -n ignored")
	}
	if !strings.Contains(out.String(), "(5,4)-PAC") {
		t.Error("O_4 name missing")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-levels", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"2-consensus", "2-SA", "O_3", "O'_3", "Lemma 6.4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCustomLevel(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "4", "-levels", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "n = 4") {
		t.Error("custom -n ignored")
	}
	if !strings.Contains(out.String(), "(5,4)-PAC") {
		t.Error("O_4 name missing")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-n", "1"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "invalid -n 1") || !strings.Contains(errOut.String(), "Usage") {
		t.Errorf("bad -n error not loud enough:\n%s", errOut.String())
	}

	errOut.Reset()
	if code := run([]string{"-levels", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "invalid -levels 0") {
		t.Errorf("bad -levels error not loud enough:\n%s", errOut.String())
	}

	// Both flags bad: both named in one run.
	errOut.Reset()
	if code := run([]string{"-levels", "-3", "-n", "0"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, want := range []string{"invalid -levels -3", "invalid -n 0"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("combined bad flags: missing %q in:\n%s", want, errOut.String())
		}
	}

	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestRunCollections pins the -collections tables: all ten multisets
// of sizes 1-2 over the reference menu, with canonical forms and
// verdict columns present.
func TestRunCollections(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-collections", "-n", "4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"Set-consensus collections",
		"size 1:",
		"size 2:",
		"least K for n=4",
		"canonical",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("collections output missing %q", want)
		}
	}
	// 3 singletons + 6 pairs = 9 table rows beyond the headers; count
	// via the canonical-column braces of the size-1 block's first row.
	if got := strings.Count(text, "\n  {"); got != 9 {
		t.Errorf("collections tables have %d rows, want 9:\n%s", got, text)
	}
}

// TestRunWithoutCollectionsFlagOmitsTables: the tables are opt-in.
func TestRunWithoutCollectionsFlagOmitsTables(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out.String(), "Set-consensus collections") {
		t.Error("collections tables printed without -collections")
	}
}

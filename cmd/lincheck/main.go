// Command lincheck verifies that a recorded concurrent history (JSON,
// as produced by internal/history) is linearizable [11] with respect to
// a named sequential specification.
//
// Usage:
//
//	lincheck -spec pac:3 [-obj 0] [history.json]
//	         [-metrics out.json] [-events out.jsonl]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no file argument the history is read from stdin. Spec names:
//
//	register | consensus:N | sa:N:K | 2sa | pac:N | pacm:N:M |
//	oprime:N | queue | counter | tas
//
// -metrics writes a run-report JSON with the lincheck.* counters
// (objects checked, events, Wing–Gong search nodes); -events streams
// one lincheck.object event per checked object (see EXPERIMENTS.md
// "Reading run reports").
//
// Exit status: 0 linearizable, 1 not linearizable, 2 usage/input error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"setagree/cmd/internal/obsflags"
	"setagree/cmd/internal/specname"
	"setagree/internal/history"
	"setagree/internal/lincheck"
	"setagree/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specName := fs.String("spec", "", "sequential spec (e.g. pac:3, consensus:2, 2sa, register)")
	objID := fs.Int("obj", -1, "check only this object id (-1: all, requires every object to use -spec)")
	obsF := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := obsF.Checkpointing().Reject("lincheck"); err != nil {
		fmt.Fprintf(stderr, "lincheck: %v\n", err)
		return 2
	}
	if *specName == "" {
		fmt.Fprintln(stderr, "lincheck: -spec is required")
		return 2
	}
	sp, err := specname.Parse(*specName)
	if err != nil {
		fmt.Fprintf(stderr, "lincheck: %v\n", err)
		return 2
	}
	sess, err := obsflags.Start("lincheck", obsF, args)
	if err != nil {
		fmt.Fprintf(stderr, "lincheck: %v\n", err)
		return 2
	}
	defer sess.CloseTo(stderr)

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "lincheck: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	h, err := history.ReadJSON(in)
	if err != nil {
		fmt.Fprintf(stderr, "lincheck: %v\n", err)
		return 2
	}
	h.Sort()

	perObj := h.PerObject()
	checked := 0
	for obj, sub := range perObj {
		if *objID >= 0 && obj != *objID {
			continue
		}
		res, err := lincheck.CheckObject(sub, sp)
		sess.Sink.Counter("lincheck.objects").Inc()
		sess.Sink.Counter("lincheck.events").Add(int64(sub.Len()))
		if errors.Is(err, lincheck.ErrNotLinearizable) {
			sess.Sink.Counter("lincheck.not_linearizable").Inc()
			sess.Events.Emit("lincheck.object", obs.Fields{
				"object": obj, "spec": sp.Name(), "events": sub.Len(), "linearizable": false,
			})
			fmt.Fprintf(stdout, "object %d: NOT linearizable w.r.t. %s (%d events)\n",
				obj, sp.Name(), sub.Len())
			return 1
		}
		if err != nil {
			fmt.Fprintf(stderr, "lincheck: object %d: %v\n", obj, err)
			return 2
		}
		sess.Sink.Counter("lincheck.search_nodes").Add(int64(res.StatesVisited))
		sess.Events.Emit("lincheck.object", obs.Fields{
			"object": obj, "spec": sp.Name(), "events": sub.Len(),
			"linearizable": true, "search_nodes": res.StatesVisited,
		})
		fmt.Fprintf(stdout, "object %d: linearizable w.r.t. %s (%d events, %d search states)\n",
			obj, sp.Name(), sub.Len(), res.StatesVisited)
		fmt.Fprintf(stdout, "  witness order: %v\n", res.Order)
		checked++
	}
	if checked == 0 {
		fmt.Fprintln(stderr, "lincheck: no events matched")
		return 2
	}
	return 0
}

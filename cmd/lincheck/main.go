// Command lincheck verifies that a recorded concurrent history (JSON,
// as produced by internal/history) is linearizable [11] with respect to
// a named sequential specification.
//
// Usage:
//
//	lincheck -spec pac:3 [-obj 0] [history.json]
//
// With no file argument the history is read from stdin. Spec names:
//
//	register | consensus:N | sa:N:K | 2sa | pac:N | pacm:N:M |
//	oprime:N | queue | counter | tas
//
// Exit status: 0 linearizable, 1 not linearizable, 2 usage/input error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"setagree/cmd/internal/specname"
	"setagree/internal/history"
	"setagree/internal/lincheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lincheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specName := fs.String("spec", "", "sequential spec (e.g. pac:3, consensus:2, 2sa, register)")
	objID := fs.Int("obj", -1, "check only this object id (-1: all, requires every object to use -spec)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *specName == "" {
		fmt.Fprintln(stderr, "lincheck: -spec is required")
		return 2
	}
	sp, err := specname.Parse(*specName)
	if err != nil {
		fmt.Fprintf(stderr, "lincheck: %v\n", err)
		return 2
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "lincheck: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	h, err := history.ReadJSON(in)
	if err != nil {
		fmt.Fprintf(stderr, "lincheck: %v\n", err)
		return 2
	}
	h.Sort()

	perObj := h.PerObject()
	checked := 0
	for obj, sub := range perObj {
		if *objID >= 0 && obj != *objID {
			continue
		}
		res, err := lincheck.CheckObject(sub, sp)
		if errors.Is(err, lincheck.ErrNotLinearizable) {
			fmt.Fprintf(stdout, "object %d: NOT linearizable w.r.t. %s (%d events)\n",
				obj, sp.Name(), sub.Len())
			return 1
		}
		if err != nil {
			fmt.Fprintf(stderr, "lincheck: object %d: %v\n", obj, err)
			return 2
		}
		fmt.Fprintf(stdout, "object %d: linearizable w.r.t. %s (%d events, %d search states)\n",
			obj, sp.Name(), sub.Len(), res.StatesVisited)
		fmt.Fprintf(stdout, "  witness order: %v\n", res.Order)
		checked++
	}
	if checked == 0 {
		fmt.Fprintln(stderr, "lincheck: no events matched")
		return 2
	}
	return 0
}

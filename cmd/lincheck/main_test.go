package main

import (
	"bytes"
	"strings"
	"testing"
)

const goodHistory = `{
  "events": [
    {"proc": 1, "obj": 0, "method": 4, "arg": 5, "label": 1, "resp": -9223372036854775806, "inv": 1, "ret": 2},
    {"proc": 1, "obj": 0, "method": 5, "arg": 0, "label": 1, "resp": 5, "inv": 3, "ret": 4}
  ]
}`

const staleHistory = `{
  "events": [
    {"proc": 1, "obj": 0, "method": 2, "arg": 5, "label": 0, "resp": -9223372036854775806, "inv": 1, "ret": 2},
    {"proc": 2, "obj": 0, "method": 1, "arg": 0, "label": 0, "resp": -9223372036854775808, "inv": 3, "ret": 4}
  ]
}`

func TestLinearizablePAC(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-spec", "pac:2"}, strings.NewReader(goodHistory), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "linearizable w.r.t. 2-PAC") {
		t.Errorf("output: %s", out.String())
	}
}

func TestNotLinearizableRegister(t *testing.T) {
	t.Parallel()
	// A read strictly after a completed write returns NIL: not
	// linearizable.
	var out, errOut bytes.Buffer
	code := run([]string{"-spec", "register"}, strings.NewReader(staleHistory), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "NOT linearizable") {
		t.Errorf("output: %s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run(nil, strings.NewReader(goodHistory), &out, &errOut); code != 2 {
		t.Fatalf("missing -spec: exit %d", code)
	}
	if code := run([]string{"-spec", "warpdrive"}, strings.NewReader(goodHistory), &out, &errOut); code != 2 {
		t.Fatalf("unknown spec: exit %d", code)
	}
	if code := run([]string{"-spec", "pac:2"}, strings.NewReader("{bad json"), &out, &errOut); code != 2 {
		t.Fatalf("bad json: exit %d", code)
	}
	if code := run([]string{"-spec", "pac:2", "-obj", "7"}, strings.NewReader(goodHistory), &out, &errOut); code != 2 {
		t.Fatalf("no matching object: exit %d", code)
	}
}

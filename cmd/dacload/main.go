// Command dacload is the checking-cluster benchmark and load harness:
// it spawns a local cluster (one coordinator dacd + N worker dacds,
// plus a plain single daemon as baseline), runs the Theorem 7.1 sweep
// through both paths, floods the coordinator's jobs API with
// concurrent clients, and writes BENCH_cluster.json. It exits 1 when
// any SLO fails:
//
//   - the cluster sweep's merged report must be byte-identical to the
//     single-daemon report,
//   - the p99 submit latency must stay under -slo-p99-ms,
//   - the bounded queue must push back (at least -slo-min-429 429s),
//   - every 429 must carry a Retry-After in [1,30] seconds.
//
// Usage (normally via `make loadtest`):
//
//	dacload -dacd bin/dacd [-workers 2] [-clients 40] [-per-client 3]
//	        [-max-pending 16] [-shards 8] [-slo-p99-ms 2000]
//	        [-slo-min-429 1] [-out BENCH_cluster.json]
//
// Exit status: 0 all SLOs hold, 1 SLO violation, 2 harness error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"setagree/internal/cluster"
	"setagree/internal/jobs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

type daemon struct {
	cmd  *exec.Cmd
	base string
}

// spawn starts one dacd on a fresh temp data directory and waits for
// its greeting line to learn the listen address.
func spawn(bin string, extra ...string) (*daemon, error) {
	dir, err := os.MkdirTemp("", "dacload-*")
	if err != nil {
		return nil, err
	}
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dir, "-job-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("dacd exited before announcing its address")
	}
	const marker = "listening on http://"
	line := sc.Text()
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("unexpected dacd greeting: %q", line)
	}
	go io.Copy(io.Discard, out)
	return &daemon{cmd: cmd, base: "http://" + strings.Fields(line[i+len(marker):])[0]}, nil
}

func (d *daemon) stop() {
	if d != nil && d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// submit posts one job; on 202 it returns the job ID.
func submit(client *http.Client, base, kind string, spec any) (*http.Response, error) {
	buf, err := json.Marshal(map[string]any{"kind": kind, "spec": spec})
	if err != nil {
		return nil, err
	}
	return client.Post(base+"/jobs", "application/json", bytes.NewReader(buf))
}

// runSweep submits a sweep job, waits for it, and returns the raw
// result document and the elapsed wall time.
func runSweep(client *http.Client, base string, spec any, timeout time.Duration) ([]byte, time.Duration, error) {
	start := time.Now()
	resp, err := submit(client, base, "sweep", spec)
	if err != nil {
		return nil, 0, err
	}
	var job jobs.Job
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return nil, 0, fmt.Errorf("sweep submit: status %d, %v", resp.StatusCode, err)
	}
	deadline := time.Now().Add(timeout)
	for {
		jr, err := client.Get(base + "/jobs/" + job.ID)
		if err != nil {
			return nil, 0, err
		}
		var j jobs.Job
		err = json.NewDecoder(jr.Body).Decode(&j)
		jr.Body.Close()
		if err != nil {
			return nil, 0, err
		}
		if j.State == jobs.Done {
			elapsed := time.Since(start)
			rr, err := client.Get(base + "/jobs/" + job.ID + "/result")
			if err != nil {
				return nil, 0, err
			}
			defer rr.Body.Close()
			buf, err := io.ReadAll(rr.Body)
			if err != nil || rr.StatusCode != http.StatusOK {
				return nil, 0, fmt.Errorf("sweep result: status %d, %v", rr.StatusCode, err)
			}
			return buf, elapsed, nil
		}
		if j.State.Terminal() {
			return nil, 0, fmt.Errorf("sweep job %s: %s (%s)", j.ID, j.State, j.Error)
		}
		if time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("sweep job %s still %s after %v", j.ID, j.State, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// loadStats aggregates the flood phase.
type loadStats struct {
	mu                sync.Mutex
	latencies         []time.Duration
	accepted          int
	rejected          int
	invalidRetryAfter int
	ids               []string
}

func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Microseconds()) / 1000.0
}

func run(args []string) int {
	fs := flag.NewFlagSet("dacload", flag.ContinueOnError)
	bin := fs.String("dacd", "bin/dacd", "path to the dacd binary to spawn")
	workers := fs.Int("workers", 2, "worker daemons behind the coordinator")
	clients := fs.Int("clients", 40, "concurrent load clients")
	perClient := fs.Int("per-client", 3, "accepted submissions per client")
	maxPending := fs.Int("max-pending", 16, "coordinator queue bound (the backpressure under test)")
	shards := fs.Int("shards", 8, "shard count for the Thm 7.1 sweep")
	sloP99 := fs.Int("slo-p99-ms", 2000, "SLO: p99 submit latency bound, ms")
	sloMin429 := fs.Int("slo-min-429", 1, "SLO: minimum 429 responses the flood must draw")
	out := fs.String("out", "BENCH_cluster.json", "output JSON path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "dacload: %v\n", err)
		return 2
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Phase 1: single-daemon baseline sweep.
	single, err := spawn(*bin)
	if err != nil {
		return fail(err)
	}
	defer single.stop()
	sweepSpec := map[string]any{"sweep": cluster.Thm71(), "shards": *shards}
	fmt.Println("dacload: phase 1 — Thm 7.1 sweep on a single daemon")
	singleRep, singleElapsed, err := runSweep(client, single.base, sweepSpec, 3*time.Minute)
	if err != nil {
		return fail(err)
	}
	var repHead struct {
		Candidates int `json:"candidates"`
	}
	if err := json.Unmarshal(singleRep, &repHead); err != nil {
		return fail(err)
	}

	// Phase 2: the same sweep through coordinator + workers.
	var workerDaemons []*daemon
	var workerURLs []string
	for i := 0; i < *workers; i++ {
		w, err := spawn(*bin)
		if err != nil {
			return fail(err)
		}
		defer w.stop()
		workerDaemons = append(workerDaemons, w)
		workerURLs = append(workerURLs, w.base)
	}
	coord, err := spawn(*bin, "-coordinator", "-workers", strings.Join(workerURLs, ","),
		"-max-pending", strconv.Itoa(*maxPending))
	if err != nil {
		return fail(err)
	}
	defer coord.stop()
	fmt.Printf("dacload: phase 2 — same sweep through coordinator + %d workers\n", *workers)
	clusterRep, clusterElapsed, err := runSweep(client, coord.base, sweepSpec, 3*time.Minute)
	if err != nil {
		return fail(err)
	}
	identical := bytes.Equal(singleRep, clusterRep)

	// Phase 3: flood the coordinator with tiny sweeps from concurrent
	// clients; measure submit latency and the 429 backpressure.
	fmt.Printf("dacload: phase 3 — %d clients x %d accepted submissions (queue bound %d)\n",
		*clients, *perClient, *maxPending)
	tiny := map[string]any{
		"sweep": cluster.SweepSpec{
			Task:    cluster.TaskSpec{Kind: "consensus", N: 2},
			Objects: []cluster.ObjectSpec{{Kind: "register"}},
			Menu: []cluster.InvokeSpec{
				{Obj: 0, Method: "write", Arg: "input"},
				{Obj: 0, Method: "read"},
			},
			Depth:   1,
			Actions: []string{"decide-input", "decide-last", "decide-0", "retry"},
		},
		"shards": 1,
	}
	var (
		stats     loadStats
		wg        sync.WaitGroup
		hardError atomic.Value
	)
	loadStart := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for accepted := 0; accepted < *perClient; {
				begin := time.Now()
				resp, err := submit(client, coord.base, "sweep", tiny)
				if err != nil {
					hardError.Store(err)
					return
				}
				latency := time.Since(begin)
				switch resp.StatusCode {
				case http.StatusAccepted:
					var j jobs.Job
					if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
						hardError.Store(err)
						resp.Body.Close()
						return
					}
					resp.Body.Close()
					stats.mu.Lock()
					stats.latencies = append(stats.latencies, latency)
					stats.accepted++
					stats.ids = append(stats.ids, j.ID)
					stats.mu.Unlock()
					accepted++
				case http.StatusTooManyRequests:
					ra := resp.Header.Get("Retry-After")
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					secs, err := strconv.Atoi(ra)
					stats.mu.Lock()
					stats.latencies = append(stats.latencies, latency)
					stats.rejected++
					if err != nil || secs < 1 || secs > 30 {
						stats.invalidRetryAfter++
					}
					stats.mu.Unlock()
					if err != nil || secs < 1 {
						secs = 1
					}
					// Honor the hint, capped so a pessimistic estimate
					// cannot stall the harness.
					if secs > 2 {
						secs = 2
					}
					time.Sleep(time.Duration(secs) * time.Second)
				default:
					body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
					resp.Body.Close()
					hardError.Store(fmt.Errorf("submit: %s: %s", resp.Status, body))
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := hardError.Load().(error); ok && err != nil {
		return fail(err)
	}
	submitElapsed := time.Since(loadStart)

	// Drain: wait for every accepted job to reach a terminal state.
	drainDeadline := time.Now().Add(3 * time.Minute)
	for {
		resp, err := client.Get(coord.base + "/jobs")
		if err != nil {
			return fail(err)
		}
		var list struct {
			Jobs []jobs.Job `json:"jobs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil {
			return fail(err)
		}
		open := 0
		for _, j := range list.Jobs {
			if !j.State.Terminal() {
				open++
			}
		}
		if open == 0 {
			break
		}
		if time.Now().After(drainDeadline) {
			return fail(fmt.Errorf("%d jobs still open after drain deadline", open))
		}
		time.Sleep(100 * time.Millisecond)
	}
	totalElapsed := time.Since(loadStart)

	sort.Slice(stats.latencies, func(a, b int) bool { return stats.latencies[a] < stats.latencies[b] })
	p50 := percentile(stats.latencies, 0.50)
	p90 := percentile(stats.latencies, 0.90)
	p99 := percentile(stats.latencies, 0.99)
	total := stats.accepted + stats.rejected

	doc := map[string]any{
		"date": time.Now().Format("2006-01-02"),
		"question": "does partitioning the Thm 7.1 sweep across worker daemons preserve the report byte-for-byte, " +
			"and does the jobs API hold its latency and backpressure contract under concurrent load?",
		"sweep": map[string]any{
			"candidates": repHead.Candidates,
			"shards":     *shards,
			"single": map[string]any{
				"elapsed_ms":         singleElapsed.Milliseconds(),
				"candidates_per_sec": float64(repHead.Candidates) / singleElapsed.Seconds(),
			},
			"cluster": map[string]any{
				"workers":            *workers,
				"elapsed_ms":         clusterElapsed.Milliseconds(),
				"candidates_per_sec": float64(repHead.Candidates) / clusterElapsed.Seconds(),
			},
			"report_identical": identical,
			"note": "the Thm 7.1 sweep is ~70ms of compute, so the cluster path measures dispatch overhead, " +
				"not speedup; the acceptance property is byte-identity of the merged report",
		},
		"load": map[string]any{
			"clients":             *clients,
			"per_client":          *perClient,
			"max_pending":         *maxPending,
			"accepted":            stats.accepted,
			"rejected_429":        stats.rejected,
			"rate_429":            float64(stats.rejected) / float64(total),
			"invalid_retry_after": stats.invalidRetryAfter,
			"submit_ms":           map[string]any{"p50": p50, "p90": p90, "p99": p99},
			"submit_elapsed_ms":   submitElapsed.Milliseconds(),
			"drained_elapsed_ms":  totalElapsed.Milliseconds(),
			"jobs_per_sec":        float64(stats.accepted) / totalElapsed.Seconds(),
		},
	}
	sloPass := identical &&
		repHead.Candidates == 1116 &&
		p99 <= float64(*sloP99) &&
		stats.rejected >= *sloMin429 &&
		stats.invalidRetryAfter == 0
	doc["slo"] = map[string]any{
		"p99_ms_limit": *sloP99,
		"min_429":      *sloMin429,
		"pass":         sloPass,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return fail(err)
	}

	fmt.Printf("dacload: sweep identical=%v single=%dms cluster=%dms\n", identical,
		singleElapsed.Milliseconds(), clusterElapsed.Milliseconds())
	fmt.Printf("dacload: load accepted=%d 429=%d invalid_retry_after=%d p50=%.1fms p90=%.1fms p99=%.1fms\n",
		stats.accepted, stats.rejected, stats.invalidRetryAfter, p50, p90, p99)
	if !sloPass {
		fmt.Fprintf(os.Stderr, "dacload: SLO FAILED (identical=%v candidates=%d p99=%.1fms limit=%dms rejected=%d min=%d invalid_ra=%d)\n",
			identical, repHead.Candidates, p99, *sloP99, stats.rejected, *sloMin429, stats.invalidRetryAfter)
		return 1
	}
	fmt.Printf("dacload: all SLOs hold; wrote %s\n", *out)
	return 0
}

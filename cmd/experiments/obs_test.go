package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"setagree/internal/obs"
)

// TestMetricsRunReport checks -metrics aggregates the whole suite into
// one valid run report: rows, explorer and sweep counters, machine
// steps, wall-clock duration, and throughput rates.
func TestMetricsRunReport(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-quick", "-metrics", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := obs.ReadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tool != "experiments" {
		t.Errorf("tool = %q, want experiments", rep.Tool)
	}
	if rep.DurationNS <= 0 || rep.DurationSeconds <= 0 {
		t.Errorf("no wall-clock duration recorded: %+v", rep)
	}
	for _, c := range []string{
		"experiments.rows", "explore.states", "explore.transitions",
		"sweep.candidates", "machine.steps",
	} {
		if rep.Counters[c] <= 0 {
			t.Errorf("counter %s missing or zero: %v", c, rep.Counters)
		}
		if rep.Rates[c+"_per_sec"] <= 0 {
			t.Errorf("rate %s_per_sec missing or zero", c)
		}
	}
	if rep.Counters["experiments.failed"] != 0 {
		t.Errorf("experiments.failed = %d on a green suite", rep.Counters["experiments.failed"])
	}
}

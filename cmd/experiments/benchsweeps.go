// The -bench-sweeps mode: time the two reference falsification sweeps
// (Thm 5.2's 49-candidate symmetric sweep and Thm 7.1's 1116-candidate
// DAC sweep) with cross-candidate memoization off and on, verify the
// two engines render byte-identical reports in-process, and write the
// comparison as JSON for bench_experiments.jq / BENCH_experiments.json.
//
// Honest framing: the memoized candidates/sec is a COVERED rate —
// every candidate receives its exact verdict, but most are settled by
// attributing a memoized equivalence-class verdict rather than by a
// fresh exploration. The unmemoized rate is the concrete-exploration
// rate. The ratio is the user-visible sweep wall-clock win, not a
// claim that the explorer itself got faster.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"setagree/internal/enumerate"
	"setagree/internal/obs"
	"setagree/internal/task"
)

// sweepBenchRun is one timed sweep execution.
type sweepBenchRun struct {
	ElapsedNs        int64   `json:"elapsed_ns"`
	CandidatesPerSec float64 `json:"candidates_per_sec"`
	States           int     `json:"states"`
	MemoHits         int64   `json:"memo_hits"`
	DedupCandidates  int64   `json:"dedup_candidates"`
	ForkStatesSaved  int64   `json:"fork_states_saved"`
}

// sweepBench compares the memoized and unmemoized engines on one sweep.
type sweepBench struct {
	ID              string        `json:"id"`
	Candidates      int           `json:"candidates"`
	MemoOff         sweepBenchRun `json:"memo_off"`
	MemoOn          sweepBenchRun `json:"memo_on"`
	Speedup         float64       `json:"speedup"`
	RenderIdentical bool          `json:"render_identical"`
}

// renderSweepReport flattens a Report into a canonical string with
// every pointer dereferenced (mirrors the enumerate test suite's
// renderer), so string equality means byte-identical report content.
func renderSweepReport(rep *enumerate.Report) string {
	s := fmt.Sprintf("candidates=%d pruned=%d states=%d fallbacks=%d\nsolvers=%v\ninconclusive=%v\n",
		rep.Candidates, rep.Pruned, rep.States, rep.SymmetryFallbacks, rep.Solvers, rep.Inconclusive)
	if rep.SampleFailure != nil {
		f := rep.SampleFailure
		s += fmt.Sprintf("failure: %v on %v: %v\nwitness=%v cycle=%v\n",
			f.Assignment.Shapes, f.Inputs, f.Violation.Error(),
			f.Violation.Witness, f.Violation.Cycle)
	}
	return s
}

// benchIterations is how many times each engine configuration runs;
// the fastest iteration is reported. Minimum-of-N is the standard way
// to strip scheduler noise, cold caches, and GC pauses out of a
// wall-clock comparison: the minimum is the run least perturbed by
// the host, and both engines get the same treatment.
const benchIterations = 5

// benchOneSweep times fn with memoization off then on, each with a
// fresh metrics sink per iteration (and, inside fn, a fresh Prepared —
// FalsifyDAC / FalsifySymmetric re-enumerate per call, so no state
// leaks between runs). Counters come from the fastest iteration;
// they are iteration-invariant apart from schedule-dependent memo
// splits.
func benchOneSweep(id string, fn func(opts enumerate.SweepOptions) (*enumerate.Report, error), workers int) (sweepBench, error) {
	run := func(disable bool) (sweepBenchRun, *enumerate.Report, error) {
		var best sweepBenchRun
		var bestRep *enumerate.Report
		for it := 0; it < benchIterations; it++ {
			sink := obs.NewSink()
			start := time.Now()
			rep, err := fn(enumerate.SweepOptions{Workers: workers, Obs: sink, DisableMemo: disable})
			elapsed := time.Since(start)
			if err != nil {
				return sweepBenchRun{}, nil, err
			}
			snap := sink.Snapshot()
			r := sweepBenchRun{
				ElapsedNs:        elapsed.Nanoseconds(),
				CandidatesPerSec: float64(rep.Candidates) / elapsed.Seconds(),
				States:           rep.States,
				MemoHits:         snap.Counters["sweep.memo_hits"],
				DedupCandidates:  snap.Counters["sweep.dedup_candidates"],
				ForkStatesSaved:  snap.Counters["sweep.fork_states_saved"],
			}
			if bestRep == nil || r.ElapsedNs < best.ElapsedNs {
				best, bestRep = r, rep
			}
		}
		return best, bestRep, nil
	}
	off, offRep, err := run(true)
	if err != nil {
		return sweepBench{}, fmt.Errorf("%s memo=off: %w", id, err)
	}
	on, onRep, err := run(false)
	if err != nil {
		return sweepBench{}, fmt.Errorf("%s memo=on: %w", id, err)
	}
	return sweepBench{
		ID:              id,
		Candidates:      offRep.Candidates,
		MemoOff:         off,
		MemoOn:          on,
		Speedup:         on.CandidatesPerSec / off.CandidatesPerSec,
		RenderIdentical: renderSweepReport(offRep) == renderSweepReport(onRep),
	}, nil
}

// runBenchSweeps executes the benchmark and writes its JSON to path.
// Exit status 0 on success (regardless of the measured speedups —
// thresholds are gated downstream by the Makefile), 2 on error.
func runBenchSweeps(path string, workers int, stderr io.Writer) int {
	vectors := binaryVectors(3)
	sweeps := []struct {
		id string
		fn func(opts enumerate.SweepOptions) (*enumerate.Report, error)
	}{
		{"thm52", func(opts enumerate.SweepOptions) (*enumerate.Report, error) {
			return enumerate.FalsifySymmetric(theorem42Family(1), task.Consensus{N: 3}, vectors, opts)
		}},
		{"thm71", func(opts enumerate.SweepOptions) (*enumerate.Report, error) {
			return enumerate.FalsifyDAC(theorem71Family(), 3, vectors, opts)
		}},
	}
	out := struct {
		Tool   string       `json:"tool"`
		Sweeps []sweepBench `json:"sweeps"`
	}{Tool: "experiments -bench-sweeps"}
	for _, s := range sweeps {
		b, err := benchOneSweep(s.id, s.fn, workers)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: bench-sweeps: %v\n", err)
			return 2
		}
		out.Sweeps = append(out.Sweeps, b)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "experiments: bench-sweeps: %v\n", err)
		return 2
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "experiments: bench-sweeps: %v\n", err)
		return 2
	}
	return 0
}

// Command experiments runs the reproduction's theorem-by-theorem
// experiment suite (the model-checked rows of EXPERIMENTS.md) in one
// shot and prints a verdict table: every positive claim is verified
// exhaustively on its small instances, and every impossibility claim's
// bounded-family falsification reports zero solvers.
//
// Usage:
//
//	experiments [-quick] [-v] [-workers N] [-symmetry off|ids|values]
//	            [-memo=false] [-bench-sweeps out.json] [-bench-collections out.json]
//	            [-metrics out.json] [-events out.jsonl]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	            [-checkpoint run.ckpt [-checkpoint-every L]]
//
// -quick trims the heavier rows (depth-2 sweeps, n >= 5 state spaces).
// -workers sets the goroutine count for the falsification sweeps
// (default: GOMAXPROCS); verdicts are identical at every setting.
// -memo=false disables cross-candidate memoization in the sweeps (an
// ablation knob: reports are byte-identical either way, only the rate
// changes). -bench-sweeps FILE runs only the two reference sweeps
// (Thm 5.2 and Thm 7.1) memoized and unmemoized, writes a JSON
// comparison — per-run timings, candidates/sec, memo counters, and an
// in-process render byte-equality check — to FILE, and exits.
// -bench-collections FILE does the same for the set-consensus
// collections subsystem: a 35-collection sweep timed with dominance
// pruning off and on (byte-identical reports either way) plus the
// N <= 4 cross-validation matrix, written as JSON for
// bench_collections.jq / BENCH_collections.json.
// -symmetry ids|values model-checks on the symmetry-reduced
// configuration graph (verdicts are unchanged; rows whose system or
// analysis rejects the reduction fall back to unreduced and say so —
// E11's adversary row always runs unreduced).
// With -v the sweeps additionally report live progress. -metrics
// writes a run-report JSON aggregating every row's explore.* and
// sweep.* counters with throughput rates; -events streams one
// experiment.row event per finished row plus the engines' heartbeat
// and summary events (see EXPERIMENTS.md "Reading run reports").
//
// SIGINT/SIGTERM interrupt the suite cleanly: the in-flight engine
// stops at its next barrier, the finished rows print as a partial
// verdict table (the interrupted row shows INT), and the tool exits 4.
// With -checkpoint <file> an interrupted model-check row writes a
// final snapshot there — resume that single exploration with
// explore -resume -checkpoint <file>. (Falsification sweeps are not
// checkpointed: their synthesized candidates are tiny and have no
// explore-CLI spelling.) -resume itself is rejected: each row is a
// fresh exploration, so there is nothing suite-level to restore.
//
// Exit status: 0 iff every experiment matches the paper's claim, 1 if
// any row FAILs, 2 on usage or internal error, 4 if interrupted
// (partial table printed; matches cmd/explore's convention, alongside
// its INCONCLUSIVE exit 3).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"setagree/cmd/internal/obsflags"
	"setagree/internal/core"
	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// row is one experiment outcome.
type row struct {
	id          string
	claim       string
	instance    string
	detail      string
	ok          bool
	interrupted bool
	elapsed     time.Duration
}

type runner struct {
	rows      []row
	quick     bool
	verbose   bool
	workers   int
	memo      bool
	symmetry  explore.Symmetry
	out       io.Writer
	sink      *obs.Sink
	events    *obs.Emitter
	ctx       context.Context
	ckpt      string // -checkpoint: interrupt-snapshot path for the in-flight exploration
	ckptEvery int
}

// stopped reports whether the suite was interrupted; row functions
// check it before starting (and between) experiments so cancellation
// stops the suite at the next row boundary.
func (r *runner) stopped() bool {
	return r.ctx.Err() != nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "trim the heavier experiments")
	verbose := fs.Bool("v", false, "print each row as it finishes, with sweep progress")
	workers := fs.Int("workers", 0, "worker goroutines per falsification sweep (default GOMAXPROCS)")
	memo := fs.Bool("memo", true, "cross-candidate memoization in the falsification sweeps (reports are byte-identical either way)")
	benchSweeps := fs.String("bench-sweeps", "", "run only the sweep memoization benchmark, write its JSON here, and exit")
	benchCollections := fs.String("bench-collections", "", "run only the collections pruning benchmark + cross-validation, write its JSON here, and exit")
	symmetry := fs.String("symmetry", "off", "symmetry reduction for the model checks: off | ids | values (rows whose system rejects it fall back to unreduced)")
	obsF := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *benchSweeps != "" {
		return runBenchSweeps(*benchSweeps, *workers, stderr)
	}
	if *benchCollections != "" {
		return runBenchCollections(*benchCollections, *workers, stderr)
	}
	symMode, err := explore.ParseSymmetry(*symmetry)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 2
	}
	ck := obsF.Checkpointing()
	if ck.Resume {
		fmt.Fprintln(stderr, "experiments: -resume is not supported: each row is a fresh exploration; resume an interrupted row with explore -resume -checkpoint <file>")
		return 2
	}
	if err := ck.Validate(); err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 2
	}
	sess, err := obsflags.Start("experiments", obsF, args)
	if err != nil {
		fmt.Fprintf(stderr, "experiments: %v\n", err)
		return 2
	}
	defer sess.CloseTo(stderr)
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	r := &runner{
		quick:     *quick,
		verbose:   *verbose,
		workers:   *workers,
		memo:      *memo,
		symmetry:  symMode,
		out:       stdout,
		sink:      sess.Sink,
		events:    sess.Events,
		ctx:       ctx,
		ckpt:      ck.Path,
		ckptEvery: ck.EveryLevels,
	}

	r.e2Algorithm2()
	r.e3Falsification()
	r.e5PACMLevel()
	r.e7SamePower()
	r.e8Theorem71()
	r.e10Hierarchy()
	r.e11Valency()
	r.e13Chaudhuri()
	r.e16Collections()

	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "%-4s %-7s %-52s %-30s %s\n", "id", "verdict", "claim", "instance", "detail")
	allOK := true
	var total time.Duration
	for _, row := range r.rows {
		verdict := "MATCH"
		switch {
		case row.interrupted:
			verdict = "INT"
		case !row.ok:
			verdict = "FAIL"
			allOK = false
		}
		fmt.Fprintf(stdout, "%-4s %-7s %-52s %-30s %s\n", row.id, verdict, row.claim, row.instance, row.detail)
		total += row.elapsed
	}
	fmt.Fprintf(stdout, "\n%d experiments in %s\n", len(r.rows), total.Round(time.Millisecond))
	if r.stopped() {
		fmt.Fprintln(stderr, "experiments: interrupted — the table above is partial")
		if r.ckpt != "" {
			// Sweeps don't checkpoint (their synthesized candidates are
			// tiny and not expressible to the explore CLI), so the file
			// only exists when the signal landed in a model-check row.
			if _, statErr := os.Stat(r.ckpt); statErr == nil {
				fmt.Fprintf(stderr, "experiments: the interrupted exploration's snapshot is in %s (resume it with explore -resume -checkpoint %s)\n", r.ckpt, r.ckpt)
			} else {
				fmt.Fprintf(stderr, "experiments: no snapshot in %s — the signal landed outside a model-check row\n", r.ckpt)
			}
		}
		if !allOK {
			fmt.Fprintln(stderr, "experiments: some completed rows FAILED")
		}
		return 4
	}
	if !allOK {
		fmt.Fprintln(stderr, "experiments: some rows FAILED")
		return 1
	}
	fmt.Fprintln(stdout, "every experiment matches the paper's claim")
	return 0
}

func (r *runner) add(id, claim, instance string, ok bool, detail string, elapsed time.Duration) {
	// A not-ok row recorded after cancellation is the in-flight
	// experiment the signal stopped, not a refutation of the claim:
	// row functions return at the next boundary once stopped, so no
	// genuinely-failed row can land here after the interrupt.
	interrupted := !ok && r.stopped()
	r.rows = append(r.rows, row{id: id, claim: claim, instance: instance, ok: ok, interrupted: interrupted, detail: detail, elapsed: elapsed})
	r.sink.Counter("experiments.rows").Inc()
	if !ok && !interrupted {
		r.sink.Counter("experiments.failed").Inc()
	}
	r.events.Emit("experiment.row", obs.Fields{
		"id":         id,
		"claim":      claim,
		"instance":   instance,
		"ok":         ok,
		"detail":     detail,
		"elapsed_ns": elapsed.Nanoseconds(),
	})
	if r.verbose {
		fmt.Fprintf(r.out, "[%s] %s — %s: ok=%v (%s; %s)\n", id, claim, instance, ok, detail, elapsed.Round(time.Millisecond))
	}
}

// checkSolved model-checks a protocol and reports solved + state count,
// feeding the run's metrics sink and event stream when enabled. The
// -symmetry mode is applied per row; rows whose system rejects the
// reduction (asymmetric objects, or an analysis the quotient does not
// support) are transparently re-checked unreduced — the verdict is
// exact either way.
func (r *runner) checkSolved(prot programs.Protocol, tsk task.Task, inputs []value.Value, opts explore.Options) (bool, string, error) {
	sys, err := prot.System(inputs)
	if err != nil {
		return false, "", err
	}
	opts.Obs = r.sink
	opts.Events = r.events
	opts.Symmetry = r.symmetry
	opts.Ctx = r.ctx
	if r.ckpt != "" {
		// The suite's -checkpoint is an interrupt-snapshot path, not a
		// resume point: rows share the file, so by default nothing is
		// written until a signal lands and the in-flight exploration
		// snapshots its final state for explore -resume. An explicit
		// -checkpoint-every turns periodic snapshots back on.
		every := r.ckptEvery
		if every == 0 {
			every = 1 << 30
		}
		opts.Checkpoint = explore.CheckpointOptions{Path: r.ckpt, EveryLevels: every}
	}
	rep, err := explore.Check(sys, tsk, opts)
	suffix := ""
	if opts.Symmetry != explore.SymmetryOff {
		if errors.Is(err, explore.ErrNotSymmetric) || errors.Is(err, explore.ErrSymmetryUnsupported) {
			fresh, sysErr := prot.System(inputs)
			if sysErr != nil {
				return false, "", sysErr
			}
			opts.Symmetry = explore.SymmetryOff
			rep, err = explore.Check(fresh, tsk, opts)
			suffix = "; symmetry n/a"
		} else if err == nil {
			suffix = fmt.Sprintf("; orbit reps, |G|=%d", rep.SymmetryGroupOrder())
		}
	}
	if err != nil {
		return false, "", err
	}
	detail := fmt.Sprintf("%d configs%s", rep.States, suffix)
	if !rep.Solved() {
		detail += "; " + rep.Violations[0].Error()
	}
	return rep.Solved(), detail, nil
}

func distinct(n int) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = value.Value(10 + i)
	}
	return out
}

func canonical(n int) []value.Value {
	out := make([]value.Value, n)
	out[0] = 1
	return out
}

// e2Algorithm2: Theorem 4.1 exhaustively across sizes.
func (r *runner) e2Algorithm2() {
	maxN := 5
	if r.quick {
		maxN = 4
	}
	for n := 2; n <= maxN; n++ {
		if r.stopped() {
			return
		}
		start := time.Now()
		ok, detail, err := r.checkSolved(programs.Algorithm2(n, 1), task.DAC{N: n, P: 0}, canonical(n), explore.Options{})
		if err != nil {
			detail = err.Error()
			ok = false
		}
		r.add("E2", "Thm 4.1: Algorithm 2 solves n-DAC", fmt.Sprintf("n=%d, every schedule", n), ok, detail, time.Since(start))
	}
}

// theorem42Family is the Theorem 4.2 object base {2-consensus,
// register, 2-SA} with its 4-entry invocation menu.
func theorem42Family(depth int) *enumerate.Family {
	return &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewRegister(), objects.NewTwoSA()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
			{Obj: 2, Method: value.MethodPropose, Arg: enumerate.ArgInput},
		},
		Depth: depth,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
}

// binaryVectors returns all 2^n binary input vectors.
func binaryVectors(n int) [][]value.Value {
	var out [][]value.Value
	for mask := 0; mask < 1<<uint(n); mask++ {
		in := make([]value.Value, n)
		for i := range in {
			if mask&(1<<uint(i)) != 0 {
				in[i] = 1
			}
		}
		out = append(out, in)
	}
	return out
}

// sweepOptions wires the -workers and -memo flags and, with -v, live
// progress into a falsification sweep.
func (r *runner) sweepOptions(id string) enumerate.SweepOptions {
	opts := enumerate.SweepOptions{Workers: r.workers, Symmetry: r.symmetry, DisableMemo: !r.memo, Obs: r.sink, Events: r.events, Ctx: r.ctx}
	if r.verbose {
		opts.OnProgress = func(p enumerate.Progress) {
			if p.Candidates%1000 == 0 {
				fmt.Fprintf(r.out, "[%s] progress: %d candidates (%d pruned, %d inconclusive), %d states explored\n",
					id, p.Candidates, p.Pruned, p.Inconclusive, p.States)
			}
		}
	}
	return opts
}

// sweepVerdict folds a sweep into a row verdict: the impossibility
// claim holds only if candidates were checked, none solved the task,
// and none was left inconclusive by the state limit.
func sweepVerdict(rep *enumerate.Report, err error) (bool, string) {
	if err != nil {
		return false, err.Error()
	}
	ok := len(rep.Solvers) == 0 && len(rep.Inconclusive) == 0 && rep.Candidates > 0
	return ok, fmt.Sprintf("%d candidates, %d inconclusive, %d solvers",
		rep.Candidates, len(rep.Inconclusive), len(rep.Solvers))
}

// e3Falsification: Theorem 4.2's bounded-family sweep.
func (r *runner) e3Falsification() {
	vectors := binaryVectors(3)
	depths := []int{1}
	if !r.quick {
		depths = append(depths, 2)
	}
	for _, d := range depths {
		if r.stopped() {
			return
		}
		start := time.Now()
		rep, err := enumerate.FalsifyDAC(theorem42Family(d), 3, vectors, r.sweepOptions("E3"))
		ok, detail := sweepVerdict(rep, err)
		r.add("E3", "Thm 4.2: no 3-DAC from {2-cons, reg, 2-SA}",
			fmt.Sprintf("depth-%d family", d), ok, detail, time.Since(start))
	}
}

// e5PACMLevel: Theorem 5.3's positive half, plus the Theorem 5.2
// negative shape at family scale: no depth-1 candidate over the level-2
// base solves 3-consensus.
func (r *runner) e5PACMLevel() {
	for _, m := range []int{2, 3} {
		if r.stopped() {
			return
		}
		start := time.Now()
		ok, detail, err := r.checkSolved(programs.ConsensusFromPACM(m+1, m, m),
			task.Consensus{N: m}, distinct(m), explore.Options{})
		if err != nil {
			detail = err.Error()
			ok = false
		}
		r.add("E5", "Thm 5.3: (n,m)-PAC solves m-consensus", fmt.Sprintf("m=%d", m), ok, detail, time.Since(start))
	}

	if r.stopped() {
		return
	}
	start := time.Now()
	rep, err := enumerate.FalsifySymmetric(theorem42Family(1), task.Consensus{N: 3},
		binaryVectors(3), r.sweepOptions("E5"))
	ok, detail := sweepVerdict(rep, err)
	r.add("E5", "Thm 5.2 (-): no 3-consensus at level 2", "depth-1 family", ok, detail, time.Since(start))
}

// e7SamePower: Corollary 6.6's positive halves (n = 2, k = 1..2).
func (r *runner) e7SamePower() {
	const n = 2
	for k := 1; k <= 2; k++ {
		procs := k * n
		tsk := task.KSetAgreement{N: procs, K: k}
		variants := []struct {
			label string
			prot  programs.Protocol
		}{
			{"O'_2 (abstract)", programs.KSetFromOPrime(core.NewOPrime(n, nil), k, procs)},
			{"O'_2 per Lemma 6.4", programs.KSetFromOPrimeBase(n, k, procs)},
		}
		if k == 1 {
			variants = append(variants, struct {
				label string
				prot  programs.Protocol
			}{"O_2 consensus face", programs.ConsensusFromPACM(n+1, n, procs)})
		} else {
			variants = append(variants, struct {
				label string
				prot  programs.Protocol
			}{"O_2 partition", programs.PartitionObjectO(k, n)})
		}
		for _, v := range variants {
			if r.stopped() {
				return
			}
			start := time.Now()
			ok, detail, err := r.checkSolved(v.prot, tsk, distinct(procs), explore.Options{})
			if err != nil {
				detail = err.Error()
				ok = false
			}
			r.add("E7", "Cor 6.6: O_n and O'_n share their tasks",
				fmt.Sprintf("k=%d via %s", k, v.label), ok, detail, time.Since(start))
		}
	}
}

// theorem71Family is the Theorem 7.1 negative base {2-consensus,
// register} with its 3-entry menu — the 1116-candidate sweep.
func theorem71Family() *enumerate.Family {
	return &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(2), objects.NewRegister()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
		},
		Depth: 1,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
}

// e8Theorem71: Observation 5.1(b) route — (n,m)-PAC solves n-DAC — and
// the unimplementability shape: no bounded-family candidate over
// {2-consensus, register} (Theorem 7.1's base without the PAC object)
// solves 3-DAC.
func (r *runner) e8Theorem71() {
	if r.stopped() {
		return
	}
	start := time.Now()
	ok, detail, err := r.checkSolved(programs.Algorithm2ViaPACM(3, 2, 1),
		task.DAC{N: 3, P: 0}, canonical(3), explore.Options{})
	if err != nil {
		detail = err.Error()
		ok = false
	}
	r.add("E8", "Thm 7.1 (+): (4,2)-PAC face solves 3-DAC", "n=3, m=2", ok, detail, time.Since(start))

	fam := theorem71Family()
	if r.stopped() {
		return
	}
	start = time.Now()
	rep, sweepErr := enumerate.FalsifyDAC(fam, 3, binaryVectors(3), r.sweepOptions("E8"))
	ok, detail = sweepVerdict(rep, sweepErr)
	r.add("E8", "Thm 7.1 (-): no 3-DAC from {2-cons, reg}", "depth-1 family", ok, detail, time.Since(start))
}

// e10Hierarchy: partition lower bounds and classic level-2 protocols.
func (r *runner) e10Hierarchy() {
	if r.stopped() {
		return
	}
	start := time.Now()
	ok, detail, err := r.checkSolved(programs.Partition(2, 2),
		task.KSetAgreement{N: 4, K: 2}, distinct(4), explore.Options{})
	if err != nil {
		detail = err.Error()
		ok = false
	}
	r.add("E10", "CR formula (+): k groups give (km,k)-SA", "k=2, m=2", ok, detail, time.Since(start))

	if r.stopped() {
		return
	}
	start = time.Now()
	ok, detail, err = r.checkSolved(programs.ConsensusFromQueue(),
		task.Consensus{N: 2}, []value.Value{3, 4}, explore.Options{})
	if err != nil {
		detail = err.Error()
		ok = false
	}
	r.add("E10", "Herlihy: queue is at level >= 2", "one-token queue", ok, detail, time.Since(start))
}

// e11Valency: the proof-technique artifacts.
func (r *runner) e11Valency() {
	if r.stopped() {
		return
	}
	start := time.Now()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System(canonical(3))
	if err != nil {
		r.add("E11", "Claims 4.2.4-7: valency structure", "n=3", false, err.Error(), time.Since(start))
		return
	}
	// Deliberately unreduced regardless of -symmetry: this row drives the
	// bivalence-preserving adversary, which walks the concrete graph.
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{Valency: true, Obs: r.sink, Events: r.events})
	if err != nil {
		r.add("E11", "Claims 4.2.4-7: valency structure", "n=3", false, err.Error(), time.Since(start))
		return
	}
	v := rep.Valency
	ok := v.Initial.Bivalent() && v.CriticalCount > 0 && v.CriticalSameObject == v.CriticalCount
	detail := fmt.Sprintf("initial %s; %d critical, %d single-object",
		v.Initial, v.CriticalCount, v.CriticalSameObject)
	adv, advErr := rep.Adversary()
	if advErr != nil || !adv.KeepsBivalentForever() {
		ok = false
		detail += "; adversary failed to stay bivalent"
	} else {
		detail += fmt.Sprintf("; adversary cycles after %d steps", len(adv.Schedule))
	}
	r.add("E11", "Claims 4.2.4-7: valency structure", "Algorithm 2, n=3", ok, detail, time.Since(start))
}

// e13Chaudhuri: the resilience boundary.
func (r *runner) e13Chaudhuri() {
	const n, k = 3, 2
	if r.stopped() {
		return
	}
	start := time.Now()
	ok, detail, err := r.checkSolved(programs.ChaudhuriKSet(n, k),
		task.ResilientKSet{N: n, K: k, F: k - 1}, distinct(n), explore.Options{})
	if err != nil {
		detail = err.Error()
		ok = false
	}
	r.add("E13", "Chaudhuri (+): f=k-1 resilient k-SA from registers", "n=3, k=2, f=1", ok, detail, time.Since(start))

	if r.stopped() {
		return
	}
	start = time.Now()
	solved, detail2, err := r.checkSolved(programs.ChaudhuriKSet(n, k),
		task.ResilientKSet{N: n, K: k, F: k}, distinct(n), explore.Options{})
	ok = err == nil && !solved // the refutation is the expected result
	if err != nil {
		detail2 = err.Error()
	}
	r.add("E13", "BG/HS/SZ (-): not f=k resilient", "n=3, k=2, f=2", ok, detail2, time.Since(start))
}

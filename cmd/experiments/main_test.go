package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickSuiteAllMatch(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-quick"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	s := out.String()
	if strings.Contains(s, "FAIL") {
		t.Fatalf("a row failed:\n%s", s)
	}
	for _, want := range []string{
		"every experiment matches",
		"Thm 4.1", "Thm 4.2", "Thm 5.3", "Cor 6.6", "Thm 7.1",
		"Chaudhuri", "valency structure",
		"O'_2 per Lemma 6.4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestVerboseFlag(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-quick", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "[E2]") {
		t.Error("verbose per-row lines missing")
	}
}

func TestBadFlag(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-zap"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickSuiteAllMatch(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-quick"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	s := out.String()
	if strings.Contains(s, "FAIL") {
		t.Fatalf("a row failed:\n%s", s)
	}
	for _, want := range []string{
		"every experiment matches",
		"Thm 4.1", "Thm 4.2", "Thm 5.3", "Cor 6.6", "Thm 7.1",
		"Chaudhuri", "valency structure",
		"O'_2 per Lemma 6.4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestWorkersFlag: the sweeps' verdict table is identical at every
// worker count (only timings may differ), and still all-MATCH.
func TestWorkersFlag(t *testing.T) {
	t.Parallel()
	table := func(workers string) string {
		t.Helper()
		var out, errOut bytes.Buffer
		code := run([]string{"-quick", "-workers", workers}, &out, &errOut)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d\nstderr: %s", workers, code, errOut.String())
		}
		// Strip the trailing timing line ("N experiments in ...").
		lines := strings.Split(out.String(), "\n")
		var kept []string
		for _, l := range lines {
			if strings.Contains(l, " experiments in ") {
				continue
			}
			kept = append(kept, l)
		}
		return strings.Join(kept, "\n")
	}
	seq := table("1")
	par := table("8")
	if seq != par {
		t.Errorf("verdict tables differ between -workers 1 and 8:\n%s\nvs\n%s", seq, par)
	}
	if !strings.Contains(seq, "inconclusive") {
		t.Error("sweep rows do not report the inconclusive count")
	}
}

// TestVerboseSweepProgress: -v streams sweep progress lines.
func TestVerboseSweepProgress(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-quick", "-v", "-workers", "4"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "progress:") {
		t.Error("no sweep progress lines in verbose output")
	}
}

func TestVerboseFlag(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-quick", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "[E2]") {
		t.Error("verbose per-row lines missing")
	}
}

func TestBadFlag(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	if code := run([]string{"-zap"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

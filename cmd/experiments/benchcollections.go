// The -bench-collections mode: time a collections sweep large enough
// to measure — every size-3 multiset over a five-type menu — with
// dominance pruning off and on, verify the two configurations render
// byte-identical reports, run the N <= 4 cross-validation matrix, and
// write the comparison as JSON for bench_collections.jq /
// BENCH_collections.json.
//
// Honest framing: pruning never changes a verdict or a report byte —
// it only collapses dominated types before the knapsack DP runs, so
// fewer and smaller cost tables get built and memoized. The speedup is
// therefore a DP-work ratio on this menu, not a claim about sweep
// engines in general; menus whose types rarely dominate each other
// see ratios near 1.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"setagree/internal/collections"
	"setagree/internal/obs"
	"setagree/internal/power"
)

// collectionsBenchSpace is the timed space: C(7,3) = 35 collections
// whose DP tables span bounded and unbounded types, asked whether 6
// processes solve 2-set agreement.
func collectionsBenchSpace() (collections.Space, collections.Task) {
	space := collections.Space{
		Menu: []collections.Type{
			{N: 2, K: 1}, {N: 3, K: 2}, {N: 4, K: 3},
			{N: power.Infinite, K: 2}, {N: power.Infinite, K: 3},
		},
		Size: 3,
	}
	return space, collections.Task{Procs: 6, K: 2}
}

// collectionsBenchRun is one timed sweep configuration.
type collectionsBenchRun struct {
	ElapsedNs         int64   `json:"elapsed_ns"`
	CollectionsPerSec float64 `json:"collections_per_sec"`
	Pruned            int     `json:"pruned"`
}

// runBenchCollections executes the benchmark and writes its JSON to
// path. Exit status 0 on success, 2 on error; thresholds are gated
// downstream by the Makefile, with one exception — a cross-validation
// verdict the model checker refutes is an error here, not a metric.
func runBenchCollections(path string, workers int, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "experiments: bench-collections: %v\n", err)
		return 2
	}
	space, tsk := collectionsBenchSpace()
	run := func(disablePrune bool) (collectionsBenchRun, []byte, error) {
		var best collectionsBenchRun
		var bestBuf []byte
		for it := 0; it < benchIterations; it++ {
			sink := obs.NewSink()
			start := time.Now()
			// A fresh engine per iteration: the memo table is the thing
			// being measured, so it must not leak across runs.
			rep, err := collections.Sweep(space, tsk, collections.SweepOptions{
				Workers:      workers,
				DisablePrune: disablePrune,
				Engine:       collections.NewEngine(),
				Obs:          sink,
			})
			elapsed := time.Since(start)
			if err != nil {
				return collectionsBenchRun{}, nil, err
			}
			buf, err := rep.Render()
			if err != nil {
				return collectionsBenchRun{}, nil, err
			}
			r := collectionsBenchRun{
				ElapsedNs:         elapsed.Nanoseconds(),
				CollectionsPerSec: float64(rep.Collections) / elapsed.Seconds(),
				Pruned:            rep.Pruned,
			}
			if bestBuf == nil || r.ElapsedNs < best.ElapsedNs {
				best, bestBuf = r, buf
			}
		}
		return best, bestBuf, nil
	}

	off, offBuf, err := run(true)
	if err != nil {
		return fail(fmt.Errorf("prune=off: %w", err))
	}
	on, onBuf, err := run(false)
	if err != nil {
		return fail(fmt.Errorf("prune=on: %w", err))
	}

	results, err := collections.CrossValidateMatrix(collections.NewEngine(), collectionsCrossMenu(), 4,
		collections.CrossOptions{Workers: workers})
	if err != nil {
		return fail(err)
	}
	confirmed := 0
	for _, res := range results {
		if res.Confirmed {
			confirmed++
		} else {
			return fail(fmt.Errorf("verdict refuted: %s procs=%d K=%d: %s", res.Collection, res.Procs, res.K, res.Detail))
		}
	}

	out := struct {
		Tool            string              `json:"tool"`
		Space           map[string]int      `json:"space"`
		PruneOff        collectionsBenchRun `json:"prune_off"`
		PruneOn         collectionsBenchRun `json:"prune_on"`
		Speedup         float64             `json:"speedup"`
		RenderIdentical bool                `json:"render_identical"`
		CrossChecks     int                 `json:"cross_validations"`
		CrossConfirmed  int                 `json:"cross_confirmed"`
	}{
		Tool:            "experiments -bench-collections",
		Space:           map[string]int{"menu_types": len(space.Menu), "size": space.Size, "collections": space.Count()},
		PruneOff:        off,
		PruneOn:         on,
		Speedup:         on.CollectionsPerSec / off.CollectionsPerSec,
		RenderIdentical: bytes.Equal(offBuf, onBuf),
		CrossChecks:     len(results),
		CrossConfirmed:  confirmed,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return fail(err)
	}
	return 0
}

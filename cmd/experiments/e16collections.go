package main

import (
	"bytes"
	"fmt"
	"time"

	"setagree/internal/cluster"
	"setagree/internal/collections"
	"setagree/internal/power"
)

// collectionsCrossMenu is the size-1 cross-validation space: each
// singleton collection over the reference types, checked at every
// process count the model checker can afford.
func collectionsCrossMenu() collections.Space {
	return collections.Space{
		Menu: []collections.Type{{N: 2, K: 1}, {N: 3, K: 2}, {N: power.Infinite, K: 2}},
		Size: 1,
	}
}

// e16Collections: the set-consensus collections subsystem rows. First
// the decision procedure's determinism claim — the reference sweep
// renders byte-identical reports across worker counts and with
// dominance pruning on or off — then the cross-validation matrix:
// every solvability verdict at N <= maxProcs confirmed by the model
// checker, constructively (witness protocol checks out) or by
// exhaustive falsification.
func (r *runner) e16Collections() {
	if r.stopped() {
		return
	}
	start := time.Now()
	sp := cluster.CollectionsRef()
	space, tsk := sp.Space(), sp.Task()
	var base []byte
	identical := true
	detail := ""
	var ref *collections.Report
	for _, cfg := range []struct {
		workers int
		prune   bool
	}{{1, true}, {4, true}, {1, false}, {4, false}} {
		rep, err := collections.Sweep(space, tsk, collections.SweepOptions{
			Workers:      cfg.workers,
			DisablePrune: !cfg.prune,
			Obs:          r.sink,
			Events:       r.events,
			Ctx:          r.ctx,
		})
		if err != nil {
			r.add("E16", "Collections: sweep is schedule-independent", "reference space", false, err.Error(), time.Since(start))
			return
		}
		buf, err := rep.Render()
		if err != nil {
			r.add("E16", "Collections: sweep is schedule-independent", "reference space", false, err.Error(), time.Since(start))
			return
		}
		if base == nil {
			base, ref = buf, rep
		} else if !bytes.Equal(buf, base) {
			identical = false
			detail = fmt.Sprintf("workers=%d prune=%v diverged; ", cfg.workers, cfg.prune)
		}
	}
	detail += fmt.Sprintf("%d collections, %d pruned, %d solvable", ref.Collections, ref.Pruned, ref.Solvable)
	r.add("E16", "Collections: sweep is schedule-independent",
		"workers {1,4} x prune {on,off}", identical && ref.Collections == space.Count(), detail, time.Since(start))

	if r.stopped() {
		return
	}
	start = time.Now()
	maxProcs := 4
	if r.quick {
		maxProcs = 3
	}
	eng := collections.NewEngine()
	results, err := collections.CrossValidateMatrix(eng, collectionsCrossMenu(), maxProcs, collections.CrossOptions{
		Workers:  r.workers,
		Symmetry: r.symmetry,
		Obs:      r.sink,
		Events:   r.events,
	})
	if err != nil {
		r.add("E16", "Collections: verdicts match the model checker", fmt.Sprintf("N<=%d matrix", maxProcs), false, err.Error(), time.Since(start))
		return
	}
	confirmed, solvable, states := 0, 0, 0
	firstFail := ""
	for _, res := range results {
		if res.Confirmed {
			confirmed++
		} else if firstFail == "" {
			firstFail = fmt.Sprintf("; first failure %s procs=%d K=%d: %s", res.Collection, res.Procs, res.K, res.Detail)
		}
		if res.Solvable {
			solvable++
		}
		states += res.States
	}
	ok := len(results) > 0 && confirmed == len(results) && solvable > 0 && solvable < len(results)
	detail = fmt.Sprintf("%d/%d verdicts confirmed (%d solvable, %d unsolvable), %d configs%s",
		confirmed, len(results), solvable, len(results)-solvable, states, firstFail)
	r.add("E16", "Collections: verdicts match the model checker",
		fmt.Sprintf("singletons, N<=%d", maxProcs), ok, detail, time.Since(start))

	// The genuinely mixed multiset, both verdict sides at one N.
	if r.stopped() {
		return
	}
	start = time.Now()
	mixed := collections.Collection{Types: []collections.Type{{N: 2, K: 1}, {N: 3, K: 2}}}
	ma, err := eng.MinAgreement(mixed, 4)
	if err != nil {
		r.add("E16", "Collections: mixed multiset boundary", mixed.String(), false, err.Error(), time.Since(start))
		return
	}
	opts := collections.CrossOptions{Workers: r.workers, Symmetry: r.symmetry, Obs: r.sink, Events: r.events}
	pos, err := collections.CrossValidate(eng, mixed, collections.Task{Procs: 4, K: ma}, opts)
	if err == nil && ma > 1 {
		var neg collections.CrossResult
		neg, err = collections.CrossValidate(eng, mixed, collections.Task{Procs: 4, K: ma - 1}, opts)
		if err == nil {
			ok = pos.Solvable && pos.Confirmed && !neg.Solvable && neg.Confirmed
			detail = fmt.Sprintf("least K=%d at N=4: K=%d solvable confirmed, K=%d unsolvable confirmed", ma, ma, ma-1)
			if !ok {
				detail = fmt.Sprintf("least K=%d: positive %s / negative %s", ma, pos.Detail, neg.Detail)
			}
		}
	}
	if err != nil {
		ok, detail = false, err.Error()
	}
	r.add("E16", "Collections: mixed multiset boundary", mixed.String()+" at N=4", ok, detail, time.Since(start))
}

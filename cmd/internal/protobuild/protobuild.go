// Package protobuild turns a declarative instance description — a
// named protocol (or an assembly file) plus its size parameters and
// input vector — into a runnable (Protocol, Task, inputs) triple. It
// is the shared front half of every tool that model-checks or
// simulates an instance: cmd/explore populates a Config from flags,
// cmd/dacd unmarshals one from a submitted job's JSON spec (the
// field tags below are that wire format), and both get identical
// construction and defaulting semantics.
package protobuild

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"setagree/cmd/internal/specname"
	"setagree/internal/core"
	"setagree/internal/machine"
	"setagree/internal/programs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// Config describes one protocol instance. The zero value of each size
// parameter means "use the historical default" (N 3, M 2, K 2, P 1),
// so a JSON spec only states what it cares about.
type Config struct {
	// Protocol is a named protocol: alg2, alg2-upset, alg2-pacm,
	// consensus-pacm, consensus-direct, consensus-queue, consensus-tas,
	// partition, partition-on, kset-sa, kset-oprime, kset-oprime-base,
	// chaudhuri, naive-2sa, oversub, dac-attempt.
	Protocol string `json:"protocol,omitempty"`
	// Asm is an assembly file path: one symmetric program for all
	// processes (requires Objects, Task, Procs).
	Asm string `json:"asm,omitempty"`
	// Objects is the object list for Asm, e.g. "consensus:2,register".
	Objects string `json:"objects,omitempty"`
	// Task is the task for Asm: consensus | kset:K | dac.
	Task string `json:"task,omitempty"`
	// Inputs is the comma-separated input vector ("" = the proofs'
	// canonical default for the task).
	Inputs string `json:"inputs,omitempty"`
	// N is the n parameter (processes / PAC labels; default 3).
	N int `json:"n,omitempty"`
	// M is the consensus width (default 2).
	M int `json:"m,omitempty"`
	// K is the agreement bound (default 2).
	K int `json:"k,omitempty"`
	// P is the distinguished process, 1-based (default 1).
	P int `json:"p,omitempty"`
	// Procs overrides the process count where the protocol allows it.
	Procs int `json:"procs,omitempty"`
}

func (c *Config) defaults() Config {
	d := *c
	if d.N == 0 {
		d.N = 3
	}
	if d.M == 0 {
		d.M = 2
	}
	if d.K == 0 {
		d.K = 2
	}
	if d.P == 0 {
		d.P = 1
	}
	return d
}

// Build materializes the instance: the protocol, its task, and the
// input vector (parsed from Inputs, or the task-appropriate default).
func (c *Config) Build() (programs.Protocol, task.Task, []value.Value, error) {
	d := c.defaults()
	if d.Asm != "" {
		return d.buildAsm()
	}
	var (
		prot programs.Protocol
		tsk  task.Task
	)
	switch d.Protocol {
	case "alg2":
		prot, tsk = programs.Algorithm2(d.N, d.P), task.DAC{N: d.N, P: d.P - 1}
	case "alg2-upset":
		prot, tsk = programs.UpsettingAlgorithm2(d.N, d.P), task.DAC{N: d.N, P: d.P - 1}
	case "consensus-pacm":
		procs := orDefault(d.Procs, d.M)
		prot, tsk = programs.ConsensusFromPACM(d.N, d.M, procs), task.Consensus{N: procs}
	case "consensus-direct":
		procs := orDefault(d.Procs, d.M)
		prot, tsk = programs.ConsensusFromObject(d.M, procs), task.Consensus{N: procs}
	case "partition":
		prot, tsk = programs.Partition(d.K, d.M), task.KSetAgreement{N: d.K * d.M, K: d.K}
	case "partition-on":
		prot, tsk = programs.PartitionObjectO(d.K, d.N), task.KSetAgreement{N: d.K * d.N, K: d.K}
	case "kset-sa":
		procs := orDefault(d.Procs, d.N)
		prot, tsk = programs.KSetFromSA(d.N, d.K, procs), task.KSetAgreement{N: procs, K: d.K}
	case "kset-oprime":
		procs := orDefault(d.Procs, d.K*d.N)
		prot = programs.KSetFromOPrime(core.NewOPrime(d.N, nil), d.K, procs)
		tsk = task.KSetAgreement{N: procs, K: d.K}
	case "kset-oprime-base":
		procs := orDefault(d.Procs, d.K*d.N)
		prot, tsk = programs.KSetFromOPrimeBase(d.N, d.K, procs), task.KSetAgreement{N: procs, K: d.K}
	case "naive-2sa":
		procs := orDefault(d.Procs, 2)
		prot, tsk = programs.NaiveTwoSAConsensus(procs), task.Consensus{N: procs}
	case "oversub":
		prot, tsk = programs.OverSubscribedConsensus(d.M), task.Consensus{N: d.M + 1}
	case "dac-attempt":
		prot, tsk = programs.DACFromConsensusAndTwoSA(d.N, d.P), task.DAC{N: d.N + 1, P: d.P - 1}
	case "chaudhuri":
		prot = programs.ChaudhuriKSet(d.N, d.K)
		tsk = task.ResilientKSet{N: d.N, K: d.K, F: d.K - 1}
	case "alg2-pacm":
		prot, tsk = programs.Algorithm2ViaPACM(d.N, d.M, d.P), task.DAC{N: d.N, P: d.P - 1}
	case "consensus-queue":
		prot, tsk = programs.ConsensusFromQueue(), task.Consensus{N: 2}
	case "consensus-tas":
		prot, tsk = programs.ConsensusFromTAS(), task.Consensus{N: 2}
	case "":
		return programs.Protocol{}, nil, nil, fmt.Errorf("a protocol name or an asm file is required")
	default:
		return programs.Protocol{}, nil, nil, fmt.Errorf("unknown protocol %q", d.Protocol)
	}
	inputs, err := ParseInputs(d.Inputs, prot.Procs(), tsk)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	return prot, tsk, inputs, nil
}

func (c *Config) buildAsm() (programs.Protocol, task.Task, []value.Value, error) {
	if c.Objects == "" || c.Task == "" || c.Procs == 0 {
		return programs.Protocol{}, nil, nil, fmt.Errorf("an asm instance needs objects, a task, and a process count")
	}
	src, err := os.ReadFile(c.Asm)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	prog, err := machine.Parse(c.Asm, string(src), 16)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	var objs []spec.Spec
	for _, name := range strings.Split(c.Objects, ",") {
		sp, err := specname.Parse(strings.TrimSpace(name))
		if err != nil {
			return programs.Protocol{}, nil, nil, err
		}
		objs = append(objs, sp)
	}
	progs := make([]*machine.Program, c.Procs)
	for i := range progs {
		progs[i] = prog
	}
	prot := programs.Protocol{Name: "asm:" + c.Asm, Programs: progs, Objects: objs}

	var tsk task.Task
	switch {
	case c.Task == "consensus":
		tsk = task.Consensus{N: c.Procs}
	case c.Task == "dac":
		tsk = task.DAC{N: c.Procs, P: c.P - 1}
	case strings.HasPrefix(c.Task, "kset:"):
		k, err := strconv.Atoi(strings.TrimPrefix(c.Task, "kset:"))
		if err != nil {
			return programs.Protocol{}, nil, nil, fmt.Errorf("bad task %q", c.Task)
		}
		tsk = task.KSetAgreement{N: c.Procs, K: k}
	default:
		return programs.Protocol{}, nil, nil, fmt.Errorf("unknown task %q", c.Task)
	}
	inputs, err := ParseInputs(c.Inputs, c.Procs, tsk)
	if err != nil {
		return programs.Protocol{}, nil, nil, err
	}
	return prot, tsk, inputs, nil
}

// ParseInputs parses a comma-separated input vector, defaulting to the
// proofs' canonical vectors: 1 for the distinguished/first process, 0
// elsewhere for binary tasks; distinct values for k-set agreement.
func ParseInputs(raw string, procs int, tsk task.Task) ([]value.Value, error) {
	if raw != "" {
		parts := strings.Split(raw, ",")
		if len(parts) != procs {
			return nil, fmt.Errorf("%d inputs for %d processes", len(parts), procs)
		}
		out := make([]value.Value, procs)
		for i, part := range parts {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad input %q", part)
			}
			out[i] = value.Value(v)
		}
		return out, nil
	}
	out := make([]value.Value, procs)
	wantDistinct := false
	if kt, ok := tsk.(task.KSetAgreement); ok && kt.K >= 2 {
		wantDistinct = true
	}
	if rt, ok := tsk.(task.ResilientKSet); ok && rt.K >= 2 {
		wantDistinct = true
	}
	if wantDistinct {
		for i := range out {
			out[i] = value.Value(10 + i)
		}
		return out, nil
	}
	d := 0
	if dt, ok := tsk.(task.DAC); ok {
		d = dt.P
	}
	out[d] = 1
	return out, nil
}

// orDefault returns v if nonzero, else fallback.
func orDefault(v, fallback int) int {
	if v != 0 {
		return v
	}
	return fallback
}

// Package specname resolves textual object-spec names shared by the
// command-line tools (cmd/lincheck, cmd/explore).
package specname

import (
	"fmt"
	"strconv"
	"strings"

	"setagree/internal/core"
	"setagree/internal/objects"
	"setagree/internal/spec"
)

// Parse resolves a spec name:
//
//	register | consensus:N | sa:N:K | 2sa | pac:N | pacm:N:M |
//	oprime:N | oprime-base:N | queue | counter | tas | sticky
func Parse(s string) (spec.Spec, error) {
	parts := strings.Split(strings.ToLower(s), ":")
	argInt := func(i int) (int, error) {
		if len(parts) <= i {
			return 0, fmt.Errorf("spec %q: missing parameter %d", s, i)
		}
		n, err := strconv.Atoi(parts[i])
		if err != nil {
			return 0, fmt.Errorf("spec %q: bad parameter %q", s, parts[i])
		}
		return n, nil
	}
	switch parts[0] {
	case "register":
		return objects.NewRegister(), nil
	case "consensus":
		n, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return objects.NewConsensus(n), nil
	case "sa":
		n, err := argInt(1)
		if err != nil {
			return nil, err
		}
		k, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return objects.NewSetAgreement(n, k), nil
	case "2sa":
		return objects.NewTwoSA(), nil
	case "pac":
		n, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return core.NewPAC(n), nil
	case "pacm":
		n, err := argInt(1)
		if err != nil {
			return nil, err
		}
		m, err := argInt(2)
		if err != nil {
			return nil, err
		}
		return core.NewPACM(n, m), nil
	case "oprime":
		n, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return core.NewOPrime(n, nil), nil
	case "oprime-base":
		n, err := argInt(1)
		if err != nil {
			return nil, err
		}
		return core.NewOPrimeFromBase(n), nil
	case "queue":
		return objects.NewQueue(), nil
	case "counter":
		return objects.NewCounter(), nil
	case "tas":
		return objects.NewTestAndSet(), nil
	case "sticky":
		return objects.Sticky(), nil
	default:
		return nil, fmt.Errorf("unknown spec %q", s)
	}
}

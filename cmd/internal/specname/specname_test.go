package specname_test

import (
	"testing"

	"setagree/cmd/internal/specname"
)

func TestParseKnownNames(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"register":      "register",
		"consensus:3":   "3-consensus",
		"sa:4:2":        "(4,2)-SA",
		"2sa":           "2-SA",
		"pac:3":         "3-PAC",
		"pacm:3:2":      "(3,2)-PAC",
		"oprime:2":      "O'_2",
		"oprime-base:2": "O'_2-from-{2-consensus,2-SA}",
		"queue":         "queue",
		"counter":       "fetch&add",
		"tas":           "test&set",
		"sticky":        "1-SA",
		"PAC:3":         "3-PAC", // case-insensitive
	}
	for in, want := range cases {
		sp, err := specname.Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if sp.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", in, sp.Name(), want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	for _, in := range []string{"", "warp", "consensus", "consensus:x", "sa:3", "pacm:2"} {
		if _, err := specname.Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

// Package obsflags is the shared instrumentation edge of every cmd
// tool: it registers the observability flag quartet
//
//	-metrics <file>     final run-report JSON (obs.RunReport)
//	-events <file>      structured JSONL event stream (obs.Emitter)
//	-cpuprofile <file>  pprof CPU profile of the run
//	-memprofile <file>  pprof heap profile, written at exit
//
// and turns them into a Session holding the run's metrics Sink and
// event Emitter, which the tool threads into the engines it drives.
// When no flag is given every Session field is nil and the engines'
// nil-safe instrumentation costs nothing. Closing the session stops
// the profiles, folds the global machine step counter into the sink,
// emits the final run.done event, and writes the run report.
package obsflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"setagree/internal/machine"
	"setagree/internal/obs"
)

// Flags holds the parsed observability flag values.
type Flags struct {
	metrics    string
	events     string
	cpuprofile string
	memprofile string

	checkpoint      string
	checkpointEvery int
	resume          bool
}

// Register installs the -metrics, -events, -cpuprofile, and
// -memprofile flags on fs — plus the durable-runs trio -checkpoint,
// -checkpoint-every, and -resume, which every cmd tool accepts so the
// flag surface is uniform (tools without durable state reject them
// via Checkpointing.Reject) — and returns the value holder to Start
// from after parsing.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.metrics, "metrics", "", "write the final run-report JSON to this file")
	fs.StringVar(&f.events, "events", "", "stream structured JSONL events to this file")
	fs.StringVar(&f.cpuprofile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&f.memprofile, "memprofile", "", "write a pprof heap profile to this file at exit")
	fs.StringVar(&f.checkpoint, "checkpoint", "", "write exploration checkpoints to this file (SIGINT/SIGTERM still writes a final snapshot)")
	fs.IntVar(&f.checkpointEvery, "checkpoint-every", 0, "checkpoint cadence in BFS levels (0 = tool default; needs -checkpoint)")
	fs.BoolVar(&f.resume, "resume", false, "resume the exploration from the -checkpoint file")
	return f
}

// Checkpointing is the durable-runs flag trio shared by every cmd
// tool. cmd/explore supports all three (periodic snapshots, final
// snapshot on SIGINT/SIGTERM, -resume); cmd/experiments supports
// -checkpoint as an interrupt-snapshot path; the remaining tools call
// Reject so the flags fail loudly instead of being silently ignored.
type Checkpointing struct {
	// Path is the -checkpoint file ("" = checkpointing off).
	Path string
	// EveryLevels is the -checkpoint-every cadence in BFS levels (0 =
	// the tool's default).
	EveryLevels int
	// Resume asks to restore the exploration from Path.
	Resume bool
}

// Checkpointing returns the parsed durable-runs flags.
func (f *Flags) Checkpointing() Checkpointing {
	return Checkpointing{Path: f.checkpoint, EveryLevels: f.checkpointEvery, Resume: f.resume}
}

// Enabled reports whether any durable-runs flag was set.
func (c Checkpointing) Enabled() bool {
	return c.Path != "" || c.EveryLevels != 0 || c.Resume
}

// Validate checks flag consistency for tools that support
// checkpointing.
func (c Checkpointing) Validate() error {
	if c.Resume && c.Path == "" {
		return fmt.Errorf("-resume requires -checkpoint <file>")
	}
	if c.EveryLevels != 0 && c.Path == "" {
		return fmt.Errorf("-checkpoint-every requires -checkpoint <file>")
	}
	if c.EveryLevels < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0, got %d", c.EveryLevels)
	}
	return nil
}

// Reject returns an error when any durable-runs flag was set, for
// tools whose runs have no checkpointable state.
func (c Checkpointing) Reject(tool string) error {
	if !c.Enabled() {
		return nil
	}
	return fmt.Errorf("%s has no durable run state; -checkpoint/-checkpoint-every/-resume are supported by explore (and dacd jobs — see EXPERIMENTS.md \"Durable runs\")", tool)
}

// Session is one instrumented tool run.
type Session struct {
	// Sink collects the run's metrics. Nil unless -metrics or -events
	// was given; engines accept nil sinks at zero cost.
	Sink *obs.Sink
	// Events is the JSONL event stream. Nil unless -events was given.
	Events *obs.Emitter

	tool       string
	args       []string
	start      time.Time
	stepBase   int64
	metricsOut string
	eventsFile *os.File
	cpuFile    *os.File
	memOut     string
	closed     bool
}

// Start opens the requested outputs and begins the run: it creates the
// metrics sink (when -metrics or -events was given — the event stream
// gets a run.done summary from the same sink), opens the event stream
// with a run.start event, starts the CPU profile, and enables the
// global machine step counter. A Session is always returned on
// success, possibly with every field nil; Close is safe either way.
func Start(tool string, f *Flags, args []string) (*Session, error) {
	s := &Session{
		tool:       tool,
		args:       append([]string(nil), args...),
		start:      time.Now(),
		metricsOut: f.metrics,
		memOut:     f.memprofile,
	}
	if f.metrics != "" || f.events != "" {
		s.Sink = obs.NewSink()
		s.stepBase = machine.TotalSteps()
		machine.EnableStepCount(true)
	}
	if f.events != "" {
		ef, err := os.Create(f.events)
		if err != nil {
			return nil, fmt.Errorf("%s: -events: %w", tool, err)
		}
		s.eventsFile = ef
		s.Events = obs.NewEmitter(ef)
		s.Events.Emit("run.start", obs.Fields{"tool": tool, "args": s.args})
	}
	if f.cpuprofile != "" {
		cf, err := os.Create(f.cpuprofile)
		if err != nil {
			s.abort()
			return nil, fmt.Errorf("%s: -cpuprofile: %w", tool, err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			s.abort()
			return nil, fmt.Errorf("%s: -cpuprofile: %w", tool, err)
		}
		s.cpuFile = cf
	}
	return s, nil
}

// abort releases partially opened outputs when Start fails.
func (s *Session) abort() {
	if s.eventsFile != nil {
		s.eventsFile.Close()
	}
}

// Close finishes the run: stops the CPU profile, writes the heap
// profile, folds machine.steps into the sink, emits run.done, closes
// the event stream, and writes the -metrics run report. It returns the
// first error; instrumentation failures never change a tool's verdict,
// so callers report the error and keep their exit code. Close is
// idempotent and safe on a nil Session.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	elapsed := time.Since(s.start)
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
	}
	if s.memOut != "" {
		mf, err := os.Create(s.memOut)
		keep(err)
		if err == nil {
			runtime.GC() // materialize live-heap accounting before the snapshot
			keep(pprof.WriteHeapProfile(mf))
			keep(mf.Close())
		}
	}
	if s.Sink != nil {
		s.Sink.Counter("machine.steps").Add(machine.TotalSteps() - s.stepBase)
	}
	if s.Events != nil {
		snap := s.Sink.Snapshot()
		s.Events.Emit("run.done", obs.Fields{
			"tool":        s.tool,
			"duration_ns": int64(elapsed),
			"counters":    snap.Counters,
		})
		keep(s.Events.Err())
	}
	if s.eventsFile != nil {
		keep(s.eventsFile.Close())
	}
	if s.metricsOut != "" {
		rep := s.Sink.Report(s.tool, s.args, s.start, elapsed)
		mf, err := os.Create(s.metricsOut)
		keep(err)
		if err == nil {
			keep(rep.WriteJSON(mf))
			keep(mf.Close())
		}
	}
	return firstErr
}

// CloseTo closes the session and reports any instrumentation error on
// w (prefixed with the tool name) without affecting the caller's exit
// code. Intended as the one-line deferred companion of Start; safe on
// a nil Session.
func (s *Session) CloseTo(w io.Writer) {
	if s == nil {
		return
	}
	if err := s.Close(); err != nil {
		fmt.Fprintf(w, "%s: observability: %v\n", s.tool, err)
	}
}

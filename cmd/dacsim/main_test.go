package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestLiveMode(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "3", "-p", "1", "-trials", "5"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "all 5 trials satisfied") {
		t.Errorf("output: %s", out.String())
	}
}

func TestSimMode(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "4", "-mode", "sim", "-trials", "10", "-seed", "9", "-v"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trial   0: steps=") {
		t.Errorf("verbose output missing: %s", out.String())
	}
}

func TestSimModeWithCrash(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "3", "-mode", "sim", "-trials", "5", "-crash", "1:2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
}

func TestExplicitInputs(t *testing.T) {
	t.Parallel()
	var out, errOut bytes.Buffer
	code := run([]string{"-n", "2", "-inputs", "1,1", "-trials", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	// With unanimous input 1, every decision is 1 (Validity).
	if !strings.Contains(out.String(), "0 x 0,") {
		t.Errorf("expected no 0-decisions: %s", out.String())
	}
}

func TestBadFlags(t *testing.T) {
	t.Parallel()
	cases := [][]string{
		{"-n", "1"},
		{"-n", "3", "-p", "4"},
		{"-n", "3", "-inputs", "1,0"},
		{"-n", "3", "-inputs", "1,0,7"},
		{"-n", "3", "-mode", "warp"},
		{"-n", "3", "-mode", "sim", "-crash", "zap"},
		{"-n", "3", "-mode", "sim", "-crash", "9:1"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

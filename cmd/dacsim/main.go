// Command dacsim runs the paper's Algorithm 2 (solving the n-DAC
// problem from a single n-PAC object, §4).
//
// Two modes:
//
//	-mode live   n goroutines against a linearizable n-PAC object
//	             (the Go scheduler is the adversary);
//	-mode sim    the deterministic simulator under a seeded random
//	             schedule, optionally crashing processes.
//
// Usage:
//
//	dacsim [-n 5] [-p 1] [-inputs 1,0,0,0,0] [-mode live|sim]
//	       [-trials 100] [-seed 42] [-crash proc:step,...] [-v]
//	       [-metrics out.json] [-events out.jsonl]
//	       [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Every run's outcome is validated against the n-DAC Agreement,
// Validity, and Nontriviality properties; the command exits nonzero if
// any run violates them. -metrics writes a run-report JSON with the
// sim.* counters (runs, steps, completed) and per-second rates;
// -events streams one dacsim.trial event per finished trial (see
// EXPERIMENTS.md "Reading run reports").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"setagree"
	"setagree/cmd/internal/obsflags"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dacsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 5, "number of processes")
	p := fs.Int("p", 1, "distinguished process (1-based)")
	inputsFlag := fs.String("inputs", "", "comma-separated binary inputs (default: 1 for p, 0 elsewhere)")
	mode := fs.String("mode", "live", "live (goroutines) or sim (seeded scheduler)")
	trials := fs.Int("trials", 100, "number of runs")
	seed := fs.Uint64("seed", 42, "base seed for -mode sim")
	crashFlag := fs.String("crash", "", "crash plan for -mode sim, e.g. 1:3,2:10 (proc:step)")
	verbose := fs.Bool("v", false, "print each run's outcome")
	obsF := obsflags.Register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := obsF.Checkpointing().Reject("dacsim"); err != nil {
		fmt.Fprintf(stderr, "dacsim: %v\n", err)
		return 2
	}
	if *n < 2 || *p < 1 || *p > *n {
		fmt.Fprintln(stderr, "dacsim: need n >= 2 and 1 <= p <= n")
		return 2
	}
	inputs, err := parseInputs(*inputsFlag, *n, *p)
	if err != nil {
		fmt.Fprintf(stderr, "dacsim: %v\n", err)
		return 2
	}
	crash, err := parseCrash(*crashFlag, *n)
	if err != nil {
		fmt.Fprintf(stderr, "dacsim: %v\n", err)
		return 2
	}
	sess, err := obsflags.Start("dacsim", obsF, args)
	if err != nil {
		fmt.Fprintf(stderr, "dacsim: %v\n", err)
		return 2
	}
	defer sess.CloseTo(stderr)

	fmt.Fprintf(stdout, "%d-DAC via Algorithm 2: p=%d inputs=%v mode=%s trials=%d\n",
		*n, *p, inputs, *mode, *trials)

	aborts, decide0, decide1, attempts := 0, 0, 0, 0
	for trial := 0; trial < *trials; trial++ {
		switch *mode {
		case "live":
			results, err := setagree.RunDAC(*n, *p, inputs, 0)
			if err != nil {
				fmt.Fprintf(stderr, "dacsim: trial %d: %v\n", trial, err)
				return 1
			}
			if err := setagree.CheckDACOutcome(inputs, results, *p); err != nil {
				fmt.Fprintf(stderr, "dacsim: trial %d VIOLATION: %v\n", trial, err)
				return 1
			}
			for q, r := range results {
				attempts += r.Attempts
				if r.Aborted {
					aborts++
				} else if q+1 != *p || !r.Aborted {
					if r.Decision == 0 {
						decide0++
					} else {
						decide1++
					}
				}
			}
			sess.Sink.Counter("dacsim.live_trials").Inc()
			sess.Events.Emit("dacsim.trial", obs.Fields{
				"trial": trial, "mode": "live", "outcome": renderLive(results),
			})
			if *verbose {
				fmt.Fprintf(stdout, "  trial %3d: %s\n", trial, renderLive(results))
			}
		case "sim":
			prot := programs.Algorithm2(*n, *p)
			sys, err := prot.System(inputs)
			if err != nil {
				fmt.Fprintf(stderr, "dacsim: %v\n", err)
				return 2
			}
			res, err := sim.Run(sys, task.DAC{N: *n, P: *p - 1}, sim.Random(*seed+uint64(trial)),
				sim.Options{MaxSteps: 1 << 14, CrashAt: crash, Obs: sess.Sink})
			if err != nil {
				fmt.Fprintf(stderr, "dacsim: trial %d: %v\n", trial, err)
				return 1
			}
			if res.Violation != nil {
				fmt.Fprintf(stderr, "dacsim: trial %d VIOLATION: %v\n", trial, res.Violation)
				return 1
			}
			for q := range res.Outcome.Decided {
				if res.Outcome.Aborted[q] {
					aborts++
				} else if res.Outcome.Decided[q] {
					if res.Outcome.Decisions[q] == 0 {
						decide0++
					} else {
						decide1++
					}
				}
			}
			sess.Events.Emit("dacsim.trial", obs.Fields{
				"trial": trial, "mode": "sim", "seed": *seed + uint64(trial),
				"steps": res.Steps, "outcome": renderSim(res),
			})
			if *verbose {
				fmt.Fprintf(stdout, "  trial %3d: steps=%d %s\n", trial, res.Steps, renderSim(res))
			}
		default:
			fmt.Fprintf(stderr, "dacsim: unknown mode %q\n", *mode)
			return 2
		}
	}
	fmt.Fprintf(stdout, "all %d trials satisfied Agreement, Validity, and Nontriviality\n", *trials)
	fmt.Fprintf(stdout, "decisions: %d x 0, %d x 1; p aborted in %d trials", decide0, decide1, aborts)
	if *mode == "live" {
		fmt.Fprintf(stdout, "; total propose/decide rounds: %d", attempts)
	}
	fmt.Fprintln(stdout)
	return 0
}

func renderLive(results []setagree.DACResult) string {
	var b strings.Builder
	for q, r := range results {
		if q > 0 {
			b.WriteByte(' ')
		}
		if r.Aborted {
			fmt.Fprintf(&b, "p%d:abort", q+1)
		} else {
			fmt.Fprintf(&b, "p%d:%s", q+1, r.Decision)
		}
	}
	return b.String()
}

func renderSim(res *sim.Result) string {
	var b strings.Builder
	for q := range res.Outcome.Decided {
		if q > 0 {
			b.WriteByte(' ')
		}
		switch {
		case res.Outcome.Aborted[q]:
			fmt.Fprintf(&b, "p%d:abort", q+1)
		case res.Outcome.Decided[q]:
			fmt.Fprintf(&b, "p%d:%s", q+1, res.Outcome.Decisions[q])
		default:
			fmt.Fprintf(&b, "p%d:-", q+1)
		}
	}
	return b.String()
}

func parseInputs(s string, n, p int) ([]value.Value, error) {
	inputs := make([]value.Value, n)
	if s == "" {
		inputs[p-1] = 1 // the proofs' canonical initial configuration I
		return inputs, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("%d inputs for %d processes", len(parts), n)
	}
	for i, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || (v != 0 && v != 1) {
			return nil, fmt.Errorf("input %q is not binary", part)
		}
		inputs[i] = value.Value(v)
	}
	return inputs, nil
}

func parseCrash(s string, n int) (map[int]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]int)
	for _, part := range strings.Split(s, ",") {
		proc, step, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("crash entry %q: want proc:step", part)
		}
		pi, err := strconv.Atoi(proc)
		if err != nil || pi < 1 || pi > n {
			return nil, fmt.Errorf("crash process %q out of range", proc)
		}
		si, err := strconv.Atoi(step)
		if err != nil || si < 0 {
			return nil, fmt.Errorf("crash step %q invalid", step)
		}
		out[pi-1] = si
	}
	return out, nil
}

# Verification targets. `make verify` is the full gate every change
# must pass: gofmt + vet + build + tests + the race detector on the
# packages that run goroutines (the parallel sweep engine in enumerate,
# the parallel-BFS explorer it drives — whose multi-worker determinism
# tests run under -race here — the lincheck fuzzer, and the obs
# metrics layer they all feed).

GO ?= go

.PHONY: verify fmt vet build test race bench bench-json experiments

verify: fmt vet build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/enumerate ./internal/explore ./internal/lincheck ./internal/obs

bench:
	$(GO) test -bench=. -benchmem

# bench-json snapshots instrumented run reports for trajectory
# comparison across commits (see EXPERIMENTS.md "Reading run reports").
# BENCH_explore.json carries the workers dimension: the same alg2 -n 4
# exploration at -workers 1 and -workers 4 (reports are byte-identical
# by construction; only the rates differ) plus two ratios — the
# parallel speedup (bounded by the host's core count; ~1.0 on a
# single-core runner) and the speedup of the workers=4 engine over
# SEED_STATES_PER_SEC, the rate the seed's sequential string-key
# explorer recorded for the identical instance (BENCH_explore.json at
# commit bd294c8), which isolates the compact-binary-key rewrite.
SEED_STATES_PER_SEC = 39497.2975169156
bench-json:
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -workers 1 -metrics .bench_explore_w1.json > /dev/null
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -workers 4 -metrics .bench_explore_w4.json > /dev/null
	jq -n --slurpfile w1 .bench_explore_w1.json --slurpfile w4 .bench_explore_w4.json \
		--argjson seed $(SEED_STATES_PER_SEC) \
		'{workers1: $$w1[0], workers4: $$w4[0], speedup_workers4_vs_workers1: ($$w4[0].rates["explore.states_per_sec"] / $$w1[0].rates["explore.states_per_sec"]), seed_sequential_states_per_sec: $$seed, speedup_workers4_vs_seed_sequential: ($$w4[0].rates["explore.states_per_sec"] / $$seed)}' \
		> BENCH_explore.json
	rm -f .bench_explore_w1.json .bench_explore_w4.json
	$(GO) run ./cmd/experiments -quick -metrics BENCH_experiments.json > /dev/null
	@echo "wrote BENCH_explore.json BENCH_experiments.json"

experiments:
	$(GO) run ./cmd/experiments

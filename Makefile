# Verification targets. `make verify` is the full gate every change
# must pass: vet + build + tests + the race detector on the packages
# that run goroutines (the parallel sweep engine in enumerate, the
# explorer it drives, and the lincheck fuzzer).

GO ?= go

.PHONY: verify vet build test race bench experiments

verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/enumerate ./internal/explore ./internal/lincheck

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/experiments

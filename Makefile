# Verification targets. `make verify` is the full gate every change
# must pass: gofmt + vet + build + tests + the race detector on the
# packages that run goroutines (the parallel sweep engine in enumerate,
# the parallel-BFS explorer it drives — whose multi-worker determinism
# tests run under -race here — the lincheck fuzzer, the obs metrics
# layer they all feed, and the cluster coordinator, whose
# memoized-vs-unmemoized byte-equivalence suite exercises the shared
# memo table across concurrent shard workers).

GO ?= go

.PHONY: verify fmt vet build test race bench bench-json bench-gate bench-schema loadtest experiments

verify: fmt vet build test race bench-gate bench-schema

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The two pinned-worker runs re-execute the symmetry soundness suite
# (reduced-vs-unreduced verdict equality + witness replay) under the
# race detector at exactly Workers=1 and Workers=4; the unpinned
# ./internal/explore run above already covers the default {1,2,8} set.
# The final line re-runs the durable-runs suite — checkpoint
# kill-resume byte-equality, the jobs store/pool, and the dacd daemon's
# kill -9 e2e — under the race detector with caching disabled, since
# the kill-resume invariant (resumed report + event stream identical to
# an uninterrupted run) is exactly the kind of cross-goroutine
# determinism claim -race exists to audit.
race:
	$(GO) test -race ./internal/enumerate ./internal/explore ./internal/lincheck ./internal/obs ./internal/store ./internal/cluster ./internal/collections
	EXPLORE_SYMMETRY_WORKERS=1 $(GO) test -race -run 'TestSymmetry' ./internal/explore
	EXPLORE_SYMMETRY_WORKERS=4 $(GO) test -race -run 'TestSymmetry' ./internal/explore
	$(GO) test -race -count=1 -run 'TestKillResume|TestResume|TestContextCancel|TestDiskStore' ./internal/explore
	$(GO) test -race -count=1 ./internal/checkpoint ./internal/jobs ./cmd/dacd

bench:
	$(GO) test -bench=. -benchmem

# bench-json snapshots instrumented run reports for trajectory
# comparison across commits (see EXPERIMENTS.md "Reading run reports").
# BENCH_explore.json carries the workers dimension: the same alg2 -n 4
# exploration at -workers 1 and -workers 4 (reports are byte-identical
# by construction; only the rates differ) plus two ratios — the
# parallel speedup (bounded by the host's core count; ~1.0 on a
# single-core runner) and the speedup of the workers=4 engine over
# SEED_STATES_PER_SEC, the rate the seed's sequential string-key
# explorer recorded for the identical instance (BENCH_explore.json at
# commit bd294c8), which isolates the compact-binary-key rewrite.
# The symmetry block compares the same instances reduced vs unreduced
# (alg2 -n 4 at off/ids/values, alg2 -n 5 at off/ids; the -workers 1
# run doubles as the n=4 "off" baseline). Honest framing: the reduced
# runs intern orbit representatives, so "explore.states" shrinks by up
# to the group order while the raw states_per_sec rate DROPS (each
# interned state pays a canonicalization minimum over the group); the
# wall-clock win shows up in covered_states_per_sec — concrete states
# verified per second, i.e. the unreduced state count over the reduced
# run's wall time. benchmem_raw snapshots the off-vs-ids allocs/op
# rows of BenchmarkModelCheckDAC (the key-scratch pooling measurement).
# BENCH_experiments.json composes (bench_experiments.jq) the -quick
# battery's metrics report with the -bench-sweeps memoization
# comparison: the Thm 5.2 and Thm 7.1 reference sweeps timed with the
# cross-candidate memoizer off and on, with derived candidates_per_sec,
# speedup, and the in-process report byte-identity verdict.
SEED_STATES_PER_SEC = 39497.2975169156
bench-json:
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -workers 1 -metrics .bench_explore_w1.json > /dev/null
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -workers 4 -metrics .bench_explore_w4.json > /dev/null
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -symmetry ids -metrics .bench_sym_n4_ids.json > /dev/null
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -symmetry values -metrics .bench_sym_n4_values.json > /dev/null
	$(GO) run ./cmd/explore -protocol alg2 -n 5 -metrics .bench_sym_n5_off.json > /dev/null
	$(GO) run ./cmd/explore -protocol alg2 -n 5 -symmetry ids -metrics .bench_sym_n5_ids.json > /dev/null
	$(GO) test -run '^$$' -bench 'ModelCheckDAC/n=4/symmetry' -benchmem . > .bench_sym_allocs.txt
	jq -n --slurpfile w1 .bench_explore_w1.json --slurpfile w4 .bench_explore_w4.json \
		--slurpfile s4i .bench_sym_n4_ids.json --slurpfile s4v .bench_sym_n4_values.json \
		--slurpfile s5o .bench_sym_n5_off.json --slurpfile s5i .bench_sym_n5_ids.json \
		--rawfile benchmem .bench_sym_allocs.txt \
		--argjson seed $(SEED_STATES_PER_SEC) \
		-f bench_explore.jq > BENCH_explore.json
	rm -f .bench_explore_w1.json .bench_explore_w4.json .bench_sym_n4_ids.json \
		.bench_sym_n4_values.json .bench_sym_n5_off.json .bench_sym_n5_ids.json .bench_sym_allocs.txt
	$(GO) run ./cmd/experiments -quick -metrics .bench_experiments_quick.json > /dev/null
	$(GO) run ./cmd/experiments -bench-sweeps .bench_sweeps.json
	jq -n --slurpfile quick .bench_experiments_quick.json --slurpfile sweeps .bench_sweeps.json \
		-f bench_experiments.jq > BENCH_experiments.json
	rm -f .bench_experiments_quick.json .bench_sweeps.json
	$(GO) run ./cmd/experiments -bench-collections .bench_collections.json
	jq -n --slurpfile bench .bench_collections.json -f bench_collections.jq > BENCH_collections.json
	rm -f .bench_collections.json
	$(GO) test -run '^$$' -bench 'ModelCheckDAC/n=7/checkpoint' -benchtime 2x . > .bench_checkpoint.txt
	jq -n --rawfile bench .bench_checkpoint.txt -f bench_checkpoint.jq > BENCH_checkpoint.json
	rm -f .bench_checkpoint.txt
	$(GO) test -run '^$$' -bench 'ModelCheckDAC/n=7/store' -benchtime 2x . > .bench_store.txt
	jq -n --rawfile bench .bench_store.txt -f bench_store.jq > BENCH_store.json
	rm -f .bench_store.txt
	$(GO) test -run '^$$' -bench 'ModelCheckDAC/n=7/obs' -benchtime 2x -count 6 . > .bench_obs.txt
	jq -n --rawfile bench .bench_obs.txt --arg date "$$(date +%Y-%m-%d)" -f bench_obs.jq > BENCH_obs.json
	rm -f .bench_obs.txt
	@echo "wrote BENCH_explore.json BENCH_experiments.json BENCH_collections.json BENCH_checkpoint.json BENCH_store.json BENCH_obs.json"

# bench-gate is verify's throughput regression guard: one full alg2
# n=7 exploration (~285k configurations) must hold at least 90% of the
# committed baseline rate. The baseline is deliberately the FLOOR of
# the rates sampled on a loaded single-core runner when it was
# committed (observed spread 20k-48k states/sec run-to-run; typical
# hosts sit well above), so the gate trips on gross regressions — a
# lost fast path, an accidental O(n^2) — not on host noise. Update the
# baseline in the same commit as any intentional engine change that
# shifts it.
BASELINE_STATES_PER_SEC = 20527.4853259108
# The sweep gate guards the memoized falsification engine the same
# way: the Thm 5.2 reference sweep with cross-candidate memoization on
# must hold at least 90% of the committed floor rate (again the FLOOR
# of rates sampled on a loaded single-core runner — observed spread
# 41k-51k candidates/sec; typical hosts sit well above), and the
# memoized and unmemoized engines must render byte-identical reports
# on both reference sweeps in the same run. The gate uses the SMALL
# sweep deliberately: its fixed per-sweep costs dominate, so a
# regression in the memo hit path (key assembly, table probes) shows
# up here first rather than being hidden by Thm 7.1's dedup leverage.
BASELINE_SWEEP_CPS = 41156.5
bench-gate:
	$(GO) run ./cmd/explore -protocol alg2 -n 7 -metrics .bench_gate.json > /dev/null
	@jq -e --argjson base $(BASELINE_STATES_PER_SEC) \
		'.rates."explore.states_per_sec" >= $$base * 0.9' .bench_gate.json > /dev/null \
		|| { echo "bench-gate: explore.states_per_sec $$(jq '.rates."explore.states_per_sec"' .bench_gate.json) fell below 90% of baseline $(BASELINE_STATES_PER_SEC)"; rm -f .bench_gate.json; exit 1; }
	@echo "bench-gate: $$(jq '.rates."explore.states_per_sec"' .bench_gate.json) states/sec (baseline $(BASELINE_STATES_PER_SEC))"
	@rm -f .bench_gate.json
	$(GO) run ./cmd/experiments -bench-sweeps .bench_gate_sweeps.json
	@jq -e --argjson base $(BASELINE_SWEEP_CPS) \
		'(.sweeps | map(select(.id == "thm52"))[0].memo_on.candidates_per_sec >= $$base * 0.9) and (.sweeps | all(.render_identical))' .bench_gate_sweeps.json > /dev/null \
		|| { echo "bench-gate: memoized thm52 sweep $$(jq '.sweeps | map(select(.id == "thm52"))[0].memo_on.candidates_per_sec' .bench_gate_sweeps.json) candidates/sec below 90% of baseline $(BASELINE_SWEEP_CPS), or reports not byte-identical"; rm -f .bench_gate_sweeps.json; exit 1; }
	@echo "bench-gate: $$(jq '.sweeps | map(select(.id == "thm52"))[0].memo_on.candidates_per_sec' .bench_gate_sweeps.json) memoized candidates/sec (baseline $(BASELINE_SWEEP_CPS)), thm71 speedup $$(jq '.sweeps | map(select(.id == "thm71"))[0].speedup' .bench_gate_sweeps.json)x"
	@rm -f .bench_gate_sweeps.json

# bench-schema is verify's evidence-file guard: BENCH_obs.json (the
# committed instrumentation-overhead measurement, regenerated by
# bench-json) must carry a plausible level-latency histogram — positive
# quantiles in the right order — and both bench rows, so the /metrics
# quantile pipeline can't silently rot out of the evidence.
bench-schema:
	@jq -e '.threshold_percent == 2 and (.results | length) == 2 and .histogram.level_count_per_op > 0 and .histogram.level_p50_ns > 0 and .histogram.level_p99_ns >= .histogram.level_p50_ns' BENCH_obs.json > /dev/null \
		|| { echo "bench-schema: BENCH_obs.json missing or has implausible histogram fields"; exit 1; }
	@echo "bench-schema: BENCH_obs.json ok ($$(jq -r .verdict BENCH_obs.json | cut -c1-40)...)"
	@jq -e -f bench_cluster.jq BENCH_cluster.json > /dev/null \
		|| { echo "bench-schema: BENCH_cluster.json missing or fails the cluster SLO gate (regenerate with make loadtest)"; exit 1; }
	@echo "bench-schema: BENCH_cluster.json ok (identical=$$(jq -r .sweep.report_identical BENCH_cluster.json), p99=$$(jq -r .load.submit_ms.p99 BENCH_cluster.json)ms, 429s=$$(jq -r .load.rejected_429 BENCH_cluster.json))"
	@jq -e '(.sweeps.thm52.candidates == 49) and (.sweeps.thm71.candidates == 1116) and .sweeps.thm52.render_identical and .sweeps.thm71.render_identical and (.sweeps.thm71.memo_on.candidates_per_sec > 0) and (.sweeps.thm71.memo_off.candidates_per_sec > 0) and (.memoization.render_identical == true) and (.quick.counters."sweep.sweeps" >= 1)' BENCH_experiments.json > /dev/null \
		|| { echo "bench-schema: BENCH_experiments.json missing the memoization sweep comparison or reports not byte-identical (regenerate with make bench-json)"; exit 1; }
	@echo "bench-schema: BENCH_experiments.json ok (thm71 speedup $$(jq -r .memoization.thm71_speedup BENCH_experiments.json)x, identical=$$(jq -r .memoization.render_identical BENCH_experiments.json))"
	@jq -e '(.space.collections == 35) and .pruning.render_identical and (.pruning.on.collections_per_sec > 0) and (.pruning.off.collections_per_sec > 0) and .cross_validation.all_confirmed' BENCH_collections.json > /dev/null \
		|| { echo "bench-schema: BENCH_collections.json missing, reports not byte-identical across pruning, or a cross-validation verdict unconfirmed (regenerate with make bench-json)"; exit 1; }
	@echo "bench-schema: BENCH_collections.json ok (pruning speedup $$(jq -r .pruning.speedup BENCH_collections.json)x, cross-validations $$(jq -r .cross_validation.confirmed BENCH_collections.json)/$$(jq -r .cross_validation.checks BENCH_collections.json) confirmed)"

# loadtest stands up a real cluster on this host — one coordinator
# dacd in front of two worker dacds, plus a plain daemon as the
# baseline — runs the Theorem 7.1 sweep through both paths, floods the
# coordinator's bounded queue with concurrent submitters, and rewrites
# BENCH_cluster.json. dacload exits non-zero when any SLO fails (see
# bench_cluster.jq for the gated fields), so this target doubles as
# the cluster acceptance check in CI.
loadtest:
	$(GO) build -o bin/dacd ./cmd/dacd
	$(GO) build -o bin/dacload ./cmd/dacload
	./bin/dacload -dacd bin/dacd -workers 2 -out BENCH_cluster.json
	@jq -e -f bench_cluster.jq BENCH_cluster.json > /dev/null \
		|| { echo "loadtest: BENCH_cluster.json fails its own gate"; exit 1; }

experiments:
	$(GO) run ./cmd/experiments

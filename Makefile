# Verification targets. `make verify` is the full gate every change
# must pass: gofmt + vet + build + tests + the race detector on the
# packages that run goroutines (the parallel sweep engine in enumerate,
# the explorer it drives, the lincheck fuzzer, and the obs metrics
# layer they all feed).

GO ?= go

.PHONY: verify fmt vet build test race bench bench-json experiments

verify: fmt vet build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/enumerate ./internal/explore ./internal/lincheck ./internal/obs

bench:
	$(GO) test -bench=. -benchmem

# bench-json snapshots instrumented run reports for trajectory
# comparison across commits (see EXPERIMENTS.md "Reading run reports").
bench-json:
	$(GO) run ./cmd/explore -protocol alg2 -n 4 -metrics BENCH_explore.json > /dev/null
	$(GO) run ./cmd/experiments -quick -metrics BENCH_experiments.json > /dev/null
	@echo "wrote BENCH_explore.json BENCH_experiments.json"

experiments:
	$(GO) run ./cmd/experiments

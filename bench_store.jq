# Builds BENCH_store.json (see Makefile bench-json). Input arrives as
# --rawfile bench: the store-dimension rows of BenchmarkModelCheckDAC
# (alg2 n=7 at -workers 1, the in-memory engine vs the disk-backed
# out-of-core store, identical instance and identical reports).
#
# The measurement is the out-of-core trade: states/sec and B/op for
# the two engines, the spill volume per run (spilled_mb), and the
# disk row's live-heap high-water mark (heap_max_mb) — the acceptance
# evidence that the n=7 exploration completes under its 1.5 GiB
# budget (the bench row runs WITH the budget set, so it would fail
# outright if exceeded). report_fp is an FNV-32a fingerprint of the
# verdict counts and must be equal across the rows; full byte-identity
# of reports, DOT, and event streams is pinned by the
# TestDiskStoreReportEquivalence suite, not here. Honest framing: on
# this instance the disk engine can be FASTER than the in-memory one —
# spilling expanded levels shrinks the live heap, so GC traces much
# less — but the headline target is only that it stays within 2x of
# the in-memory rate while bounding memory; treat anything beyond that
# as host-dependent.

# Row names may carry go test's -GOMAXPROCS suffix on multi-core hosts.
def row(name):
  $bench | split("\n") | map(select(test("/store=" + name + "(-\\d+)?\\s")))[0];
def metric(name; m):
  row(name) | capture("\\s(?<v>[0-9.eE+-]+) " + m) | (.v | tonumber);
def bop(name):
  row(name) | capture("\\s(?<v>[0-9]+) B/op") | (.v | tonumber);

metric("mem"; "states/sec") as $memRate |
metric("disk"; "states/sec") as $diskRate |
metric("mem"; "report_fp") as $memFp |
metric("disk"; "report_fp") as $diskFp |
{
  states_per_sec: { mem: $memRate, disk: $diskRate, ratio: ($diskRate / $memRate) },
  bytes_per_op: { mem: bop("mem"), disk: bop("disk") },
  spilled_mb: metric("disk"; "spilled_mb"),
  heap_max_mb: metric("disk"; "heap_max_mb"),
  budget_mb: 1536,
  budget_met: (metric("disk"; "heap_max_mb") < 1536),
  report_fp: { mem: $memFp, disk: $diskFp, equal: ($memFp == $diskFp) },
  target: "disk within 2x of mem states/sec, heap_max under the 1.5 GiB budget, fingerprints equal",
  target_met: (($diskRate / $memRate) > 0.5 and (metric("disk"; "heap_max_mb") < 1536) and $memFp == $diskFp),
  raw_rows: ($bench | split("\n") | map(select(contains("/store="))))
}

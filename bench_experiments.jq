# Builds BENCH_experiments.json (see Makefile bench-json). Two inputs:
# --slurpfile quick, the obsflags metrics report of the -quick
# experiment battery (every theorem row, instrumented end to end), and
# --slurpfile sweeps, the output of `experiments -bench-sweeps` — the
# Thm 5.2 (49-candidate symmetric) and Thm 7.1 (1116-candidate DAC)
# reference falsification sweeps timed with cross-candidate
# memoization off and on (best of five runs each) plus an in-process
# byte-identity check of the two engines' rendered reports.
#
# Honest framing, inherited from the bench harness: the memoized
# candidates_per_sec is a COVERED rate — every candidate receives its
# exact verdict, but most are settled by attributing a memoized
# equivalence-class verdict rather than by a fresh exploration. The
# unmemoized rate is the concrete-exploration rate. speedup is the
# user-visible sweep wall-clock win, not a claim that the explorer
# itself got faster. Expect the Thm 7.1 ratio to dwarf the Thm 5.2 one:
# dedup leverage grows with the candidate count (957 of 1116 candidates
# collapse onto ~160 equivalence-class representatives, versus 34 of
# 49), so the small sweep's fixed costs show through.
#
# memoization.render_identical (both sweeps) is gated by bench-schema;
# the throughput floor is gated separately by bench-gate
# (BASELINE_SWEEP_CPS), so a noisy host trips the explicit gate rather
# than silently committing a false "target_met".

$quick[0] as $q |
$sweeps[0] as $s |
($s.sweeps | map(select(.id == "thm52"))[0]) as $t52 |
($s.sweeps | map(select(.id == "thm71"))[0]) as $t71 |
{
  tool: "experiments",
  quick: $q,
  sweeps: { thm52: $t52, thm71: $t71 },
  memoization: {
    target: "memoized Thm 7.1 sweep at >= 5x the unmemoized candidates/sec, reports byte-identical on both sweeps",
    thm52_speedup: $t52.speedup,
    thm71_speedup: $t71.speedup,
    render_identical: ($t52.render_identical and $t71.render_identical),
    target_met: ($t71.speedup >= 5 and $t52.render_identical and $t71.render_identical)
  }
}

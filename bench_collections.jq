# Builds BENCH_collections.json (see Makefile bench-json). One input:
# --slurpfile bench, the output of `experiments -bench-collections` —
# the 35-collection reference sweep (size-3 multisets over a five-type
# menu, 6 processes asking for 2-set agreement) timed with dominance
# pruning off and on (best of five runs each), an in-process byte-
# identity check of the two configurations' rendered reports, and the
# N <= 4 cross-validation matrix (every decision-procedure verdict
# re-derived by the model checker: solvable constructively via the
# witness protocol, unsolvable by exhaustive falsification).
#
# Honest framing: pruning never changes a verdict or a report byte —
# it collapses dominated types before the knapsack DP runs, so fewer
# and smaller cost tables are built and memoized. speedup is a DP-work
# ratio on this menu, not a general engine claim; menus whose types
# rarely dominate each other see ratios near 1. The byte-identity and
# all-confirmed verdicts are gated by bench-schema; the speedup is
# recorded, not gated — it is host- and menu-shaped.

$bench[0] as $b |
{
  tool: "experiments -bench-collections",
  space: $b.space,
  pruning: {
    off: $b.prune_off,
    on: $b.prune_on,
    speedup: $b.speedup,
    render_identical: $b.render_identical
  },
  cross_validation: {
    checks: $b.cross_validations,
    confirmed: $b.cross_confirmed,
    all_confirmed: ($b.cross_validations > 0 and $b.cross_validations == $b.cross_confirmed)
  }
}

// separation: the paper's main result (Corollary 6.6), executably.
//
// At every level n >= 2 of the consensus hierarchy there are two
// objects with the SAME set agreement power that are NOT equivalent:
//
//	O_n  = the (n+1, n)-PAC object (Definition 6.1), and
//	O'_n = the routed collection of (n_k, k)-SA objects (§6).
//
// This example walks through the executable halves of the argument for
// n = 2:
//
//  1. Same power, positively: both objects solve (n_k, k)-set agreement
//     for k = 1, 2 — verified here by EXHAUSTIVE model checking over
//     every schedule and every nondeterministic object response.
//  2. O'_n is implementable from {n-consensus, 2-SA} (Lemma 6.4): we
//     run the same tasks against core.OPrimeFromBase, whose components
//     are only those two object types.
//  3. O_n is NOT so implementable (Observation 6.3): impossibility is
//     not runnable, but its *shape* is — a bounded family of candidate
//     protocols for the 3-DAC problem over {2-consensus, registers,
//     2-SA} (the problem O_2 solves via Observation 5.1(b)) is
//     enumerated and every candidate is refuted with a concrete
//     counterexample schedule (Theorem 4.2's statement at family
//     scale).
//
// Run:  go run ./examples/separation
package main

import (
	"fmt"
	"os"

	"setagree/internal/core"
	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/objects"
	"setagree/internal/power"
	"setagree/internal/programs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

const n = 2 // hierarchy level

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "separation:", err)
		os.Exit(1)
	}
}

func run() error {
	on := power.ObjectO(n)
	fmt.Printf("Level n = %d of the consensus hierarchy\n", n)
	fmt.Printf("  O_%d  = %s, power %s\n", n, core.ObjectO(n).Name(), power.Format(on, 4))
	fmt.Printf("  O'_%d = routed {(n_k,k)-SA} collection, power %s (same by construction)\n\n",
		n, power.Format(on, 4))

	// Part 1 + 2: both objects solve the same set agreement tasks; the
	// O'_n side runs via the Lemma 6.4 implementation too.
	fmt.Println("1. Same set agreement power (exhaustive model checking):")
	for k := 1; k <= 2; k++ {
		procs := on.At(k)
		tsk := task.KSetAgreement{N: procs, K: k}
		for _, prot := range []programs.Protocol{
			kFromObjectO(k, procs),
			programs.KSetFromOPrime(core.NewOPrime(n, nil), k, procs),
			programs.KSetFromOPrimeBase(n, k, procs),
		} {
			rep, err := checkAll(prot, tsk, procs)
			if err != nil {
				return err
			}
			verdict := "SOLVED"
			if !rep.Solved() {
				verdict = "REFUTED: " + rep.Violations[0].Error()
			}
			fmt.Printf("   k=%d, %d processes: %-60s %s (%d configs)\n",
				k, procs, prot.Name, verdict, rep.States)
			if !rep.Solved() {
				return fmt.Errorf("unexpected refutation")
			}
		}
	}

	// Part 3: the non-equivalence direction, at family scale.
	fmt.Println("\n2. Non-equivalence (Theorem 4.2 / Observation 6.3, bounded-family falsification):")
	fmt.Printf("   O_%d solves the %d-DAC problem (Observation 5.1(b) + Theorem 4.1);\n", n, n+1)
	fmt.Printf("   can any protocol over {%d-consensus, register, 2-SA} do the same?\n", n)
	fam := &enumerate.Family{
		Objects: []spec.Spec{objects.NewConsensus(n), objects.NewRegister(), objects.NewTwoSA()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
			{Obj: 2, Method: value.MethodPropose, Arg: enumerate.ArgInput},
		},
		Depth: 1,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
	rep, err := enumerate.FalsifyDAC(fam, n+1, binaryVectors(n+1), enumerate.SweepOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("   swept %d candidate (p, q) protocol pairs (%d more pruned by solo probing)\n",
		rep.Candidates, rep.Pruned)
	fmt.Printf("   solvers found: %d\n", len(rep.Solvers))
	if len(rep.Solvers) != 0 {
		return fmt.Errorf("a candidate solved %d-DAC — Theorem 4.2 says this cannot happen", n+1)
	}
	if rep.SampleFailure != nil {
		f := rep.SampleFailure
		fmt.Printf("   sample refutation (inputs %v): %s\n", f.Inputs, f.Violation.Error())
		for i, s := range f.Violation.Witness {
			if i >= 6 {
				fmt.Printf("      ... (%d more steps)\n", len(f.Violation.Witness)-i)
				break
			}
			fmt.Printf("      %s\n", s)
		}
	}
	fmt.Printf("\nConclusion (Corollary 6.6): O_%d and O'_%d have the same set agreement power\n", n, n)
	fmt.Println("but are not equivalent — the set agreement power of an object does not")
	fmt.Println("determine its computational power.")
	return nil
}

// kFromObjectO builds the O_n-side protocol for level k: k groups over
// k O_n objects (k = 1 degenerates to one group using one object).
func kFromObjectO(k, procs int) programs.Protocol {
	if k == 1 {
		return programs.ConsensusFromPACM(n+1, n, procs)
	}
	return programs.PartitionObjectO(k, n)
}

func checkAll(prot programs.Protocol, tsk task.Task, procs int) (*explore.Report, error) {
	inputs := make([]value.Value, procs)
	for i := range inputs {
		inputs[i] = value.Value(10 + i)
	}
	sys, err := prot.System(inputs)
	if err != nil {
		return nil, err
	}
	return explore.Check(sys, tsk, explore.Options{})
}

func binaryVectors(procs int) [][]value.Value {
	var out [][]value.Value
	for mask := 0; mask < 1<<uint(procs); mask++ {
		in := make([]value.Value, procs)
		for i := range in {
			if mask&(1<<uint(i)) != 0 {
				in[i] = 1
			}
		}
		out = append(out, in)
	}
	return out
}

// bivalency: the proof technique of §§4–5, mechanized.
//
// The paper's impossibility proofs (Theorems 4.2 and 5.2) are bivalency
// arguments in the style of FLP [8]: show the initial configuration is
// bivalent, extract a critical configuration whose every successor is
// univalent, show all poised processes target one object, and derive a
// contradiction from that object's spec. This example replays the
// observable half of that argument on real protocols with the valency
// analyzer:
//
//   - Algorithm 2 (a correct protocol): the canonical initial
//     configuration I (p's input 1, others 0) is bivalent (Claim 4.2.4),
//     critical configurations exist, and at every one of them all
//     processes are poised on the same object (the structure Claims
//     4.2.7 / 5.2.3 establish).
//   - The flawed 3-consensus-from-2-consensus protocol: the analyzer
//     exhibits the wait-freedom violation the paper's adversary would
//     construct, as a concrete schedule plus a repeatable cycle.
//
// Run:  go run ./examples/bivalency
package main

import (
	"fmt"
	"os"

	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bivalency:", err)
		os.Exit(1)
	}
}

func run() error {
	// Part 1: the valency structure of a correct protocol.
	fmt.Println("=== Algorithm 2, n = 3, inputs I = (1, 0, 0) — the proofs' canonical start ===")
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		return err
	}
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{Valency: true})
	if err != nil {
		return err
	}
	fmt.Printf("reachable configurations: %d (%d transitions)\n", rep.States, rep.Transitions)
	fmt.Printf("task verdict: solved = %v (Theorem 4.1)\n", rep.Solved())
	v := rep.Valency
	fmt.Printf("initial configuration: %s   <- Claim 4.2.4's shape\n", v.Initial)
	fmt.Printf("valence census: %d bivalent / %d 0-valent / %d 1-valent\n",
		v.Bivalent, v.Univalent0, v.Univalent1)
	fmt.Printf("critical configurations: %d, of which %d have every live process poised on ONE object\n",
		v.CriticalCount, v.CriticalSameObject)
	if len(v.Critical) > 0 {
		cc := v.Critical[0]
		fmt.Printf("first critical configuration (id %d), reached by:\n", cc.ID)
		for _, s := range cc.Schedule {
			fmt.Printf("  %s\n", s)
		}
		if cc.SameObject {
			fmt.Printf("all processes are about to operate on the %s object —\n", cc.ObjectName)
			fmt.Println("exactly the single-object structure Claims 4.2.7 / 5.2.3 establish.")
		}
	}

	// Part 2: a doomed protocol and its adversarial schedule.
	fmt.Println()
	fmt.Println("=== Flawed: 3 processes, one 2-consensus object + register hand-off ===")
	flawed := programs.OverSubscribedConsensus(2)
	fsys, err := flawed.System([]value.Value{0, 1, 1})
	if err != nil {
		return err
	}
	frep, err := explore.Check(fsys, task.Consensus{N: 3}, explore.Options{Valency: true})
	if err != nil {
		return err
	}
	fmt.Printf("reachable configurations: %d\n", frep.States)
	fmt.Printf("task verdict: solved = %v\n", frep.Solved())
	for _, viol := range frep.Violations {
		fmt.Printf("violation: %s\n", viol.Error())
		if len(viol.Cycle) > 0 {
			fmt.Println("the adversary's schedule (prefix):")
			for i, s := range viol.Witness {
				if i >= 5 {
					fmt.Printf("  ... (%d more steps)\n", len(viol.Witness)-i)
					break
				}
				fmt.Printf("  %s\n", s)
			}
			fmt.Println("then repeat forever:")
			for _, s := range viol.Cycle {
				fmt.Printf("  %s\n", s)
			}
		}
	}
	// Part 3: the bivalence-preserving adversary itself.
	fmt.Println()
	fmt.Println("=== The adversary, mechanized ===")
	adv, err := rep.Adversary()
	if err != nil {
		return err
	}
	if adv.KeepsBivalentForever() {
		fmt.Printf("Against Algorithm 2 the adversary keeps the run bivalent FOREVER: after %d\n", len(adv.Schedule))
		fmt.Println("set-up steps it repeats this loop of non-distinguished retries:")
		for _, s := range adv.Cycle {
			fmt.Printf("  %s\n", s)
		}
		fmt.Println("This is legal for n-DAC (only solo termination is promised) — the weak-")
		fmt.Println("termination loophole the PAC objects are built around. Against any")
		fmt.Println("wait-free-correct protocol the same adversary is forced into a critical")
		fmt.Println("configuration in finitely many steps (see the tests).")
	} else {
		fmt.Printf("Adversary forced to critical configuration %d after %d steps.\n",
			adv.CriticalID, len(adv.Schedule))
	}

	fmt.Println()
	fmt.Println("The correct protocol's bivalence resolves at object-clustered critical")
	fmt.Println("configurations; the doomed one hands the adversary an infinite run. This is")
	fmt.Println("the engine behind every impossibility result in the paper.")
	return nil
}

// Quickstart: the n-PAC object (§3) from the public API.
//
// Four goroutines share one 4-PAC object. Each runs the propose/decide
// pairing discipline of §3 — PROPOSE(v, i) then DECIDE(i) with its own
// label — retrying until the decide returns a value. The n-PAC
// properties (Theorem 3.5) guarantee that every returned value is the
// same single proposed value.
//
// Run:  go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync"

	"setagree"
)

func main() {
	const n = 4
	d := setagree.NewPAC(n)

	var wg sync.WaitGroup
	decisions := make([]setagree.Value, n)
	rounds := make([]int, n)
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			myValue := setagree.Value(100 + i)
			for round := 1; ; round++ {
				// Propose on our own label...
				if err := d.Propose(myValue, i); err != nil {
					fmt.Fprintf(os.Stderr, "process %d: %v\n", i, err)
					return
				}
				// ...and try to complete the matching decide.
				v, err := d.Decide(i)
				if err != nil {
					fmt.Fprintf(os.Stderr, "process %d: %v\n", i, err)
					return
				}
				if v != setagree.Bottom {
					decisions[i-1], rounds[i-1] = v, round
					return
				}
				// ⊥ means another operation intervened (the object
				// simulates an abort of the underlying n-DAC object);
				// just retry.
			}
		}(i)
	}
	wg.Wait()

	fmt.Println("4-PAC object, 4 concurrent processes:")
	for i, v := range decisions {
		fmt.Printf("  process %d proposed %d and decided %s after %d round(s)\n",
			i+1, 101+i, v, rounds[i])
	}
	for _, v := range decisions[1:] {
		if v != decisions[0] {
			fmt.Println("AGREEMENT VIOLATED — this must never happen")
			os.Exit(1)
		}
	}
	fmt.Printf("agreement holds: everyone decided %s (Theorem 3.5)\n", decisions[0])
	fmt.Printf("object upset: %v (the pairing discipline keeps histories legal, Lemma 3.2)\n", d.Upset())
}

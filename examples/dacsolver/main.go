// dacsolver: the n-DAC problem (§4) solved live with Algorithm 2.
//
// The n-DAC problem gives binary inputs to n processes; a distinguished
// process p may abort instead of deciding, but only if some other
// process took a step (Nontriviality). This example runs the paper's
// Algorithm 2 over one n-PAC object three ways:
//
//  1. live goroutines (the Go scheduler is the adversary);
//  2. a deterministic seeded schedule in the simulator;
//  3. the same with the distinguished process crashed mid-run — the
//     other processes still decide (their loop needs no help).
//
// Run:  go run ./examples/dacsolver
package main

import (
	"fmt"
	"os"

	"setagree"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
)

const (
	n = 5
	p = 2 // distinguished process (1-based)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dacsolver:", err)
		os.Exit(1)
	}
}

func run() error {
	inputs := []setagree.Value{0, 1, 0, 1, 0}
	fmt.Printf("%d-DAC, distinguished process p%d, inputs %v\n\n", n, p, inputs)

	// 1. Live goroutines.
	results, err := setagree.RunDAC(n, p, inputs, 0)
	if err != nil {
		return err
	}
	if err := setagree.CheckDACOutcome(inputs, results, p); err != nil {
		return err
	}
	fmt.Println("live run (goroutines):")
	for i, r := range results {
		switch {
		case r.Aborted:
			fmt.Printf("  p%d: aborted after %d round(s)\n", i+1, r.Attempts)
		default:
			fmt.Printf("  p%d: decided %s after %d round(s)\n", i+1, r.Decision, r.Attempts)
		}
	}

	// 2. Deterministic simulator run.
	prot := programs.Algorithm2(n, p)
	sys, err := prot.System(inputs)
	if err != nil {
		return err
	}
	res, err := sim.Run(sys, task.DAC{N: n, P: p - 1}, sim.Random(7), sim.Options{MaxSteps: 1 << 12})
	if err != nil {
		return err
	}
	if res.Violation != nil {
		return res.Violation
	}
	fmt.Printf("\nsimulated run (seed 7): %d shared-memory steps\n", res.Steps)
	printOutcome(res)

	// 3. Crash the distinguished process after its first step.
	sys, err = prot.System(inputs)
	if err != nil {
		return err
	}
	res, err = sim.Run(sys, task.DAC{N: n, P: p - 1}, sim.Random(7), sim.Options{
		MaxSteps: 1 << 12,
		CrashAt:  map[int]int{p - 1: 1},
	})
	if err != nil {
		return err
	}
	if res.Violation != nil {
		return res.Violation
	}
	fmt.Printf("\nsimulated run with p%d crashed after step 1:\n", p)
	printOutcome(res)
	fmt.Println("\nall three executions satisfied Agreement, Validity, and Nontriviality (Theorem 4.1)")
	return nil
}

func printOutcome(res *sim.Result) {
	for i := range res.Outcome.Decided {
		switch {
		case res.Outcome.Aborted[i]:
			fmt.Printf("  p%d: aborted\n", i+1)
		case res.Outcome.Decided[i]:
			fmt.Printf("  p%d: decided %s\n", i+1, res.Outcome.Decisions[i])
		default:
			fmt.Printf("  p%d: crashed/undecided\n", i+1)
		}
	}
}

// resilience: life *at* set agreement — the k-set agreement problem the
// paper's power sequences measure, solved two classic ways, with its
// exact crash-tolerance boundary.
//
//  1. Chaudhuri's protocol ([5], the paper's k-set agreement source):
//     registers only, (k-1)-resilient — verified exhaustively by the
//     resilience-aware model checker, then shown to break at k crashes.
//  2. The Borowsky–Gafni route ([2, 6], the machinery behind the set
//     agreement power partial order): k safe agreement instances, live
//     with goroutines, including a process crashed inside a doorway.
//
// Run:  go run ./examples/resilience
package main

import (
	"fmt"
	"os"
	"sync"

	"setagree"
	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, k = 3, 2

	// Part 1: Chaudhuri's protocol, model-checked.
	fmt.Printf("=== Chaudhuri's (%d,%d)-set agreement from registers ===\n", n, k)
	prot := programs.ChaudhuriKSet(n, k)
	inputs := []value.Value{30, 10, 20}

	sys, err := prot.System(inputs)
	if err != nil {
		return err
	}
	rep, err := explore.Check(sys, task.ResilientKSet{N: n, K: k, F: k - 1}, explore.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("f = k-1 = %d crashes tolerated: solved = %v over %d configurations (every schedule)\n",
		k-1, rep.Solved(), rep.States)

	sys, err = prot.System(inputs)
	if err != nil {
		return err
	}
	rep, err = explore.Check(sys, task.ResilientKSet{N: n, K: k, F: k}, explore.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("f = k   = %d crashes demanded:  solved = %v — ", k, rep.Solved())
	if !rep.Solved() {
		v := rep.Violations[0]
		fmt.Printf("refuted: %s\n", v.Err)
		fmt.Println("the collect loop waits for inputs the crashed processes never write")
		fmt.Println("(the finite shadow of the BG/HS/SZ impossibility: f-resilient k-set")
		fmt.Println("agreement from registers exists iff f < k)")
	} else {
		return fmt.Errorf("expected a refutation at f = k")
	}

	// Part 2: the BG route, live.
	fmt.Println()
	fmt.Printf("=== (%d-1)-resilient %d-set agreement from %d safe agreement instances ===\n", k, k, k)
	const procs = 6
	ks := setagree.NewKSetAgreement(k, procs)

	// Process 1 "crashes" inside a doorway: we simulate it by never
	// letting it finish its protocol (it holds no doorway here — the
	// crash-tolerance drama is in the internal tests; live we just stop
	// it before proposing).
	var wg sync.WaitGroup
	decisions := make([]setagree.Value, procs+1)
	decided := make([]bool, procs+1)
	for i := 2; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok, err := ks.Propose(i, setagree.Value(100+i), 0)
			if err != nil || !ok {
				fmt.Fprintf(os.Stderr, "process %d: ok=%v err=%v\n", i, ok, err)
				return
			}
			decisions[i], decided[i] = v, true
		}(i)
	}
	wg.Wait()

	distinct := map[setagree.Value]bool{}
	for i := 2; i <= procs; i++ {
		if !decided[i] {
			return fmt.Errorf("process %d undecided", i)
		}
		distinct[decisions[i]] = true
		fmt.Printf("  process %d decided %s\n", i, decisions[i])
	}
	fmt.Printf("distinct decisions: %d (bound k = %d) — process 1 never showed up and nobody waited for it\n",
		len(distinct), k)
	return nil
}

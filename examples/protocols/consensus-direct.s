; consensus-direct.s — consensus by a single shared consensus object.
;
; Run (solved, 2 processes over a 2-consensus object):
;   go run ./cmd/explore -asm examples/protocols/consensus-direct.s \
;       -objects consensus:2 -task consensus -procs 2
;
; Run (refuted, 3 processes over the same object: the third response is ⊥):
;   go run ./cmd/explore -asm examples/protocols/consensus-direct.s \
;       -objects consensus:2 -task consensus -procs 3
;
; Registers: r0 = input (set by the harness), r2 = scratch.
  invoke r2, obj0, PROPOSE, r0
  decide r2

; kset-2sa.s — 2-set agreement from the strong 2-SA object of §4:
; every response is one of the first two distinct proposals, so deciding
; the response solves 2-set agreement among any number of processes.
;
; Run (solved for any -procs):
;   go run ./cmd/explore -asm examples/protocols/kset-2sa.s \
;       -objects 2sa -task kset:2 -procs 4
  invoke r2, obj0, PROPOSE, r0
  decide r2

; pac-retry.s — every process runs the *non-distinguished* loop of
; Algorithm 2 against one n-PAC object: propose at its own label (r1),
; decide, retry on ⊥.
;
; As an n-DAC protocol this loop is fine, but as a WAIT-FREE consensus
; protocol it is doomed: two processes can interleave their pairs
; forever (the checker prints the cycle). This is the weak-termination
; gap between the n-DAC problem and consensus that the paper's objects
; live in.
;
; Run (refuted: wait-free termination, with a cycle witness):
;   go run ./cmd/explore -asm examples/protocols/pac-retry.s \
;       -objects pac:3 -task consensus -procs 3 -witness
loop:
  invoke r2, obj0, PROPOSE_AT, r0, r1
  invoke r3, obj0, DECIDE, r1
  jne r3, BOT, win
  jmp loop
win:
  decide r3

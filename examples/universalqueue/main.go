// universalqueue: Herlihy's universal construction [10] — the theorem
// the paper's introduction builds on ("instances of any object with
// consensus number n, together with registers, can implement any object
// shared by up to n processes").
//
// A wait-free FIFO queue for 4 processes is built from 4-consensus
// objects and registers only. Four goroutines enqueue and dequeue
// concurrently; the decided cell sequence is one shared linearization,
// so every value enqueued is dequeued exactly once (or remains queued).
//
// Run:  go run ./examples/universalqueue
package main

import (
	"fmt"
	"os"
	"sync"

	"setagree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "universalqueue:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 4
	const perProc = 8
	u, err := setagree.NewUniversalQueue(n)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	dequeued := make(map[setagree.Value]int)
	drained := 0

	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		h, err := u.Handle(p)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(p int, h *setagree.UniversalHandle) {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if err := h.Enqueue(setagree.Value(p*1000 + i)); err != nil {
					fmt.Fprintf(os.Stderr, "p%d enqueue: %v\n", p, err)
					return
				}
				v, err := h.Dequeue()
				if err != nil {
					fmt.Fprintf(os.Stderr, "p%d dequeue: %v\n", p, err)
					return
				}
				mu.Lock()
				if v == setagree.None {
					drained++
				} else {
					dequeued[v]++
				}
				mu.Unlock()
			}
		}(p, h)
	}
	wg.Wait()

	// Drain what remains through one handle.
	h, err := u.Handle(1)
	if err != nil {
		return err
	}
	remaining := 0
	for {
		v, err := h.Dequeue()
		if err != nil {
			return err
		}
		if v == setagree.None {
			break
		}
		remaining++
		mu.Lock()
		dequeued[v]++
		mu.Unlock()
	}

	total := 0
	for v, count := range dequeued {
		if count != 1 {
			return fmt.Errorf("value %s dequeued %d times — FIFO queue broken", v, count)
		}
		total++
	}
	fmt.Printf("wait-free queue for %d processes from %d-consensus + registers:\n", n, n)
	fmt.Printf("  %d values enqueued by %d goroutines\n", n*perProc, n)
	fmt.Printf("  %d dequeued concurrently, %d drained at the end, %d empty dequeues\n",
		total-remaining, remaining, drained)
	fmt.Printf("  every value dequeued exactly once: linearizable FIFO behaviour holds\n")
	if total != n*perProc {
		return fmt.Errorf("%d values seen, want %d", total, n*perProc)
	}
	return nil
}

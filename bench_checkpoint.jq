# Builds BENCH_checkpoint.json (see Makefile bench-json). Input
# arrives as --rawfile bench: the checkpoint-dimension rows of
# BenchmarkModelCheckDAC (alg2 n=7 at -workers 1, snapshots off /
# every level / every 4th level, all on the identical instance with
# identical reports).
#
# The measurement is durable-run overhead: each snapshot rewrites the
# whole container atomically (temp + fsync + rename), so the cost per
# snapshot is the encoded-graph write — the encoder itself only pays
# for the delta since the previous barrier (the payload sections are
# append-only caches). The primary figure is the in-run ckpt_frac
# metric: nanoseconds spent inside writeCheckpoint over the row's wall
# time, accumulated by the explorer's own explore.checkpoint_ns
# counter. A cross-row ns/op differential against checkpoint=off is
# reported too, but only as raw evidence — on a shared host the
# run-to-run ns/op noise (±20% observed) exceeds the effect being
# measured, while the in-run fraction compares a row against itself.
# The evidence target is ckpt_frac < 0.05 at the 4-level cadence:
# the exploration work between snapshots must dominate the snapshot
# writes. every1 is reported alongside as the worst-case cadence, not
# as a target. Honest framing: overhead is instance-relative — on tiny
# graphs the fixed write+fsync latency dominates, which is why the
# rows use the n=7 instance (~280k configurations) where checkpointing
# is actually useful.

# Row names may carry go test's -GOMAXPROCS suffix on multi-core hosts.
def row(name):
  $bench | split("\n") | map(select(test("/checkpoint=" + name + "(-\\d+)?\\s")))[0];
def nsop(name):
  row(name) | capture("\\s(?<ns>[0-9.]+) ns/op") | (.ns | tonumber);
def frac(name):
  row(name) | capture("\\s(?<f>[0-9.eE+-]+) ckpt_frac") | (.f | tonumber);
def encfrac(name):
  row(name) | capture("\\s(?<f>[0-9.eE+-]+) ckpt_enc_frac") | (.f | tonumber);

nsop("off") as $off | nsop("1") as $e1 | nsop("4") as $e4 |
frac("1") as $f1 | frac("4") as $f4 |
{
  ckpt_frac: { every1: $f1, every4: $f4 },
  # The encode component of the stall (delta-encoding the snapshot at
  # the barrier); the remainder is drain waits for in-flight commits,
  # ~0 on a quiet disk.
  ckpt_enc_frac: { every1: encfrac("1"), every4: encfrac("4") },
  target: "ckpt_frac every4 < 0.05",
  target_met: ($f4 < 0.05),
  ns_per_op_raw: {
    off: $off, every1: $e1, every4: $e4,
    note: "cross-run differential; host noise can exceed the effect"
  },
  raw_rows: ($bench | split("\n") | map(select(contains("/checkpoint="))))
}

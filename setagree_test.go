package setagree_test

import (
	"errors"
	"sync"
	"testing"

	"setagree"
)

func TestPACFacade(t *testing.T) {
	t.Parallel()
	d := setagree.NewPAC(3)
	if d.N() != 3 {
		t.Fatal("N")
	}
	if err := d.Propose(7, 2); err != nil {
		t.Fatal(err)
	}
	v, err := d.Decide(2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("decide = %s", v)
	}
	if d.Upset() {
		t.Fatal("legal history upset the object")
	}
	// Orphan decide upsets.
	if _, err := d.Decide(1); err != nil {
		t.Fatal(err)
	}
	if !d.Upset() {
		t.Fatal("orphan decide did not upset")
	}
}

func TestPACFacadeBadOps(t *testing.T) {
	t.Parallel()
	d := setagree.NewPAC(2)
	if err := d.Propose(1, 0); !errors.Is(err, setagree.ErrBadOp) {
		t.Fatalf("label 0: %v", err)
	}
	if err := d.Propose(setagree.Bottom, 1); !errors.Is(err, setagree.ErrBadOp) {
		t.Fatalf("sentinel proposal: %v", err)
	}
	if _, err := d.Decide(5); !errors.Is(err, setagree.ErrBadOp) {
		t.Fatalf("label 5: %v", err)
	}
}

func TestConsensusFacade(t *testing.T) {
	t.Parallel()
	c := setagree.NewConsensus(2)
	v, err := c.Propose(4)
	if err != nil || v != 4 {
		t.Fatalf("first: %s, %v", v, err)
	}
	v, err = c.Propose(5)
	if err != nil || v != 4 {
		t.Fatalf("second: %s, %v", v, err)
	}
	v, err = c.Propose(6)
	if err != nil || v != setagree.Bottom {
		t.Fatalf("third: %s, %v", v, err)
	}
}

func TestTwoSAFacade(t *testing.T) {
	t.Parallel()
	s := setagree.NewTwoSA()
	seen := map[setagree.Value]bool{}
	for i := 0; i < 10; i++ {
		v, err := s.Propose(setagree.Value(i))
		if err != nil {
			t.Fatal(err)
		}
		seen[v] = true
	}
	if len(seen) > 2 {
		t.Fatalf("2-SA returned %d distinct values", len(seen))
	}
}

func TestSetAgreementFacadeBound(t *testing.T) {
	t.Parallel()
	s := setagree.NewSetAgreement(2, 1)
	if _, err := s.Propose(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Propose(2); err != nil {
		t.Fatal(err)
	}
	v, err := s.Propose(3)
	if err != nil || v != setagree.Bottom {
		t.Fatalf("beyond bound: %s, %v", v, err)
	}
}

func TestPACMFacade(t *testing.T) {
	t.Parallel()
	o := setagree.NewObjectO(3) // (4,3)-PAC
	if o.N() != 4 || o.M() != 3 {
		t.Fatalf("N=%d M=%d", o.N(), o.M())
	}
	v, err := o.ProposeC(9)
	if err != nil || v != 9 {
		t.Fatalf("ProposeC: %s, %v", v, err)
	}
	if err := o.ProposeP(5, 4); err != nil {
		t.Fatal(err)
	}
	v, err = o.DecideP(4)
	if err != nil || v != 5 {
		t.Fatalf("DecideP: %s, %v", v, err)
	}
}

func TestOPrimeFacade(t *testing.T) {
	t.Parallel()
	o := setagree.NewOPrime(2, nil)
	v, err := o.Propose(3, 1)
	if err != nil || v != 3 {
		t.Fatalf("level 1: %s, %v", v, err)
	}
	// Level 2 serves n_2 = 4 proposals.
	for i := 0; i < 4; i++ {
		if _, err := o.Propose(setagree.Value(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	v, err = o.Propose(9, 2)
	if err != nil || v != setagree.Bottom {
		t.Fatalf("level 2 beyond n_2: %s, %v", v, err)
	}
	if _, err := o.Propose(1, 0); !errors.Is(err, setagree.ErrBadOp) {
		t.Fatalf("level 0: %v", err)
	}
}

func TestRegisterFacade(t *testing.T) {
	t.Parallel()
	r := setagree.NewRegister()
	if v := r.Read(); v != setagree.None {
		t.Fatalf("initial read %s", v)
	}
	r.Write(6)
	if v := r.Read(); v != 6 {
		t.Fatalf("read %s", v)
	}
}

// TestRunDACBasic runs Algorithm 2 live across goroutines for a sweep
// of sizes and distinguished positions, checking the §4 properties on
// every outcome (Theorem 4.1 live).
func TestRunDACBasic(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 6; n++ {
		for p := 1; p <= n; p += n - 1 { // first and last position
			inputs := make([]setagree.Value, n)
			inputs[p-1] = 1
			results, err := setagree.RunDAC(n, p, inputs, 0)
			if err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			if err := setagree.CheckDACOutcome(inputs, results, p); err != nil {
				t.Fatalf("n=%d p=%d: %v", n, p, err)
			}
			for q, r := range results {
				if q+1 != p && !r.Aborted && r.Decision != 0 && r.Decision != 1 {
					t.Fatalf("n=%d p=%d q=%d: decision %s", n, p, q+1, r.Decision)
				}
			}
		}
	}
}

// TestRunDACManyRounds hammers RunDAC to catch rare interleavings.
func TestRunDACManyRounds(t *testing.T) {
	t.Parallel()
	const n, p = 4, 2
	for round := 0; round < 100; round++ {
		inputs := []setagree.Value{0, 1, 0, 1}
		results, err := setagree.RunDAC(n, p, inputs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := setagree.CheckDACOutcome(inputs, results, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunDACValidation(t *testing.T) {
	t.Parallel()
	if _, err := setagree.RunDAC(1, 1, []setagree.Value{0}, 0); !errors.Is(err, setagree.ErrBadDAC) {
		t.Fatalf("n=1: %v", err)
	}
	if _, err := setagree.RunDAC(2, 3, []setagree.Value{0, 1}, 0); !errors.Is(err, setagree.ErrBadDAC) {
		t.Fatalf("p out of range: %v", err)
	}
	if _, err := setagree.RunDAC(2, 1, []setagree.Value{0}, 0); !errors.Is(err, setagree.ErrBadDAC) {
		t.Fatalf("input arity: %v", err)
	}
	if _, err := setagree.RunDAC(2, 1, []setagree.Value{0, 7}, 0); !errors.Is(err, setagree.ErrBadDAC) {
		t.Fatalf("non-binary input: %v", err)
	}
}

func TestCheckDACOutcomeRejects(t *testing.T) {
	t.Parallel()
	inputs := []setagree.Value{1, 0}
	bad := []setagree.DACResult{{Decision: 1}, {Decision: 0}}
	if err := setagree.CheckDACOutcome(inputs, bad, 1); !errors.Is(err, setagree.ErrBadDAC) {
		t.Fatalf("disagreement: %v", err)
	}
	badAbort := []setagree.DACResult{{Decision: 1}, {Aborted: true}}
	if err := setagree.CheckDACOutcome(inputs, badAbort, 1); !errors.Is(err, setagree.ErrBadDAC) {
		t.Fatalf("non-distinguished abort: %v", err)
	}
}

// TestConcurrentPACClients checks the typed PAC object under heavy
// concurrent use from goroutines mixing labels.
func TestConcurrentPACClients(t *testing.T) {
	t.Parallel()
	const n = 8
	d := setagree.NewPAC(n)
	var wg sync.WaitGroup
	decisions := make([]setagree.Value, n)
	for q := 1; q <= n; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for {
				if err := d.Propose(setagree.Value(q), q); err != nil {
					t.Errorf("propose: %v", err)
					return
				}
				v, err := d.Decide(q)
				if err != nil {
					t.Errorf("decide: %v", err)
					return
				}
				if v != setagree.Bottom {
					decisions[q-1] = v
					return
				}
			}
		}(q)
	}
	wg.Wait()
	for q := 1; q < n; q++ {
		if decisions[q] != decisions[0] {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
	if d.Upset() {
		t.Fatal("disciplined clients upset the object")
	}
}

func TestUniversalQueueFacade(t *testing.T) {
	t.Parallel()
	u, err := setagree.NewUniversalQueue(2)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := u.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := u.Handle(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.Enqueue(5); err != nil {
		t.Fatal(err)
	}
	v, err := h2.Dequeue()
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("dequeue = %s", v)
	}
	// Mismatched method against the queue target.
	if _, err := h1.FetchAdd(1); !errors.Is(err, setagree.ErrBadOp) {
		t.Fatalf("FetchAdd on queue: %v", err)
	}
}

func TestUniversalCounterFacade(t *testing.T) {
	t.Parallel()
	u, err := setagree.NewUniversalCounter(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 1; p <= 3; p++ {
		h, err := u.Handle(p)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *setagree.UniversalHandle) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := h.FetchAdd(1); err != nil {
					t.Error(err)
					return
				}
			}
		}(h)
	}
	wg.Wait()
	h, err := u.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	total, err := h.FetchAdd(0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 30 {
		t.Fatalf("total = %s, want 30", total)
	}
}

func TestUniversalPACFacade(t *testing.T) {
	t.Parallel()
	u, err := setagree.NewUniversalPAC(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := u.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.PACPropose(3, 1); err != nil {
		t.Fatal(err)
	}
	v, err := h.PACDecide(1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("universal PAC decide = %s", v)
	}
}

func TestValueStrings(t *testing.T) {
	t.Parallel()
	if setagree.Bottom.String() != "⊥" || setagree.None.String() != "NIL" || setagree.Done.String() != "done" {
		t.Fatal("sentinel rendering")
	}
	if !setagree.Bottom.IsSentinel() || setagree.Value(0).IsSentinel() {
		t.Fatal("IsSentinel")
	}
}

// TestPACPortSimulatesDAC drives the §3 simulation view: TryPropose
// surfaces ⊥ as an abort; retries succeed once the contention clears.
func TestPACPortSimulatesDAC(t *testing.T) {
	t.Parallel()
	d := setagree.NewPAC(3)
	p1, p2 := d.Port(1), d.Port(2)

	// Force an abort: interleave a propose (label 3, one-shot) between
	// p1's pair using the raw operations.
	if err := d.Propose(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Propose(7, 3); err != nil { // intervenes
		t.Fatal(err)
	}
	v, err := d.Decide(1)
	if err != nil {
		t.Fatal(err)
	}
	if v != setagree.Bottom {
		t.Fatalf("expected ⊥ under contention, got %s", v)
	}
	// Clear label 3's pending propose to keep the history legal.
	if _, err := d.Decide(3); err != nil {
		t.Fatal(err)
	}

	// p2 completes its pair: decides a value.
	got, err := p2.Propose(6, 0)
	if err != nil {
		t.Fatal(err)
	}

	// p1 retries through the port and must agree with p2.
	v1, aborted, err := p1.TryPropose(5)
	if err != nil {
		t.Fatal(err)
	}
	if !aborted {
		if v1 != got {
			t.Fatalf("agreement: port1=%s port2=%s", v1, got)
		}
	}
	if d.Upset() {
		t.Fatal("disciplined port usage upset the object")
	}
}

// TestPACPortConcurrent runs one port per goroutine; everyone decides
// the same value.
func TestPACPortConcurrent(t *testing.T) {
	t.Parallel()
	const n = 6
	d := setagree.NewPAC(n)
	decisions := make([]setagree.Value, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := d.Port(i).Propose(setagree.Value(i), 0)
			if err != nil {
				t.Error(err)
				return
			}
			decisions[i-1] = v
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if decisions[i] != decisions[0] {
			t.Fatalf("agreement violated: %v", decisions)
		}
	}
}

// TestPACPortMaxAttempts pins the bounded-retry contract.
func TestPACPortMaxAttempts(t *testing.T) {
	t.Parallel()
	d := setagree.NewPAC(2)
	// Upset the object: every decide returns ⊥ forever, so the port can
	// never decide.
	if _, err := d.Decide(2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Port(1).Propose(4, 3); !errors.Is(err, setagree.ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp after bounded retries", err)
	}
}

// TestSafeAgreementFacade exercises the BG primitive through the public
// API.
func TestSafeAgreementFacade(t *testing.T) {
	t.Parallel()
	sa := setagree.NewSafeAgreement(3)
	if _, ok := sa.Resolve(); ok {
		t.Fatal("resolved before proposes")
	}
	if err := sa.Propose(1, 9); err != nil {
		t.Fatal(err)
	}
	v, ok := sa.Resolve()
	if !ok || v != 9 {
		t.Fatalf("resolve = %s, %v", v, ok)
	}
}

// TestKSetAgreementFacade exercises the BG k-set protocol through the
// public API.
func TestKSetAgreementFacade(t *testing.T) {
	t.Parallel()
	const procs, k = 5, 2
	ks := setagree.NewKSetAgreement(k, procs)
	var wg sync.WaitGroup
	decisions := make([]setagree.Value, procs)
	for i := 1; i <= procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, ok, err := ks.Propose(i, setagree.Value(10*i), 0)
			if err != nil || !ok {
				t.Errorf("process %d: %v %v", i, ok, err)
				return
			}
			decisions[i-1] = v
		}(i)
	}
	wg.Wait()
	distinct := map[setagree.Value]bool{}
	for _, d := range decisions {
		distinct[d] = true
	}
	if len(distinct) > k {
		t.Fatalf("%d distinct decisions exceed k=%d", len(distinct), k)
	}
}

module setagree

go 1.22

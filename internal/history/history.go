// Package history records concurrent operation histories of shared
// objects. The paper's objects are specified sequentially and assumed
// linearizable [11]; the recorder captures real concurrent executions of
// the runtime objects so that internal/lincheck can verify that the
// implementations are in fact linearizable with respect to their
// sequential specifications.
package history

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// Event is one completed operation: its invocation and return
// timestamps come from a shared logical clock, so Inv < Ret and
// real-time precedence between events is Ret(a) < Inv(b).
type Event struct {
	// Proc is the calling process (1-based, informational).
	Proc int `json:"proc"`
	// Obj identifies the object the operation was applied to.
	Obj int `json:"obj"`
	// Method, Arg, Label reconstruct the operation.
	Method value.Method `json:"method"`
	Arg    value.Value  `json:"arg"`
	Label  int          `json:"label"`
	// Resp is the observed response.
	Resp value.Value `json:"resp"`
	// Inv and Ret are the logical invocation/return timestamps.
	Inv int64 `json:"inv"`
	Ret int64 `json:"ret"`
}

// Op reconstructs the operation of the event.
func (e Event) Op() value.Op {
	return value.Op{Method: e.Method, Arg: e.Arg, Label: e.Label}
}

// PrecededBy reports whether other completed before e was invoked
// (real-time order).
func (e Event) PrecededBy(other Event) bool { return other.Ret < e.Inv }

// History is a set of completed events, ordered by invocation time.
type History struct {
	// Events are the completed operations.
	Events []Event `json:"events"`
}

// Len returns the number of events.
func (h *History) Len() int { return len(h.Events) }

// PerObject splits the history by object id (linearizability is a local
// property [11]: a history is linearizable iff each per-object
// subhistory is).
func (h *History) PerObject() map[int]*History {
	out := make(map[int]*History)
	for _, e := range h.Events {
		sub := out[e.Obj]
		if sub == nil {
			sub = &History{}
			out[e.Obj] = sub
		}
		sub.Events = append(sub.Events, e)
	}
	return out
}

// Sort orders events by invocation timestamp.
func (h *History) Sort() {
	sort.Slice(h.Events, func(i, j int) bool { return h.Events[i].Inv < h.Events[j].Inv })
}

// WriteJSON serializes the history.
func (h *History) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(h); err != nil {
		return fmt.Errorf("history: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a history.
func ReadJSON(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	return &h, nil
}

// Recorder collects events from concurrent operations against any
// number of objects. It is safe for concurrent use.
type Recorder struct {
	clock  atomic.Int64
	mu     sync.Mutex
	events []Event
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Wrap returns a recorded view of obj under the given object id.
func (r *Recorder) Wrap(obj *spec.Atomic, objID int) *Recorded {
	return &Recorded{rec: r, obj: obj, objID: objID}
}

// History returns a sorted copy of everything recorded so far.
func (r *Recorder) History() *History {
	r.mu.Lock()
	events := make([]Event, len(r.events))
	copy(events, r.events)
	r.mu.Unlock()
	h := &History{Events: events}
	h.Sort()
	return h
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Recorded is a recording wrapper around a linearizable object.
type Recorded struct {
	rec   *Recorder
	obj   *spec.Atomic
	objID int
}

// Apply performs op on behalf of proc, recording the completed event.
func (o *Recorded) Apply(proc int, op value.Op) (value.Value, error) {
	inv := o.rec.clock.Add(1)
	resp, err := o.obj.Apply(op)
	ret := o.rec.clock.Add(1)
	if err != nil {
		return resp, err
	}
	o.rec.record(Event{
		Proc:   proc,
		Obj:    o.objID,
		Method: op.Method,
		Arg:    op.Arg,
		Label:  op.Label,
		Resp:   resp,
		Inv:    inv,
		Ret:    ret,
	})
	return resp, nil
}

// Object returns the underlying linearizable object.
func (o *Recorded) Object() *spec.Atomic { return o.obj }

package history_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"setagree/internal/history"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

func TestRecorderOrdersEvents(t *testing.T) {
	t.Parallel()
	rec := history.NewRecorder()
	obj := rec.Wrap(spec.NewAtomic(objects.NewRegister(), nil), 0)
	if _, err := obj.Apply(1, value.Write(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Apply(2, value.Read()); err != nil {
		t.Fatal(err)
	}
	h := rec.History()
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
	if h.Events[0].Method != value.MethodWrite || h.Events[1].Method != value.MethodRead {
		t.Fatalf("order: %+v", h.Events)
	}
	if !(h.Events[0].Inv < h.Events[0].Ret && h.Events[0].Ret < h.Events[1].Inv) {
		t.Fatalf("timestamps not sequential: %+v", h.Events)
	}
	if h.Events[1].Resp != 1 {
		t.Fatalf("read recorded %s", h.Events[1].Resp)
	}
}

func TestPrecededBy(t *testing.T) {
	t.Parallel()
	a := history.Event{Inv: 1, Ret: 2}
	b := history.Event{Inv: 3, Ret: 4}
	c := history.Event{Inv: 2, Ret: 5} // overlaps a? a.Ret=2, c.Inv=2: not strictly after
	if !b.PrecededBy(a) {
		t.Error("b must be preceded by a")
	}
	if a.PrecededBy(b) {
		t.Error("a is not preceded by b")
	}
	if c.PrecededBy(a) {
		t.Error("equal timestamps are concurrent, not ordered")
	}
}

func TestPerObjectSplit(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		{Obj: 0, Inv: 1, Ret: 2},
		{Obj: 1, Inv: 3, Ret: 4},
		{Obj: 0, Inv: 5, Ret: 6},
	}}
	per := h.PerObject()
	if len(per) != 2 || per[0].Len() != 2 || per[1].Len() != 1 {
		t.Fatalf("split: %+v", per)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	h := &history.History{Events: []history.Event{
		{Proc: 1, Obj: 0, Method: value.MethodProposeAt, Arg: 5, Label: 2, Resp: value.Done, Inv: 1, Ret: 2},
		{Proc: 2, Obj: 0, Method: value.MethodDecide, Label: 2, Resp: value.Bottom, Inv: 3, Ret: 4},
	}}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := history.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != h.Len() {
		t.Fatalf("round trip lost events: %d", got.Len())
	}
	for i := range h.Events {
		if got.Events[i] != h.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], h.Events[i])
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := history.ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestEventOpReconstruction(t *testing.T) {
	t.Parallel()
	e := history.Event{Method: value.MethodProposeAt, Arg: 7, Label: 3}
	op := e.Op()
	if op.Method != value.MethodProposeAt || op.Arg != 7 || op.Label != 3 {
		t.Fatalf("op = %+v", op)
	}
}

// TestRecorderConcurrent checks the recorder under parallel load: all
// events recorded, timestamps strictly increasing per the shared clock,
// Inv < Ret for every event.
func TestRecorderConcurrent(t *testing.T) {
	t.Parallel()
	rec := history.NewRecorder()
	obj := rec.Wrap(spec.NewAtomic(objects.NewCounter(), nil), 0)
	const procs, each = 6, 50
	var wg sync.WaitGroup
	for p := 1; p <= procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := obj.Apply(p, value.FetchAdd(1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	h := rec.History()
	if h.Len() != procs*each {
		t.Fatalf("recorded %d events, want %d", h.Len(), procs*each)
	}
	seen := make(map[int64]bool)
	for _, e := range h.Events {
		if e.Inv >= e.Ret {
			t.Fatalf("event has Inv %d >= Ret %d", e.Inv, e.Ret)
		}
		if seen[e.Inv] || seen[e.Ret] {
			t.Fatal("timestamp reused")
		}
		seen[e.Inv], seen[e.Ret] = true, true
	}
}

func TestRecorderHistoryIsCopy(t *testing.T) {
	t.Parallel()
	rec := history.NewRecorder()
	obj := rec.Wrap(spec.NewAtomic(objects.NewRegister(), nil), 0)
	if _, err := obj.Apply(1, value.Write(1)); err != nil {
		t.Fatal(err)
	}
	h1 := rec.History()
	if _, err := obj.Apply(1, value.Write(2)); err != nil {
		t.Fatal(err)
	}
	if h1.Len() != 1 {
		t.Fatal("earlier snapshot grew")
	}
}

package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"setagree/internal/core"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// applyOne applies op to a deterministic spec state and returns the
// single transition.
func applyOne(t *testing.T, sp spec.Spec, st spec.State, op value.Op) (spec.State, value.Value) {
	t.Helper()
	ts, err := sp.Step(st, op)
	if err != nil {
		t.Fatalf("Step(%s): %v", op, err)
	}
	if len(ts) != 1 {
		t.Fatalf("Step(%s): %d transitions from a deterministic spec", op, len(ts))
	}
	return ts[0].Next, ts[0].Resp
}

func TestPACName(t *testing.T) {
	t.Parallel()
	if got := core.NewPAC(3).Name(); got != "3-PAC" {
		t.Errorf("Name() = %q", got)
	}
}

func TestPACDeterministic(t *testing.T) {
	t.Parallel()
	if !spec.Deterministic(core.NewPAC(2)) {
		t.Error("n-PAC must be deterministic (§3)")
	}
}

// TestPACProposeReturnsDone checks that PROPOSE always returns done,
// even on an upset object (§3: "still returns done to all propose
// operations").
func TestPACProposeReturnsDone(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(2)
	st := p.Init()
	var resp value.Value
	st, resp = applyOne(t, p, st, value.ProposeAt(7, 1))
	if resp != value.Done {
		t.Fatalf("first propose returned %s", resp)
	}
	// Second propose with the same label upsets the object...
	st, resp = applyOne(t, p, st, value.ProposeAt(7, 1))
	if resp != value.Done {
		t.Fatalf("upsetting propose returned %s", resp)
	}
	if !core.IsUpset(st) {
		t.Fatal("double propose with one label must upset (Lemma 3.2)")
	}
	// ...and proposes keep returning done.
	_, resp = applyOne(t, p, st, value.ProposeAt(9, 2))
	if resp != value.Done {
		t.Fatalf("propose on upset object returned %s", resp)
	}
}

// TestPACSoloProposeDecide checks the intended matching-pair protocol:
// a propose immediately followed by its decide returns the proposal.
func TestPACSoloProposeDecide(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(3)
	st := p.Init()
	st, _ = applyOne(t, p, st, value.ProposeAt(42, 2))
	st, resp := applyOne(t, p, st, value.Decide(2))
	if resp != 42 {
		t.Fatalf("decide returned %s, want 42", resp)
	}
	if core.IsUpset(st) {
		t.Fatal("legal history must not upset")
	}
}

// TestPACConsensusValueSticks checks that the first successful decide
// fixes val: later matched pairs decide the same value.
func TestPACConsensusValueSticks(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(3)
	st := p.Init()
	st, _ = applyOne(t, p, st, value.ProposeAt(1, 1))
	st, first := applyOne(t, p, st, value.Decide(1))
	if first != 1 {
		t.Fatalf("first decide: %s", first)
	}
	st, _ = applyOne(t, p, st, value.ProposeAt(9, 2))
	st, second := applyOne(t, p, st, value.Decide(2))
	if second != 1 {
		t.Fatalf("second decide returned %s; agreement requires 1", second)
	}
	_ = st
}

// TestPACInterveningOperationYieldsBottom checks the concurrency
// detection: an operation between a propose and its matching decide
// forces the decide to return ⊥ without upsetting the object.
func TestPACInterveningOperationYieldsBottom(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(3)
	st := p.Init()
	st, _ = applyOne(t, p, st, value.ProposeAt(5, 1))
	st, _ = applyOne(t, p, st, value.ProposeAt(6, 2)) // intervenes: L becomes 2
	st, resp := applyOne(t, p, st, value.Decide(1))
	if resp != value.Bottom {
		t.Fatalf("decide(1) after intervening propose returned %s, want ⊥", resp)
	}
	if core.IsUpset(st) {
		t.Fatal("legal history must not upset (alternation preserved)")
	}
	// Per Algorithm 1 lines 15-16, the failed decide cleared V[1] and L.
	st, resp = applyOne(t, p, st, value.Decide(2))
	if resp != value.Bottom {
		t.Fatalf("decide(2) returned %s, want ⊥ (L was cleared)", resp)
	}
	if core.IsUpset(st) {
		t.Fatal("still a legal history")
	}
}

// TestPACDecideWithoutProposeUpsets checks Lemma 3.2's other direction:
// a decide without a matching propose permanently upsets the object.
func TestPACDecideWithoutProposeUpsets(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(2)
	st := p.Init()
	st, resp := applyOne(t, p, st, value.Decide(1))
	if resp != value.Bottom {
		t.Fatalf("orphan decide returned %s", resp)
	}
	if !core.IsUpset(st) {
		t.Fatal("orphan decide must upset")
	}
	// Upset is permanent (Observation 3.1): even matched pairs now get ⊥.
	st, _ = applyOne(t, p, st, value.ProposeAt(3, 2))
	st, resp = applyOne(t, p, st, value.Decide(2))
	if resp != value.Bottom {
		t.Fatalf("decide on upset object returned %s", resp)
	}
	if !core.IsUpset(st) {
		t.Fatal("upset must persist")
	}
}

func TestPACBadOps(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(2)
	st := p.Init()
	cases := []value.Op{
		value.ProposeAt(1, 0),
		value.ProposeAt(1, 3),
		value.Decide(0),
		value.Decide(3),
		value.ProposeAt(value.Bottom, 1),
		value.ProposeAt(value.None, 1),
		value.Propose(1),
		value.Read(),
	}
	for _, op := range cases {
		if _, err := p.Step(st, op); err == nil {
			t.Errorf("Step(%s) accepted an out-of-interface operation", op)
		}
	}
}

// opAt describes one abstract PAC operation for the history-based
// property tests.
type opAt struct {
	propose bool
	label   int
	val     value.Value
}

func (o opAt) op() value.Op {
	if o.propose {
		return value.ProposeAt(o.val, o.label)
	}
	return value.Decide(o.label)
}

// legal implements the §3 definition directly: a history is legal iff
// for every label i, the subsequence of operations with label i is
// empty or begins with a propose and alternates propose/decide.
func legal(hist []opAt, n int) bool {
	expectPropose := make([]bool, n+1)
	for i := range expectPropose {
		expectPropose[i] = true
	}
	for _, o := range hist {
		if o.propose != expectPropose[o.label] {
			return false
		}
		expectPropose[o.label] = !expectPropose[o.label]
	}
	return true
}

// runHistory applies a history to a fresh n-PAC object and returns the
// final state plus each operation's response.
func runHistory(t *testing.T, n int, hist []opAt) (spec.State, []value.Value) {
	t.Helper()
	p := core.NewPAC(n)
	st := p.Init()
	resps := make([]value.Value, len(hist))
	for i, o := range hist {
		var resp value.Value
		st, resp = applyOne(t, p, st, o.op())
		resps[i] = resp
	}
	return st, resps
}

// enumerateHistories yields every history of the given length over
// labels 1..n with proposals drawn from vals.
func enumerateHistories(n, length int, vals []value.Value, visit func([]opAt)) {
	var menu []opAt
	for i := 1; i <= n; i++ {
		for _, v := range vals {
			menu = append(menu, opAt{propose: true, label: i, val: v})
		}
		menu = append(menu, opAt{label: i})
	}
	hist := make([]opAt, length)
	var rec func(d int)
	rec = func(d int) {
		if d == length {
			visit(hist)
			return
		}
		for _, o := range menu {
			hist[d] = o
			rec(d + 1)
		}
	}
	rec(0)
}

// TestPACLemma32Exhaustive checks Lemma 3.2 — the object is upset at t
// iff the history up to t is not legal — on every history of length up
// to 5 over 2 labels and 2 values.
func TestPACLemma32Exhaustive(t *testing.T) {
	t.Parallel()
	const n = 2
	vals := []value.Value{5, 7}
	for length := 0; length <= 5; length++ {
		enumerateHistories(n, length, vals, func(hist []opAt) {
			st, _ := runHistory(t, n, hist)
			if got, want := core.IsUpset(st), !legal(hist, n); got != want {
				t.Fatalf("history %v: upset=%v, legal=%v (Lemma 3.2 violated)", hist, got, !want)
			}
		})
	}
}

// TestPACTheorem35Exhaustive checks Theorem 3.5 (Agreement, Validity,
// Nontriviality) on every history of length up to 5 over 2 labels.
func TestPACTheorem35Exhaustive(t *testing.T) {
	t.Parallel()
	const n = 2
	vals := []value.Value{5, 7}
	for length := 1; length <= 5; length++ {
		enumerateHistories(n, length, vals, func(hist []opAt) {
			checkTheorem35(t, n, hist)
		})
	}
}

// TestPACTheorem35Random checks Theorem 3.5 on long random histories
// over more labels (testing/quick drives the generator).
func TestPACTheorem35Random(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		length := 1 + rng.Intn(40)
		hist := make([]opAt, length)
		for i := range hist {
			hist[i] = opAt{
				propose: rng.Intn(2) == 0,
				label:   1 + rng.Intn(n),
				val:     value.Value(rng.Intn(5)),
			}
		}
		checkTheorem35(t, n, hist)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// checkTheorem35 asserts the three properties of Theorem 3.5 over one
// sequential history.
func checkTheorem35(t *testing.T, n int, hist []opAt) {
	t.Helper()
	_, resps := runHistory(t, n, hist)

	// (a) Agreement: all non-⊥ decide responses are equal.
	decided := value.None
	for i, o := range hist {
		if o.propose || resps[i] == value.Bottom {
			continue
		}
		if decided == value.None {
			decided = resps[i]
		} else if resps[i] != decided {
			t.Fatalf("history %v: decides returned %s and %s (Agreement)", hist, decided, resps[i])
		}
	}

	// (b) Validity: a non-⊥ decide response v comes from a propose that
	// proposes v and decides v — in particular some propose proposed v.
	for i, o := range hist {
		if o.propose || resps[i] == value.Bottom {
			continue
		}
		proposed := false
		for j := 0; j < i; j++ {
			if hist[j].propose && hist[j].val == resps[i] {
				proposed = true
				break
			}
		}
		if !proposed {
			t.Fatalf("history %v: decide %d returned unproposed %s (Validity)", hist, i, resps[i])
		}
	}

	// (c) Nontriviality: decide op returns ⊥ iff the object was upset
	// before it, or there is no operation before it, or the operation
	// immediately before it is not a propose with the same label.
	for i, o := range hist {
		if o.propose {
			continue
		}
		upsetBefore := !legal(hist[:i], n)
		matchedPrev := i > 0 && hist[i-1].propose && hist[i-1].label == o.label
		wantBottom := upsetBefore || !matchedPrev
		gotBottom := resps[i] == value.Bottom
		if gotBottom != wantBottom {
			t.Fatalf("history %v: decide %d returned %s; upsetBefore=%v matchedPrev=%v (Nontriviality)",
				hist, i, resps[i], upsetBefore, matchedPrev)
		}
	}
}

// TestPACLemma33and34Random checks the state-shape lemmas: when not
// upset, V[i] mirrors the last operation with label i and L mirrors the
// last operation overall.
func TestPACLemma33and34Random(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		p := core.NewPAC(n)
		st := p.Init()
		lastWithLabel := make([]opAt, n+1) // zero value: no operation yet
		var last opAt
		length := 1 + rng.Intn(30)
		for stepIdx := 0; stepIdx < length; stepIdx++ {
			o := opAt{
				propose: rng.Intn(2) == 0,
				label:   1 + rng.Intn(n),
				val:     value.Value(1 + rng.Intn(4)),
			}
			ts, err := p.Step(st, o.op())
			if err != nil {
				t.Fatal(err)
			}
			st = ts[0].Next
			lastWithLabel[o.label] = o
			last = o
			if core.IsUpset(st) {
				return true // lemmas only constrain non-upset states
			}
			ps, ok := st.(core.PACState)
			if !ok {
				t.Fatal("state type")
			}
			for i := 1; i <= n; i++ {
				lo := lastWithLabel[i]
				wantV := value.None
				if lo.propose {
					wantV = lo.val
				}
				if ps.V[i-1] != wantV {
					t.Fatalf("V[%d] = %s, want %s (Lemma 3.3)", i, ps.V[i-1], wantV)
				}
			}
			wantL := 0
			if last.propose {
				wantL = last.label
			}
			if ps.L != wantL {
				t.Fatalf("L = %d, want %d (Lemma 3.4)", ps.L, wantL)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPACStateKeyDistinguishes checks that Key is injective across a
// sweep of distinct states (the model checker hashes with it).
func TestPACStateKeyDistinguishes(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(2)
	seen := make(map[string][]opAt)
	vals := []value.Value{5, 7}
	for length := 0; length <= 4; length++ {
		enumerateHistories(2, length, vals, func(hist []opAt) {
			st, _ := runHistory(t, 2, hist)
			key := st.Key()
			seen[key] = append([]opAt(nil), hist...)
		})
	}
	// Keys must round-trip to equal states: replay a representative of
	// each key and compare field-wise.
	for key, hist := range seen {
		st, _ := runHistory(t, 2, hist)
		if st.Key() != key {
			t.Fatalf("key not stable for history %v", hist)
		}
	}
	_ = p
}

// TestPACLemma33Wording pins the exact wording of Lemma 3.3's NIL case:
// after a decide with label i, V[i] is NIL again.
func TestPACLemma33Wording(t *testing.T) {
	t.Parallel()
	p := core.NewPAC(2)
	st := p.Init()
	st, _ = applyOne(t, p, st, value.ProposeAt(5, 1))
	st, _ = applyOne(t, p, st, value.Decide(1))
	ps := st.(core.PACState)
	if ps.V[0] != value.None {
		t.Fatalf("V[1] = %s after matched decide, want NIL", ps.V[0])
	}
	if ps.L != 0 {
		t.Fatalf("L = %d after decide, want NIL", ps.L)
	}
}

package core_test

import (
	"testing"

	"setagree/internal/core"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// TestPACFaceEquivalence drives identical operation sequences through a
// bare n-PAC and through the PAC face of an (n,m)-PAC (Observation
// 5.1(b)): responses must agree step for step.
func TestPACFaceEquivalence(t *testing.T) {
	t.Parallel()
	const n, m = 3, 2
	face := core.NewPACFace(core.NewPACM(n, m))
	bare := core.NewPAC(n)
	fs, bs := face.Init(), bare.Init()
	ops := []value.Op{
		value.ProposeAt(5, 1),
		value.Decide(1),
		value.ProposeAt(6, 2),
		value.ProposeAt(7, 3),
		value.Decide(3),
		value.Decide(3), // upsets
		value.Decide(2),
		value.ProposeAt(8, 1),
	}
	for _, op := range ops {
		var a, b value.Value
		fs, a = applyOne(t, face, fs, op)
		bs, b = applyOne(t, bare, bs, op)
		if a != b {
			t.Fatalf("%s: face returned %s, bare %s", op, a, b)
		}
	}
}

// TestConsensusFaceEquivalence does the same for the consensus face
// (Observation 5.1(c)).
func TestConsensusFaceEquivalence(t *testing.T) {
	t.Parallel()
	const n, m = 2, 3
	face := core.NewConsensusFace(core.NewPACM(n, m))
	fs := face.Init()
	for i, want := range []value.Value{4, 4, 4, value.Bottom, value.Bottom} {
		var got value.Value
		fs, got = applyOne(t, face, fs, value.Propose(value.Value(4+i)))
		if got != want {
			t.Fatalf("propose #%d = %s, want %s", i+1, got, want)
		}
	}
}

// TestFacesRejectForeignMethods pins the interfaces.
func TestFacesRejectForeignMethods(t *testing.T) {
	t.Parallel()
	pf := core.NewPACFace(core.NewPACM(2, 2))
	for _, op := range []value.Op{value.Propose(1), value.ProposeC(1), value.ProposeP(1, 1)} {
		if _, err := pf.Step(pf.Init(), op); err == nil {
			t.Errorf("PAC face accepted %s", op)
		}
	}
	cf := core.NewConsensusFace(core.NewPACM(2, 2))
	for _, op := range []value.Op{value.ProposeAt(1, 1), value.ProposeC(1), value.Read()} {
		if _, err := cf.Step(cf.Init(), op); err == nil {
			t.Errorf("consensus face accepted %s", op)
		}
	}
}

// TestFacesShareState checks the two faces of one (n,m)-PAC interact
// through the shared state exactly as §5 specifies: the C-face traffic
// does not disturb the P-face and vice versa.
func TestFacesShareState(t *testing.T) {
	t.Parallel()
	inner := core.NewPACM(2, 2)
	pf, cf := core.NewPACFace(inner), core.NewConsensusFace(inner)
	st := inner.Init()
	var resp value.Value
	st, resp = applyOne(t, cf, st, value.Propose(9))
	if resp != 9 {
		t.Fatalf("consensus face: %s", resp)
	}
	st, resp = applyOne(t, pf, st, value.ProposeAt(3, 1))
	if resp != value.Done {
		t.Fatalf("PAC face propose: %s", resp)
	}
	st, resp = applyOne(t, pf, st, value.Decide(1))
	if resp != 3 {
		t.Fatalf("PAC face decide: %s", resp)
	}
	_, resp = applyOne(t, cf, st, value.Propose(8))
	if resp != 9 {
		t.Fatalf("consensus face after PAC traffic: %s, want 9", resp)
	}
}

func TestFaceNamesAndDeterminism(t *testing.T) {
	t.Parallel()
	pf := core.NewPACFace(core.NewPACM(3, 2))
	if pf.Name() != "(3,2)-PAC as 3-PAC" {
		t.Errorf("PAC face name = %q", pf.Name())
	}
	cf := core.NewConsensusFace(core.NewPACM(3, 2))
	if cf.Name() != "(3,2)-PAC as 2-consensus" {
		t.Errorf("consensus face name = %q", cf.Name())
	}
	if !spec.Deterministic(pf) || !spec.Deterministic(cf) {
		t.Error("faces must be deterministic")
	}
}

// Package core implements the paper's primary contributions: the
// n-pseudo-abortable-consensus (n-PAC) object of §3 (Algorithm 1), the
// combined (n,m)-PAC object of §5, the objects O_n = (n+1,n)-PAC and
// O'_n of §6, and the n-DAC problem of §4 together with Algorithm 2.
package core

import (
	"encoding/binary"
	"strconv"
	"strings"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// nilLabel is the NIL value of the n-PAC variable L (labels are 1..n).
const nilLabel = 0

// PACState is the state of an n-PAC object, exactly the four components
// listed in §3:
//
//   - Upset, initially false;
//   - V[1..n], initially all NIL — V[i] = v iff the last operation with
//     label i is PROPOSE(v, i);
//   - L, initially NIL — L = i iff the last operation is PROPOSE(-, i);
//   - Val, initially NIL — the consensus value.
type PACState struct {
	// V is the per-label proposal array; index 0 is label 1.
	V []value.Value
	// Val is the consensus value, value.None until fixed.
	Val value.Value
	// L is the label of the last operation if that operation was a
	// propose, else nilLabel.
	L int
	// Upset records whether the object has become permanently upset.
	Upset bool
}

// Key implements spec.State.
func (s PACState) Key() string {
	var b strings.Builder
	if s.Upset {
		b.WriteByte('U')
	}
	b.WriteString(strconv.Itoa(s.L))
	b.WriteByte('.')
	b.WriteString(strconv.FormatInt(int64(s.Val), 36))
	for _, v := range s.V {
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(int64(v), 36))
	}
	return b.String()
}

// AppendKey implements spec.AppendKeyer.
func (s PACState) AppendKey(dst []byte) []byte {
	upset := byte(0)
	if s.Upset {
		upset = 1
	}
	dst = append(dst, upset)
	dst = binary.AppendUvarint(dst, uint64(s.L))
	dst = binary.AppendVarint(dst, int64(s.Val))
	dst = binary.AppendUvarint(dst, uint64(len(s.V)))
	for _, v := range s.V {
		dst = binary.AppendVarint(dst, int64(v))
	}
	return dst
}

var _ spec.State = PACState{}
var _ spec.AppendKeyer = PACState{}

func (s PACState) clone() PACState {
	v := make([]value.Value, len(s.V))
	copy(v, s.V)
	s.V = v
	return s
}

// PAC is the sequential specification of the n-PAC object (§3,
// Algorithm 1). It is deterministic and, unlike the n-DAC object of [9]
// it simulates, not abortable: PROPOSE(v, i) always returns done, and
// DECIDE(i) returns the consensus value or ⊥.
type PAC struct {
	// N is the number of labels (ports of the simulated n-DAC object).
	N int
}

var _ spec.Spec = PAC{}

// NewPAC returns the n-PAC spec for the given n (n >= 1).
func NewPAC(n int) PAC { return PAC{N: n} }

// Name implements spec.Spec.
func (p PAC) Name() string { return strconv.Itoa(p.N) + "-PAC" }

// Init implements spec.Spec.
func (p PAC) Init() spec.State {
	v := make([]value.Value, p.N)
	for i := range v {
		v[i] = value.None
	}
	return PACState{V: v, Val: value.None, L: nilLabel}
}

// Deterministic reports that n-PAC objects are deterministic (§3: "a
// non-abortable and deterministic version of the abortable n-DAC").
func (PAC) Deterministic() bool { return true }

// Step implements spec.Spec, transcribing Algorithm 1 line by line.
func (p PAC) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(PACState)
	if !ok || len(st.V) != p.N {
		return nil, spec.BadOpError(p.Name(), op, "foreign state")
	}
	switch op.Method {
	case value.MethodProposeAt:
		if err := spec.CheckProposal(p.Name(), op); err != nil {
			return nil, err
		}
		if op.Label < 1 || op.Label > p.N {
			return nil, spec.BadOpError(p.Name(), op, "label out of range")
		}
		next := st.clone()
		if next.V[op.Label-1] != value.None { // line 2
			next.Upset = true
		}
		if !next.Upset { // lines 3-5
			next.L = op.Label
			next.V[op.Label-1] = op.Arg
		}
		return []spec.Transition{{Next: next, Resp: value.Done}}, nil // line 6

	case value.MethodDecide:
		if op.Label < 1 || op.Label > p.N {
			return nil, spec.BadOpError(p.Name(), op, "label out of range")
		}
		next := st.clone()
		if next.V[op.Label-1] == value.None { // line 8
			next.Upset = true
		}
		if next.Upset { // line 9
			return []spec.Transition{{Next: next, Resp: value.Bottom}}, nil
		}
		var temp value.Value
		if next.L != op.Label { // lines 10-11
			temp = value.Bottom
		} else { // lines 12-14
			if next.Val == value.None {
				next.Val = next.V[op.Label-1]
			}
			temp = next.Val
		}
		next.L = nilLabel                                       // line 15
		next.V[op.Label-1] = value.None                         // line 16
		return []spec.Transition{{Next: next, Resp: temp}}, nil // line 17

	default:
		return nil, spec.BadOpError(p.Name(), op, "n-PAC supports PROPOSE_AT and DECIDE only")
	}
}

// IsUpset reports whether an n-PAC state is upset (Observation 3.1:
// once upset, upset forever).
func IsUpset(s spec.State) bool {
	st, ok := s.(PACState)
	return ok && st.Upset
}

// Symmetry (spec.Symmetric) implementations for the paper's objects.
// The n-PAC state is the only one in the repository that stores port
// labels (V is indexed by port, L names the last-proposing port), so
// it is where the process-id permutation acts on object state; the
// composite objects delegate to their components.

package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"setagree/internal/spec"
)

// appendComponentKeyUnder renders a component state's key under p. All
// component states this package creates implement spec.Symmetric; a
// foreign component is a construction-time bug, not a runtime
// condition, so it panics rather than silently mis-keying the state.
func appendComponentKeyUnder(dst []byte, s spec.State, p spec.Perm) []byte {
	out, ok := spec.AppendStateKeyUnder(dst, s, p)
	if !ok {
		panic(fmt.Sprintf("core: component state %T does not implement spec.Symmetric", s))
	}
	return out
}

// AppendKeyUnder implements spec.Symmetric. The permuted state's slot
// Port(l) holds the image of slot l's proposal, so output slot j is
// filled from input slot PortInv(j+1); L moves with its port (the nil
// label 0 is outside the port range and fixed); Val is a proposal
// value. Upset is a pure boolean, invariant because slot-occupancy
// (V[i] != None) is preserved by sentinel-fixing bijections.
func (s PACState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	upset := byte(0)
	if s.Upset {
		upset = 1
	}
	dst = append(dst, upset)
	dst = binary.AppendUvarint(dst, uint64(p.Port(s.L)))
	dst = binary.AppendVarint(dst, int64(p.Val(s.Val)))
	dst = binary.AppendUvarint(dst, uint64(len(s.V)))
	for j := range s.V {
		dst = binary.AppendVarint(dst, int64(p.Val(s.V[p.PortInv(j+1)-1])))
	}
	return dst
}

var _ spec.Symmetric = PACState{}

// AppendKeyUnder implements spec.Symmetric by delegating to the two
// components, mirroring AppendKey.
func (s PACMState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = appendComponentKeyUnder(dst, s.P, p)
	return appendComponentKeyUnder(dst, s.C, p)
}

var _ spec.Symmetric = PACMState{}

// AppendKeyUnder implements spec.Symmetric. Levels k are not ports —
// they are id-independent and stay fixed — so only the component
// states transform.
func (s OPrimeState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	ks := make([]int, 0, len(s.Components))
	for k := range s.Components {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	dst = binary.AppendUvarint(dst, uint64(len(ks)))
	for _, k := range ks {
		dst = binary.AppendUvarint(dst, uint64(k))
		dst = appendComponentKeyUnder(dst, s.Components[k], p)
	}
	return dst
}

var _ spec.Symmetric = OPrimeState{}

// AppendKeyUnder implements spec.Symmetric (levels fixed, components
// transformed, ascending-k order as in AppendKey).
func (s OPrimeBaseState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = appendComponentKeyUnder(dst, s.Consensus, p)
	ks := make([]int, 0, len(s.TwoSA))
	for k := range s.TwoSA {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	dst = binary.AppendUvarint(dst, uint64(len(ks)))
	for _, k := range ks {
		dst = binary.AppendUvarint(dst, uint64(k))
		dst = appendComponentKeyUnder(dst, s.TwoSA[k], p)
	}
	return dst
}

var _ spec.Symmetric = OPrimeBaseState{}

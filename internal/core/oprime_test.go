package core_test

import (
	"testing"

	"setagree/internal/core"
	"setagree/internal/spec"
	"setagree/internal/value"
)

func TestOPrimeName(t *testing.T) {
	t.Parallel()
	if got := core.NewOPrime(3, nil).Name(); got != "O'_3" {
		t.Errorf("Name() = %q", got)
	}
}

func TestOPrimeDefaultPower(t *testing.T) {
	t.Parallel()
	o := core.NewOPrime(3, nil)
	for k := 1; k <= 5; k++ {
		if got, want := o.Power.At(k), k*3; got != want {
			t.Errorf("default n_%d = %d, want %d", k, got, want)
		}
	}
}

// TestOPrimeLevelOneIsConsensus checks that level k = 1 behaves as the
// n-consensus object (the (n_1,1)-SA component with n_1 = n).
func TestOPrimeLevelOneIsConsensus(t *testing.T) {
	t.Parallel()
	const n = 2
	o := core.NewOPrime(n, nil)
	st := o.Init()
	st, resp := applyOne(t, o, st, value.ProposeK(4, 1))
	if resp != 4 {
		t.Fatalf("first propose at k=1 returned %s", resp)
	}
	st, resp = applyOne(t, o, st, value.ProposeK(5, 1))
	if resp != 4 {
		t.Fatalf("second propose at k=1 returned %s, want 4", resp)
	}
	// n_1 = 2 proposals exhausted: ⊥ from now on.
	st, resp = applyOne(t, o, st, value.ProposeK(6, 1))
	if resp != value.Bottom {
		t.Fatalf("third propose at k=1 returned %s, want ⊥", resp)
	}
	_ = st
}

// TestOPrimeLevelsIndependent checks that distinct k route to distinct
// components.
func TestOPrimeLevelsIndependent(t *testing.T) {
	t.Parallel()
	o := core.NewOPrime(2, nil)
	st := o.Init()
	st, _ = applyOne(t, o, st, value.ProposeK(4, 1))
	st, _ = applyOne(t, o, st, value.ProposeK(5, 1))
	st, resp := applyOne(t, o, st, value.ProposeK(9, 3)) // fresh (6,3)-SA component
	if resp != 9 {
		t.Fatalf("first propose at k=3 returned %s, want 9", resp)
	}
	_ = st
}

// TestOPrimeLevelKBranching checks that a level k >= 2 component is the
// strong (n_k,k)-SA object: at most k distinct responses, offered
// nondeterministically.
func TestOPrimeLevelKBranching(t *testing.T) {
	t.Parallel()
	o := core.NewOPrime(2, nil) // n_2 = 4
	st := o.Init()
	st, _ = applyOne(t, o, st, value.ProposeK(7, 2))
	ts, err := o.Step(st, value.ProposeK(8, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("second distinct proposal at k=2 offered %d transitions, want 2", len(ts))
	}
	got := map[value.Value]bool{}
	for _, tr := range ts {
		got[tr.Resp] = true
	}
	if !got[7] || !got[8] {
		t.Fatalf("responses offered: %v, want {7, 8}", got)
	}
}

// TestOPrimeParticipationBound checks the n_k bound at a level k >= 2:
// with n_2 = 4, the fifth proposal receives ⊥.
func TestOPrimeParticipationBound(t *testing.T) {
	t.Parallel()
	o := core.NewOPrime(2, nil) // n_2 = 4
	st := o.Init()
	var resp value.Value
	for i := 0; i < 4; i++ {
		ts, err := o.Step(st, value.ProposeK(7, 2))
		if err != nil {
			t.Fatal(err)
		}
		st, resp = ts[0].Next, ts[0].Resp
		if resp == value.Bottom {
			t.Fatalf("proposal %d of 4 returned ⊥", i+1)
		}
	}
	ts, err := o.Step(st, value.ProposeK(7, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Resp != value.Bottom {
		t.Fatalf("fifth proposal returned %s, want ⊥ (n_2 = 4)", ts[0].Resp)
	}
}

// TestOPrimeCustomPower checks that an explicit power sequence is
// honored, including Infinite entries.
func TestOPrimeCustomPower(t *testing.T) {
	t.Parallel()
	seq := core.SequenceFunc(func(k int) int {
		if k >= 2 {
			return 0 // Infinite / unbounded
		}
		return 2
	})
	o := core.NewOPrime(2, seq)
	st := o.Init()
	var resp value.Value
	for i := 0; i < 10; i++ {
		ts, err := o.Step(st, value.ProposeK(7, 2))
		if err != nil {
			t.Fatal(err)
		}
		st, resp = ts[0].Next, ts[0].Resp
		if resp == value.Bottom {
			t.Fatalf("unbounded level returned ⊥ at proposal %d", i+1)
		}
	}
}

func TestOPrimeBadOps(t *testing.T) {
	t.Parallel()
	o := core.NewOPrime(2, nil)
	st := o.Init()
	for _, op := range []value.Op{
		value.Propose(1),
		value.ProposeK(1, 0),
		value.ProposeK(1, -3),
		value.ProposeK(value.None, 1),
		value.Decide(1),
	} {
		if _, err := o.Step(st, op); err == nil {
			t.Errorf("Step(%s) accepted an out-of-interface operation", op)
		}
	}
}

// TestOPrimeStateKeyCanonical checks that the component map's key
// encoding is order-independent (canonical), so the model checker does
// not split identical configurations.
func TestOPrimeStateKeyCanonical(t *testing.T) {
	t.Parallel()
	o := core.NewOPrime(2, nil)
	a := o.Init()
	a, _ = applyOne(t, o, a, value.ProposeK(1, 1))
	a, _ = applyOne(t, o, a, value.ProposeK(2, 3))

	b := o.Init()
	b, _ = applyOne(t, o, b, value.ProposeK(2, 3))
	b, _ = applyOne(t, o, b, value.ProposeK(1, 1))

	if a.Key() != b.Key() {
		t.Fatalf("keys differ for the same component states:\n%s\n%s", a.Key(), b.Key())
	}
}

// TestOPrimeNondeterministicFlag pins the Deterministic extension.
func TestOPrimeNondeterministicFlag(t *testing.T) {
	t.Parallel()
	if spec.Deterministic(core.NewOPrime(2, nil)) {
		t.Error("O'_n must report nondeterministic")
	}
}

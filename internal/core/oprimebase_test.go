package core_test

import (
	"testing"

	"setagree/internal/core"
	"setagree/internal/value"
)

// TestOPrimeFromBaseLevelOne checks that level 1 is exactly the
// n-consensus behaviour.
func TestOPrimeFromBaseLevelOne(t *testing.T) {
	t.Parallel()
	o := core.NewOPrimeFromBase(2)
	st := o.Init()
	st, resp := applyOne(t, o, st, value.ProposeK(4, 1))
	if resp != 4 {
		t.Fatalf("first propose = %s", resp)
	}
	st, resp = applyOne(t, o, st, value.ProposeK(5, 1))
	if resp != 4 {
		t.Fatalf("second propose = %s, want 4", resp)
	}
	st, resp = applyOne(t, o, st, value.ProposeK(6, 1))
	if resp != value.Bottom {
		t.Fatalf("third propose = %s, want ⊥ (n = 2)", resp)
	}
	_ = st
}

// TestOPrimeFromBaseLevelKUsesTwoSA checks that a k >= 2 level serves
// unboundedly many proposals with at most two distinct responses — the
// 2-SA component.
func TestOPrimeFromBaseLevelKUsesTwoSA(t *testing.T) {
	t.Parallel()
	o := core.NewOPrimeFromBase(2)
	st := o.Init()
	distinct := map[value.Value]bool{}
	for i := 0; i < 12; i++ {
		ts, err := o.Step(st, value.ProposeK(value.Value(i), 3))
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range ts {
			if tr.Resp == value.Bottom {
				t.Fatalf("2-SA-backed level returned ⊥ at proposal %d", i+1)
			}
			distinct[tr.Resp] = true
		}
		st = ts[0].Next
	}
	if len(distinct) > 2 {
		t.Fatalf("level 3 offered %d distinct responses, want <= 2", len(distinct))
	}
}

// TestOPrimeFromBaseLevelsIndependent checks per-level isolation.
func TestOPrimeFromBaseLevelsIndependent(t *testing.T) {
	t.Parallel()
	o := core.NewOPrimeFromBase(2)
	st := o.Init()
	st, _ = applyOne(t, o, st, value.ProposeK(1, 2))
	ts, err := o.Step(st, value.ProposeK(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Resp != 9 {
		t.Fatalf("fresh level 4 responded %+v", ts)
	}
}

func TestOPrimeFromBaseBadOps(t *testing.T) {
	t.Parallel()
	o := core.NewOPrimeFromBase(2)
	for _, op := range []value.Op{
		value.Propose(1), value.ProposeK(1, 0), value.ProposeK(value.Bottom, 2),
	} {
		if _, err := o.Step(o.Init(), op); err == nil {
			t.Errorf("Step(%s) accepted", op)
		}
	}
}

// TestOPrimeFromBaseKeyCanonical mirrors the OPrime key test.
func TestOPrimeFromBaseKeyCanonical(t *testing.T) {
	t.Parallel()
	o := core.NewOPrimeFromBase(2)
	a := o.Init()
	a, _ = applyOne(t, o, a, value.ProposeK(1, 2))
	a, _ = applyOne(t, o, a, value.ProposeK(2, 5))
	b := o.Init()
	b, _ = applyOne(t, o, b, value.ProposeK(2, 5))
	b, _ = applyOne(t, o, b, value.ProposeK(1, 2))
	if a.Key() != b.Key() {
		t.Fatalf("keys differ:\n%s\n%s", a.Key(), b.Key())
	}
}

package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// OPrimeFromBase is the Lemma 6.4 construction: an implementation of
// O'_n whose components are drawn *only* from n-consensus objects and
// strong 2-SA objects —
//
//   - level k = 1 is served by an n-consensus object (n_1 = n by
//     Observation 6.2, and the (n,1)-SA object *is* the n-consensus
//     object); and
//   - every level k >= 2 is served by its own 2-SA object: the 2-SA
//     object answers any number of processes with at most two distinct
//     proposed values, which satisfies the (n_k,k)-set agreement
//     requirements a fortiori (§4).
//
// Together with Theorem 4.3's consequence (Observation 6.3), this is
// the executable half of the separation: O'_n is implementable from
// {n-consensus, 2-SA, registers} while O_n is not, so the two objects —
// which have the same set agreement power — are not equivalent
// (Theorem 6.5, Corollary 6.6).
type OPrimeFromBase struct {
	// N is the consensus number n of the embodied O_n.
	N int
}

var _ spec.Spec = OPrimeFromBase{}

// NewOPrimeFromBase returns the Lemma 6.4 implementation of O'_n.
func NewOPrimeFromBase(n int) OPrimeFromBase { return OPrimeFromBase{N: n} }

// Name implements spec.Spec.
func (o OPrimeFromBase) Name() string {
	return "O'_" + strconv.Itoa(o.N) + "-from-{" + strconv.Itoa(o.N) + "-consensus,2-SA}"
}

// OPrimeBaseState is the state of an OPrimeFromBase object: the level-1
// n-consensus component plus the lazily instantiated per-level 2-SA
// components.
type OPrimeBaseState struct {
	// Consensus is the level-1 component state.
	Consensus spec.State
	// TwoSA maps level k >= 2 to its 2-SA component state.
	TwoSA map[int]spec.State
}

// Key implements spec.State.
func (s OPrimeBaseState) Key() string {
	ks := make([]int, 0, len(s.TwoSA))
	for k := range s.TwoSA {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var b strings.Builder
	b.WriteString(s.Consensus.Key())
	for _, k := range ks {
		b.WriteByte(';')
		b.WriteString(strconv.Itoa(k))
		b.WriteByte(':')
		b.WriteString(s.TwoSA[k].Key())
	}
	return b.String()
}

// AppendKey implements spec.AppendKeyer (canonical: 2-SA components in
// ascending k).
func (s OPrimeBaseState) AppendKey(dst []byte) []byte {
	dst = spec.AppendStateKey(dst, s.Consensus)
	ks := make([]int, 0, len(s.TwoSA))
	for k := range s.TwoSA {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	dst = binary.AppendUvarint(dst, uint64(len(ks)))
	for _, k := range ks {
		dst = binary.AppendUvarint(dst, uint64(k))
		dst = spec.AppendStateKey(dst, s.TwoSA[k])
	}
	return dst
}

var _ spec.State = OPrimeBaseState{}
var _ spec.AppendKeyer = OPrimeBaseState{}

// Init implements spec.Spec.
func (o OPrimeFromBase) Init() spec.State {
	return OPrimeBaseState{Consensus: objects.NewConsensus(o.N).Init()}
}

// Deterministic reports nondeterminism (the 2-SA components branch).
func (OPrimeFromBase) Deterministic() bool { return false }

// Step implements spec.Spec: PROPOSE(v, 1) goes to the n-consensus
// component, PROPOSE(v, k) for k >= 2 to the level's 2-SA component.
func (o OPrimeFromBase) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(OPrimeBaseState)
	if !ok {
		return nil, spec.BadOpError(o.Name(), op, "foreign state")
	}
	if op.Method != value.MethodProposeK {
		return nil, spec.BadOpError(o.Name(), op, "O'_n supports PROPOSE_K only")
	}
	if op.Label < 1 {
		return nil, spec.BadOpError(o.Name(), op, "level k must be >= 1")
	}
	if op.Label == 1 {
		ts, err := objects.NewConsensus(o.N).Step(st.Consensus, value.Propose(op.Arg))
		if err != nil {
			return nil, err
		}
		return []spec.Transition{{
			Next: OPrimeBaseState{Consensus: ts[0].Next, TwoSA: st.TwoSA},
			Resp: ts[0].Resp,
		}}, nil
	}
	comp := objects.NewTwoSA()
	cs, found := st.TwoSA[op.Label]
	if !found {
		cs = comp.Init()
	}
	ts, err := comp.Step(cs, value.Propose(op.Arg))
	if err != nil {
		return nil, err
	}
	out := make([]spec.Transition, len(ts))
	for i, t := range ts {
		next := make(map[int]spec.State, len(st.TwoSA)+1)
		for k, v := range st.TwoSA {
			next[k] = v
		}
		next[op.Label] = t.Next
		out[i] = spec.Transition{
			Next: OPrimeBaseState{Consensus: st.Consensus, TwoSA: next},
			Resp: t.Resp,
		}
	}
	return out, nil
}

package core

import (
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// This file implements Observation 5.1(b) and (c) as reusable adapter
// specs: an (n,m)-PAC object *is* an n-PAC object (under the P-face
// methods) and *is* an m-consensus object (under the C-face method).
// The adapters let an (n,m)-PAC — in particular O_n — be dropped in
// wherever the plain object is expected, which is how Theorem 7.1 uses
// Observation 5.1(b).

// PACFace adapts an (n,m)-PAC spec to the plain n-PAC interface
// (Observation 5.1(b)): PROPOSE_AT and DECIDE are redirected to
// PROPOSE_P and DECIDE_P. The state is the underlying PACM state.
type PACFace struct {
	// Inner is the adapted (n,m)-PAC spec.
	Inner PACM
}

var _ spec.Spec = PACFace{}

// NewPACFace wraps an (n,m)-PAC spec as an n-PAC.
func NewPACFace(inner PACM) PACFace { return PACFace{Inner: inner} }

// Name implements spec.Spec.
func (f PACFace) Name() string {
	return f.Inner.Name() + " as " + NewPAC(f.Inner.N).Name()
}

// Init implements spec.Spec.
func (f PACFace) Init() spec.State { return f.Inner.Init() }

// Deterministic reports that the face is deterministic.
func (PACFace) Deterministic() bool { return true }

// Step implements spec.Spec.
func (f PACFace) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	switch op.Method {
	case value.MethodProposeAt:
		return f.Inner.Step(s, value.ProposeP(op.Arg, op.Label))
	case value.MethodDecide:
		return f.Inner.Step(s, value.DecideP(op.Label))
	default:
		return nil, spec.BadOpError(f.Name(), op, "n-PAC face supports PROPOSE_AT and DECIDE only")
	}
}

// ConsensusFace adapts an (n,m)-PAC spec to the plain m-consensus
// interface (Observation 5.1(c)): PROPOSE is redirected to PROPOSE_C.
type ConsensusFace struct {
	// Inner is the adapted (n,m)-PAC spec.
	Inner PACM
}

var _ spec.Spec = ConsensusFace{}

// NewConsensusFace wraps an (n,m)-PAC spec as an m-consensus object.
func NewConsensusFace(inner PACM) ConsensusFace { return ConsensusFace{Inner: inner} }

// Name implements spec.Spec.
func (f ConsensusFace) Name() string {
	return f.Inner.Name() + " as " + objects.NewConsensus(f.Inner.M).Name()
}

// Init implements spec.Spec.
func (f ConsensusFace) Init() spec.State { return f.Inner.Init() }

// Deterministic reports that the face is deterministic.
func (ConsensusFace) Deterministic() bool { return true }

// Step implements spec.Spec.
func (f ConsensusFace) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	if op.Method != value.MethodPropose {
		return nil, spec.BadOpError(f.Name(), op, "consensus face supports PROPOSE only")
	}
	return f.Inner.Step(s, value.ProposeC(op.Arg))
}

package core

import (
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// Sequence is a set agreement power sequence (n_1, n_2, ..., n_k, ...):
// At(k) returns n_k, the k-set agreement number. A return of
// objects.Unbounded (0) encodes n_k = ∞ ("solves k-set agreement among
// any number of processes", §1).
type Sequence interface {
	At(k int) int
}

// SequenceFunc adapts a function to the Sequence interface.
type SequenceFunc func(k int) int

// At implements Sequence.
func (f SequenceFunc) At(k int) int { return f(k) }

var _ Sequence = (SequenceFunc)(nil)

// OPrimeState is the state of an O'_n object: the states of the
// lazily-instantiated (n_k, k)-SA components, keyed by k. The paper's
// collection C_n = ∪_{k>=1} {(n_k,k)-SA} is infinite, but any finite
// run touches only finitely many k, so lazy instantiation is
// behaviourally identical (DESIGN.md substitution 2).
type OPrimeState struct {
	// Components maps k to the state of the (n_k,k)-SA component that
	// has been touched at least once.
	Components map[int]spec.State
}

// Key implements spec.State (canonical: components in ascending k).
func (s OPrimeState) Key() string {
	ks := make([]int, 0, len(s.Components))
	for k := range s.Components {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var b strings.Builder
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.Itoa(k))
		b.WriteByte(':')
		b.WriteString(s.Components[k].Key())
	}
	return b.String()
}

// AppendKey implements spec.AppendKeyer (canonical: components in
// ascending k).
func (s OPrimeState) AppendKey(dst []byte) []byte {
	ks := make([]int, 0, len(s.Components))
	for k := range s.Components {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	dst = binary.AppendUvarint(dst, uint64(len(ks)))
	for _, k := range ks {
		dst = binary.AppendUvarint(dst, uint64(k))
		dst = spec.AppendStateKey(dst, s.Components[k])
	}
	return dst
}

var _ spec.State = OPrimeState{}
var _ spec.AppendKeyer = OPrimeState{}

// OPrime is the object O'_n of §6: it "embodies" a set agreement power
// (n_1, n_2, ..., n_k, ...) by combining the collection
// C_n = ∪_{k>=1} {(n_k,k)-SA}. Its single operation PROPOSE(v, k)
// redirects PROPOSE(v) to the (n_k,k)-SA component and returns that
// component's response. By construction O'_n has exactly the given set
// agreement power.
type OPrime struct {
	// Power is the set agreement power sequence the object embodies.
	Power Sequence
	// Label names the object, e.g. "O'_3"; used by Name.
	Label string
}

var _ spec.Spec = OPrime{}

// NewOPrime returns the O'_n object for the power sequence of O_n.
// The default sequence (used when power is nil) is n_k = k·n — the set
// agreement power of the n-consensus object embedded in
// O_n = (n+1,n)-PAC, which is the natural concrete instantiation of the
// paper's abstract sequence (DESIGN.md substitution 3). n_1 = n is
// forced by Observation 6.2 regardless.
func NewOPrime(n int, power Sequence) OPrime {
	if power == nil {
		power = SequenceFunc(func(k int) int { return k * n })
	}
	return OPrime{Power: power, Label: "O'_" + strconv.Itoa(n)}
}

// Name implements spec.Spec.
func (o OPrime) Name() string {
	if o.Label == "" {
		return "O'"
	}
	return o.Label
}

// Init implements spec.Spec.
func (OPrime) Init() spec.State { return OPrimeState{} }

// Deterministic reports that O'_n is nondeterministic in general: its
// (n_k,k)-SA components with k >= 2 are.
func (OPrime) Deterministic() bool { return false }

// Component returns the (n_k,k)-SA spec backing level k.
func (o OPrime) Component(k int) objects.SetAgreement {
	return objects.NewSetAgreement(o.Power.At(k), k)
}

// Step implements spec.Spec: PROPOSE(v, k) is redirected to the
// (n_k,k)-SA component for k = op.Label.
func (o OPrime) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(OPrimeState)
	if !ok {
		return nil, spec.BadOpError(o.Name(), op, "foreign state")
	}
	if op.Method != value.MethodProposeK {
		return nil, spec.BadOpError(o.Name(), op, "O'_n supports PROPOSE_K only")
	}
	if op.Label < 1 {
		return nil, spec.BadOpError(o.Name(), op, "level k must be >= 1")
	}
	comp := o.Component(op.Label)
	cs, found := st.Components[op.Label]
	if !found {
		cs = comp.Init()
	}
	ts, err := comp.Step(cs, value.Propose(op.Arg))
	if err != nil {
		return nil, err
	}
	out := make([]spec.Transition, len(ts))
	for i, t := range ts {
		next := make(map[int]spec.State, len(st.Components)+1)
		for k, v := range st.Components {
			next[k] = v
		}
		next[op.Label] = t.Next
		out[i] = spec.Transition{Next: OPrimeState{Components: next}, Resp: t.Resp}
	}
	return out, nil
}

package core

import (
	"strconv"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// PACMState is the state of an (n,m)-PAC object: the pair of its
// embedded n-PAC state P and m-consensus state C (§5).
type PACMState struct {
	// P is the embedded n-PAC component state.
	P spec.State
	// C is the embedded m-consensus component state.
	C spec.State
}

// Key implements spec.State.
func (s PACMState) Key() string {
	return s.P.Key() + "|" + s.C.Key()
}

// AppendKey implements spec.AppendKeyer: the concatenation of the two
// component encodings (each is self-delimiting).
func (s PACMState) AppendKey(dst []byte) []byte {
	dst = spec.AppendStateKey(dst, s.P)
	return spec.AppendStateKey(dst, s.C)
}

var _ spec.State = PACMState{}
var _ spec.AppendKeyer = PACMState{}

// PACM is the "boosted" (n,m)-PAC object of §5: a combination of an
// n-PAC object P and an m-consensus object C. It supports
//
//   - PROPOSEC(v), redirected to C's PROPOSE(v);
//   - PROPOSEP(v, i), redirected to P's PROPOSE(v, i);
//   - DECIDEP(i), redirected to P's DECIDE(i).
//
// PACM objects are deterministic, since both components are (§5), and
// Theorem 5.3 places them at level m of the consensus hierarchy for all
// m >= 2.
type PACM struct {
	// N is the label count of the n-PAC component.
	N int
	// M is the consensus width of the m-consensus component.
	M int
}

// NewPACM returns the (n,m)-PAC spec.
func NewPACM(n, m int) PACM { return PACM{N: n, M: m} }

var _ spec.Spec = PACM{}

// Name implements spec.Spec.
func (p PACM) Name() string {
	return "(" + strconv.Itoa(p.N) + "," + strconv.Itoa(p.M) + ")-PAC"
}

func (p PACM) pacSpec() PAC                     { return NewPAC(p.N) }
func (p PACM) consensusSpec() objects.Consensus { return objects.NewConsensus(p.M) }

// Init implements spec.Spec.
func (p PACM) Init() spec.State {
	return PACMState{P: p.pacSpec().Init(), C: p.consensusSpec().Init()}
}

// Deterministic reports that (n,m)-PAC objects are deterministic.
func (PACM) Deterministic() bool { return true }

// Step implements spec.Spec by redirecting each operation to the
// appropriate component, exactly as §5 defines.
func (p PACM) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st, ok := s.(PACMState)
	if !ok {
		return nil, spec.BadOpError(p.Name(), op, "foreign state")
	}
	switch op.Method {
	case value.MethodProposeC:
		ts, err := p.consensusSpec().Step(st.C, value.Propose(op.Arg))
		if err != nil {
			return nil, err
		}
		return []spec.Transition{{Next: PACMState{P: st.P, C: ts[0].Next}, Resp: ts[0].Resp}}, nil
	case value.MethodProposeP:
		ts, err := p.pacSpec().Step(st.P, value.ProposeAt(op.Arg, op.Label))
		if err != nil {
			return nil, err
		}
		return []spec.Transition{{Next: PACMState{P: ts[0].Next, C: st.C}, Resp: ts[0].Resp}}, nil
	case value.MethodDecideP:
		ts, err := p.pacSpec().Step(st.P, value.Decide(op.Label))
		if err != nil {
			return nil, err
		}
		return []spec.Transition{{Next: PACMState{P: ts[0].Next, C: st.C}, Resp: ts[0].Resp}}, nil
	default:
		return nil, spec.BadOpError(p.Name(), op,
			"(n,m)-PAC supports PROPOSE_C, PROPOSE_P, and DECIDE_P only")
	}
}

// ObjectO returns O_n, defined as the (n+1, n)-PAC object
// (Definition 6.1). By Observation 6.2 its consensus number is n.
func ObjectO(n int) PACM { return NewPACM(n+1, n) }

package core_test

import (
	"testing"

	"setagree/internal/core"
	"setagree/internal/spec"
	"setagree/internal/value"
)

func TestPACMName(t *testing.T) {
	t.Parallel()
	if got := core.NewPACM(3, 2).Name(); got != "(3,2)-PAC" {
		t.Errorf("Name() = %q", got)
	}
	if got := core.ObjectO(4).Name(); got != "(5,4)-PAC" {
		t.Errorf("ObjectO(4).Name() = %q", got)
	}
}

func TestPACMDeterministic(t *testing.T) {
	t.Parallel()
	if !spec.Deterministic(core.NewPACM(2, 2)) {
		t.Error("(n,m)-PAC must be deterministic (§5)")
	}
}

// TestPACMRedirection checks the three §5 redirections against the
// component specs run side by side.
func TestPACMRedirection(t *testing.T) {
	t.Parallel()
	pm := core.NewPACM(3, 2)
	st := pm.Init()

	// PROPOSEC goes to the 2-consensus component: first value wins.
	st, resp := applyOne(t, pm, st, value.ProposeC(8))
	if resp != 8 {
		t.Fatalf("first ProposeC returned %s", resp)
	}
	st, resp = applyOne(t, pm, st, value.ProposeC(9))
	if resp != 8 {
		t.Fatalf("second ProposeC returned %s, want 8", resp)
	}
	// Third proposal exceeds m = 2: ⊥.
	st, resp = applyOne(t, pm, st, value.ProposeC(9))
	if resp != value.Bottom {
		t.Fatalf("third ProposeC returned %s, want ⊥", resp)
	}

	// PROPOSEP/DECIDEP go to the 3-PAC component, unaffected by the
	// consensus traffic above.
	st, resp = applyOne(t, pm, st, value.ProposeP(4, 2))
	if resp != value.Done {
		t.Fatalf("ProposeP returned %s", resp)
	}
	st, resp = applyOne(t, pm, st, value.DecideP(2))
	if resp != 4 {
		t.Fatalf("DecideP returned %s, want 4", resp)
	}
	_ = st
}

// TestPACMComponentsIndependent checks that upsetting the PAC component
// leaves the consensus component untouched (Observation 5.1's
// composition is a plain product).
func TestPACMComponentsIndependent(t *testing.T) {
	t.Parallel()
	pm := core.NewPACM(2, 2)
	st := pm.Init()
	st, _ = applyOne(t, pm, st, value.DecideP(1)) // orphan decide upsets P
	st, resp := applyOne(t, pm, st, value.DecideP(1))
	if resp != value.Bottom {
		t.Fatalf("DecideP on upset component returned %s", resp)
	}
	st, resp = applyOne(t, pm, st, value.ProposeC(3))
	if resp != 3 {
		t.Fatalf("consensus component affected by PAC upset: %s", resp)
	}
	_ = st
}

func TestPACMBadOps(t *testing.T) {
	t.Parallel()
	pm := core.NewPACM(2, 2)
	st := pm.Init()
	for _, op := range []value.Op{
		value.Propose(1),      // plain propose is not in the interface
		value.ProposeAt(1, 1), // raw PAC method is not in the interface
		value.Decide(1),
		value.ProposeP(1, 0),
		value.ProposeP(1, 3),
		value.DecideP(9),
		value.ProposeC(value.Bottom),
	} {
		if _, err := pm.Step(st, op); err == nil {
			t.Errorf("Step(%s) accepted an out-of-interface operation", op)
		}
	}
}

// TestObservation51 checks Observation 5.1 structurally: (a) the
// (n,m)-PAC state is exactly an n-PAC state paired with an m-consensus
// state; (b) its PAC face behaves as an n-PAC object; (c) its consensus
// face behaves as an m-consensus object.
func TestObservation51(t *testing.T) {
	t.Parallel()
	const n, m = 3, 2
	pm := core.NewPACM(n, m)
	pac := core.NewPAC(n)

	// (b): drive the same operation sequence through the PAC face of the
	// (n,m)-PAC and through a bare n-PAC; responses must match.
	pmSt, pacSt := pm.Init(), pac.Init()
	ops := []struct {
		pmOp, pacOp value.Op
	}{
		{value.ProposeP(5, 1), value.ProposeAt(5, 1)},
		{value.DecideP(1), value.Decide(1)},
		{value.ProposeP(6, 2), value.ProposeAt(6, 2)},
		{value.ProposeP(7, 3), value.ProposeAt(7, 3)},
		{value.DecideP(2), value.Decide(2)},
		{value.DecideP(2), value.Decide(2)}, // upsets both
		{value.DecideP(3), value.Decide(3)},
	}
	for _, o := range ops {
		var a, b value.Value
		pmSt, a = applyOne(t, pm, pmSt, o.pmOp)
		pacSt, b = applyOne(t, pac, pacSt, o.pacOp)
		if a != b {
			t.Fatalf("%s: (n,m)-PAC face returned %s, bare n-PAC %s", o.pmOp, a, b)
		}
	}

	// (c): the consensus face of a fresh (n,m)-PAC matches an
	// m-consensus object.
	pmSt = pm.Init()
	for i, v := range []value.Value{3, 4, 5} {
		var resp value.Value
		pmSt, resp = applyOne(t, pm, pmSt, value.ProposeC(v))
		want := value.Value(3)
		if i >= m {
			want = value.Bottom
		}
		if resp != want {
			t.Fatalf("ProposeC #%d returned %s, want %s", i+1, resp, want)
		}
	}
}

package collections

import (
	"fmt"

	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/spec"
	"setagree/internal/store"
	"setagree/internal/task"
	"setagree/internal/value"
)

// CrossOptions configures verdict cross-validation against the model
// checker. The zero value works.
type CrossOptions struct {
	// Workers is the model checker's parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxStates caps each model check (0 = explore's default).
	MaxStates int
	// Symmetry selects symmetry reduction for the falsification sweeps
	// (the positive protocol checks run unreduced: a partitioned
	// protocol gives processes different roles).
	Symmetry explore.Symmetry
	// Store spills the positive checks' configuration graphs to disk
	// (zero value keeps them in memory).
	Store store.Options
	// Obs receives collections.crosschecked /
	// collections.crosscheck_failures counters; Events the underlying
	// explore/sweep event streams.
	Obs    *obs.Sink
	Events *obs.Emitter
}

// CrossResult records one cross-validated verdict.
type CrossResult struct {
	// Collection renders the collection checked.
	Collection string
	// Procs and K name the task instance.
	Procs, K int
	// Solvable is the decision procedure's verdict.
	Solvable bool
	// Confirmed reports the model checker agreed: a witness protocol
	// solved the task (solvable), or the depth-1 falsification family
	// produced zero solvers and zero unsettled candidates (unsolvable).
	Confirmed bool
	// Detail describes what was checked.
	Detail string
	// States counts configurations the checker explored.
	States int
}

// WitnessProtocol composes an optimal allocation into a concrete
// system: each group's processes share ceil(procs/n) instances of the
// group's type (one instance for unbounded types), propose their
// inputs, and decide the response; register processes decide their own
// inputs. A full instance serves at most n processes and yields at
// most k distinct responses, so the protocol decides at most
// Allocation.Cost distinct values — exactly the decision procedure's
// claim, which explore.Check then verifies on concrete inputs.
func WitnessProtocol(alloc Allocation, name string) (programs.Protocol, error) {
	var (
		objs  []spec.Spec
		progs []*machine.Program
	)
	const regTemp machine.RegID = 3
	for gi, g := range alloc.Groups {
		if err := g.Type.Validate(); err != nil {
			return programs.Protocol{}, err
		}
		if g.Procs < 1 {
			return programs.Protocol{}, fmt.Errorf("collections: group %d has %d processes", gi, g.Procs)
		}
		base := len(objs)
		instances := 1
		if g.Type.N != objects.Unbounded {
			instances = (g.Procs + g.Type.N - 1) / g.Type.N
		}
		for i := 0; i < instances; i++ {
			objs = append(objs, objects.SetAgreement{N: g.Type.N, K: g.Type.K})
		}
		for l := 0; l < g.Procs; l++ {
			inst := base
			if g.Type.N != objects.Unbounded {
				inst = base + l/g.Type.N
			}
			prog := machine.NewBuilder(fmt.Sprintf("%s-g%d", g.Type.Name(), gi), 4).
				Invoke(regTemp, inst, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
				Decide(machine.R(regTemp)).
				MustBuild()
			progs = append(progs, prog)
		}
	}
	reg := machine.NewBuilder("register-decide-input", 4).
		Decide(machine.R(machine.RegInput)).
		MustBuild()
	for i := 0; i < alloc.Registers; i++ {
		progs = append(progs, reg)
	}
	if len(objs) == 0 {
		// explore systems want at least the register base.
		objs = append(objs, objects.NewRegister())
	}
	return programs.Protocol{Name: name, Programs: progs, Objects: objs}, nil
}

// falsifyFamily is the depth-1 symmetric candidate family for an
// unsolvable verdict: one instance per canonical type plus a register,
// a propose/write/read menu, and the standard final actions — the
// collections analogue of the Theorem 5.2/7.1 sweep families.
func falsifyFamily(c Collection) *enumerate.Family {
	objs := []spec.Spec{}
	menu := []enumerate.Invoke{}
	for _, t := range c.Canonical().Types {
		menu = append(menu, enumerate.Invoke{Obj: len(objs), Method: value.MethodPropose, Arg: enumerate.ArgInput})
		objs = append(objs, objects.SetAgreement{N: t.N, K: t.K})
	}
	regIdx := len(objs)
	objs = append(objs, objects.NewRegister())
	menu = append(menu,
		enumerate.Invoke{Obj: regIdx, Method: value.MethodWrite, Arg: enumerate.ArgInput},
		enumerate.Invoke{Obj: regIdx, Method: value.MethodRead},
	)
	return &enumerate.Family{
		Objects: objs,
		Menu:    menu,
		Depth:   1,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
}

// distinctInputs is the cross-validation input vector: pairwise
// distinct values, so a K-set agreement violation cannot hide behind
// colliding inputs.
func distinctInputs(n int) []value.Value {
	v := make([]value.Value, n)
	for i := range v {
		v[i] = value.Value(10 + i)
	}
	return v
}

// CrossValidate confirms the engine's verdict for one collection and
// task against the model checker. Solvable verdicts are confirmed
// constructively — the witness protocol must check out on distinct
// inputs. Unsolvable verdicts are confirmed by exhaustively falsifying
// the depth-1 symmetric family over the collection's objects (a
// consistency check against the richest bounded family the enumerate
// layer ships, not a proof of unsolvability — the decision procedure
// itself is the proof).
func CrossValidate(eng *Engine, c Collection, tsk Task, opts CrossOptions) (CrossResult, error) {
	if err := tsk.Validate(); err != nil {
		return CrossResult{}, err
	}
	ma, err := eng.MinAgreement(c, tsk.Procs)
	if err != nil {
		return CrossResult{}, err
	}
	res := CrossResult{
		Collection: c.String(),
		Procs:      tsk.Procs,
		K:          tsk.K,
		Solvable:   ma <= tsk.K,
	}
	target := task.KSetAgreement{N: tsk.Procs, K: tsk.K}
	if res.Solvable {
		alloc, err := eng.Allocate(c, tsk.Procs)
		if err != nil {
			return CrossResult{}, err
		}
		name := fmt.Sprintf("%d-procs %d-SA from %s", tsk.Procs, tsk.K, c.String())
		proto, err := WitnessProtocol(alloc, name)
		if err != nil {
			return CrossResult{}, err
		}
		sys, err := proto.System(distinctInputs(tsk.Procs))
		if err != nil {
			return CrossResult{}, err
		}
		rep, err := explore.Check(sys, target, explore.Options{
			Workers:   opts.Workers,
			MaxStates: opts.MaxStates,
			Obs:       opts.Obs,
			Events:    opts.Events,
			Store:     opts.Store,
		})
		if err != nil {
			return CrossResult{}, fmt.Errorf("collections: crosscheck %s: %w", name, err)
		}
		res.States = rep.States
		res.Confirmed = rep.Solved()
		res.Detail = fmt.Sprintf("witness protocol (%d groups, %d register procs) explored %d states",
			len(alloc.Groups), alloc.Registers, rep.States)
	} else {
		fam := falsifyFamily(c)
		inputs := distinctInputs(tsk.Procs)
		reversed := make([]value.Value, len(inputs))
		for i, v := range inputs {
			reversed[len(inputs)-1-i] = v
		}
		rep, err := enumerate.FalsifySymmetric(fam, target, [][]value.Value{inputs, reversed}, enumerate.SweepOptions{
			Workers:  opts.Workers,
			Symmetry: opts.Symmetry,
			Obs:      opts.Obs,
			Events:   opts.Events,
		})
		if err != nil {
			return CrossResult{}, fmt.Errorf("collections: falsify %s: %w", c.String(), err)
		}
		res.States = rep.States
		res.Confirmed = rep.Candidates > 0 && len(rep.Solvers) == 0 && len(rep.Inconclusive) == 0
		res.Detail = fmt.Sprintf("falsified %d candidates (%d solvers, %d inconclusive)",
			rep.Candidates, len(rep.Solvers), len(rep.Inconclusive))
	}
	opts.Obs.Counter("collections.crosschecked").Inc()
	if !res.Confirmed {
		opts.Obs.Counter("collections.crosscheck_failures").Inc()
	}
	return res, nil
}

// CrossValidateMatrix cross-validates every collection in the space at
// every process count 2..maxProcs, on both sides of the verdict
// boundary: at K = MinAgreement (solvable, must check out) and — when
// MinAgreement > 1 — at K = MinAgreement-1 (unsolvable, must falsify).
// It returns every result; callers assert all Confirmed.
func CrossValidateMatrix(eng *Engine, space Space, maxProcs int, opts CrossOptions) ([]CrossResult, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if maxProcs < 2 {
		return nil, fmt.Errorf("collections: matrix needs maxProcs >= 2, got %d", maxProcs)
	}
	var out []CrossResult
	for i := 0; i < space.Count(); i++ {
		c, err := space.At(i)
		if err != nil {
			return nil, err
		}
		for procs := 2; procs <= maxProcs; procs++ {
			ma, err := eng.MinAgreement(c, procs)
			if err != nil {
				return nil, err
			}
			r, err := CrossValidate(eng, c, Task{Procs: procs, K: ma}, opts)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			if ma > 1 {
				r, err := CrossValidate(eng, c, Task{Procs: procs, K: ma - 1}, opts)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

package collections

import "fmt"

// Space is a bounded collection family: every size-Size multiset over
// the Menu of types, enumerated in a fixed order (nondecreasing menu
// index, lexicographic) so that every process that builds the same
// Space agrees on every collection index — the sweep and cluster
// layers' shared index space, the direct analogue of
// internal/enumerate's candidate families.
type Space struct {
	// Menu lists the distinct types collections draw from.
	Menu []Type `json:"menu"`
	// Size is the multiset size.
	Size int `json:"size"`
}

// Validate rejects empty or duplicate-entry menus, non-positive
// sizes, and spaces whose Count overflows.
func (s Space) Validate() error {
	if len(s.Menu) == 0 {
		return fmt.Errorf("collections: space needs a non-empty menu")
	}
	if s.Size < 1 {
		return fmt.Errorf("collections: space size must be >= 1, got %d", s.Size)
	}
	seen := make(map[Type]bool, len(s.Menu))
	for i, t := range s.Menu {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("collections: menu entry %d: %w", i, err)
		}
		if seen[t] {
			return fmt.Errorf("collections: menu entry %d duplicates %s", i, t.Name())
		}
		seen[t] = true
	}
	if _, err := multisets(len(s.Menu), s.Size); err != nil {
		return fmt.Errorf("collections: space too large: %w", err)
	}
	return nil
}

// Count returns the number of collections in the space,
// C(len(Menu)+Size-1, Size). Validate first; an invalid space counts
// as empty.
func (s Space) Count() int {
	n, err := multisets(len(s.Menu), s.Size)
	if err != nil {
		return 0
	}
	return n
}

// At unranks collection i: the i-th size-Size multiset over the menu
// in enumeration order.
func (s Space) At(i int) (Collection, error) {
	if err := s.Validate(); err != nil {
		return Collection{}, err
	}
	total := s.Count()
	if i < 0 || i >= total {
		return Collection{}, fmt.Errorf("collections: index %d outside space [0,%d)", i, total)
	}
	types := make([]Type, 0, s.Size)
	j, rank := 0, i
	for r := s.Size; r > 0; r-- {
		for {
			// Multisets of size r whose least entry is j: one copy of j
			// plus any size-(r-1) multiset over entries >= j.
			c, err := multisets(len(s.Menu)-j, r-1)
			if err != nil {
				return Collection{}, err
			}
			if rank < c {
				break
			}
			rank -= c
			j++
		}
		types = append(types, s.Menu[j])
	}
	return Collection{Types: types}, nil
}

// multisets returns C(m+r-1, r), the number of size-r multisets over
// m items, with overflow detection.
func multisets(m, r int) (int, error) {
	if m < 0 || r < 0 {
		return 0, fmt.Errorf("negative multiset parameters m=%d r=%d", m, r)
	}
	if m == 0 {
		if r == 0 {
			return 1, nil
		}
		return 0, nil
	}
	// C(m+r-1, r) built incrementally; each step multiplies before it
	// divides exactly, so overflow is checked on the product.
	out := 1
	for i := 1; i <= r; i++ {
		num := m + i - 1
		if out > (1<<60)/num {
			return 0, fmt.Errorf("multiset count C(%d+%d-1,%d) overflows", m, r, r)
		}
		out = out * num / i
	}
	return out, nil
}

package collections

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"setagree/internal/obs"
	"setagree/internal/power"
)

// Task is the verdict question a sweep asks of every collection: can
// Procs processes solve K-set agreement?
type Task struct {
	// Procs is the process count.
	Procs int `json:"procs"`
	// K is the agreement bound.
	K int `json:"k"`
}

// Validate rejects degenerate tasks.
func (t Task) Validate() error {
	if t.Procs < 1 {
		return fmt.Errorf("collections: task needs procs >= 1, got %d", t.Procs)
	}
	if t.K < 1 {
		return fmt.Errorf("collections: task needs k >= 1, got %d", t.K)
	}
	return nil
}

// SweepOptions configures a collection sweep. The zero value works.
type SweepOptions struct {
	// Workers is the decision parallelism (0 = GOMAXPROCS). The report
	// is byte-identical at any worker count.
	Workers int
	// Levels is the power-prefix length rendered per row (0 = 4).
	Levels int
	// DisablePrune ablates dominance pruning: the DP runs over raw
	// multisets and the memo loses cross-collection sharing. Verdicts
	// and report bytes are unchanged — pinned by tests.
	DisablePrune bool
	// Engine is the (shared) decision engine; nil uses a fresh one.
	Engine *Engine
	// Obs receives collections.* counters; Events the collections.*
	// event stream.
	Obs    *obs.Sink
	Events *obs.Emitter
	// OnProgress, when set, runs after every decided collection (any
	// worker) — the cluster layer's pacing hook.
	OnProgress func(Progress)
	// Ctx cancels the sweep (nil = background).
	Ctx context.Context
}

// Progress is one decided collection, as seen by OnProgress.
type Progress struct {
	// Index is the decided collection's global index.
	Index int
	// Decided and Pruned are running counts for this CheckRange call.
	Decided, Pruned int
}

func (o SweepOptions) fill() SweepOptions {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Levels < 1 {
		o.Levels = 4
	}
	if o.Engine == nil {
		o.Engine = NewEngine()
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// Row is one collection's verdict.
type Row struct {
	// Index is the collection's index in the space.
	Index int `json:"index"`
	// Collection and Canonical render the raw and pruned multisets.
	Collection string `json:"collection"`
	Canonical  string `json:"canonical"`
	// Power is the collection's power-sequence prefix (Levels entries).
	Power string `json:"power"`
	// MinAgreement is the least K Procs processes reach.
	MinAgreement int `json:"min_agreement"`
	// Solvable reports MinAgreement <= Task.K.
	Solvable bool `json:"solvable"`
	// Pruned reports that dominance pruning spared this collection a
	// fresh evaluation: its canonical form differs from the raw
	// multiset, or an earlier collection shares the canonical form. The
	// flag is a function of the space alone — not of scheduling, worker
	// count, or whether pruning was enabled — so reports stay
	// byte-identical across all of those.
	Pruned bool `json:"pruned"`
}

// RangeReport is the outcome of deciding collections [Lo, Hi) of a
// space: a pure function of (space, task, levels, range), so disjoint
// ranges merge deterministically. It doubles as the cluster's
// collections-shard result document.
type RangeReport struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Pruned and Solvable count rows in the range with the flag set.
	Pruned   int `json:"pruned"`
	Solvable int `json:"solvable"`
	// Rows holds per-collection verdicts in index order.
	Rows []Row `json:"rows"`
}

// Report is the sweep's canonical document.
type Report struct {
	// Space and Task echo the sweep parameters.
	Space Space `json:"space"`
	Task  Task  `json:"task"`
	// Levels is the rendered power-prefix length.
	Levels int `json:"levels"`
	// Collections is the space size; Pruned and Solvable count rows
	// with the flag set.
	Collections int `json:"collections"`
	Pruned      int `json:"pruned"`
	Solvable    int `json:"solvable"`
	// Rows holds every collection's verdict in index order.
	Rows []Row `json:"rows"`
}

// Render marshals the canonical byte form: indented JSON with a
// trailing newline, byte-identical for equal reports.
func (r *Report) Render() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// CheckRange decides collections [lo, hi) of the space. Verdicts are
// identical to a full Sweep's (same engine DP, same options), so
// deciding a partition of [0, Count()) range by range and merging with
// MergeRanges reproduces the full sweep's Report exactly.
func CheckRange(space Space, tsk Task, lo, hi int, opts SweepOptions) (*RangeReport, error) {
	opts = opts.fill()
	rr, err := checkRange(space, tsk, lo, hi, opts)
	if err != nil {
		opts.Events.Emit("collections.error", obs.Fields{"error": err.Error()})
		return nil, err
	}
	opts.Events.Emit("collections.done", obs.Fields{
		"lo": rr.Lo, "hi": rr.Hi,
		"decided": rr.Hi - rr.Lo, "pruned": rr.Pruned, "solvable": rr.Solvable,
	})
	return rr, nil
}

func checkRange(space Space, tsk Task, lo, hi int, opts SweepOptions) (*RangeReport, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := tsk.Validate(); err != nil {
		return nil, err
	}
	total := space.Count()
	if lo < 0 || hi > total || lo > hi {
		return nil, fmt.Errorf("collections: range [%d,%d) outside space [0,%d)", lo, hi, total)
	}
	// First appearance of each canonical form among collections
	// [0, hi): makes Row.Pruned a function of the space, independent of
	// shard boundaries and scheduling.
	firstSeen := make(map[string]int)
	for i := 0; i < hi; i++ {
		c, err := space.At(i)
		if err != nil {
			return nil, err
		}
		key := c.Canonical().Key()
		if _, ok := firstSeen[key]; !ok {
			firstSeen[key] = i
		}
	}

	rows := make([]Row, hi-lo)
	var (
		next            atomic.Int64
		decided, pruned atomic.Int64
		wg              sync.WaitGroup
		errMu           sync.Mutex
		firstErr        error
	)
	next.Store(int64(lo))
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= hi {
					return
				}
				if err := opts.Ctx.Err(); err != nil {
					fail(err)
					return
				}
				row, err := decideOne(space, tsk, i, firstSeen, opts)
				if err != nil {
					fail(err)
					return
				}
				rows[i-lo] = row
				d := decided.Add(1)
				p := pruned.Load()
				if row.Pruned {
					p = pruned.Add(1)
					opts.Obs.Counter("collections.pruned").Inc()
				}
				opts.Obs.Counter("collections.decided").Inc()
				if row.Solvable {
					opts.Obs.Counter("collections.solvable").Inc()
				}
				opts.Events.Emit("collections.progress", obs.Fields{
					"index": i, "decided": d, "pruned": p,
				})
				if opts.OnProgress != nil {
					opts.OnProgress(Progress{Index: i, Decided: int(d), Pruned: int(p)})
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rr := &RangeReport{Lo: lo, Hi: hi, Rows: rows}
	for _, row := range rows {
		if row.Pruned {
			rr.Pruned++
		}
		if row.Solvable {
			rr.Solvable++
		}
	}
	return rr, nil
}

func decideOne(space Space, tsk Task, i int, firstSeen map[string]int, opts SweepOptions) (Row, error) {
	c, err := space.At(i)
	if err != nil {
		return Row{}, err
	}
	canon := c.Canonical()
	ma, err := opts.Engine.minAgreement(c, tsk.Procs, !opts.DisablePrune, opts.Obs)
	if err != nil {
		return Row{}, err
	}
	seq, err := opts.Engine.powerSeq(c, !opts.DisablePrune)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Index:        i,
		Collection:   c.String(),
		Canonical:    canon.String(),
		Power:        power.Format(seq, opts.Levels),
		MinAgreement: ma,
		Solvable:     ma <= tsk.K,
		Pruned:       canon.Key() != c.Key() || firstSeen[canon.Key()] < i,
	}, nil
}

// Sweep decides every collection in the space and returns the
// canonical Report — a pure function of (space, task, levels),
// byte-identical at any worker count and with pruning on or off.
func Sweep(space Space, tsk Task, opts SweepOptions) (*Report, error) {
	opts = opts.fill()
	rr, err := CheckRange(space, tsk, 0, space.Count(), opts)
	if err != nil {
		return nil, err
	}
	return MergeRanges(space, tsk, opts.Levels, []*RangeReport{rr})
}

// MergeRanges assembles range reports tiling [0, Count()) into the
// canonical Report. Exact duplicate ranges (cluster retries, steals)
// collapse; gaps, overlaps, and out-of-range shards are errors.
func MergeRanges(space Space, tsk Task, levels int, ranges []*RangeReport) (*Report, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := tsk.Validate(); err != nil {
		return nil, err
	}
	if levels < 1 {
		levels = 4
	}
	total := space.Count()
	sorted := append([]*RangeReport(nil), ranges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo {
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].Hi < sorted[j].Hi
	})
	rep := &Report{Space: space, Task: tsk, Levels: levels, Collections: total, Rows: []Row{}}
	want := 0
	for i, rr := range sorted {
		if i > 0 && rr.Lo == sorted[i-1].Lo && rr.Hi == sorted[i-1].Hi {
			// Duplicate shard: results are deterministic, drop it.
			continue
		}
		if rr.Lo != want {
			if rr.Lo < want {
				return nil, fmt.Errorf("collections: merge: shard [%d,%d) overlaps previous end %d", rr.Lo, rr.Hi, want)
			}
			return nil, fmt.Errorf("collections: merge: gap [%d,%d) not covered", want, rr.Lo)
		}
		if rr.Hi > total {
			return nil, fmt.Errorf("collections: merge: shard [%d,%d) outside space [0,%d)", rr.Lo, rr.Hi, total)
		}
		if len(rr.Rows) != rr.Hi-rr.Lo {
			return nil, fmt.Errorf("collections: merge: shard [%d,%d) carries %d rows", rr.Lo, rr.Hi, len(rr.Rows))
		}
		rep.Rows = append(rep.Rows, rr.Rows...)
		rep.Pruned += rr.Pruned
		rep.Solvable += rr.Solvable
		want = rr.Hi
	}
	if want != total {
		return nil, fmt.Errorf("collections: merge: shards cover [0,%d) of [0,%d)", want, total)
	}
	return rep, nil
}

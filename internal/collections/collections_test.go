package collections

import (
	"bytes"
	"testing"
	"testing/quick"

	"setagree/internal/power"
)

// menuForTests mixes finite, unbounded, and register-equivalent types.
var menuForTests = []Type{
	{N: 2, K: 1},              // 2-consensus
	{N: 3, K: 2},              // (3,2)-SA
	{N: power.Infinite, K: 2}, // unbounded 2-SA
	{N: 1, K: 1},              // register-equivalent
}

// bruteCost is the reference decision procedure: minimize over every
// per-type group size directly (the DP must agree).
func bruteCost(types []Type, procs int) int {
	if len(types) == 0 {
		return procs
	}
	t, rest := types[0], types[1:]
	best := bruteCost(rest, procs)
	for a := 1; a <= procs; a++ {
		if c := t.minAgreement(a) + bruteCost(rest, procs-a); c < best {
			best = c
		}
	}
	return best
}

func TestEngineMatchesBruteForce(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	colls := [][]Type{
		{},
		{{N: 2, K: 1}},
		{{N: 3, K: 2}},
		{{N: power.Infinite, K: 2}},
		{{N: 2, K: 1}, {N: 3, K: 2}},
		{{N: 2, K: 1}, {N: power.Infinite, K: 3}},
		{{N: 4, K: 1}, {N: 2, K: 1}, {N: 3, K: 2}},
		{{N: 1, K: 1}, {N: 2, K: 2}}, // mutually dominating pair
	}
	for _, types := range colls {
		c := Collection{Types: types}
		for procs := 0; procs <= 7; procs++ {
			want := procs
			if procs > 0 {
				want = bruteCost(types, procs)
			}
			got, err := eng.MinAgreement(c, procs)
			if err != nil {
				t.Fatalf("%s procs=%d: %v", c, procs, err)
			}
			if got != want {
				t.Errorf("%s procs=%d: MinAgreement = %d, brute force = %d", c, procs, got, want)
			}
			raw, err := eng.MinAgreementUnpruned(c, procs)
			if err != nil {
				t.Fatalf("%s procs=%d unpruned: %v", c, procs, err)
			}
			if raw != got {
				t.Errorf("%s procs=%d: pruned %d != unpruned %d", c, procs, got, raw)
			}
		}
	}
}

// TestSingletonPowerEqualsSA is the anchoring property: a collection
// holding one type (in unbounded supply, like power.SA assumes) has
// exactly that type's power sequence.
func TestSingletonPowerEqualsSA(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw % 6) // 0 = Infinite
		k := 1 + int(kRaw%4)
		if n != power.Infinite && n < 1 {
			n = 1
		}
		seq, err := eng.Power(Collection{Types: []Type{{N: n, K: k}}})
		if err != nil {
			t.Fatalf("(%d,%d): %v", n, k, err)
		}
		want := power.SA(n, k)
		for j := 1; j <= 6; j++ {
			if got, w := seq.At(j), want.At(j); got != w {
				t.Errorf("(%d,%d): collection At(%d) = %d, power.SA = %d", n, k, j, got, w)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPowerMonotoneUnderAddingObjects: extending a collection never
// lowers its power or raises its agreement cost.
func TestPowerMonotoneUnderAddingObjects(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	base := Collection{Types: []Type{{N: 2, K: 1}}}
	for _, extra := range menuForTests {
		bigger := Collection{Types: append(append([]Type(nil), base.Types...), extra)}
		for procs := 1; procs <= 6; procs++ {
			a, err := eng.MinAgreement(base, procs)
			if err != nil {
				t.Fatal(err)
			}
			b, err := eng.MinAgreement(bigger, procs)
			if err != nil {
				t.Fatal(err)
			}
			if b > a {
				t.Errorf("adding %s raised MinAgreement(%d): %d -> %d", extra.Name(), procs, a, b)
			}
		}
		bseq, err := eng.Power(base)
		if err != nil {
			t.Fatal(err)
		}
		gseq, err := eng.Power(bigger)
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j <= 5; j++ {
			bv, gv := bseq.At(j), gseq.At(j)
			if bv == power.Infinite && gv != power.Infinite {
				t.Errorf("adding %s lost infinite power at level %d", extra.Name(), j)
			}
			if bv != power.Infinite && gv != power.Infinite && gv < bv {
				t.Errorf("adding %s lowered At(%d): %d -> %d", extra.Name(), j, bv, gv)
			}
		}
	}
}

func TestCanonicalDropsDominated(t *testing.T) {
	t.Parallel()
	c := Collection{Types: []Type{
		{N: 1, K: 1}, {N: 2, K: 1}, {N: 2, K: 1}, {N: 2, K: 2},
	}}
	canon := c.Canonical()
	// (2,1) dominates (1,1); duplicates collapse; (1,1) and (2,2) are
	// register-equivalent so only the dominating 2-consensus survives.
	if got, want := canon.Key(), "2,1"; got != want {
		t.Fatalf("Canonical = %s (key %q), want key %q", canon, got, want)
	}
	// Mutual equivalence without a strict dominator keeps the first.
	eq := Collection{Types: []Type{{N: 2, K: 2}, {N: 1, K: 1}}}
	if got, want := eq.Canonical().Key(), "1,1"; got != want {
		t.Fatalf("equivalence class kept %q, want %q", got, want)
	}
}

func TestAllocateWitnessesMinAgreement(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	c := Collection{Types: []Type{{N: 2, K: 1}, {N: 3, K: 2}}}
	for procs := 1; procs <= 6; procs++ {
		ma, err := eng.MinAgreement(c, procs)
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := eng.Allocate(c, procs)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.Cost != ma {
			t.Errorf("procs=%d: Allocate cost %d != MinAgreement %d", procs, alloc.Cost, ma)
		}
		total, sum := alloc.Registers, alloc.Registers
		for _, g := range alloc.Groups {
			if g.Procs < 1 {
				t.Errorf("procs=%d: empty group %s", procs, g.Type.Name())
			}
			total += g.Procs
			sum += g.Type.minAgreement(g.Procs)
		}
		if total != procs {
			t.Errorf("procs=%d: allocation covers %d processes", procs, total)
		}
		if sum != alloc.Cost {
			t.Errorf("procs=%d: group levels sum to %d, cost %d", procs, sum, alloc.Cost)
		}
	}
}

func TestSpaceEnumeration(t *testing.T) {
	t.Parallel()
	s := Space{Menu: menuForTests, Size: 2}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// C(4+2-1, 2) = 10.
	if got := s.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	seen := map[string]bool{}
	for i := 0; i < s.Count(); i++ {
		c, err := s.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Types) != 2 {
			t.Fatalf("At(%d) = %s: wrong size", i, c)
		}
		key := c.Key()
		if seen[key] {
			t.Fatalf("At(%d) repeats multiset %s", i, c)
		}
		seen[key] = true
	}
	if _, err := s.At(10); err == nil {
		t.Fatal("At(Count) accepted")
	}
	if _, err := s.At(-1); err == nil {
		t.Fatal("At(-1) accepted")
	}
}

func TestSpaceValidation(t *testing.T) {
	t.Parallel()
	cases := []Space{
		{Menu: nil, Size: 1},
		{Menu: []Type{{N: 2, K: 1}}, Size: 0},
		{Menu: []Type{{N: 2, K: 1}, {N: 2, K: 1}}, Size: 1},
		{Menu: []Type{{N: 2, K: 0}}, Size: 1},
		{Menu: []Type{{N: -3, K: 1}}, Size: 1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid space accepted", i)
		}
	}
}

func testSpace() (Space, Task) {
	return Space{Menu: menuForTests, Size: 2}, Task{Procs: 4, K: 2}
}

// TestSweepDeterministic pins the headline invariant: sweep reports
// are byte-identical at any worker count, with dominance pruning on or
// off, and across any shard partition.
func TestSweepDeterministic(t *testing.T) {
	t.Parallel()
	space, tsk := testSpace()
	var baseline []byte
	for _, cfg := range []struct {
		name    string
		workers int
		prune   bool
	}{
		{"w1-prune", 1, true},
		{"w4-prune", 4, true},
		{"w1-noprune", 1, false},
		{"w4-noprune", 4, false},
	} {
		rep, err := Sweep(space, tsk, SweepOptions{Workers: cfg.workers, DisablePrune: !cfg.prune})
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		buf, err := rep.Render()
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = buf
			continue
		}
		if !bytes.Equal(buf, baseline) {
			t.Errorf("%s: report bytes differ from baseline", cfg.name)
		}
	}

	// Sharded: any tiling of the index space merges to the same bytes.
	for _, cut := range []int{1, 3, 7} {
		var ranges []*RangeReport
		for lo := 0; lo < space.Count(); lo += cut {
			hi := min(lo+cut, space.Count())
			rr, err := CheckRange(space, tsk, lo, hi, SweepOptions{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			ranges = append(ranges, rr)
		}
		rep, err := MergeRanges(space, tsk, 0, ranges)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := rep.Render()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, baseline) {
			t.Errorf("cut=%d: merged report differs from full sweep", cut)
		}
	}
}

func TestSweepVerdicts(t *testing.T) {
	t.Parallel()
	space, tsk := testSpace()
	rep, err := Sweep(space, tsk, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collections != 10 || len(rep.Rows) != 10 {
		t.Fatalf("report covers %d/%d collections", rep.Collections, len(rep.Rows))
	}
	if rep.Pruned == 0 {
		t.Error("no pruned rows in a space with dominated and duplicate collections")
	}
	eng := NewEngine()
	for _, row := range rep.Rows {
		c, err := space.At(row.Index)
		if err != nil {
			t.Fatal(err)
		}
		ma, err := eng.MinAgreement(c, tsk.Procs)
		if err != nil {
			t.Fatal(err)
		}
		if row.MinAgreement != ma {
			t.Errorf("row %d (%s): MinAgreement %d, engine says %d", row.Index, row.Collection, row.MinAgreement, ma)
		}
		if row.Solvable != (ma <= tsk.K) {
			t.Errorf("row %d (%s): Solvable=%v with MinAgreement %d, K %d", row.Index, row.Collection, row.Solvable, ma, tsk.K)
		}
	}
}

func TestMergeRangesValidation(t *testing.T) {
	t.Parallel()
	space, tsk := testSpace()
	full, err := CheckRange(space, tsk, 0, space.Count(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := CheckRange(space, tsk, 0, 4, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CheckRange(space, tsk, 4, space.Count(), SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeRanges(space, tsk, 0, []*RangeReport{a, b, a}); err != nil {
		t.Errorf("duplicate shard rejected: %v", err)
	}
	if _, err := MergeRanges(space, tsk, 0, []*RangeReport{a}); err == nil {
		t.Error("gap accepted")
	}
	if _, err := MergeRanges(space, tsk, 0, []*RangeReport{full, a}); err == nil {
		t.Error("overlap accepted")
	}
	bad := *a
	bad.Rows = bad.Rows[:1]
	if _, err := MergeRanges(space, tsk, 0, []*RangeReport{&bad, b}); err == nil {
		t.Error("truncated shard accepted")
	}
}

func TestSweepRejectsBadInputs(t *testing.T) {
	t.Parallel()
	space, _ := testSpace()
	if _, err := Sweep(space, Task{Procs: 0, K: 1}, SweepOptions{}); err == nil {
		t.Error("degenerate task accepted")
	}
	if _, err := Sweep(Space{Menu: []Type{{N: 0, K: 0}}, Size: 1}, Task{Procs: 2, K: 1}, SweepOptions{}); err == nil {
		t.Error("invalid menu accepted")
	}
	if _, err := CheckRange(space, Task{Procs: 2, K: 1}, 3, 99, SweepOptions{}); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

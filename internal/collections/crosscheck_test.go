package collections

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/obs"
	"setagree/internal/power"
)

// TestCrossValidateMatrix is the acceptance matrix: every decision-
// procedure verdict for the reference menu at N <= 4 is confirmed by
// the model checker — solvable verdicts constructively (the witness
// protocol checks out), unsolvable ones by exhaustive falsification of
// the depth-1 symmetric family.
func TestCrossValidateMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("model-checking matrix")
	}
	t.Parallel()
	eng := NewEngine()
	space := Space{
		Menu: []Type{{N: 2, K: 1}, {N: 3, K: 2}, {N: power.Infinite, K: 2}},
		Size: 1,
	}
	sink := obs.NewSink()
	results, err := CrossValidateMatrix(eng, space, 4, CrossOptions{
		Symmetry: explore.SymmetryIDs,
		Obs:      sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("empty matrix")
	}
	solvable, unsolvable := 0, 0
	for _, r := range results {
		if !r.Confirmed {
			t.Errorf("%s procs=%d K=%d solvable=%v NOT confirmed: %s",
				r.Collection, r.Procs, r.K, r.Solvable, r.Detail)
		}
		if r.Solvable {
			solvable++
		} else {
			unsolvable++
		}
	}
	if solvable == 0 || unsolvable == 0 {
		t.Errorf("matrix exercised only one verdict side: %d solvable, %d unsolvable", solvable, unsolvable)
	}
	if got := sink.Counter("collections.crosschecked").Load(); got != int64(len(results)) {
		t.Errorf("collections.crosschecked = %d, want %d", got, len(results))
	}
	if got := sink.Counter("collections.crosscheck_failures").Load(); got != 0 {
		t.Errorf("collections.crosscheck_failures = %d", got)
	}
}

// TestCrossValidateMixedCollection drives a genuinely mixed multiset
// through both verdict sides at N = 4.
func TestCrossValidateMixedCollection(t *testing.T) {
	if testing.Short() {
		t.Skip("model-checking")
	}
	t.Parallel()
	eng := NewEngine()
	c := Collection{Types: []Type{{N: 2, K: 1}, {N: 3, K: 2}}}
	ma, err := eng.MinAgreement(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ma < 2 {
		t.Fatalf("unexpected MinAgreement %d for %s at 4 procs", ma, c)
	}
	pos, err := CrossValidate(eng, c, Task{Procs: 4, K: ma}, CrossOptions{Symmetry: explore.SymmetryIDs})
	if err != nil {
		t.Fatal(err)
	}
	if !pos.Solvable || !pos.Confirmed {
		t.Errorf("solvable side: %+v", pos)
	}
	neg, err := CrossValidate(eng, c, Task{Procs: 4, K: ma - 1}, CrossOptions{Symmetry: explore.SymmetryIDs})
	if err != nil {
		t.Fatal(err)
	}
	if neg.Solvable || !neg.Confirmed {
		t.Errorf("unsolvable side: %+v", neg)
	}
}

// TestWitnessProtocolShape pins the composition rules: instance
// counts, program counts, and the register fallback.
func TestWitnessProtocolShape(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	alloc, err := eng.Allocate(Collection{Types: []Type{{N: 2, K: 1}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := WitnessProtocol(alloc, "t")
	if err != nil {
		t.Fatal(err)
	}
	if proto.Procs() != 4 {
		t.Errorf("witness has %d programs, want 4", proto.Procs())
	}
	// 4 processes on 2-consensus: two instances, no registers.
	if len(proto.Objects) != 2 {
		t.Errorf("witness has %d objects, want 2 consensus instances", len(proto.Objects))
	}

	// Registers-only allocation still builds a runnable system.
	empty, err := eng.Allocate(Collection{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err = WitnessProtocol(empty, "regs")
	if err != nil {
		t.Fatal(err)
	}
	if proto.Procs() != 3 || len(proto.Objects) != 1 {
		t.Errorf("register witness: %d programs, %d objects", proto.Procs(), len(proto.Objects))
	}
}

// Package collections decides K-set-agreement solvability for
// *collections* of set-agreement object types, the generalization of
// internal/power from single objects to multisets (ROADMAP item 4(a);
// Delporte-Gallet–Fauconnier–Gafni–Kuznetsov, "Set-Consensus
// Collections are Decidable").
//
// A Collection is a multiset of (n,k)-SA types, each available in
// unbounded supply, plus read/write registers (always available). N
// processes partitioned into groups, one group per type plus a
// register-only remainder, decide within
//
//	a_0 + Σ_i MinAgreement(n_i, k_i, a_i)
//
// distinct values (a_0 processes on registers decide their own
// inputs; a group of a_i processes on type i reaches its
// Chaudhuri–Reiners level). By the set-consensus partial order this
// partitioned strategy is optimal, so the collection's agreement power
// is the minimum of that sum over all partitions — a small dynamic
// program (one fold per type; folding a type twice never helps because
// MinAgreement is subadditive in the process count). The Engine
// memoizes cost tables across collections and prunes dominated types
// (see dominates) before evaluating; pruning is a pure speedup, never
// a verdict change, and the sweep layer (sweep.go) pins that down to
// byte-identical reports.
package collections

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/power"
)

// Type names one (n,k)-SA object type. N == power.Infinite selects
// the unbounded-participation object (the paper's k-SA).
type Type struct {
	// N is the process bound (power.Infinite for unbounded).
	N int `json:"n"`
	// K is the agreement bound.
	K int `json:"k"`
}

// Validate rejects parameters that do not name an SA object; the
// error wraps power.ErrParam.
func (t Type) Validate() error { return power.ValidateSA(t.N, t.K) }

// Name renders the type like the objects package ("(3,2)-SA", "2-SA").
func (t Type) Name() string { return objects.SetAgreement{N: t.N, K: t.K}.Name() }

func (t Type) seq() power.Sequence { return power.SA(t.N, t.K) }

// effN orders unbounded types after every finite one.
func (t Type) effN() int {
	if t.N == power.Infinite {
		return math.MaxInt
	}
	return t.N
}

func (t Type) less(u Type) bool {
	if t.effN() != u.effN() {
		return t.effN() < u.effN()
	}
	return t.K < u.K
}

// minAgreement is the type's Chaudhuri–Reiners level for a group of
// procs processes (unbounded instance supply is built into the
// formula).
func (t Type) minAgreement(procs int) int { return power.MinAgreement(t.N, t.K, procs) }

// domHorizon bounds the prefix that decides dominance between two
// types. The sequence At(j) = max(j, n*floor(j/k) + min(j mod k, n-1))
// switches between its two branches only while j < (n+k)^2 (beyond
// that the larger-slope branch has won for good); past the horizon
// both sequences are eventually periodic modulo their slopes with
// common period k_a*k_b, which the slope test in dominates settles.
// Unbounded types are constant-then-∞, so their k suffices.
func domHorizon(a, b Type) int {
	base := func(t Type) int {
		if t.N == power.Infinite {
			return t.K
		}
		return (t.N + t.K) * (t.N + t.K)
	}
	h := base(a)
	if hb := base(b); hb > h {
		h = hb
	}
	if a.N != power.Infinite && b.N != power.Infinite {
		h += a.K * b.K
	}
	return h
}

// dominates reports whether a's power sequence is pointwise >= b's at
// every level j >= 1. Equivalently (the sequences are Galois inverses
// of the level formulas): cost_a(p) <= cost_b(p) for every group size
// p, which is what makes dropping b from a collection containing a
// sound — any processes allocated to b can be redirected to a without
// raising the collection's cost (collections.go DP; subadditivity
// covers merging the redirected group with an existing a group).
func dominates(a, b Type) bool {
	if b.N == power.Infinite && a.N != power.Infinite {
		// A finite type is finite at every level; an unbounded one is ∞
		// from level k_b on.
		return false
	}
	if !power.Dominates(a.seq(), b.seq(), domHorizon(a, b)) {
		return false
	}
	if a.N == power.Infinite {
		return true
	}
	// Both finite: beyond the horizon each sequence grows linearly with
	// slope max(n,k)/k per level, so dominance persists iff a's slope
	// is at least b's.
	return max(a.N, a.K)*b.K >= max(b.N, b.K)*a.K
}

// Collection is a multiset of SA types. Registers are always
// available and are not listed.
type Collection struct {
	Types []Type `json:"types"`
}

// Validate rejects collections containing invalid types.
func (c Collection) Validate() error {
	for i, t := range c.Types {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("collections: type %d: %w", i, err)
		}
	}
	return nil
}

// sorted returns the multiset in canonical order (finite types by
// (n, k), unbounded types last by k).
func (c Collection) sorted() []Type {
	ts := append([]Type(nil), c.Types...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].less(ts[j]) })
	return ts
}

// Canonical returns the pruned form: the multiset sorted, with every
// type dominated by another kept type removed. Duplicates collapse
// (a type dominates itself) and of two distinct mutually-dominating
// types (e.g. (1,1)-SA and (2,2)-SA, both register-equivalent) only
// the first in sort order survives. Canonical collections have the
// same cost table — and therefore the same power — as the original.
func (c Collection) Canonical() Collection {
	ts := c.sorted()
	keep := make([]Type, 0, len(ts))
	for i, t := range ts {
		dominated := false
		for j, u := range ts {
			if j == i {
				continue
			}
			if dominates(u, t) && (j < i || !dominates(t, u)) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, t)
		}
	}
	return Collection{Types: keep}
}

// Key is a canonical map key for the multiset (sorted type list).
func (c Collection) Key() string {
	ts := c.sorted()
	var b strings.Builder
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.Itoa(t.N))
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(t.K))
	}
	return b.String()
}

// String renders the multiset like "{(3,2)-SA, 2-SA}"; the empty
// collection (registers only) renders "{}".
func (c Collection) String() string {
	ts := c.sorted()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name()
	}
	return "{" + strings.Join(names, ", ") + "}"
}

// Engine computes collection agreement power, memoizing cost tables
// across calls. The zero value is not usable; call NewEngine. An
// Engine is safe for concurrent use; memoization only shortcuts work,
// it never changes an answer, so concurrent sweeps sharing an engine
// stay deterministic.
type Engine struct {
	mu   sync.Mutex
	memo map[string][]int
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{memo: make(map[string][]int)} }

// costTable returns cost[0..procs] for the type list: cost[p] is the
// least K such that p processes solve K-set agreement with the listed
// types and registers. types must be sorted (the memo key depends on
// order); sink counts collections.memo_hits / collections.memo_misses.
func (e *Engine) costTable(types []Type, procs int, sink *obs.Sink) []int {
	key := Collection{Types: types}.Key()
	e.mu.Lock()
	tbl, ok := e.memo[key]
	e.mu.Unlock()
	if ok && len(tbl) > procs {
		sink.Counter("collections.memo_hits").Inc()
		return tbl
	}
	sink.Counter("collections.memo_misses").Inc()
	tbl = buildCostTable(types, procs)
	e.mu.Lock()
	if prev, ok := e.memo[key]; !ok || len(prev) <= procs {
		e.memo[key] = tbl
	}
	e.mu.Unlock()
	return tbl
}

// buildCostTable runs the partition DP: start from registers alone
// (cost[p] = p) and fold each type in, dp'[p] = min over group sizes
// a <= p of dp[p-a] + MinAgreement(type, a).
func buildCostTable(types []Type, procs int) []int {
	cost := make([]int, procs+1)
	for p := range cost {
		cost[p] = p
	}
	for _, t := range types {
		for p := procs; p >= 1; p-- {
			best := cost[p]
			for a := 1; a <= p; a++ {
				if c := cost[p-a] + t.minAgreement(a); c < best {
					best = c
				}
			}
			cost[p] = best
		}
	}
	return cost
}

// MinAgreement returns the least K such that procs processes solve
// K-set agreement using the collection's objects and registers
// (0 when procs <= 0). Dominated types are pruned first; use
// MinAgreementUnpruned to ablate the pruning.
func (e *Engine) MinAgreement(c Collection, procs int) (int, error) {
	return e.minAgreement(c, procs, true, nil)
}

// MinAgreementUnpruned is MinAgreement without dominance pruning: the
// DP runs over the raw sorted multiset. Exists to pin prune == no
// prune in tests and benchmarks.
func (e *Engine) MinAgreementUnpruned(c Collection, procs int) (int, error) {
	return e.minAgreement(c, procs, false, nil)
}

func (e *Engine) minAgreement(c Collection, procs int, prune bool, sink *obs.Sink) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if procs <= 0 {
		return 0, nil
	}
	types := c.sorted()
	if prune {
		types = c.Canonical().Types
	}
	return e.costTable(types, procs, sink)[procs], nil
}

// Group is one type's share of a witness allocation.
type Group struct {
	// Type is the SA type the group's processes share.
	Type Type
	// Procs is the group size.
	Procs int
}

// Allocation witnesses MinAgreement(c, procs): Registers processes
// decide their own inputs and each group reaches its type's level, for
// Cost distinct decisions in total.
type Allocation struct {
	Groups    []Group
	Registers int
	Cost      int
}

// Allocate reconstructs an optimal partition for procs processes. The
// witness uses only canonical (undominated) types, which the original
// collection contains — cross-validation builds its concrete protocol
// from exactly this allocation.
func (e *Engine) Allocate(c Collection, procs int) (Allocation, error) {
	if err := c.Validate(); err != nil {
		return Allocation{}, err
	}
	if procs <= 0 {
		return Allocation{}, nil
	}
	types := c.Canonical().Types
	// DP with explicit layers so choices can be traced back.
	layers := make([][]int, len(types)+1)
	layers[0] = make([]int, procs+1)
	for p := range layers[0] {
		layers[0][p] = p
	}
	for i, t := range types {
		prev, next := layers[i], make([]int, procs+1)
		for p := 0; p <= procs; p++ {
			best := prev[p]
			for a := 1; a <= p; a++ {
				if v := prev[p-a] + t.minAgreement(a); v < best {
					best = v
				}
			}
			next[p] = best
		}
		layers[i+1] = next
	}
	alloc := Allocation{Cost: layers[len(types)][procs]}
	p := procs
	for i := len(types) - 1; i >= 0; i-- {
		t := types[i]
		chosen := 0
		for a := 1; a <= p; a++ {
			if layers[i][p-a]+t.minAgreement(a) == layers[i+1][p] {
				chosen = a
				break
			}
		}
		if chosen > 0 {
			alloc.Groups = append(alloc.Groups, Group{Type: t, Procs: chosen})
			p -= chosen
		}
	}
	alloc.Registers = p
	// Restore type order (the trace walked backwards).
	for i, j := 0, len(alloc.Groups)-1; i < j; i, j = i+1, j-1 {
		alloc.Groups[i], alloc.Groups[j] = alloc.Groups[j], alloc.Groups[i]
	}
	return alloc, nil
}

// Power returns the collection's set-agreement power sequence: At(j)
// is the largest N for which the collection solves j-set agreement,
// power.Infinite when any number of processes does.
func (e *Engine) Power(c Collection) (power.Sequence, error) {
	return e.powerSeq(c, true)
}

// powerSeq is Power with pruning selectable; the two paths compute
// identical values (canonicalization preserves cost tables), prune
// only picks which cost tables get built and memoized.
func (e *Engine) powerSeq(c Collection, prune bool) (power.Sequence, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	types := c.sorted()
	if prune {
		types = c.Canonical().Types
	}
	return power.New(c.String(), func(j int) int {
		if j < 1 {
			return 0
		}
		for _, t := range types {
			if t.N == power.Infinite && t.K <= j {
				return power.Infinite
			}
		}
		// Finite: cost is monotone in p, so scan up to a bound above
		// which every partition exceeds j. An unbounded type with k > j
		// admits at most j processes within budget j; a finite (n,k)
		// type at most n*(j+1).
		bound := j
		for _, t := range types {
			if t.N == power.Infinite {
				bound += j
			} else {
				bound += t.N * (j + 1)
			}
		}
		tbl := e.costTable(types, bound, nil)
		best := 0
		for p := 0; p <= bound; p++ {
			if tbl[p] <= j {
				best = p
			}
		}
		return best
	}), nil
}

package universal_test

import (
	"errors"
	"sync"
	"testing"

	"setagree/internal/core"
	"setagree/internal/history"
	"setagree/internal/lincheck"
	"setagree/internal/objects"
	"setagree/internal/universal"
	"setagree/internal/value"
)

func TestNewRejectsNondeterministic(t *testing.T) {
	t.Parallel()
	if _, err := universal.New(objects.NewTwoSA(), 2); !errors.Is(err, universal.ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
}

func TestNewRejectsBadN(t *testing.T) {
	t.Parallel()
	if _, err := universal.New(objects.NewQueue(), 0); !errors.Is(err, universal.ErrBadProcess) {
		t.Fatalf("err = %v, want ErrBadProcess", err)
	}
}

func TestHandleRange(t *testing.T) {
	t.Parallel()
	u, err := universal.New(objects.NewQueue(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Handle(0); !errors.Is(err, universal.ErrBadProcess) {
		t.Fatalf("Handle(0): %v", err)
	}
	if _, err := u.Handle(3); !errors.Is(err, universal.ErrBadProcess) {
		t.Fatalf("Handle(3): %v", err)
	}
	if _, err := u.Handle(2); err != nil {
		t.Fatalf("Handle(2): %v", err)
	}
}

// TestSingleProcessQueue drives a universal queue sequentially.
func TestSingleProcessQueue(t *testing.T) {
	t.Parallel()
	u, err := universal.New(objects.NewQueue(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := u.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []value.Value{1, 2, 3} {
		if _, err := h.Apply(value.Enqueue(v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []value.Value{1, 2, 3} {
		got, err := h.Apply(value.Dequeue())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dequeue = %s, want %s", got, want)
		}
	}
}

// TestConcurrentCounterTotal checks a universal fetch&add counter under
// real concurrency: every prior total is handed out exactly once.
func TestConcurrentCounterTotal(t *testing.T) {
	t.Parallel()
	const n, each = 4, 25
	u, err := universal.New(objects.NewCounter(), n)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]value.Value, n)
	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		h, err := u.Handle(p)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *universal.Handle) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v, err := h.Apply(value.FetchAdd(1))
				if err != nil {
					t.Errorf("proc %d: %v", p, err)
					return
				}
				results[p-1] = append(results[p-1], v)
			}
		}(p, h)
	}
	wg.Wait()
	seen := make(map[value.Value]bool)
	for _, rs := range results {
		for _, v := range rs {
			if seen[v] {
				t.Fatalf("prior total %s observed twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != n*each {
		t.Fatalf("%d distinct totals, want %d", len(seen), n*each)
	}
}

// TestConcurrentQueueLinearizable stress-tests a universal queue and
// verifies the recorded history against the queue spec with the
// linearizability checker.
func TestConcurrentQueueLinearizable(t *testing.T) {
	t.Parallel()
	const n, each = 3, 5
	u, err := universal.New(objects.NewQueue(), n)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []history.Event
	var clock int64
	tick := func() int64 {
		mu.Lock()
		defer mu.Unlock()
		clock++
		return clock
	}
	record := func(e history.Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	}

	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		h, err := u.Handle(p)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *universal.Handle) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				op := value.Enqueue(value.Value(p*100 + i))
				if i%2 == 1 {
					op = value.Dequeue()
				}
				inv := tick()
				resp, err := h.Apply(op)
				ret := tick()
				if err != nil {
					t.Errorf("proc %d: %v", p, err)
					return
				}
				record(history.Event{
					Proc: p, Obj: 0, Method: op.Method, Arg: op.Arg, Label: op.Label,
					Resp: resp, Inv: inv, Ret: ret,
				})
			}
		}(p, h)
	}
	wg.Wait()
	h := &history.History{Events: events}
	h.Sort()
	if _, err := lincheck.CheckObject(h, objects.NewQueue()); err != nil {
		t.Fatalf("universal queue history not linearizable: %v", err)
	}
}

// TestUniversalPAC implements the paper's own n-PAC object through the
// universal construction (consensus + registers) and replays the §3
// semantics through it.
func TestUniversalPAC(t *testing.T) {
	t.Parallel()
	u, err := universal.New(core.NewPAC(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := u.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Apply(value.ProposeAt(6, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := h1.Apply(value.Decide(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("universal PAC decide = %s, want 6", got)
	}
	// Orphan decide upsets it, permanently.
	if _, err := h1.Apply(value.Decide(2)); err != nil {
		t.Fatal(err)
	}
	got, err = h1.Apply(value.Decide(2))
	if err != nil {
		t.Fatal(err)
	}
	if got != value.Bottom {
		t.Fatalf("upset universal PAC returned %s, want ⊥", got)
	}
}

// TestReplicasConverge checks that two handles observe one shared
// linearization (state keys agree after both drain the cell list).
func TestReplicasConverge(t *testing.T) {
	t.Parallel()
	u, err := universal.New(objects.NewCounter(), 2)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := u.Handle(1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := u.Handle(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Apply(value.FetchAdd(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Apply(value.FetchAdd(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Apply(value.FetchAdd(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Apply(value.FetchAdd(0)); err != nil {
		t.Fatal(err)
	}
	if h1.State().Key() != h2.State().Key() {
		t.Fatalf("replicas diverged: %s vs %s", h1.State().Key(), h2.State().Key())
	}
}

// TestWaitFreedomBound checks Herlihy's helping bound live. LastCells
// counts replica catch-up plus threading; with a barrier between
// rounds, the backlog entering an Apply is at most n-1 cells (the
// same-round ops decided after ours last round) and the turn-based
// helping threads the announced op within n+1 further cells, so no
// Apply may traverse more than 2n cells.
func TestWaitFreedomBound(t *testing.T) {
	t.Parallel()
	const n, rounds = 4, 25
	u, err := universal.New(objects.NewCounter(), n)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*universal.Handle, n)
	for p := 1; p <= n; p++ {
		h, err := u.Handle(p)
		if err != nil {
			t.Fatal(err)
		}
		handles[p-1] = h
	}
	maxCells := make([]int, n)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for p := 1; p <= n; p++ {
			wg.Add(1)
			go func(p int, h *universal.Handle) {
				defer wg.Done()
				if _, err := h.Apply(value.FetchAdd(1)); err != nil {
					t.Error(err)
					return
				}
				if c := h.LastCells(); c > maxCells[p-1] {
					maxCells[p-1] = c
				}
			}(p, handles[p-1])
		}
		wg.Wait() // round barrier
	}
	for p, c := range maxCells {
		if c > 2*n {
			t.Errorf("process %d traversed %d cells in one Apply, bound is 2n = %d", p+1, c, 2*n)
		}
		if c == 0 {
			t.Errorf("process %d recorded no cell traversal", p+1)
		}
	}
}

// Package universal implements Herlihy's wait-free universal
// construction [10], the motivating result of the paper's introduction:
// instances of any object with consensus number n, together with
// registers, implement *any* deterministic object shared by up to n
// processes.
//
// The construction threads operations onto an unbounded list of cells,
// each guarded by an n-consensus object; processes announce their
// pending operations in single-writer registers and help the process
// whose index matches the next cell number, which yields the classic
// wait-freedom bound (an announced operation is threaded within n
// cells). Every process replays the decided sequence against a local
// replica to compute responses.
//
// The shared state consists solely of n-consensus objects and atomic
// registers (both from this repository's object zoo). Our registers
// hold a single Value, so operation descriptors are interned into an
// append-only table and announced by integer id — a pure encoding of
// the descriptor registers of [10].
package universal

import (
	"errors"
	"fmt"
	"sync"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// Construction failure modes.
var (
	// ErrNondeterministic reports a target spec with nondeterministic
	// transitions; the replicas of a universal object must agree on
	// every transition, so only deterministic objects are universal
	// targets (the paper's Corollary 6.7 concerns exactly the
	// deterministic objects).
	ErrNondeterministic = errors.New("universal: target spec is nondeterministic")
	// ErrBadProcess reports a handle index outside [1, n].
	ErrBadProcess = errors.New("universal: process index out of range")
)

// Universal is a wait-free linearizable implementation of an arbitrary
// deterministic object for N processes, built from N-consensus objects
// and registers. Create handles with Handle; each process uses its own.
type Universal struct {
	target spec.Spec
	n      int

	announce []*spec.Atomic // announce[i]: latest op id of process i+1

	handleMu sync.Mutex
	handles  []*Handle // one replica per process, created on demand

	cellsMu sync.Mutex
	cells   []*spec.Atomic // cell k: n-consensus deciding the k-th op

	opsMu sync.Mutex
	ops   []value.Op // interned operation descriptors, indexed by id
}

// New creates a universal object implementing target for n processes.
func New(target spec.Spec, n int) (*Universal, error) {
	if !spec.Deterministic(target) {
		return nil, fmt.Errorf("%s: %w", target.Name(), ErrNondeterministic)
	}
	if n < 1 {
		return nil, fmt.Errorf("n = %d: %w", n, ErrBadProcess)
	}
	u := &Universal{target: target, n: n}
	u.announce = make([]*spec.Atomic, n)
	for i := range u.announce {
		u.announce[i] = spec.NewAtomic(objects.NewRegister(), nil)
	}
	return u, nil
}

// Target returns the implemented object's specification.
func (u *Universal) Target() spec.Spec { return u.target }

// Procs returns the number of supported processes.
func (u *Universal) Procs() int { return u.n }

// cell returns the k-th consensus object, allocating as needed.
func (u *Universal) cell(k int) *spec.Atomic {
	u.cellsMu.Lock()
	defer u.cellsMu.Unlock()
	for len(u.cells) <= k {
		u.cells = append(u.cells, spec.NewAtomic(objects.NewConsensus(u.n), nil))
	}
	return u.cells[k]
}

// intern registers an operation descriptor and returns its id.
func (u *Universal) intern(op value.Op) value.Value {
	u.opsMu.Lock()
	defer u.opsMu.Unlock()
	u.ops = append(u.ops, op)
	return value.Value(len(u.ops) - 1)
}

// lookup resolves an interned id.
func (u *Universal) lookup(id value.Value) value.Op {
	u.opsMu.Lock()
	defer u.opsMu.Unlock()
	return u.ops[id]
}

// Handle returns process i's (1-based) private access point. Repeated
// calls with the same i return the same handle: a process's replica
// persists for the object's lifetime (a fresh replica would re-propose
// to cells that already served their n proposals).
func (u *Universal) Handle(i int) (*Handle, error) {
	if i < 1 || i > u.n {
		return nil, fmt.Errorf("process %d of %d: %w", i, u.n, ErrBadProcess)
	}
	u.handleMu.Lock()
	defer u.handleMu.Unlock()
	if u.handles == nil {
		u.handles = make([]*Handle, u.n)
	}
	if u.handles[i-1] == nil {
		u.handles[i-1] = &Handle{
			u:       u,
			proc:    i,
			state:   u.target.Init(),
			applied: make(map[value.Value]bool),
		}
	}
	return u.handles[i-1], nil
}

// Handle is one process's replica of the universal object. A Handle is
// not safe for concurrent use (each process owns one); distinct handles
// of one Universal may be used concurrently.
type Handle struct {
	u       *Universal
	proc    int
	state   spec.State
	next    int                         // next cell index to replay
	applied map[value.Value]bool        // op ids already threaded
	resp    map[value.Value]value.Value // op id -> response at its linearization point

	lastCells int // cells traversed by the most recent Apply
}

// Apply performs op on the universal object, wait-free: it announces
// the operation, helps thread cells until the operation is decided into
// one, and returns the response computed by the local replica at that
// point of the linearization.
func (h *Handle) Apply(op value.Op) (value.Value, error) {
	u := h.u
	id := u.intern(op)
	if _, err := u.announce[h.proc-1].Apply(value.Write(id)); err != nil {
		return value.None, err
	}
	h.lastCells = 0
	for !h.applied[id] {
		h.lastCells++
		// Help the process whose turn matches this cell, if it has an
		// unapplied announced operation; otherwise push our own.
		prefer := id
		turn := h.next % u.n
		annID, err := u.announce[turn].Apply(value.Read())
		if err != nil {
			return value.None, err
		}
		if annID != value.None && !h.applied[annID] {
			prefer = annID
		}
		winner, err := u.cell(h.next).Apply(value.Propose(prefer))
		if err != nil {
			return value.None, err
		}
		if winner == value.Bottom {
			// Unreachable: each process proposes at most once per cell,
			// so an n-consensus cell never sees more than n proposals.
			return value.None, fmt.Errorf("cell %d exhausted: %w", h.next, ErrBadProcess)
		}
		if _, err := h.replay(winner); err != nil {
			return value.None, err
		}
	}
	// Replaying recorded the response for our own op.
	return h.responses(id)
}

// replay applies the winner of cell h.next to the local replica.
func (h *Handle) replay(winnerID value.Value) (value.Value, error) {
	op := h.u.lookup(winnerID)
	ts, err := h.u.target.Step(h.state, op)
	if err != nil {
		return value.None, err
	}
	h.state = ts[0].Next
	h.applied[winnerID] = true
	if h.resp == nil {
		h.resp = make(map[value.Value]value.Value)
	}
	h.resp[winnerID] = ts[0].Resp
	h.next++
	return ts[0].Resp, nil
}

// responses returns the recorded response of an applied op.
func (h *Handle) responses(id value.Value) (value.Value, error) {
	v, ok := h.resp[id]
	if !ok {
		return value.None, fmt.Errorf("no recorded response for op %d: %w", id, ErrBadProcess)
	}
	return v, nil
}

// State returns the handle's current replica state (the prefix of the
// linearization this process has replayed).
func (h *Handle) State() spec.State { return h.state }

// LastCells reports how many cells the most recent Apply threaded
// before its operation was decided in — the quantity Herlihy's
// wait-freedom argument bounds: thanks to the turn-based helping, an
// announced operation is threaded within n+1 cells, so LastCells never
// exceeds Procs()+1.
func (h *Handle) LastCells() int { return h.lastCells }

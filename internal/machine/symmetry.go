// Symmetry support: the static analysis that justifies renaming
// process ids in interned process states, and the key-under-permutation
// encoder the symmetry-reduced explorer hashes configurations with.

package machine

import (
	"encoding/binary"
	"fmt"

	"setagree/internal/spec"
	"setagree/internal/value"
)

// SymmetryInfo summarizes how a program constrains the admissible
// permutation group, as computed by AnalyzeSymmetry.
type SymmetryInfo struct {
	// FixedPorts lists the 1-based port labels the program hard-codes
	// as constants (PROPOSE_AT(v, 3) with an immediate 3). Any process
	// running the program touches these ports regardless of its id, so
	// an admissible id permutation must fix the owning processes.
	FixedPorts []int
	// Constants lists every immediate value the program computes with:
	// invoke arguments, set/arithmetic/comparison operands, and decide
	// operands. A value permutation must fix them all, or renaming
	// values would change the program's control flow or outputs.
	Constants []value.Value
	// ValueSafe reports that the program treats values opaquely — no
	// Add, Sub, or JLt — so any sentinel-fixing, constant-fixing value
	// bijection commutes with its local computation. Programs that do
	// arithmetic admit only the identity value permutation.
	ValueSafe bool
}

// AnalyzeSymmetry checks that p confines its process id to the role of
// a port label, which is what makes renaming ids sound: R1 (the pid
// register by the Start convention) must never be written and may be
// read only as the label operand of an invoke whose method addresses a
// port. Then permuting ids both in the pid registers and in the port
// slots of object states is a graph automorphism: the program's local
// computation never observes which id it holds.
//
// A non-nil error pinpoints the instruction that leaks the pid into
// general computation; such programs must be explored unreduced (or
// with the leaking process in its own singleton orbit).
func AnalyzeSymmetry(p *Program) (SymmetryInfo, error) {
	info := SymmetryInfo{ValueSafe: true}
	if p.NumRegs < 2 {
		// No pid register at all: trivially id-oblivious.
		return info, nil
	}
	ports := map[int]bool{}
	consts := map[value.Value]bool{}
	leak := func(i int, what string) error {
		return fmt.Errorf("%s: instr %d: %s: pid register r1 escapes port position: %w",
			p.Name, i, what, ErrProgram)
	}
	// readVal records a value-typed operand read; pid reads are leaks.
	readVal := func(i int, o Operand, what string) error {
		if o.IsReg {
			if o.Reg == RegID1 {
				return leak(i, what)
			}
			return nil
		}
		consts[o.Const] = true
		return nil
	}
	for i, in := range p.Instrs {
		switch in.Kind {
		case InstrInvoke:
			if in.Dst == RegID1 {
				return info, leak(i, "invoke response overwrites r1")
			}
			if in.Method.TakesArg() {
				if err := readVal(i, in.A, "invoke argument reads r1"); err != nil {
					return info, err
				}
			}
			if in.Method.TakesLabel() {
				switch {
				case !in.B.IsReg:
					if in.Method.LabelIsPort() {
						ports[int(in.B.Const)] = true
					}
				case in.Method.LabelIsPort():
					// A port label must be the process's own pid: a port
					// smuggled through a general register cannot be renamed
					// consistently with the id permutation.
					if in.B.Reg != RegID1 {
						return info, leak(i, "port label read from a general register")
					}
				case in.B.Reg == RegID1:
					return info, leak(i, "level label reads r1")
				default:
					// A level computed from a value-carrying register moves
					// with the value permutation while O'_n levels do not;
					// only the identity value permutation is then sound.
					info.ValueSafe = false
				}
			}
		case InstrSet:
			if in.Dst == RegID1 {
				return info, leak(i, "set overwrites r1")
			}
			if err := readVal(i, in.A, "set reads r1"); err != nil {
				return info, err
			}
		case InstrAdd, InstrSub:
			info.ValueSafe = false
			if in.Dst == RegID1 {
				return info, leak(i, "arithmetic overwrites r1")
			}
			if err := readVal(i, in.A, "arithmetic reads r1"); err != nil {
				return info, err
			}
			if err := readVal(i, in.B, "arithmetic reads r1"); err != nil {
				return info, err
			}
		case InstrJEq, InstrJNe:
			if err := readVal(i, in.A, "comparison reads r1"); err != nil {
				return info, err
			}
			if err := readVal(i, in.B, "comparison reads r1"); err != nil {
				return info, err
			}
		case InstrJLt:
			info.ValueSafe = false
			if err := readVal(i, in.A, "ordered comparison reads r1"); err != nil {
				return info, err
			}
			if err := readVal(i, in.B, "ordered comparison reads r1"); err != nil {
				return info, err
			}
		case InstrDecide:
			if err := readVal(i, in.A, "decide reads r1"); err != nil {
				return info, err
			}
		}
	}
	for l := range ports {
		info.FixedPorts = append(info.FixedPorts, l)
	}
	for v := range consts {
		info.Constants = append(info.Constants, v)
	}
	return info, nil
}

// SamePrograms reports whether two programs are interchangeable for
// symmetry purposes: identical code, register file, and name. Pointer
// identity is not required — the protocol library shares *Program
// values between processes, but synthesized systems may not.
func SamePrograms(a, b *Program) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Name != b.Name || a.NumRegs != b.NumRegs || len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			return false
		}
	}
	return true
}

// AppendKeyUnder appends the binary key the permuted process state
// p·ps would produce from AppendKey. The pid register r1 (when
// present) is renamed through the port map and every other register,
// plus the decision, through the value map. The encoding is only
// faithful for programs that pass AnalyzeSymmetry — that analysis is
// what guarantees r1 holds exactly the 1-based pid in every reachable
// state, terminal states included (terminal states retain Regs).
func (ps ProcState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = append(dst, byte(ps.Status))
	dst = binary.AppendUvarint(dst, uint64(ps.PC))
	dst = binary.AppendVarint(dst, int64(p.Val(ps.Decision)))
	dst = binary.AppendUvarint(dst, uint64(len(ps.Regs)))
	for i, r := range ps.Regs {
		if i == int(RegID1) {
			dst = binary.AppendVarint(dst, int64(p.Port(int(r))))
		} else {
			dst = binary.AppendVarint(dst, int64(p.Val(r)))
		}
	}
	return dst
}

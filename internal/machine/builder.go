package machine

import (
	"fmt"
	"strconv"

	"setagree/internal/value"
)

// Builder assembles a Program with symbolic jump labels. Methods append
// instructions; Build resolves labels and validates. The zero value is
// not usable; use NewBuilder.
type Builder struct {
	name    string
	numRegs int
	instrs  []Instr
	labels  map[string]int
	fixups  map[int]string // instruction index -> unresolved label
	err     error
}

// NewBuilder creates a builder for a program with the given register
// file size.
func NewBuilder(name string, numRegs int) *Builder {
	return &Builder{
		name:    name,
		numRegs: numRegs,
		labels:  make(map[string]int),
		fixups:  make(map[int]string),
	}
}

// Label defines a jump label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("%s: duplicate label %q: %w", b.name, name, ErrProgram)
	}
	b.labels[name] = len(b.instrs)
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

func (b *Builder) emitJump(in Instr, label string) *Builder {
	// Numeric labels are absolute instruction indices (the disassembler
	// emits them), anything else is a symbolic label resolved at Build.
	if target, err := strconv.Atoi(label); err == nil {
		in.Target = target
		return b.emit(in)
	}
	b.fixups[len(b.instrs)] = label
	return b.emit(in)
}

// Invoke appends a shared-memory step: dst <- obj.method(arg, label).
// Unused operands (per the method) may be zero Operands.
func (b *Builder) Invoke(dst RegID, obj int, method value.Method, arg, label Operand) *Builder {
	return b.emit(Instr{Kind: InstrInvoke, Dst: dst, Obj: obj, Method: method, A: arg, B: label})
}

// Set appends dst <- a.
func (b *Builder) Set(dst RegID, a Operand) *Builder {
	return b.emit(Instr{Kind: InstrSet, Dst: dst, A: a})
}

// Add appends dst <- a + b.
func (b *Builder) Add(dst RegID, a, bo Operand) *Builder {
	return b.emit(Instr{Kind: InstrAdd, Dst: dst, A: a, B: bo})
}

// Sub appends dst <- a - b.
func (b *Builder) Sub(dst RegID, a, bo Operand) *Builder {
	return b.emit(Instr{Kind: InstrSub, Dst: dst, A: a, B: bo})
}

// Jmp appends an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitJump(Instr{Kind: InstrJmp}, label)
}

// JEq appends "if a == b jump to label".
func (b *Builder) JEq(a, bo Operand, label string) *Builder {
	return b.emitJump(Instr{Kind: InstrJEq, A: a, B: bo}, label)
}

// JNe appends "if a != b jump to label".
func (b *Builder) JNe(a, bo Operand, label string) *Builder {
	return b.emitJump(Instr{Kind: InstrJNe, A: a, B: bo}, label)
}

// JLt appends "if a < b jump to label".
func (b *Builder) JLt(a, bo Operand, label string) *Builder {
	return b.emitJump(Instr{Kind: InstrJLt, A: a, B: bo}, label)
}

// Decide appends the terminal decide of value a.
func (b *Builder) Decide(a Operand) *Builder {
	return b.emit(Instr{Kind: InstrDecide, A: a})
}

// Abort appends the terminal abort action.
func (b *Builder) Abort() *Builder {
	return b.emit(Instr{Kind: InstrAbort})
}

// Halt appends the terminal halt action.
func (b *Builder) Halt() *Builder {
	return b.emit(Instr{Kind: InstrHalt})
}

// Build resolves labels, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("%s: undefined label %q: %w", b.name, label, ErrProgram)
		}
		instrs[idx].Target = target
	}
	p := &Program{Name: b.name, Instrs: instrs, NumRegs: b.numRegs}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for statically known-correct programs (the
// protocol library); it panics on builder misuse.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

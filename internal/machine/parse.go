package machine

import (
	"fmt"
	"strconv"
	"strings"

	"setagree/internal/value"
)

// Parse assembles a textual program. Syntax, one instruction per line:
//
//	; comment (also after instructions)
//	label:
//	  set   rD, <opnd>
//	  add   rD, <opnd>, <opnd>
//	  sub   rD, <opnd>, <opnd>
//	  invoke rD, obj<k>, METHOD[, <arg>][, <label>]
//	  jmp   target
//	  jeq   <opnd>, <opnd>, target
//	  jne   <opnd>, <opnd>, target
//	  jlt   <opnd>, <opnd>, target
//	  decide <opnd>
//	  abort
//	  halt
//
// Operands are registers (r0, r1, ...), decimal integers, or the
// sentinel names NIL, BOT, and DONE. Methods are the value.Method names
// (PROPOSE, PROPOSE_AT, DECIDE, READ, WRITE, PROPOSE_C, PROPOSE_P,
// DECIDE_P, PROPOSE_K).
func Parse(name string, src string, numRegs int) (*Program, error) {
	b := NewBuilder(name, numRegs)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			b.Label(strings.TrimSpace(strings.TrimSuffix(line, ":")))
			continue
		}
		op, rest, _ := strings.Cut(line, " ")
		args := splitArgs(rest)
		if err := parseInstr(b, op, args); err != nil {
			return nil, fmt.Errorf("%s: line %d: %q: %w", name, lineNo+1, raw, err)
		}
	}
	return b.Build()
}

// MustParse is Parse for statically known-correct sources.
func MustParse(name string, src string, numRegs int) *Program {
	p, err := Parse(name, src, numRegs)
	if err != nil {
		panic(err)
	}
	return p
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInstr(b *Builder, op string, args []string) error {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d: %w", op, n, len(args), ErrProgram)
		}
		return nil
	}
	switch strings.ToLower(op) {
	case "set":
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		b.Set(d, a)
	case "add", "sub":
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		bb, err := parseOperand(args[2])
		if err != nil {
			return err
		}
		if op == "add" {
			b.Add(d, a, bb)
		} else {
			b.Sub(d, a, bb)
		}
	case "invoke":
		if len(args) < 3 || len(args) > 5 {
			return fmt.Errorf("invoke wants 3-5 operands, got %d: %w", len(args), ErrProgram)
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		obj, err := parseObj(args[1])
		if err != nil {
			return err
		}
		m, err := parseMethod(args[2])
		if err != nil {
			return err
		}
		rest := args[3:]
		var arg, label Operand
		if m.TakesArg() {
			if len(rest) == 0 {
				return fmt.Errorf("%s needs a value operand: %w", m, ErrProgram)
			}
			if arg, err = parseOperand(rest[0]); err != nil {
				return err
			}
			rest = rest[1:]
		}
		if m.TakesLabel() {
			if len(rest) == 0 {
				return fmt.Errorf("%s needs a label operand: %w", m, ErrProgram)
			}
			if label, err = parseOperand(rest[0]); err != nil {
				return err
			}
			rest = rest[1:]
		}
		if len(rest) != 0 {
			return fmt.Errorf("%s: too many operands: %w", m, ErrProgram)
		}
		b.Invoke(d, obj, m, arg, label)
	case "jmp":
		if err := need(1); err != nil {
			return err
		}
		b.Jmp(args[0])
	case "jeq", "jne", "jlt":
		if err := need(3); err != nil {
			return err
		}
		a, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		bb, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		switch op {
		case "jeq":
			b.JEq(a, bb, args[2])
		case "jne":
			b.JNe(a, bb, args[2])
		default:
			b.JLt(a, bb, args[2])
		}
	case "decide":
		if err := need(1); err != nil {
			return err
		}
		a, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		b.Decide(a)
	case "abort":
		if err := need(0); err != nil {
			return err
		}
		b.Abort()
	case "halt":
		if err := need(0); err != nil {
			return err
		}
		b.Halt()
	default:
		return fmt.Errorf("unknown instruction %q: %w", op, ErrProgram)
	}
	return nil
}

func parseReg(s string) (RegID, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("expected register, got %q: %w", s, ErrProgram)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 63 {
		return 0, fmt.Errorf("bad register %q: %w", s, ErrProgram)
	}
	return RegID(n), nil
}

func parseObj(s string) (int, error) {
	t := strings.ToLower(s)
	if !strings.HasPrefix(t, "obj") {
		return 0, fmt.Errorf("expected objN, got %q: %w", s, ErrProgram)
	}
	n, err := strconv.Atoi(t[3:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad object index %q: %w", s, ErrProgram)
	}
	return n, nil
}

func parseMethod(s string) (value.Method, error) {
	for m := value.MethodRead; m.Valid(); m++ {
		if strings.EqualFold(m.String(), s) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q: %w", s, ErrProgram)
}

func parseOperand(s string) (Operand, error) {
	switch strings.ToUpper(s) {
	case "NIL":
		return C(value.None), nil
	case "BOT", "BOTTOM", "⊥":
		return C(value.Bottom), nil
	case "DONE":
		return C(value.Done), nil
	}
	if s != "" && (s[0] == 'r' || s[0] == 'R') {
		if _, err := strconv.Atoi(s[1:]); err == nil {
			r, err := parseReg(s)
			if err != nil {
				return Operand{}, err
			}
			return R(r), nil
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q: %w", s, ErrProgram)
	}
	return C(value.Value(n)), nil
}

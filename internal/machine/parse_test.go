package machine_test

import (
	"errors"
	"testing"

	"setagree/internal/machine"
	"setagree/internal/value"
)

const alg2OtherSrc = `
; Algorithm 2, non-distinguished process
loop:
  invoke r2, obj0, PROPOSE_AT, r0, r1   ; line 7
  invoke r3, obj0, DECIDE, r1           ; line 8
  jne r3, BOT, win                      ; line 9
  jmp loop
win:
  decide r3
`

func TestParseAlgorithm2(t *testing.T) {
	t.Parallel()
	p, err := machine.Parse("alg2-other", alg2OtherSrc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 5 {
		t.Fatalf("got %d instructions, want 5", len(p.Instrs))
	}
	if p.Instrs[0].Method != value.MethodProposeAt || p.Instrs[1].Method != value.MethodDecide {
		t.Fatalf("methods: %s, %s", p.Instrs[0].Method, p.Instrs[1].Method)
	}
	if p.Instrs[3].Target != 0 {
		t.Fatalf("loop target = %d", p.Instrs[3].Target)
	}
	// Parsed program runs: solo propose/decide decides the input.
	ps, err := machine.Start(p, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	ps, err = machine.Resume(p, ps, value.Done) // propose acknowledged
	if err != nil {
		t.Fatal(err)
	}
	ps, err = machine.Resume(p, ps, 9) // decide returns value
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != machine.StatusDecided || ps.Decision != 9 {
		t.Fatalf("status=%s decision=%s", ps.Status, ps.Decision)
	}
}

func TestParseSentinels(t *testing.T) {
	t.Parallel()
	p, err := machine.Parse("s", "set r0, NIL\nset r1, BOT\ndecide DONE\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].A.Const != value.None || p.Instrs[1].A.Const != value.Bottom {
		t.Fatalf("sentinel constants wrong: %+v", p.Instrs)
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		src  string
	}{
		{"unknown instruction", "frobnicate r0"},
		{"bad register", "set rx, 1"},
		{"bad operand count", "set r0"},
		{"unknown method", "invoke r0, obj0, FLY"},
		{"missing arg", "invoke r0, obj0, WRITE"},
		{"missing label operand", "invoke r0, obj0, DECIDE"},
		{"extra operand", "invoke r0, obj0, READ, r1"},
		{"bad object", "invoke r0, zork0, READ"},
		{"undefined jump", "jmp nowhere"},
		{"bad literal", "set r0, 1x2"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if _, err := machine.Parse("bad", tc.src, 4); !errors.Is(err, machine.ErrProgram) {
				t.Fatalf("err = %v, want ErrProgram", err)
			}
		})
	}
}

// TestParseMatchesBuilder checks that the textual form of Algorithm 2's
// retry loop and the builder-constructed program are step-equivalent.
func TestParseMatchesBuilder(t *testing.T) {
	t.Parallel()
	parsed, err := machine.Parse("alg2-other", alg2OtherSrc, 4)
	if err != nil {
		t.Fatal(err)
	}
	built := machine.NewBuilder("alg2-other", 4).
		Label("loop").
		Invoke(2, 0, value.MethodProposeAt, machine.R(0), machine.R(1)).
		Invoke(3, 0, value.MethodDecide, machine.Operand{}, machine.R(1)).
		JNe(machine.R(3), machine.C(value.Bottom), "win").
		Jmp("loop").
		Label("win").
		Decide(machine.R(3)).
		MustBuild()

	// Drive both through the same response sequence and compare keys.
	pp, err := machine.Start(parsed, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := machine.Start(built, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	resps := []value.Value{value.Done, value.Bottom, value.Done, 1}
	for _, r := range resps {
		if pp.Key() != bp.Key() {
			t.Fatalf("states diverge: %s vs %s", pp.Key(), bp.Key())
		}
		pp, err = machine.Resume(parsed, pp, r)
		if err != nil {
			t.Fatal(err)
		}
		bp, err = machine.Resume(built, bp, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	if pp.Status != machine.StatusDecided || bp.Status != machine.StatusDecided {
		t.Fatalf("both should decide: %s, %s", pp.Status, bp.Status)
	}
}

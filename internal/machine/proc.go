package machine

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"setagree/internal/value"
)

// Status is the lifecycle phase of a process.
type Status uint8

// Process lifecycle phases.
const (
	// StatusPoised means the process is about to perform a shared-memory
	// step (the Invoke reachable from its program counter).
	StatusPoised Status = iota + 1
	// StatusDecided means the process has decided Decision.
	StatusDecided
	// StatusAborted means the process has aborted (n-DAC distinguished
	// process only).
	StatusAborted
	// StatusHalted means the process stopped without deciding.
	StatusHalted
	// StatusCrashed means the process was crashed by the adversary and
	// takes no further steps.
	StatusCrashed
)

// String returns the phase name.
func (s Status) String() string {
	switch s {
	case StatusPoised:
		return "poised"
	case StatusDecided:
		return "decided"
	case StatusAborted:
		return "aborted"
	case StatusHalted:
		return "halted"
	case StatusCrashed:
		return "crashed"
	default:
		return "status(" + strconv.Itoa(int(s)) + ")"
	}
}

// Terminal reports whether the process takes no further steps.
func (s Status) Terminal() bool { return s != StatusPoised }

// Poise describes the shared-memory step a poised process is about to
// take: operation Op on object index Obj, response to register Dst.
type Poise struct {
	// Op is the fully evaluated operation (operands resolved).
	Op value.Op
	// Obj is the shared-object index.
	Obj int
	// Dst receives the response.
	Dst RegID
}

// ProcState is an immutable snapshot of one process. Resume returns new
// snapshots; callers never mutate Regs.
type ProcState struct {
	// Regs is the register file.
	Regs []value.Value
	// Decision is the decided value when Status is StatusDecided.
	Decision value.Value
	// PC indexes the Invoke instruction the process is poised at.
	PC int
	// Status is the lifecycle phase.
	Status Status
}

// Key returns a canonical encoding of the process state for
// configuration hashing.
func (ps ProcState) Key() string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(ps.Status)))
	b.WriteByte('@')
	b.WriteString(strconv.Itoa(ps.PC))
	b.WriteByte('=')
	b.WriteString(strconv.FormatInt(int64(ps.Decision), 36))
	for _, r := range ps.Regs {
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(int64(r), 36))
	}
	return b.String()
}

// AppendKey appends a compact, self-delimiting binary encoding of the
// process state to dst, with the same canonicity contract as Key. The
// model checker interns configurations through these bytes, so this is
// the allocation-free hot-path twin of Key (which remains the
// human-readable rendering).
func (ps ProcState) AppendKey(dst []byte) []byte {
	dst = append(dst, byte(ps.Status))
	dst = binary.AppendUvarint(dst, uint64(ps.PC))
	dst = binary.AppendVarint(dst, int64(ps.Decision))
	dst = binary.AppendUvarint(dst, uint64(len(ps.Regs)))
	for _, r := range ps.Regs {
		dst = binary.AppendVarint(dst, int64(r))
	}
	return dst
}

func (ps ProcState) cloneRegs() []value.Value {
	regs := make([]value.Value, len(ps.Regs))
	copy(regs, ps.Regs)
	return regs
}

func eval(regs []value.Value, o Operand) value.Value {
	if o.IsReg {
		return regs[o.Reg]
	}
	return o.Const
}

// Start initializes a process: the register file is zeroed except
// R0 = input and R1 = pid (1-based), then local instructions run until
// the process is poised or terminated.
func Start(p *Program, pid int, input value.Value) (ProcState, error) {
	regs := make([]value.Value, p.NumRegs)
	regs[RegInput] = input
	if p.NumRegs > 1 {
		regs[RegID1] = value.Value(pid)
	}
	ps := ProcState{Regs: regs, Decision: value.None, PC: 0, Status: StatusPoised}
	return normalize(p, ps)
}

// Resume feeds the response of the shared-memory step the process was
// poised at, then advances to the next poise point or terminal status.
func Resume(p *Program, ps ProcState, resp value.Value) (ProcState, error) {
	if ps.Status != StatusPoised {
		return ps, fmt.Errorf("%s: resume of %s process: %w", p.Name, ps.Status, ErrProgram)
	}
	in := p.Instrs[ps.PC]
	if in.Kind != InstrInvoke {
		return ps, fmt.Errorf("%s: pc %d not an invoke: %w", p.Name, ps.PC, ErrProgram)
	}
	countStep()
	next := ps
	next.Regs = ps.cloneRegs()
	next.Regs[in.Dst] = resp
	next.PC++
	return normalize(p, next)
}

// Poised returns the pending shared-memory step of a poised process.
func Poised(p *Program, ps ProcState) (Poise, bool) {
	if ps.Status != StatusPoised {
		return Poise{}, false
	}
	in := p.Instrs[ps.PC]
	op := value.Op{Method: in.Method}
	if in.Method.TakesArg() {
		op.Arg = eval(ps.Regs, in.A)
	}
	if in.Method.TakesLabel() {
		op.Label = int(eval(ps.Regs, in.B))
	}
	return Poise{Op: op, Obj: in.Obj, Dst: in.Dst}, true
}

// Crash marks the process as crashed; it takes no further steps.
func Crash(ps ProcState) ProcState {
	ps.Status = StatusCrashed
	return ps
}

// normalize executes local instructions until the process is poised at
// an Invoke or terminates. Falling off the end of the program halts the
// process.
func normalize(p *Program, ps ProcState) (ProcState, error) {
	regs := ps.Regs
	mutated := false
	ensureOwned := func() {
		if !mutated {
			clone := make([]value.Value, len(regs))
			copy(clone, regs)
			regs = clone
			mutated = true
		}
	}
	pc := ps.PC
	for steps := 0; ; steps++ {
		if steps > MaxLocalSteps {
			return ps, fmt.Errorf("%s: local loop without shared step at pc %d: %w", p.Name, ps.PC, ErrProgram)
		}
		if pc < 0 || pc >= len(p.Instrs) {
			return ProcState{Regs: regs, Decision: value.None, PC: pc, Status: StatusHalted}, nil
		}
		in := p.Instrs[pc]
		switch in.Kind {
		case InstrInvoke:
			return ProcState{Regs: regs, Decision: value.None, PC: pc, Status: StatusPoised}, nil
		case InstrSet:
			ensureOwned()
			regs[in.Dst] = eval(regs, in.A)
			pc++
		case InstrAdd:
			ensureOwned()
			regs[in.Dst] = eval(regs, in.A) + eval(regs, in.B)
			pc++
		case InstrSub:
			ensureOwned()
			regs[in.Dst] = eval(regs, in.A) - eval(regs, in.B)
			pc++
		case InstrJmp:
			pc = in.Target
		case InstrJEq:
			if eval(regs, in.A) == eval(regs, in.B) {
				pc = in.Target
			} else {
				pc++
			}
		case InstrJNe:
			if eval(regs, in.A) != eval(regs, in.B) {
				pc = in.Target
			} else {
				pc++
			}
		case InstrJLt:
			if eval(regs, in.A) < eval(regs, in.B) {
				pc = in.Target
			} else {
				pc++
			}
		case InstrDecide:
			return ProcState{Regs: regs, Decision: eval(regs, in.A), PC: pc, Status: StatusDecided}, nil
		case InstrAbort:
			return ProcState{Regs: regs, Decision: value.None, PC: pc, Status: StatusAborted}, nil
		case InstrHalt:
			return ProcState{Regs: regs, Decision: value.None, PC: pc, Status: StatusHalted}, nil
		default:
			return ps, fmt.Errorf("%s: unknown instruction kind %d at pc %d: %w", p.Name, in.Kind, pc, ErrProgram)
		}
	}
}

package machine_test

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"setagree/internal/machine"
	"setagree/internal/value"
)

var indexPrefix = regexp.MustCompile(`(?m)^\d+:\t`)

// reparse strips the disassembler's index column and reassembles.
func reparse(t *testing.T, p *machine.Program) *machine.Program {
	t.Helper()
	src := indexPrefix.ReplaceAllString(p.Disassemble(), "")
	out, err := machine.Parse(p.Name, src, p.NumRegs)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, src)
	}
	return out
}

// randomProgram synthesizes a valid random program.
func randomProgram(rng *rand.Rand) *machine.Program {
	n := 3 + rng.Intn(8)
	instrs := make([]machine.Instr, 0, n+1)
	randOperand := func() machine.Operand {
		if rng.Intn(2) == 0 {
			return machine.R(machine.RegID(rng.Intn(4)))
		}
		switch rng.Intn(4) {
		case 0:
			return machine.C(value.Bottom)
		case 1:
			return machine.C(value.None)
		default:
			return machine.C(value.Value(rng.Intn(20) - 5))
		}
	}
	methods := []value.Method{
		value.MethodRead, value.MethodWrite, value.MethodPropose,
		value.MethodProposeAt, value.MethodDecide, value.MethodProposeC,
		value.MethodProposeP, value.MethodDecideP, value.MethodProposeK,
		value.MethodEnqueue, value.MethodDequeue, value.MethodFetchAdd,
		value.MethodTestAndSet,
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			instrs = append(instrs, machine.Instr{
				Kind: machine.InstrSet, Dst: machine.RegID(rng.Intn(4)), A: randOperand(),
			})
		case 1:
			instrs = append(instrs, machine.Instr{
				Kind: machine.InstrAdd, Dst: machine.RegID(rng.Intn(4)),
				A: randOperand(), B: randOperand(),
			})
		case 2:
			instrs = append(instrs, machine.Instr{
				Kind: machine.InstrSub, Dst: machine.RegID(rng.Intn(4)),
				A: randOperand(), B: randOperand(),
			})
		case 3:
			instrs = append(instrs, machine.Instr{
				Kind: machine.InstrJmp, Target: rng.Intn(n + 1 - 1),
			})
		case 4:
			kind := []machine.InstrKind{machine.InstrJEq, machine.InstrJNe, machine.InstrJLt}[rng.Intn(3)]
			instrs = append(instrs, machine.Instr{
				Kind: kind, A: randOperand(), B: randOperand(), Target: rng.Intn(n),
			})
		case 5:
			instrs = append(instrs, machine.Instr{Kind: machine.InstrDecide, A: randOperand()})
		case 6:
			m := methods[rng.Intn(len(methods))]
			in := machine.Instr{
				Kind: machine.InstrInvoke, Dst: machine.RegID(rng.Intn(4)),
				Obj: rng.Intn(3), Method: m,
			}
			if m.TakesArg() {
				in.A = randOperand()
			}
			if m.TakesLabel() {
				in.B = randOperand()
			}
			instrs = append(instrs, in)
		default:
			instrs = append(instrs, machine.Instr{Kind: machine.InstrHalt})
		}
	}
	instrs = append(instrs, machine.Instr{Kind: machine.InstrHalt})
	return &machine.Program{Name: "rand", Instrs: instrs, NumRegs: 4}
}

// TestDisassembleParseRoundTrip checks Disassemble ∘ Parse is the
// identity on random valid programs (instruction-for-instruction).
func TestDisassembleParseRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v", err)
		}
		q := reparse(t, p)
		if len(q.Instrs) != len(p.Instrs) {
			t.Fatalf("instruction count: %d -> %d", len(p.Instrs), len(q.Instrs))
		}
		for i := range p.Instrs {
			if p.Instrs[i] != q.Instrs[i] {
				t.Fatalf("instr %d differs:\n  %v\n  %v\nsource:\n%s",
					i, p.Instrs[i], q.Instrs[i], p.Disassemble())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAbsoluteJumpTargets pins the numeric-target syntax directly.
func TestAbsoluteJumpTargets(t *testing.T) {
	t.Parallel()
	p, err := machine.Parse("abs", "set r0, 1\njmp 0\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[1].Kind != machine.InstrJmp || p.Instrs[1].Target != 0 {
		t.Fatalf("instr = %+v", p.Instrs[1])
	}
	// Out-of-range absolute targets are still rejected by validation.
	if _, err := machine.Parse("abs", "jmp 7\n", 2); err == nil {
		t.Fatal("out-of-range absolute target accepted")
	}
	if !strings.Contains(p.Disassemble(), "jmp 0") {
		t.Fatal("disassembly")
	}
}

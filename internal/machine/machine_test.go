package machine_test

import (
	"errors"
	"strings"
	"testing"

	"setagree/internal/machine"
	"setagree/internal/value"
)

func TestBuilderBuildsAndValidates(t *testing.T) {
	t.Parallel()
	p, err := machine.NewBuilder("t", 4).
		Set(2, machine.C(5)).
		Label("loop").
		Invoke(3, 0, value.MethodPropose, machine.R(2), machine.Operand{}).
		JEq(machine.R(3), machine.C(value.Bottom), "loop").
		Decide(machine.R(3)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 4 {
		t.Fatalf("got %d instructions", len(p.Instrs))
	}
	if p.Instrs[2].Target != 1 {
		t.Fatalf("jump target = %d, want 1", p.Instrs[2].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	t.Parallel()
	_, err := machine.NewBuilder("t", 2).Jmp("nowhere").Build()
	if !errors.Is(err, machine.ErrProgram) {
		t.Fatalf("err = %v, want ErrProgram", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	t.Parallel()
	_, err := machine.NewBuilder("t", 2).Label("a").Label("a").Halt().Build()
	if !errors.Is(err, machine.ErrProgram) {
		t.Fatalf("err = %v, want ErrProgram", err)
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	t.Parallel()
	p := &machine.Program{
		Name:    "bad",
		NumRegs: 2,
		Instrs:  []machine.Instr{{Kind: machine.InstrSet, Dst: 7, A: machine.C(1)}},
	}
	if err := p.Validate(); !errors.Is(err, machine.ErrProgram) {
		t.Fatalf("err = %v, want ErrProgram", err)
	}
}

func TestValidateRejectsBadJumpTarget(t *testing.T) {
	t.Parallel()
	p := &machine.Program{
		Name:    "bad",
		NumRegs: 2,
		Instrs:  []machine.Instr{{Kind: machine.InstrJmp, Target: 9}},
	}
	if err := p.Validate(); !errors.Is(err, machine.ErrProgram) {
		t.Fatalf("err = %v, want ErrProgram", err)
	}
}

// TestStartConventions pins the r0 = input, r1 = pid convention.
func TestStartConventions(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 4).
		Invoke(2, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		Decide(machine.R(2)).
		MustBuild()
	ps, err := machine.Start(p, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Regs[machine.RegInput] != 77 || ps.Regs[machine.RegID1] != 3 {
		t.Fatalf("regs = %v", ps.Regs)
	}
	if ps.Status != machine.StatusPoised {
		t.Fatalf("status = %s", ps.Status)
	}
	poise, ok := machine.Poised(p, ps)
	if !ok || poise.Op.Method != value.MethodPropose || poise.Op.Arg != 77 {
		t.Fatalf("poise = %+v", poise)
	}
}

// TestLocalExecutionUntilPoise checks that local instructions run for
// free until the next shared step.
func TestLocalExecutionUntilPoise(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 6).
		Set(2, machine.C(10)).
		Add(3, machine.R(2), machine.C(4)).
		Sub(4, machine.R(3), machine.C(1)).
		Invoke(5, 0, value.MethodWrite, machine.R(4), machine.Operand{}).
		Halt().
		MustBuild()
	ps, err := machine.Start(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	poise, ok := machine.Poised(p, ps)
	if !ok {
		t.Fatal("not poised")
	}
	if poise.Op.Arg != 13 {
		t.Fatalf("arg = %s, want 13 (10+4-1)", poise.Op.Arg)
	}
}

// TestResumeAdvances checks response delivery and re-poising.
func TestResumeAdvances(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 4).
		Label("loop").
		Invoke(2, 0, value.MethodPropose, machine.R(0), machine.Operand{}).
		JEq(machine.R(2), machine.C(value.Bottom), "loop").
		Decide(machine.R(2)).
		MustBuild()
	ps, err := machine.Start(p, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// ⊥ loops back to the invoke.
	ps, err = machine.Resume(p, ps, value.Bottom)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != machine.StatusPoised {
		t.Fatalf("status after ⊥ = %s", ps.Status)
	}
	// A value decides.
	ps, err = machine.Resume(p, ps, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != machine.StatusDecided || ps.Decision != 9 {
		t.Fatalf("after value: %s decision=%s", ps.Status, ps.Decision)
	}
	// Resuming a decided process is a program error.
	if _, err := machine.Resume(p, ps, 1); !errors.Is(err, machine.ErrProgram) {
		t.Fatalf("resume of decided process: %v", err)
	}
}

// TestResumeDoesNotMutatePrior checks value semantics of ProcState.
func TestResumeDoesNotMutatePrior(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 4).
		Invoke(2, 0, value.MethodPropose, machine.R(0), machine.Operand{}).
		Invoke(3, 0, value.MethodPropose, machine.R(2), machine.Operand{}).
		Halt().
		MustBuild()
	ps0, err := machine.Start(p, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	key0 := ps0.Key()
	if _, err := machine.Resume(p, ps0, 8); err != nil {
		t.Fatal(err)
	}
	if ps0.Key() != key0 {
		t.Fatal("Resume mutated the prior state")
	}
}

func TestAbortAndHaltStatuses(t *testing.T) {
	t.Parallel()
	abortProg := machine.NewBuilder("a", 2).Abort().MustBuild()
	ps, err := machine.Start(abortProg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != machine.StatusAborted {
		t.Fatalf("status = %s, want aborted", ps.Status)
	}

	// Falling off the end halts.
	fall := machine.NewBuilder("f", 2).Set(0, machine.C(1)).MustBuild()
	ps, err = machine.Start(fall, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Status != machine.StatusHalted {
		t.Fatalf("status = %s, want halted", ps.Status)
	}
}

func TestCrash(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 2).
		Invoke(0, 0, value.MethodRead, machine.Operand{}, machine.Operand{}).
		Halt().
		MustBuild()
	ps, err := machine.Start(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps = machine.Crash(ps)
	if ps.Status != machine.StatusCrashed || !ps.Status.Terminal() {
		t.Fatalf("status = %s", ps.Status)
	}
	if _, ok := machine.Poised(p, ps); ok {
		t.Fatal("crashed process still poised")
	}
}

// TestLocalLoopDetected checks the MaxLocalSteps guard: a pure local
// loop (no shared step) is a program error, not a hang.
func TestLocalLoopDetected(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("spin", 2).
		Label("top").
		Jmp("top").
		MustBuild()
	if _, err := machine.Start(p, 1, 0); !errors.Is(err, machine.ErrProgram) {
		t.Fatalf("err = %v, want ErrProgram", err)
	}
}

func TestProcStateKeyReflectsRegisters(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 3).
		Invoke(2, 0, value.MethodPropose, machine.R(0), machine.Operand{}).
		Invoke(2, 0, value.MethodPropose, machine.R(2), machine.Operand{}).
		Halt().
		MustBuild()
	ps, err := machine.Start(p, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := machine.Resume(p, ps, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.Resume(p, ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == b.Key() {
		t.Fatal("distinct register contents share a key")
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("t", 4).
		Set(2, machine.C(value.Bottom)).
		Invoke(3, 1, value.MethodProposeAt, machine.R(0), machine.R(1)).
		JNe(machine.R(3), machine.C(0), "end").
		Label("end").
		Decide(machine.C(1)).
		MustBuild()
	dis := p.Disassemble()
	for _, want := range []string{"set r2, ⊥", "invoke r3, obj1, PROPOSE_AT, r0, r1", "jne r3, 0, 3", "decide 1"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

// TestStatusStrings pins the lifecycle names used in reports.
func TestStatusStrings(t *testing.T) {
	t.Parallel()
	cases := map[machine.Status]string{
		machine.StatusPoised:  "poised",
		machine.StatusDecided: "decided",
		machine.StatusAborted: "aborted",
		machine.StatusHalted:  "halted",
		machine.StatusCrashed: "crashed",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, st.String(), want)
		}
		if st == machine.StatusPoised && st.Terminal() {
			t.Error("poised must not be terminal")
		}
		if st != machine.StatusPoised && !st.Terminal() {
			t.Errorf("%s must be terminal", want)
		}
	}
	if machine.Status(99).String() != "status(99)" {
		t.Error("unknown status rendering")
	}
}

// TestOperandString pins operand rendering.
func TestOperandString(t *testing.T) {
	t.Parallel()
	if machine.R(3).String() != "r3" {
		t.Error("register operand")
	}
	if machine.C(value.Bottom).String() != "⊥" || machine.C(7).String() != "7" {
		t.Error("constant operand")
	}
}

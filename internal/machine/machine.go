// Package machine implements the deterministic process model of the
// paper's system (§1: "asynchronous processes may apply operations to
// wait-free shared objects and fail by crashing").
//
// A process is a small register machine. Local instructions (moves,
// arithmetic, branches) are free; a *step* in the paper's sense is a
// single operation applied to a shared object (an Invoke instruction),
// or the terminal decide/abort actions. Between shared steps a process
// state is always *poised* at its next shared operation or terminated,
// matching the configurations the bivalency proofs manipulate ("process
// q is about to perform an operation on X").
//
// Programs are plain data, so the model checker (internal/explore) can
// clone and hash process states, and the candidate enumerator
// (internal/enumerate) can synthesize protocols.
package machine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"setagree/internal/value"
)

// MaxLocalSteps bounds the local instructions executed between two
// shared-memory steps; exceeding it means the program has a local
// infinite loop, which the asynchronous model does not admit (local
// computation is finite between steps).
const MaxLocalSteps = 100000

// ErrProgram is wrapped by every program-level failure (bad register,
// bad jump target, local loop, resuming a terminated process).
var ErrProgram = errors.New("program error")

// RegID names a machine register r0..r(NumRegs-1).
type RegID uint8

// Conventional register assignments used by the protocol library: at
// start, R0 holds the process input and R1 holds the 1-based process
// id. Programs are free to ignore the convention.
const (
	RegInput RegID = 0
	RegID1   RegID = 1
)

// Operand is either a register reference or an immediate Value.
type Operand struct {
	// Const is the immediate value when IsReg is false.
	Const value.Value
	// Reg is the register when IsReg is true.
	Reg RegID
	// IsReg selects between the two variants.
	IsReg bool
}

// R returns a register operand.
func R(r RegID) Operand { return Operand{IsReg: true, Reg: r} }

// C returns an immediate operand.
func C(v value.Value) Operand { return Operand{Const: v} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	if o.IsReg {
		return "r" + strconv.Itoa(int(o.Reg))
	}
	return o.Const.String()
}

// InstrKind enumerates the instruction set.
type InstrKind uint8

// The instruction set. Only InstrInvoke is a shared-memory step; all
// others are local.
const (
	// InstrInvoke applies Op (with operand-filled argument/label) to
	// shared object Obj and stores the response in Dst.
	InstrInvoke InstrKind = iota + 1
	// InstrSet stores operand A into Dst.
	InstrSet
	// InstrAdd stores A+B into Dst (sentinel operands are a program error).
	InstrAdd
	// InstrSub stores A-B into Dst.
	InstrSub
	// InstrJmp jumps unconditionally to Target.
	InstrJmp
	// InstrJEq jumps to Target if A == B.
	InstrJEq
	// InstrJNe jumps to Target if A != B.
	InstrJNe
	// InstrJLt jumps to Target if A < B (signed; sentinels compare as
	// their underlying values and are a program error to use here).
	InstrJLt
	// InstrDecide terminates the process, deciding the value of A.
	InstrDecide
	// InstrAbort terminates the process by aborting (only the
	// distinguished process of an n-DAC protocol may execute it).
	InstrAbort
	// InstrHalt terminates the process without deciding or aborting.
	InstrHalt
)

// Instr is a single instruction.
type Instr struct {
	// A and B are the operands (see each InstrKind).
	A, B Operand
	// Method and Label/A shape the invoked operation for InstrInvoke:
	// the operation is Op{Method, Arg: eval(A), Label: eval(B)}.
	Method value.Method
	// Obj is the shared-object index for InstrInvoke.
	Obj int
	// Target is the jump destination for the jump instructions.
	Target int
	// Dst is the destination register for Invoke/Set/Add/Sub.
	Dst RegID
	// Kind selects the instruction.
	Kind InstrKind
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	switch in.Kind {
	case InstrInvoke:
		s := fmt.Sprintf("invoke r%d, obj%d, %s", in.Dst, in.Obj, in.Method)
		if in.Method.TakesArg() {
			s += ", " + in.A.String()
		}
		if in.Method.TakesLabel() {
			s += ", " + in.B.String()
		}
		return s
	case InstrSet:
		return fmt.Sprintf("set r%d, %s", in.Dst, in.A)
	case InstrAdd:
		return fmt.Sprintf("add r%d, %s, %s", in.Dst, in.A, in.B)
	case InstrSub:
		return fmt.Sprintf("sub r%d, %s, %s", in.Dst, in.A, in.B)
	case InstrJmp:
		return fmt.Sprintf("jmp %d", in.Target)
	case InstrJEq:
		return fmt.Sprintf("jeq %s, %s, %d", in.A, in.B, in.Target)
	case InstrJNe:
		return fmt.Sprintf("jne %s, %s, %d", in.A, in.B, in.Target)
	case InstrJLt:
		return fmt.Sprintf("jlt %s, %s, %d", in.A, in.B, in.Target)
	case InstrDecide:
		return "decide " + in.A.String()
	case InstrAbort:
		return "abort"
	case InstrHalt:
		return "halt"
	default:
		return fmt.Sprintf("instr(%d)", in.Kind)
	}
}

// Program is the code one process runs: a flat instruction list.
// Protocols are one Program per process (programs may be shared between
// processes when identical).
type Program struct {
	// Name labels the program in reports.
	Name string
	// Instrs is the instruction list; control starts at index 0.
	Instrs []Instr
	// NumRegs is the register file size (>= 2 for the conventions).
	NumRegs int
}

// Validate checks static well-formedness: register and jump-target
// ranges and method/operand agreement.
func (p *Program) Validate() error {
	if p.NumRegs < 1 || p.NumRegs > 64 {
		return fmt.Errorf("%s: NumRegs %d out of range [1,64]: %w", p.Name, p.NumRegs, ErrProgram)
	}
	checkReg := func(i int, r RegID) error {
		if int(r) >= p.NumRegs {
			return fmt.Errorf("%s: instr %d: register r%d out of range: %w", p.Name, i, r, ErrProgram)
		}
		return nil
	}
	checkOp := func(i int, o Operand) error {
		if o.IsReg {
			return checkReg(i, o.Reg)
		}
		return nil
	}
	for i, in := range p.Instrs {
		switch in.Kind {
		case InstrInvoke:
			if !in.Method.Valid() {
				return fmt.Errorf("%s: instr %d: invalid method: %w", p.Name, i, ErrProgram)
			}
			if in.Obj < 0 {
				return fmt.Errorf("%s: instr %d: negative object index: %w", p.Name, i, ErrProgram)
			}
			if err := checkReg(i, in.Dst); err != nil {
				return err
			}
			if in.Method.TakesArg() {
				if err := checkOp(i, in.A); err != nil {
					return err
				}
			}
			if in.Method.TakesLabel() {
				if err := checkOp(i, in.B); err != nil {
					return err
				}
			}
		case InstrSet:
			if err := checkReg(i, in.Dst); err != nil {
				return err
			}
			if err := checkOp(i, in.A); err != nil {
				return err
			}
		case InstrAdd, InstrSub:
			if err := checkReg(i, in.Dst); err != nil {
				return err
			}
			if err := checkOp(i, in.A); err != nil {
				return err
			}
			if err := checkOp(i, in.B); err != nil {
				return err
			}
		case InstrJmp:
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("%s: instr %d: jump target %d out of range: %w", p.Name, i, in.Target, ErrProgram)
			}
		case InstrJEq, InstrJNe, InstrJLt:
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("%s: instr %d: jump target %d out of range: %w", p.Name, i, in.Target, ErrProgram)
			}
			if err := checkOp(i, in.A); err != nil {
				return err
			}
			if err := checkOp(i, in.B); err != nil {
				return err
			}
		case InstrDecide:
			if err := checkOp(i, in.A); err != nil {
				return err
			}
		case InstrAbort, InstrHalt:
			// no operands
		default:
			return fmt.Errorf("%s: instr %d: unknown kind %d: %w", p.Name, i, in.Kind, ErrProgram)
		}
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line with
// absolute indices as targets.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.Instrs {
		b.WriteString(strconv.Itoa(i))
		b.WriteString(":\t")
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}

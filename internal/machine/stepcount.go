package machine

import "sync/atomic"

// Shared-memory step accounting. Every Resume is one step in the
// paper's sense (one operation applied to a shared object), so a global
// tally here counts steps across every engine — model checker,
// simulator, sweeps — without threading a sink through the hottest call
// path. The counter is disabled by default and gated behind an atomic
// flag, so uninstrumented runs pay a single atomic load per step; the
// cmd tools enable it when -metrics or -events is given and report the
// delta as the machine.steps counter.
var (
	stepCountEnabled atomic.Bool
	stepCount        atomic.Int64
)

// EnableStepCount switches global shared-step counting on or off. The
// tally is cumulative across runs; callers interested in one run record
// TotalSteps before and after and report the difference.
func EnableStepCount(on bool) { stepCountEnabled.Store(on) }

// StepCountEnabled reports whether shared-step counting is on.
func StepCountEnabled() bool { return stepCountEnabled.Load() }

// TotalSteps returns the cumulative number of shared-memory steps
// executed (Resume calls) while counting was enabled.
func TotalSteps() int64 { return stepCount.Load() }

// countStep tallies one shared-memory step if counting is enabled.
func countStep() {
	if stepCountEnabled.Load() {
		stepCount.Add(1)
	}
}

package programs_test

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/power"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

func check(t *testing.T, p programs.Protocol, tsk task.Task, inputs []value.Value, opts explore.Options) *explore.Report {
	t.Helper()
	sys, err := p.System(inputs)
	if err != nil {
		t.Fatalf("%s: System(%v): %v", p.Name, inputs, err)
	}
	rep, err := explore.Check(sys, tsk, opts)
	if err != nil {
		t.Fatalf("%s: Check(%v): %v", p.Name, inputs, err)
	}
	return rep
}

func requireSolved(t *testing.T, p programs.Protocol, tsk task.Task, inputs []value.Value) {
	t.Helper()
	rep := check(t, p, tsk, inputs, explore.Options{})
	if !rep.Solved() {
		t.Fatalf("%s on %v: %v", p.Name, inputs, rep.Violations[0])
	}
}

func distinctInputs(n int) []value.Value {
	in := make([]value.Value, n)
	for i := range in {
		in[i] = value.Value(10 + i)
	}
	return in
}

// TestConsensusFromPACMExhaustive is the positive half of Theorem 5.3
// (via Observation 5.1(c)): one (n,m)-PAC object solves consensus among
// m processes, verified exhaustively for m = 2, 3 and both n values
// around it.
func TestConsensusFromPACMExhaustive(t *testing.T) {
	t.Parallel()
	for _, m := range []int{2, 3} {
		for _, n := range []int{m, m + 1} { // includes O_m = (m+1,m)-PAC
			prot := programs.ConsensusFromPACM(n, m, m)
			requireSolved(t, prot, task.Consensus{N: m}, distinctInputs(m))
			requireSolved(t, prot, task.Consensus{N: m}, sim.Inputs(m, 0, 1))
			requireSolved(t, prot, task.Consensus{N: m}, sim.Inputs(m, 7))
		}
	}
}

// TestObservation62ObjectO checks the consensus-number-n face of
// O_n = (n+1,n)-PAC concretely: n processes solve consensus with it.
func TestObservation62ObjectO(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3} {
		prot := programs.ConsensusFromPACM(n+1, n, n)
		requireSolved(t, prot, task.Consensus{N: n}, distinctInputs(n))
	}
}

// TestConsensusFromPACMOversubscribed pins the failure shape of the
// naive protocol run by m+1 processes: the (m+1)-th response is ⊥,
// which the task rejects — consistent with Theorem 5.2's statement that
// no protocol among m+1 processes exists over this base.
func TestConsensusFromPACMOversubscribed(t *testing.T) {
	t.Parallel()
	const m = 2
	prot := programs.ConsensusFromPACM(m, m, m+1)
	rep := check(t, prot, task.Consensus{N: m + 1}, distinctInputs(m+1), explore.Options{})
	if rep.Solved() {
		t.Fatal("oversubscribed naive consensus reported as correct")
	}
}

// TestConsensusDirectExhaustive checks the m-consensus object protocol
// for m = 2..4 (calibrates the consensus rows of the hierarchy table).
func TestConsensusDirectExhaustive(t *testing.T) {
	t.Parallel()
	for m := 2; m <= 4; m++ {
		prot := programs.ConsensusFromObject(m, m)
		requireSolved(t, prot, task.Consensus{N: m}, distinctInputs(m))
		requireSolved(t, prot, task.Consensus{N: m}, sim.Inputs(m, 1, 0))
	}
}

// TestPartitionExhaustive is E10's core: k groups of m processes over k
// m-consensus objects solve (k*m, k)-set agreement — the lower-bound
// construction realizing n_k = k·m.
func TestPartitionExhaustive(t *testing.T) {
	t.Parallel()
	cases := []struct{ k, m int }{{2, 2}, {3, 2}, {2, 3}}
	for _, tc := range cases {
		prot := programs.Partition(tc.k, tc.m)
		procs := tc.k * tc.m
		requireSolved(t, prot, task.KSetAgreement{N: procs, K: tc.k}, distinctInputs(procs))
		requireSolved(t, prot, task.KSetAgreement{N: procs, K: tc.k}, sim.Inputs(procs, 0, 1))
	}
}

// TestPartitionTightness checks the bound is tight in the decided-value
// count: with k groups and all-distinct inputs there is a schedule
// realizing exactly k distinct decisions (so the protocol genuinely
// needs the k of k-set agreement, i.e. it does not solve (k-1)-set
// agreement).
func TestPartitionTightness(t *testing.T) {
	t.Parallel()
	const k, m = 2, 2
	prot := programs.Partition(k, m)
	procs := k * m
	rep := check(t, prot, task.KSetAgreement{N: procs, K: k - 1}, distinctInputs(procs), explore.Options{})
	if rep.Solved() {
		t.Fatal("partition protocol claimed to solve (k-1)-set agreement")
	}
}

// TestPartitionObjectOExhaustive is the O_n half of Corollary 6.6's
// "same power" comparison: k-set agreement among k*n processes from k
// O_n objects (consensus faces).
func TestPartitionObjectOExhaustive(t *testing.T) {
	t.Parallel()
	const k, n = 2, 2
	prot := programs.PartitionObjectO(k, n)
	procs := k * n
	requireSolved(t, prot, task.KSetAgreement{N: procs, K: k}, distinctInputs(procs))
}

// TestKSetFromSAExhaustive checks the strong SA objects solve their
// native tasks: (n,k)-SA solves k-set agreement among n processes, and
// the unbounded 2-SA solves 2-set agreement among any number.
func TestKSetFromSAExhaustive(t *testing.T) {
	t.Parallel()
	cases := []struct{ n, k, procs int }{
		{4, 2, 4},
		{4, 2, 3},
		{6, 3, 4},
		{0, 2, 4}, // unbounded 2-SA
		{0, 2, 5},
	}
	for _, tc := range cases {
		prot := programs.KSetFromSA(tc.n, tc.k, tc.procs)
		requireSolved(t, prot, task.KSetAgreement{N: tc.procs, K: tc.k}, distinctInputs(tc.procs))
	}
}

// TestKSetFromOPrimeVsBase is Corollary 6.6's positive half, exhaustive
// for n = 2: the abstract O'_n and the Lemma 6.4 implementation (from
// n-consensus + 2-SA only) solve the same (n_k, k)-set agreement tasks
// for k = 1, 2.
func TestKSetFromOPrimeVsBase(t *testing.T) {
	t.Parallel()
	const n = 2
	power := func(k int) int { return k * n } // the default instantiation
	for k := 1; k <= 2; k++ {
		procs := power(k)
		tsk := task.KSetAgreement{N: procs, K: k}
		oprime := programs.KSetFromOPrime(corepkgOPrime(n), k, procs)
		requireSolved(t, oprime, tsk, distinctInputs(procs))
		base := programs.KSetFromOPrimeBase(n, k, procs)
		requireSolved(t, base, tsk, distinctInputs(procs))
	}
}

// TestKSetFromOPrimeLargerRandom extends the comparison to k = 3
// (6 processes) by randomized sampling where exhaustive checking is
// heavy.
func TestKSetFromOPrimeLargerRandom(t *testing.T) {
	t.Parallel()
	const n, k = 2, 3
	procs := k * n
	tsk := task.KSetAgreement{N: procs, K: k}
	for _, prot := range []programs.Protocol{
		programs.KSetFromOPrime(corepkgOPrime(n), k, procs),
		programs.KSetFromOPrimeBase(n, k, procs),
	} {
		prot := prot
		completed, violation, err := sim.Trials(func() (*explore.System, error) {
			return prot.System(distinctInputs(procs))
		}, tsk, 200, 777, sim.Options{MaxSteps: 256})
		if err != nil {
			t.Fatal(err)
		}
		if violation != nil {
			t.Fatalf("%s: %v", prot.Name, violation)
		}
		if completed != 200 {
			t.Fatalf("%s: %d/200 completed", prot.Name, completed)
		}
	}
}

// TestAlgorithm2FourProcesses pushes Theorem 4.1's verification to
// n = 4 on the critical input vector.
func TestAlgorithm2FourProcesses(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("large state space")
	}
	prot := programs.Algorithm2(4, 1)
	rep := check(t, prot, task.DAC{N: 4, P: 0}, sim.Inputs(4, 1, 0, 0, 0), explore.Options{})
	if !rep.Solved() {
		t.Fatalf("violation: %v", rep.Violations[0])
	}
	t.Logf("n=4 states=%d transitions=%d", rep.States, rep.Transitions)
}

// TestProtocolSystemInputMismatch pins the arity check.
func TestProtocolSystemInputMismatch(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	if _, err := prot.System([]value.Value{0}); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

// TestAlgorithm2Scaling extends Theorem 4.1's exhaustive verification
// up the state-space curve and pins the configuration counts as
// regression anchors (the canonical input vector, p = 1):
//
//	n=2: 22    n=3: 182    n=4: 1 272    n=5: 7 960
//	n=6: 48 550    n=7: 284 744   (long; skipped with -short)
func TestAlgorithm2Scaling(t *testing.T) {
	t.Parallel()
	want := map[int]int{2: 22, 3: 182, 4: 1272, 5: 7960, 6: 48550, 7: 284744}
	maxN := 7
	if testing.Short() {
		maxN = 5
	}
	for n := 2; n <= maxN; n++ {
		prot := programs.Algorithm2(n, 1)
		rep := check(t, prot, task.DAC{N: n, P: 0}, sim.Inputs(n, 1, 0), explore.Options{})
		if !rep.Solved() {
			t.Fatalf("n=%d: %v", n, rep.Violations[0])
		}
		if rep.States != want[n] {
			t.Errorf("n=%d: %d configurations, want %d (state-space regression)", n, rep.States, want[n])
		}
	}
}

// TestPowerFormulaCrossValidation checks power.CanSolve against the
// model checker for the consensus-object case: for every small
// (m, K, N), the uneven-partition protocol solves (N,K)-set agreement
// exactly when the Chaudhuri–Reiners formula says N processes with
// m-consensus objects can reach level K. (The protocol realizes the
// positive direction; when the formula says no, each group exceeds its
// object's width and the surplus processes receive ⊥ — pinning that the
// natural construction fails exactly at the formula's boundary.)
func TestPowerFormulaCrossValidation(t *testing.T) {
	t.Parallel()
	for m := 1; m <= 3; m++ {
		for bigK := 1; bigK <= 3; bigK++ {
			for procs := 1; procs <= 5; procs++ {
				feasible := procs <= bigK*m // group sizes fit the objects
				formula := power.CanSolve(m, 1, procs, bigK)
				if feasible != formula {
					t.Fatalf("m=%d K=%d N=%d: partition feasibility %v != formula %v",
						m, bigK, procs, feasible, formula)
				}
				if procs > 4 && !feasible {
					continue // keep refutation state spaces small
				}
				prot := programs.PartitionUneven(procs, bigK, m)
				rep := check(t, prot, task.KSetAgreement{N: procs, K: bigK}, distinctInputs(procs), explore.Options{})
				if rep.Solved() != feasible {
					t.Fatalf("m=%d K=%d N=%d: checker solved=%v, formula says %v",
						m, bigK, procs, rep.Solved(), feasible)
				}
			}
		}
	}
}

package programs

import (
	"strconv"

	"setagree/internal/core"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// This file holds the classic consensus-hierarchy protocols of Herlihy
// [10] used to calibrate the hierarchy experiments (the paper's setting
// is this hierarchy, §1) and the Theorem 7.1 instance.

// ConsensusFromQueue solves 2-consensus with a FIFO queue pre-loaded
// with one token plus two single-writer registers — Herlihy's classic
// proof that the queue is at level >= 2 of the hierarchy. Process i
// announces its input in register obj_i, then dequeues: the process
// that receives the token decides its own input; the other decides the
// announced input of the winner.
func ConsensusFromQueue() Protocol {
	const token = 99
	mk := func(self, other int) *machine.Program {
		return machine.NewBuilder("consensus-queue-p"+strconv.Itoa(self), 6).
			Invoke(2, self, value.MethodWrite, machine.R(machine.RegInput), machine.Operand{}).
			Invoke(3, 0, value.MethodDequeue, machine.Operand{}, machine.Operand{}).
			JEq(machine.R(3), machine.C(value.None), "lost").
			Decide(machine.R(machine.RegInput)).
			Label("lost").
			Invoke(4, other, value.MethodRead, machine.Operand{}, machine.Operand{}).
			Decide(machine.R(4)).
			MustBuild()
	}
	return Protocol{
		Name: "2-consensus from one-token queue + registers",
		Programs: []*machine.Program{
			mk(1, 2),
			mk(2, 1),
		},
		Objects: []spec.Spec{
			objects.NewQueueWith(token),
			objects.NewRegister(),
			objects.NewRegister(),
		},
	}
}

// ConsensusFromTAS solves 2-consensus with a test&set bit plus two
// registers: the TAS winner (prior value 0) decides its own input, the
// loser adopts the winner's announced input.
func ConsensusFromTAS() Protocol {
	mk := func(self, other int) *machine.Program {
		return machine.NewBuilder("consensus-tas-p"+strconv.Itoa(self), 6).
			Invoke(2, self, value.MethodWrite, machine.R(machine.RegInput), machine.Operand{}).
			Invoke(3, 0, value.MethodTestAndSet, machine.Operand{}, machine.Operand{}).
			JNe(machine.R(3), machine.C(0), "lost").
			Decide(machine.R(machine.RegInput)).
			Label("lost").
			Invoke(4, other, value.MethodRead, machine.Operand{}, machine.Operand{}).
			Decide(machine.R(4)).
			MustBuild()
	}
	return Protocol{
		Name: "2-consensus from test&set + registers",
		Programs: []*machine.Program{
			mk(1, 2),
			mk(2, 1),
		},
		Objects: []spec.Spec{
			objects.NewTestAndSet(),
			objects.NewRegister(),
			objects.NewRegister(),
		},
	}
}

// ConsensusFromSticky solves consensus among any number of processes
// with the sticky (∞,1)-SA object: propose, decide the response.
func ConsensusFromSticky(procs int) Protocol {
	prog := proposeDecide("consensus-sticky", value.MethodPropose, 0, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	return Protocol{
		Name:     strconv.Itoa(procs) + "-consensus from sticky consensus",
		Programs: progs,
		Objects:  []spec.Spec{objects.Sticky()},
	}
}

// Algorithm2ViaPACM runs Algorithm 2 against the PAC face of an
// (n,m)-PAC object (Observation 5.1(b)): the (n,m)-PAC solves the n-DAC
// problem regardless of m. With n = procs = labels and m < n this is
// the object of Theorem 7.1 — a deterministic object at level m that
// solves a problem (n-DAC) unsolvable from (n-1)-consensus objects and
// registers.
func Algorithm2ViaPACM(n, m, p int) Protocol {
	base := Algorithm2(n, p)
	face := core.NewPACFace(core.NewPACM(n, m))
	return Protocol{
		Name:     strconv.Itoa(n) + "-DAC via Algorithm 2 over " + face.Name(),
		Programs: base.Programs,
		Objects:  []spec.Spec{face},
	}
}

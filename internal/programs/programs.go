// Package programs is the protocol library: the paper's Algorithm 2 and
// the positive-direction protocols of §§5–6 expressed as machine
// programs, plus a set of natural-but-flawed candidate protocols whose
// refutation by the model checker illustrates the impossibility
// theorems' claims.
//
// Register conventions: r0 = input, r1 = 1-based process id; r2 and r3
// are scratch.
package programs

import (
	"fmt"
	"strconv"

	"setagree/internal/core"
	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// Protocol bundles per-process programs with the shared objects they
// run against. Inputs are supplied per instance via System.
type Protocol struct {
	// Name labels the protocol in reports.
	Name string
	// Programs holds one program per process (entries may alias).
	Programs []*machine.Program
	// Objects are the shared objects.
	Objects []spec.Spec
}

// Procs returns the number of processes.
func (p Protocol) Procs() int { return len(p.Programs) }

// System instantiates the protocol on concrete inputs.
func (p Protocol) System(inputs []value.Value) (*explore.System, error) {
	if len(inputs) != len(p.Programs) {
		return nil, fmt.Errorf("%s: %d inputs for %d processes: %w",
			p.Name, len(inputs), len(p.Programs), machine.ErrProgram)
	}
	in := make([]value.Value, len(inputs))
	copy(in, inputs)
	return &explore.System{Programs: p.Programs, Objects: p.Objects, Inputs: in}, nil
}

// scratch registers used by the library's programs.
const (
	regAck  machine.RegID = 2
	regTemp machine.RegID = 3
)

const numRegs = 4

// Algorithm2 is the paper's Algorithm 2: solving the n-DAC problem with
// a single n-PAC object D (obj0). Process p (1-based) is the
// distinguished process; it tries once and aborts on ⊥. Every other
// process retries its propose/decide pair until the decide returns a
// value.
func Algorithm2(n, p int) Protocol {
	distinguished := machine.NewBuilder("alg2-distinguished", numRegs).
		Invoke(regAck, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)). // line 1
		Invoke(regTemp, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).             // line 2
		JEq(machine.R(regTemp), machine.C(value.Bottom), "abort").                                        // line 3
		Decide(machine.R(regTemp)).                                                                       // line 4
		Label("abort").
		Abort(). // line 5
		MustBuild()

	other := machine.NewBuilder("alg2-other", numRegs).
		Label("loop").                                                                                    // line 6
		Invoke(regAck, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)). // line 7
		Invoke(regTemp, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).             // line 8
		JNe(machine.R(regTemp), machine.C(value.Bottom), "win").                                          // line 9
		Jmp("loop").
		Label("win").
		Decide(machine.R(regTemp)). // lines 10-11
		MustBuild()

	progs := make([]*machine.Program, n)
	for i := range progs {
		if i+1 == p {
			progs[i] = distinguished
		} else {
			progs[i] = other
		}
	}
	return Protocol{
		Name:     strconv.Itoa(n) + "-DAC via Algorithm 2",
		Programs: progs,
		Objects:  []spec.Spec{core.NewPAC(n)},
	}
}

// proposeDecide builds the one-shot "propose to obj0 with method m,
// decide the response" program used by several positive protocols.
func proposeDecide(name string, m value.Method, label int, obj int) *machine.Program {
	b := machine.NewBuilder(name, numRegs)
	if m.TakesLabel() {
		b.Invoke(regTemp, obj, m, machine.R(machine.RegInput), machine.C(value.Value(label)))
	} else {
		b.Invoke(regTemp, obj, m, machine.R(machine.RegInput), machine.Operand{})
	}
	b.Decide(machine.R(regTemp))
	return b.MustBuild()
}

// ConsensusFromPACM solves consensus among procs <= m processes with a
// single (n,m)-PAC object: every process redirects PROPOSEC(v) to the
// embedded m-consensus component and decides the response (the positive
// half of Theorem 5.3, via Observation 5.1(c)).
func ConsensusFromPACM(n, m, procs int) Protocol {
	prog := proposeDecide("consensus-from-(n,m)-PAC", value.MethodProposeC, 0, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	return Protocol{
		Name:     strconv.Itoa(procs) + "-consensus from " + core.NewPACM(n, m).Name(),
		Programs: progs,
		Objects:  []spec.Spec{core.NewPACM(n, m)},
	}
}

// ConsensusFromObject solves consensus among procs <= m processes with
// one m-consensus object.
func ConsensusFromObject(m, procs int) Protocol {
	prog := proposeDecide("consensus-direct", value.MethodPropose, 0, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	return Protocol{
		Name:     strconv.Itoa(procs) + "-consensus from " + objects.NewConsensus(m).Name(),
		Programs: progs,
		Objects:  []spec.Spec{objects.NewConsensus(m)},
	}
}

// KSetFromSA solves k-set agreement among procs processes with a single
// strong (n,k)-SA object (procs <= n, or any procs when n is
// objects.Unbounded): propose, decide the response.
func KSetFromSA(n, k, procs int) Protocol {
	prog := proposeDecide("kset-from-sa", value.MethodPropose, 0, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	sa := objects.NewSetAgreement(n, k)
	return Protocol{
		Name:     "(" + strconv.Itoa(procs) + "," + strconv.Itoa(k) + ")-set agreement from " + sa.Name(),
		Programs: progs,
		Objects:  []spec.Spec{sa},
	}
}

// KSetFromOPrime solves k-set agreement among procs <= n_k processes
// with one O'_n object: PROPOSE(v, k), decide the response (§6: O'_n
// has n_k as its k-set agreement number by construction).
func KSetFromOPrime(oprime core.OPrime, k, procs int) Protocol {
	prog := proposeDecide("kset-from-oprime", value.MethodProposeK, k, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	return Protocol{
		Name:     "(" + strconv.Itoa(procs) + "," + strconv.Itoa(k) + ")-set agreement from " + oprime.Name(),
		Programs: progs,
		Objects:  []spec.Spec{oprime},
	}
}

// Partition solves k-set agreement among k*m processes using k separate
// m-consensus objects: process i proposes to object (i-1)/m and decides
// the response. Each group agrees internally, so at most k distinct
// values are decided — the classic lower-bound construction realizing
// n_k >= k*m for the m-consensus object ([2, 6]).
func Partition(k, m int) Protocol {
	objs := make([]spec.Spec, k)
	for g := range objs {
		objs[g] = objects.NewConsensus(m)
	}
	progs := make([]*machine.Program, k*m)
	for i := range progs {
		progs[i] = proposeDecide("partition-group-"+strconv.Itoa(i/m), value.MethodPropose, 0, i/m)
	}
	return Protocol{
		Name: "(" + strconv.Itoa(k*m) + "," + strconv.Itoa(k) + ")-set agreement by partition over " +
			strconv.Itoa(k) + "x " + objects.NewConsensus(m).Name(),
		Programs: progs,
		Objects:  objs,
	}
}

// PartitionObjectO solves k-set agreement among k*n processes using k
// separate O_n = (n+1,n)-PAC objects via their consensus components:
// the O_n side of the "same set agreement power" comparison of
// Corollary 6.6 (with the default power sequence n_k = k·n).
func PartitionObjectO(k, n int) Protocol {
	objs := make([]spec.Spec, k)
	for g := range objs {
		objs[g] = core.ObjectO(n)
	}
	progs := make([]*machine.Program, k*n)
	for i := range progs {
		progs[i] = proposeDecide("partition-On-group-"+strconv.Itoa(i/n), value.MethodProposeC, 0, i/n)
	}
	return Protocol{
		Name: "(" + strconv.Itoa(k*n) + "," + strconv.Itoa(k) + ")-set agreement by partition over " +
			strconv.Itoa(k) + "x " + core.ObjectO(n).Name(),
		Programs: progs,
		Objects:  objs,
	}
}

// KSetFromOPrimeBase solves k-set agreement among procs processes with
// the Lemma 6.4 implementation of O'_n (n-consensus + 2-SA components
// only): PROPOSE(v, k), decide the response. Paired with KSetFromOPrime
// it demonstrates Corollary 6.6's positive half — both objects solve
// the same set agreement tasks.
func KSetFromOPrimeBase(n, k, procs int) Protocol {
	prog := proposeDecide("kset-from-oprime-base", value.MethodProposeK, k, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	ob := core.NewOPrimeFromBase(n)
	return Protocol{
		Name:     "(" + strconv.Itoa(procs) + "," + strconv.Itoa(k) + ")-set agreement from " + ob.Name(),
		Programs: progs,
		Objects:  []spec.Spec{ob},
	}
}

// PartitionUneven solves K-set agreement among procs processes using K
// m-consensus objects with (possibly uneven) groups of at most m
// processes: process i joins group i mod K. It realizes the positive
// direction of the Chaudhuri–Reiners formula for consensus objects —
// feasible exactly when ceil(procs/K) <= m, i.e. procs <= K*m — and is
// used to cross-validate power.CanSolve against the model checker.
func PartitionUneven(procs, bigK, m int) Protocol {
	objs := make([]spec.Spec, bigK)
	for g := range objs {
		objs[g] = objects.NewConsensus(m)
	}
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = proposeDecide("partition-uneven-group-"+strconv.Itoa(i%bigK), value.MethodPropose, 0, i%bigK)
	}
	return Protocol{
		Name: "(" + strconv.Itoa(procs) + "," + strconv.Itoa(bigK) + ")-set agreement, uneven partition over " +
			strconv.Itoa(bigK) + "x " + objects.NewConsensus(m).Name(),
		Programs: progs,
		Objects:  objs,
	}
}

package programs_test

import "setagree/internal/core"

// corepkgOPrime builds the default O'_n spec (n_k = k·n).
func corepkgOPrime(n int) core.OPrime { return core.NewOPrime(n, nil) }

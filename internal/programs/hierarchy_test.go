package programs_test

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/objects"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestConsensusFromQueueExhaustive verifies Herlihy's classic level-2
// protocol: a one-token queue plus registers solves 2-consensus, on
// every input vector and every schedule.
func TestConsensusFromQueueExhaustive(t *testing.T) {
	t.Parallel()
	prot := programs.ConsensusFromQueue()
	for _, in := range [][]value.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {7, 9}} {
		requireSolved(t, prot, task.Consensus{N: 2}, in)
	}
}

// TestConsensusFromTASExhaustive does the same for test&set.
func TestConsensusFromTASExhaustive(t *testing.T) {
	t.Parallel()
	prot := programs.ConsensusFromTAS()
	for _, in := range [][]value.Value{{0, 1}, {1, 0}, {4, 5}} {
		requireSolved(t, prot, task.Consensus{N: 2}, in)
	}
}

// TestConsensusFromStickyExhaustive verifies the consensus-number-∞
// object solves consensus among several processes.
func TestConsensusFromStickyExhaustive(t *testing.T) {
	t.Parallel()
	for procs := 2; procs <= 4; procs++ {
		prot := programs.ConsensusFromSticky(procs)
		requireSolved(t, prot, task.Consensus{N: procs}, distinctInputs(procs))
	}
}

// TestAlgorithm2ViaPACMExhaustive is experiment E8 (Theorem 7.1's
// positive half, via Observation 5.1(b)): the (n,m)-PAC object solves
// the n-DAC problem through its PAC face — for every m, including
// m < n-1 where Theorem 7.1 places the object strictly below the
// consensus power the problem would otherwise require.
func TestAlgorithm2ViaPACMExhaustive(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ n, m int }{{3, 2}, {3, 3}, {2, 2}} {
		prot := programs.Algorithm2ViaPACM(tc.n, tc.m, 1)
		for _, in := range [][]value.Value{sim.Inputs(tc.n, 1, 0), sim.Inputs(tc.n, 0, 1)} {
			sys, err := prot.System(in)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := explore.Check(sys, task.DAC{N: tc.n, P: 0}, explore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Solved() {
				t.Fatalf("n=%d m=%d inputs=%v: %v", tc.n, tc.m, in, rep.Violations[0])
			}
		}
	}
}

// TestQueueWithoutTokenFails is the control: with an EMPTY queue the
// same protocol cannot break symmetry — both processes "lose", adopt
// each other's announcement, and the checker finds the violation.
func TestQueueWithoutTokenFails(t *testing.T) {
	t.Parallel()
	prot := programs.ConsensusFromQueue()
	broken := programs.Protocol{
		Name:     prot.Name + " (no token)",
		Programs: prot.Programs,
		Objects: []spec.Spec{
			objects.NewQueue(), // empty: no token to win
			objects.NewRegister(),
			objects.NewRegister(),
		},
	}
	rep := check(t, broken, task.Consensus{N: 2}, []value.Value{0, 1}, explore.Options{})
	if rep.Solved() {
		t.Fatal("tokenless queue protocol reported as correct")
	}
}

package programs_test

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestChaudhuriSolvesResilientKSet verifies Chaudhuri's protocol [5]
// exhaustively for small instances: (k-1)-resilient k-set agreement
// among n processes from registers alone.
func TestChaudhuriSolvesResilientKSet(t *testing.T) {
	t.Parallel()
	cases := []struct{ n, k int }{
		{2, 2}, {3, 2}, {3, 3}, {4, 3},
	}
	for _, tc := range cases {
		prot := programs.ChaudhuriKSet(tc.n, tc.k)
		tsk := task.ResilientKSet{N: tc.n, K: tc.k, F: tc.k - 1}
		for _, in := range [][]value.Value{distinctInputs(tc.n), sim.Inputs(tc.n, 3, 5)} {
			rep := check(t, prot, tsk, in, explore.Options{})
			if !rep.Solved() {
				t.Fatalf("n=%d k=%d inputs=%v: %v", tc.n, tc.k, in, rep.Violations[0])
			}
		}
	}
}

// TestChaudhuriConsensusZeroResilient: the k = 1 case is 0-resilient
// consensus (wait for all inputs, decide the minimum) — correct as long
// as nobody crashes.
func TestChaudhuriConsensusZeroResilient(t *testing.T) {
	t.Parallel()
	prot := programs.ChaudhuriKSet(3, 1)
	rep := check(t, prot, task.ResilientKSet{N: 3, K: 1, F: 0}, distinctInputs(3), explore.Options{})
	if !rep.Solved() {
		t.Fatalf("0-resilient consensus refuted: %v", rep.Violations[0])
	}
}

// TestChaudhuriNotKResilient is the tightness half (the BG/HS/SZ
// impossibility's shape): the same protocol demanded to tolerate k
// crashes has a termination violation — the collect loop waits for
// N-k+1 inputs that k crashed processes never write.
func TestChaudhuriNotKResilient(t *testing.T) {
	t.Parallel()
	const n, k = 3, 2
	prot := programs.ChaudhuriKSet(n, k)
	rep := check(t, prot, task.ResilientKSet{N: n, K: k, F: k}, distinctInputs(n), explore.Options{})
	if rep.Solved() {
		t.Fatal("protocol claimed to tolerate k crashes")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == explore.ViolationWaitFree && len(v.Cycle) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no termination violation with cycle witness: %v", rep.Violations)
	}
}

// TestChaudhuriDecidesKSmallest pins the mechanism: with distinct
// inputs, every decision is among the k smallest inputs.
func TestChaudhuriDecidesKSmallest(t *testing.T) {
	t.Parallel()
	const n, k = 4, 2
	prot := programs.ChaudhuriKSet(n, k)
	inputs := []value.Value{40, 10, 30, 20}
	for seed := uint64(1); seed <= 100; seed++ {
		sys, err := prot.System(inputs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sys, task.ResilientKSet{N: n, K: k, F: k - 1}, sim.Random(seed),
			sim.Options{MaxSteps: 4096})
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatal(res.Violation)
		}
		for i := range res.Outcome.Decided {
			if !res.Outcome.Decided[i] {
				continue
			}
			d := res.Outcome.Decisions[i]
			if d != 10 && d != 20 {
				t.Fatalf("seed %d: process %d decided %s, not among the 2 smallest", seed, i+1, d)
			}
		}
	}
}

// TestChaudhuriSurvivesCrashes injects k-1 crashes in the simulator;
// every surviving process still decides.
func TestChaudhuriSurvivesCrashes(t *testing.T) {
	t.Parallel()
	const n, k = 4, 3
	prot := programs.ChaudhuriKSet(n, k)
	sys, err := prot.System(distinctInputs(n))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sys, task.ResilientKSet{N: n, K: k, F: k - 1}, sim.Random(5), sim.Options{
		MaxSteps: 1 << 14,
		CrashAt:  map[int]int{0: 0, 1: 2}, // crash two processes (k-1 = 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	for i := 2; i < n; i++ {
		if !res.Outcome.Decided[i] {
			t.Fatalf("survivor %d undecided", i+1)
		}
	}
}

package programs

import (
	"strconv"

	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// chaudhuriInfinity is the initial minimum accumulator; inputs must be
// smaller.
const chaudhuriInfinity = value.Value(1) << 62

// ChaudhuriKSet is Chaudhuri's f-resilient k-set agreement protocol
// from registers alone ([5], the paper's reference for the k-set
// agreement problem): process i writes its input to register i, then
// repeatedly collects all N registers until at least N-k+1 inputs are
// visible, and decides the minimum value seen.
//
// Safety: any two collects of N-k+1 inputs intersect in at least
// N-2(k-1) >= 1 positions... more simply, the minimum over any
// (N-k+1)-subset of inputs is one of the k smallest inputs, so at most
// k distinct values are decided. Termination holds whenever at most
// k-1 processes crash (then N-k+1 registers eventually fill) — i.e.
// the protocol solves task.ResilientKSet{N, K: k, F: k-1}, and the
// waiting loop is exactly why it does NOT tolerate k crashes (the
// BG/HS/SZ impossibility).
func ChaudhuriKSet(n, k int) Protocol {
	progs := make([]*machine.Program, n)
	for i := 1; i <= n; i++ {
		progs[i-1] = chaudhuriProgram(n, k, i)
	}
	objs := make([]spec.Spec, n)
	for j := range objs {
		objs[j] = objects.NewRegister()
	}
	return Protocol{
		Name: strconv.Itoa(k-1) + "-resilient (" + strconv.Itoa(n) + "," + strconv.Itoa(k) +
			")-set agreement from registers (Chaudhuri)",
		Programs: progs,
		Objects:  objs,
	}
}

// chaudhuriProgram emits the unrolled collect loop for process i.
func chaudhuriProgram(n, k, i int) *machine.Program {
	const (
		regAckW  machine.RegID = 2
		regRead  machine.RegID = 3
		regCount machine.RegID = 4
		regMin   machine.RegID = 5
	)
	b := machine.NewBuilder("chaudhuri-p"+strconv.Itoa(i), 6)
	// Announce the input in our own register.
	b.Invoke(regAckW, i-1, value.MethodWrite, machine.R(machine.RegInput), machine.Operand{})
	b.Label("collect")
	b.Set(regCount, machine.C(0))
	b.Set(regMin, machine.C(chaudhuriInfinity))
	for j := 0; j < n; j++ {
		js := strconv.Itoa(j)
		b.Invoke(regRead, j, value.MethodRead, machine.Operand{}, machine.Operand{})
		b.JEq(machine.R(regRead), machine.C(value.None), "skip"+js)
		b.Add(regCount, machine.R(regCount), machine.C(1))
		b.JLt(machine.R(regRead), machine.R(regMin), "newmin"+js)
		b.Jmp("skip" + js)
		b.Label("newmin" + js)
		b.Set(regMin, machine.R(regRead))
		b.Label("skip" + js)
	}
	// Enough inputs visible?
	b.JLt(machine.R(regCount), machine.C(value.Value(n-k+1)), "collect")
	b.Decide(machine.R(regMin))
	return b.MustBuild()
}

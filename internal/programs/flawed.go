package programs

import (
	"strconv"

	"setagree/internal/core"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// This file holds natural-but-doomed candidate protocols. None of them
// can work — the paper's impossibility theorems say so — and the model
// checker produces the concrete counterexample runs. They serve as
// executable illustrations of Theorems 4.2, 5.2, and 7.1 and as
// regression anchors for the checker itself.

// NaiveTwoSAConsensus attempts consensus among procs >= 2 processes by
// proposing to a single 2-SA object and deciding the response. It fails
// Agreement: the 2-SA object may answer with two distinct values
// (illustrates why 2-SA does not raise consensus power, cf. Theorem 4.2
// using 2-SA objects without gaining consensus strength).
func NaiveTwoSAConsensus(procs int) Protocol {
	prog := proposeDecide("naive-2sa-consensus", value.MethodPropose, 0, 0)
	progs := make([]*machine.Program, procs)
	for i := range progs {
		progs[i] = prog
	}
	return Protocol{
		Name:     strconv.Itoa(procs) + "-consensus attempt from 2-SA (flawed)",
		Programs: progs,
		Objects:  []spec.Spec{objects.NewTwoSA()},
	}
}

// OverSubscribedConsensus attempts consensus among m+1 processes with
// one m-consensus object, with the (m+1)-th response ⊥ handled by a
// register handoff: a process that receives a value writes it to a
// register and decides it; a process that receives ⊥ spins on the
// register. It fails wait-freedom — the spinner's solo run never
// decides (illustrates the negative half of the consensus hierarchy and
// the shape of Theorem 5.2's conclusion).
func OverSubscribedConsensus(m int) Protocol {
	prog := machine.NewBuilder("oversubscribed-consensus", numRegs).
		Invoke(regTemp, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		JEq(machine.R(regTemp), machine.C(value.Bottom), "lost").
		Invoke(regAck, 1, value.MethodWrite, machine.R(regTemp), machine.Operand{}).
		Decide(machine.R(regTemp)).
		Label("lost").
		Invoke(regTemp, 1, value.MethodRead, machine.Operand{}, machine.Operand{}).
		JEq(machine.R(regTemp), machine.C(value.None), "lost").
		Decide(machine.R(regTemp)).
		MustBuild()
	progs := make([]*machine.Program, m+1)
	for i := range progs {
		progs[i] = prog
	}
	return Protocol{
		Name:     strconv.Itoa(m+1) + "-consensus attempt from " + objects.NewConsensus(m).Name() + " (flawed)",
		Programs: progs,
		Objects:  []spec.Spec{objects.NewConsensus(m), objects.NewRegister()},
	}
}

// DACFromConsensusAndTwoSA attempts the (n+1)-DAC problem using an
// n-consensus object, a register, and a 2-SA object — exactly the base
// Theorem 4.2 proves insufficient. The distinguished process p proposes
// to the n-consensus object and aborts on ⊥; the others propose and, on
// ⊥, fall back to the 2-SA object. It fails Agreement (the 2-SA path
// can return a second value) or Validity, and the checker exhibits the
// run.
func DACFromConsensusAndTwoSA(n int, p int) Protocol {
	procs := n + 1
	distinguished := machine.NewBuilder("dac-attempt-distinguished", numRegs).
		Invoke(regTemp, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		JEq(machine.R(regTemp), machine.C(value.Bottom), "abort").
		Decide(machine.R(regTemp)).
		Label("abort").
		Abort().
		MustBuild()
	other := machine.NewBuilder("dac-attempt-other", numRegs).
		Invoke(regTemp, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		JEq(machine.R(regTemp), machine.C(value.Bottom), "fallback").
		Decide(machine.R(regTemp)).
		Label("fallback").
		Invoke(regTemp, 1, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		Decide(machine.R(regTemp)).
		MustBuild()
	progs := make([]*machine.Program, procs)
	for i := range progs {
		if i+1 == p {
			progs[i] = distinguished
		} else {
			progs[i] = other
		}
	}
	return Protocol{
		Name:     strconv.Itoa(procs) + "-DAC attempt from n-consensus + 2-SA (flawed)",
		Programs: progs,
		Objects:  []spec.Spec{objects.NewConsensus(n), objects.NewTwoSA()},
	}
}

// UpsettingAlgorithm2 is Algorithm 2 with the distinguished process
// erroneously proposing twice in a row with its own label, upsetting
// the n-PAC object (Lemma 3.2) and aborting even in solo runs — a
// Nontriviality violation the checker catches. It doubles as a
// regression test that the PAC spec's upset machinery matches §3.
func UpsettingAlgorithm2(n, p int) Protocol {
	base := Algorithm2(n, p)
	distinguished := machine.NewBuilder("alg2-upsetting-distinguished", numRegs).
		Invoke(regAck, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)).
		Invoke(regAck, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)).
		Invoke(regTemp, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).
		JEq(machine.R(regTemp), machine.C(value.Bottom), "abort").
		Decide(machine.R(regTemp)).
		Label("abort").
		Abort().
		MustBuild()
	progs := make([]*machine.Program, n)
	copy(progs, base.Programs)
	progs[p-1] = distinguished
	return Protocol{
		Name:     strconv.Itoa(n) + "-DAC via Algorithm 2 with double propose (flawed)",
		Programs: progs,
		Objects:  []spec.Spec{core.NewPAC(n)},
	}
}

package snapshot_test

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"setagree/internal/snapshot"
	"setagree/internal/value"
)

func TestImmediateSolo(t *testing.T) {
	t.Parallel()
	im := snapshot.NewImmediate(3)
	view, err := im.WriteRead(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(view) != 1 || view[2] != 9 {
		t.Fatalf("solo view = %v, want {2: 9}", view)
	}
}

func TestImmediateErrors(t *testing.T) {
	t.Parallel()
	im := snapshot.NewImmediate(2)
	if _, err := im.WriteRead(0, 1); !errors.Is(err, snapshot.ErrBadComponent) {
		t.Fatalf("process 0: %v", err)
	}
	if _, err := im.WriteRead(3, 1); !errors.Is(err, snapshot.ErrBadComponent) {
		t.Fatalf("process 3: %v", err)
	}
	if _, err := im.WriteRead(1, value.Bottom); !errors.Is(err, snapshot.ErrBadComponent) {
		t.Fatalf("sentinel: %v", err)
	}
	if _, err := im.WriteRead(1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := im.WriteRead(1, 5); !errors.Is(err, snapshot.ErrBadComponent) {
		t.Fatalf("second participation: %v", err)
	}
}

// runImmediate runs all n processes concurrently and returns their
// views.
func runImmediate(t *testing.T, n int) []snapshot.View {
	t.Helper()
	im := snapshot.NewImmediate(n)
	views := make([]snapshot.View, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			view, err := im.WriteRead(i, value.Value(100+i))
			if err != nil {
				t.Error(err)
				return
			}
			views[i-1] = view
		}(i)
	}
	wg.Wait()
	return views
}

// TestImmediateProperties checks the three defining properties over
// many concurrent rounds.
func TestImmediateProperties(t *testing.T) {
	t.Parallel()
	const n = 5
	for round := 0; round < 200; round++ {
		views := runImmediate(t, n)
		// Self-inclusion, and values are authentic.
		for i, view := range views {
			if view == nil {
				t.Fatal("missing view")
			}
			if got, ok := view[i+1]; !ok || got != value.Value(100+i+1) {
				t.Fatalf("round %d: view of p%d lacks its own value: %v", round, i+1, view)
			}
			for j, v := range view {
				if v != value.Value(100+j) {
					t.Fatalf("round %d: view of p%d has corrupted entry %d: %s", round, i+1, j, v)
				}
			}
		}
		// Containment: views totally ordered by size then subset.
		ordered := append([]snapshot.View(nil), views...)
		sort.Slice(ordered, func(a, b int) bool { return len(ordered[a]) < len(ordered[b]) })
		for x := 1; x < len(ordered); x++ {
			if !ordered[x-1].SubsetOf(ordered[x]) {
				t.Fatalf("round %d: views not ordered by inclusion: %v vs %v",
					round, ordered[x-1], ordered[x])
			}
		}
		// Immediacy: j in view_i implies view_j subset of view_i.
		for i, vi := range views {
			for j := range views {
				if vi.Contains(j + 1) {
					if !views[j].SubsetOf(vi) {
						t.Fatalf("round %d: immediacy violated: p%d in view of p%d but view_%d ⊄ view_%d",
							round, j+1, i+1, j+1, i+1)
					}
				}
				_ = i
			}
		}
	}
}

// TestImmediateSequentialIsChain: fully sequential participation gives
// strictly growing views.
func TestImmediateSequentialIsChain(t *testing.T) {
	t.Parallel()
	const n = 4
	im := snapshot.NewImmediate(n)
	prevLen := 0
	for i := 1; i <= n; i++ {
		view, err := im.WriteRead(i, value.Value(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(view) != prevLen+1 {
			t.Fatalf("sequential view %d has size %d, want %d", i, len(view), prevLen+1)
		}
		prevLen = len(view)
	}
}

// Package snapshot implements the wait-free atomic snapshot object of
// Afek et al. from single-writer registers — the workhorse substrate of
// the shared-memory literature the paper lives in (read/write protocols
// in the BG simulation, §1's system model).
//
// A Snapshot over n components supports, for process i:
//
//	Update(i, v) — atomically set component i to v;
//	Scan()       — atomically read all components.
//
// The implementation is the classic one: each component register holds
// (value, sequence number, embedded view); a scanner double-collects
// until it sees two identical collects (a direct snapshot) or observes
// some updater move twice, in which case it borrows that updater's
// embedded view (the updater performed a scan inside its second update,
// which started after the scanner began — so the view is fresh).
// Updates perform an embedded Scan and then write. Both operations are
// wait-free: a scanner that sees n+1 collects must have seen some
// updater move twice.
package snapshot

import (
	"errors"
	"fmt"
	"sync"

	"setagree/internal/value"
)

// ErrBadComponent reports a component index outside [1, n].
var ErrBadComponent = errors.New("snapshot: component index out of range")

// cell is the content of one single-writer register.
type cell struct {
	view []value.Value // the updater's embedded scan
	val  value.Value
	seq  uint64
}

// Snapshot is a wait-free n-component atomic snapshot object. It is
// safe for concurrent use; component i must only be updated by its
// owning process (single-writer), which matches the system model.
type Snapshot struct {
	mu    sync.Mutex // models the per-register atomicity; collects copy under it
	cells []cell
}

// New creates a snapshot object with n components, all value.None.
func New(n int) *Snapshot {
	s := &Snapshot{cells: make([]cell, n)}
	for i := range s.cells {
		s.cells[i].val = value.None
	}
	return s
}

// N returns the component count.
func (s *Snapshot) N() int { return len(s.cells) }

// collect atomically reads every register once. (Register reads are
// individually atomic; the collect itself is not — that is the point of
// the double-collect algorithm. We nevertheless read them under one
// lock acquisition per register to model per-register atomicity; the
// loop releases the lock between registers to preserve the algorithm's
// interleaving semantics.)
func (s *Snapshot) collect() []cell {
	out := make([]cell, len(s.cells))
	for i := range s.cells {
		s.mu.Lock()
		out[i] = s.cells[i]
		s.mu.Unlock()
	}
	return out
}

func sameCollect(a, b []cell) bool {
	for i := range a {
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

func views(c []cell) []value.Value {
	out := make([]value.Value, len(c))
	for i := range c {
		out[i] = c[i].val
	}
	return out
}

// Scan returns an atomic view of all components.
func (s *Snapshot) Scan() []value.Value {
	moved := make([]int, len(s.cells))
	prev := s.collect()
	for {
		cur := s.collect()
		if sameCollect(prev, cur) {
			return views(cur) // direct (double-collect) snapshot
		}
		for i := range cur {
			if cur[i].seq != prev[i].seq {
				moved[i]++
				if moved[i] >= 2 && cur[i].view != nil {
					// Component i's updater moved twice during our scan:
					// its second update's embedded view began after our
					// scan did, so it is a valid snapshot for us too.
					borrowed := make([]value.Value, len(cur[i].view))
					copy(borrowed, cur[i].view)
					return borrowed
				}
			}
		}
		prev = cur
	}
}

// Update atomically sets component i (1-based) to v. The update embeds
// a scan so that concurrent scanners can borrow its view.
func (s *Snapshot) Update(i int, v value.Value) error {
	if i < 1 || i > len(s.cells) {
		return fmt.Errorf("component %d of %d: %w", i, len(s.cells), ErrBadComponent)
	}
	view := s.Scan()
	s.mu.Lock()
	c := &s.cells[i-1]
	c.val = v
	c.seq++
	c.view = view
	s.mu.Unlock()
	return nil
}

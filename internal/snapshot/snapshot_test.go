package snapshot_test

import (
	"errors"
	"sync"
	"testing"

	"setagree/internal/snapshot"
	"setagree/internal/value"
)

func TestInitialScan(t *testing.T) {
	t.Parallel()
	s := snapshot.New(3)
	for i, v := range s.Scan() {
		if v != value.None {
			t.Errorf("component %d = %s, want NIL", i+1, v)
		}
	}
}

func TestUpdateThenScan(t *testing.T) {
	t.Parallel()
	s := snapshot.New(3)
	if err := s.Update(2, 7); err != nil {
		t.Fatal(err)
	}
	got := s.Scan()
	want := []value.Value{value.None, 7, value.None}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v", got)
		}
	}
}

func TestUpdateBadComponent(t *testing.T) {
	t.Parallel()
	s := snapshot.New(2)
	if err := s.Update(0, 1); !errors.Is(err, snapshot.ErrBadComponent) {
		t.Fatalf("component 0: %v", err)
	}
	if err := s.Update(3, 1); !errors.Is(err, snapshot.ErrBadComponent) {
		t.Fatalf("component 3: %v", err)
	}
}

// TestScansAreMonotone checks the linearizability consequence used by
// every snapshot client: per-component values observed by successive
// scans of one process never go backwards when the writer writes an
// increasing sequence.
func TestScansAreMonotone(t *testing.T) {
	t.Parallel()
	const n = 4
	const per = 300
	s := snapshot.New(n)
	var wg sync.WaitGroup
	// Writers: component i counts up.
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := 1; v <= per; v++ {
				if err := s.Update(i, value.Value(v)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	// Scanners: every component must be non-decreasing across scans,
	// within one scanner.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := make([]value.Value, n)
			for i := range last {
				last[i] = value.None
			}
			for k := 0; k < per; k++ {
				view := s.Scan()
				for i, v := range view {
					if v == value.None {
						if last[i] != value.None {
							t.Errorf("component %d went back to NIL", i+1)
							return
						}
						continue
					}
					if last[i] != value.None && v < last[i] {
						t.Errorf("component %d regressed %s -> %s", i+1, last[i], v)
						return
					}
					last[i] = v
				}
			}
		}()
	}
	wg.Wait()
}

// TestScannersAgreeOnOrder checks mutual consistency: two views are
// always comparable component-wise (one dominates the other), which
// holds iff scans are linearizable for monotone writers.
func TestScannersAgreeOnOrder(t *testing.T) {
	t.Parallel()
	const n = 3
	const per = 200
	s := snapshot.New(n)
	var mu sync.Mutex
	var viewsSeen [][]value.Value
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := 1; v <= per; v++ {
				if err := s.Update(i, value.Value(v)); err != nil {
					t.Error(err)
					return
				}
				view := s.Scan()
				mu.Lock()
				viewsSeen = append(viewsSeen, view)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	dominates := func(a, b []value.Value) bool {
		for i := range a {
			av, bv := a[i], b[i]
			if av == value.None {
				av = 0
			}
			if bv == value.None {
				bv = 0
			}
			if av < bv {
				return false
			}
		}
		return true
	}
	for x := 0; x < len(viewsSeen); x++ {
		for y := x + 1; y < len(viewsSeen); y++ {
			if !dominates(viewsSeen[x], viewsSeen[y]) && !dominates(viewsSeen[y], viewsSeen[x]) {
				t.Fatalf("incomparable views %v and %v — scans not atomic", viewsSeen[x], viewsSeen[y])
			}
		}
	}
}

// TestEmbeddedViewBorrowing forces the borrow path: a scanner racing a
// fast updater still returns a coherent view.
func TestEmbeddedViewBorrowing(t *testing.T) {
	t.Parallel()
	s := snapshot.New(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v := value.Value(1)
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Update(1, v); err != nil {
					t.Error(err)
					return
				}
				v++
			}
		}
	}()
	for i := 0; i < 200; i++ {
		view := s.Scan()
		if len(view) != 2 {
			t.Fatalf("view %v", view)
		}
	}
	close(stop)
	wg.Wait()
}

package snapshot

import (
	"fmt"
	"sync"

	"setagree/internal/value"
)

// Immediate is a one-shot immediate snapshot object for n processes
// (Borowsky–Gafni): each process calls WriteRead(i, v) once and obtains
// a view — a partial vector of the values written so far — such that
//
//   - self-inclusion: process i's own value is in its view;
//   - containment: any two views are ordered by inclusion; and
//   - immediacy: if process j's value is in process i's view, then
//     j's view is a subset of i's view.
//
// Immediate snapshots are the building block of the iterated-immediate-
// snapshot model underlying the topological characterizations of k-set
// agreement that give the paper's "set agreement power" its meaning.
//
// The implementation is the classic level-descent algorithm: a process
// starts at level n and descends one level at a time, writing its
// (value, level) and collecting; it returns when the set of processes
// at its level or below has size at least its level.
type Immediate struct {
	mu     sync.Mutex
	vals   []value.Value
	levels []int
	n      int
}

// NewImmediate creates a one-shot immediate snapshot for n processes.
func NewImmediate(n int) *Immediate {
	im := &Immediate{
		vals:   make([]value.Value, n),
		levels: make([]int, n),
		n:      n,
	}
	for i := range im.vals {
		im.vals[i] = value.None
		im.levels[i] = n + 1
	}
	return im
}

// N returns the process bound.
func (im *Immediate) N() int { return im.n }

// View is a process's immediate snapshot result: the values of the
// processes it saw, indexed by 1-based process id.
type View map[int]value.Value

// Contains reports whether the view includes process j.
func (v View) Contains(j int) bool {
	_, ok := v[j]
	return ok
}

// SubsetOf reports whether every entry of v appears in w.
func (v View) SubsetOf(w View) bool {
	for j, x := range v {
		y, ok := w[j]
		if !ok || y != x {
			return false
		}
	}
	return true
}

// WriteRead performs process i's single operation: it contributes v and
// returns i's view. Each process may call it once.
func (im *Immediate) WriteRead(i int, v value.Value) (View, error) {
	if i < 1 || i > im.n {
		return nil, fmt.Errorf("process %d of %d: %w", i, im.n, ErrBadComponent)
	}
	if v.IsSentinel() {
		return nil, fmt.Errorf("sentinel value %s: %w", v, ErrBadComponent)
	}
	im.mu.Lock()
	already := im.levels[i-1] <= im.n
	im.mu.Unlock()
	if already {
		return nil, fmt.Errorf("process %d already participated: %w", i, ErrBadComponent)
	}

	for level := im.n; level >= 1; level-- {
		// Write (v, level) to our register.
		im.mu.Lock()
		im.vals[i-1] = v
		im.levels[i-1] = level
		im.mu.Unlock()

		// Collect.
		type obs struct {
			val   value.Value
			level int
		}
		seen := make([]obs, im.n)
		for j := 0; j < im.n; j++ {
			im.mu.Lock()
			seen[j] = obs{val: im.vals[j], level: im.levels[j]}
			im.mu.Unlock()
		}

		// S = processes at our level or below.
		count := 0
		for j := 0; j < im.n; j++ {
			if seen[j].level <= level {
				count++
			}
		}
		if count >= level {
			view := make(View, count)
			for j := 0; j < im.n; j++ {
				if seen[j].level <= level {
					view[j+1] = seen[j].val
				}
			}
			return view, nil
		}
	}
	// Unreachable: at level 1 the count includes at least ourselves.
	return nil, fmt.Errorf("process %d descended below level 1: %w", i, ErrBadComponent)
}

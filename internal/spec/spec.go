// Package spec defines the sequential-specification framework that every
// shared object in this repository is built on.
//
// The paper gives each object "in terms of a set of states, a set of
// operations, a set of responses, and a state transition relation" (§3,
// §4) and assumes the objects are linearizable [11], so it reasons only
// about sequential histories. We mirror that exactly: a Spec is a pure,
// possibly nondeterministic transition relation over immutable states.
// One Spec drives both execution modes of the repository:
//
//   - the concurrent runtime (Atomic in this package) guards a state with
//     a mutex and resolves nondeterminism with a pluggable Chooser; and
//   - the model checker (internal/explore) branches over every
//     transition a Step offers.
package spec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"setagree/internal/value"
)

// ErrBadOp is wrapped by Step implementations when an operation is not
// part of the object's interface (wrong method, out-of-range label, or a
// reserved sentinel proposed as an application value, cf. §3 fn. 4).
var ErrBadOp = errors.New("operation not in object interface")

// State is an immutable snapshot of an object's state. Implementations
// must treat states as values: Step never mutates its input state.
type State interface {
	// Key returns a canonical encoding of the state. Two states of the
	// same Spec are equal if and only if their keys are equal; the model
	// checker hashes configurations by concatenating keys.
	Key() string
}

// AppendKeyer is an optional State extension for allocation-free
// configuration hashing: AppendKey appends a compact binary encoding of
// the state to dst and returns the extended slice, with the same
// canonicity contract as Key (two states of the same Spec are equal iff
// their encodings are equal byte-for-byte). The encoding must be
// self-delimiting — decodable without knowing where the state's bytes
// end — because the model checker concatenates the encodings of every
// process and object state into one configuration key. Length-prefixing
// variable-size components with binary.AppendUvarint suffices.
//
// States without the extension still work: the model checker falls back
// to the length-prefixed Key string via AppendStateKey. Every State in
// this repository implements AppendKeyer; the interface exists so
// out-of-tree specs remain usable without it.
type AppendKeyer interface {
	AppendKey(dst []byte) []byte
}

// AppendStateKey appends s's self-delimiting binary key to dst: the
// AppendKeyer fast path when implemented, else the Key string prefixed
// with its length (which is self-delimiting for any Key).
func AppendStateKey(dst []byte, s State) []byte {
	if ak, ok := s.(AppendKeyer); ok {
		return ak.AppendKey(dst)
	}
	k := s.Key()
	dst = binary.AppendUvarint(dst, uint64(len(k)))
	return append(dst, k...)
}

// Transition is one entry of the transition relation: the successor
// state together with the operation's response.
type Transition struct {
	// Next is the successor state.
	Next State
	// Resp is the response returned to the caller.
	Resp value.Value
}

// Spec is a sequential object specification.
type Spec interface {
	// Name identifies the object type, e.g. "3-PAC" or "2-SA".
	Name() string

	// Init returns the object's initial state.
	Init() State

	// Step applies op to state s and returns every possible transition.
	// Deterministic objects return exactly one transition.
	// Nondeterministic objects (the strong set-agreement objects of §4
	// and §6) return one transition per allowed response. Step returns
	// an error wrapping ErrBadOp if op is not part of the object's
	// interface; it never returns an empty transition set otherwise.
	Step(s State, op value.Op) ([]Transition, error)
}

// Deterministic reports whether the spec declares itself deterministic.
// Specs that implement the interface{ Deterministic() bool } extension
// are consulted; all other specs are conservatively treated as
// nondeterministic.
func Deterministic(s Spec) bool {
	d, ok := s.(interface{ Deterministic() bool })
	return ok && d.Deterministic()
}

// ValueOblivious reports whether the spec declares its transition
// relation value-oblivious: for every bijection τ of application values
// that fixes the sentinels, τ commutes with Step — relabeling the
// values in a state and operation relabels the transitions' states and
// responses and changes nothing else. Registers, queues, consensus, and
// set-agreement objects qualify (they store and return proposals
// without inspecting them); objects whose responses encode fixed
// values regardless of the proposals — test-and-set's 0/1 winner flag,
// counters — do not. Specs opt in via the
// interface{ ValueOblivious() bool } extension; all other specs are
// conservatively treated as value-sensitive. The sweep memoizer
// (internal/enumerate) consults this to decide whether two candidates
// related by the 0↔1 value swap have isomorphic executions.
func ValueOblivious(s Spec) bool {
	v, ok := s.(interface{ ValueOblivious() bool })
	return ok && v.ValueOblivious()
}

// BadOpError builds the canonical ErrBadOp-wrapping error for spec
// implementations.
func BadOpError(specName string, op value.Op, reason string) error {
	return fmt.Errorf("%s: %s: %s: %w", specName, op, reason, ErrBadOp)
}

// CheckProposal validates that an application-supplied proposal value is
// not one of the reserved sentinels (§3 footnote 4: "processes do not
// propose the special values ⊥ and NIL").
func CheckProposal(specName string, op value.Op) error {
	if op.Arg.IsSentinel() {
		return BadOpError(specName, op, "sentinel values cannot be proposed")
	}
	return nil
}

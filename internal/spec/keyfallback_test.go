package spec_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// plainState implements spec.State but deliberately neither
// spec.AppendKeyer nor spec.Symmetric, standing in for an out-of-tree
// spec that only provides Key().
type plainState struct{ k string }

func (s plainState) Key() string { return s.k }

// TestAppendStateKeyFallback: states without AppendKeyer fall back to
// the length-prefixed Key string, which must be self-delimiting (a key
// that is a strict prefix of another still produces distinct,
// unambiguous concatenations) and must round-trip the original Key.
func TestAppendStateKeyFallback(t *testing.T) {
	t.Parallel()
	for _, k := range []string{"", "a", "ab", "a\x00b", "long-key-with-\xff-bytes"} {
		got := spec.AppendStateKey([]byte("prefix"), plainState{k: k})
		if !bytes.HasPrefix(got, []byte("prefix")) {
			t.Fatalf("key %q: dst prefix clobbered", k)
		}
		rest := got[len("prefix"):]
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || n != uint64(len(k)) {
			t.Fatalf("key %q: bad length prefix (n=%d, sz=%d)", k, n, sz)
		}
		if string(rest[sz:]) != k {
			t.Fatalf("key %q round-tripped as %q", k, rest[sz:])
		}
	}
	// Self-delimiting in concatenation: ("a","b") and ("ab","") encode
	// differently even though the raw strings concatenate identically.
	ab := spec.AppendStateKey(spec.AppendStateKey(nil, plainState{k: "a"}), plainState{k: "b"})
	abEmpty := spec.AppendStateKey(spec.AppendStateKey(nil, plainState{k: "ab"}), plainState{k: ""})
	if bytes.Equal(ab, abEmpty) {
		t.Fatal("length prefixing failed to disambiguate concatenated keys")
	}
}

// TestAppendStateKeyFastPath: a State with AppendKeyer bypasses the
// Key-string fallback and the two paths agree on canonicity — equal
// states encode equal, distinct states encode distinct.
func TestAppendStateKeyFastPath(t *testing.T) {
	t.Parallel()
	reg := objects.NewRegister()
	s0 := reg.Init()
	tr, err := reg.Step(s0, value.Write(7))
	if err != nil {
		t.Fatal(err)
	}
	s7 := tr[0].Next
	if ak, ok := s0.(spec.AppendKeyer); !ok {
		t.Fatalf("register state does not implement AppendKeyer")
	} else if !bytes.Equal(spec.AppendStateKey(nil, s0), ak.AppendKey(nil)) {
		t.Fatal("AppendStateKey did not take the AppendKeyer fast path")
	}
	if bytes.Equal(spec.AppendStateKey(nil, s0), spec.AppendStateKey(nil, s7)) {
		t.Fatal("distinct register states share a binary key")
	}
	tr2, err := reg.Step(reg.Init(), value.Write(7))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spec.AppendStateKey(nil, s7), spec.AppendStateKey(nil, tr2[0].Next)) {
		t.Fatal("equal register states got different binary keys")
	}
}

// TestAppendStateKeyUnderFallback: AppendStateKeyUnder reports ok=false
// and leaves dst untouched for non-Symmetric states, and agrees with
// AppendKey under the identity permutation for Symmetric ones.
func TestAppendStateKeyUnderFallback(t *testing.T) {
	t.Parallel()
	dst := []byte("prefix")
	out, ok := spec.AppendStateKeyUnder(dst, plainState{k: "x"}, spec.Perm{})
	if ok {
		t.Fatal("plain state claimed Symmetric support")
	}
	if !bytes.Equal(out, dst) {
		t.Fatalf("dst modified on the failure path: %q", out)
	}
	// objects.NewCounter's state is the one in-tree State that opts out
	// of Symmetric; the explorer's rejection path depends on that.
	cnt := objects.NewCounter().Init()
	if _, ok := spec.AppendStateKeyUnder(nil, cnt, spec.Perm{}); ok {
		t.Fatal("counter state claims Symmetric support; the asymmetric-object rejection tests rely on it not to")
	}
	reg := objects.NewRegister()
	tr, err := reg.Step(reg.Init(), value.Write(9))
	if err != nil {
		t.Fatal(err)
	}
	s := tr[0].Next
	under, ok := spec.AppendStateKeyUnder(nil, s, spec.Perm{})
	if !ok {
		t.Fatal("register state lost Symmetric support")
	}
	if !bytes.Equal(under, spec.AppendStateKey(nil, s)) {
		t.Fatal("identity permutation changed the key")
	}
}

package spec_test

import (
	"errors"
	"sync"
	"testing"

	"setagree/internal/core"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

func TestAtomicAppliesSpec(t *testing.T) {
	t.Parallel()
	a := spec.NewAtomic(objects.NewRegister(), nil)
	v, err := a.Apply(value.Read())
	if err != nil || v != value.None {
		t.Fatalf("read: %s, %v", v, err)
	}
	if _, err := a.Apply(value.Write(7)); err != nil {
		t.Fatal(err)
	}
	v, err = a.Apply(value.Read())
	if err != nil || v != 7 {
		t.Fatalf("read after write: %s, %v", v, err)
	}
}

func TestAtomicBadOp(t *testing.T) {
	t.Parallel()
	a := spec.NewAtomic(objects.NewRegister(), nil)
	if _, err := a.Apply(value.Propose(1)); !errors.Is(err, spec.ErrBadOp) {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
}

func TestAtomicReset(t *testing.T) {
	t.Parallel()
	a := spec.NewAtomic(objects.NewRegister(), nil)
	if _, err := a.Apply(value.Write(3)); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	v, err := a.Apply(value.Read())
	if err != nil || v != value.None {
		t.Fatalf("after reset: %s, %v", v, err)
	}
}

// TestAtomicConcurrentCounter hammers one Atomic from many goroutines;
// fetch&add must hand out every prior total exactly once.
func TestAtomicConcurrentCounter(t *testing.T) {
	t.Parallel()
	a := spec.NewAtomic(objects.NewCounter(), nil)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	results := make([][]value.Value, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				v, err := a.Apply(value.FetchAdd(1))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				results[w] = append(results[w], v)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[value.Value]bool)
	for _, rs := range results {
		for _, v := range rs {
			if seen[v] {
				t.Fatalf("prior total %s handed out twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("%d distinct totals, want %d", len(seen), workers*each)
	}
}

// TestChooserPolicies pins the four built-in choosers.
func TestChooserPolicies(t *testing.T) {
	t.Parallel()
	if got := spec.FirstChooser().Choose(5); got != 0 {
		t.Errorf("First = %d", got)
	}
	if got := spec.LastChooser().Choose(5); got != 4 {
		t.Errorf("Last = %d", got)
	}
	rot := spec.RotatingChooser()
	a, b := rot.Choose(3), rot.Choose(3)
	if a == b {
		t.Errorf("Rotating returned %d twice", a)
	}
	sc := spec.SeededChooser(42)
	sc2 := spec.SeededChooser(42)
	for i := 0; i < 20; i++ {
		x, y := sc.Choose(7), sc2.Choose(7)
		if x != y {
			t.Fatal("SeededChooser not reproducible")
		}
		if x < 0 || x >= 7 {
			t.Fatalf("SeededChooser out of range: %d", x)
		}
	}
}

// TestAtomicChooserSelectsBranch checks that the chooser drives
// nondeterministic responses: a LastChooser 2-SA returns the most
// recently stored value.
func TestAtomicChooserSelectsBranch(t *testing.T) {
	t.Parallel()
	a := spec.NewAtomic(objects.NewTwoSA(), spec.LastChooser())
	if _, err := a.Apply(value.Propose(1)); err != nil {
		t.Fatal(err)
	}
	v, err := a.Apply(value.Propose(2))
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("LastChooser 2-SA returned %s, want 2", v)
	}

	b := spec.NewAtomic(objects.NewTwoSA(), spec.FirstChooser())
	if _, err := b.Apply(value.Propose(1)); err != nil {
		t.Fatal(err)
	}
	v, err = b.Apply(value.Propose(2))
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("FirstChooser 2-SA returned %s, want 1", v)
	}
}

func TestDeterministicDetection(t *testing.T) {
	t.Parallel()
	cases := []struct {
		sp   spec.Spec
		want bool
	}{
		{objects.NewRegister(), true},
		{objects.NewConsensus(3), true},
		{objects.NewTwoSA(), false},
		{objects.NewSetAgreement(4, 1), true},
		{core.NewPAC(2), true},
		{core.NewPACM(2, 2), true},
		{core.NewOPrime(2, nil), false},
	}
	for _, tc := range cases {
		if got := spec.Deterministic(tc.sp); got != tc.want {
			t.Errorf("Deterministic(%s) = %v, want %v", tc.sp.Name(), got, tc.want)
		}
	}
}

func TestCheckProposal(t *testing.T) {
	t.Parallel()
	if err := spec.CheckProposal("x", value.Propose(3)); err != nil {
		t.Errorf("valid proposal rejected: %v", err)
	}
	for _, v := range []value.Value{value.None, value.Bottom, value.Done} {
		if err := spec.CheckProposal("x", value.Propose(v)); !errors.Is(err, spec.ErrBadOp) {
			t.Errorf("sentinel %s accepted", v)
		}
	}
}

func TestAtomicSnapshotIsolated(t *testing.T) {
	t.Parallel()
	a := spec.NewAtomic(core.NewPAC(2), nil)
	if _, err := a.Apply(value.ProposeAt(5, 1)); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if _, err := a.Apply(value.Decide(1)); err != nil {
		t.Fatal(err)
	}
	// The earlier snapshot still shows the pre-decide state.
	ps, ok := snap.(core.PACState)
	if !ok || ps.V[0] != 5 {
		t.Fatalf("snapshot changed under later ops: %+v", snap)
	}
}

// Symmetry support for state keys. A protocol whose processes run the
// same code and differ only in their ids (and possibly their proposed
// values) induces an automorphism group on the configuration graph:
// permuting process ids (and values) of a reachable configuration
// yields another reachable configuration with the same future behavior
// up to the same permutation. The model checker exploits this by
// interning each configuration under the lexicographically minimal key
// in its orbit; Symmetric is the per-state hook that renders the key a
// permuted configuration WOULD have, without materializing the
// permuted state.

package spec

import "setagree/internal/value"

// Perm is one admissible symmetry: a permutation of process ids
// together with a (possibly identity) permutation of application
// values. The zero Perm is the identity.
type Perm struct {
	// Proc maps 0-based process index i to its image Proc[i]. A nil
	// slice is the identity on every index.
	Proc []int
	// Inv is the inverse of Proc (Inv[Proc[i]] = i), kept alongside it
	// because key encoders iterate OUTPUT positions: the permuted
	// state's slot j holds what the original kept in slot Inv[j]. Nil
	// iff Proc is nil.
	Inv []int
	// Vals maps application values to their images. Values absent from
	// the map — and in particular the reserved sentinels, which are
	// never admissible images — map to themselves. Nil is the identity.
	Vals map[value.Value]value.Value
}

// ProcIdx returns the image of 0-based process index i. Indices
// outside the permutation's domain map to themselves.
func (p Perm) ProcIdx(i int) int {
	if p.Proc == nil || i < 0 || i >= len(p.Proc) {
		return i
	}
	return p.Proc[i]
}

// ProcInvIdx returns the pre-image of 0-based process index j: the i
// with ProcIdx(i) == j. Indices outside the domain map to themselves.
func (p Perm) ProcInvIdx(j int) int {
	if p.Inv == nil || j < 0 || j >= len(p.Inv) {
		return j
	}
	return p.Inv[j]
}

// PortInv returns the pre-image of a 1-based port label: the l' with
// Port(l') == l. Labels outside [1, n] map to themselves.
func (p Perm) PortInv(l int) int {
	if p.Inv == nil || l < 1 || l > len(p.Inv) {
		return l
	}
	return p.Inv[l-1] + 1
}

// Port returns the image of a 1-based port label. Port l belongs to
// process l-1, so ports permute alongside process ids; labels outside
// [1, n] (the nil label 0, or ports beyond the process count, as in a
// PAC wider than the system) map to themselves.
func (p Perm) Port(l int) int {
	if p.Proc == nil || l < 1 || l > len(p.Proc) {
		return l
	}
	return p.Proc[l-1] + 1
}

// Val returns the image of v: Vals[v] when present, otherwise v.
// Sentinels always map to themselves because admissible Vals maps
// never contain them.
func (p Perm) Val(v value.Value) value.Value {
	if p.Vals == nil {
		return v
	}
	if w, ok := p.Vals[v]; ok {
		return w
	}
	return v
}

// Identity reports whether p acts as the identity on every process
// index and value.
func (p Perm) Identity() bool {
	for i, j := range p.Proc {
		if i != j {
			return false
		}
	}
	for v, w := range p.Vals {
		if v != w {
			return false
		}
	}
	return true
}

// MakePerm builds a Perm from a forward process map and an optional
// value map, computing the inverse. proc must be a permutation of
// 0..len(proc)-1; vals must be a bijection fixing the sentinels.
func MakePerm(proc []int, vals map[value.Value]value.Value) Perm {
	if proc == nil {
		return Perm{Vals: vals}
	}
	inv := make([]int, len(proc))
	for i, j := range proc {
		inv[j] = i
	}
	return Perm{Proc: proc, Inv: inv, Vals: vals}
}

// Symmetric is an optional State extension for symmetry-reduced
// exploration: AppendKeyUnder appends the binary key that the state
// p·s — s with every process id i renamed to p.ProcIdx(i), every port
// label l renamed to p.Port(l), and every application value v renamed
// to p.Val(v) — would produce from AppendKey, without building p·s.
// The contract ties the two encodings together:
//
//	s.AppendKeyUnder(dst, Perm{}) == s.AppendKey(dst)
//
// and for states s, t of the same Spec, AppendKeyUnder(nil, p) of s
// equals AppendKey(nil) of t iff t is the permuted image p·s.
//
// Implementations need only honor the contract for permutations the
// explorer deems admissible for the system (same program per orbit,
// compatible inputs); they may assume p is a bijection.
type Symmetric interface {
	AppendKeyUnder(dst []byte, p Perm) []byte
}

// AppendStateKeyUnder appends the key of p·s to dst via the Symmetric
// fast path. The boolean reports whether s supports symmetry; when
// false dst is returned unchanged and the caller must treat the
// enclosing spec as asymmetric.
func AppendStateKeyUnder(dst []byte, s State, p Perm) ([]byte, bool) {
	sym, ok := s.(Symmetric)
	if !ok {
		return dst, false
	}
	return sym.AppendKeyUnder(dst, p), true
}

package spec_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"setagree/internal/core"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// zooEntry pairs a spec with a generator of random in-interface ops.
type zooEntry struct {
	name string
	sp   spec.Spec
	gen  func(rng *rand.Rand) value.Op
}

func zoo() []zooEntry {
	val := func(rng *rand.Rand) value.Value { return value.Value(rng.Intn(5)) }
	return []zooEntry{
		{"register", objects.NewRegister(), func(rng *rand.Rand) value.Op {
			if rng.Intn(2) == 0 {
				return value.Write(val(rng))
			}
			return value.Read()
		}},
		{"3-consensus", objects.NewConsensus(3), func(rng *rand.Rand) value.Op {
			return value.Propose(val(rng))
		}},
		{"2-SA", objects.NewTwoSA(), func(rng *rand.Rand) value.Op {
			return value.Propose(val(rng))
		}},
		{"(4,2)-SA", objects.NewSetAgreement(4, 2), func(rng *rand.Rand) value.Op {
			return value.Propose(val(rng))
		}},
		{"3-PAC", core.NewPAC(3), func(rng *rand.Rand) value.Op {
			if rng.Intn(2) == 0 {
				return value.ProposeAt(val(rng), 1+rng.Intn(3))
			}
			return value.Decide(1 + rng.Intn(3))
		}},
		{"(3,2)-PAC", core.NewPACM(3, 2), func(rng *rand.Rand) value.Op {
			switch rng.Intn(3) {
			case 0:
				return value.ProposeP(val(rng), 1+rng.Intn(3))
			case 1:
				return value.DecideP(1 + rng.Intn(3))
			default:
				return value.ProposeC(val(rng))
			}
		}},
		{"O'_2", core.NewOPrime(2, nil), func(rng *rand.Rand) value.Op {
			return value.ProposeK(val(rng), 1+rng.Intn(3))
		}},
		{"O'_2-base", core.NewOPrimeFromBase(2), func(rng *rand.Rand) value.Op {
			return value.ProposeK(val(rng), 1+rng.Intn(3))
		}},
		{"queue", objects.NewQueue(), func(rng *rand.Rand) value.Op {
			if rng.Intn(2) == 0 {
				return value.Enqueue(val(rng))
			}
			return value.Dequeue()
		}},
		{"counter", objects.NewCounter(), func(rng *rand.Rand) value.Op {
			return value.FetchAdd(val(rng))
		}},
		{"tas", objects.NewTestAndSet(), func(rng *rand.Rand) value.Op {
			return value.TestAndSet()
		}},
	}
}

// TestStepPurity checks the spec contract every engine relies on:
// Step never mutates its input state, and repeated calls with the same
// (state, op) return identical transition sets (purity/determinism of
// the *relation*; nondeterministic specs must offer identical branch
// lists). Random walks over the whole zoo.
func TestStepPurity(t *testing.T) {
	t.Parallel()
	for _, entry := range zoo() {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			t.Parallel()
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				st := entry.sp.Init()
				for i := 0; i < 25; i++ {
					op := entry.gen(rng)
					before := st.Key()
					ts1, err1 := entry.sp.Step(st, op)
					ts2, err2 := entry.sp.Step(st, op)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s: errors differ on repeat: %v vs %v", op, err1, err2)
					}
					if err1 != nil {
						continue
					}
					if st.Key() != before {
						t.Fatalf("%s: Step mutated its input state", op)
					}
					if len(ts1) != len(ts2) {
						t.Fatalf("%s: branch counts differ: %d vs %d", op, len(ts1), len(ts2))
					}
					if len(ts1) == 0 {
						t.Fatalf("%s: empty transition set without error", op)
					}
					for b := range ts1 {
						if ts1[b].Resp != ts2[b].Resp || ts1[b].Next.Key() != ts2[b].Next.Key() {
							t.Fatalf("%s: branch %d differs on repeat", op, b)
						}
					}
					// Deterministic specs must not branch.
					if spec.Deterministic(entry.sp) && len(ts1) != 1 {
						t.Fatalf("%s: deterministic spec offered %d branches", op, len(ts1))
					}
					st = ts1[rng.Intn(len(ts1))].Next
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInitIsFresh checks Init returns independent states (no shared
// mutable backing arrays).
func TestInitIsFresh(t *testing.T) {
	t.Parallel()
	for _, entry := range zoo() {
		a, b := entry.sp.Init(), entry.sp.Init()
		if a.Key() != b.Key() {
			t.Errorf("%s: two Init states differ", entry.name)
		}
	}
}

package spec

import (
	"fmt"
	"sync"

	"setagree/internal/value"
)

// Chooser resolves nondeterminism when a Step offers several
// transitions: given the number of options it returns the index of the
// transition to take, in [0, n). Choosers may be stateful; Atomic calls
// them while holding the object lock, so implementations need not be
// safe for concurrent use by multiple Atomics.
type Chooser interface {
	Choose(n int) int
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(n int) int

// Choose implements Chooser.
func (f ChooserFunc) Choose(n int) int { return f(n) }

var _ Chooser = (ChooserFunc)(nil)

// FirstChooser always takes the first offered transition. For the
// strong set-agreement objects this means "respond with the earliest
// value added to STATE", the most deterministic-looking adversary.
func FirstChooser() Chooser {
	return ChooserFunc(func(int) int { return 0 })
}

// LastChooser always takes the last offered transition ("respond with
// the most recently added value").
func LastChooser() Chooser {
	return ChooserFunc(func(n int) int { return n - 1 })
}

// RotatingChooser cycles through the offered transitions across
// successive operations, exercising every nondeterministic branch over
// time.
func RotatingChooser() Chooser {
	var turn int
	return ChooserFunc(func(n int) int {
		turn++
		return turn % n
	})
}

// SeededChooser returns a deterministic pseudo-random chooser derived
// from seed, using an xorshift64* generator so replays are reproducible
// without importing math/rand state semantics.
func SeededChooser(seed uint64) Chooser {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	s := seed
	return ChooserFunc(func(n int) int {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		r := s * 0x2545f4914f6cdd1d
		return int(r % uint64(n))
	})
}

// Atomic is a linearizable shared object: a Spec state guarded by a
// mutex. Each Apply is atomic, so the object's concurrent histories are
// linearizable by construction, matching the paper's assumption that
// all objects are linearizable (§3). The zero value is not usable; use
// NewAtomic.
type Atomic struct {
	spec   Spec
	choose Chooser

	mu    sync.Mutex
	state State
}

// NewAtomic creates a linearizable object with the given specification.
// If choose is nil, nondeterminism is resolved with FirstChooser.
func NewAtomic(s Spec, choose Chooser) *Atomic {
	if choose == nil {
		choose = FirstChooser()
	}
	return &Atomic{spec: s, choose: choose, state: s.Init()}
}

// Spec returns the object's sequential specification.
func (a *Atomic) Spec() Spec { return a.spec }

// Apply atomically applies op and returns its response. It returns an
// error only if op is outside the object's interface.
func (a *Atomic) Apply(op value.Op) (value.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts, err := a.spec.Step(a.state, op)
	if err != nil {
		return value.None, err
	}
	t := ts[0]
	if len(ts) > 1 {
		i := a.choose.Choose(len(ts))
		if i < 0 || i >= len(ts) {
			return value.None, fmt.Errorf("%s: chooser returned %d for %d options: %w",
				a.spec.Name(), i, len(ts), ErrBadOp)
		}
		t = ts[i]
	}
	a.state = t.Next
	return t.Resp, nil
}

// MustApply is Apply for operations known to be within the object's
// interface; it panics on interface misuse, which is a programmer error
// on the caller's side (the typed wrappers in the public facade
// guarantee well-formed operations).
func (a *Atomic) MustApply(op value.Op) value.Value {
	v, err := a.Apply(op)
	if err != nil {
		panic(err)
	}
	return v
}

// Snapshot returns the current state. The returned State is immutable
// and safe to retain.
func (a *Atomic) Snapshot() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.state
}

// Reset restores the object to its initial state.
func (a *Atomic) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state = a.spec.Init()
}

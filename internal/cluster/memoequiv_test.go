package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// TestClusterMemoByteEquivalence pins the memoizer's transparency
// promise at the cluster level: for both reference sweeps, at every
// combination of shard count, symmetry mode, and memoization setting,
// the merged SweepReport renders byte-identical output. Shard
// boundaries decide which CheckRange call first records each
// equivalence class and which hits it — so this also exercises the
// daemon-side Prepared/memo-table sharing across shard jobs
// (preparedFor) with verdict attribution crossing shard cuts.
func TestClusterMemoByteEquivalence(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name       string
		sp         SweepSpec
		candidates int
	}{
		{"thm52", Thm52(), 49},
		{"thm71", Thm71(), 1116},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, sym := range []string{"", "ids"} {
				var base []byte
				baseFrom := ""
				for _, shards := range []int{1, 3} {
					for _, memo := range []bool{false, true} {
						sp := tc.sp
						sp.Symmetry = sym
						m := memo
						sp.Memo = &m
						rep, err := Run(context.Background(), sp, Options{Shards: shards})
						if err != nil {
							t.Fatalf("sym=%q shards=%d memo=%v: %v", sym, shards, memo, err)
						}
						if rep.Candidates != tc.candidates {
							t.Fatalf("sym=%q shards=%d memo=%v: candidates = %d, want %d",
								sym, shards, memo, rep.Candidates, tc.candidates)
						}
						buf, err := rep.Render()
						if err != nil {
							t.Fatal(err)
						}
						name := fmt.Sprintf("sym=%q shards=%d memo=%v", sym, shards, memo)
						if base == nil {
							base, baseFrom = buf, name
						} else if !bytes.Equal(base, buf) {
							t.Errorf("%s renders differently from %s:\n%s\nvs\n%s",
								name, baseFrom, buf, base)
						}
					}
				}
			}
		})
	}
}

// TestShardMemoByteEquivalence pins the same promise for a single
// interior shard of the Theorem 7.1 sweep, checked directly through
// the worker entry point: a memoized shard's JSON result is
// byte-identical to the unmemoized one. The range deliberately starts
// and ends off row boundaries (RowWidth 31), so memoized verdict
// attribution is exercised at partial prefix rows.
func TestShardMemoByteEquivalence(t *testing.T) {
	t.Parallel()
	run := func(memo bool) []byte {
		job := ShardJob{Sweep: Thm71(), Lo: 300, Hi: 651}
		job.Sweep.Memo = &memo
		rep, err := RunShard(context.Background(), job, nil, nil)
		if err != nil {
			t.Fatalf("memo=%v: %v", memo, err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	on, off := run(true), run(false)
	if !bytes.Equal(on, off) {
		t.Errorf("memoized shard result differs:\n%s\nvs\n%s", on, off)
	}
}

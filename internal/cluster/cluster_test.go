package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"setagree/internal/enumerate"
	"setagree/internal/jobs"
	"setagree/internal/obs"
)

// TestSpecRoundTrip pins that a SweepSpec survives JSON and rebuilds
// the same candidate space.
func TestSpecRoundTrip(t *testing.T) {
	t.Parallel()
	sp := Thm71()
	buf, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepSpec
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	p1, err := sp.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := back.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Candidates() != 1116 || p2.Candidates() != 1116 {
		t.Fatalf("candidates = %d / %d, want 1116", p1.Candidates(), p2.Candidates())
	}
	if p1.Pruned() != p2.Pruned() {
		t.Fatalf("pruned = %d / %d", p1.Pruned(), p2.Pruned())
	}
	for _, i := range []int{0, 557, 1115} {
		a, b := p1.Assignment(i), p2.Assignment(i)
		for r := range a.Shapes {
			if a.Shapes[r].String() != b.Shapes[r].String() {
				t.Fatalf("candidate %d shape %d differs after round-trip", i, r)
			}
		}
	}
}

// TestSpecValidation pins the error surface of bad specs.
func TestSpecValidation(t *testing.T) {
	t.Parallel()
	cases := []SweepSpec{
		{},
		{Task: TaskSpec{Kind: "dac", N: 3}, Depth: 1},
		{Task: TaskSpec{Kind: "frobnicate", N: 3}, Objects: []ObjectSpec{{Kind: "register"}},
			Menu: []InvokeSpec{{Obj: 0, Method: "read"}}, Depth: 1, Actions: []string{"retry"}},
		{Task: TaskSpec{Kind: "dac", N: 3}, Objects: []ObjectSpec{{Kind: "register"}},
			Menu: []InvokeSpec{{Obj: 5, Method: "read"}}, Depth: 1, Actions: []string{"retry"}},
		{Task: TaskSpec{Kind: "dac", N: 3}, Objects: []ObjectSpec{{Kind: "register"}},
			Menu: []InvokeSpec{{Obj: 0, Method: "write", Arg: "banana"}}, Depth: 1, Actions: []string{"retry"}},
		{Task: TaskSpec{Kind: "dac", N: 3}, Objects: []ObjectSpec{{Kind: "register"}},
			Menu: []InvokeSpec{{Obj: 0, Method: "read"}}, Depth: 1, Actions: []string{"explode"}},
	}
	for i, sp := range cases {
		if _, err := sp.Prepare(); err == nil {
			t.Errorf("case %d: bad spec prepared without error", i)
		}
	}
}

// TestMergeValidation pins the tiling rules: duplicates collapse,
// gaps, overlaps, and pruned disagreement are errors.
func TestMergeValidation(t *testing.T) {
	t.Parallel()
	sh := func(lo, hi int) *ShardReport { return &ShardReport{Lo: lo, Hi: hi, Pruned: 7, States: hi - lo} }

	rep, err := Merge(10, []*ShardReport{sh(5, 10), sh(0, 5), sh(5, 10)})
	if err != nil {
		t.Fatalf("duplicate shard should collapse, got %v", err)
	}
	if rep.States != 10 {
		t.Errorf("duplicate counted twice: states = %d, want 10", rep.States)
	}
	if _, err := Merge(10, []*ShardReport{sh(0, 5)}); err == nil {
		t.Error("missing tail accepted")
	}
	if _, err := Merge(10, []*ShardReport{sh(0, 5), sh(7, 10)}); err == nil {
		t.Error("gap accepted")
	}
	if _, err := Merge(10, []*ShardReport{sh(0, 6), sh(5, 10)}); err == nil {
		t.Error("overlap accepted")
	}
	bad := sh(5, 10)
	bad.Pruned = 3
	if _, err := Merge(10, []*ShardReport{sh(0, 5), bad}); err == nil {
		t.Error("pruned disagreement accepted")
	}
}

// smallSpec is a fast sweep (depth-1 register family against
// 2-consensus) for coordinator tests: 8 candidates, refuted.
func smallSpec() SweepSpec {
	return SweepSpec{
		Task:    TaskSpec{Kind: "consensus", N: 2},
		Objects: []ObjectSpec{{Kind: "register"}},
		Menu: []InvokeSpec{
			{Obj: 0, Method: "write", Arg: "input"},
			{Obj: 0, Method: "read"},
		},
		Depth:   1,
		Actions: []string{"decide-input", "decide-last", "decide-0", "retry"},
	}
}

// TestRunLocalMatchesFalsify pins that the cluster pipeline's local
// mode reproduces the enumerate sweep it wraps, at any shard count.
func TestRunLocalMatchesFalsify(t *testing.T) {
	t.Parallel()
	sp := Thm71()
	fam, err := sp.Family()
	if err != nil {
		t.Fatal(err)
	}
	vectors, err := sp.Vectors()
	if err != nil {
		t.Fatal(err)
	}
	full, err := enumerate.FalsifyDAC(fam, 3, vectors, enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	one, err := Run(context.Background(), sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(context.Background(), sp, Options{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}

	if one.Candidates != full.Candidates || one.States != full.States ||
		len(one.Solvers) != len(full.Solvers) || len(one.Inconclusive) != len(full.Inconclusive) {
		t.Errorf("local run diverges from FalsifyDAC: %+v vs Report{cand %d states %d solvers %d inc %d}",
			one, full.Candidates, full.States, len(full.Solvers), len(full.Inconclusive))
	}
	if (one.Failure != nil) != (full.SampleFailure != nil) {
		t.Errorf("refutation disagreement: cluster %v, falsify %v", one.Failure, full.SampleFailure)
	}

	b1, err := one.Render()
	if err != nil {
		t.Fatal(err)
	}
	b7, err := many.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b7) {
		t.Errorf("shard count leaks into the rendered report:\n%s\nvs\n%s", b1, b7)
	}
}

// fakeWorker is an in-process stand-in for a worker dacd: the three
// job endpoints the coordinator uses, running sweep-shard jobs on a
// goroutine like the real pool does.
type fakeWorker struct {
	mu      sync.Mutex
	n       int
	jobs    map[string]*jobs.Job
	results map[string][]byte
}

func newFakeWorker() *fakeWorker {
	return &fakeWorker{jobs: map[string]*jobs.Job{}, results: map[string][]byte{}}
}

func (f *fakeWorker) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Kind string          `json:"kind"`
			Spec json.RawMessage `json:"spec"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil ||
			(req.Kind != "sweep-shard" && req.Kind != "collections-shard") {
			http.Error(w, "bad submit", http.StatusBadRequest)
			return
		}
		run := func() (any, error) {
			if req.Kind == "collections-shard" {
				var cj CollectionsShardJob
				if err := json.Unmarshal(req.Spec, &cj); err != nil {
					return nil, err
				}
				return RunCollectionsShard(context.Background(), cj, nil, nil)
			}
			var sj ShardJob
			if err := json.Unmarshal(req.Spec, &sj); err != nil {
				return nil, err
			}
			return RunShard(context.Background(), sj, nil, nil)
		}
		f.mu.Lock()
		f.n++
		id := fmt.Sprintf("job-%06d", f.n)
		job := &jobs.Job{ID: id, Kind: req.Kind, State: jobs.Running}
		f.jobs[id] = job
		// Snapshot before the run goroutine can mutate job.State: the
		// response encodes the accepted state, not a racing live record.
		snap := *job
		f.mu.Unlock()
		go func() {
			rep, err := run()
			f.mu.Lock()
			defer f.mu.Unlock()
			if err != nil {
				job.State = jobs.Failed
				job.Error = err.Error()
				return
			}
			buf, _ := json.Marshal(rep)
			f.results[id] = buf
			job.State = jobs.Done
		}()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		job, ok := f.jobs[r.PathValue("id")]
		var cp jobs.Job
		if ok {
			cp = *job
		}
		f.mu.Unlock()
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(cp)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		buf, ok := f.results[r.PathValue("id")]
		f.mu.Unlock()
		if !ok {
			http.Error(w, "no result", http.StatusNotFound)
			return
		}
		w.Write(buf)
	})
	return mux
}

// TestRunClusterMatchesLocal pins the tentpole promise end to end at
// the package level: dispatching shards to workers — one of them dead,
// one of them throttling with 429 backpressure — renders byte-identical
// output to the in-process run, with the retries visible in metrics.
func TestRunClusterMatchesLocal(t *testing.T) {
	t.Parallel()
	sp := smallSpec()
	local, err := Run(context.Background(), sp, Options{})
	if err != nil {
		t.Fatal(err)
	}

	w1 := httptest.NewServer(newFakeWorker().handler())
	defer w1.Close()
	// Worker 2 sends one 429 with Retry-After before accepting anything.
	throttled := false
	fw2 := newFakeWorker()
	w2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && !throttled {
			throttled = true
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fw2.handler().ServeHTTP(w, r)
	}))
	defer w2.Close()
	// Worker 3 is dead: a closed listener, connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	sink := obs.NewSink()
	rep, err := Run(context.Background(), sp, Options{
		Workers:     []string{w1.URL, w2.URL, deadURL},
		Shards:      4,
		Poll:        5 * time.Millisecond,
		StealAfter:  -1,
		MaxAttempts: 20,
		Obs:         sink,
	})
	if err != nil {
		t.Fatal(err)
	}

	lb, err := local.Render()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := rep.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, cb) {
		t.Errorf("cluster report differs from local run:\n%s\nvs\n%s", cb, lb)
	}
	if got := sink.Counter("cluster.shards").Load(); got != 4 {
		t.Errorf("cluster.shards = %d, want 4", got)
	}
	if sink.Counter("cluster.shards_retried").Load() == 0 {
		t.Error("dead worker produced no retries")
	}
}

// TestRunClusterGivesUp pins MaxAttempts: a cluster of only dead
// workers fails with the shard error instead of hanging.
func TestRunClusterGivesUp(t *testing.T) {
	t.Parallel()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := Run(ctx, smallSpec(), Options{
		Workers:     []string{deadURL},
		Shards:      2,
		Poll:        time.Millisecond,
		StealAfter:  -1,
		MaxAttempts: 3,
		Obs:         obs.NewSink(),
	})
	if err == nil {
		t.Fatal("cluster of dead workers reported success")
	}
}

// TestStealRescuesStraggler pins work stealing: a worker that accepts
// a shard and then never finishes it does not stall the sweep — the
// steal timer re-dispatches its shard to a live worker.
func TestStealRescuesStraggler(t *testing.T) {
	t.Parallel()
	live := httptest.NewServer(newFakeWorker().handler())
	defer live.Close()
	// The black hole accepts one job and never progresses it.
	var bhMu sync.Mutex
	accepted := 0
	blackhole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bhMu.Lock()
		defer bhMu.Unlock()
		if r.Method == http.MethodPost {
			accepted++
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(jobs.Job{ID: fmt.Sprintf("job-%06d", accepted), State: jobs.Running})
			return
		}
		json.NewEncoder(w).Encode(jobs.Job{ID: "job-000001", State: jobs.Running})
	}))
	defer blackhole.Close()

	sink := obs.NewSink()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := Run(ctx, smallSpec(), Options{
		Workers:    []string{live.URL, blackhole.URL},
		Shards:     2,
		Poll:       5 * time.Millisecond,
		StealAfter: 200 * time.Millisecond,
		Obs:        sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run(context.Background(), smallSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := local.Render()
	cb, _ := rep.Render()
	if !bytes.Equal(lb, cb) {
		t.Errorf("stolen sweep differs from local run:\n%s\nvs\n%s", cb, lb)
	}
	if sink.Counter("cluster.shards_stolen").Load() == 0 {
		t.Error("no steal recorded despite the straggler")
	}
}

package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"setagree/internal/collections"
	"setagree/internal/obs"
)

// TestRunCollectionsLocalMatchesSweep pins that the cluster pipeline's
// local mode reproduces the collections sweep it wraps, at any shard
// count.
func TestRunCollectionsLocalMatchesSweep(t *testing.T) {
	t.Parallel()
	sp := CollectionsRef()
	full, err := collections.Sweep(sp.Space(), sp.Task(), collections.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := full.Render()
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3, 6} {
		rep, err := RunCollections(context.Background(), sp, Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		buf, err := rep.Render()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, fb) {
			t.Errorf("shards=%d: cluster-local report differs from collections.Sweep:\n%s\nvs\n%s", shards, buf, fb)
		}
	}
}

// TestRunCollectionsClusterMatchesLocal pins the coordinated path:
// dispatching collections shards to workers — one of them dead —
// renders byte-identical output to the in-process run.
func TestRunCollectionsClusterMatchesLocal(t *testing.T) {
	t.Parallel()
	sp := CollectionsRef()
	local, err := RunCollections(context.Background(), sp, Options{})
	if err != nil {
		t.Fatal(err)
	}

	w1 := httptest.NewServer(newFakeWorker().handler())
	defer w1.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	sink := obs.NewSink()
	rep, err := RunCollections(context.Background(), sp, Options{
		Workers:     []string{w1.URL, deadURL},
		Shards:      3,
		Poll:        5 * time.Millisecond,
		StealAfter:  -1,
		MaxAttempts: 20,
		Obs:         sink,
	})
	if err != nil {
		t.Fatal(err)
	}

	lb, err := local.Render()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := rep.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, cb) {
		t.Errorf("cluster collections report differs from local run:\n%s\nvs\n%s", cb, lb)
	}
	if got := sink.Counter("cluster.shards").Load(); got != 3 {
		t.Errorf("cluster.shards = %d, want 3", got)
	}
	if sink.Counter("cluster.shards_retried").Load() == 0 {
		t.Error("dead worker produced no retries")
	}
}

// TestCollectionsSpecValidation pins the error surface of bad specs.
func TestCollectionsSpecValidation(t *testing.T) {
	t.Parallel()
	cases := []CollectionsSpec{
		{},
		{Menu: []SATypeSpec{{N: 2, K: 1}}, Size: 0, Procs: 4, K: 2},
		{Menu: []SATypeSpec{{N: 2, K: 0}}, Size: 1, Procs: 4, K: 2},
		{Menu: []SATypeSpec{{N: 2, K: 1}}, Size: 1, Procs: 0, K: 2},
		{Menu: []SATypeSpec{{N: 2, K: 1}}, Size: 1, Procs: 4, K: 0},
		{Menu: []SATypeSpec{{N: 2, K: 1}, {N: 2, K: 1}}, Size: 1, Procs: 4, K: 2},
	}
	for i, sp := range cases {
		if _, err := RunCollections(context.Background(), sp, Options{}); err == nil {
			t.Errorf("case %d: bad collections spec accepted", i)
		}
	}
}

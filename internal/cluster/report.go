package cluster

import (
	"encoding/json"
	"fmt"
	"sort"

	"setagree/internal/enumerate"
	"setagree/internal/value"
)

// ShardSolver is a solving candidate, shapes rendered one per role.
type ShardSolver struct {
	Index  int      `json:"index"`
	Shapes []string `json:"shapes"`
}

// ShardInconclusive is an unsettled candidate.
type ShardInconclusive struct {
	Index  int           `json:"index"`
	Shapes []string      `json:"shapes"`
	Inputs []value.Value `json:"inputs"`
}

// ShardFailure is a refuted candidate with its rendered counterexample.
type ShardFailure struct {
	Index     int           `json:"index"`
	Shapes    []string      `json:"shapes"`
	Inputs    []value.Value `json:"inputs"`
	Violation string        `json:"violation"`
}

// ShardReport is the serializable outcome of one candidate-range
// shard: enumerate.RangeReport with every shape rendered, fit to
// travel as a job result between daemons.
type ShardReport struct {
	Lo                int                 `json:"lo"`
	Hi                int                 `json:"hi"`
	Pruned            int                 `json:"pruned"`
	States            int                 `json:"states"`
	SymmetryFallbacks int                 `json:"symmetry_fallbacks"`
	Solvers           []ShardSolver       `json:"solvers,omitempty"`
	Inconclusive      []ShardInconclusive `json:"inconclusive,omitempty"`
	Failure           *ShardFailure       `json:"failure,omitempty"`
}

func renderShapes(a enumerate.Assignment) []string {
	out := make([]string, len(a.Shapes))
	for i, s := range a.Shapes {
		out[i] = s.String()
	}
	return out
}

// ShardReportOf renders a RangeReport for the wire.
func ShardReportOf(rr *enumerate.RangeReport) *ShardReport {
	sr := &ShardReport{
		Lo:                rr.Lo,
		Hi:                rr.Hi,
		Pruned:            rr.Pruned,
		States:            rr.States,
		SymmetryFallbacks: rr.SymmetryFallbacks,
	}
	for _, s := range rr.Solvers {
		sr.Solvers = append(sr.Solvers, ShardSolver{Index: s.Index, Shapes: renderShapes(s.Assignment)})
	}
	for _, inc := range rr.Inconclusive {
		sr.Inconclusive = append(sr.Inconclusive, ShardInconclusive{
			Index: inc.Index, Shapes: renderShapes(inc.Assignment), Inputs: inc.Inputs,
		})
	}
	if f := rr.Failure; f != nil {
		sr.Failure = &ShardFailure{
			Index: f.Index, Shapes: renderShapes(f.Assignment), Inputs: f.Inputs, Violation: f.Violation,
		}
	}
	return sr
}

// SweepReport is the merged outcome of a partitioned sweep. It is a
// pure function of the sweep spec: no timing, worker identity, or
// shard boundaries appear, so the same spec renders byte-identically
// whether it ran on one daemon or was sharded across a cluster —
// including after shard retries and speculative steals.
type SweepReport struct {
	Candidates        int                 `json:"candidates"`
	Pruned            int                 `json:"pruned"`
	States            int                 `json:"states"`
	SymmetryFallbacks int                 `json:"symmetry_fallbacks"`
	Refuted           bool                `json:"refuted"`
	Solvers           []ShardSolver       `json:"solvers"`
	Inconclusive      []ShardInconclusive `json:"inconclusive"`
	Failure           *ShardFailure       `json:"failure,omitempty"`
}

// Merge folds shard reports into the sweep document. The shards must
// tile [0, candidates) exactly: sorted by range, exact-duplicate
// ranges (retry and steal leftovers) collapse to one, gaps and
// partial overlaps are errors, as is any disagreement on the
// sweep-global pruned count. Failure is the lowest-indexed refuted
// candidate across all shards, matching a full single sweep.
func Merge(candidates int, shards []*ShardReport) (*SweepReport, error) {
	sorted := make([]*ShardReport, len(shards))
	copy(sorted, shards)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Lo != sorted[b].Lo {
			return sorted[a].Lo < sorted[b].Lo
		}
		return sorted[a].Hi < sorted[b].Hi
	})

	rep := &SweepReport{
		Candidates:   candidates,
		Solvers:      []ShardSolver{},
		Inconclusive: []ShardInconclusive{},
	}
	next := 0
	for i, sh := range sorted {
		if i > 0 && sh.Lo == sorted[i-1].Lo && sh.Hi == sorted[i-1].Hi {
			continue // duplicate delivery of the same shard; results are deterministic
		}
		if sh.Lo != next {
			if sh.Lo < next {
				return nil, fmt.Errorf("cluster: shard [%d,%d) overlaps previous shard ending at %d", sh.Lo, sh.Hi, next)
			}
			return nil, fmt.Errorf("cluster: gap in shard cover: no shard for [%d,%d)", next, sh.Lo)
		}
		if i == 0 {
			rep.Pruned = sh.Pruned
		} else if sh.Pruned != rep.Pruned {
			return nil, fmt.Errorf("cluster: shard [%d,%d) reports pruned=%d, earlier shards %d — specs differ", sh.Lo, sh.Hi, sh.Pruned, rep.Pruned)
		}
		rep.States += sh.States
		rep.SymmetryFallbacks += sh.SymmetryFallbacks
		rep.Solvers = append(rep.Solvers, sh.Solvers...)
		rep.Inconclusive = append(rep.Inconclusive, sh.Inconclusive...)
		if sh.Failure != nil && (rep.Failure == nil || sh.Failure.Index < rep.Failure.Index) {
			rep.Failure = sh.Failure
		}
		next = sh.Hi
	}
	if next != candidates {
		return nil, fmt.Errorf("cluster: shard cover ends at %d, want %d candidates", next, candidates)
	}
	rep.Refuted = rep.Failure != nil
	return rep, nil
}

// Render is the canonical byte encoding of the sweep document — the
// bytes the cluster promises are identical to a single-daemon run.
func (r *SweepReport) Render() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

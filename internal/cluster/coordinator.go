package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"setagree/internal/enumerate"
	"setagree/internal/jobs"
	"setagree/internal/obs"
)

// ShardJob is the "sweep-shard" job spec a coordinator submits to a
// worker daemon: rebuild the sweep, check candidates [Lo, Hi).
type ShardJob struct {
	Sweep SweepSpec `json:"sweep"`
	Lo    int       `json:"lo"`
	Hi    int       `json:"hi"`
	// PaceMs sleeps after each candidate — a test knob that stretches
	// sweeps enough to kill a worker mid-shard.
	PaceMs int `json:"pace_ms,omitempty"`
}

// preparedCache memoizes Prepare() by spec JSON, so the many shard
// jobs of one coordinated sweep hitting the same daemon share a single
// Prepared — and with it the memo table, so verdict classes learned
// checking one shard accelerate every later shard of the same sweep.
// Sharing is transparent: Prepare is deterministic in the spec, and
// the memo only caches verdicts that re-checking would reproduce.
// Small and unordered — a daemon serves few distinct sweeps at a time;
// on overflow the cache simply resets.
var (
	preparedMu    sync.Mutex
	preparedCache = map[string]*enumerate.Prepared{}
)

const preparedCacheCap = 8

func preparedFor(sp SweepSpec) (*enumerate.Prepared, error) {
	key, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	preparedMu.Lock()
	defer preparedMu.Unlock()
	if p, ok := preparedCache[string(key)]; ok {
		return p, nil
	}
	p, err := sp.Prepare()
	if err != nil {
		return nil, err
	}
	if len(preparedCache) >= preparedCacheCap {
		preparedCache = map[string]*enumerate.Prepared{}
	}
	preparedCache[string(key)] = p
	return p, nil
}

// RunShard checks one shard in-process: the worker half of the
// cluster protocol, also used directly by dacd's sweep-shard runner.
func RunShard(ctx context.Context, job ShardJob, sink *obs.Sink, events *obs.Emitter) (*ShardReport, error) {
	p, err := preparedFor(job.Sweep)
	if err != nil {
		return nil, err
	}
	vectors, err := job.Sweep.Vectors()
	if err != nil {
		return nil, err
	}
	opts, err := job.Sweep.Options()
	if err != nil {
		return nil, err
	}
	opts.Ctx = ctx
	opts.Obs = sink
	opts.Events = events
	if job.PaceMs > 0 {
		pace := time.Duration(job.PaceMs) * time.Millisecond
		opts.OnProgress = func(enumerate.Progress) { time.Sleep(pace) }
	}
	rr, err := p.CheckRange(job.Lo, job.Hi, vectors, opts)
	if err != nil {
		return nil, err
	}
	return ShardReportOf(rr), nil
}

// Options configures a coordinated sweep.
type Options struct {
	// Workers is the list of worker daemon base URLs. Empty runs every
	// shard in-process — the single-daemon baseline, through the exact
	// pipeline the cluster uses, so the two render identical bytes.
	Workers []string
	// Shards is the number of candidate-range shards; 0 derives it:
	// 4 per worker (for balance under stealing), or 1 with no workers.
	Shards int
	// ShardSize, when Shards is 0, caps candidates per shard instead.
	ShardSize int
	// MaxAttempts is how many failed dispatches a shard survives
	// before the sweep aborts (0 = 8). Each worker death, fetch error,
	// or failed job costs one attempt; the shard requeues in between.
	MaxAttempts int
	// StealAfter is how long the coordinator waits with idle workers
	// and an empty queue before speculatively re-dispatching the least
	// duplicated in-flight shard (straggler defense; first result
	// wins — safe because shard results are deterministic). 0 = 30s,
	// negative disables.
	StealAfter time.Duration
	// Poll is the job status poll cadence (0 = 50ms).
	Poll time.Duration
	// PaceMs is forwarded into every shard job (see ShardJob.PaceMs).
	PaceMs int
	// Client is the HTTP client for worker calls (nil = 30s timeout).
	Client *http.Client
	// Obs receives cluster.* metrics; Events the cluster.* event log.
	Obs    *obs.Sink
	Events *obs.Emitter
}

func (o Options) fill() Options {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 8
	}
	if o.StealAfter == 0 {
		o.StealAfter = 30 * time.Second
	}
	if o.Poll == 0 {
		o.Poll = 50 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

func (o Options) shardCount(candidates int) int {
	n := o.Shards
	switch {
	case n > 0:
	case o.ShardSize > 0:
		n = (candidates + o.ShardSize - 1) / o.ShardSize
	case len(o.Workers) > 0:
		n = 4 * len(o.Workers)
	default:
		n = 1
	}
	if n < 1 {
		n = 1
	}
	if candidates > 0 && n > candidates {
		n = candidates
	}
	return n
}

// shardBounds splits [0, candidates) into n near-equal ranges with
// interior boundaries rounded to multiples of rowWidth, so the
// candidates sharing a leading shape (one prefix-trie row) land in one
// shard and the memoizer reuses its snapshots instead of rebuilding
// them across the cut. Alignment is an efficiency hint only — verdicts
// are range-independent, so any partition merges identically.
func shardBounds(candidates, n, rowWidth int) [][2]int {
	if rowWidth < 1 {
		rowWidth = 1
	}
	bounds := make([][2]int, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + (candidates-lo)/(n-i)
		if i < n-1 {
			if r := hi % rowWidth; r != 0 {
				// Round to the nearer row boundary, staying in [lo, candidates].
				if 2*r >= rowWidth && hi+rowWidth-r <= candidates {
					hi += rowWidth - r
				} else if hi-r >= lo {
					hi -= r
				}
			}
		} else {
			hi = candidates
		}
		bounds = append(bounds, [2]int{lo, hi})
		lo = hi
	}
	return bounds
}

// Run executes the sweep: shard the candidate space, check every
// shard (in-process, or dispatched across Workers with retry and
// stealing), and merge into the canonical SweepReport. The returned
// document is a pure function of the spec — identical bytes at any
// worker count, shard boundary, retry, or steal schedule.
func Run(ctx context.Context, sp SweepSpec, o Options) (*SweepReport, error) {
	o = o.fill()
	rep, err := run(ctx, sp, o)
	if err != nil {
		o.Events.Emit("cluster.error", obs.Fields{"error": err.Error()})
		return nil, err
	}
	o.Events.Emit("cluster.done", obs.Fields{
		"candidates": rep.Candidates,
		"states":     rep.States,
		"solvers":    len(rep.Solvers),
		"refuted":    rep.Refuted,
		"workers":    len(o.Workers),
	})
	return rep, nil
}

func run(ctx context.Context, sp SweepSpec, o Options) (*SweepReport, error) {
	p, err := sp.Prepare()
	if err != nil {
		return nil, err
	}
	n := p.Candidates()
	bounds := shardBounds(n, o.shardCount(n), p.RowWidth())
	if len(o.Workers) == 0 {
		return runLocal(ctx, sp, p, bounds, o)
	}
	return runCluster(ctx, sp, n, bounds, o)
}

// runLocal checks every shard in-process, sequentially.
func runLocal(ctx context.Context, sp SweepSpec, p *enumerate.Prepared, bounds [][2]int, o Options) (*SweepReport, error) {
	vectors, err := sp.Vectors()
	if err != nil {
		return nil, err
	}
	opts, err := sp.Options()
	if err != nil {
		return nil, err
	}
	opts.Ctx = ctx
	opts.Obs = o.Obs
	opts.Events = o.Events
	if o.PaceMs > 0 {
		pace := time.Duration(o.PaceMs) * time.Millisecond
		opts.OnProgress = func(enumerate.Progress) { time.Sleep(pace) }
	}
	shards := make([]*ShardReport, 0, len(bounds))
	for _, b := range bounds {
		rr, err := p.CheckRange(b[0], b[1], vectors, opts)
		if err != nil {
			return nil, err
		}
		shards = append(shards, ShardReportOf(rr))
		o.Obs.Counter("cluster.shards").Inc()
		o.Obs.Counter("cluster.candidates").Add(int64(b[1] - b[0]))
		o.Obs.Counter("cluster.states").Add(int64(rr.States))
	}
	return Merge(p.Candidates(), shards)
}

type shardResult struct {
	idx     int
	raw     []byte
	states  int
	worker  string
	elapsed time.Duration
	err     error
}

// shardProto abstracts one shard-job family over the dispatch loop:
// sweep shards and collections shards share the pull-based load
// balancing, retry, stealing, and backpressure machinery; only the job
// payload and the result document differ.
type shardProto struct {
	// kind is the jobs-API job kind workers run.
	kind string
	// job builds the shard job spec for range [lo, hi).
	job func(lo, hi int) any
	// states validates a raw result document and extracts its progress
	// figure (explored states for sweeps, decided collections for
	// collections sweeps) for the cluster.* metrics and events. An
	// error fails the attempt, so a worker returning garbage is retried
	// like a dead one.
	states func(raw []byte) (int, error)
}

// runCluster dispatches sweep shards to worker daemons and merges the
// results into the canonical report.
func runCluster(ctx context.Context, sp SweepSpec, candidates int, bounds [][2]int, o Options) (*SweepReport, error) {
	proto := shardProto{
		kind: "sweep-shard",
		job:  func(lo, hi int) any { return ShardJob{Sweep: sp, Lo: lo, Hi: hi, PaceMs: o.PaceMs} },
		states: func(raw []byte) (int, error) {
			var sr ShardReport
			if err := json.Unmarshal(raw, &sr); err != nil {
				return 0, fmt.Errorf("cluster: bad shard result: %w", err)
			}
			return sr.States, nil
		},
	}
	raws, err := dispatchCluster(ctx, bounds, proto, o)
	if err != nil {
		return nil, err
	}
	shards := make([]*ShardReport, len(raws))
	for i, raw := range raws {
		var sr ShardReport
		if err := json.Unmarshal(raw, &sr); err != nil {
			return nil, fmt.Errorf("cluster: shard [%d,%d) result: %w", bounds[i][0], bounds[i][1], err)
		}
		shards[i] = &sr
	}
	return Merge(candidates, shards)
}

// dispatchCluster runs one shard job per bounds entry across the
// workers: pull-based load balancing (idle workers take the next
// shard), requeue-with-attempts on any worker failure, and speculative
// re-dispatch of in-flight shards once the queue drains (work
// stealing). Returns the raw result documents in bounds order.
func dispatchCluster(ctx context.Context, bounds [][2]int, proto shardProto, o Options) ([][]byte, error) {
	ctx, cancel := context.WithCancel(ctx)
	dispatch := make(chan int)
	results := make(chan shardResult)
	for _, w := range o.Workers {
		go workerLoop(ctx, w, proto, bounds, o, dispatch, results)
	}
	// Stop the workers before returning, whatever path exits.
	defer cancel()

	o.Obs.Gauge("cluster.workers").Set(int64(len(o.Workers)))
	var (
		queue     []int
		done      = make([][]byte, len(bounds))
		inflight  = make([]int, len(bounds))
		fails     = make([]int, len(bounds))
		remaining = len(bounds)
	)
	for i := range bounds {
		queue = append(queue, i)
	}

	for remaining > 0 {
		// Only offer a dispatch when there is something to dispatch,
		// and only arm the steal timer when there is not.
		var (
			dispatchCh chan<- int
			next       int
			stealCh    <-chan time.Time
			stealTimer *time.Timer
		)
		if len(queue) > 0 {
			dispatchCh = dispatch
			next = queue[0]
		} else if o.StealAfter > 0 {
			stealTimer = time.NewTimer(o.StealAfter)
			stealCh = stealTimer.C
		}

		select {
		case <-ctx.Done():
			return nil, ctx.Err()

		case dispatchCh <- next:
			queue = queue[1:]
			inflight[next]++

		case <-stealCh:
			// Re-dispatch the least duplicated unfinished shard.
			victim := -1
			for i := range bounds {
				if done[i] == nil && (victim < 0 || inflight[i] < inflight[victim]) {
					victim = i
				}
			}
			if victim >= 0 {
				queue = append(queue, victim)
				o.Obs.Counter("cluster.shards_stolen").Inc()
				o.Events.Emit("cluster.shard.steal", obs.Fields{
					"lo": bounds[victim][0], "hi": bounds[victim][1],
					"inflight": inflight[victim],
				})
			}

		case r := <-results:
			inflight[r.idx]--
			b := bounds[r.idx]
			switch {
			case done[r.idx] != nil:
				// A steal already finished this shard; whether the losing
				// copy succeeded or died, the first result won.
			case r.err != nil:
				fails[r.idx]++
				if fails[r.idx] >= o.MaxAttempts {
					return nil, fmt.Errorf("cluster: shard [%d,%d) failed %d times, giving up: %w",
						b[0], b[1], fails[r.idx], r.err)
				}
				queue = append(queue, r.idx)
				o.Obs.Counter("cluster.shards_retried").Inc()
				o.Events.Emit("cluster.shard.retry", obs.Fields{
					"lo": b[0], "hi": b[1], "worker": r.worker,
					"attempt": fails[r.idx], "error": r.err.Error(),
				})
			default:
				done[r.idx] = r.raw
				remaining--
				o.Obs.Counter("cluster.shards").Inc()
				o.Obs.Counter("cluster.candidates").Add(int64(b[1] - b[0]))
				o.Obs.Counter("cluster.states").Add(int64(r.states))
				o.Obs.Histogram("cluster.shard_ms").Observe(r.elapsed.Milliseconds())
				o.Events.Emit("cluster.shard.done", obs.Fields{
					"lo": b[0], "hi": b[1], "worker": r.worker,
					"states": r.states, "elapsed_ms": r.elapsed.Milliseconds(),
				})
			}
		}
		if stealTimer != nil {
			stealTimer.Stop()
		}
	}
	return done, nil
}

// workerLoop serves one worker URL: take a shard, run it remotely,
// deliver the outcome. Consecutive failures back off exponentially so
// a dead worker — which fails in microseconds — doesn't outrace the
// healthy workers for every requeued shard and burn through a shard's
// attempt budget while they are busy.
func workerLoop(ctx context.Context, base string, proto shardProto, bounds [][2]int, o Options, dispatch <-chan int, results chan<- shardResult) {
	consecFails := 0
	for {
		var idx int
		select {
		case <-ctx.Done():
			return
		case idx = <-dispatch:
		}
		job := proto.job(bounds[idx][0], bounds[idx][1])
		start := time.Now()
		raw, err := runShardOn(ctx, base, proto.kind, job, o)
		states := 0
		if err == nil {
			states, err = proto.states(raw)
		}
		select {
		case <-ctx.Done():
			return
		case results <- shardResult{idx: idx, raw: raw, states: states, worker: base, elapsed: time.Since(start), err: err}:
		}
		if err == nil {
			consecFails = 0
			continue
		}
		consecFails++
		backoff := 4 * o.Poll << min(consecFails, 6)
		if backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
		sleepCtx(ctx, backoff)
	}
}

// runShardOn runs one shard job on a worker daemon over the jobs API:
// submit (honoring 429 Retry-After backpressure), poll to a terminal
// state, fetch the raw result document.
func runShardOn(ctx context.Context, base, kind string, job any, o Options) ([]byte, error) {
	id, err := submitJob(ctx, base, kind, job, o)
	if err != nil {
		return nil, err
	}
	for {
		j, err := getJob(ctx, base, id, o)
		if err != nil {
			return nil, err
		}
		switch j.State {
		case jobs.Done:
			return fetchShardResult(ctx, base, id, o)
		case jobs.Failed, jobs.Canceled:
			return nil, fmt.Errorf("cluster: shard job %s on %s %s: %s", id, base, j.State, j.Error)
		}
		if err := sleepCtx(ctx, o.Poll); err != nil {
			return nil, err
		}
	}
}

func submitJob(ctx context.Context, base, kind string, spec any, o Options) (string, error) {
	body, err := json.Marshal(map[string]any{"kind": kind, "spec": spec})
	if err != nil {
		return "", err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := o.Client.Do(req)
		if err != nil {
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Back-pressure: wait as instructed and resubmit.
			wait := retryAfterHint(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err := sleepCtx(ctx, wait); err != nil {
				return "", err
			}
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			buf, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return "", fmt.Errorf("cluster: submit to %s: %s: %s", base, resp.Status, bytes.TrimSpace(buf))
		}
		var j jobs.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			return "", fmt.Errorf("cluster: submit to %s: bad job body: %w", base, err)
		}
		return j.ID, nil
	}
}

// retryAfterHint parses a Retry-After value in seconds, clamped to
// something a coordinator can live with.
func retryAfterHint(h string) time.Duration {
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

func getJob(ctx context.Context, base, id string, o Options) (*jobs.Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := o.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: get %s/jobs/%s: %s", base, id, resp.Status)
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, err
	}
	return &j, nil
}

func fetchShardResult(ctx context.Context, base, id string, o Options) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := o.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: result %s/jobs/%s: %s", base, id, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: result %s/jobs/%s: %w", base, id, err)
	}
	return raw, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Package cluster turns dacd daemons into a partitioned checking
// cluster: a coordinator splits a falsification sweep into
// candidate-range shards, dispatches them to worker daemons over the
// jobs HTTP API, steals work from stragglers, retries shards lost to
// worker death, and merges the shard reports into a document
// byte-identical to a single-daemon run of the same sweep.
//
// The whole design leans on one invariant (pinned in
// internal/enumerate's shard tests): candidate enumeration and
// per-candidate verdicts are deterministic, so any process that builds
// the same SweepSpec agrees on every candidate index, and shard
// results merge without coordination — duplicates from retries or
// speculative steals are simply discarded.
package cluster

import (
	"fmt"

	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// SweepSpec is a fully data-driven falsification sweep: everything a
// worker needs to rebuild the candidate family, in JSON. It travels
// inside "sweep" and "sweep-shard" job specs.
type SweepSpec struct {
	// Task selects the task the candidates are checked against.
	Task TaskSpec `json:"task"`
	// Objects is the permitted object base, by name.
	Objects []ObjectSpec `json:"objects"`
	// Menu is the invocation-template menu.
	Menu []InvokeSpec `json:"menu"`
	// Depth is the number of invocations per phase.
	Depth int `json:"depth"`
	// Actions is the permitted final-action set (abort is added
	// automatically for the distinguished DAC role).
	Actions []string `json:"actions"`
	// Inputs is the list of input vectors to check each candidate on;
	// empty means all binary vectors over the task's process count.
	Inputs [][]value.Value `json:"inputs,omitempty"`
	// MaxStatesPerCandidate caps each model check (0 = enumerate's
	// default).
	MaxStatesPerCandidate int `json:"max_states_per_candidate,omitempty"`
	// SoloSteps caps the solo prefilter (0 = enumerate's default).
	SoloSteps int `json:"solo_steps,omitempty"`
	// Symmetry is the reduction mode: "" or "off", "ids", "values".
	Symmetry string `json:"symmetry,omitempty"`
	// Memo toggles cross-candidate memoization (prefix-trie scheduling,
	// forked explorers, canonical-program dedup). Nil or true leaves it
	// on — memoized and unmemoized shards produce byte-identical
	// reports, so this is an ablation/benchmarking knob, not a
	// correctness one. False disables it.
	Memo *bool `json:"memo,omitempty"`
}

// TaskSpec names a task.
type TaskSpec struct {
	// Kind is "dac", "consensus", or "ksa".
	Kind string `json:"kind"`
	// N is the process count.
	N int `json:"n"`
	// K is the agreement bound (ksa only).
	K int `json:"k,omitempty"`
	// P is the distinguished process (dac only).
	P int `json:"p,omitempty"`
}

// ObjectSpec names a shared object.
type ObjectSpec struct {
	// Kind is "register", "consensus", "setagreement", "queue", or
	// "testandset".
	Kind string `json:"kind"`
	// N is the power (consensus) or process bound (setagreement).
	N int `json:"n,omitempty"`
	// K is the agreement bound (setagreement only).
	K int `json:"k,omitempty"`
}

// InvokeSpec names one menu entry.
type InvokeSpec struct {
	// Obj indexes Objects.
	Obj int `json:"obj"`
	// Method is "read", "write", "propose", "enqueue", or "dequeue".
	Method string `json:"method"`
	// Arg is "input", "0", "1", or "prev" (methods that take one).
	Arg string `json:"arg,omitempty"`
	// Label is the constant label for methods that take one.
	Label int `json:"label,omitempty"`
}

// Thm71 is the Theorem 7.1 negative sweep (EXPERIMENTS E8): the
// 1116-candidate depth-1 family over {2-consensus, register} checked
// against 3-DAC — the heaviest committed sweep and the cluster's
// reference workload.
func Thm71() SweepSpec {
	return SweepSpec{
		Task:    TaskSpec{Kind: "dac", N: 3},
		Objects: []ObjectSpec{{Kind: "consensus", N: 2}, {Kind: "register"}},
		Menu: []InvokeSpec{
			{Obj: 0, Method: "propose", Arg: "input"},
			{Obj: 1, Method: "write", Arg: "input"},
			{Obj: 1, Method: "read"},
		},
		Depth: 1,
		Actions: []string{
			"decide-input", "decide-last", "decide-first",
			"decide-0", "decide-1", "retry",
		},
	}
}

// Thm52 is the Theorem 5.2 positive sweep (EXPERIMENTS E5): the
// 49-candidate depth-1 symmetric family over {2-consensus, register,
// 2-SA} checked against 3-consensus — the small reference sweep, used
// where per-sweep fixed costs need to stay visible (bench-gate).
func Thm52() SweepSpec {
	return SweepSpec{
		Task: TaskSpec{Kind: "consensus", N: 3},
		Objects: []ObjectSpec{
			{Kind: "consensus", N: 2}, {Kind: "register"}, {Kind: "setagreement", K: 2},
		},
		Menu: []InvokeSpec{
			{Obj: 0, Method: "propose", Arg: "input"},
			{Obj: 1, Method: "write", Arg: "input"},
			{Obj: 1, Method: "read"},
			{Obj: 2, Method: "propose", Arg: "input"},
		},
		Depth: 1,
		Actions: []string{
			"decide-input", "decide-last", "decide-first",
			"decide-0", "decide-1", "retry",
		},
	}
}

func (t TaskSpec) build() (task.Task, error) {
	switch t.Kind {
	case "dac":
		if t.N < 2 {
			return nil, fmt.Errorf("cluster: dac task needs n >= 2, got %d", t.N)
		}
		return task.DAC{N: t.N, P: t.P}, nil
	case "consensus":
		if t.N < 1 {
			return nil, fmt.Errorf("cluster: consensus task needs n >= 1, got %d", t.N)
		}
		return task.Consensus{N: t.N}, nil
	case "ksa":
		if t.N < 1 || t.K < 1 {
			return nil, fmt.Errorf("cluster: ksa task needs n, k >= 1, got n=%d k=%d", t.N, t.K)
		}
		return task.KSetAgreement{N: t.N, K: t.K}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown task kind %q", t.Kind)
	}
}

func (o ObjectSpec) build() (spec.Spec, error) {
	switch o.Kind {
	case "register":
		return objects.NewRegister(), nil
	case "consensus":
		if o.N < 1 {
			return nil, fmt.Errorf("cluster: consensus object needs n >= 1, got %d", o.N)
		}
		return objects.NewConsensus(o.N), nil
	case "setagreement":
		if o.K < 1 {
			return nil, fmt.Errorf("cluster: setagreement object needs k >= 1, got k=%d", o.K)
		}
		if o.N == 0 {
			// No process bound: the paper's k-SA object (TwoSA at k=2).
			return objects.SetAgreement{N: objects.Unbounded, K: o.K}, nil
		}
		if o.N < 1 {
			return nil, fmt.Errorf("cluster: setagreement object needs n >= 1 or 0 for unbounded, got n=%d", o.N)
		}
		return objects.NewSetAgreement(o.N, o.K), nil
	case "queue":
		return objects.NewQueue(), nil
	case "testandset":
		return objects.NewTestAndSet(), nil
	default:
		return nil, fmt.Errorf("cluster: unknown object kind %q", o.Kind)
	}
}

var methods = map[string]value.Method{
	"read":    value.MethodRead,
	"write":   value.MethodWrite,
	"propose": value.MethodPropose,
	"enqueue": value.MethodEnqueue,
	"dequeue": value.MethodDequeue,
}

var argSources = map[string]enumerate.ArgSource{
	"input": enumerate.ArgInput,
	"0":     enumerate.ArgZero,
	"1":     enumerate.ArgOne,
	"prev":  enumerate.ArgPrev,
}

var actions = map[string]enumerate.Action{
	"decide-input": enumerate.ActDecideInput,
	"decide-last":  enumerate.ActDecideLast,
	"decide-first": enumerate.ActDecideFirst,
	"decide-0":     enumerate.ActDecideZero,
	"decide-1":     enumerate.ActDecideOne,
	"retry":        enumerate.ActRetry,
}

// Family rebuilds the enumerate.Family the spec describes.
func (sp SweepSpec) Family() (*enumerate.Family, error) {
	if sp.Depth < 1 {
		return nil, fmt.Errorf("cluster: depth must be >= 1, got %d", sp.Depth)
	}
	if len(sp.Objects) == 0 || len(sp.Menu) == 0 || len(sp.Actions) == 0 {
		return nil, fmt.Errorf("cluster: sweep spec needs objects, menu, and actions")
	}
	objs := make([]spec.Spec, len(sp.Objects))
	for i, o := range sp.Objects {
		var err error
		if objs[i], err = o.build(); err != nil {
			return nil, err
		}
	}
	menu := make([]enumerate.Invoke, len(sp.Menu))
	for i, m := range sp.Menu {
		if m.Obj < 0 || m.Obj >= len(objs) {
			return nil, fmt.Errorf("cluster: menu entry %d references object %d of %d", i, m.Obj, len(objs))
		}
		method, ok := methods[m.Method]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown method %q", m.Method)
		}
		iv := enumerate.Invoke{Obj: m.Obj, Method: method, Label: m.Label}
		if method.TakesArg() {
			src, ok := argSources[m.Arg]
			if !ok {
				return nil, fmt.Errorf("cluster: method %q needs arg one of input/0/1/prev, got %q", m.Method, m.Arg)
			}
			iv.Arg = src
		}
		menu[i] = iv
	}
	acts := make([]enumerate.Action, len(sp.Actions))
	for i, a := range sp.Actions {
		act, ok := actions[a]
		if !ok {
			return nil, fmt.Errorf("cluster: unknown action %q", a)
		}
		acts[i] = act
	}
	return &enumerate.Family{Objects: objs, Menu: menu, Depth: sp.Depth, Actions: acts}, nil
}

// Options builds the enumerate.SweepOptions the spec's knobs select.
func (sp SweepSpec) Options() (enumerate.SweepOptions, error) {
	opts := enumerate.SweepOptions{
		MaxStatesPerCandidate: sp.MaxStatesPerCandidate,
		SoloSteps:             sp.SoloSteps,
		DisableMemo:           sp.Memo != nil && !*sp.Memo,
	}
	if sp.Symmetry != "" {
		mode, err := explore.ParseSymmetry(sp.Symmetry)
		if err != nil {
			return opts, err
		}
		opts.Symmetry = mode
	}
	return opts, nil
}

// Vectors returns the input vectors to check each candidate on: the
// explicit list, or all binary vectors over the task's process count.
func (sp SweepSpec) Vectors() ([][]value.Value, error) {
	tsk, err := sp.Task.build()
	if err != nil {
		return nil, err
	}
	if len(sp.Inputs) > 0 {
		for i, v := range sp.Inputs {
			if len(v) != tsk.Procs() {
				return nil, fmt.Errorf("cluster: input vector %d has %d values for a %d-process task", i, len(v), tsk.Procs())
			}
		}
		return sp.Inputs, nil
	}
	n := tsk.Procs()
	out := make([][]value.Value, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		v := make([]value.Value, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v[i] = 1
			}
		}
		out = append(out, v)
	}
	return out, nil
}

// Prepare materializes the spec's candidate list. Every process that
// Prepares the same spec gets the same candidate order — the cluster's
// index space.
func (sp SweepSpec) Prepare() (*enumerate.Prepared, error) {
	fam, err := sp.Family()
	if err != nil {
		return nil, err
	}
	opts, err := sp.Options()
	if err != nil {
		return nil, err
	}
	tsk, err := sp.Task.build()
	if err != nil {
		return nil, err
	}
	if sp.Task.Kind == "dac" {
		return enumerate.PrepareDAC(fam, sp.Task.N, opts)
	}
	return enumerate.PrepareSymmetric(fam, tsk, opts)
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"setagree/internal/collections"
	"setagree/internal/obs"
)

// SATypeSpec names one (n,k)-SA type in a collections spec. N == 0
// means unbounded participation, matching ObjectSpec.
type SATypeSpec struct {
	N int `json:"n,omitempty"`
	K int `json:"k"`
}

// CollectionsSpec is a fully data-driven collections sweep: everything
// a worker needs to rebuild the collection space and the verdict
// question, in JSON. It travels inside "collections-sweep" and
// "collections-shard" job specs.
type CollectionsSpec struct {
	// Menu and Size define the collection space (size-Size multisets
	// over Menu).
	Menu []SATypeSpec `json:"menu"`
	Size int          `json:"size"`
	// Procs and K are the verdict question: can Procs processes solve
	// K-set agreement with the collection?
	Procs int `json:"procs"`
	K     int `json:"k"`
	// Levels is the power-prefix length per row (0 = 4).
	Levels int `json:"levels,omitempty"`
	// Prune toggles dominance pruning. Nil or true leaves it on —
	// pruned and unpruned sweeps produce byte-identical reports, so
	// this is an ablation/benchmarking knob, not a correctness one.
	Prune *bool `json:"prune,omitempty"`
}

// Space rebuilds the collection space the spec describes.
func (sp CollectionsSpec) Space() collections.Space {
	menu := make([]collections.Type, len(sp.Menu))
	for i, t := range sp.Menu {
		menu[i] = collections.Type{N: t.N, K: t.K}
	}
	return collections.Space{Menu: menu, Size: sp.Size}
}

// Task rebuilds the verdict question.
func (sp CollectionsSpec) Task() collections.Task {
	return collections.Task{Procs: sp.Procs, K: sp.K}
}

func (sp CollectionsSpec) sweepOptions() collections.SweepOptions {
	return collections.SweepOptions{
		Levels:       sp.Levels,
		DisablePrune: sp.Prune != nil && !*sp.Prune,
	}
}

// CollectionsRef is the reference collections sweep: all 6 two-type
// multisets over {2-consensus, (3,2)-SA, 2-SA}, asked whether 4
// processes solve 2-set agreement — small enough for tests and the
// bench harness, rich enough to exercise pruning and both verdicts.
func CollectionsRef() CollectionsSpec {
	return CollectionsSpec{
		Menu:  []SATypeSpec{{N: 2, K: 1}, {N: 3, K: 2}, {K: 2}},
		Size:  2,
		Procs: 4,
		K:     2,
	}
}

// CollectionsShardJob is the "collections-shard" job spec a
// coordinator submits to a worker daemon: rebuild the space, decide
// collections [Lo, Hi).
type CollectionsShardJob struct {
	Collections CollectionsSpec `json:"collections"`
	Lo          int             `json:"lo"`
	Hi          int             `json:"hi"`
	// PaceMs sleeps after each collection — the same test knob as
	// ShardJob.PaceMs.
	PaceMs int `json:"pace_ms,omitempty"`
}

// engineCache shares one decision engine per spec across the shard
// jobs hitting the same daemon, so cost tables memoized deciding one
// shard accelerate every later shard of the same sweep. Sharing is
// transparent: memoization never changes a verdict. Mirrors
// preparedCache, including the reset-on-overflow policy.
var (
	engineMu    sync.Mutex
	engineCache = map[string]*collections.Engine{}
)

func engineFor(sp CollectionsSpec) (*collections.Engine, error) {
	key, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if e, ok := engineCache[string(key)]; ok {
		return e, nil
	}
	if len(engineCache) >= preparedCacheCap {
		engineCache = map[string]*collections.Engine{}
	}
	e := collections.NewEngine()
	engineCache[string(key)] = e
	return e, nil
}

// RunCollectionsShard decides one shard in-process: the worker half of
// the collections cluster protocol, also used directly by dacd's
// collections-shard runner.
func RunCollectionsShard(ctx context.Context, job CollectionsShardJob, sink *obs.Sink, events *obs.Emitter) (*collections.RangeReport, error) {
	eng, err := engineFor(job.Collections)
	if err != nil {
		return nil, err
	}
	opts := job.Collections.sweepOptions()
	opts.Engine = eng
	opts.Ctx = ctx
	opts.Obs = sink
	opts.Events = events
	if job.PaceMs > 0 {
		pace := time.Duration(job.PaceMs) * time.Millisecond
		opts.OnProgress = func(collections.Progress) { time.Sleep(pace) }
	}
	return collections.CheckRange(job.Collections.Space(), job.Collections.Task(), job.Lo, job.Hi, opts)
}

// RunCollections executes the collections sweep: shard the collection
// space, decide every shard (in-process, or dispatched across Workers
// with retry and stealing), and merge into the canonical
// collections.Report. The returned document is a pure function of the
// spec — identical bytes at any worker count, shard boundary, retry,
// or steal schedule.
func RunCollections(ctx context.Context, sp CollectionsSpec, o Options) (*collections.Report, error) {
	o = o.fill()
	rep, err := runCollections(ctx, sp, o)
	if err != nil {
		o.Events.Emit("cluster.error", obs.Fields{"error": err.Error()})
		return nil, err
	}
	o.Events.Emit("cluster.done", obs.Fields{
		"collections": rep.Collections,
		"pruned":      rep.Pruned,
		"solvable":    rep.Solvable,
		"workers":     len(o.Workers),
	})
	return rep, nil
}

func runCollections(ctx context.Context, sp CollectionsSpec, o Options) (*collections.Report, error) {
	space, tsk := sp.Space(), sp.Task()
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if err := tsk.Validate(); err != nil {
		return nil, err
	}
	n := space.Count()
	bounds := shardBounds(n, o.shardCount(n), 1)
	if len(o.Workers) == 0 {
		return runCollectionsLocal(ctx, sp, space, tsk, bounds, o)
	}
	proto := shardProto{
		kind: "collections-shard",
		job: func(lo, hi int) any {
			return CollectionsShardJob{Collections: sp, Lo: lo, Hi: hi, PaceMs: o.PaceMs}
		},
		states: func(raw []byte) (int, error) {
			var rr collections.RangeReport
			if err := json.Unmarshal(raw, &rr); err != nil {
				return 0, fmt.Errorf("cluster: bad collections shard result: %w", err)
			}
			return rr.Hi - rr.Lo, nil
		},
	}
	raws, err := dispatchCluster(ctx, bounds, proto, o)
	if err != nil {
		return nil, err
	}
	shards := make([]*collections.RangeReport, len(raws))
	for i, raw := range raws {
		var rr collections.RangeReport
		if err := json.Unmarshal(raw, &rr); err != nil {
			return nil, fmt.Errorf("cluster: collections shard [%d,%d) result: %w", bounds[i][0], bounds[i][1], err)
		}
		shards[i] = &rr
	}
	return collections.MergeRanges(space, tsk, sp.Levels, shards)
}

// runCollectionsLocal decides every shard in-process, sequentially —
// the single-daemon baseline, through the exact pipeline the cluster
// uses, so the two render identical bytes.
func runCollectionsLocal(ctx context.Context, sp CollectionsSpec, space collections.Space, tsk collections.Task, bounds [][2]int, o Options) (*collections.Report, error) {
	eng := collections.NewEngine()
	shards := make([]*collections.RangeReport, 0, len(bounds))
	for _, b := range bounds {
		opts := sp.sweepOptions()
		opts.Engine = eng
		opts.Ctx = ctx
		opts.Obs = o.Obs
		opts.Events = o.Events
		if o.PaceMs > 0 {
			pace := time.Duration(o.PaceMs) * time.Millisecond
			opts.OnProgress = func(collections.Progress) { time.Sleep(pace) }
		}
		rr, err := collections.CheckRange(space, tsk, b[0], b[1], opts)
		if err != nil {
			return nil, err
		}
		shards = append(shards, rr)
		o.Obs.Counter("cluster.shards").Inc()
		o.Obs.Counter("cluster.candidates").Add(int64(b[1] - b[0]))
		o.Obs.Counter("cluster.states").Add(int64(b[1] - b[0]))
	}
	return collections.MergeRanges(space, tsk, sp.Levels, shards)
}

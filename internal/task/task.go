// Package task defines the decision tasks of the paper — consensus,
// k-set agreement (§1), and the n-DAC problem (§4) — as machine-checkable
// predicates over execution outcomes. The model checker
// (internal/explore) evaluates the safety predicate at every reachable
// configuration and the liveness requirements over the configuration
// graph; the simulator (internal/sim) evaluates both over sampled runs.
package task

import (
	"errors"
	"fmt"
	"strconv"

	"setagree/internal/value"
)

// ErrViolation is wrapped by every safety-predicate failure.
var ErrViolation = errors.New("task property violated")

// Outcome is a snapshot of the externally visible behaviour of an
// execution: which processes decided what, which aborted, and which have
// taken at least one step. Decisions and aborts are irrevocable, so a
// violation in any reachable snapshot is a violation of the run.
type Outcome struct {
	// Inputs are the proposal values, indexed by process (0-based).
	Inputs []value.Value
	// Decisions hold each process's decided value; the entry is
	// meaningful only when Decided is set. A decided sentinel (NIL, ⊥,
	// done) is representable — and is always a safety violation.
	Decisions []value.Value
	// Decided marks processes that have decided.
	Decided []bool
	// Aborted marks processes that aborted (n-DAC distinguished process
	// only).
	Aborted []bool
	// Stepped marks processes that have performed at least one
	// shared-memory step (used by n-DAC Nontriviality).
	Stepped []bool
}

// NewOutcome allocates an all-undecided outcome for the given inputs.
func NewOutcome(inputs []value.Value) Outcome {
	n := len(inputs)
	in := make([]value.Value, n)
	copy(in, inputs)
	dec := make([]value.Value, n)
	for i := range dec {
		dec[i] = value.None
	}
	return Outcome{
		Inputs:    in,
		Decisions: dec,
		Decided:   make([]bool, n),
		Aborted:   make([]bool, n),
		Stepped:   make([]bool, n),
	}
}

// Decide records process i's decision.
func (o *Outcome) Decide(i int, v value.Value) {
	o.Decided[i] = true
	o.Decisions[i] = v
}

// Task is a decision task: a process count, a safety predicate, and the
// liveness obligations the checker must enforce.
type Task interface {
	// Name identifies the task, e.g. "3-consensus" or "4-DAC".
	Name() string
	// Procs is the number of participating processes.
	Procs() int
	// CheckSafety returns a wrapped ErrViolation if the (possibly
	// partial) outcome already violates the task's safety properties.
	CheckSafety(o Outcome) error
	// Liveness describes the termination obligations.
	Liveness() Liveness
}

// ValueSymmetric01 reports whether the task declares its safety
// predicate invariant under swapping the values 0 and 1 uniformly
// across an outcome's Inputs and Decisions (liveness obligations never
// mention values, so they are trivially invariant). All tasks in this
// package qualify: agreement and validity compare values for equality
// only, and DAC's binary-decision check is itself 0↔1-symmetric. Tasks
// opt in via the interface{ ValueSymmetric01() bool } extension; all
// other tasks are conservatively treated as value-sensitive. The sweep
// memoizer (internal/enumerate) consults this to collapse candidates
// related by the 0↔1 swap.
func ValueSymmetric01(t Task) bool {
	v, ok := t.(interface{ ValueSymmetric01() bool })
	return ok && v.ValueSymmetric01()
}

// PeerSymmetric reports whether the task declares its safety predicate
// and liveness obligations invariant under permuting non-distinguished
// processes together with their inputs (every process when
// Liveness().DACDistinguished < 0). All tasks in this package qualify:
// their predicates examine the per-process Outcome arrays uniformly,
// and only DAC singles out the distinguished index. Tasks opt in via
// the interface{ PeerSymmetric() bool } extension; all other tasks are
// conservatively treated as process-sensitive. The sweep memoizer
// (internal/enumerate) consults this to canonicalize input vectors of
// candidates whose peer processes run a common program.
func PeerSymmetric(t Task) bool {
	v, ok := t.(interface{ PeerSymmetric() bool })
	return ok && v.PeerSymmetric()
}

// Liveness describes which termination properties a task demands.
type Liveness struct {
	// WaitFree demands every process that takes infinitely many steps
	// decides (consensus, k-set agreement).
	WaitFree bool
	// Tolerance, for non-wait-free, non-DAC tasks, is the resilience
	// bound f: termination is demanded only in executions where at most
	// f processes crash (stop taking steps while undecided). WaitFree is
	// equivalent to Tolerance = n-1.
	Tolerance int
	// DACDistinguished, when >= 0, is the 0-based index of the n-DAC
	// distinguished process p: p must decide or abort if it takes
	// infinitely many steps (Termination (a)), and every other process
	// must decide when running solo (Termination (b)).
	DACDistinguished int
}

// Consensus is the consensus task among N processes: Agreement,
// Validity, and wait-free Termination.
type Consensus struct {
	// N is the number of processes.
	N int
}

var _ Task = Consensus{}

// Name implements Task.
func (c Consensus) Name() string { return strconv.Itoa(c.N) + "-process consensus" }

// Procs implements Task.
func (c Consensus) Procs() int { return c.N }

// Liveness implements Task: consensus is wait-free.
func (Consensus) Liveness() Liveness {
	return Liveness{WaitFree: true, DACDistinguished: -1}
}

// ValueSymmetric01 implements the value-symmetry extension.
func (Consensus) ValueSymmetric01() bool { return true }

// PeerSymmetric implements the process-symmetry extension.
func (Consensus) PeerSymmetric() bool { return true }

// CheckSafety implements Task.
func (c Consensus) CheckSafety(o Outcome) error {
	return KSetAgreement{N: c.N, K: 1}.CheckSafety(o)
}

// KSetAgreement is the k-set agreement task among N processes: at most
// K distinct decisions, every decision is some process's input, and
// wait-free termination.
type KSetAgreement struct {
	// N is the number of processes.
	N int
	// K is the agreement bound.
	K int
}

var _ Task = KSetAgreement{}

// Name implements Task.
func (t KSetAgreement) Name() string {
	return "(" + strconv.Itoa(t.N) + "," + strconv.Itoa(t.K) + ")-set agreement"
}

// Procs implements Task.
func (t KSetAgreement) Procs() int { return t.N }

// Liveness implements Task: k-set agreement is wait-free.
func (KSetAgreement) Liveness() Liveness {
	return Liveness{WaitFree: true, DACDistinguished: -1}
}

// ValueSymmetric01 implements the value-symmetry extension.
func (KSetAgreement) ValueSymmetric01() bool { return true }

// PeerSymmetric implements the process-symmetry extension.
func (KSetAgreement) PeerSymmetric() bool { return true }

// CheckSafety implements Task: k-agreement plus validity.
func (t KSetAgreement) CheckSafety(o Outcome) error {
	var distinct []value.Value
	for i, d := range o.Decisions {
		if !o.Decided[i] {
			continue
		}
		if d.IsSentinel() {
			return fmt.Errorf("%s: process %d decided sentinel %s: %w", t.Name(), i+1, d, ErrViolation)
		}
		if !contains(o.Inputs, d) {
			return fmt.Errorf("%s: validity: process %d decided %s, proposed by no process: %w",
				t.Name(), i+1, d, ErrViolation)
		}
		if !contains(distinct, d) {
			distinct = append(distinct, d)
		}
	}
	if len(distinct) > t.K {
		return fmt.Errorf("%s: agreement: %d distinct decisions %v exceed k=%d: %w",
			t.Name(), len(distinct), distinct, t.K, ErrViolation)
	}
	for i, a := range o.Aborted {
		if a {
			return fmt.Errorf("%s: process %d aborted, but the task has no abort action: %w",
				t.Name(), i+1, ErrViolation)
		}
	}
	return nil
}

// DAC is the n-DAC problem of §4 among N processes with binary inputs:
// the distinguished process P (0-based) may abort instead of deciding.
//
//   - Agreement: all decisions are equal.
//   - Validity: a decided value is the input of some process that does
//     not abort.
//   - Termination (a): if P takes infinitely many steps, P decides or
//     aborts.
//   - Termination (b): every other process decides when it runs solo.
//   - Nontriviality: if P aborts, some other process took at least one
//     step.
type DAC struct {
	// N is the number of processes.
	N int
	// P is the 0-based index of the distinguished process.
	P int
}

var _ Task = DAC{}

// Name implements Task.
func (t DAC) Name() string { return strconv.Itoa(t.N) + "-DAC" }

// Procs implements Task.
func (t DAC) Procs() int { return t.N }

// Liveness implements Task: the DAC termination pair (a)/(b).
func (t DAC) Liveness() Liveness {
	return Liveness{WaitFree: false, DACDistinguished: t.P}
}

// ValueSymmetric01 implements the value-symmetry extension: the
// binary-decision, agreement, validity, and nontriviality clauses all
// survive a uniform 0↔1 relabeling.
func (DAC) ValueSymmetric01() bool { return true }

// PeerSymmetric implements the process-symmetry extension: only the
// distinguished process is singled out; the remaining processes enter
// every clause symmetrically.
func (DAC) PeerSymmetric() bool { return true }

// CheckSafety implements Task.
func (t DAC) CheckSafety(o Outcome) error {
	haveDecision := false
	var decided value.Value
	for i, d := range o.Decisions {
		if !o.Decided[i] {
			continue
		}
		if d != 0 && d != 1 {
			return fmt.Errorf("%s: process %d decided non-binary %s: %w", t.Name(), i+1, d, ErrViolation)
		}
		if !haveDecision {
			haveDecision = true
			decided = d
		} else if d != decided {
			return fmt.Errorf("%s: agreement: decisions %s and %s differ: %w",
				t.Name(), decided, d, ErrViolation)
		}
		// Validity: some process that has not aborted has input d. Aborts
		// are irrevocable, so checking every reachable snapshot makes
		// this exact for whole runs.
		valid := false
		for j, in := range o.Inputs {
			if in == d && !o.Aborted[j] {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("%s: validity: %s decided but every process with that input aborted: %w",
				t.Name(), d, ErrViolation)
		}
	}
	for i, a := range o.Aborted {
		if !a {
			continue
		}
		if i != t.P {
			return fmt.Errorf("%s: process %d aborted but only the distinguished process %d may: %w",
				t.Name(), i+1, t.P+1, ErrViolation)
		}
		someoneStepped := false
		for j, s := range o.Stepped {
			if j != t.P && s {
				someoneStepped = true
				break
			}
		}
		if !someoneStepped {
			return fmt.Errorf("%s: nontriviality: p aborted although no other process took a step: %w",
				t.Name(), ErrViolation)
		}
	}
	return nil
}

func contains(vs []value.Value, v value.Value) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// ResilientKSet is the f-resilient k-set agreement task among N
// processes (Chaudhuri [5]): the safety properties of k-set agreement,
// with termination demanded only in executions where at most F
// processes crash. It is solvable from registers alone iff F < K (the
// positive direction is Chaudhuri's protocol, programs.ChaudhuriKSet;
// the negative direction is the Borowsky–Gafni / Herlihy–Shavit /
// Saks–Zaharoglou theorem).
type ResilientKSet struct {
	// N is the number of processes.
	N int
	// K is the agreement bound.
	K int
	// F is the resilience (maximum tolerated crashes).
	F int
}

var _ Task = ResilientKSet{}

// Name implements Task.
func (t ResilientKSet) Name() string {
	return strconv.Itoa(t.F) + "-resilient (" + strconv.Itoa(t.N) + "," + strconv.Itoa(t.K) + ")-set agreement"
}

// Procs implements Task.
func (t ResilientKSet) Procs() int { return t.N }

// Liveness implements Task.
func (t ResilientKSet) Liveness() Liveness {
	return Liveness{Tolerance: t.F, DACDistinguished: -1}
}

// ValueSymmetric01 implements the value-symmetry extension.
func (ResilientKSet) ValueSymmetric01() bool { return true }

// PeerSymmetric implements the process-symmetry extension.
func (ResilientKSet) PeerSymmetric() bool { return true }

// CheckSafety implements Task (identical to the wait-free variant).
func (t ResilientKSet) CheckSafety(o Outcome) error {
	return KSetAgreement{N: t.N, K: t.K}.CheckSafety(o)
}

package task_test

import (
	"errors"
	"testing"

	"setagree/internal/task"
	"setagree/internal/value"
)

func outcome(inputs []value.Value, mutate func(*task.Outcome)) task.Outcome {
	o := task.NewOutcome(inputs)
	if mutate != nil {
		mutate(&o)
	}
	return o
}

func TestConsensusSafetyAccepts(t *testing.T) {
	t.Parallel()
	c := task.Consensus{N: 3}
	cases := []task.Outcome{
		outcome([]value.Value{0, 1, 1}, nil),
		outcome([]value.Value{0, 1, 1}, func(o *task.Outcome) { o.Decide(0, 1) }),
		outcome([]value.Value{0, 1, 1}, func(o *task.Outcome) {
			o.Decide(0, 0)
			o.Decide(1, 0)
			o.Decide(2, 0)
		}),
	}
	for i, o := range cases {
		if err := c.CheckSafety(o); err != nil {
			t.Errorf("case %d rejected: %v", i, err)
		}
	}
}

func TestConsensusSafetyRejects(t *testing.T) {
	t.Parallel()
	c := task.Consensus{N: 2}
	cases := []struct {
		name string
		o    task.Outcome
	}{
		{"disagreement", outcome([]value.Value{0, 1}, func(o *task.Outcome) {
			o.Decide(0, 0)
			o.Decide(1, 1)
		})},
		{"invalid value", outcome([]value.Value{0, 1}, func(o *task.Outcome) {
			o.Decide(0, 7)
		})},
		{"sentinel decision", outcome([]value.Value{0, 1}, func(o *task.Outcome) {
			o.Decide(0, value.Bottom)
		})},
		{"abort in abortless task", outcome([]value.Value{0, 1}, func(o *task.Outcome) {
			o.Aborted[0] = true
		})},
	}
	for _, tc := range cases {
		if err := c.CheckSafety(tc.o); !errors.Is(err, task.ErrViolation) {
			t.Errorf("%s: err = %v, want ErrViolation", tc.name, err)
		}
	}
}

func TestKSetAgreementBound(t *testing.T) {
	t.Parallel()
	k2 := task.KSetAgreement{N: 4, K: 2}
	two := outcome([]value.Value{0, 1, 2, 3}, func(o *task.Outcome) {
		o.Decide(0, 0)
		o.Decide(1, 1)
		o.Decide(2, 1)
	})
	if err := k2.CheckSafety(two); err != nil {
		t.Errorf("two distinct decisions rejected: %v", err)
	}
	three := outcome([]value.Value{0, 1, 2, 3}, func(o *task.Outcome) {
		o.Decide(0, 0)
		o.Decide(1, 1)
		o.Decide(2, 2)
	})
	if err := k2.CheckSafety(three); !errors.Is(err, task.ErrViolation) {
		t.Errorf("three distinct decisions accepted: %v", err)
	}
}

func TestKSetAgreementValidity(t *testing.T) {
	t.Parallel()
	k2 := task.KSetAgreement{N: 2, K: 2}
	bad := outcome([]value.Value{4, 5}, func(o *task.Outcome) { o.Decide(0, 6) })
	if err := k2.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("unproposed decision accepted: %v", err)
	}
}

func TestDACAgreement(t *testing.T) {
	t.Parallel()
	d := task.DAC{N: 3, P: 0}
	bad := outcome([]value.Value{1, 0, 0}, func(o *task.Outcome) {
		o.Decide(1, 0)
		o.Decide(2, 1)
	})
	if err := d.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("disagreement accepted: %v", err)
	}
}

func TestDACValidityRespectsAborts(t *testing.T) {
	t.Parallel()
	d := task.DAC{N: 3, P: 0}
	// p is the only process with input 1; p aborted; someone decided 1.
	bad := outcome([]value.Value{1, 0, 0}, func(o *task.Outcome) {
		o.Aborted[0] = true
		o.Stepped[1] = true
		o.Decide(1, 1)
	})
	if err := d.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("validity with aborted proposer accepted: %v", err)
	}
	// Same decisions but p did NOT abort: fine.
	good := outcome([]value.Value{1, 0, 0}, func(o *task.Outcome) {
		o.Decide(1, 1)
	})
	if err := d.CheckSafety(good); err != nil {
		t.Errorf("valid outcome rejected: %v", err)
	}
}

func TestDACNonBinaryDecision(t *testing.T) {
	t.Parallel()
	d := task.DAC{N: 2, P: 0}
	bad := outcome([]value.Value{1, 0}, func(o *task.Outcome) { o.Decide(1, 3) })
	if err := d.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("non-binary decision accepted: %v", err)
	}
}

func TestDACNontriviality(t *testing.T) {
	t.Parallel()
	d := task.DAC{N: 3, P: 1}
	// p aborted although nobody else took a step.
	bad := outcome([]value.Value{0, 1, 0}, func(o *task.Outcome) {
		o.Aborted[1] = true
		o.Stepped[1] = true
	})
	if err := d.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("trivial abort accepted: %v", err)
	}
	// p aborted after q took a step: fine.
	good := outcome([]value.Value{0, 1, 0}, func(o *task.Outcome) {
		o.Aborted[1] = true
		o.Stepped[0] = true
	})
	if err := d.CheckSafety(good); err != nil {
		t.Errorf("legitimate abort rejected: %v", err)
	}
}

func TestDACOnlyDistinguishedAborts(t *testing.T) {
	t.Parallel()
	d := task.DAC{N: 3, P: 0}
	bad := outcome([]value.Value{1, 0, 0}, func(o *task.Outcome) {
		o.Aborted[2] = true
		o.Stepped[0] = true
	})
	if err := d.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("non-distinguished abort accepted: %v", err)
	}
}

func TestLivenessDescriptors(t *testing.T) {
	t.Parallel()
	if l := (task.Consensus{N: 3}).Liveness(); !l.WaitFree || l.DACDistinguished != -1 {
		t.Errorf("consensus liveness = %+v", l)
	}
	if l := (task.DAC{N: 3, P: 2}).Liveness(); l.WaitFree || l.DACDistinguished != 2 {
		t.Errorf("DAC liveness = %+v", l)
	}
}

func TestTaskNamesAndProcs(t *testing.T) {
	t.Parallel()
	if got := (task.Consensus{N: 4}).Name(); got != "4-process consensus" {
		t.Errorf("name = %q", got)
	}
	if got := (task.KSetAgreement{N: 6, K: 2}).Name(); got != "(6,2)-set agreement" {
		t.Errorf("name = %q", got)
	}
	if got := (task.DAC{N: 5, P: 0}).Name(); got != "5-DAC" {
		t.Errorf("name = %q", got)
	}
	if (task.DAC{N: 5, P: 0}).Procs() != 5 {
		t.Error("procs")
	}
}

func TestNewOutcomeCopiesInputs(t *testing.T) {
	t.Parallel()
	in := []value.Value{1, 2}
	o := task.NewOutcome(in)
	in[0] = 9
	if o.Inputs[0] != 1 {
		t.Error("NewOutcome aliases its input slice")
	}
	for _, d := range o.Decisions {
		if d != value.None {
			t.Error("fresh outcome has decisions")
		}
	}
}

func TestResilientKSetName(t *testing.T) {
	t.Parallel()
	got := (task.ResilientKSet{N: 4, K: 3, F: 2}).Name()
	if got != "2-resilient (4,3)-set agreement" {
		t.Errorf("name = %q", got)
	}
}

func TestResilientKSetLiveness(t *testing.T) {
	t.Parallel()
	l := (task.ResilientKSet{N: 4, K: 3, F: 2}).Liveness()
	if l.WaitFree || l.Tolerance != 2 || l.DACDistinguished != -1 {
		t.Errorf("liveness = %+v", l)
	}
}

func TestResilientKSetSafetyDelegates(t *testing.T) {
	t.Parallel()
	rt := task.ResilientKSet{N: 3, K: 2, F: 1}
	bad := outcome([]value.Value{1, 2, 3}, func(o *task.Outcome) {
		o.Decide(0, 1)
		o.Decide(1, 2)
		o.Decide(2, 3)
	})
	if err := rt.CheckSafety(bad); !errors.Is(err, task.ErrViolation) {
		t.Errorf("3 distinct decisions accepted: %v", err)
	}
	good := outcome([]value.Value{1, 2, 3}, func(o *task.Outcome) {
		o.Decide(0, 1)
		o.Decide(1, 1)
	})
	if err := rt.CheckSafety(good); err != nil {
		t.Errorf("valid outcome rejected: %v", err)
	}
}

// Package sim executes protocol systems under concrete schedules. Where
// internal/explore quantifies over every schedule (feasible for small
// instances), sim samples: seeded pseudo-random schedulers, round-robin,
// solo runs, and adversarially crashed processes, over instances far
// beyond model-checking scale. The same machine semantics back both, so
// a sim run is exactly one path of the explorer's configuration graph.
package sim

import (
	"context"
	"fmt"

	"setagree/internal/explore"
	"setagree/internal/history"
	"setagree/internal/machine"
	"setagree/internal/obs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// Scheduler picks the next process to step and resolves object
// nondeterminism. Implementations may be stateful; a Scheduler drives
// one run at a time.
type Scheduler interface {
	// NextProc picks an element of live (the processes able to step).
	NextProc(live []int) int
	// Chooser resolves nondeterministic object transitions.
	spec.Chooser
}

// roundRobin cycles through live processes.
type roundRobin struct {
	turn int
}

// RoundRobin returns a scheduler that steps live processes cyclically
// and resolves object nondeterminism with the first transition.
func RoundRobin() Scheduler { return &roundRobin{} }

func (s *roundRobin) NextProc(live []int) int {
	s.turn++
	return live[s.turn%len(live)]
}

func (*roundRobin) Choose(int) int { return 0 }

// random is a seeded xorshift scheduler.
type random struct {
	state uint64
}

// Random returns a deterministic pseudo-random scheduler seeded with
// seed; identical seeds replay identical runs.
func Random(seed uint64) Scheduler {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &random{state: seed}
}

func (s *random) next() uint64 {
	s.state ^= s.state >> 12
	s.state ^= s.state << 25
	s.state ^= s.state >> 27
	return s.state * 0x2545f4914f6cdd1d
}

func (s *random) NextProc(live []int) int {
	return live[s.next()%uint64(len(live))]
}

func (s *random) Choose(n int) int {
	return int(s.next() % uint64(n))
}

// solo steps one preferred process while it is live, then falls back to
// round-robin over the rest — the "q runs solo" histories the paper's
// proofs use.
type solo struct {
	rr     roundRobin
	prefer int
}

// Solo returns a scheduler that runs process prefer (0-based) solo
// until it terminates, then the others round-robin.
func Solo(prefer int) Scheduler { return &solo{prefer: prefer} }

func (s *solo) NextProc(live []int) int {
	for _, p := range live {
		if p == s.prefer {
			return p
		}
	}
	return s.rr.NextProc(live)
}

func (*solo) Choose(int) int { return 0 }

// Options configures a run.
type Options struct {
	// MaxSteps bounds the run length (default 1 << 16).
	MaxSteps int
	// CrashAt maps a 0-based process to the global step count at which
	// it crashes (takes no further steps).
	CrashAt map[int]int
	// RecordTrace retains the executed schedule in the result.
	RecordTrace bool
	// Obs, when set, receives the sim.* run metrics: runs, steps,
	// completed, violations, and replays (runs driven by a Replay
	// scheduler). Values are sums of work done, so identical runs yield
	// identical metrics. Nil disables metrics at zero cost.
	Obs *obs.Sink
	// Ctx, when set, cancels cooperatively: Run checks it every
	// ctxCheckEvery steps (still flushing the sim.* counters for the
	// partial run), and Trials additionally checks it between trials.
	// Both return an error satisfying errors.Is(err, ctx.Err()).
	Ctx context.Context
}

// ctxCheckEvery is how many executed steps Run lets pass between
// cancellation polls — frequent enough to stop promptly, rare enough
// that the uncancelled fast path stays branch-predictable.
const ctxCheckEvery = 1 << 10

// Result describes one run.
type Result struct {
	// Outcome is the final externally visible outcome.
	Outcome task.Outcome
	// Steps is the number of shared-memory steps executed.
	Steps int
	// Completed reports that every non-crashed process terminated.
	Completed bool
	// Trace is the executed schedule when Options.RecordTrace was set.
	Trace []explore.Step
	// Violation is the first task safety violation observed, nil if
	// none (liveness cannot be decided from one finite run).
	Violation error
}

// Run executes sys under sched until every process terminates, a safety
// violation occurs, or the step budget expires.
func Run(sys *explore.System, tsk task.Task, sched Scheduler, opts Options) (*Result, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 1 << 16
	}
	n := sys.Procs()
	procs := make([]machine.ProcState, n)
	for i := 0; i < n; i++ {
		ps, err := machine.Start(sys.Programs[i], i+1, sys.Inputs[i])
		if err != nil {
			return nil, err
		}
		procs[i] = ps
	}
	objs := make([]spec.State, len(sys.Objects))
	for j, o := range sys.Objects {
		objs[j] = o.Init()
	}
	stepped := make([]bool, n)
	res := &Result{}

	outcome := func() task.Outcome {
		o := task.NewOutcome(sys.Inputs)
		for i, ps := range procs {
			switch ps.Status {
			case machine.StatusDecided:
				o.Decide(i, ps.Decision)
			case machine.StatusAborted:
				o.Aborted[i] = true
			}
			o.Stepped[i] = stepped[i]
		}
		return o
	}

	var interrupted error
	for res.Steps < opts.MaxSteps {
		if ctx := opts.Ctx; ctx != nil && res.Steps%ctxCheckEvery == 0 && ctx.Err() != nil {
			interrupted = fmt.Errorf("sim: run interrupted after %d steps: %w", res.Steps, ctx.Err())
			break
		}
		// Crash processes whose time has come.
		for i, at := range opts.CrashAt {
			if res.Steps >= at && procs[i].Status == machine.StatusPoised {
				procs[i] = machine.Crash(procs[i])
			}
		}
		var live []int
		for i := range procs {
			if procs[i].Status == machine.StatusPoised {
				live = append(live, i)
			}
		}
		if len(live) == 0 {
			res.Completed = true
			break
		}
		i := sched.NextProc(live)
		if procs[i].Status != machine.StatusPoised {
			return nil, fmt.Errorf("sim: scheduler picked non-live process %d: %w", i+1, machine.ErrProgram)
		}
		poise, _ := machine.Poised(sys.Programs[i], procs[i])
		if poise.Obj < 0 || poise.Obj >= len(sys.Objects) {
			return nil, spec.BadOpError("sim", poise.Op, "object index out of range")
		}
		ts, err := sys.Objects[poise.Obj].Step(objs[poise.Obj], poise.Op)
		if err != nil {
			return nil, err
		}
		branch := 0
		if len(ts) > 1 {
			branch = sched.Choose(len(ts))
			if branch < 0 || branch >= len(ts) {
				return nil, fmt.Errorf("sim: chooser picked branch %d of %d: %w", branch, len(ts), machine.ErrProgram)
			}
		}
		t := ts[branch]
		next, err := machine.Resume(sys.Programs[i], procs[i], t.Resp)
		if err != nil {
			return nil, err
		}
		procs[i] = next
		objs[poise.Obj] = t.Next
		stepped[i] = true
		res.Steps++
		if stepper, ok := sched.(interface{ advance() }); ok {
			stepper.advance()
		}
		if opts.RecordTrace {
			res.Trace = append(res.Trace, explore.Step{
				Proc: i, Obj: poise.Obj, Op: poise.Op, Resp: t.Resp, Branch: branch,
			})
		}
		if tsk != nil {
			if err := tsk.CheckSafety(outcome()); err != nil {
				res.Violation = err
				break
			}
		}
	}
	res.Outcome = outcome()
	if opts.Obs != nil {
		o := opts.Obs
		o.Counter("sim.runs").Inc()
		o.Counter("sim.steps").Add(int64(res.Steps))
		if res.Completed {
			o.Counter("sim.completed").Inc()
		}
		if res.Violation != nil {
			o.Counter("sim.violations").Inc()
		}
		if _, isReplay := sched.(*replay); isReplay {
			o.Counter("sim.replays").Inc()
		}
	}
	if interrupted != nil {
		return nil, interrupted
	}
	return res, nil
}

// TrialViolation is the violation Trials reports: the underlying task
// safety violation together with everything needed to reproduce the
// failing run from the error message alone — the trial index, the
// exact scheduler seed of that trial, and the step budget.
type TrialViolation struct {
	// Err is the underlying safety violation.
	Err error
	// Seed is the exact seed of the failing trial's scheduler; replay
	// the run with sim.Random(Seed) on a fresh system.
	Seed uint64
	// Trial is the 0-based trial index within the Trials call.
	Trial int
	// MaxSteps is the step budget the failing run executed under.
	MaxSteps int
}

// Error renders the violation with its reproduction recipe.
func (v *TrialViolation) Error() string {
	return fmt.Sprintf("trial %d (scheduler sim.Random(%d), max steps %d): %v",
		v.Trial, v.Seed, v.MaxSteps, v.Err)
}

// Unwrap exposes the underlying safety violation to errors.Is/As.
func (v *TrialViolation) Unwrap() error { return v.Err }

// Trials runs the same system under `trials` differently seeded random
// schedules and returns the first safety violation, if any, together
// with the number of completed runs. A non-nil violation is always a
// *TrialViolation carrying the failing trial's index, scheduler seed,
// and step budget, so the failure is reproducible from the message
// alone. With Options.Obs set, the sink additionally collects the
// sim.trials counter on top of each run's sim.* metrics.
func Trials(mk func() (*explore.System, error), tsk task.Task, trials int, seed uint64, opts Options) (completed int, violation error, err error) {
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 16
	}
	trialCounter := opts.Obs.Counter("sim.trials")
	for t := 0; t < trials; t++ {
		if ctx := opts.Ctx; ctx != nil && ctx.Err() != nil {
			return completed, violation, fmt.Errorf("sim: interrupted after %d of %d trials: %w", t, trials, ctx.Err())
		}
		sys, err := mk()
		if err != nil {
			return completed, violation, err
		}
		trialSeed := seed + uint64(t)*0x9e37
		r, err := Run(sys, tsk, Random(trialSeed), opts)
		if err != nil {
			return completed, violation, err
		}
		trialCounter.Inc()
		if r.Violation != nil && violation == nil {
			violation = &TrialViolation{Trial: t, Seed: trialSeed, MaxSteps: maxSteps, Err: r.Violation}
		}
		if r.Completed {
			completed++
		}
	}
	return completed, violation, nil
}

// Inputs builds an input vector of n values drawn cyclically from vals.
func Inputs(n int, vals ...value.Value) []value.Value {
	out := make([]value.Value, n)
	for i := range out {
		out[i] = vals[i%len(vals)]
	}
	return out
}

// replay follows a recorded schedule step for step, both in process
// choice and in nondeterministic branch choice. After the schedule is
// exhausted it refuses to continue (NextProc panics are avoided by
// falling back to the first live process; Choose falls back to 0).
type replay struct {
	steps []explore.Step
	at    int
}

// Replay returns a scheduler that re-executes a schedule produced by
// the model checker (a Violation witness) or a recorded sim trace. Use
// with Options.MaxSteps = len(steps) to stop exactly at the end.
func Replay(steps []explore.Step) Scheduler {
	copied := make([]explore.Step, len(steps))
	copy(copied, steps)
	return &replay{steps: copied}
}

func (r *replay) NextProc(live []int) int {
	if r.at >= len(r.steps) {
		return live[0]
	}
	want := r.steps[r.at].Proc
	for _, p := range live {
		if p == want {
			return p
		}
	}
	return live[0]
}

func (r *replay) Choose(n int) int {
	if r.at >= len(r.steps) {
		return 0
	}
	b := r.steps[r.at].Branch
	if b < 0 || b >= n {
		return 0
	}
	return b
}

// advance is called by Run after each executed step.
func (r *replay) advance() { r.at++ }

// TraceToHistory converts a recorded schedule into a completed-operation
// history (each step is atomic, so its invocation and return are
// adjacent logical instants). Together with internal/lincheck this
// cross-validates the machine semantics against the object specs: any
// trace the simulator (or the model checker) produces must be
// linearizable per object.
func TraceToHistory(trace []explore.Step) *history.History {
	h := &history.History{Events: make([]history.Event, 0, len(trace))}
	clock := int64(0)
	for _, s := range trace {
		clock++
		inv := clock
		clock++
		h.Events = append(h.Events, history.Event{
			Proc:   s.Proc + 1,
			Obj:    s.Obj,
			Method: s.Op.Method,
			Arg:    s.Op.Arg,
			Label:  s.Op.Label,
			Resp:   s.Resp,
			Inv:    inv,
			Ret:    clock,
		})
	}
	return h
}

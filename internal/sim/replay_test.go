package sim_test

import (
	"errors"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/lincheck"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestReplayTraceReproducesRun records a random run's trace and replays
// it: outcome and step count must match exactly.
func TestReplayTraceReproducesRun(t *testing.T) {
	t.Parallel()
	const n = 5
	prot := programs.Algorithm2(n, 2)
	inputs := sim.Inputs(n, 1, 0, 1)

	sys := mustSystem(t, prot, inputs)
	orig, err := sim.Run(sys, task.DAC{N: n, P: 1}, sim.Random(321), sim.Options{
		MaxSteps:    4096,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Completed {
		t.Skip("original run hit the budget; nothing deterministic to replay")
	}

	sys2 := mustSystem(t, prot, inputs)
	replayed, err := sim.Run(sys2, task.DAC{N: n, P: 1}, sim.Replay(orig.Trace), sim.Options{
		MaxSteps:    len(orig.Trace),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Steps != orig.Steps {
		t.Fatalf("replay took %d steps, original %d", replayed.Steps, orig.Steps)
	}
	for i := range orig.Trace {
		if orig.Trace[i] != replayed.Trace[i] {
			t.Fatalf("step %d diverged: %v vs %v", i, orig.Trace[i], replayed.Trace[i])
		}
	}
	for i := range orig.Outcome.Decided {
		if orig.Outcome.Decided[i] != replayed.Outcome.Decided[i] ||
			orig.Outcome.Decisions[i] != replayed.Outcome.Decisions[i] ||
			orig.Outcome.Aborted[i] != replayed.Outcome.Aborted[i] {
			t.Fatalf("outcome diverged at process %d", i+1)
		}
	}
}

// TestReplayExplorerWitness is the cross-engine validation: a safety
// violation witness produced by the exhaustive model checker, replayed
// step for step in the simulator, reproduces the violation.
func TestReplayExplorerWitness(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2)
	inputs := []value.Value{0, 1}
	sys := mustSystem(t, prot, inputs)
	rep, err := explore.Check(sys, task.Consensus{N: 2}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved() {
		t.Fatal("expected a safety violation")
	}
	var witness []explore.Step
	for _, v := range rep.Violations {
		if v.Kind == explore.ViolationSafety {
			witness = v.Witness
			break
		}
	}
	if witness == nil {
		t.Fatal("no safety witness")
	}

	sys2 := mustSystem(t, prot, inputs)
	res, err := sim.Run(sys2, task.Consensus{N: 2}, sim.Replay(witness), sim.Options{
		MaxSteps: len(witness),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("replaying the checker's witness did not reproduce the violation")
	}
	if !errors.Is(res.Violation, task.ErrViolation) {
		t.Fatalf("unexpected violation type: %v", res.Violation)
	}
}

// TestReplayLivenessCycle replays witness + several cycle iterations of
// a liveness violation: the run must not complete (the cycle really
// loops).
func TestReplayLivenessCycle(t *testing.T) {
	t.Parallel()
	prot := programs.OverSubscribedConsensus(2)
	inputs := []value.Value{0, 1, 2}
	sys := mustSystem(t, prot, inputs)
	rep, err := explore.Check(sys, task.Consensus{N: 3}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wit, cyc []explore.Step
	for _, v := range rep.Violations {
		if v.Kind == explore.ViolationWaitFree && len(v.Cycle) > 0 {
			wit, cyc = v.Witness, v.Cycle
			break
		}
	}
	if cyc == nil {
		t.Fatal("no wait-free cycle witness")
	}
	schedule := append([]explore.Step(nil), wit...)
	for r := 0; r < 5; r++ {
		schedule = append(schedule, cyc...)
	}
	sys2 := mustSystem(t, prot, inputs)
	res, err := sim.Run(sys2, nil, sim.Replay(schedule), sim.Options{MaxSteps: len(schedule)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("liveness-cycle replay completed — the cycle does not loop")
	}
	if res.Steps != len(schedule) {
		t.Fatalf("replay executed %d of %d steps", res.Steps, len(schedule))
	}
}

// TestTraceHistoriesLinearizable is the machine-vs-spec cross check:
// per-object histories extracted from simulator traces must be
// linearizable w.r.t. the object specs, for a spread of protocols and
// seeds.
func TestTraceHistoriesLinearizable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		prot   programs.Protocol
		inputs []value.Value
	}{
		{programs.Algorithm2(4, 1), sim.Inputs(4, 1, 0)},
		{programs.ConsensusFromPACM(3, 2, 2), sim.Inputs(2, 0, 1)},
		{programs.KSetFromSA(0, 2, 4), sim.Inputs(4, 3, 5, 7, 9)},
		{programs.ChaudhuriKSet(3, 2), sim.Inputs(3, 4, 6)},
		{programs.ConsensusFromQueue(), sim.Inputs(2, 8, 9)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.prot.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 10; seed++ {
				sys, err := tc.prot.System(tc.inputs)
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(sys, nil, sim.Random(seed), sim.Options{
					MaxSteps:    60, // keep histories within lincheck's event cap
					RecordTrace: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				h := sim.TraceToHistory(res.Trace)
				specs := make(map[int]spec.Spec, len(tc.prot.Objects))
				for j, sp := range tc.prot.Objects {
					specs[j] = sp
				}
				if _, err := lincheck.Check(h, specs); err != nil {
					t.Fatalf("seed %d: trace history not linearizable: %v", seed, err)
				}
			}
		})
	}
}

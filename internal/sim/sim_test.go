package sim_test

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

func mustSystem(t *testing.T, p programs.Protocol, inputs []value.Value) *explore.System {
	t.Helper()
	sys, err := p.System(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAlgorithm2RandomSchedules samples Algorithm 2 for n = 5 under many
// seeds: no safety violation ever, and runs complete (all processes
// decide or p aborts) in practice.
func TestAlgorithm2RandomSchedules(t *testing.T) {
	t.Parallel()
	const n = 5
	prot := programs.Algorithm2(n, 2)
	tsk := task.DAC{N: n, P: 1}
	completed, violation, err := sim.Trials(func() (*explore.System, error) {
		return prot.System(sim.Inputs(n, 1, 0))
	}, tsk, 300, 12345, sim.Options{MaxSteps: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if violation != nil {
		t.Fatalf("safety violation under random schedule: %v", violation)
	}
	if completed < 290 {
		t.Errorf("only %d/300 runs completed within budget", completed)
	}
}

// TestAlgorithm2SoloDistinguished checks Termination (a)'s solo case
// live: p running solo decides its own input and never aborts
// (Nontriviality, Claim 4.2.4's first half).
func TestAlgorithm2SoloDistinguished(t *testing.T) {
	t.Parallel()
	const n = 4
	prot := programs.Algorithm2(n, 1)
	sys := mustSystem(t, prot, sim.Inputs(n, 1, 0, 0, 0))
	res, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.Solo(0), sim.Options{MaxSteps: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if res.Outcome.Aborted[0] {
		t.Fatal("p aborted in a solo run (Nontriviality)")
	}
	if res.Outcome.Decisions[0] != 1 {
		t.Fatalf("p decided %s solo, want its own input 1", res.Outcome.Decisions[0])
	}
}

// TestAlgorithm2SoloOther checks Termination (b) live: each q running
// solo decides its own input.
func TestAlgorithm2SoloOther(t *testing.T) {
	t.Parallel()
	const n = 4
	prot := programs.Algorithm2(n, 1)
	for q := 1; q < n; q++ {
		sys := mustSystem(t, prot, sim.Inputs(n, 1, 0, 0, 0))
		res, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.Solo(q), sim.Options{MaxSteps: 64})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome.Decisions[q] != 0 {
			t.Fatalf("q=%d decided %s solo, want 0", q+1, res.Outcome.Decisions[q])
		}
	}
}

// TestCrashInjection crashes the distinguished process mid-protocol;
// the others still decide (their retry loop needs no help once p is
// silent).
func TestCrashInjection(t *testing.T) {
	t.Parallel()
	const n = 3
	prot := programs.Algorithm2(n, 1)
	sys := mustSystem(t, prot, sim.Inputs(n, 1, 0, 0))
	res, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.RoundRobin(), sim.Options{
		MaxSteps: 4096,
		CrashAt:  map[int]int{0: 1}, // p crashes after the first global step
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}
	for q := 1; q < n; q++ {
		if !res.Outcome.Decided[q] {
			t.Fatalf("q=%d undecided after p crashed", q+1)
		}
	}
}

// TestReplayDeterminism checks that the same seed replays the same
// trace.
func TestReplayDeterminism(t *testing.T) {
	t.Parallel()
	const n = 4
	prot := programs.Algorithm2(n, 1)
	run := func() []explore.Step {
		sys := mustSystem(t, prot, sim.Inputs(n, 1, 0, 1, 0))
		res, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.Random(99), sim.Options{
			MaxSteps:    4096,
			RecordTrace: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestRoundRobinLivelockBudget pins the known livelock of Algorithm 2
// under perfectly alternating non-distinguished processes after p is
// done — allowed by the n-DAC spec (only solo termination is promised),
// and reported as an exhausted budget rather than an error.
func TestRoundRobinLivelockBudget(t *testing.T) {
	t.Parallel()
	const n = 3
	prot := programs.Algorithm2(n, 1)
	sys := mustSystem(t, prot, sim.Inputs(n, 1, 0, 0))
	res, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.RoundRobin(), sim.Options{MaxSteps: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("livelock must not be a safety violation: %v", res.Violation)
	}
	// Whether it completes depends on the alternation pattern; both
	// outcomes are legal. Just ensure the budget bounded the run.
	if res.Steps > 300 {
		t.Fatalf("run exceeded budget: %d", res.Steps)
	}
}

// TestSafetyViolationSurfaces checks a flawed protocol's violation is
// reported from a sampled run too (not only by the exhaustive checker).
func TestSafetyViolationSurfaces(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2)
	found := false
	for seed := uint64(1); seed <= 64 && !found; seed++ {
		sys := mustSystem(t, prot, []value.Value{0, 1})
		res, err := sim.Run(sys, task.Consensus{N: 2}, sim.Random(seed), sim.Options{MaxSteps: 64})
		if err != nil {
			t.Fatal(err)
		}
		found = res.Violation != nil
	}
	if !found {
		t.Fatal("no seed exposed the 2-SA disagreement within 64 tries")
	}
}

func TestInputsHelper(t *testing.T) {
	t.Parallel()
	got := sim.Inputs(5, 1, 0)
	want := []value.Value{1, 0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Inputs = %v", got)
		}
	}
}

package sim_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
)

// TestTrialsPreCancelled starts a campaign under an already-cancelled
// context: the trial-boundary check fires before the first system is
// even built, and the error reports the (zero) progress.
func TestTrialsPreCancelled(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	completed, violation, err := sim.Trials(func() (*explore.System, error) {
		t.Fatal("factory called under a pre-cancelled context")
		return nil, nil
	}, task.DAC{N: 4, P: 0}, 50, 99, sim.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "interrupted after 0 of 50 trials") {
		t.Errorf("error does not report progress: %v", err)
	}
	if completed != 0 || violation != nil {
		t.Errorf("completed = %d, violation = %v; want 0, nil", completed, violation)
	}
}

// TestTrialsCancellation cancels mid-campaign from the system factory.
// The very next run's step-0 poll observes the cancellation, so the
// campaign stops with the counters of every finished trial flushed —
// including sim.runs for the interrupted run itself — and no further
// factory calls.
func TestTrialsCancellation(t *testing.T) {
	t.Parallel()
	const n, stopAt = 4, 3
	prot := programs.Algorithm2(n, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := obs.NewSink()
	calls := 0
	completed, violation, err := sim.Trials(func() (*explore.System, error) {
		calls++
		if calls > stopAt {
			t.Fatalf("factory called %d times after cancellation at call %d", calls, stopAt)
		}
		if calls == stopAt {
			cancel()
		}
		return prot.System(sim.Inputs(n, 1, 0))
	}, task.DAC{N: n, P: 0}, 50, 99, sim.Options{MaxSteps: 4096, Obs: sink, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if violation != nil {
		t.Errorf("unexpected violation: %v", violation)
	}
	if completed != stopAt-1 {
		t.Errorf("completed = %d, want %d", completed, stopAt-1)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["sim.trials"]; got != stopAt-1 {
		t.Errorf("sim.trials = %d, want %d (finished trials must stay flushed)", got, stopAt-1)
	}
	if got := snap.Counters["sim.runs"]; got != stopAt {
		t.Errorf("sim.runs = %d, want %d (the interrupted run still flushes)", got, stopAt)
	}
}

// TestRunPreCancelled runs under an already-cancelled context: Run
// stops at its step-0 poll but still flushes the sim.* counters for
// the (empty) run.
func TestRunPreCancelled(t *testing.T) {
	t.Parallel()
	const n = 4
	sys := mustSystem(t, programs.Algorithm2(n, 1), sim.Inputs(n, 1, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := obs.NewSink()
	_, err := sim.Run(sys, task.DAC{N: n, P: 0}, sim.RoundRobin(), sim.Options{Obs: sink, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["sim.runs"]; got != 1 {
		t.Errorf("sim.runs = %d, want 1 (cancelled runs still flush counters)", got)
	}
	if got := snap.Counters["sim.steps"]; got != 0 {
		t.Errorf("sim.steps = %d, want 0", got)
	}
}

package sim_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestTrialViolationReproducible drives Trials into a safety violation
// (naive consensus from one 2-SA object disagrees under contention) and
// checks the reported error alone suffices to reproduce the failure:
// it is a *TrialViolation naming the trial, the exact scheduler seed,
// and the step budget, and re-running sim.Random(Seed) on a fresh
// system reproduces the same violation.
func TestTrialViolationReproducible(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2)
	mk := func() (*explore.System, error) {
		return prot.System([]value.Value{0, 1})
	}
	opts := sim.Options{MaxSteps: 64}
	_, violation, err := sim.Trials(mk, task.Consensus{N: 2}, 64, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if violation == nil {
		t.Fatal("no seed exposed the 2-SA disagreement within 64 trials")
	}
	var tv *sim.TrialViolation
	if !errors.As(violation, &tv) {
		t.Fatalf("violation is %T, want *sim.TrialViolation", violation)
	}
	if tv.Err == nil {
		t.Fatal("TrialViolation wraps no underlying error")
	}
	msg := violation.Error()
	for _, want := range []string{
		fmt.Sprintf("trial %d", tv.Trial),
		fmt.Sprintf("sim.Random(%d)", tv.Seed),
		fmt.Sprintf("max steps %d", tv.MaxSteps),
		tv.Err.Error(),
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("violation message %q missing %q", msg, want)
		}
	}
	// The recipe works: the named seed replays the same violation.
	sys := mustSystem(t, prot, []value.Value{0, 1})
	res, err := sim.Run(sys, task.Consensus{N: 2}, sim.Random(tv.Seed),
		sim.Options{MaxSteps: tv.MaxSteps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("replaying the reported seed did not reproduce the violation")
	}
	if res.Violation.Error() != tv.Err.Error() {
		t.Errorf("replay violation %q differs from reported %q", res.Violation, tv.Err)
	}
}

// TestTrialsObsCounters checks that Trials feeds the sim.* metrics:
// one sim.trials and sim.runs per trial, and sums of executed steps.
func TestTrialsObsCounters(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sink := obs.NewSink()
	const trials = 5
	completed, violation, err := sim.Trials(func() (*explore.System, error) {
		return prot.System(sim.Inputs(3, 1, 0))
	}, task.DAC{N: 3, P: 0}, trials, 7, sim.Options{MaxSteps: 4096, Obs: sink})
	if err != nil || violation != nil {
		t.Fatalf("err=%v violation=%v", err, violation)
	}
	snap := sink.Snapshot()
	if got := snap.Counters["sim.trials"]; got != trials {
		t.Errorf("sim.trials = %d, want %d", got, trials)
	}
	if got := snap.Counters["sim.runs"]; got != trials {
		t.Errorf("sim.runs = %d, want %d", got, trials)
	}
	if got := snap.Counters["sim.completed"]; got != int64(completed) {
		t.Errorf("sim.completed = %d, want %d", got, completed)
	}
	if snap.Counters["sim.steps"] == 0 {
		t.Error("sim.steps did not accumulate")
	}
}

// Package explore is an exhaustive model checker for protocols in the
// paper's system model: finitely many deterministic processes applying
// operations to linearizable shared objects under every possible
// schedule and every nondeterministic object response.
//
// It mechanizes the proof technique of §4 and §5 (the bivalency
// arguments of [8, 10]): it builds the reachable configuration graph,
// checks safety predicates at every configuration, checks the paper's
// termination properties via strongly-connected-component analysis,
// labels configurations with their valence, and extracts concrete
// witness schedules for every violation — the runs the proofs'
// adversaries construct.
package explore

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"setagree/internal/machine"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// System is a closed protocol instance: one program per process, the
// shared objects, and the processes' input values.
type System struct {
	// Programs holds one program per process (entries may alias).
	Programs []*machine.Program
	// Objects are the shared objects' sequential specifications.
	Objects []spec.Spec
	// Inputs are the per-process proposal values.
	Inputs []value.Value
}

// Procs returns the number of processes.
func (s *System) Procs() int { return len(s.Programs) }

// Config is one configuration: the state of every process and every
// object, plus which processes have taken at least one step (needed by
// the n-DAC Nontriviality property).
type Config struct {
	// Procs are the process states.
	Procs []machine.ProcState
	// Objs are the object states.
	Objs []spec.State
	// SteppedMask has bit i set when process i has taken a step.
	SteppedMask uint64
}

// Key returns the canonical human-readable encoding of the
// configuration. The explorer interns configurations through the
// compact binary AppendKey instead; Key remains for debugging and for
// the invariant tests that cross-check the two encodings.
func (c *Config) Key() string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(c.SteppedMask, 36))
	for _, p := range c.Procs {
		b.WriteByte('/')
		b.WriteString(p.Key())
	}
	for _, o := range c.Objs {
		b.WriteByte('#')
		b.WriteString(o.Key())
	}
	return b.String()
}

// AppendKey appends the canonical compact binary encoding of the
// configuration to dst and returns the extended slice. Two
// configurations of one System are equal iff their encodings are equal:
// the process and object counts are fixed per System and every
// component encoding is self-delimiting, so the concatenation is
// injective. The explorer interns configurations by these bytes through
// a map[string]int with zero-copy string(bytes) lookups, which is what
// keeps per-state allocations off the hot path.
func (c *Config) AppendKey(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, c.SteppedMask)
	for _, p := range c.Procs {
		dst = p.AppendKey(dst)
	}
	for _, o := range c.Objs {
		dst = spec.AppendStateKey(dst, o)
	}
	return dst
}

// AppendKeyUnder appends the binary key the permuted configuration
// p·c — process i's state moved to slot p.ProcIdx(i) and renamed, the
// stepped mask permuted alongside, object states keyed under p — would
// produce from AppendKey. It implements the spec.Symmetric contract at
// the configuration level and is what orbit canonicalization minimizes
// over. Panics when an object state lacks spec.Symmetric; the explorer
// validates that up front, so this is unreachable past buildGroup.
func (c *Config) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	dst = binary.AppendUvarint(dst, permuteMask(c.SteppedMask, p))
	for j := range c.Procs {
		dst = c.Procs[p.ProcInvIdx(j)].AppendKeyUnder(dst, p)
	}
	for _, o := range c.Objs {
		var ok bool
		dst, ok = spec.AppendStateKeyUnder(dst, o, p)
		if !ok {
			panic(fmt.Sprintf("explore: object state %T does not implement spec.Symmetric", o))
		}
	}
	return dst
}

// Outcome projects the externally visible outcome of the configuration
// for task predicates.
func (c *Config) Outcome(inputs []value.Value) task.Outcome {
	o := task.NewOutcome(inputs)
	for i, p := range c.Procs {
		switch p.Status {
		case machine.StatusDecided:
			o.Decide(i, p.Decision)
		case machine.StatusAborted:
			o.Aborted[i] = true
		}
		o.Stepped[i] = c.SteppedMask&(1<<uint(i)) != 0
	}
	return o
}

// Live reports whether process i is poised to take a step.
func (c *Config) Live(i int) bool {
	return c.Procs[i].Status == machine.StatusPoised
}

// Quiescent reports whether no process can take a step.
func (c *Config) Quiescent() bool {
	for i := range c.Procs {
		if c.Live(i) {
			return false
		}
	}
	return true
}

// MaxProcs is the largest process count the explorer accepts:
// Config.SteppedMask tracks "has taken a step" in a uint64, so a 65th
// process would silently overflow the mask and corrupt the
// Nontriviality/Stepped projection.
const MaxProcs = 64

// initialConfig builds the initial configuration of the system: every
// process started on its input, every object in its initial state.
func initialConfig(sys *System) (*Config, error) {
	n := sys.Procs()
	if n > MaxProcs {
		return nil, fmt.Errorf("explore: %d processes exceed the %d-process bound (SteppedMask is a uint64): %w",
			n, MaxProcs, machine.ErrProgram)
	}
	c := &Config{
		Procs: make([]machine.ProcState, n),
		Objs:  make([]spec.State, len(sys.Objects)),
	}
	for i := 0; i < n; i++ {
		ps, err := machine.Start(sys.Programs[i], i+1, sys.Inputs[i])
		if err != nil {
			return nil, err
		}
		c.Procs[i] = ps
	}
	for j, o := range sys.Objects {
		c.Objs[j] = o.Init()
	}
	return c, nil
}

// Step is one labelled transition of the configuration graph: process
// Proc applied Op to object Obj and received Resp (branch Branch of the
// object's nondeterministic transition relation).
type Step struct {
	// Op is the applied operation.
	Op value.Op
	// Resp is the response the object chose.
	Resp value.Value
	// Proc is the stepping process (0-based).
	Proc int
	// Obj is the object index.
	Obj int
	// Branch is the index into the object's offered transitions.
	Branch int
}

// String renders the step as "p3: PROPOSE_AT(0, 3) on obj0 -> done".
func (s Step) String() string {
	return "p" + strconv.Itoa(s.Proc+1) + ": " + s.Op.String() +
		" on obj" + strconv.Itoa(s.Obj) + " -> " + s.Resp.String()
}

// successor applies one step of process i, branch b, to c. It returns
// the successor configurations for every branch when b < 0, or the
// single chosen branch otherwise.
func successors(sys *System, c *Config, i int) ([]*Config, []Step, error) {
	poise, ok := machine.Poised(sys.Programs[i], c.Procs[i])
	if !ok {
		return nil, nil, nil
	}
	if poise.Obj < 0 || poise.Obj >= len(sys.Objects) {
		return nil, nil, spec.BadOpError("system", poise.Op,
			"object index "+strconv.Itoa(poise.Obj)+" out of range")
	}
	o := sys.Objects[poise.Obj]
	ts, err := o.Step(c.Objs[poise.Obj], poise.Op)
	if err != nil {
		return nil, nil, err
	}
	configs := make([]*Config, 0, len(ts))
	steps := make([]Step, 0, len(ts))
	for b, t := range ts {
		ps, err := machine.Resume(sys.Programs[i], c.Procs[i], t.Resp)
		if err != nil {
			return nil, nil, err
		}
		next := &Config{
			Procs:       make([]machine.ProcState, len(c.Procs)),
			Objs:        make([]spec.State, len(c.Objs)),
			SteppedMask: c.SteppedMask | 1<<uint(i),
		}
		copy(next.Procs, c.Procs)
		copy(next.Objs, c.Objs)
		next.Procs[i] = ps
		next.Objs[poise.Obj] = t.Next
		configs = append(configs, next)
		steps = append(steps, Step{
			Proc:   i,
			Obj:    poise.Obj,
			Op:     poise.Op,
			Resp:   t.Resp,
			Branch: b,
		})
	}
	return configs, steps, nil
}

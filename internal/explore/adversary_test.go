package explore_test

import (
	"errors"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestAdversaryKeepsAlgorithm2BivalentForever: for Algorithm 2 the
// bivalence-preserving adversary finds an infinite bivalent run — the
// two non-distinguished processes can retry against each other forever
// while p stays frozen. This is exactly the weak-termination loophole
// of the n-DAC problem (only Termination (a)/(b), not wait-freedom).
func TestAdversaryKeepsAlgorithm2BivalentForever(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := rep.Adversary()
	if err != nil {
		t.Fatal(err)
	}
	if !adv.KeepsBivalentForever() {
		t.Fatalf("adversary stopped at critical configuration %d after %d steps; "+
			"expected an infinite bivalent run", adv.CriticalID, len(adv.Schedule))
	}
	// The infinite run must not involve the distinguished process
	// infinitely often (p has Termination (a)): every step of the cycle
	// is a non-p step.
	for _, s := range adv.Cycle {
		if s.Proc == 0 {
			t.Fatalf("cycle contains a step of p: %s (would violate Termination (a))", s)
		}
	}
}

// TestAdversaryHitsCriticalOnWaitFreeProtocol: for a verified wait-free
// protocol the adversary CANNOT cycle (an infinite bivalent run would
// be a wait-freedom violation); it must end at a critical
// configuration (Claim 5.2.2's conclusion).
func TestAdversaryHitsCriticalOnWaitFreeProtocol(t *testing.T) {
	t.Parallel()
	prot := programs.ConsensusFromPACM(3, 2, 2)
	sys, err := prot.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.Consensus{N: 2}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatalf("protocol refuted: %v", rep.Violations[0])
	}
	adv, err := rep.Adversary()
	if err != nil {
		t.Fatal(err)
	}
	if adv.KeepsBivalentForever() {
		t.Fatal("adversary cycled on a wait-free-correct protocol — impossible")
	}
	if adv.CriticalID < 0 {
		t.Fatal("no critical configuration reached")
	}
}

// TestAdversaryRequiresValency pins the error contract.
func TestAdversaryRequiresValency(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(2, 1)
	sys, err := prot.System([]value.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.DAC{N: 2, P: 0}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Adversary(); !errors.Is(err, explore.ErrNoValency) {
		t.Fatalf("err = %v, want ErrNoValency", err)
	}
}

// TestAdversaryRejectsUnivalentStart: with unanimous inputs the initial
// configuration is univalent and the adversary has nothing to preserve.
func TestAdversaryRejectsUnivalentStart(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(2, 1)
	sys, err := prot.System([]value.Value{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.DAC{N: 2, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Adversary(); !errors.Is(err, explore.ErrNoValency) {
		t.Fatalf("err = %v, want ErrNoValency", err)
	}
}

package explore_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/obs"
	"setagree/internal/store"
)

// TestDiskStoreReportEquivalence pins the out-of-core contract: a
// disk-backed exploration produces a Report, witness set, valency
// analysis, DOT rendering, and event stream byte-identical to the
// in-memory engine's, at every worker count and symmetry mode. It also
// checks the store actually spilled (the equivalence would be vacuous
// if everything stayed resident) and that Close is idempotent and
// removes the arena files.
func TestDiskStoreReportEquivalence(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		for _, sym := range []explore.Symmetry{explore.SymmetryOff, explore.SymmetryIDs} {
			workers, sym := workers, sym
			t.Run(fmt.Sprintf("workers=%d/symmetry=%s", workers, sym), func(t *testing.T) {
				t.Parallel()
				sys, tsk := durableInstance(t)
				base := explore.Options{
					Workers:        workers,
					Symmetry:       sym,
					Valency:        true,
					HeartbeatEvery: 64,
				}

				var memEvents bytes.Buffer
				memOpts := base
				memOpts.Events = obs.NewEmitterAt(&memEvents, fixedClock)
				memRep, err := explore.Check(sys, tsk, memOpts)
				if err != nil {
					t.Fatalf("in-memory Check: %v", err)
				}

				dir := t.TempDir()
				sink := obs.NewSink()
				var diskEvents bytes.Buffer
				diskOpts := base
				diskOpts.Obs = sink
				diskOpts.Events = obs.NewEmitterAt(&diskEvents, fixedClock)
				diskOpts.Store = store.Options{Dir: dir}
				diskRep, err := explore.Check(sys, tsk, diskOpts)
				if err != nil {
					t.Fatalf("disk-backed Check: %v", err)
				}
				sameReport(t, "disk vs memory", diskRep, memRep)
				if !bytes.Equal(diskEvents.Bytes(), memEvents.Bytes()) {
					t.Errorf("disk-backed event stream differs from in-memory run")
				}
				snap := sink.Snapshot()
				if snap.Counters["store.spilled_bytes"] == 0 {
					t.Errorf("store.spilled_bytes = 0: nothing spilled, equivalence is vacuous")
				}
				if snap.Gauges["explore.batch_size"] == 0 {
					t.Errorf("explore.batch_size gauge not recorded")
				}

				if err := diskRep.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				if err := diskRep.Close(); err != nil {
					t.Fatalf("second Close: %v", err)
				}
				ents, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				if len(ents) != 0 {
					t.Errorf("store dir not empty after Close: %v", ents)
				}
				// Counts survive Close; only graph walks are released.
				if diskRep.States != memRep.States {
					t.Errorf("States after Close = %d, want %d", diskRep.States, memRep.States)
				}
			})
		}
	}
}

// TestDiskStoreCheckpointBytesIdentical requires the disk-backed
// engine's level snapshots to be byte-for-byte the in-memory engine's:
// the Edges arena serves the checkpoint edge section zero-copy, and
// this pins that the arena records really are the checkpoint encoding.
func TestDiskStoreCheckpointBytesIdentical(t *testing.T) {
	t.Parallel()
	sys, tsk := durableInstance(t)
	base := explore.Options{Workers: 4, Valency: true}

	snapsOf := func(opts explore.Options) map[int][]byte {
		dir := t.TempDir()
		ckptPath := filepath.Join(dir, "run.ckpt")
		snaps := make(map[int][]byte)
		opts.Checkpoint = explore.CheckpointOptions{
			Path: ckptPath,
			After: func(level int) error {
				buf, err := os.ReadFile(ckptPath)
				if err != nil {
					return err
				}
				snaps[level] = buf
				return nil
			},
		}
		rep, err := explore.Check(sys, tsk, opts)
		if err != nil {
			t.Fatalf("checkpointed Check: %v", err)
		}
		defer rep.Close()
		return snaps
	}

	memSnaps := snapsOf(base)
	diskOpts := base
	diskOpts.Store = store.Options{Dir: t.TempDir()}
	diskSnaps := snapsOf(diskOpts)

	if len(memSnaps) != len(diskSnaps) || len(memSnaps) < 3 {
		t.Fatalf("snapshot counts differ or too shallow: %d vs %d", len(memSnaps), len(diskSnaps))
	}
	for level, want := range memSnaps {
		got, ok := diskSnaps[level]
		if !ok {
			t.Errorf("disk run wrote no level-%d snapshot", level)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("level-%d snapshot differs between disk and memory engines (%d vs %d bytes)",
				level, len(got), len(want))
		}
	}
}

// TestKillResumeDiskStore extends the kill-resume suite to the
// disk-backed engine: every level snapshot of a disk-backed run must
// resume — into a fresh disk store — to a Report and event stream
// byte-identical to the uninterrupted in-memory run's.
func TestKillResumeDiskStore(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		for _, sym := range []explore.Symmetry{explore.SymmetryOff, explore.SymmetryIDs} {
			workers, sym := workers, sym
			t.Run(fmt.Sprintf("workers=%d/symmetry=%s", workers, sym), func(t *testing.T) {
				t.Parallel()
				sys, tsk := durableInstance(t)
				base := explore.Options{
					Workers:        workers,
					Symmetry:       sym,
					Valency:        true,
					HeartbeatEvery: 64,
				}

				var refEvents bytes.Buffer
				refOpts := base
				refOpts.Events = obs.NewEmitterAt(&refEvents, fixedClock)
				refRep, err := explore.Check(sys, tsk, refOpts)
				if err != nil {
					t.Fatalf("reference Check: %v", err)
				}

				dir := t.TempDir()
				ckptPath := filepath.Join(dir, "run.ckpt")
				type snap struct {
					file   string
					prefix int
				}
				var snaps []snap
				var ckEvents bytes.Buffer
				ckOpts := base
				ckOpts.Events = obs.NewEmitterAt(&ckEvents, fixedClock)
				ckOpts.Store = store.Options{Dir: filepath.Join(dir, "store")}
				ckOpts.Checkpoint = explore.CheckpointOptions{
					Path: ckptPath,
					After: func(level int) error {
						buf, err := os.ReadFile(ckptPath)
						if err != nil {
							return err
						}
						cp := filepath.Join(dir, fmt.Sprintf("level%03d.ckpt", level))
						if err := os.WriteFile(cp, buf, 0o644); err != nil {
							return err
						}
						snaps = append(snaps, snap{cp, ckEvents.Len()})
						return nil
					},
				}
				ckRep, err := explore.Check(sys, tsk, ckOpts)
				if err != nil {
					t.Fatalf("checkpointed disk Check: %v", err)
				}
				defer ckRep.Close()
				sameReport(t, "checkpointed disk run", ckRep, refRep)
				if !bytes.Equal(ckEvents.Bytes(), refEvents.Bytes()) {
					t.Fatalf("disk checkpointing perturbed the event stream")
				}
				if len(snaps) < 3 {
					t.Fatalf("only %d level snapshots; instance too shallow", len(snaps))
				}

				for si, sn := range snaps {
					var resEvents bytes.Buffer
					resEvents.Write(ckEvents.Bytes()[:sn.prefix])
					resOpts := base
					resOpts.Events = obs.NewEmitterAt(&resEvents, fixedClock)
					resOpts.Store = store.Options{Dir: filepath.Join(dir, fmt.Sprintf("res%03d", si))}
					rep, err := explore.Resume(sn.file, sys, tsk, resOpts)
					if err != nil {
						t.Fatalf("Resume(%s) into disk store: %v", sn.file, err)
					}
					sameReport(t, filepath.Base(sn.file), rep, refRep)
					if !bytes.Equal(resEvents.Bytes(), refEvents.Bytes()) {
						t.Errorf("%s: resumed event stream differs", filepath.Base(sn.file))
					}
					rep.Close()
				}
			})
		}
	}
}

// TestDiskStoreBudgetExceeded pins the budget contract: a budget no
// real process fits under aborts the exploration at the first level
// barrier with an error wrapping store.ErrBudget, a partial report, a
// terminal event — and, when checkpointing, a resumable snapshot.
func TestDiskStoreBudgetExceeded(t *testing.T) {
	t.Parallel()
	sys, tsk := durableInstance(t)
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	sink := obs.NewSink()
	rep, err := explore.Check(sys, tsk, explore.Options{
		Workers:    2,
		Obs:        sink,
		Store:      store.Options{Dir: filepath.Join(dir, "store"), Budget: 1},
		Checkpoint: explore.CheckpointOptions{Path: ckptPath},
	})
	if !errors.Is(err, store.ErrBudget) {
		t.Fatalf("Check with 1-byte budget returned %v, want ErrBudget", err)
	}
	if rep == nil || rep.States == 0 {
		t.Fatalf("budget abort returned no partial report: %+v", rep)
	}
	if err := rep.Close(); err != nil {
		t.Fatalf("Close after budget abort: %v", err)
	}
	if sink.Snapshot().Gauges["store.heap_bytes_max"] == 0 {
		t.Errorf("store.heap_bytes_max gauge not recorded")
	}

	// The abort left a snapshot; it resumes (in-memory here) to the
	// uninterrupted verdict.
	refRep, err := explore.Check(sys, tsk, explore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resRep, err := explore.Resume(ckptPath, sys, tsk, explore.Options{Workers: 2})
	if err != nil {
		t.Fatalf("Resume after budget abort: %v", err)
	}
	sameReport(t, "resume after budget abort", resRep, refRep)
}

package explore_test

import (
	"testing"

	"setagree/internal/core"
	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// spinOnRegister builds a program that reads obj[reg] until it equals
// trigger, then decides its input — a solo livelock while nobody writes.
func spinOnRegister(obj int, trigger value.Value) *machine.Program {
	return machine.NewBuilder("spinner", 4).
		Label("loop").
		Invoke(2, obj, value.MethodRead, machine.Operand{}, machine.Operand{}).
		JNe(machine.R(2), machine.C(trigger), "loop").
		Decide(machine.R(machine.RegInput)).
		MustBuild()
}

// decideOwn builds a program that performs one register write and
// decides its input.
func decideOwn(obj int) *machine.Program {
	return machine.NewBuilder("decide-own", 4).
		Invoke(2, obj, value.MethodWrite, machine.R(machine.RegInput), machine.Operand{}).
		Decide(machine.R(machine.RegInput)).
		MustBuild()
}

// TestDACTerminationBViolation builds a DAC protocol whose
// non-distinguished process spins solo on an unwritten register: the
// checker must attribute the violation to Termination (b) and produce a
// pure-q cycle witness.
func TestDACTerminationBViolation(t *testing.T) {
	t.Parallel()
	p := machine.NewBuilder("p-decides", 4).
		Invoke(2, 0, value.MethodWrite, machine.C(7), machine.Operand{}).
		Decide(machine.R(machine.RegInput)).
		MustBuild()
	q := spinOnRegister(1, 1) // register obj1 is never written
	sys := &explore.System{
		Programs: []*machine.Program{p, q},
		Objects:  []spec.Spec{objects.NewRegister(), objects.NewRegister()},
		Inputs:   []value.Value{0, 0},
	}
	rep, err := explore.Check(sys, task.DAC{N: 2, P: 0}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved() {
		t.Fatal("solo livelock not detected")
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == explore.ViolationDACTerminationB && v.Proc == 1 {
			found = true
			if len(v.Cycle) == 0 {
				t.Error("no cycle witness")
			}
			for _, s := range v.Cycle {
				if s.Proc != 1 {
					t.Errorf("Termination (b) cycle contains a step of p%d", s.Proc+1)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no Termination (b) violation among %v", rep.Violations)
	}
}

// TestDACTerminationAViolation: the distinguished process itself spins.
func TestDACTerminationAViolation(t *testing.T) {
	t.Parallel()
	sys := &explore.System{
		Programs: []*machine.Program{spinOnRegister(0, 1), decideOwn(0)},
		Objects:  []spec.Spec{objects.NewRegister()},
		Inputs:   []value.Value{1, 1},
	}
	// q writes its input 1 to obj0 which releases p... make the trigger
	// unreachable instead: q writes 1, p waits for 1 — p CAN be released.
	// Use trigger 2 so p never terminates.
	sys.Programs[0] = spinOnRegister(0, 2)
	rep, err := explore.Check(sys, task.DAC{N: 2, P: 0}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == explore.ViolationDACTerminationA && v.Proc == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Termination (a) violation among %v", rep.Violations)
	}
}

// TestMixedLivelockAllowedByDAC pins the key liveness distinction: the
// Algorithm 2 retry livelock involves several processes, which n-DAC
// permits (only wait-free tasks forbid it). A two-process mutual
// spin over a PAC object (each upsetting the other's label timing)
// must NOT be flagged under DAC liveness, but MUST be flagged under
// consensus (wait-free) liveness.
func TestMixedLivelockAllowedByDAC(t *testing.T) {
	t.Parallel()
	// Non-distinguished retry loops as in Algorithm 2 for both q's;
	// p decides immediately via its own label.
	retry := machine.NewBuilder("retry", 4).
		Label("loop").
		Invoke(2, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)).
		Invoke(3, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).
		JNe(machine.R(3), machine.C(value.Bottom), "win").
		Jmp("loop").
		Label("win").
		Decide(machine.R(3)).
		MustBuild()
	pProg := machine.NewBuilder("p", 4).
		Invoke(2, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)).
		Invoke(3, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).
		JEq(machine.R(3), machine.C(value.Bottom), "abort").
		Decide(machine.R(3)).
		Label("abort").
		Abort().
		MustBuild()
	sys := &explore.System{
		Programs: []*machine.Program{pProg, retry, retry},
		Objects:  []spec.Spec{core.NewPAC(3)},
		Inputs:   []value.Value{1, 0, 0},
	}
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatalf("DAC flagged the permitted mixed livelock: %v", rep.Violations[0])
	}

	// The same system fails wait-free consensus liveness (the mixed
	// cycle now counts) — and would also fail safety if p aborts, so we
	// only assert it is not solved.
	sys2 := &explore.System{
		Programs: []*machine.Program{retry, retry, retry},
		Objects:  []spec.Spec{core.NewPAC(3)},
		Inputs:   []value.Value{1, 0, 0},
	}
	rep2, err := explore.Check(sys2, task.Consensus{N: 3}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	foundWF := false
	for _, v := range rep2.Violations {
		if v.Kind == explore.ViolationWaitFree {
			foundWF = true
		}
	}
	if !foundWF {
		t.Fatalf("wait-free check missed the mixed livelock: %v", rep2.Violations)
	}
}

// TestHaltUndecidedViolation: a process whose program simply ends.
func TestHaltUndecidedViolation(t *testing.T) {
	t.Parallel()
	halter := machine.NewBuilder("halter", 4).
		Invoke(2, 0, value.MethodRead, machine.Operand{}, machine.Operand{}).
		Halt().
		MustBuild()
	sys := &explore.System{
		Programs: []*machine.Program{decideOwn(0), halter},
		Objects:  []spec.Spec{objects.NewRegister()},
		Inputs:   []value.Value{0, 0},
	}
	rep, err := explore.Check(sys, task.Consensus{N: 2}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == explore.ViolationHaltUndecided && v.Proc == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("halt-undecided not flagged: %v", rep.Violations)
	}
}

// TestDecidedSentinelIsSafetyViolation pins the hole found by the
// depth-2 falsification sweep: a protocol that "decides" NIL or ⊥ must
// be refuted, not treated as undecided.
func TestDecidedSentinelIsSafetyViolation(t *testing.T) {
	t.Parallel()
	// Reads the unwritten register (NIL) and decides the response.
	prog := machine.NewBuilder("decide-nil", 4).
		Invoke(2, 0, value.MethodRead, machine.Operand{}, machine.Operand{}).
		Decide(machine.R(2)).
		MustBuild()
	sys := &explore.System{
		Programs: []*machine.Program{prog, prog},
		Objects:  []spec.Spec{objects.NewRegister()},
		Inputs:   []value.Value{0, 1},
	}
	rep, err := explore.Check(sys, task.Consensus{N: 2}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved() {
		t.Fatal("deciding NIL slipped through the safety predicate")
	}
	if rep.Violations[0].Kind != explore.ViolationSafety {
		t.Fatalf("kind = %s, want safety", rep.Violations[0].Kind)
	}
}

// TestValencyAbortBit checks the CanAbort valence bit on Algorithm 2:
// from the initial configuration of the canonical instance an abort of
// p is reachable.
func TestValencyAbortBit(t *testing.T) {
	t.Parallel()
	prot := algorithm2System(t)
	rep, err := explore.Check(prot, task.DAC{N: 2, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valency.Initial&explore.CanAbort == 0 {
		t.Fatal("abort unreachable from the initial configuration — but the adversary can always interleave q")
	}
}

// TestReportDeterminism: two explorations of the same system agree on
// all counts.
func TestReportDeterminism(t *testing.T) {
	t.Parallel()
	a, err := explore.Check(algorithm2System(t), task.DAC{N: 2, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := explore.Check(algorithm2System(t), task.DAC{N: 2, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.States != b.States || a.Transitions != b.Transitions || a.Quiescent != b.Quiescent {
		t.Fatalf("reports differ: %+v vs %+v", a, b)
	}
	if a.Valency.CriticalCount != b.Valency.CriticalCount ||
		a.Valency.Bivalent != b.Valency.Bivalent ||
		a.Valency.Initial != b.Valency.Initial {
		t.Fatal("valency reports differ")
	}
}

func algorithm2System(t *testing.T) *explore.System {
	t.Helper()
	pProg := machine.NewBuilder("p", 4).
		Invoke(2, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)).
		Invoke(3, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).
		JEq(machine.R(3), machine.C(value.Bottom), "abort").
		Decide(machine.R(3)).
		Label("abort").
		Abort().
		MustBuild()
	retry := machine.NewBuilder("q", 4).
		Label("loop").
		Invoke(2, 0, value.MethodProposeAt, machine.R(machine.RegInput), machine.R(machine.RegID1)).
		Invoke(3, 0, value.MethodDecide, machine.Operand{}, machine.R(machine.RegID1)).
		JNe(machine.R(3), machine.C(value.Bottom), "win").
		Jmp("loop").
		Label("win").
		Decide(machine.R(3)).
		MustBuild()
	return &explore.System{
		Programs: []*machine.Program{pProg, retry},
		Objects:  []spec.Spec{core.NewPAC(2)},
		Inputs:   []value.Value{1, 0},
	}
}

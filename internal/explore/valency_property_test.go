package explore

import (
	"math/rand"
	"testing"

	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// synthGraph builds a random reachable-looking graph whose
// configurations hold a single process in a terminal state, so valence
// comes entirely from the seeded outcomes and the edge structure (and
// describeCritical never needs a real program). Node 0 is the root;
// every other node gets a tree parent among its predecessors plus
// random extra edges, which freely create cycles and diamonds.
func synthGraph(rng *rand.Rand) *graph {
	n := 2 + rng.Intn(24)
	g := &graph{sys: &System{Programs: []*machine.Program{nil}}}
	for i := 0; i < n; i++ {
		ps := machine.ProcState{Status: machine.StatusHalted, Decision: value.None}
		switch rng.Intn(10) {
		case 0, 1:
			ps = machine.ProcState{Status: machine.StatusDecided, Decision: 0}
		case 2, 3:
			ps = machine.ProcState{Status: machine.StatusDecided, Decision: 1}
		case 4:
			ps = machine.ProcState{Status: machine.StatusAborted, Decision: value.None}
		case 5:
			ps = machine.ProcState{Status: machine.StatusCrashed, Decision: value.None}
		}
		c := &Config{Procs: []machine.ProcState{ps}}
		parent := -1
		if i > 0 {
			parent = rng.Intn(i)
		}
		g.configs = append(g.configs, c)
		g.edges = append(g.edges, nil)
		g.parent = append(g.parent, parent)
		g.parentE = append(g.parentE, Step{})
		if parent >= 0 {
			g.edges[parent] = append(g.edges[parent], edge{to: i})
		}
	}
	for m := rng.Intn(2 * n); m > 0; m-- {
		from, to := rng.Intn(n), rng.Intn(n)
		g.edges[from] = append(g.edges[from], edge{to: to})
	}
	return g
}

// naiveValence is the obviously-correct reference: seed each
// configuration's mask from its immediate outcomes, then run the
// reachability fixpoint edge by edge until nothing changes.
func naiveValence(g *graph) []Valence {
	masks := make([]Valence, len(g.configs))
	for id, c := range g.configs {
		for _, ps := range c.Procs {
			switch ps.Status {
			case machine.StatusDecided:
				if ps.Decision == 0 {
					masks[id] |= CanDecide0
				} else {
					masks[id] |= CanDecide1
				}
			case machine.StatusAborted:
				masks[id] |= CanAbort
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for id := range g.configs {
			for _, e := range g.edges[id] {
				if m := masks[id] | masks[e.to]; m != masks[id] {
					masks[id] = m
					changed = true
				}
			}
		}
	}
	return masks
}

// TestValencyMatchesNaiveFixpoint: valency()'s single pass over the
// Tarjan condensation (reverse-topological component numbering) must
// agree with the naive per-edge fixpoint on every configuration of
// randomized graphs, cycles included — along with the census, the
// initial valence, and the critical-configuration count.
func TestValencyMatchesNaiveFixpoint(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := synthGraph(rng)
		rep, err := g.valency()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := naiveValence(g)
		census := [4]int{} // bivalent, 0-valent, 1-valent, null
		criticals := 0
		for id, v := range want {
			if g.valence[id] != v {
				t.Fatalf("seed %d: config %d labelled %s, fixpoint says %s",
					seed, id, g.valence[id], v)
			}
			switch {
			case v.Bivalent():
				census[0]++
			case v&CanDecide0 != 0:
				census[1]++
			case v&CanDecide1 != 0:
				census[2]++
			default:
				census[3]++
			}
			if v.Bivalent() && len(g.edges[id]) > 0 {
				critical := true
				for _, e := range g.edges[id] {
					if want[e.to].Bivalent() {
						critical = false
						break
					}
				}
				if critical {
					criticals++
				}
			}
		}
		if rep.Initial != want[0] {
			t.Fatalf("seed %d: initial valence %s, fixpoint says %s", seed, rep.Initial, want[0])
		}
		if rep.Bivalent != census[0] || rep.Univalent0 != census[1] ||
			rep.Univalent1 != census[2] || rep.Null != census[3] {
			t.Fatalf("seed %d: census %d/%d/%d/%d, fixpoint says %d/%d/%d/%d",
				seed, rep.Bivalent, rep.Univalent0, rep.Univalent1, rep.Null,
				census[0], census[1], census[2], census[3])
		}
		if rep.CriticalCount != criticals {
			t.Fatalf("seed %d: %d critical configurations, fixpoint says %d",
				seed, rep.CriticalCount, criticals)
		}
	}
}

// TestDescribeCriticalAllTerminated: a critical configuration whose
// processes have all terminated has no poised object; SameObject must
// be false (common stays -1) rather than indexing Objects[-1].
func TestDescribeCriticalAllTerminated(t *testing.T) {
	t.Parallel()
	g := &graph{
		sys: &System{Programs: []*machine.Program{nil, nil}},
		configs: []*Config{{Procs: []machine.ProcState{
			{Status: machine.StatusHalted, Decision: value.None},
			{Status: machine.StatusDecided, Decision: 1},
		}}},
		edges:   [][]edge{nil},
		parent:  []int{-1},
		parentE: []Step{{}},
	}
	cc := g.describeCritical(0)
	if cc.SameObject {
		t.Fatal("all-terminated configuration reported SameObject")
	}
	if cc.ObjectName != "" {
		t.Fatalf("all-terminated configuration named object %q", cc.ObjectName)
	}
	for i, o := range cc.PoisedObj {
		if o != -1 {
			t.Fatalf("terminated process %d reported poised on object %d", i, o)
		}
	}
}

// TestBinaryKeyMatchesStringKey: on a real branching exploration the
// compact binary interning must distinguish exactly the configurations
// the human-readable Key() distinguishes — States equals the count of
// distinct keys under both encodings.
func TestBinaryKeyMatchesStringKey(t *testing.T) {
	t.Parallel()
	prog := machine.NewBuilder("key-xcheck", 4).
		Invoke(2, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		Invoke(3, 1, value.MethodWrite, machine.R(2), machine.Operand{}).
		Invoke(3, 1, value.MethodRead, machine.Operand{}, machine.Operand{}).
		Decide(machine.R(2)).
		MustBuild()
	sys := &System{
		Programs: []*machine.Program{prog, prog},
		Objects:  []spec.Spec{objects.NewTwoSA(), objects.NewRegister()},
		Inputs:   []value.Value{0, 1},
	}
	rep, err := Check(sys, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States < 10 {
		t.Fatalf("only %d states; exploration too small to exercise interning", rep.States)
	}
	stringKeys := make(map[string]bool, rep.States)
	binaryKeys := make(map[string]bool, rep.States)
	for _, c := range rep.g.configs {
		stringKeys[c.Key()] = true
		binaryKeys[string(c.AppendKey(nil))] = true
	}
	if len(stringKeys) != rep.States {
		t.Fatalf("%d distinct string keys for %d states", len(stringKeys), rep.States)
	}
	if len(binaryKeys) != rep.States {
		t.Fatalf("%d distinct binary keys for %d states", len(binaryKeys), rep.States)
	}
}

package explore_test

import (
	"errors"
	"strings"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/task"
	"setagree/internal/value"
)

// dacSystem builds a fresh 2-process Algorithm 2 system for replay.
func dacSystem(t *testing.T) *explore.System {
	t.Helper()
	sys, err := programs.Algorithm2(2, 1).System([]value.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAnnotateScheduleBadProcess rejects a schedule step naming a
// process outside the system.
func TestAnnotateScheduleBadProcess(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := explore.AnnotateSchedule(&buf, dacSystem(t), []explore.Step{{Proc: 7}})
	if err == nil {
		t.Fatal("out-of-range process accepted")
	}
	if !errors.Is(err, machine.ErrProgram) {
		t.Errorf("want machine.ErrProgram, got %v", err)
	}
	if !strings.Contains(err.Error(), "process 8 out of range") {
		t.Errorf("error does not name the bad process: %v", err)
	}
}

// TestAnnotateScheduleTerminatedProcess rejects a step of a process
// that has already terminated (a non-applicable schedule).
func TestAnnotateScheduleTerminatedProcess(t *testing.T) {
	t.Parallel()
	sys := dacSystem(t)
	res, err := sim.Run(sys, task.DAC{N: 2, P: 0}, sim.RoundRobin(),
		sim.Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("round-robin run did not complete")
	}
	// The recorded trace replays cleanly; one extra step of any process
	// steps a terminated machine and must be rejected with its index.
	overrun := append(append([]explore.Step(nil), res.Trace...), explore.Step{Proc: 0})
	var buf strings.Builder
	err = explore.AnnotateSchedule(&buf, dacSystem(t), overrun)
	if err == nil {
		t.Fatal("step of terminated process accepted")
	}
	if !errors.Is(err, machine.ErrProgram) {
		t.Errorf("want machine.ErrProgram, got %v", err)
	}
	if !strings.Contains(err.Error(), "cannot step") {
		t.Errorf("error does not say the process cannot step: %v", err)
	}
}

// TestAnnotateScheduleBadBranch rejects a branch index outside the
// object's transition set.
func TestAnnotateScheduleBadBranch(t *testing.T) {
	t.Parallel()
	var buf strings.Builder
	err := explore.AnnotateSchedule(&buf, dacSystem(t), []explore.Step{{Proc: 0, Branch: 42}})
	if err == nil {
		t.Fatal("out-of-range branch accepted")
	}
	if !errors.Is(err, machine.ErrProgram) {
		t.Errorf("want machine.ErrProgram, got %v", err)
	}
	if !strings.Contains(err.Error(), "branch 42") {
		t.Errorf("error does not name the bad branch: %v", err)
	}
}

package explore

import (
	"fmt"

	"setagree/internal/machine"
)

// Valence is the set of outcomes reachable from a configuration,
// encoded as a bitmask.
type Valence uint8

// Valence bits.
const (
	// CanDecide0 is set when some reachable configuration has a process
	// decided 0.
	CanDecide0 Valence = 1 << iota
	// CanDecide1 is set when some reachable configuration has a process
	// decided 1.
	CanDecide1
	// CanAbort is set when some reachable configuration has an aborted
	// process (n-DAC only).
	CanAbort
)

// Bivalent reports whether both decision values are reachable ([8]: the
// configuration is bivalent).
func (v Valence) Bivalent() bool {
	return v&CanDecide0 != 0 && v&CanDecide1 != 0
}

// Univalent reports whether exactly one decision value is reachable.
func (v Valence) Univalent() bool {
	d := v & (CanDecide0 | CanDecide1)
	return d == CanDecide0 || d == CanDecide1
}

// String renders the valence in the paper's terminology.
func (v Valence) String() string {
	switch {
	case v.Bivalent():
		return "bivalent"
	case v&CanDecide0 != 0:
		return "0-valent"
	case v&CanDecide1 != 0:
		return "1-valent"
	default:
		return "null-valent"
	}
}

// CriticalConfig describes one critical configuration: a bivalent
// configuration whose every successor is univalent — the pivot of the
// bivalency proofs (Claim 4.2.5 / Claim 5.2.2).
type CriticalConfig struct {
	// Schedule reaches the configuration from the initial one.
	Schedule []Step
	// PoisedObj maps each process to the object it is poised on (-1 for
	// terminated processes).
	PoisedObj []int
	// ID is the configuration id in the explored graph.
	ID int
	// SameObject reports whether all poised processes are about to
	// access one common object (the structure Claims 4.2.7 and 5.2.3
	// establish must hold).
	SameObject bool
	// ObjectName is the spec name of that common object when SameObject.
	ObjectName string
}

// ValencyReport summarizes the valence structure of the reachable
// configuration graph.
type ValencyReport struct {
	// Initial is the valence of the initial configuration; the proofs'
	// first move (Claim 4.2.4 / Claim 5.2.1) is showing it bivalent for
	// suitable inputs.
	Initial Valence
	// Bivalent, Univalent0, Univalent1, and Null count configurations by
	// valence.
	Bivalent   int
	Univalent0 int
	Univalent1 int
	Null       int
	// Critical holds the first critical configurations found (at most
	// MaxCriticalStored), and CriticalCount the total.
	Critical      []CriticalConfig
	CriticalCount int
	// CriticalSameObject counts critical configurations whose poised
	// processes all target one object.
	CriticalSameObject int
}

// MaxCriticalStored bounds how many critical configurations a
// ValencyReport retains in full.
const MaxCriticalStored = 16

// valency labels every configuration with its valence and finds the
// critical configurations. Decisions must be binary.
func (g *graph) valency() (*ValencyReport, error) {
	comp := g.sccs()
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	masks := make([]Valence, nComp)

	// Seed with immediate outcomes.
	var m metaRec
	for id := range g.configs {
		g.metaAt(id, &m)
		for i := range m.status {
			switch m.status[i] {
			case machine.StatusDecided:
				switch m.decision[i] {
				case 0:
					masks[comp[id]] |= CanDecide0
				case 1:
					masks[comp[id]] |= CanDecide1
				default:
					return nil, fmt.Errorf("explore: got decision %s: %w",
						m.decision[i], ErrNotBinary)
				}
			case machine.StatusAborted:
				masks[comp[id]] |= CanAbort
			}
		}
	}

	// Propagate along the condensation. Tarjan numbers components in
	// reverse topological order: every cross edge goes from a
	// higher-numbered component to a lower-numbered one, so scanning
	// configurations grouped by ascending component id sees final target
	// masks.
	byComp := make([][]int, nComp)
	for id := range g.configs {
		byComp[comp[id]] = append(byComp[comp[id]], id)
	}
	for ci := 0; ci < nComp; ci++ {
		for _, id := range byComp[ci] {
			for it := g.edgeIter(id); ; {
				e, ok := it.next()
				if !ok {
					break
				}
				masks[ci] |= masks[comp[e.to]]
			}
		}
	}

	rep := &ValencyReport{Initial: masks[comp[0]]}
	g.valence = make([]Valence, len(g.configs))
	for id := range g.configs {
		g.valence[id] = masks[comp[id]]
	}
	for id := range g.configs {
		v := masks[comp[id]]
		switch {
		case v.Bivalent():
			rep.Bivalent++
		case v&CanDecide0 != 0:
			rep.Univalent0++
		case v&CanDecide1 != 0:
			rep.Univalent1++
		default:
			rep.Null++
		}
		if !v.Bivalent() {
			continue
		}
		// Critical: bivalent with no bivalent successor.
		critical := true
		deg := 0
		for it := g.edgeIter(id); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			deg++
			if masks[comp[e.to]].Bivalent() {
				critical = false
				break
			}
		}
		if !critical || deg == 0 {
			continue
		}
		rep.CriticalCount++
		cc := g.describeCritical(id)
		if cc.SameObject {
			rep.CriticalSameObject++
		}
		if len(rep.Critical) < MaxCriticalStored {
			rep.Critical = append(rep.Critical, cc)
		}
	}
	return rep, nil
}

// describeCritical captures the poised structure of a critical
// configuration.
func (g *graph) describeCritical(id int) CriticalConfig {
	var m metaRec
	g.metaAt(id, &m)
	cc := CriticalConfig{
		ID:         id,
		Schedule:   g.pathTo(id),
		PoisedObj:  make([]int, len(m.poised)),
		SameObject: true,
	}
	copy(cc.PoisedObj, m.poised)
	common := -1
	for _, obj := range m.poised {
		if obj < 0 {
			continue
		}
		if common == -1 {
			common = obj
		} else if obj != common {
			cc.SameObject = false
		}
	}
	if common == -1 {
		cc.SameObject = false
	}
	if cc.SameObject {
		cc.ObjectName = g.sys.Objects[common].Name()
	}
	return cc
}

package explore_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// forkFamily builds enumerate-shaped candidates sharing a one-invoke
// prefix: every program starts Invoke r2 ← obj0.propose(input), then
// diverges at the second invocation and the guarded actions — exactly
// the trie structure the sweep memoizer snapshots at level depth-1.
func forkFamily() (base, alt []*machine.Program, objs []spec.Spec) {
	candA := machine.NewBuilder("fork-cand-a", 4).
		Invoke(2, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		Invoke(3, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		JEq(machine.R(3), machine.C(value.Bottom), "onbottom").
		Decide(machine.R(3)).
		Label("onbottom").
		Decide(machine.R(2)).
		MustBuild()
	candB := machine.NewBuilder("fork-cand-b", 4).
		Invoke(2, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		Invoke(3, 1, value.MethodRead, machine.Operand{}, machine.Operand{}).
		JEq(machine.R(3), machine.C(value.Bottom), "onbottom").
		Decide(machine.R(3)).
		Label("onbottom").
		Abort().
		MustBuild()
	objs = []spec.Spec{objects.NewConsensus(1), objects.NewRegister()}
	return []*machine.Program{candA, candA}, []*machine.Program{candB, candB}, objs
}

// reportKernel is the comparable projection of a Report: everything
// except the private graph, with violations flattened to rendered
// errors plus concrete schedules.
type reportKernel struct {
	States, Transitions, Quiescent int
	Cover                          []explore.BranchCover
	Violations                     []violationKernel
}

type violationKernel struct {
	Msg            string
	Proc           int
	Witness, Cycle []explore.Step
}

func kernel(r *explore.Report) reportKernel {
	k := reportKernel{
		States:      r.States,
		Transitions: r.Transitions,
		Quiescent:   r.Quiescent,
		Cover:       r.Cover,
	}
	for _, v := range r.Violations {
		k.Violations = append(k.Violations, violationKernel{
			Msg:     v.Error(),
			Proc:    v.Proc,
			Witness: v.Witness,
			Cycle:   v.Cycle,
		})
	}
	return k
}

// TestForkMatchesFromScratch checks the core fork contract: a Report
// produced by Snapshot+Fork is identical — counts, coverage, violation
// witnesses, and flushed metrics — to a from-scratch Check of the
// forked system, for both the snapshot's own system and a sibling
// candidate diverging after the shared prefix.
func TestForkMatchesFromScratch(t *testing.T) {
	t.Parallel()
	base, alt, objs := forkFamily()
	inputs := []value.Value{0, 1}
	tsk := task.Consensus{N: 2}
	cover := &explore.CoverRequest{GuardPC: 1}

	snap, err := explore.SnapshotPrefix(&explore.System{Programs: base, Objects: objs, Inputs: inputs},
		tsk, 1, explore.Options{})
	if err != nil {
		t.Fatalf("SnapshotPrefix: %v", err)
	}
	if snap.States() == 0 {
		t.Fatal("empty snapshot prefix")
	}

	for name, progs := range map[string][]*machine.Program{"same": base, "sibling": alt} {
		sys := &explore.System{Programs: progs, Objects: objs, Inputs: inputs}
		scratchSink, forkSink := obs.NewSink(), obs.NewSink()
		want, werr := explore.Check(sys, tsk, explore.Options{Cover: cover, Obs: scratchSink})
		got, gerr := snap.Fork(sys, explore.Options{Cover: cover, Obs: forkSink})
		if werr != nil || gerr != nil {
			t.Fatalf("%s: Check err %v, Fork err %v", name, werr, gerr)
		}
		if !reflect.DeepEqual(kernel(want), kernel(got)) {
			t.Errorf("%s: fork report diverges:\nwant %+v\ngot  %+v", name, kernel(want), kernel(got))
		}
		ws, fs := scratchSink.Snapshot(), forkSink.Snapshot()
		if !reflect.DeepEqual(ws.Counters, fs.Counters) {
			t.Errorf("%s: counters diverge:\nwant %v\ngot  %v", name, ws.Counters, fs.Counters)
		}
		if !reflect.DeepEqual(ws.Gauges, fs.Gauges) {
			t.Errorf("%s: gauges diverge:\nwant %v\ngot  %v", name, ws.Gauges, fs.Gauges)
		}
	}
}

// TestForkConcurrent runs many forks of one snapshot concurrently; the
// race detector validates that the frozen prefix really is read-only
// and each fork's report still matches a from-scratch run.
func TestForkConcurrent(t *testing.T) {
	t.Parallel()
	base, alt, objs := forkFamily()
	inputs := []value.Value{0, 1}
	tsk := task.Consensus{N: 2}
	snap, err := explore.SnapshotPrefix(&explore.System{Programs: base, Objects: objs, Inputs: inputs},
		tsk, 1, explore.Options{})
	if err != nil {
		t.Fatalf("SnapshotPrefix: %v", err)
	}
	wants := make([]reportKernel, 2)
	for i, progs := range [][]*machine.Program{base, alt} {
		rep, err := explore.Check(&explore.System{Programs: progs, Objects: objs, Inputs: inputs}, tsk, explore.Options{})
		if err != nil {
			t.Fatalf("Check(%d): %v", i, err)
		}
		wants[i] = kernel(rep)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for i, progs := range [][]*machine.Program{base, alt} {
			wg.Add(1)
			go func(i int, progs []*machine.Program) {
				defer wg.Done()
				rep, err := snap.Fork(&explore.System{Programs: progs, Objects: objs, Inputs: inputs}, explore.Options{})
				if err != nil {
					t.Errorf("Fork(%d): %v", i, err)
					return
				}
				if got := kernel(rep); !reflect.DeepEqual(wants[i], got) {
					t.Errorf("concurrent fork %d diverges: want %+v got %+v", i, wants[i], got)
				}
			}(i, progs)
		}
	}
	wg.Wait()
}

// TestForkStateLimitIdentical checks that a fork truncates at exactly
// the same configuration as a from-scratch run with the same MaxStates:
// partial counts and the ErrStateLimit error match.
func TestForkStateLimitIdentical(t *testing.T) {
	t.Parallel()
	base, alt, objs := forkFamily()
	inputs := []value.Value{0, 1}
	tsk := task.Consensus{N: 2}
	const limit = 9
	snap, err := explore.SnapshotPrefix(&explore.System{Programs: base, Objects: objs, Inputs: inputs},
		tsk, 1, explore.Options{MaxStates: limit})
	if err != nil {
		t.Fatalf("SnapshotPrefix: %v", err)
	}
	sys := &explore.System{Programs: alt, Objects: objs, Inputs: inputs}
	want, werr := explore.Check(sys, tsk, explore.Options{MaxStates: limit})
	got, gerr := snap.Fork(sys, explore.Options{MaxStates: limit})
	if !errors.Is(werr, explore.ErrStateLimit) || !errors.Is(gerr, explore.ErrStateLimit) {
		t.Fatalf("want ErrStateLimit from both: Check %v, Fork %v", werr, gerr)
	}
	if werr.Error() != gerr.Error() {
		t.Errorf("state-limit errors diverge: %q vs %q", werr, gerr)
	}
	if !reflect.DeepEqual(kernel(want), kernel(got)) {
		t.Errorf("partial reports diverge:\nwant %+v\ngot  %+v", kernel(want), kernel(got))
	}
}

// TestForkRejections pins the unsupported-envelope errors.
func TestForkRejections(t *testing.T) {
	t.Parallel()
	base, _, objs := forkFamily()
	inputs := []value.Value{0, 1}
	tsk := task.Consensus{N: 2}
	sys := &explore.System{Programs: base, Objects: objs, Inputs: inputs}

	if _, err := explore.SnapshotPrefix(sys, tsk, 0, explore.Options{}); !errors.Is(err, explore.ErrForkUnsupported) {
		t.Errorf("zero levels: err %v, want ErrForkUnsupported", err)
	}
	if _, err := explore.SnapshotPrefix(sys, tsk, 1, explore.Options{Symmetry: explore.SymmetryIDs}); !errors.Is(err, explore.ErrForkUnsupported) {
		t.Errorf("symmetry snapshot: err %v, want ErrForkUnsupported", err)
	}

	snap, err := explore.SnapshotPrefix(sys, tsk, 1, explore.Options{})
	if err != nil {
		t.Fatalf("SnapshotPrefix: %v", err)
	}
	if _, err := snap.Fork(sys, explore.Options{MaxStates: 7}); !errors.Is(err, explore.ErrForkUnsupported) {
		t.Errorf("MaxStates mismatch: err %v, want ErrForkUnsupported", err)
	}
	if _, err := snap.Fork(sys, explore.Options{Valency: true}); !errors.Is(err, explore.ErrForkUnsupported) {
		t.Errorf("valency fork: err %v, want ErrForkUnsupported", err)
	}
	narrow := &explore.System{Programs: base[:1], Objects: objs, Inputs: inputs[:1]}
	if _, err := snap.Fork(narrow, explore.Options{}); !errors.Is(err, explore.ErrForkUnsupported) {
		t.Errorf("shape mismatch: err %v, want ErrForkUnsupported", err)
	}
	flipped := &explore.System{Programs: base, Objects: objs, Inputs: []value.Value{1, 0}}
	if _, err := snap.Fork(flipped, explore.Options{}); !errors.Is(err, explore.ErrForkUnsupported) {
		t.Errorf("input mismatch: err %v, want ErrForkUnsupported", err)
	}
}

// TestProbeSymmetryMatchesCheck confirms ProbeSymmetry accepts exactly
// when Check runs reduced and rejects with the same sentinel when Check
// falls back.
func TestProbeSymmetryMatchesCheck(t *testing.T) {
	t.Parallel()
	base, alt, objs := forkFamily()
	tsk := task.Consensus{N: 2}
	// Identical programs + identical inputs: ids-symmetric.
	symmetric := &explore.System{Programs: base, Objects: objs, Inputs: []value.Value{1, 1}}
	if err := explore.ProbeSymmetry(symmetric, tsk, explore.SymmetryIDs); err != nil {
		t.Errorf("symmetric probe: %v", err)
	}
	if _, err := explore.Check(symmetric, tsk, explore.Options{Symmetry: explore.SymmetryIDs}); err != nil {
		t.Errorf("symmetric Check: %v", err)
	}
	// Distinct inputs break ids-stability of the root.
	asym := &explore.System{Programs: alt, Objects: objs, Inputs: []value.Value{0, 1}}
	perr := explore.ProbeSymmetry(asym, tsk, explore.SymmetryIDs)
	_, cerr := explore.Check(asym, tsk, explore.Options{Symmetry: explore.SymmetryIDs})
	if (perr == nil) != (cerr == nil) {
		t.Fatalf("probe err %v but Check err %v", perr, cerr)
	}
	if perr != nil && !errors.Is(perr, explore.ErrNotSymmetric) && !errors.Is(perr, explore.ErrSymmetryUnsupported) {
		t.Errorf("probe rejection %v is not a symmetry sentinel", perr)
	}
	if err := explore.ProbeSymmetry(asym, tsk, explore.SymmetryOff); err != nil {
		t.Errorf("off-mode probe: %v", err)
	}
}

package explore_test

import (
	"errors"
	"testing"

	"strings"

	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

// binaryInputs enumerates all 2^n binary input vectors.
func binaryInputs(n int) [][]value.Value {
	var out [][]value.Value
	for mask := 0; mask < 1<<uint(n); mask++ {
		in := make([]value.Value, n)
		for i := range in {
			if mask&(1<<uint(i)) != 0 {
				in[i] = 1
			}
		}
		out = append(out, in)
	}
	return out
}

func checkProtocol(t *testing.T, p programs.Protocol, tsk task.Task, inputs []value.Value, opts explore.Options) *explore.Report {
	t.Helper()
	sys, err := p.System(inputs)
	if err != nil {
		t.Fatalf("System(%v): %v", inputs, err)
	}
	rep, err := explore.Check(sys, tsk, opts)
	if err != nil {
		t.Fatalf("Check(%s, %v): %v", p.Name, inputs, err)
	}
	return rep
}

// TestAlgorithm2ExhaustiveSmall model-checks Algorithm 2 (Theorem 4.1)
// for n = 2, 3 over all binary input vectors and all distinguished
// process positions: every reachable configuration satisfies the n-DAC
// safety properties and both termination obligations hold.
func TestAlgorithm2ExhaustiveSmall(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 3; n++ {
		for p := 1; p <= n; p++ {
			prot := programs.Algorithm2(n, p)
			for _, in := range binaryInputs(n) {
				rep := checkProtocol(t, prot, task.DAC{N: n, P: p - 1}, in, explore.Options{})
				if !rep.Solved() {
					t.Fatalf("n=%d p=%d inputs=%v: violations: %v", n, p, in, rep.Violations[0])
				}
				if rep.States == 0 || rep.Transitions == 0 {
					t.Fatalf("n=%d p=%d inputs=%v: empty exploration", n, p, in)
				}
			}
		}
	}
}

// TestAlgorithm2InitialBivalent reproduces Claim 4.2.4's shape on the
// concrete Algorithm 2 instance: with p's input 1 and all others 0, the
// initial configuration is bivalent.
func TestAlgorithm2InitialBivalent(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 3; n++ {
		prot := programs.Algorithm2(n, 1)
		in := make([]value.Value, n)
		in[0] = 1
		rep := checkProtocol(t, prot, task.DAC{N: n, P: 0}, in, explore.Options{Valency: true})
		if !rep.Solved() {
			t.Fatalf("n=%d: unexpected violation %v", n, rep.Violations[0])
		}
		if rep.Valency == nil {
			t.Fatal("valency report missing")
		}
		if !rep.Valency.Initial.Bivalent() {
			t.Errorf("n=%d: initial configuration is %s, want bivalent", n, rep.Valency.Initial)
		}
	}
}

// TestAlgorithm2UniformInputsUnivalent checks Validity's consequence:
// with all inputs equal to v, the initial configuration is v-valent.
func TestAlgorithm2UniformInputsUnivalent(t *testing.T) {
	t.Parallel()
	for _, v := range []value.Value{0, 1} {
		in := []value.Value{v, v, v}
		prot := programs.Algorithm2(3, 1)
		rep := checkProtocol(t, prot, task.DAC{N: 3, P: 0}, in, explore.Options{Valency: true})
		if !rep.Solved() {
			t.Fatalf("v=%s: unexpected violation %v", v, rep.Violations[0])
		}
		got := rep.Valency.Initial
		if got.Bivalent() || !got.Univalent() {
			t.Fatalf("v=%s: initial valence %s, want univalent", v, got)
		}
		want := explore.CanDecide0
		if v == 1 {
			want = explore.CanDecide1
		}
		if got&(explore.CanDecide0|explore.CanDecide1) != want {
			t.Errorf("v=%s: initial valence %s", v, got)
		}
	}
}

// TestNaiveTwoSAConsensusFails confirms the checker refutes the naive
// consensus-from-2-SA protocol with an Agreement violation.
func TestNaiveTwoSAConsensusFails(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2)
	rep := checkProtocol(t, prot, task.Consensus{N: 2}, []value.Value{0, 1}, explore.Options{})
	if rep.Solved() {
		t.Fatal("flawed protocol reported as correct")
	}
	v := rep.Violations[0]
	if v.Kind != explore.ViolationSafety {
		t.Fatalf("violation kind = %s, want safety", v.Kind)
	}
	if !errors.Is(v.Err, task.ErrViolation) {
		t.Fatalf("violation error %v does not wrap task.ErrViolation", v.Err)
	}
	if len(v.Witness) == 0 {
		t.Fatal("safety violation has no witness schedule")
	}
}

// TestOverSubscribedConsensusFails confirms the checker refutes the
// m-consensus-object protocol run by m+1 processes with a wait-freedom
// violation (the ⊥ receiver spins on the hand-off register).
func TestOverSubscribedConsensusFails(t *testing.T) {
	t.Parallel()
	for m := 2; m <= 3; m++ {
		prot := programs.OverSubscribedConsensus(m)
		in := make([]value.Value, m+1)
		for i := range in {
			in[i] = value.Value(i)
		}
		rep := checkProtocol(t, prot, task.Consensus{N: m + 1}, in, explore.Options{})
		if rep.Solved() {
			t.Fatalf("m=%d: flawed protocol reported as correct", m)
		}
		foundWaitFree := false
		for _, v := range rep.Violations {
			if v.Kind == explore.ViolationWaitFree {
				foundWaitFree = true
				if len(v.Cycle) == 0 {
					t.Errorf("m=%d: wait-free violation without cycle witness", m)
				}
			}
		}
		if !foundWaitFree {
			t.Errorf("m=%d: no wait-free violation among %v", m, rep.Violations)
		}
	}
}

// TestUpsettingAlgorithm2Fails confirms the double-propose variant
// violates the n-DAC spec (the PAC object gets upset; p aborts even in
// solo runs, violating Nontriviality).
func TestUpsettingAlgorithm2Fails(t *testing.T) {
	t.Parallel()
	prot := programs.UpsettingAlgorithm2(3, 1)
	rep := checkProtocol(t, prot, task.DAC{N: 3, P: 0}, []value.Value{1, 0, 0}, explore.Options{})
	if rep.Solved() {
		t.Fatal("upsetting variant reported as correct")
	}
}

// TestDACAttemptFails confirms the Theorem 4.2-flavoured candidate
// (n-consensus + 2-SA + register for (n+1)-DAC) is refuted.
func TestDACAttemptFails(t *testing.T) {
	t.Parallel()
	prot := programs.DACFromConsensusAndTwoSA(2, 1)
	failed := false
	for _, in := range binaryInputs(3) {
		rep := checkProtocol(t, prot, task.DAC{N: 3, P: 0}, in, explore.Options{})
		if !rep.Solved() {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("flawed DAC attempt passed on every input vector")
	}
}

// TestStateLimit confirms the exploration cap triggers cleanly.
func TestStateLimit(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{MaxStates: 4})
	if !errors.Is(err, explore.ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

// TestStateLimitPartialReport is the regression test for the partial
// Report returned alongside ErrStateLimit: States must count the
// configurations actually interned (it used to stay 0 while Transitions
// was populated), keeping the report self-consistent.
func TestStateLimitPartialReport(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	const max = 10
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{MaxStates: max})
	if !errors.Is(err, explore.ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
	if rep == nil {
		t.Fatal("no partial report returned with ErrStateLimit")
	}
	if rep.States != max+1 {
		t.Errorf("partial report States = %d, want %d (the config that broke the cap)", rep.States, max+1)
	}
	if rep.Transitions == 0 {
		t.Error("partial report lost its transition count")
	}
	// Every non-root configuration was first reached over some edge.
	if rep.States > rep.Transitions+1 {
		t.Errorf("inconsistent partial report: %d states > %d transitions + 1", rep.States, rep.Transitions)
	}
}

// TestWriteDOT exercises the Graphviz export.
func TestWriteDOT(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(2, 1)
	sys, err := prot.System([]value.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.DAC{N: 2, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rep.WriteDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "fillcolor=gold", "doublecircle", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Truncation path.
	buf.Reset()
	if err := rep.WriteDOT(&buf, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "truncated") {
		t.Error("truncation comment missing")
	}
}

// TestAnnotateSchedule replays a checker witness with state annotation.
func TestAnnotateSchedule(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2)
	sys, err := prot.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.Consensus{N: 2}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solved() {
		t.Fatal("expected violation")
	}
	sys2, err := prot.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := explore.AnnotateSchedule(&buf, sys2, rep.Violations[0].Witness); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"inputs:", "PROPOSE", "2-SA state:", "DECIDES"} {
		if !strings.Contains(out, want) {
			t.Errorf("annotation missing %q:\n%s", want, out)
		}
	}
	// A schedule that steps a terminated process is rejected.
	bogus := append(append([]explore.Step(nil), rep.Violations[0].Witness...),
		rep.Violations[0].Witness...)
	sys3, _ := prot.System([]value.Value{0, 1})
	if err := explore.AnnotateSchedule(&buf, sys3, bogus); err == nil {
		t.Error("inapplicable schedule accepted")
	}
}

// TestDisplaySurfaces pins the reporting strings the CLI leans on.
func TestDisplaySurfaces(t *testing.T) {
	t.Parallel()
	if explore.ViolationSafety.String() != "safety" ||
		explore.ViolationWaitFree.String() != "wait-free termination" ||
		explore.ViolationDACTerminationA.String() != "DAC termination (a)" ||
		explore.ViolationDACTerminationB.String() != "DAC termination (b)" ||
		explore.ViolationHaltUndecided.String() != "halt while undecided" {
		t.Error("violation kind names changed")
	}
	if (explore.CanDecide0 | explore.CanDecide1).String() != "bivalent" {
		t.Error("bivalent rendering")
	}
	if explore.CanDecide0.String() != "0-valent" || explore.CanDecide1.String() != "1-valent" {
		t.Error("univalent rendering")
	}
	if explore.Valence(0).String() != "null-valent" {
		t.Error("null rendering")
	}
	if (explore.CanAbort).Bivalent() || !(explore.CanDecide0 | explore.CanDecide1).Bivalent() {
		t.Error("Bivalent predicate")
	}
	s := explore.Step{Proc: 2, Obj: 1, Op: value.ProposeAt(5, 3), Resp: value.Done}
	if s.String() != "p3: PROPOSE_AT(5, 3) on obj1 -> done" {
		t.Errorf("Step.String() = %q", s.String())
	}
}

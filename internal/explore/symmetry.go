// Symmetry reduction: orbit-canonical interning of configurations.
//
// A system whose processes run identical code and differ only in their
// ids (and, optionally, their proposed values) admits a group of
// configuration-graph automorphisms: renaming process ids (together
// with ports in object states and, in SymmetryValues mode, application
// values) maps reachable configurations to reachable configurations
// and commutes with the step relation. The explorer exploits this by
// interning every configuration under the lexicographically minimal
// binary key in its orbit, so each orbit is expanded once.
//
// Stored configurations remain CONCRETE: the representative kept for
// an orbit is the first concrete member discovered, and the BFS tree
// edges connect concrete configurations, so pathTo witnesses are
// genuine executions with no de-canonicalization step. Each interned
// configuration additionally records the group element mapping it to
// the canonical key (graph.canon) and each edge records the element
// relating the concrete successor to the stored representative
// (edge.g); the lifted walkers below use these annotations to turn
// quotient cycles back into concrete schedules.
package explore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"setagree/internal/machine"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// Symmetry selects the exploration's symmetry-reduction mode.
type Symmetry uint8

// Symmetry modes.
const (
	// SymmetryOff explores the concrete configuration graph (default).
	SymmetryOff Symmetry = iota
	// SymmetryIDs quotients by admissible process-id permutations: ids
	// of processes running the same program with the same input may be
	// exchanged. Values are untouched, so valency analysis stays exact.
	SymmetryIDs
	// SymmetryValues additionally permutes application values: ids of
	// processes running the same program may be exchanged when some
	// value bijection carries their inputs onto each other. Requires
	// every program to treat values opaquely (no arithmetic).
	SymmetryValues
)

// String names the mode as ParseSymmetry accepts it.
func (s Symmetry) String() string {
	switch s {
	case SymmetryOff:
		return "off"
	case SymmetryIDs:
		return "ids"
	case SymmetryValues:
		return "values"
	default:
		return "symmetry(" + fmt.Sprint(uint8(s)) + ")"
	}
}

// ParseSymmetry parses a symmetry mode name: "off", "ids" (alias
// "process-ids"), or "values" (alias "process-and-values").
func ParseSymmetry(s string) (Symmetry, error) {
	switch s {
	case "", "off":
		return SymmetryOff, nil
	case "ids", "process-ids":
		return SymmetryIDs, nil
	case "values", "process-and-values":
		return SymmetryValues, nil
	default:
		return SymmetryOff, fmt.Errorf("explore: unknown symmetry mode %q (want off, ids, or values)", s)
	}
}

// Symmetry failure modes.
var (
	// ErrNotSymmetric reports that the system lacks the structure the
	// requested symmetry mode needs: an object state that does not
	// implement spec.Symmetric, a program whose pid register escapes
	// into general computation, or (in SymmetryValues mode) a program
	// that computes on values.
	ErrNotSymmetric = errors.New("system does not admit symmetry reduction")
	// ErrSymmetryUnsupported reports an analysis that is unsound over
	// the quotient graph: resilience-bounded liveness, valency labels
	// under value permutation, adversary construction, or a symmetry
	// group too large to materialize.
	ErrSymmetryUnsupported = errors.New("analysis not supported under symmetry reduction")
)

// maxGroupOrder caps the materialized permutation group (8!): beyond
// it, per-successor canonicalization would dominate any savings.
const maxGroupOrder = 40320

// group is the materialized admissible symmetry group. perms[0] is
// always the identity (the lexicographic generation order guarantees
// it); comp[a][b] indexes the composition a∘b, defined by
// (a∘b)·C = a·(b·C); inv[a] indexes a's inverse.
type group struct {
	perms []spec.Perm
	comp  [][]int
	inv   []int
}

// errGroupTooBig aborts group enumeration past maxGroupOrder.
var errGroupTooBig = errors.New("group too big")

// buildGroup computes the admissible symmetry group of the system: the
// process permutations σ (paired, in SymmetryValues mode, with the
// value bijection τ they induce on the inputs) under which the step
// relation, the initial configuration, and the task predicates are all
// invariant. Admissibility requires, per the analyses documented on
// machine.AnalyzeSymmetry and spec.Symmetric:
//
//   - σ(i) = j only when processes i and j run the same program;
//   - σ fixes every process owning a hard-coded port label and, for
//     n-DAC tasks, the distinguished process;
//   - SymmetryIDs: inputs are preserved literally (τ = id);
//   - SymmetryValues: τ(Inputs[i]) := Inputs[σ(i)] is well defined and
//     injective, and fixes every program constant, 0 and 1, and the
//     sentinels (programs must also be value-safe: no arithmetic).
//
// The admissible set is closed under composition and inverse (the
// constraints compose), so it is a group; comp and inv record its
// multiplication table.
func buildGroup(sys *System, tsk task.Task, mode Symmetry) (*group, error) {
	n := sys.Procs()
	for j, o := range sys.Objects {
		if _, ok := o.Init().(spec.Symmetric); !ok {
			return nil, fmt.Errorf("explore: object %d state (%T) does not implement spec.Symmetric: %w",
				j, o.Init(), ErrNotSymmetric)
		}
	}
	infos := make([]machine.SymmetryInfo, n)
	for i := range sys.Programs {
		inf, err := machine.AnalyzeSymmetry(sys.Programs[i])
		if err != nil {
			return nil, fmt.Errorf("explore: %v: %w", err, ErrNotSymmetric)
		}
		infos[i] = inf
	}
	if mode == SymmetryValues {
		for i, inf := range infos {
			if !inf.ValueSafe {
				return nil, fmt.Errorf("explore: program %s of process %d computes on values; only the identity value permutation is sound: %w",
					sys.Programs[i].Name, i+1, ErrNotSymmetric)
			}
		}
	}

	fixed := make([]bool, n)
	consts := map[value.Value]bool{0: true}
	for _, inf := range infos {
		for _, l := range inf.FixedPorts {
			if l >= 1 && l <= n {
				fixed[l-1] = true
			}
		}
		for _, v := range inf.Constants {
			consts[v] = true
		}
	}
	if tsk != nil {
		live := tsk.Liveness()
		if !live.WaitFree && live.DACDistinguished < 0 {
			// Resilience-bounded liveness counts per-SCC crashed
			// processes, which lifted translates of a quotient SCC do
			// not agree on.
			return nil, fmt.Errorf("explore: resilience-bounded liveness (tolerance %d) needs the concrete graph: %w",
				live.Tolerance, ErrSymmetryUnsupported)
		}
		if d := live.DACDistinguished; d >= 0 && d < n {
			fixed[d] = true
			// The DAC safety predicate distinguishes decisions 0 and 1.
			consts[0] = true
			consts[1] = true
		}
	}

	var perms []spec.Perm
	used := make([]bool, n)
	img := make([]int, n)
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			var vals map[value.Value]value.Value
			if mode == SymmetryValues {
				vals = make(map[value.Value]value.Value, n)
				for p, q := range img {
					v, w := sys.Inputs[p], sys.Inputs[q]
					if prev, ok := vals[v]; ok {
						if prev != w {
							return nil // τ not well defined for this σ
						}
						continue
					}
					vals[v] = w
				}
				seen := make(map[value.Value]bool, len(vals))
				identity := true
				for v, w := range vals {
					if seen[w] {
						return nil // τ not injective
					}
					seen[w] = true
					if v != w {
						identity = false
						if consts[v] || consts[w] || v.IsSentinel() || w.IsSentinel() {
							return nil // τ moves a constant or sentinel
						}
					}
				}
				if identity {
					vals = nil
				}
			}
			proc := make([]int, n)
			copy(proc, img)
			perms = append(perms, spec.MakePerm(proc, vals))
			if len(perms) > maxGroupOrder {
				return errGroupTooBig
			}
			return nil
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			if (fixed[i] || fixed[j]) && i != j {
				continue
			}
			if !machine.SamePrograms(sys.Programs[i], sys.Programs[j]) {
				continue
			}
			if mode == SymmetryIDs && sys.Inputs[i] != sys.Inputs[j] {
				continue
			}
			img[i] = j
			used[j] = true
			if err := rec(i + 1); err != nil {
				return err
			}
			used[j] = false
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, fmt.Errorf("explore: symmetry group exceeds %d elements: %w",
			maxGroupOrder, ErrSymmetryUnsupported)
	}
	if len(perms) == 0 || !perms[0].Identity() {
		return nil, fmt.Errorf("explore: internal: identity permutation not first in group enumeration: %w",
			ErrNotSymmetric)
	}

	// Multiplication table. σ alone identifies a group element (τ is a
	// function of σ), so index by the byte-encoded process map.
	keyOf := func(proc []int) string {
		b := make([]byte, len(proc))
		for i, j := range proc {
			b[i] = byte(j)
		}
		return string(b)
	}
	idx := make(map[string]int, len(perms))
	for k, p := range perms {
		idx[keyOf(p.Proc)] = k
	}
	grp := &group{
		perms: perms,
		comp:  make([][]int, len(perms)),
		inv:   make([]int, len(perms)),
	}
	buf := make([]int, n)
	for a := range perms {
		grp.comp[a] = make([]int, len(perms))
		for b := range perms {
			for i := 0; i < n; i++ {
				buf[i] = perms[a].Proc[perms[b].Proc[i]]
			}
			k, ok := idx[keyOf(buf)]
			if !ok {
				return nil, fmt.Errorf("explore: internal: admissible permutations not closed under composition: %w",
					ErrNotSymmetric)
			}
			grp.comp[a][b] = k
			if k == 0 {
				grp.inv[a] = b
			}
		}
	}
	return grp, nil
}

// checkRootStable verifies every group element fixes the initial
// configuration — guaranteed by the admissibility constraints (equal
// programs and compatible inputs produce identical start states up to
// the pid register), so a failure indicates an encoder bug rather than
// an asymmetric system. Cheap insurance run once per Check.
func (grp *group) checkRootStable(root *Config) error {
	ref := root.AppendKey(nil)
	var buf []byte
	for k := 1; k < len(grp.perms); k++ {
		buf = root.AppendKeyUnder(buf[:0], grp.perms[k])
		if !bytes.Equal(buf, ref) {
			return fmt.Errorf("explore: internal: admissible permutation %d does not stabilize the initial configuration: %w",
				k, ErrNotSymmetric)
		}
	}
	return nil
}

// keyScratch is the per-shard reusable key workspace: the running
// minimum and the current candidate. Pooling it keeps successor
// canonicalization allocation-free across shards, levels, and runs.
type keyScratch struct {
	best []byte
	cand []byte
	// Spliced-expansion scratch (symmetry off, expandShardSpliced): the
	// parent key and its per-component end offsets.
	parent []byte
	ends   []int
}

var keyScratchPool = sync.Pool{New: func() any { return new(keyScratch) }}

// canonical renders the canonical (orbit-minimal) key of c into sc and
// returns it along with the index gi of the first group element
// realizing the minimum (gi == 0 iff c's own key is canonical) and the
// orbit size |G|/|stabilizer| (the stabilizer is exactly the coset of
// elements tying the minimal key, by orbit–stabilizer).
//
// The returned slice aliases sc; callers copy it before reuse. The
// SteppedMask uvarint is the key's first component, so most non-minimal
// candidates are pruned by comparing their mask prefix against the
// running minimum before rendering the full key.
func (grp *group) canonical(sc *keyScratch, c *Config) (key []byte, gi, orbit int) {
	sc.best = c.AppendKey(sc.best[:0])
	ties := 1
	var maskBuf [binary.MaxVarintLen64]byte
	for k := 1; k < len(grp.perms); k++ {
		p := grp.perms[k]
		pre := binary.PutUvarint(maskBuf[:], permuteMask(c.SteppedMask, p))
		if pre > len(sc.best) {
			pre = len(sc.best)
		}
		if bytes.Compare(maskBuf[:pre], sc.best[:pre]) > 0 {
			continue
		}
		sc.cand = c.AppendKeyUnder(sc.cand[:0], p)
		switch bytes.Compare(sc.cand, sc.best) {
		case -1:
			sc.best, sc.cand = sc.cand, sc.best
			gi, ties = k, 1
		case 0:
			ties++
		}
	}
	return sc.best, gi, len(grp.perms) / ties
}

// permuteMask applies the process permutation to a stepped-bit mask;
// bits at or above the permutation's degree are unchanged.
func permuteMask(mask uint64, p spec.Perm) uint64 {
	n := len(p.Proc)
	if n == 0 {
		return mask
	}
	out := mask >> uint(n) << uint(n)
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			out |= 1 << uint(p.Proc[i])
		}
	}
	return out
}

// permuteStep renders the concrete step a p-translate of an execution
// takes where the original takes s: the process and any port label are
// renamed through p, value payloads through τ. Branch indices are
// p-equivariant (every object's transition order is positional in
// state components that permute with p), so Branch is unchanged.
func permuteStep(s Step, p spec.Perm) Step {
	s.Proc = p.ProcIdx(s.Proc)
	if s.Op.Method.TakesArg() {
		s.Op.Arg = p.Val(s.Op.Arg)
	}
	if s.Op.Method.LabelIsPort() {
		s.Op.Label = p.Port(s.Op.Label)
	}
	s.Resp = p.Val(s.Resp)
	return s
}

// liftNode is one node of the lifted graph walked below: the concrete
// configuration perms[h]·R_v, where R_v is the stored representative
// of quotient node v.
type liftNode struct {
	v, h int
}

// stabChecker memoizes membership in the stabilizer of one stored
// configuration (whether perms[h] fixes it), keyed by group index.
type stabChecker struct {
	grp   *group
	cfg   *Config
	ref   []byte
	buf   []byte
	known map[int]bool
}

func (g *graph) stabilizerOf(id int) *stabChecker {
	c := g.configAt(id)
	return &stabChecker{
		grp:   g.grp,
		cfg:   c,
		ref:   c.AppendKey(nil),
		known: map[int]bool{0: true},
	}
}

func (s *stabChecker) contains(h int) bool {
	if in, ok := s.known[h]; ok {
		return in
	}
	s.buf = s.cfg.AppendKeyUnder(s.buf[:0], s.grp.perms[h])
	in := bytes.Equal(s.buf, s.ref)
	s.known[h] = in
	return in
}

// liftedSolo reports whether a concrete solo cycle of process i passes
// through (a translate of) the quotient edge en out of from: a lifted
// walk from (en.to, en.g) back to (from, h) for some stabilizing h,
// every step of which is concretely an i-step. Each quotient edge
// (u→v, step s, g) lifts from (u, h) to (v, comp[h][g]) taking the
// concrete step permuteStep(s, perms[h]); the walk closes concretely
// exactly when it returns to from with h in the stabilizer of the
// stored representative. Sound and complete for the concrete graph:
// a lifted cycle projects to a concrete one by construction, and any
// concrete solo cycle translates into the lifted graph edge by edge.
func (g *graph) liftedSolo(from int, en edge, comp []int) bool {
	grp := g.grp
	i := en.step.Proc
	stab := g.stabilizerOf(from)
	start := liftNode{en.to, en.g}
	if start.v == from && stab.contains(start.h) {
		return true
	}
	seen := map[liftNode]bool{start: true}
	queue := []liftNode{start}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for it := g.edgeIter(at.v); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if comp[e.to] != comp[at.v] {
				continue
			}
			if grp.perms[at.h].ProcIdx(e.step.Proc) != i {
				continue
			}
			nx := liftNode{e.to, grp.comp[at.h][e.g]}
			if seen[nx] {
				continue
			}
			if nx.v == from && stab.contains(nx.h) {
				return true
			}
			seen[nx] = true
			queue = append(queue, nx)
		}
	}
	return false
}

// liftedCycle extracts a concrete cycle schedule through the quotient
// edge en out of from: the entry step followed by lifted steps back to
// a stabilizing return. soloOnly restricts the walk to concrete
// i-steps (Termination (b)); liftedSolo has then already established
// existence. For the unrestricted kinds a returning lifted walk always
// exists once the quotient edge lies in a cyclic SCC: iterating any
// quotient loop multiplies the accumulated group element, which has
// finite order, so some iterate lands in the stabilizer.
func (g *graph) liftedCycle(from int, en edge, i int, soloOnly bool, comp []int) []Step {
	grp := g.grp
	stab := g.stabilizerOf(from)
	start := liftNode{en.to, en.g}
	if start.v == from && stab.contains(start.h) {
		return []Step{en.step}
	}
	type crumb struct {
		prev liftNode
		step Step
		root bool
	}
	crumbs := map[liftNode]crumb{start: {root: true}}
	queue := []liftNode{start}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for it := g.edgeIter(at.v); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if comp[e.to] != comp[at.v] {
				continue
			}
			cstep := permuteStep(e.step, grp.perms[at.h])
			if soloOnly && cstep.Proc != i {
				continue
			}
			nx := liftNode{e.to, grp.comp[at.h][e.g]}
			if _, ok := crumbs[nx]; ok {
				continue
			}
			crumbs[nx] = crumb{prev: at, step: cstep}
			if nx.v == from && stab.contains(nx.h) {
				var rev []Step
				for n := nx; ; n = crumbs[n].prev {
					cr := crumbs[n]
					if cr.root {
						break
					}
					rev = append(rev, cr.step)
				}
				cyc := make([]Step, 0, len(rev)+1)
				cyc = append(cyc, en.step)
				for k := len(rev) - 1; k >= 0; k-- {
					cyc = append(cyc, rev[k])
				}
				return cyc
			}
			queue = append(queue, nx)
		}
	}
	return nil
}

// SymmetryGroupOrder returns the order of the admissible symmetry
// group the exploration quotiented by (1 when symmetry was off or the
// group is trivial).
func (r *Report) SymmetryGroupOrder() int {
	if r.g == nil || r.g.grp == nil {
		return 1
	}
	return len(r.g.grp.perms)
}

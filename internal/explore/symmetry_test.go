package explore_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// symmetryWorkerSet returns the worker counts the soundness suite runs
// reduced explorations at. EXPLORE_SYMMETRY_WORKERS pins a single
// count — the Makefile's race target uses it to cover Workers 1 and 4
// under -race without tripling the suite.
func symmetryWorkerSet(t *testing.T) []int {
	t.Helper()
	if s := os.Getenv("EXPLORE_SYMMETRY_WORKERS"); s != "" {
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			t.Fatalf("EXPLORE_SYMMETRY_WORKERS=%q: %v", s, err)
		}
		return []int{w}
	}
	return []int{1, 2, 8}
}

// violationKinds collects the distinct violation kinds of a report.
// Symmetry reduction may conflate which translate of a process gets
// reported, so soundness compares kind sets rather than violation
// lists verbatim.
func violationKinds(rep *explore.Report) map[explore.ViolationKind]bool {
	kinds := map[explore.ViolationKind]bool{}
	for _, v := range rep.Violations {
		kinds[v.Kind] = true
	}
	return kinds
}

// replaySchedule drives sched through the simulator with trace
// recording and asserts the replay is faithful: every step executes
// exactly as scheduled (sim's Replay scheduler silently substitutes
// live processes and branch 0 when a schedule is inapplicable, which
// trace comparison catches).
func replaySchedule(t *testing.T, sys *explore.System, tsk task.Task, sched []explore.Step) *sim.Result {
	t.Helper()
	res, err := sim.Run(sys, tsk, sim.Replay(sched), sim.Options{
		MaxSteps:    len(sched),
		RecordTrace: true,
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(res.Trace) != len(sched) {
		t.Fatalf("replay executed %d of %d scheduled steps", len(res.Trace), len(sched))
	}
	for k := range sched {
		if res.Trace[k] != sched[k] {
			t.Fatalf("replay diverged at step %d: scheduled %v, executed %v",
				k, sched[k], res.Trace[k])
		}
	}
	return res
}

// TestSymmetrySound cross-checks reduced against unreduced exploration
// on every determinism-suite protocol: identical verdicts, state
// counts bounded by the orbit equation, deterministic reduced runs at
// every worker count, and concrete witnesses that replay step-for-step
// in the simulator — safety witnesses reproduce the violation,
// liveness witnesses execute their cycle.
func TestSymmetrySound(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		prot   programs.Protocol
		inputs []value.Value
		tsk    task.Task
		modes  []explore.Symmetry
	}{
		{
			// Solved n-DAC protocol: the two 0-input non-distinguished
			// processes are exchangeable in ids mode.
			name:   "algorithm2-dac",
			prot:   programs.Algorithm2(3, 1),
			inputs: []value.Value{1, 0, 0},
			tsk:    task.DAC{N: 3, P: 0},
			modes:  []explore.Symmetry{explore.SymmetryIDs, explore.SymmetryValues},
		},
		{
			// Safety violation: ids mode has a trivial group (distinct
			// inputs); values mode can swap the processes along with
			// their proposals.
			name:   "naive-2sa-safety",
			prot:   programs.NaiveTwoSAConsensus(2),
			inputs: []value.Value{0, 1},
			tsk:    task.Consensus{N: 2},
			modes:  []explore.Symmetry{explore.SymmetryIDs, explore.SymmetryValues},
		},
		{
			// Liveness violations with cycle witnesses.
			name:   "oversubscribed-liveness",
			prot:   programs.OverSubscribedConsensus(2),
			inputs: []value.Value{0, 1, 2},
			tsk:    task.Consensus{N: 3},
			modes:  []explore.Symmetry{explore.SymmetryIDs, explore.SymmetryValues},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys, err := tc.prot.System(tc.inputs)
			if err != nil {
				t.Fatal(err)
			}
			base, err := explore.Check(sys, tc.tsk, explore.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range tc.modes {
				mode := mode
				t.Run(mode.String(), func(t *testing.T) {
					t.Parallel()
					var first *explore.Report
					for _, w := range symmetryWorkerSet(t) {
						red, err := explore.Check(sys, tc.tsk, explore.Options{
							Workers:  w,
							Symmetry: mode,
						})
						if err != nil {
							t.Fatalf("workers=%d: %v", w, err)
						}
						if first == nil {
							first = red
						} else {
							if red.States != first.States || red.Transitions != first.Transitions ||
								red.Quiescent != first.Quiescent {
								t.Fatalf("workers=%d: reduced counts %d/%d/%d differ from workers=%d run",
									w, red.States, red.Transitions, red.Quiescent, symmetryWorkerSet(t)[0])
							}
							if !reflect.DeepEqual(red.Violations, first.Violations) {
								t.Fatalf("workers=%d: reduced violations differ across worker counts", w)
							}
							continue
						}
						// Verdict equality with the unreduced run.
						if red.Solved() != base.Solved() {
							t.Fatalf("reduced Solved()=%v, unreduced %v", red.Solved(), base.Solved())
						}
						if !reflect.DeepEqual(violationKinds(red), violationKinds(base)) {
							t.Fatalf("violation kinds differ: reduced %v, unreduced %v",
								violationKinds(red), violationKinds(base))
						}
						// Orbit bounds: the quotient is never larger, and the
						// concrete graph is covered by at most |G| translates
						// of each representative.
						order := red.SymmetryGroupOrder()
						if red.States > base.States {
							t.Fatalf("reduced states %d > unreduced %d", red.States, base.States)
						}
						if base.States > red.States*order {
							t.Fatalf("unreduced states %d exceed reduced %d x group order %d",
								base.States, red.States, order)
						}
						// Every witness is a concrete, replayable execution.
						for _, v := range red.Violations {
							switch v.Kind {
							case explore.ViolationSafety:
								res := replaySchedule(t, sys, tc.tsk, v.Witness)
								if res.Violation == nil {
									t.Fatalf("safety witness replays without violating %s", tc.tsk.Name())
								}
							case explore.ViolationWaitFree, explore.ViolationDACTerminationA,
								explore.ViolationDACTerminationB:
								if len(v.Cycle) == 0 {
									t.Fatalf("liveness violation without cycle: %v", v)
								}
								sched := append([]explore.Step{}, v.Witness...)
								for k := 0; k < 3; k++ {
									sched = append(sched, v.Cycle...)
								}
								res := replaySchedule(t, sys, tc.tsk, sched)
								if res.Completed {
									t.Fatalf("liveness witness+3x cycle replayed to completion")
								}
							case explore.ViolationHaltUndecided:
								replaySchedule(t, sys, tc.tsk, v.Witness)
							}
						}
					}
				})
			}
		})
	}
}

// TestSymmetryReductionRatio pins the headline win on the paper's
// Algorithm 2 at n = 4 with one distinguished 1-input: three
// exchangeable processes give a group of order 6, and the quotient
// must be at least 4x smaller (the acceptance bar; the measured ratio
// is near 6x since most orbits are free).
func TestSymmetryReductionRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("unreduced n=4 exploration is slow")
	}
	t.Parallel()
	prot := programs.Algorithm2(4, 1)
	sys, err := prot.System([]value.Value{1, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	tsk := task.DAC{N: 4, P: 0}
	base, err := explore.Check(sys, tsk, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := explore.Check(sys, tsk, explore.Options{Symmetry: explore.SymmetryIDs})
	if err != nil {
		t.Fatal(err)
	}
	if got := red.SymmetryGroupOrder(); got != 6 {
		t.Fatalf("group order %d, want 6 (S3 on the three 0-input processes)", got)
	}
	if base.Solved() != red.Solved() {
		t.Fatalf("verdicts differ: unreduced %v, reduced %v", base.Solved(), red.Solved())
	}
	if base.States < 4*red.States {
		t.Fatalf("reduction ratio %d/%d < 4x", base.States, red.States)
	}
}

// counterSystem shares one fetch&add counter between two identical
// processes; CounterState deliberately lacks spec.Symmetric.
func counterSystem() *explore.System {
	prog := machine.NewBuilder("count", 4).
		Invoke(2, 0, value.MethodFetchAdd, machine.C(1), machine.Operand{}).
		Decide(machine.R(2)).
		MustBuild()
	return &explore.System{
		Programs: []*machine.Program{prog, prog},
		Objects:  []spec.Spec{objects.NewCounter()},
		Inputs:   []value.Value{0, 0},
	}
}

// TestSymmetryRejectsAsymmetricObject mirrors the engine-error
// observability contract: requesting symmetry on a system whose object
// state lacks spec.Symmetric fails up front with ErrNotSymmetric, and
// the failure still flushes counters and emits the explore.error
// terminal event.
func TestSymmetryRejectsAsymmetricObject(t *testing.T) {
	t.Parallel()
	sink := obs.NewSink()
	var evBuf bytes.Buffer
	em := obs.NewEmitter(&evBuf)
	rep, err := explore.Check(counterSystem(), nil, explore.Options{
		Symmetry: explore.SymmetryIDs,
		Obs:      sink,
		Events:   em,
	})
	if !errors.Is(err, explore.ErrNotSymmetric) {
		t.Fatalf("got %v, want ErrNotSymmetric", err)
	}
	if rep == nil {
		t.Fatal("rejection dropped the partial report")
	}
	snap := sink.Snapshot()
	if snap.Counters["explore.runs"] != 1 || snap.Counters["explore.errors"] != 1 {
		t.Fatalf("counters runs=%d errors=%d, want 1/1",
			snap.Counters["explore.runs"], snap.Counters["explore.errors"])
	}
	lines := strings.Split(strings.TrimSpace(evBuf.String()), "\n")
	var ev map[string]any
	if jsonErr := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); jsonErr != nil {
		t.Fatalf("bad terminal event: %v", jsonErr)
	}
	if ev["event"] != "explore.error" {
		t.Fatalf("terminal event %v, want explore.error", ev["event"])
	}
	if msg, _ := ev["error"].(string); !strings.Contains(msg, "spec.Symmetric") {
		t.Fatalf("terminal event error %q does not name the asymmetric object", msg)
	}
	// The same system explores fine unreduced.
	if _, err := explore.Check(counterSystem(), nil, explore.Options{}); err != nil {
		t.Fatalf("unreduced exploration of the counter system failed: %v", err)
	}
}

// TestSymmetryRejectsUnsupportedAnalyses: combinations that are
// unsound over the quotient graph fail with ErrSymmetryUnsupported —
// resilience-bounded liveness, valency under value permutation, and
// adversary construction on a reduced report.
func TestSymmetryRejectsUnsupportedAnalyses(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explore.Check(sys, task.ResilientKSet{N: 3, K: 2, F: 1}, explore.Options{
		Symmetry: explore.SymmetryIDs,
	}); !errors.Is(err, explore.ErrSymmetryUnsupported) {
		t.Fatalf("resilient task: got %v, want ErrSymmetryUnsupported", err)
	}
	if _, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{
		Symmetry: explore.SymmetryValues,
		Valency:  true,
	}); !errors.Is(err, explore.ErrSymmetryUnsupported) {
		t.Fatalf("valency+values: got %v, want ErrSymmetryUnsupported", err)
	}
	// Valency composes with ids-only symmetry, but the adversary needs
	// the concrete graph.
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{
		Symmetry: explore.SymmetryIDs,
		Valency:  true,
	})
	if err != nil {
		t.Fatalf("valency+ids rejected: %v", err)
	}
	if _, err := rep.Adversary(); !errors.Is(err, explore.ErrSymmetryUnsupported) {
		t.Fatalf("adversary on reduced graph: got %v, want ErrSymmetryUnsupported", err)
	}
}

// TestSymmetryObservability: a reduced run reports the symmetry
// counters and stamps the terminal event with the mode and group order.
func TestSymmetryObservability(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	var evBuf bytes.Buffer
	em := obs.NewEmitter(&evBuf)
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{
		Symmetry: explore.SymmetryIDs,
		Obs:      sink,
		Events:   em,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatalf("unexpected violation: %v", rep.Violations[0])
	}
	snap := sink.Snapshot()
	if snap.Counters["explore.symmetry_hits"] == 0 {
		t.Error("explore.symmetry_hits stayed 0 on a reduced run")
	}
	if snap.Gauges["explore.orbit_size_max"] != 2 {
		t.Errorf("explore.orbit_size_max = %d, want 2 (group order 2)",
			snap.Gauges["explore.orbit_size_max"])
	}
	last := strings.TrimSpace(evBuf.String())
	last = last[strings.LastIndexByte(last, '\n')+1:]
	var ev map[string]any
	if err := json.Unmarshal([]byte(last), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["event"] != "explore.done" || ev["symmetry"] != "ids" {
		t.Fatalf("terminal event %v lacks symmetry fields", ev)
	}
	if ev["group_order"] != float64(2) {
		t.Fatalf("group_order = %v, want 2", ev["group_order"])
	}
}

// TestParseSymmetry pins the CLI surface.
func TestParseSymmetry(t *testing.T) {
	t.Parallel()
	for in, want := range map[string]explore.Symmetry{
		"":                   explore.SymmetryOff,
		"off":                explore.SymmetryOff,
		"ids":                explore.SymmetryIDs,
		"process-ids":        explore.SymmetryIDs,
		"values":             explore.SymmetryValues,
		"process-and-values": explore.SymmetryValues,
	} {
		got, err := explore.ParseSymmetry(in)
		if err != nil || got != want {
			t.Errorf("ParseSymmetry(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("Symmetry(%v).String() empty", got)
		}
	}
	if _, err := explore.ParseSymmetry("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
}

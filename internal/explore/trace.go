package explore

import (
	"fmt"
	"io"

	"setagree/internal/machine"
	"setagree/internal/spec"
)

// AnnotateSchedule replays a schedule against a fresh instance of the
// system and renders each step together with the object state it
// produced and the stepping process's status — the counterexample
// narration a human needs to follow the proofs' runs. The schedule must
// be applicable (e.g. a Violation witness or a recorded trace from the
// same system).
func AnnotateSchedule(w io.Writer, sys *System, schedule []Step) error {
	n := sys.Procs()
	procs := make([]machine.ProcState, n)
	for i := 0; i < n; i++ {
		ps, err := machine.Start(sys.Programs[i], i+1, sys.Inputs[i])
		if err != nil {
			return err
		}
		procs[i] = ps
	}
	objs := make([]spec.State, len(sys.Objects))
	for j, o := range sys.Objects {
		objs[j] = o.Init()
	}
	fmt.Fprintf(w, "inputs: %v\n", sys.Inputs)
	for idx, step := range schedule {
		i := step.Proc
		if i < 0 || i >= n {
			return fmt.Errorf("annotate: step %d: process %d out of range: %w",
				idx, i+1, machine.ErrProgram)
		}
		poise, ok := machine.Poised(sys.Programs[i], procs[i])
		if !ok {
			return fmt.Errorf("annotate: step %d: process %d is %s, cannot step: %w",
				idx, i+1, procs[i].Status, machine.ErrProgram)
		}
		ts, err := sys.Objects[poise.Obj].Step(objs[poise.Obj], poise.Op)
		if err != nil {
			return err
		}
		branch := step.Branch
		if branch < 0 || branch >= len(ts) {
			return fmt.Errorf("annotate: step %d: branch %d of %d: %w",
				idx, branch, len(ts), machine.ErrProgram)
		}
		t := ts[branch]
		next, err := machine.Resume(sys.Programs[i], procs[i], t.Resp)
		if err != nil {
			return err
		}
		procs[i] = next
		objs[poise.Obj] = t.Next
		status := ""
		switch next.Status {
		case machine.StatusDecided:
			status = fmt.Sprintf("  => p%d DECIDES %s", i+1, next.Decision)
		case machine.StatusAborted:
			status = fmt.Sprintf("  => p%d ABORTS", i+1)
		case machine.StatusHalted:
			status = fmt.Sprintf("  => p%d halts", i+1)
		}
		fmt.Fprintf(w, "%3d. p%d: %s -> %s   [%s state: %s]%s\n",
			idx+1, i+1, poise.Op, t.Resp,
			sys.Objects[poise.Obj].Name(), t.Next.Key(), status)
	}
	return nil
}

package explore

import (
	"fmt"

	"setagree/internal/machine"
	"setagree/internal/task"
)

// checkLiveness verifies the task's termination obligations over the
// explored graph:
//
//   - wait-free tasks: no process takes infinitely many steps without
//     deciding, i.e. no reachable cycle contains a step of an undecided
//     process (every stepping process is undecided by construction);
//   - n-DAC: Termination (a) — no reachable cycle contains a step of the
//     distinguished process; Termination (b) — no reachable cycle
//     consists solely of steps of one non-distinguished process (a solo
//     livelock);
//   - all tasks: a process with a termination obligation must never stop
//     undecided (halt), since then even its solo runs fail to decide.
func (g *graph) checkLiveness(rep *Report) {
	live := g.tsk.Liveness()
	n := g.sys.Procs()

	// Halted-undecided processes. We read "takes infinitely many steps"
	// as "keeps executing": a correct algorithm never stops a process
	// that has not decided (or, for the DAC distinguished process,
	// aborted) — otherwise the trivial all-halt protocol would satisfy
	// the termination properties vacuously. Both task families here
	// (consensus/k-set agreement and n-DAC) oblige every process, so any
	// undecided halt is a violation.
	reported := make([]bool, n)
	var m metaRec
	for id := range g.configs {
		g.metaAt(id, &m)
		for i := 0; i < n; i++ {
			if m.status[i] != machine.StatusHalted || reported[i] {
				continue
			}
			reported[i] = true
			rep.Violations = append(rep.Violations, &Violation{
				Kind: ViolationHaltUndecided,
				Err: fmt.Errorf("process %d stopped without deciding: %w",
					i+1, task.ErrViolation),
				Proc:    i,
				Witness: g.pathTo(id),
			})
		}
	}

	comp := g.sccs()
	isDAC := !live.WaitFree && live.DACDistinguished >= 0

	// For resilience-bounded tasks we reason per SCC: the processes with
	// no step inside a cyclic SCC are "effectively crashed" in the
	// corresponding infinite executions; the cycle only violates
	// termination when that count is within the tolerated bound.
	// (Process statuses are constant across an SCC: decisions and aborts
	// are irrevocable, so a status change cannot lie on a cycle.)
	var sccStepping map[int]uint64
	if !live.WaitFree && !isDAC {
		sccStepping = make(map[int]uint64)
		for from := range g.configs {
			for it := g.edgeIter(from); ; {
				e, ok := it.next()
				if !ok {
					break
				}
				if comp[from] == comp[e.to] {
					sccStepping[comp[from]] |= 1 << uint(e.step.Proc)
				}
			}
		}
	}

	// Cycle-based obligations. An SCC is cyclic if it has an internal
	// edge (size > 1, or a self loop).
	for from := range g.configs {
		for it := g.edgeIter(from); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if comp[from] != comp[e.to] {
				continue
			}
			i := e.step.Proc
			var kind ViolationKind
			switch {
			case live.WaitFree:
				kind = ViolationWaitFree
			case isDAC && i == live.DACDistinguished:
				kind = ViolationDACTerminationA
			case isDAC:
				// Termination (b) prohibits only solo livelocks: the
				// cycle must consist purely of i-steps. Check whether an
				// i-only cycle through this edge exists — in the lifted
				// graph when the exploration was symmetry-reduced, since
				// quotient i-edges conflate steps of i's translates.
				if g.grp != nil {
					if !g.liftedSolo(from, e, comp) {
						continue
					}
				} else if !g.soloCycle(from, e.to, i, comp) {
					continue
				}
				kind = ViolationDACTerminationB
			default:
				// Resilience bound: count the poised processes that take
				// no step inside this SCC — they crash in the infinite
				// execution this cycle induces. Within the tolerance the
				// run is one the protocol must survive, so an undecided
				// stepper is a violation; beyond it, the run is excused.
				crashed := 0
				stepping := sccStepping[comp[from]]
				g.metaAt(from, &m)
				for j := 0; j < n; j++ {
					if m.live(j) && stepping&(1<<uint(j)) == 0 {
						crashed++
					}
				}
				if crashed > live.Tolerance {
					continue
				}
				kind = ViolationWaitFree
			}
			if reported[i] {
				continue
			}
			reported[i] = true
			wit := g.pathTo(from)
			var cyc []Step
			if g.grp != nil {
				// Quotient edges chain concrete steps of different orbit
				// translates; the lifted walk re-aligns them into one
				// concrete cycle schedule.
				cyc = g.liftedCycle(from, e, i, kind == ViolationDACTerminationB, comp)
			} else {
				cyc = append([]Step{e.step}, g.cyclePath(e.to, from, i, kind, comp)...)
			}
			rep.Violations = append(rep.Violations, &Violation{
				Kind: kind,
				Err: fmt.Errorf("process %d takes infinitely many steps without deciding: %w",
					i+1, task.ErrViolation),
				Proc:    i,
				Witness: wit,
				Cycle:   cyc,
			})
		}
	}
}

// soloCycle reports whether there is a cycle of pure i-steps passing
// through the edge from->to (both already known to share an SCC).
func (g *graph) soloCycle(from, to, i int, comp []int) bool {
	if from == to {
		return true
	}
	// BFS over i-edges from to, looking for from.
	seen := map[int]bool{to: true}
	queue := []int{to}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for it := g.edgeIter(at); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if e.step.Proc != i || comp[e.to] != comp[at] || seen[e.to] {
				continue
			}
			if e.to == from {
				return true
			}
			seen[e.to] = true
			queue = append(queue, e.to)
		}
	}
	return false
}

// cyclePath returns a schedule from config `from` back to config `to`
// inside one SCC; for Termination (b) violations it restricts the path
// to steps of process i (a solo cycle was already shown to exist).
func (g *graph) cyclePath(from, to, i int, kind ViolationKind, comp []int) []Step {
	if from == to {
		return nil
	}
	type crumb struct {
		prev int
		step Step
	}
	soloOnly := kind == ViolationDACTerminationB
	seen := map[int]crumb{from: {prev: -1}}
	queue := []int{from}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for it := g.edgeIter(at); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if comp[e.to] != comp[at] {
				continue
			}
			if soloOnly && e.step.Proc != i {
				continue
			}
			if _, dup := seen[e.to]; dup {
				continue
			}
			seen[e.to] = crumb{prev: at, step: e.step}
			if e.to == to {
				var rev []Step
				for at := to; at != from; at = seen[at].prev {
					rev = append(rev, seen[at].step)
				}
				for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
					rev[l], rev[r] = rev[r], rev[l]
				}
				return rev
			}
			queue = append(queue, e.to)
		}
	}
	return nil
}

// sccs computes strongly connected components (iterative Tarjan) and
// returns the component id of every configuration.
func (g *graph) sccs() []int {
	n := len(g.configs)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0
	nComp := 0

	type frame struct {
		v  int
		it edgeIter
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root, it: g.edgeIter(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if e, ok := f.it.next(); ok {
				w := e.to
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, it: g.edgeIter(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// finish v
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

package explore_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"setagree/internal/checkpoint"
	"setagree/internal/explore"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

// durableInstance is the pinned kill-resume instance: Algorithm 2 at
// n=4 with a mixed input vector, so the graph has nontrivial depth,
// both decision values, and (for symmetry=ids) a nontrivial group.
func durableInstance(t *testing.T) (*explore.System, task.Task) {
	t.Helper()
	prot := programs.Algorithm2(4, 1)
	sys, err := prot.System([]value.Value{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys, task.DAC{N: 4, P: 0}
}

// fixedClock makes event streams reproducible byte-for-byte across the
// reference, checkpointed, and resumed runs.
func fixedClock() time.Time {
	return time.Date(2026, 1, 2, 3, 4, 5, 678900000, time.UTC)
}

func dotOf(t *testing.T, rep *explore.Report) string {
	t.Helper()
	var b strings.Builder
	if err := rep.WriteDOT(&b, 1<<20); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	return b.String()
}

// sameReport asserts every externally observable artifact of the two
// explorations is identical: counts, violations with witnesses,
// valency analysis, and DOT rendering.
func sameReport(t *testing.T, label string, got, want *explore.Report) {
	t.Helper()
	if got.States != want.States || got.Transitions != want.Transitions || got.Quiescent != want.Quiescent {
		t.Errorf("%s: counts (%d,%d,%d), want (%d,%d,%d)", label,
			got.States, got.Transitions, got.Quiescent,
			want.States, want.Transitions, want.Quiescent)
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		t.Errorf("%s: violations differ: %v vs %v", label, got.Violations, want.Violations)
	}
	if !reflect.DeepEqual(got.Valency, want.Valency) {
		t.Errorf("%s: valency reports differ: %+v vs %+v", label, got.Valency, want.Valency)
	}
	if gd, wd := dotOf(t, got), dotOf(t, want); gd != wd {
		t.Errorf("%s: DOT output differs (%d vs %d bytes)", label, len(gd), len(wd))
	}
}

// TestKillResumeByteIdentical is the pinned durability suite: for
// every level barrier of the alg2 n=4 exploration, at workers 1 and 4
// and symmetry off and ids, resuming the barrier's snapshot yields a
// Report, witness set, DOT rendering, and event stream byte-identical
// to the uninterrupted run's. The snapshot-writing run itself must
// also be unperturbed.
func TestKillResumeByteIdentical(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		for _, sym := range []explore.Symmetry{explore.SymmetryOff, explore.SymmetryIDs} {
			workers, sym := workers, sym
			t.Run(fmt.Sprintf("workers=%d/symmetry=%s", workers, sym), func(t *testing.T) {
				t.Parallel()
				sys, tsk := durableInstance(t)
				base := explore.Options{
					Workers:        workers,
					Symmetry:       sym,
					Valency:        true,
					HeartbeatEvery: 64, // small enough for several heartbeats
				}

				var refEvents bytes.Buffer
				refOpts := base
				refOpts.Events = obs.NewEmitterAt(&refEvents, fixedClock)
				refRep, err := explore.Check(sys, tsk, refOpts)
				if err != nil {
					t.Fatalf("reference Check: %v", err)
				}

				// Full checkpointed run: copy the snapshot and record the
				// event-stream prefix at every level barrier.
				dir := t.TempDir()
				ckptPath := filepath.Join(dir, "run.ckpt")
				type snap struct {
					file   string
					prefix int
				}
				var snaps []snap
				var ckEvents bytes.Buffer
				ckOpts := base
				ckOpts.Events = obs.NewEmitterAt(&ckEvents, fixedClock)
				ckOpts.Checkpoint = explore.CheckpointOptions{
					Path: ckptPath,
					After: func(level int) error {
						buf, err := os.ReadFile(ckptPath)
						if err != nil {
							return err
						}
						cp := filepath.Join(dir, fmt.Sprintf("level%03d.ckpt", level))
						if err := os.WriteFile(cp, buf, 0o644); err != nil {
							return err
						}
						snaps = append(snaps, snap{cp, ckEvents.Len()})
						return nil
					},
				}
				ckRep, err := explore.Check(sys, tsk, ckOpts)
				if err != nil {
					t.Fatalf("checkpointed Check: %v", err)
				}
				sameReport(t, "checkpointed run", ckRep, refRep)
				if !bytes.Equal(ckEvents.Bytes(), refEvents.Bytes()) {
					t.Fatalf("checkpointing perturbed the event stream")
				}
				if len(snaps) < 3 {
					t.Fatalf("only %d level snapshots; instance too shallow to exercise resume", len(snaps))
				}

				for _, sn := range snaps {
					var resEvents bytes.Buffer
					resEvents.Write(ckEvents.Bytes()[:sn.prefix])
					resOpts := base
					resOpts.Events = obs.NewEmitterAt(&resEvents, fixedClock)
					rep, err := explore.Resume(sn.file, sys, tsk, resOpts)
					if err != nil {
						t.Fatalf("Resume(%s): %v", sn.file, err)
					}
					sameReport(t, filepath.Base(sn.file), rep, refRep)
					if !bytes.Equal(resEvents.Bytes(), refEvents.Bytes()) {
						t.Errorf("%s: resumed event stream differs from uninterrupted run", filepath.Base(sn.file))
					}
				}
			})
		}
	}
}

// errKilled simulates a crash at a level barrier via the After hook.
var errKilled = errors.New("simulated crash")

// TestKillResumeEventsFile exercises the real recovery path end to
// end: events to a file on disk, a hard stop that leaves terminal-event
// lines past the snapshot's sequence number, obs.TruncateEventsFile to
// trim them, and a resumed run appending to the trimmed file — whose
// final content must match the uninterrupted run's byte-for-byte.
func TestKillResumeEventsFile(t *testing.T) {
	t.Parallel()
	sys, tsk := durableInstance(t)
	base := explore.Options{Workers: 2, HeartbeatEvery: 64}

	var refEvents bytes.Buffer
	refOpts := base
	refOpts.Events = obs.NewEmitterAt(&refEvents, fixedClock)
	if _, err := explore.Check(sys, tsk, refOpts); err != nil {
		t.Fatalf("reference Check: %v", err)
	}

	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	eventsPath := filepath.Join(dir, "events.jsonl")
	ef, err := os.Create(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	killOpts := base
	killOpts.Events = obs.NewEmitterAt(ef, fixedClock)
	killOpts.Checkpoint = explore.CheckpointOptions{
		Path: ckptPath,
		After: func(level int) error {
			if level == 3 {
				return errKilled
			}
			return nil
		},
	}
	if _, err := explore.Check(sys, tsk, killOpts); !errors.Is(err, errKilled) {
		t.Fatalf("killed Check returned %v, want errKilled", err)
	}
	if err := killOpts.Events.Sync(); err != nil {
		t.Fatalf("Sync after kill: %v", err)
	}
	ef.Close()

	info, err := explore.PeekCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("PeekCheckpoint: %v", err)
	}
	if info.Level != 3 || info.States == 0 || info.Expanded == 0 {
		t.Fatalf("PeekCheckpoint = %+v, want level 3 with progress", info)
	}
	// The killed run's file carries the explore.error terminal event,
	// which the snapshot does not know about.
	preTrim, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(preTrim, []byte("explore.error")) {
		t.Fatalf("killed run emitted no terminal event")
	}
	if err := obs.TruncateEventsFile(eventsPath, info.EventSeq); err != nil {
		t.Fatalf("TruncateEventsFile: %v", err)
	}

	ef, err = os.OpenFile(eventsPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	resOpts := base
	resOpts.Events = obs.NewEmitterAt(ef, fixedClock)
	if _, err := explore.Resume(ckptPath, sys, tsk, resOpts); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := resOpts.Events.Sync(); err != nil {
		t.Fatalf("Sync after resume: %v", err)
	}
	ef.Close()

	got, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refEvents.Bytes()) {
		t.Errorf("resumed events file differs from uninterrupted stream (%d vs %d bytes)",
			len(got), refEvents.Len())
	}
}

// TestContextCancelWritesFinalCheckpoint pins the cancellation
// contract: a cancelled exploration stops at the next level barrier,
// writes a final snapshot, flushes partial counters, emits exactly one
// terminal event, and returns an error classified by ctx.Err(); the
// snapshot then resumes to the uninterrupted verdict.
func TestContextCancelWritesFinalCheckpoint(t *testing.T) {
	t.Parallel()
	sys, tsk := durableInstance(t)

	refRep, err := explore.Check(sys, tsk, explore.Options{Workers: 2})
	if err != nil {
		t.Fatalf("reference Check: %v", err)
	}

	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := obs.NewSink()
	var events bytes.Buffer
	rep, err := explore.Check(sys, tsk, explore.Options{
		Workers: 2,
		Ctx:     ctx,
		Obs:     sink,
		Events:  obs.NewEmitterAt(&events, fixedClock),
		Checkpoint: explore.CheckpointOptions{
			Path:        ckptPath,
			EveryLevels: 1 << 20, // periodic snapshots off: only the cancellation snapshot
			After: func(level int) error {
				t.Fatalf("periodic snapshot at level %d despite EveryLevels", level)
				return nil
			},
		},
	})
	_ = rep
	// Not cancelled yet: EveryLevels larger than the level count means
	// the run completes without snapshots. Re-run with a hook-triggered
	// cancel to stop mid-exploration.
	if err != nil {
		t.Fatalf("uncancelled run failed: %v", err)
	}
	if _, err := os.Stat(ckptPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot written despite EveryLevels gate: %v", err)
	}

	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	events.Reset()
	rep, err = explore.Check(sys, tsk, explore.Options{
		Workers: 2,
		Ctx:     ctx,
		Obs:     sink,
		Events:  obs.NewEmitterAt(&events, fixedClock),
		Checkpoint: explore.CheckpointOptions{
			Path: ckptPath,
			After: func(level int) error {
				if level == 2 {
					cancel()
				}
				return nil
			},
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Check returned %v, want context.Canceled", err)
	}
	if rep == nil || rep.States == 0 {
		t.Fatalf("cancelled Check returned no partial report: %+v", rep)
	}
	if n := bytes.Count(events.Bytes(), []byte(`"event":"explore.error"`)); n != 1 {
		t.Fatalf("cancelled run emitted %d terminal explore.error events, want 1:\n%s", n, events.Bytes())
	}
	if snap := sink.Snapshot(); snap.Counters["explore.errors"] != 1 {
		t.Fatalf("explore.errors counter = %d, want 1", snap.Counters["explore.errors"])
	}

	resRep, err := explore.Resume(ckptPath, sys, tsk, explore.Options{Workers: 2})
	if err != nil {
		t.Fatalf("Resume after cancel: %v", err)
	}
	sameReport(t, "resume after cancel", resRep, refRep)
}

// TestResumeRejections pins every refusal class of explore.Resume: a
// snapshot from different inputs or a different symmetry mode
// (fingerprint), damaged or truncated bytes, a foreign magic number, a
// future payload version, and a wrong kind. Each rejected resume still
// honours the terminal-event contract.
func TestResumeRejections(t *testing.T) {
	t.Parallel()
	sys, tsk := durableInstance(t)
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	opts := explore.Options{
		Workers: 2,
		Checkpoint: explore.CheckpointOptions{
			Path: ckptPath,
			After: func(level int) error {
				if level == 2 {
					return errKilled
				}
				return nil
			},
		},
	}
	if _, err := explore.Check(sys, tsk, opts); !errors.Is(err, errKilled) {
		t.Fatalf("killed Check returned %v", err)
	}
	raw, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	write := func(name string, buf []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Fingerprint: same protocol, different inputs.
	otherSys, err := programs.Algorithm2(4, 1).System([]value.Value{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var events bytes.Buffer
	resOpts := explore.Options{Workers: 2, Events: obs.NewEmitterAt(&events, fixedClock)}
	if _, err := explore.Resume(ckptPath, otherSys, tsk, resOpts); !errors.Is(err, checkpoint.ErrFingerprint) {
		t.Errorf("resume with different inputs: %v, want ErrFingerprint", err)
	}
	if n := bytes.Count(events.Bytes(), []byte(`"event":"explore.error"`)); n != 1 {
		t.Errorf("rejected resume emitted %d terminal events, want 1", n)
	}

	// Fingerprint: same system, different symmetry mode.
	if _, err := explore.Resume(ckptPath, sys, tsk, explore.Options{Symmetry: explore.SymmetryIDs}); !errors.Is(err, checkpoint.ErrFingerprint) {
		t.Errorf("resume with different symmetry: %v, want ErrFingerprint", err)
	}

	// Damage classes on the container.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x10
	if _, err := explore.Resume(write("flip.ckpt", flipped), sys, tsk, explore.Options{}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("bit-flipped snapshot: %v, want ErrCorrupt", err)
	}
	if _, err := explore.Resume(write("trunc.ckpt", raw[:len(raw)/2]), sys, tsk, explore.Options{}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("truncated snapshot: %v, want ErrCorrupt", err)
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := explore.Resume(write("magic.ckpt", bad), sys, tsk, explore.Options{}); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Errorf("bad magic: %v, want ErrBadMagic", err)
	}

	// Version skew and wrong kind, via hand-written containers.
	h, err := checkpoint.Peek(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	skew := filepath.Join(dir, "skew.ckpt")
	if err := checkpoint.Write(skew, checkpoint.Header{Kind: h.Kind, Version: h.Version + 1, Fingerprint: h.Fingerprint}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := explore.Resume(skew, sys, tsk, explore.Options{}); !errors.Is(err, checkpoint.ErrVersion) {
		t.Errorf("version skew: %v, want ErrVersion", err)
	}
	foreign := filepath.Join(dir, "foreign.ckpt")
	if err := checkpoint.Write(foreign, checkpoint.Header{Kind: "jobs.journal", Version: 1, Fingerprint: h.Fingerprint}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := explore.Resume(foreign, sys, tsk, explore.Options{}); !errors.Is(err, checkpoint.ErrKind) {
		t.Errorf("foreign kind: %v, want ErrKind", err)
	}

	// A rejected snapshot must also fail PeekCheckpoint cleanly.
	if _, err := explore.PeekCheckpoint(write("peek.ckpt", flipped)); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("PeekCheckpoint on damage: %v, want ErrCorrupt", err)
	}

	// And the undamaged snapshot still resumes to the right verdict.
	refRep, err := explore.Check(sys, tsk, explore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	resRep, err := explore.Resume(ckptPath, sys, tsk, explore.Options{Workers: 2})
	if err != nil {
		t.Fatalf("Resume of intact snapshot: %v", err)
	}
	sameReport(t, "intact resume", resRep, refRep)
}

// TestResumeAcrossWorkerCounts checks a snapshot written at one worker
// count resumes at another — determinism holds because worker count is
// excluded from the fingerprint by design.
func TestResumeAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	sys, tsk := durableInstance(t)
	refRep, err := explore.Check(sys, tsk, explore.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ckptPath := filepath.Join(dir, "run.ckpt")
	opts := explore.Options{
		Workers: 4,
		Checkpoint: explore.CheckpointOptions{
			Path: ckptPath,
			After: func(level int) error {
				if level == 4 {
					return errKilled
				}
				return nil
			},
		},
	}
	if _, err := explore.Check(sys, tsk, opts); !errors.Is(err, errKilled) {
		t.Fatalf("killed Check returned %v", err)
	}
	resRep, err := explore.Resume(ckptPath, sys, tsk, explore.Options{Workers: 1})
	if err != nil {
		t.Fatalf("Resume at workers=1 of a workers=4 snapshot: %v", err)
	}
	sameReport(t, "cross-worker resume", resRep, refRep)
}

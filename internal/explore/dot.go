package explore

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the explored configuration graph in Graphviz DOT
// format: one node per configuration (colored by valence when valency
// analysis ran — bivalent gold, 0-valent blue, 1-valent red), one edge
// per transition labelled with the step. Intended for small instances;
// graphs beyond maxNodes are truncated with a warning comment.
func (r *Report) WriteDOT(w io.Writer, maxNodes int) error {
	if r.g == nil {
		return fmt.Errorf("explore: report has no retained graph: %w", ErrNoValency)
	}
	if maxNodes <= 0 {
		maxNodes = 512
	}
	g := r.g
	var b strings.Builder
	b.WriteString("digraph configurations {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=circle, fontsize=10];\n")
	n := len(g.configs)
	if n > maxNodes {
		n = maxNodes
		fmt.Fprintf(&b, "  // truncated to the first %d of %d configurations\n", n, len(g.configs))
	}
	var m metaRec
	for id := 0; id < n; id++ {
		attrs := ""
		if len(g.valence) == len(g.configs) {
			switch {
			case g.valence[id].Bivalent():
				attrs = ", style=filled, fillcolor=gold"
			case g.valence[id]&CanDecide0 != 0:
				attrs = ", style=filled, fillcolor=lightblue"
			case g.valence[id]&CanDecide1 != 0:
				attrs = ", style=filled, fillcolor=lightcoral"
			}
		}
		g.metaAt(id, &m)
		if m.quiescent() {
			attrs += ", shape=doublecircle"
		}
		fmt.Fprintf(&b, "  c%d [label=\"%d\"%s];\n", id, id, attrs)
	}
	for from := 0; from < n; from++ {
		for it := g.edgeIter(from); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if e.to >= n {
				// Truncation dropped the target node; emitting the edge
				// would reference an undeclared (dangling) node id.
				continue
			}
			fmt.Fprintf(&b, "  c%d -> c%d [label=\"%s\", fontsize=8];\n",
				from, e.to, dotEscape(e.step.String()))
		}
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("explore: write dot: %w", err)
	}
	return nil
}

func dotEscape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

package explore

import (
	"errors"
	"fmt"
)

// ErrNoValency reports an adversary request on a report explored
// without Options.Valency.
var ErrNoValency = errors.New("explore: adversarial schedule requires valency analysis")

// AdversaryResult is the outcome of the bivalence-preserving adversary.
type AdversaryResult struct {
	// Schedule is the constructed run prefix (each step moves to a
	// bivalent configuration while one exists).
	Schedule []Step
	// Cycle, when non-empty, is a loop of steps through bivalent
	// configurations: the adversary can keep the protocol bivalent —
	// hence undecided — forever. For protocols with wait-free
	// obligations this cannot happen (it would be a termination
	// violation); for n-DAC protocols it is exactly the weak-termination
	// loophole the paper's objects are built around.
	Cycle []Step
	// CriticalID is the critical configuration the schedule ends at
	// when no cycle exists (every successor univalent), -1 otherwise.
	CriticalID int
}

// KeepsBivalentForever reports whether the adversary found an infinite
// bivalent run.
func (r *AdversaryResult) KeepsBivalentForever() bool { return len(r.Cycle) > 0 }

// Adversary mechanizes the proofs' scheduling adversary (the engine of
// Claims 4.2.5 and 5.2.2): starting from the initial configuration, it
// repeatedly takes any step whose successor is still bivalent. Two
// outcomes are possible on a fully explored graph:
//
//   - the walk revisits a bivalent configuration: the adversary owns an
//     infinite bivalent run (Cycle), or
//   - the walk reaches a configuration with no bivalent successor — a
//     critical configuration, the pivot the impossibility proofs
//     interrogate (CriticalID).
//
// The report must have been produced with Options.Valency set, and the
// initial configuration must be bivalent.
func (r *Report) Adversary() (*AdversaryResult, error) {
	if r.Valency == nil || r.g == nil || len(r.g.valence) == 0 {
		return nil, ErrNoValency
	}
	if r.g.grp != nil {
		// Region paths concatenate quotient edges, whose concrete steps
		// belong to different orbit translates; the spliced schedule
		// would not be a real execution. Re-explore unreduced.
		return nil, fmt.Errorf("explore: the adversary walks the concrete configuration graph; re-explore with SymmetryOff: %w",
			ErrSymmetryUnsupported)
	}
	g := r.g
	if !g.valence[0].Bivalent() {
		return nil, fmt.Errorf("initial configuration is %s: %w", g.valence[0], ErrNoValency)
	}
	res := &AdversaryResult{CriticalID: -1}

	// The bivalent region: configurations reachable from the root
	// through bivalent configurations only. BFS with parent pointers for
	// path reconstruction.
	type crumb struct {
		prev int
		step Step
	}
	region := map[int]crumb{0: {prev: -1}}
	queue := []int{0}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		for it := g.edgeIter(at); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if !g.valence[e.to].Bivalent() {
				continue
			}
			if _, seen := region[e.to]; seen {
				continue
			}
			region[e.to] = crumb{prev: at, step: e.step}
			queue = append(queue, e.to)
		}
	}
	pathTo := func(id int) []Step {
		var rev []Step
		for at := id; region[at].prev >= 0; at = region[at].prev {
			rev = append(rev, region[at].step)
		}
		for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
			rev[l], rev[r] = rev[r], rev[l]
		}
		return rev
	}

	// regionPath finds a step path from one region config to another
	// that stays inside the bivalent region (empty when from == to).
	regionPath := func(from, to int) []Step {
		if from == to {
			return nil
		}
		seen := map[int]crumb{from: {prev: -1}}
		q := []int{from}
		for len(q) > 0 {
			at := q[0]
			q = q[1:]
			for it := g.edgeIter(at); ; {
				e, ok := it.next()
				if !ok {
					break
				}
				if _, in := region[e.to]; !in {
					continue
				}
				if _, dup := seen[e.to]; dup {
					continue
				}
				seen[e.to] = crumb{prev: at, step: e.step}
				if e.to == to {
					var rev []Step
					for x := to; seen[x].prev >= 0; x = seen[x].prev {
						rev = append(rev, seen[x].step)
					}
					for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
						rev[l], rev[r] = rev[r], rev[l]
					}
					return rev
				}
				q = append(q, e.to)
			}
		}
		return nil
	}

	// Look for a cycle inside the region with an iterative three-color
	// DFS: a gray-hitting edge closes a bivalent loop.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(region))
	type frame struct {
		at int
		it edgeIter
	}
	frames := []frame{{at: 0, it: g.edgeIter(0)}}
	color[0] = gray
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if e, ok := f.it.next(); ok {
			if _, in := region[e.to]; !in {
				continue
			}
			switch color[e.to] {
			case gray:
				// Bivalent cycle: e.to -> ... -> f.at -> e.to.
				res.Schedule = pathTo(e.to)
				res.Cycle = append(regionPath(e.to, f.at), e.step)
				return res, nil
			case white:
				color[e.to] = gray
				frames = append(frames, frame{at: e.to, it: g.edgeIter(e.to)})
			}
			continue
		}
		color[f.at] = black
		frames = frames[:len(frames)-1]
	}

	// Acyclic region: find a region config with no bivalent successor —
	// a critical configuration (it exists because the region is finite
	// and acyclic).
	for id := range region {
		critical := true
		for it := g.edgeIter(id); ; {
			e, ok := it.next()
			if !ok {
				break
			}
			if g.valence[e.to].Bivalent() {
				critical = false
				break
			}
		}
		if critical {
			res.CriticalID = id
			res.Schedule = pathTo(id)
			return res, nil
		}
	}
	return nil, fmt.Errorf("explore: bivalent region has neither cycle nor critical configuration: %w", ErrNoValency)
}

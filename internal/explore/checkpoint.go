// Durable snapshots of the level-synchronized BFS.
//
// A snapshot is taken only at level barriers, where the search state is
// a handful of counters plus the explored graph. The graph is NOT
// serialized as raw configurations — binary keys are injective but not
// decodable — and it does not need to be: the BFS spanning tree (parent
// id + the Step that produced each configuration) determines every
// stored configuration by replay, one machine.Resume + one object Step
// each, far cheaper than re-expanding the graph. Cross edges (with
// their symmetry annotations) are stored explicitly; interning keys,
// canonicalizing group elements, and the graph.canon column are
// recomputed during replay, which doubles as an integrity check — a
// corrupted tree surfaces as a replay mismatch or duplicate key, never
// as a silently wrong graph.
//
// The payload rides in the internal/checkpoint container, which rejects
// foreign files, damaged bytes, version skew, and — via the system
// fingerprint below — snapshots taken from a different instance than
// the resume was asked to continue. MaxStates and Workers are
// deliberately NOT fingerprinted: exploration is deterministic at any
// worker count, and raising the state cap on resume is a feature, not a
// mismatch.
package explore

import (
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"setagree/internal/checkpoint"
	"setagree/internal/machine"
	"setagree/internal/task"
	"setagree/internal/value"
)

// checkpointKind and checkpointVersion identify the explorer's snapshot
// payload schema inside the generic container.
const (
	checkpointKind    = "explore.bfs"
	checkpointVersion = 1
)

// fingerprint returns the snapshot fingerprint of the search's
// instance: FNV-1a over the programs, object specs, root configuration
// key (which covers the inputs and every object's initial state), task
// identity, and symmetry mode. Memoized; the root must be interned.
func (st *search) fingerprint() uint64 {
	if st.fpSet {
		return st.fp
	}
	g := st.g
	f := checkpoint.NewFingerprint().String(checkpointKind)
	f = f.Int(g.sys.Procs())
	for _, p := range g.sys.Programs {
		f = fingerprintProgram(f, p)
	}
	f = f.Int(len(g.sys.Objects))
	for _, o := range g.sys.Objects {
		f = f.String(o.Name())
	}
	f = f.Write(g.configs[0].AppendKey(nil))
	if g.tsk != nil {
		f = f.String(g.tsk.Name()).Int(g.tsk.Procs())
	} else {
		f = f.String("")
	}
	f = f.Int(int(st.opts.Symmetry))
	st.fp, st.fpSet = uint64(f), true
	return st.fp
}

func fingerprintProgram(f checkpoint.Fingerprint, p *machine.Program) checkpoint.Fingerprint {
	f = f.String(p.Name).Int(p.NumRegs).Int(len(p.Instrs))
	for _, in := range p.Instrs {
		f = f.Int(int(in.Kind)).Int(int(in.Method)).Int(in.Obj).Int(in.Target).Int(int(in.Dst))
		f = fingerprintOperand(f, in.A)
		f = fingerprintOperand(f, in.B)
	}
	return f
}

func fingerprintOperand(f checkpoint.Fingerprint, o machine.Operand) checkpoint.Fingerprint {
	if o.IsReg {
		return f.Int(1).Int(int(o.Reg))
	}
	return f.Int(0).Uint64(uint64(int64(o.Const)))
}

// writeCheckpoint persists the barrier snapshot to
// Options.Checkpoint.Path. The delta encode runs at the barrier (the
// section caches are single-threaded), but the container commit —
// dominated by write+fsync of the whole payload — runs on a background
// goroutine so the next levels explore while the snapshot lands on
// disk. At most one write is ever in flight: every caller drains the
// previous one via ckptWait first, which is also what makes reusing
// the payload scratch safe. wait=true (the interrupt/final snapshot,
// and barriers with an After hook, whose contract is "the snapshot for
// this level is on disk") blocks until the commit completes.
//
// The time the barrier loop spends blocked on checkpointing — encode
// plus any drain — is accounted to the explore.checkpoint_ns counter
// (with explore.checkpoints / checkpoint_bytes beside it), so a single
// instrumented run reports its own durable-write overhead
// (checkpoint_ns over wall time) without a differential baseline.
func (st *search) writeCheckpoint(wait bool) error {
	if err := st.ckptWait(); err != nil {
		return err
	}
	start := time.Now()
	h := checkpoint.Header{
		Kind:        checkpointKind,
		Version:     checkpointVersion,
		Fingerprint: st.fingerprint(),
	}
	sections := st.encodeSnapshot()
	bytes := 0
	for _, s := range sections {
		bytes += len(s)
	}
	done := make(chan error, 1)
	st.ckptPending = done
	path, o := st.opts.Checkpoint.Path, st.opts.Obs
	go func() {
		err := checkpoint.WriteV(path, h, sections)
		if o != nil && err == nil {
			o.Counter("explore.checkpoints").Inc()
			o.Counter("explore.checkpoint_bytes").Add(int64(bytes))
		}
		done <- err
	}()
	encode := time.Since(start)
	st.addCkptNs(encode)
	if o != nil {
		o.Counter("explore.checkpoint_encode_ns").Add(int64(encode))
	}
	if wait {
		return st.ckptWait()
	}
	return nil
}

// ckptWait drains the in-flight snapshot write, if any, and returns
// its result. Called before every new snapshot, by the final/interrupt
// paths, and at every bfs exit, so no write outlives the search.
func (st *search) ckptWait() error {
	if st.ckptPending == nil {
		return nil
	}
	start := time.Now()
	err := <-st.ckptPending
	st.ckptPending = nil
	st.addCkptNs(time.Since(start))
	return err
}

func (st *search) addCkptNs(d time.Duration) {
	if o := st.opts.Obs; o != nil {
		o.Counter("explore.checkpoint_ns").Add(int64(d))
	}
}

// encodeSnapshot renders the barrier state: counters first (so peeks
// decode a bounded prefix), then the spanning tree, then the edge lists
// of the expanded configurations.
//
// Both payload sections only grow between barriers — configurations
// are interned append-only and a configuration's edge list is final
// once its level is expanded — so the encoded section bytes are cached
// on the search and each snapshot encodes just the delta since the
// previous one. The sections are returned by reference for
// checkpoint.WriteV, not assembled into one payload: the background
// writer reads them while the BFS explores on, which is safe because
// only the next encodeSnapshot call appends to them and every caller
// drains the in-flight write first (see writeCheckpoint). The file is
// still rewritten whole — the snapshot stays one atomic,
// self-checksummed unit.
func (st *search) encodeSnapshot() [][]byte {
	g := st.g
	buf := st.ckptTree
	first := st.ckptTreeN
	if first < 1 {
		first = 1 // id 0 is the root; the tree section starts at id 1
	}
	for id := first; id < len(g.configs); id++ {
		n := len(buf)
		buf = slices.Grow(buf, treeRecMax)[:n+treeRecMax]
		i := putV(buf, n, int64(g.parent[id]))
		buf = buf[:putStep(buf, i, g.parentE[id])]
	}
	st.ckptTree, st.ckptTreeN = buf, len(g.configs)
	if g.disk == nil {
		buf = st.ckptEdges
		for id := st.ckptEdgeN; id < st.expanded; id++ {
			es := g.edges[id]
			n := len(buf)
			rec := binary.MaxVarintLen64 + len(es)*edgeRecMax
			buf = slices.Grow(buf, rec)[:n+rec]
			i := putV(buf, n, int64(len(es)))
			for _, en := range es {
				i = putV(buf, i, int64(en.to))
				i = putStep(buf, i, en.step)
				i = putV(buf, i, int64(en.g))
			}
			buf = buf[:i]
		}
		st.ckptEdges, st.ckptEdgeN = buf, st.expanded
	}

	e := checkpoint.Enc{Buf: st.ckptBuf[:0]}
	e.Byte(byte(st.opts.Symmetry))
	order := 0
	if g.grp != nil {
		order = len(g.grp.perms)
	}
	e.Int(order)
	e.Int(st.level)
	e.Int(st.expanded)
	e.Int(st.rep.Transitions)
	e.Int(st.rep.Quiescent)
	e.Int(st.frontierMax)
	e.Int(st.hbNext)
	e.Int(st.symHits)
	e.Int(st.orbitMax)
	e.Varint(st.opts.Events.Seq())
	e.Int(len(g.configs))
	st.ckptBuf = e.Buf
	if d := g.disk; d != nil {
		// The Edges arena already holds the expanded configurations'
		// edge lists in exactly this section's encoding; serve the
		// durable prefix zero-copy. The chunk views stay stable while
		// the background writer reads them: later merges only append at
		// or beyond edgeDurable.
		return append([][]byte{e.Buf, st.ckptTree}, d.s.Edges.Sections(d.edgeDurable)...)
	}
	return [][]byte{e.Buf, st.ckptTree, st.ckptEdges}
}

// Upper bounds on one encoded record, for the single capacity
// reservation each encodeSnapshot append makes: a Step is one raw byte
// plus six varints; tree records prepend the parent id, edge records
// add the target and group index.
const (
	stepLenMax = 1 + 6*binary.MaxVarintLen64
	treeRecMax = binary.MaxVarintLen64 + stepLenMax
	edgeRecMax = 2*binary.MaxVarintLen64 + stepLenMax
)

// putV writes the signed varint v at buf[i:] (the caller has reserved
// room) and returns the end offset — byte-identical to
// binary.PutVarint, with the dominant one-byte case inlined. Together
// with the single capacity reservation per record this keeps the
// snapshot encoder off the per-byte grow checks and per-field call
// overhead of append-style encoding, which otherwise dominate the
// barrier stall on snapshot-sized graphs.
func putV(buf []byte, i int, v int64) int {
	u := uint64(v<<1) ^ uint64(v>>63)
	if u < 0x80 {
		buf[i] = byte(u)
		return i + 1
	}
	return i + binary.PutUvarint(buf[i:], u)
}

// putStep writes s at buf[i:] and returns the end offset, producing
// exactly the bytes decodeStep reads back.
func putStep(buf []byte, i int, s Step) int {
	buf[i] = byte(s.Op.Method)
	i++
	i = putV(buf, i, int64(s.Op.Arg))
	i = putV(buf, i, int64(s.Op.Label))
	i = putV(buf, i, int64(s.Resp))
	i = putV(buf, i, int64(s.Proc))
	i = putV(buf, i, int64(s.Obj))
	i = putV(buf, i, int64(s.Branch))
	return i
}

func decodeStep(d *checkpoint.Dec) Step {
	var s Step
	s.Op.Method = value.Method(d.Byte())
	s.Op.Arg = value.Value(d.Varint())
	s.Op.Label = d.Int()
	s.Resp = value.Value(d.Varint())
	s.Proc = d.Int()
	s.Obj = d.Int()
	s.Branch = d.Int()
	return s
}

// Resume continues a checkpointed exploration of sys/tsk from the
// snapshot at path, with the invariant that the completed run's Report,
// witness schedules, DOT output, and event stream are byte-identical to
// an uninterrupted Check of the same instance (event wall-clock
// timestamps aside). The snapshot must have been taken from the same
// system, task, and symmetry mode — mismatches are rejected with
// checkpoint.ErrFingerprint before any payload byte is trusted —
// while MaxStates and Workers may differ freely. When opts.Events is
// set, its sequence counter is fast-forwarded to the snapshot's; pair
// with obs.TruncateEventsFile to trim a reused events file first.
//
// Past argument validation Resume follows Check's error contract:
// partial counters are flushed and exactly one terminal event is
// emitted on every exit path, including a rejected snapshot.
func Resume(path string, sys *System, tsk task.Task, opts Options) (*Report, error) {
	st, rep, err := newSearch(sys, tsk, &opts)
	if err != nil {
		return rep, err
	}
	if err := st.restore(path); err != nil {
		st.rep.States = len(st.g.configs)
		st.flush("explore.error", err)
		return st.rep, err
	}
	return st.run()
}

// corruptf wraps a replay-integrity failure.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("explore: checkpoint: "+format+": %w",
		append(args, checkpoint.ErrCorrupt)...)
}

// restore loads the snapshot at path into a freshly constructed search
// (root interned, group built), replaying the spanning tree to rebuild
// the configuration table.
func (st *search) restore(path string) error {
	g, opts := st.g, st.opts
	_, payload, err := checkpoint.Read(path, checkpointKind, checkpointVersion, st.fingerprint())
	if err != nil {
		return err
	}
	d := checkpoint.NewDec(payload)
	mode := Symmetry(d.Byte())
	order := d.Int()
	level := d.Int()
	expanded := d.Int()
	transitions := d.Int()
	quiescent := d.Int()
	frontierMax := d.Int()
	hbNext := d.Int()
	symHits := d.Int()
	orbitMax := d.Int()
	eventSeq := d.Varint()
	numConfigs := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if mode != opts.Symmetry {
		return corruptf("symmetry mode %v, resume asked for %v", mode, opts.Symmetry)
	}
	wantOrder := 0
	if g.grp != nil {
		wantOrder = len(g.grp.perms)
	}
	if order != wantOrder {
		return corruptf("group order %d, rebuilt group has %d", order, wantOrder)
	}
	// numConfigs-1 tree entries at >= 8 bytes each must fit the payload;
	// this bounds the replay loop before trusting the decoded count.
	if numConfigs < 1 || numConfigs-1 > d.Len() {
		return corruptf("implausible configuration count %d (%d payload bytes left)", numConfigs, d.Len())
	}
	if expanded < 0 || expanded > numConfigs || level < 0 ||
		transitions < 0 || quiescent < 0 || frontierMax < 0 ||
		symHits < 0 || orbitMax < 0 || eventSeq < 0 {
		return corruptf("negative or inconsistent counters")
	}

	n := g.sys.Procs()
	sc := keyScratchPool.Get().(*keyScratch)
	defer keyScratchPool.Put(sc)
	for id := 1; id < numConfigs; id++ {
		parent := d.Int()
		s := decodeStep(d)
		if err := d.Err(); err != nil {
			return err
		}
		if parent < 0 || parent >= id {
			return corruptf("config %d: parent %d out of tree order", id, parent)
		}
		if s.Proc < 0 || s.Proc >= n {
			return corruptf("config %d: process %d out of range", id, s.Proc)
		}
		nexts, steps, err := successors(g.sys, g.configs[parent], s.Proc)
		if err != nil {
			return corruptf("config %d: replay: %v", id, err)
		}
		if s.Branch < 0 || s.Branch >= len(nexts) || steps[s.Branch] != s {
			return corruptf("config %d: stored step %v does not replay from its parent", id, s)
		}
		nc := nexts[s.Branch]
		var key []byte
		gi := 0
		if g.grp != nil {
			key, gi, _ = g.grp.canonical(sc, nc)
		} else {
			sc.best = nc.AppendKey(sc.best[:0])
			key = sc.best
		}
		if _, dup := g.lookup(key); dup {
			return corruptf("config %d: duplicate configuration in spanning tree", id)
		}
		if _, err := g.intern(key, nc, parent, s, gi); err != nil {
			return err
		}
	}
	for id := 0; id < expanded; id++ {
		// In disk mode the validated record bytes — already in the edge
		// arena's encoding — are appended to it verbatim at the end of
		// this iteration.
		recStart := len(payload) - d.Len()
		cnt := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if cnt < 0 || cnt > d.Len() {
			return corruptf("config %d: implausible edge count %d", id, cnt)
		}
		for k := 0; k < cnt; k++ {
			to := d.Int()
			s := decodeStep(d)
			gi := d.Int()
			if err := d.Err(); err != nil {
				return err
			}
			if to < 0 || to >= numConfigs {
				return corruptf("config %d: edge to %d out of range", id, to)
			}
			if gi < 0 || gi >= max(order, 1) {
				return corruptf("config %d: edge group index %d out of range", id, gi)
			}
			if g.disk == nil {
				g.edges[id] = append(g.edges[id], edge{to: to, step: s, g: gi})
			}
		}
		if dk := g.disk; dk != nil {
			off, err := dk.s.Edges.Append(payload[recStart : len(payload)-d.Len()])
			if err != nil {
				return err
			}
			dk.edgeOff = append(dk.edgeOff, off)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Len() != 0 {
		return corruptf("%d trailing payload bytes", d.Len())
	}
	if dk := g.disk; dk != nil {
		dk.edgeDurable = dk.s.Edges.Len()
		g.spillExpanded(1, expanded)
	}

	st.level = level
	st.expanded = expanded
	st.frontierMax = frontierMax
	st.hbNext = hbNext
	st.symHits = symHits
	st.orbitMax = orbitMax
	st.rep.Transitions = transitions
	st.rep.Quiescent = quiescent
	opts.Events.SetSeq(eventSeq)
	return nil
}

// CheckpointInfo summarizes a snapshot without resuming it.
type CheckpointInfo struct {
	// Version is the payload schema version.
	Version uint64
	// Fingerprint is the stored system fingerprint. PeekCheckpoint does
	// not verify it (the system may not be reconstructed yet); Resume
	// does.
	Fingerprint uint64
	// Symmetry is the snapshot's reduction mode; GroupOrder the
	// materialized group's order (0 when off).
	Symmetry   Symmetry
	GroupOrder int
	// Level is the number of completed BFS levels; States the interned
	// configurations; Expanded how many of them have been expanded.
	Level    int
	States   int
	Expanded int
	// Transitions is the labelled-edge count so far.
	Transitions int
	// EventSeq is the event stream's sequence counter at the snapshot —
	// the maxSeq to hand obs.TruncateEventsFile before resuming into a
	// reused events file.
	EventSeq int64
}

// PeekCheckpoint reads the snapshot summary at path, validating
// integrity, kind, and version but not the fingerprint.
func PeekCheckpoint(path string) (*CheckpointInfo, error) {
	h, payload, err := checkpoint.ReadUnverified(path, checkpointKind, checkpointVersion)
	if err != nil {
		return nil, err
	}
	d := checkpoint.NewDec(payload)
	info := &CheckpointInfo{Version: h.Version, Fingerprint: h.Fingerprint}
	info.Symmetry = Symmetry(d.Byte())
	info.GroupOrder = d.Int()
	info.Level = d.Int()
	info.Expanded = d.Int()
	info.Transitions = d.Int()
	d.Int() // quiescent
	d.Int() // frontierMax
	d.Int() // hbNext
	d.Int() // symHits
	d.Int() // orbitMax
	info.EventSeq = d.Varint()
	info.States = d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return info, nil
}

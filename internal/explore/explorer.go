package explore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"setagree/internal/machine"
	"setagree/internal/obs"
	"setagree/internal/spec"
	"setagree/internal/store"
	"setagree/internal/task"
	"setagree/internal/value"
)

// Exploration failure modes.
var (
	// ErrStateLimit reports that the reachable graph exceeded
	// Options.MaxStates.
	ErrStateLimit = errors.New("state limit exceeded")
	// ErrNotBinary reports that valency analysis was requested for a
	// protocol deciding values outside {0, 1}.
	ErrNotBinary = errors.New("valency analysis requires binary decisions")
)

// Options tunes an exploration.
type Options struct {
	// MaxStates caps the number of distinct configurations explored
	// (default 1 << 21).
	MaxStates int
	// Workers is the number of goroutines expanding frontier shards of
	// the level-synchronized BFS (default runtime.GOMAXPROCS(0)).
	// Exploration is deterministic at every setting: successors are
	// merged into the configuration table single-threaded at each level
	// barrier in canonical (parent id, step order) order, so
	// configuration ids — and with them Report counts, witness
	// schedules, valency labels, and DOT output — are byte-identical at
	// Workers 1 and Workers 64.
	Workers int
	// Valency enables valence labelling of every configuration and
	// critical-configuration detection. It requires a binary task (all
	// decisions in {0, 1}).
	Valency bool
	// Symmetry selects orbit-canonical interning (see the package's
	// symmetry.go): configurations equal up to an admissible process-id
	// (and, for SymmetryValues, value) permutation are explored once,
	// shrinking the graph by up to the symmetry group's order. Verdicts
	// match an unreduced run, and witnesses stay concrete, replayable
	// schedules — equal to unreduced ones up to a uniform permutation.
	// Check rejects the mode with ErrNotSymmetric when the system lacks
	// the required structure, and combinations that are unsound on the
	// quotient (resilience-bounded liveness; Valency with
	// SymmetryValues) with ErrSymmetryUnsupported. Default off.
	Symmetry Symmetry
	// Obs, when set, receives the run's metrics: the explore.* counters
	// (runs, states, transitions, quiescent, violations, statelimit
	// hits, errors, valency label tallies), the explore.frontier_max
	// gauge (level-granular: the unexpanded remainder measured at each
	// level barrier), and the explore.workers gauge. Counter values
	// depend only on the explored graph, never on scheduling or wall
	// time, so identical runs produce identical metrics. The sink also
	// receives the explore.level_ns histogram — per-level expansion
	// latency (expand + merge wall time at each BFS barrier), the
	// daemon's live-operations signal — which, like Timers, is wall
	// time and excluded from determinism claims. Nil disables metrics
	// at zero cost.
	Obs *obs.Sink
	// Events, when set, receives structured JSONL events: a periodic
	// explore.heartbeat while the BFS runs and exactly one terminal
	// event per Check call — explore.done on success,
	// explore.statelimit when MaxStates was hit, or explore.error (with
	// an "error" field) when the engine failed. Nil disables events.
	Events *obs.Emitter
	// HeartbeatEvery emits an explore.heartbeat at the first level
	// barrier after every N expanded configurations when Events is set
	// (default 1 << 15; negative disables heartbeats).
	HeartbeatEvery int
	// Ctx, when set, cancels the exploration cooperatively: the BFS
	// checks it at each level barrier (never mid-level, so the partial
	// state stays level-consistent), writes a final snapshot when
	// Checkpoint is configured, flushes partial counters, emits one
	// explore.error terminal event, and returns the partial Report with
	// an error satisfying errors.Is(err, ctx.Err()).
	Ctx context.Context
	// Checkpoint configures durable snapshots of the BFS (see
	// CheckpointOptions); the zero value disables them.
	Checkpoint CheckpointOptions
	// Store, when enabled, spills the interning table, per-configuration
	// outcome metadata, and the edge lists of completed BFS levels to
	// the disk-backed configuration store (see internal/store), keeping
	// only the active frontier hot in memory. Reports, witnesses,
	// valency labels, DOT output, events, and checkpoint files are
	// byte-identical to the in-memory engine at any worker count; only
	// the store.* observability counters differ. The zero value keeps
	// everything in memory. Callers of a disk-backed exploration own the
	// returned Report's store and must Close it.
	Store store.Options
	// Cover, when non-nil, records which guarded branches each process
	// exercised (see CoverRequest); the result lands in Report.Cover.
	// Recording is a pure observation at the merge barrier: it changes
	// no interning, counting, or verdict, so Reports with and without
	// Cover are otherwise identical.
	Cover *CoverRequest
}

// CoverRequest asks the exploration to record branch coverage of the
// guarded final action of enumerate-style programs: for every merged
// transition taken by a process poised at GuardPC (the program's last
// shared-memory invocation), the response's ⊥-ness selects which of the
// two action branches ran. Under symmetry reduction the recorded
// process index is the orbit representative's, so the bits are reliable
// at role granularity (processes sharing a program), which is all the
// sweep memoizer consumes.
type CoverRequest struct {
	// GuardPC is the program counter of the guarded invocation.
	GuardPC int
}

// BranchCover is one process's guarded-branch coverage.
type BranchCover struct {
	// Bottom is set when a step from the guard PC returned ⊥.
	Bottom bool
	// Value is set when a step from the guard PC returned a non-⊥
	// response.
	Value bool
}

// CheckpointOptions configures durable snapshots of an exploration.
// Snapshots are written atomically at level barriers and restored by
// Resume, which continues the BFS to a Report — and witness schedules,
// DOT output, and event stream — byte-identical to the uninterrupted
// run's.
type CheckpointOptions struct {
	// Path is the snapshot file; empty disables checkpointing. Each
	// snapshot atomically replaces the previous one.
	Path string
	// EveryLevels writes a snapshot after every N completed BFS levels
	// (default 1: every level barrier).
	EveryLevels int
	// After, when set, runs after each periodic snapshot commits,
	// receiving the number of completed levels. Returning a non-nil
	// error aborts the run with it: the kill-resume tests use this to
	// simulate a crash at an exact level boundary, and long-running
	// services can surface snapshot progress through it. Setting After
	// makes every commit synchronous at its barrier (the hook's
	// contract is that its level's snapshot is on disk); without it the
	// write+fsync overlaps the next levels' exploration.
	After func(level int) error
}

// ViolationKind classifies a found violation.
type ViolationKind uint8

// Violation kinds.
const (
	// ViolationSafety is a task safety-predicate failure at a reachable
	// configuration.
	ViolationSafety ViolationKind = iota + 1
	// ViolationWaitFree is an infinite execution in which some process
	// takes infinitely many steps without deciding.
	ViolationWaitFree
	// ViolationDACTerminationA is an infinite execution in which the
	// distinguished process takes infinitely many steps without deciding
	// or aborting (n-DAC Termination (a)).
	ViolationDACTerminationA
	// ViolationDACTerminationB is a solo execution of a non-distinguished
	// process that never decides (n-DAC Termination (b)).
	ViolationDACTerminationB
	// ViolationHaltUndecided is a process with termination obligations
	// whose program stopped without deciding.
	ViolationHaltUndecided
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationSafety:
		return "safety"
	case ViolationWaitFree:
		return "wait-free termination"
	case ViolationDACTerminationA:
		return "DAC termination (a)"
	case ViolationDACTerminationB:
		return "DAC termination (b)"
	case ViolationHaltUndecided:
		return "halt while undecided"
	default:
		return "violation"
	}
}

// Violation is one counterexample: the failed property, the offending
// process where applicable, and a concrete witness.
type Violation struct {
	// Err is the precise property failure.
	Err error
	// Witness is the finite schedule from the initial configuration to
	// the violating configuration; for liveness violations it is
	// extended by Cycle.
	Witness []Step
	// Cycle, for liveness violations, is a schedule that returns the
	// violating configuration to itself (the infinite run repeats it).
	Cycle []Step
	// Kind classifies the violation.
	Kind ViolationKind
	// Proc is the affected process (0-based), or -1.
	Proc int
}

// Error renders the violation. A Violation without an Err (e.g. a
// zero value) renders its kind alone rather than panicking.
func (v *Violation) Error() string {
	if v.Err == nil {
		return v.Kind.String()
	}
	return v.Kind.String() + ": " + v.Err.Error()
}

// Report is the result of an exploration.
type Report struct {
	// States is the number of distinct reachable configurations.
	States int
	// Transitions is the number of labelled edges.
	Transitions int
	// Quiescent is the number of configurations where no process can
	// take a step.
	Quiescent int
	// Violations lists every property failure found (empty means the
	// protocol solves the task on this instance).
	Violations []*Violation
	// Valency holds the valence analysis when Options.Valency was set.
	Valency *ValencyReport
	// Cover is the per-process branch coverage when Options.Cover was
	// set (valid on partial reports too: a state-limited prefix records
	// exactly the branches its merged levels exercised).
	Cover []BranchCover

	g *graph
}

// Solved reports whether no violation was found.
func (r *Report) Solved() bool { return len(r.Violations) == 0 }

// graph is the explored configuration graph. Configurations are
// interned by their compact binary key (Config.AppendKey); in-memory
// map lookups go through string(bytes), which the compiler compiles to
// a zero-copy probe, so only fresh configurations allocate a key. With
// a disk store (disk != nil) the ids map and edges lists are unused:
// keys live in the store's hash table, edge lists in its Edges arena,
// and expanded configs entries are nil after their level's spill.
type graph struct {
	sys     *System
	tsk     task.Task
	configs []*Config
	ids     map[string]int
	// baseIDs, on a forked graph (see fork.go), is the parent
	// snapshot's frozen interning table; lookups fall through to it and
	// fresh interns land in ids, so the parent table is shared
	// copy-on-write between any number of concurrent forks.
	baseIDs map[string]int
	edges   [][]edge   // adjacency: edges[from] (in-memory mode)
	parent  []int      // BFS tree: parent config id (-1 for root)
	parentE []Step     // BFS tree: step from parent
	valence []Valence  // per-config valence, populated by valency()
	grp     *group     // symmetry group, nil when Options.Symmetry is off
	canon   []int      // per config: group index g with perms[g]·config canonical
	disk    *diskState // disk-backed store, nil when Options.Store is off
}

type edge struct {
	to   int
	step Step
	// g is the group index relating the concrete successor D the step
	// produces to the stored representative: D = perms[g]·configs[to].
	// Always 0 when symmetry is off, and on BFS tree edges (the stored
	// representative IS the first-discovered concrete successor).
	g int
}

// minShardConfigs is the smallest per-worker shard worth a goroutine:
// narrower levels are expanded inline to keep barrier overhead off
// small graphs.
const minShardConfigs = 8

// Check explores the full reachable configuration graph of sys and
// verifies tsk's safety and liveness properties over it.
//
// The exploration is a level-synchronized parallel BFS (Options.
// Workers goroutines) with deterministic output at every worker count.
// On failure after argument validation — ErrStateLimit, a successor
// engine error, or a valency error — Check flushes partial counters,
// emits the matching terminal event, and returns the partial Report
// alongside the error.
func Check(sys *System, tsk task.Task, opts Options) (*Report, error) {
	st, rep, err := newSearch(sys, tsk, &opts)
	if err != nil {
		return rep, err
	}
	return st.run()
}

// newSearch validates the system/task pair, normalizes opts in place,
// builds the symmetry group, and interns the root configuration. On
// validation failure before the graph exists the returned Report is
// nil; past that point the partial Report is returned flushed (one
// explore.error terminal event), matching Check's error contract.
func newSearch(sys *System, tsk task.Task, opts *Options) (*search, *Report, error) {
	if len(sys.Programs) != len(sys.Inputs) {
		return nil, nil, fmt.Errorf("explore: %d programs but %d inputs: %w",
			len(sys.Programs), len(sys.Inputs), machine.ErrProgram)
	}
	if tsk != nil && tsk.Procs() != sys.Procs() {
		return nil, nil, fmt.Errorf("explore: task %s wants %d processes, system has %d: %w",
			tsk.Name(), tsk.Procs(), sys.Procs(), machine.ErrProgram)
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 21
	}
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 1 << 15
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	g := &graph{sys: sys, tsk: tsk}
	rep := &Report{g: g}
	st := &search{g: g, rep: rep, opts: opts, frontierMax: 1, hbNext: opts.HeartbeatEvery}
	if opts.Cover != nil {
		// The slice is shared with the report up front so partial exits
		// (state limit, cancellation) carry the coverage observed so far.
		st.cover = make([]BranchCover, sys.Procs())
		st.coverPC = opts.Cover.GuardPC
		rep.Cover = st.cover
	}
	if opts.Obs != nil {
		// Resolved once here so both Check and Resume record per-level
		// latency; nil when metrics are off, costing the loop one nil
		// check per level.
		st.levelHist = opts.Obs.Histogram("explore.level_ns")
	}
	fail := func(err error) (*search, *Report, error) {
		rep.States = len(g.configs)
		st.flush("explore.error", err)
		// A failed construction leaves no graph worth walking; release
		// the store (idempotent — callers may Close again).
		rep.Close()
		return nil, rep, err
	}

	if opts.Store.Enabled() {
		s, err := store.Open(opts.Store, opts.Obs)
		if err != nil {
			return fail(err)
		}
		g.disk = &diskState{s: s}
	} else {
		g.ids = make(map[string]int)
	}

	root, err := initialConfig(sys)
	if err != nil {
		return fail(err)
	}
	if opts.Symmetry != SymmetryOff {
		if opts.Valency && opts.Symmetry == SymmetryValues {
			return fail(fmt.Errorf("explore: valency labels are not invariant under value permutations; use SymmetryIDs or SymmetryOff: %w",
				ErrSymmetryUnsupported))
		}
		grp, err := buildGroup(sys, tsk, opts.Symmetry)
		if err != nil {
			return fail(err)
		}
		if err := grp.checkRootStable(root); err != nil {
			return fail(err)
		}
		g.grp = grp
	}
	// Every group element stabilizes the root, so its concrete key is
	// already canonical.
	if _, err := g.intern(root.AppendKey(nil), root, -1, Step{}, 0); err != nil {
		return fail(err)
	}
	return st, rep, nil
}

// run drives the BFS to completion (or failure) and performs the
// post-exploration analyses — the shared tail of Check and Resume.
func (st *search) run() (*Report, error) {
	g, rep, opts := st.g, st.rep, st.opts
	fail := func(err error) (*Report, error) {
		rep.States = len(g.configs)
		st.flush("explore.error", err)
		return rep, err
	}

	if err := st.bfs(); err != nil {
		rep.States = len(g.configs)
		if errors.Is(err, ErrStateLimit) {
			st.flush("explore.statelimit", err)
			return rep, err
		}
		st.flush("explore.error", err)
		return rep, err
	}
	rep.States = len(g.configs)

	if g.tsk != nil {
		g.checkSafety(rep)
		g.checkLiveness(rep)
	}
	if opts.Valency {
		v, err := g.valency()
		if err != nil {
			return fail(flushCkpt(st, err))
		}
		rep.Valency = v
	}
	// Drain the last snapshot write, which bfs's success path leaves
	// committing in the background across the analyses above. No Check
	// return leaves a write in flight.
	if err := st.ckptWait(); err != nil {
		return fail(err)
	}
	st.flush("explore.done", nil)
	return rep, nil
}

// search is the state of one level-synchronized BFS.
type search struct {
	g           *graph
	rep         *Report
	opts        *Options
	expanded    int // configurations expanded (all levels merged so far)
	frontierMax int // max unexpanded remainder at any level barrier
	hbNext      int // next heartbeat boundary in expanded configs
	symHits     int // successors whose canonical key differed from their concrete key
	orbitMax    int // largest successor orbit seen
	batchMax    int // most successors merged at one level barrier
	level       int // completed BFS levels
	stopLevels  int // when > 0, bfs stops after this many levels (snapshot prefixes)
	coverPC     int // guard PC when cover != nil
	cover       []BranchCover
	fp          uint64 // memoized system fingerprint (see fingerprint)
	fpSet       bool

	// Append-only snapshot section caches (see encodeSnapshot): the
	// encoded spanning-tree entries for ids [1, ckptTreeN), the encoded
	// edge lists for ids [0, ckptEdgeN), and the counters-section
	// scratch reused across snapshots.
	ckptTree  []byte
	ckptTreeN int
	ckptEdges []byte
	ckptEdgeN int
	ckptBuf   []byte

	// levelHist, when metrics are enabled, receives each level's
	// expand+merge wall time (the explore.level_ns histogram).
	levelHist *obs.Histogram

	// Result channel of the in-flight background snapshot write; nil
	// when none. See writeCheckpoint/ckptWait.
	ckptPending chan error
}

// succRec is one successor produced by a worker, in canonical (proc,
// branch) order within its parent's expansion.
type succRec struct {
	cfg      *Config // retained only when the successor was not yet interned
	step     Step
	id       int // interned id when >= 0 (already in the global table)
	off, end int // key bytes in the shard's arena when id < 0
	gi       int // group index minimizing the key (0 when symmetry off)
}

// expansion is the full successor set of one expanded configuration.
type expansion struct {
	quiescent bool
	succs     []succRec
}

// shardOut is one worker's result for a contiguous shard of a BFS
// level. The shard's key arena keeps candidate keys alive without one
// allocation per successor.
type shardOut struct {
	start    int // first config id of the shard
	exps     []expansion
	arena    []byte
	err      error
	errAt    int // config id whose expansion failed
	symHits  int // successors canonicalized to a different key
	orbitMax int // largest successor orbit in the shard
}

// bfs runs the level-synchronized exploration: workers expand disjoint
// contiguous shards of the current level against the frozen
// configuration table, then a single-threaded merge interns successors
// in canonical order. Because FIFO BFS discovers whole levels
// contiguously, the canonical merge assigns exactly the ids a
// sequential BFS would, at any worker count.
// A resumed search re-enters the loop at the restored st.expanded and
// proceeds identically, which is what makes kill-resume byte-exact.
func (st *search) bfs() error {
	g := st.g
	for levelStart := st.expanded; levelStart < len(g.configs); {
		if err := st.interrupted(); err != nil {
			return flushCkpt(st, err)
		}
		levelEnd := len(g.configs)
		var levelT0 time.Time
		if st.levelHist != nil {
			levelT0 = time.Now()
		}
		outs := st.expandLevel(levelStart, levelEnd)
		if err := st.mergeLevel(outs); err != nil {
			return flushCkpt(st, err)
		}
		if st.levelHist != nil {
			st.levelHist.ObserveDuration(time.Since(levelT0))
		}
		st.expanded = levelEnd
		if d := g.disk; d != nil {
			// The Edges arena now holds exactly the records of the
			// expanded configurations; snapshots serialize this prefix
			// while later merges append beyond it.
			d.edgeDurable = d.s.Edges.Len()
		}
		if frontier := len(g.configs) - st.expanded; frontier > st.frontierMax {
			st.frontierMax = frontier
		}
		st.level++
		// Heartbeat before snapshot, so the snapshot's event-sequence
		// counter covers everything this barrier emitted.
		st.heartbeat()
		if err := st.maybeCheckpoint(); err != nil {
			return flushCkpt(st, err)
		}
		if d := g.disk; d != nil {
			// Spill after the snapshot is encoded, then hold the run to
			// its in-memory budget — so a budget failure surfaces only
			// after this barrier's snapshot is on its way to disk.
			g.spillExpanded(levelStart, levelEnd)
			if err := d.s.CheckBudget(); err != nil {
				return flushCkpt(st, err)
			}
		}
		if st.stopLevels > 0 && st.level >= st.stopLevels {
			// Snapshot-prefix mode (see fork.go): leave the frontier
			// unexpanded at this barrier; forks resume from exactly here.
			return nil
		}
		levelStart = levelEnd
	}
	// The last periodic snapshot may still be committing in the
	// background. Error exits above drain it; the success path leaves
	// it in flight so the commit overlaps the post-exploration
	// analyses — run() drains before Check returns.
	return nil
}

// flushCkpt drains any in-flight snapshot write before bfs surfaces
// err, joining a write failure onto it. It deliberately returns err
// itself (not a wrapper) when the drain is clean, so callers matching
// with errors.Is see the undecorated error chain.
func flushCkpt(st *search, err error) error {
	if werr := st.ckptWait(); werr != nil {
		return errors.Join(err, werr)
	}
	return err
}

// interrupted polls Options.Ctx at a level barrier. On cancellation it
// writes a final snapshot (when checkpointing is configured) so the run
// is resumable from exactly this barrier, then reports an error
// wrapping ctx.Err().
func (st *search) interrupted() error {
	ctx := st.opts.Ctx
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
	default:
		return nil
	}
	err := fmt.Errorf("explore: interrupted after level %d (%d of %d configurations expanded): %w",
		st.level, st.expanded, len(st.g.configs), ctx.Err())
	if st.opts.Checkpoint.Path != "" {
		// wait=true: the caller may exit the process right after this
		// barrier, so the final snapshot must be durable before the
		// error surfaces.
		if werr := st.writeCheckpoint(true); werr != nil {
			return errors.Join(err, werr)
		}
	}
	return err
}

// maybeCheckpoint writes the periodic snapshot at a level barrier and
// runs the After hook. Without a hook the container commit overlaps
// the next levels' exploration (see writeCheckpoint); with one, the
// hook's contract — this level's snapshot is on disk when it runs —
// forces the barrier to wait for the commit first.
func (st *search) maybeCheckpoint() error {
	cp := &st.opts.Checkpoint
	if cp.Path == "" {
		return nil
	}
	every := cp.EveryLevels
	if every <= 0 {
		every = 1
	}
	if st.level%every != 0 {
		return nil
	}
	if err := st.writeCheckpoint(cp.After != nil); err != nil {
		return err
	}
	if cp.After != nil {
		return cp.After(st.level)
	}
	return nil
}

// expandLevel fans the level's configurations out to contiguous shards,
// one goroutine each; levels too narrow to amortize a barrier are
// expanded inline.
func (st *search) expandLevel(levelStart, levelEnd int) []*shardOut {
	size := levelEnd - levelStart
	shards := st.opts.Workers
	if max := (size + minShardConfigs - 1) / minShardConfigs; shards > max {
		shards = max
	}
	if shards <= 1 {
		return []*shardOut{st.expandShard(levelStart, levelEnd)}
	}
	chunk := (size + shards - 1) / shards
	outs := make([]*shardOut, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		start := levelStart + w*chunk
		end := start + chunk
		if end > levelEnd {
			end = levelEnd
		}
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			outs[w] = st.expandShard(start, end)
		}(w, start, end)
	}
	wg.Wait()
	return outs
}

// expandShard expands configurations [start, end) against the frozen
// global table (read-only during a level, so lock-free). Successor keys
// are built in pooled scratch buffers that persist across shards and
// levels; already-interned successors cost no allocation at all, fresh
// ones are copied into the shard arena for the merge. Under symmetry
// the probed key is the canonical orbit minimum rather than the
// concrete key; without it the key is spliced from the parent's
// (see expandShardSpliced).
func (st *search) expandShard(start, end int) *shardOut {
	g := st.g
	out := &shardOut{start: start, exps: make([]expansion, 0, end-start)}
	sc := keyScratchPool.Get().(*keyScratch)
	defer keyScratchPool.Put(sc)
	if g.grp == nil {
		st.expandShardSpliced(out, sc, start, end)
		return out
	}
	for at := start; at < end; at++ {
		c := g.configs[at]
		exp := expansion{quiescent: c.Quiescent()}
		for i := range c.Procs {
			if !c.Live(i) {
				continue
			}
			nexts, steps, err := successors(g.sys, c, i)
			if err != nil {
				out.err = err
				out.errAt = at
				return out
			}
			for b, nc := range nexts {
				rec := succRec{step: steps[b], id: -1}
				var orbit int
				var key []byte
				key, rec.gi, orbit = g.grp.canonical(sc, nc)
				if orbit > out.orbitMax {
					out.orbitMax = orbit
				}
				if rec.gi != 0 {
					out.symHits++
				}
				if id, ok := g.lookup(key); ok {
					rec.id = id
				} else {
					rec.cfg = nc
					rec.off = len(out.arena)
					out.arena = append(out.arena, key...)
					rec.end = len(out.arena)
				}
				exp.succs = append(exp.succs, rec)
			}
		}
		out.exps = append(out.exps, exp)
	}
	return out
}

// expandShardSpliced is expandShard's symmetry-off fast path. A step
// changes exactly two components of a configuration — the stepping
// process's state and the touched object's state — and every component
// encoding is self-delimiting, so a successor's interning key can be
// spliced from the parent's key bytes plus the two re-encoded
// components, without materializing the successor Config. The parent
// key is rendered once per configuration with per-component end
// offsets; only successors the table has never seen (the ones the
// merge will intern) then build a real Config. Since most successors
// at a level are duplicates, this keeps the dominant share of
// expansion work allocation-free in both backends.
//
// The successor enumeration mirrors successors() exactly — same
// ordering, same error values at the same points — so reports and
// witnesses are unchanged.
func (st *search) expandShardSpliced(out *shardOut, sc *keyScratch, start, end int) {
	g := st.g
	np := g.sys.Procs()
	nobj := len(g.sys.Objects)
	if cap(sc.ends) < 1+np+nobj {
		sc.ends = make([]int, 1+np+nobj)
	}
	ends := sc.ends[:1+np+nobj]
	for at := start; at < end; at++ {
		c := g.configs[at]
		exp := expansion{quiescent: c.Quiescent()}
		// Parent key with component ends: the mask ends at ends[0],
		// process i at ends[1+i], object j at ends[1+np+j].
		pkey := sc.parent[:0]
		pkey = binary.AppendUvarint(pkey, c.SteppedMask)
		ends[0] = len(pkey)
		for i := range c.Procs {
			pkey = c.Procs[i].AppendKey(pkey)
			ends[1+i] = len(pkey)
		}
		for j := range c.Objs {
			pkey = spec.AppendStateKey(pkey, c.Objs[j])
			ends[1+np+j] = len(pkey)
		}
		sc.parent = pkey
		for i := range c.Procs {
			if !c.Live(i) {
				continue
			}
			poise, ok := machine.Poised(g.sys.Programs[i], c.Procs[i])
			if !ok {
				continue
			}
			if poise.Obj < 0 || poise.Obj >= nobj {
				out.err = spec.BadOpError("system", poise.Op,
					"object index "+strconv.Itoa(poise.Obj)+" out of range")
				out.errAt = at
				return
			}
			ts, err := g.sys.Objects[poise.Obj].Step(c.Objs[poise.Obj], poise.Op)
			if err != nil {
				out.err, out.errAt = err, at
				return
			}
			for b, t := range ts {
				ps, err := machine.Resume(g.sys.Programs[i], c.Procs[i], t.Resp)
				if err != nil {
					out.err, out.errAt = err, at
					return
				}
				jo := poise.Obj
				cand := sc.best[:0]
				cand = binary.AppendUvarint(cand, c.SteppedMask|1<<uint(i))
				cand = append(cand, pkey[ends[0]:ends[i]]...)
				cand = ps.AppendKey(cand)
				cand = append(cand, pkey[ends[i+1]:ends[np+jo]]...)
				cand = spec.AppendStateKey(cand, t.Next)
				cand = append(cand, pkey[ends[np+jo+1]:]...)
				sc.best = cand
				rec := succRec{
					step: Step{Proc: i, Obj: jo, Op: poise.Op, Resp: t.Resp, Branch: b},
					id:   -1,
				}
				if id, ok := g.lookup(cand); ok {
					rec.id = id
				} else {
					nc := &Config{
						Procs:       make([]machine.ProcState, len(c.Procs)),
						Objs:        make([]spec.State, len(c.Objs)),
						SteppedMask: c.SteppedMask | 1<<uint(i),
					}
					copy(nc.Procs, c.Procs)
					copy(nc.Objs, c.Objs)
					nc.Procs[i] = ps
					nc.Objs[jo] = t.Next
					rec.cfg = nc
					rec.off = len(out.arena)
					out.arena = append(out.arena, cand...)
					rec.end = len(out.arena)
				}
				exp.succs = append(exp.succs, rec)
			}
		}
		out.exps = append(out.exps, exp)
	}
}

// mergeLevel folds the shard results into the graph single-threaded,
// in ascending (config id, proc, branch) order — the exact order a
// sequential BFS interns successors, which is what makes ids canonical.
// Successors two shards discovered independently deduplicate here. On a
// worker error the level is not merged and the canonically first error
// (smallest config id) is returned, so the error — and the counters,
// which then cover completed levels only — are identical at any worker
// count.
func (st *search) mergeLevel(outs []*shardOut) error {
	var firstErr error
	errAt := -1
	for _, out := range outs {
		if out.err != nil && (errAt < 0 || out.errAt < errAt) {
			firstErr, errAt = out.err, out.errAt
		}
	}
	if firstErr != nil {
		return firstErr
	}
	g, rep := st.g, st.rep
	d := g.disk
	for _, out := range outs {
		st.symHits += out.symHits
		if out.orbitMax > st.orbitMax {
			st.orbitMax = out.orbitMax
		}
	}
	batch := 0
	for _, out := range outs {
		for rel := range out.exps {
			exp := &out.exps[rel]
			at := out.start + rel
			if exp.quiescent {
				rep.Quiescent++
			}
			batch += len(exp.succs)
			var rec []byte
			if d != nil {
				rec = d.edgeRec[:0]
			}
			merged := 0
			var stop error
			for _, s := range exp.succs {
				if st.cover != nil && g.configs[at].Procs[s.step.Proc].PC == st.coverPC {
					// The parent configuration of the currently merging
					// level is always resident (spilling runs after the
					// merge), so this read is safe in both backends.
					if s.step.Resp == value.Bottom {
						st.cover[s.step.Proc].Bottom = true
					} else {
						st.cover[s.step.Proc].Value = true
					}
				}
				id, fresh := s.id, false
				if id < 0 {
					key := out.arena[s.off:s.end]
					if known, ok := g.lookup(key); ok {
						id = known
					} else {
						var err error
						if id, err = g.intern(key, s.cfg, at, s.step, s.gi); err != nil {
							return err
						}
						fresh = true
					}
				}
				gi := 0
				if g.grp != nil {
					// The concrete successor D satisfies
					// perms[s.gi]·D = canonical = perms[canon[id]]·R_id,
					// so D = perms[inv(s.gi) ∘ canon[id]]·R_id.
					gi = g.grp.comp[g.grp.inv[s.gi]][g.canon[id]]
				}
				if d != nil {
					rec = appendV(rec, int64(id))
					rec = appendStep(rec, s.step)
					rec = appendV(rec, int64(gi))
				} else {
					g.edges[at] = append(g.edges[at], edge{to: id, step: s.step, g: gi})
				}
				merged++
				rep.Transitions++
				if fresh && len(g.configs) > st.opts.MaxStates {
					// Keep the partial report self-consistent: States must
					// count the configurations actually interned, matching
					// the Transitions already tallied.
					stop = fmt.Errorf("explore: %d states: %w", len(g.configs), ErrStateLimit)
					break
				}
			}
			if d != nil {
				// One arena append per configuration — the whole edge
				// batch, count-prefixed in the checkpoint section format
				// — rather than one write per successor. On an aborted
				// merge the truncated record still lands, so the partial
				// graph matches the in-memory engine's edge for edge; it
				// never enters a snapshot (edgeDurable only advances at
				// completed barriers).
				d.edgeRec = rec
				var hdr [binary.MaxVarintLen64]byte
				off, err := d.s.Edges.Append(hdr[:binary.PutVarint(hdr[:], int64(merged))])
				if err == nil {
					_, err = d.s.Edges.Append(rec)
				}
				if err != nil {
					return err
				}
				d.edgeOff = append(d.edgeOff, off)
			}
			if stop != nil {
				return stop
			}
		}
	}
	if batch > st.batchMax {
		st.batchMax = batch
	}
	return nil
}

// heartbeat emits one explore.heartbeat at the first level barrier
// after each HeartbeatEvery expanded configurations. Field values are
// level-boundary snapshots, so the stream is deterministic at any
// worker count.
func (st *search) heartbeat() {
	opts := st.opts
	if opts.Events == nil || opts.HeartbeatEvery <= 0 || st.expanded < st.hbNext {
		return
	}
	for st.hbNext <= st.expanded {
		st.hbNext += opts.HeartbeatEvery
	}
	opts.Events.Emit("explore.heartbeat", obs.Fields{
		"expanded":    st.expanded,
		"states":      len(st.g.configs),
		"transitions": st.rep.Transitions,
		"frontier":    len(st.g.configs) - st.expanded,
	})
}

// flush folds the exploration into the optional metrics sink and emits
// the terminal event (explore.done, explore.statelimit, or
// explore.error — exactly one per Check call, on every exit path past
// argument validation). Counters are flushed once per run rather than
// incremented per transition, so instrumented explorations stay within
// noise of uninstrumented ones.
func (st *search) flush(event string, err error) {
	rep, opts := st.rep, st.opts
	if opts.Obs != nil {
		o := opts.Obs
		o.Counter("explore.runs").Inc()
		o.Counter("explore.states").Add(int64(rep.States))
		o.Counter("explore.transitions").Add(int64(rep.Transitions))
		o.Counter("explore.quiescent").Add(int64(rep.Quiescent))
		o.Counter("explore.violations").Add(int64(len(rep.Violations)))
		switch event {
		case "explore.statelimit":
			o.Counter("explore.statelimit_hits").Inc()
		case "explore.error":
			o.Counter("explore.errors").Inc()
		}
		o.Gauge("explore.frontier_max").SetMax(int64(st.frontierMax))
		o.Gauge("explore.workers").SetMax(int64(opts.Workers))
		o.Gauge("explore.batch_size").SetMax(int64(st.batchMax))
		if st.g.grp != nil {
			o.Counter("explore.symmetry_hits").Add(int64(st.symHits))
			o.Gauge("explore.orbit_size_max").SetMax(int64(st.orbitMax))
		}
		if v := rep.Valency; v != nil {
			o.Counter("explore.valency.bivalent").Add(int64(v.Bivalent))
			o.Counter("explore.valency.univalent0").Add(int64(v.Univalent0))
			o.Counter("explore.valency.univalent1").Add(int64(v.Univalent1))
			o.Counter("explore.valency.null").Add(int64(v.Null))
			o.Counter("explore.valency.critical").Add(int64(v.CriticalCount))
		}
	}
	if opts.Events != nil {
		fields := obs.Fields{
			"states":       rep.States,
			"transitions":  rep.Transitions,
			"quiescent":    rep.Quiescent,
			"violations":   len(rep.Violations),
			"frontier_max": st.frontierMax,
			"workers":      opts.Workers,
		}
		if event == "explore.error" && err != nil {
			fields["error"] = err.Error()
		}
		if st.g.grp != nil {
			fields["symmetry"] = opts.Symmetry.String()
			fields["group_order"] = len(st.g.grp.perms)
			fields["symmetry_hits"] = st.symHits
			fields["orbit_size_max"] = st.orbitMax
		}
		if v := rep.Valency; v != nil {
			fields["bivalent"] = v.Bivalent
			fields["critical"] = v.CriticalCount
		}
		opts.Events.Emit(event, fields)
	}
}

// pathTo reconstructs the BFS schedule from the root to config id.
func (g *graph) pathTo(id int) []Step {
	var rev []Step
	for at := id; g.parent[at] >= 0; at = g.parent[at] {
		rev = append(rev, g.parentE[at])
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// checkSafety evaluates the task predicate at every reachable
// configuration and records the first violation (with witness).
func (g *graph) checkSafety(rep *Report) {
	var m metaRec
	for id := range g.configs {
		g.metaAt(id, &m)
		if err := g.tsk.CheckSafety(m.outcome(g.sys.Inputs)); err != nil {
			rep.Violations = append(rep.Violations, &Violation{
				Kind:    ViolationSafety,
				Err:     err,
				Proc:    -1,
				Witness: g.pathTo(id),
			})
			return
		}
	}
}

package explore

import (
	"errors"
	"fmt"

	"setagree/internal/machine"
	"setagree/internal/obs"
	"setagree/internal/task"
)

// Exploration failure modes.
var (
	// ErrStateLimit reports that the reachable graph exceeded
	// Options.MaxStates.
	ErrStateLimit = errors.New("state limit exceeded")
	// ErrNotBinary reports that valency analysis was requested for a
	// protocol deciding values outside {0, 1}.
	ErrNotBinary = errors.New("valency analysis requires binary decisions")
)

// Options tunes an exploration.
type Options struct {
	// MaxStates caps the number of distinct configurations explored
	// (default 1 << 21).
	MaxStates int
	// Valency enables valence labelling of every configuration and
	// critical-configuration detection. It requires a binary task (all
	// decisions in {0, 1}).
	Valency bool
	// Obs, when set, receives the run's metrics: the explore.* counters
	// (runs, states, transitions, quiescent, violations, statelimit
	// hits, valency label tallies) and the explore.frontier_max gauge.
	// Counter values depend only on the explored graph, never on
	// scheduling or wall time, so identical runs produce identical
	// metrics. Nil disables metrics at zero cost.
	Obs *obs.Sink
	// Events, when set, receives structured JSONL events: a periodic
	// explore.heartbeat while the BFS runs (replacing the engine's
	// former silence on long explorations) and a final explore.done /
	// explore.statelimit. Nil disables events.
	Events *obs.Emitter
	// HeartbeatEvery emits an explore.heartbeat after every N expanded
	// configurations when Events is set (default 1 << 15; negative
	// disables heartbeats).
	HeartbeatEvery int
}

// ViolationKind classifies a found violation.
type ViolationKind uint8

// Violation kinds.
const (
	// ViolationSafety is a task safety-predicate failure at a reachable
	// configuration.
	ViolationSafety ViolationKind = iota + 1
	// ViolationWaitFree is an infinite execution in which some process
	// takes infinitely many steps without deciding.
	ViolationWaitFree
	// ViolationDACTerminationA is an infinite execution in which the
	// distinguished process takes infinitely many steps without deciding
	// or aborting (n-DAC Termination (a)).
	ViolationDACTerminationA
	// ViolationDACTerminationB is a solo execution of a non-distinguished
	// process that never decides (n-DAC Termination (b)).
	ViolationDACTerminationB
	// ViolationHaltUndecided is a process with termination obligations
	// whose program stopped without deciding.
	ViolationHaltUndecided
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationSafety:
		return "safety"
	case ViolationWaitFree:
		return "wait-free termination"
	case ViolationDACTerminationA:
		return "DAC termination (a)"
	case ViolationDACTerminationB:
		return "DAC termination (b)"
	case ViolationHaltUndecided:
		return "halt while undecided"
	default:
		return "violation"
	}
}

// Violation is one counterexample: the failed property, the offending
// process where applicable, and a concrete witness.
type Violation struct {
	// Err is the precise property failure.
	Err error
	// Witness is the finite schedule from the initial configuration to
	// the violating configuration; for liveness violations it is
	// extended by Cycle.
	Witness []Step
	// Cycle, for liveness violations, is a schedule that returns the
	// violating configuration to itself (the infinite run repeats it).
	Cycle []Step
	// Kind classifies the violation.
	Kind ViolationKind
	// Proc is the affected process (0-based), or -1.
	Proc int
}

// Error renders the violation.
func (v *Violation) Error() string {
	return v.Kind.String() + ": " + v.Err.Error()
}

// Report is the result of an exploration.
type Report struct {
	// States is the number of distinct reachable configurations.
	States int
	// Transitions is the number of labelled edges.
	Transitions int
	// Quiescent is the number of configurations where no process can
	// take a step.
	Quiescent int
	// Violations lists every property failure found (empty means the
	// protocol solves the task on this instance).
	Violations []*Violation
	// Valency holds the valence analysis when Options.Valency was set.
	Valency *ValencyReport

	g *graph
}

// Solved reports whether no violation was found.
func (r *Report) Solved() bool { return len(r.Violations) == 0 }

// graph is the explored configuration graph.
type graph struct {
	sys     *System
	tsk     task.Task
	configs []*Config
	ids     map[string]int
	edges   [][]edge  // adjacency: edges[from]
	parent  []int     // BFS tree: parent config id (-1 for root)
	parentE []Step    // BFS tree: step from parent
	valence []Valence // per-config valence, populated by valency()
}

type edge struct {
	to   int
	step Step
}

// Check explores the full reachable configuration graph of sys and
// verifies tsk's safety and liveness properties over it.
func Check(sys *System, tsk task.Task, opts Options) (*Report, error) {
	if len(sys.Programs) != len(sys.Inputs) {
		return nil, fmt.Errorf("explore: %d programs but %d inputs: %w",
			len(sys.Programs), len(sys.Inputs), machine.ErrProgram)
	}
	if tsk != nil && tsk.Procs() != sys.Procs() {
		return nil, fmt.Errorf("explore: task %s wants %d processes, system has %d: %w",
			tsk.Name(), tsk.Procs(), sys.Procs(), machine.ErrProgram)
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 21
	}
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 1 << 15
	}

	g := &graph{sys: sys, tsk: tsk, ids: make(map[string]int)}
	rep := &Report{g: g}

	root, err := initialConfig(sys)
	if err != nil {
		return nil, err
	}
	g.add(root, -1, Step{})

	frontierMax := 1
	for at := 0; at < len(g.configs); at++ {
		if frontier := len(g.configs) - at; frontier > frontierMax {
			frontierMax = frontier
		}
		if opts.Events != nil && opts.HeartbeatEvery > 0 && at > 0 && at%opts.HeartbeatEvery == 0 {
			opts.Events.Emit("explore.heartbeat", obs.Fields{
				"expanded":    at,
				"states":      len(g.configs),
				"transitions": rep.Transitions,
				"frontier":    len(g.configs) - at,
			})
		}
		c := g.configs[at]
		if c.Quiescent() {
			rep.Quiescent++
		}
		for i := range c.Procs {
			if !c.Live(i) {
				continue
			}
			nexts, steps, err := successors(sys, c, i)
			if err != nil {
				return nil, err
			}
			for b, nc := range nexts {
				id, fresh := g.add(nc, at, steps[b])
				g.edges[at] = append(g.edges[at], edge{to: id, step: steps[b]})
				rep.Transitions++
				if fresh && len(g.configs) > opts.MaxStates {
					// Keep the partial report self-consistent: States must
					// count the configurations actually interned, matching
					// the Transitions already tallied.
					rep.States = len(g.configs)
					flushObs(rep, &opts, frontierMax, true)
					return rep, fmt.Errorf("explore: %d states: %w", len(g.configs), ErrStateLimit)
				}
			}
		}
	}
	rep.States = len(g.configs)

	if tsk != nil {
		g.checkSafety(rep)
		g.checkLiveness(rep)
	}
	if opts.Valency {
		v, err := g.valency()
		if err != nil {
			return nil, err
		}
		rep.Valency = v
	}
	flushObs(rep, &opts, frontierMax, false)
	return rep, nil
}

// flushObs folds a finished (or state-limited) exploration into the
// optional metrics sink and emits the terminal event. Counters are
// flushed once per run rather than incremented per transition, so
// instrumented explorations stay within noise of uninstrumented ones.
func flushObs(rep *Report, opts *Options, frontierMax int, partial bool) {
	if opts.Obs != nil {
		o := opts.Obs
		o.Counter("explore.runs").Inc()
		o.Counter("explore.states").Add(int64(rep.States))
		o.Counter("explore.transitions").Add(int64(rep.Transitions))
		o.Counter("explore.quiescent").Add(int64(rep.Quiescent))
		o.Counter("explore.violations").Add(int64(len(rep.Violations)))
		if partial {
			o.Counter("explore.statelimit_hits").Inc()
		}
		o.Gauge("explore.frontier_max").SetMax(int64(frontierMax))
		if v := rep.Valency; v != nil {
			o.Counter("explore.valency.bivalent").Add(int64(v.Bivalent))
			o.Counter("explore.valency.univalent0").Add(int64(v.Univalent0))
			o.Counter("explore.valency.univalent1").Add(int64(v.Univalent1))
			o.Counter("explore.valency.null").Add(int64(v.Null))
			o.Counter("explore.valency.critical").Add(int64(v.CriticalCount))
		}
	}
	if opts.Events != nil {
		event := "explore.done"
		if partial {
			event = "explore.statelimit"
		}
		fields := obs.Fields{
			"states":       rep.States,
			"transitions":  rep.Transitions,
			"quiescent":    rep.Quiescent,
			"violations":   len(rep.Violations),
			"frontier_max": frontierMax,
		}
		if v := rep.Valency; v != nil {
			fields["bivalent"] = v.Bivalent
			fields["critical"] = v.CriticalCount
		}
		opts.Events.Emit(event, fields)
	}
}

// add interns c, recording its BFS parent when first seen. It returns
// the config id and whether it was fresh.
func (g *graph) add(c *Config, parent int, via Step) (int, bool) {
	key := c.Key()
	if id, ok := g.ids[key]; ok {
		return id, false
	}
	id := len(g.configs)
	g.ids[key] = id
	g.configs = append(g.configs, c)
	g.edges = append(g.edges, nil)
	g.parent = append(g.parent, parent)
	g.parentE = append(g.parentE, via)
	return id, true
}

// pathTo reconstructs the BFS schedule from the root to config id.
func (g *graph) pathTo(id int) []Step {
	var rev []Step
	for at := id; g.parent[at] >= 0; at = g.parent[at] {
		rev = append(rev, g.parentE[at])
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// checkSafety evaluates the task predicate at every reachable
// configuration and records the first violation (with witness).
func (g *graph) checkSafety(rep *Report) {
	for id, c := range g.configs {
		if err := g.tsk.CheckSafety(c.Outcome(g.sys.Inputs)); err != nil {
			rep.Violations = append(rep.Violations, &Violation{
				Kind:    ViolationSafety,
				Err:     err,
				Proc:    -1,
				Witness: g.pathTo(id),
			})
			return
		}
	}
}

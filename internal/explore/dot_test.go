package explore_test

import (
	"regexp"
	"strings"
	"testing"

	"setagree/internal/explore"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

var (
	dotNodeRe = regexp.MustCompile(`^\s*(c\d+) \[`)
	dotEdgeRe = regexp.MustCompile(`^\s*(c\d+) -> (c\d+) \[`)
)

// TestWriteDOTTruncatedNoDanglingEdges renders a truncated graph and
// validates it without Graphviz: every edge endpoint must be a declared
// node, i.e. truncation drops edges into cut nodes rather than emitting
// dangling node references.
func TestWriteDOTTruncatedNoDanglingEdges(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const maxNodes = 16
	if rep.States <= maxNodes {
		t.Fatalf("graph too small to exercise truncation: %d states", rep.States)
	}
	var buf strings.Builder
	if err := rep.WriteDOT(&buf, maxNodes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "truncated") {
		t.Fatal("truncation comment missing")
	}

	declared := map[string]bool{}
	var edges [][2]string
	for _, line := range strings.Split(out, "\n") {
		if m := dotEdgeRe.FindStringSubmatch(line); m != nil {
			edges = append(edges, [2]string{m[1], m[2]})
			continue
		}
		if m := dotNodeRe.FindStringSubmatch(line); m != nil {
			declared[m[1]] = true
		}
	}
	if len(declared) != maxNodes {
		t.Fatalf("%d nodes declared, want %d", len(declared), maxNodes)
	}
	if len(edges) == 0 {
		t.Fatal("truncated graph has no edges at all")
	}
	for _, e := range edges {
		if !declared[e[0]] || !declared[e[1]] {
			t.Errorf("edge %s -> %s references an undeclared node", e[0], e[1])
		}
	}
}

// Prefix snapshots and forked explorations.
//
// Candidate programs produced by internal/enumerate differ only in
// their final guarded actions: the first Depth-1 shared-memory
// invocations are common to every candidate of a prefix-trie node. A
// level-synchronized BFS makes the shared work a clean prefix of the
// level sequence — a configuration at BFS level L has some process
// with min(L, Depth) completed steps, so every configuration at level
// <= Depth-1 was produced exclusively by instructions the whole group
// shares. SnapshotPrefix freezes the search at that barrier; Fork
// resumes it per candidate as a copy-on-write view over the frozen
// tables (shared *Config pointers, cap-clamped BFS-tree columns, an
// interning-table overlay), producing a Report byte-identical to a
// from-scratch run of the forked system.
//
// Restrictions: in-memory engine, symmetry off, no valency, no
// checkpointing — exactly the configuration falsification sweeps run.
package explore

import (
	"errors"
	"fmt"
	"runtime"

	"setagree/internal/task"
)

// ErrForkUnsupported reports a SnapshotPrefix or Fork option outside
// the supported envelope (symmetry, valency, disk store, checkpoints,
// or a mismatched forked system).
var ErrForkUnsupported = errors.New("explore: fork does not support this configuration")

// ProbeSymmetry replays exactly the pre-BFS admissibility pipeline of
// a symmetry-reduced Check — initial configuration, group
// construction, root stability — without exploring anything. It
// returns nil when Check would run reduced, an error matching
// ErrNotSymmetric/ErrSymmetryUnsupported when Check would reject the
// reduction (the sweep fallback path), and any other construction
// error verbatim. The sweep memoizer uses it to account symmetry
// fallbacks exactly on candidates whose exploration it elides.
func ProbeSymmetry(sys *System, tsk task.Task, mode Symmetry) error {
	if mode == SymmetryOff {
		return nil
	}
	root, err := initialConfig(sys)
	if err != nil {
		return err
	}
	grp, err := buildGroup(sys, tsk, mode)
	if err != nil {
		return err
	}
	return grp.checkRootStable(root)
}

// Snapshot is a frozen BFS prefix: the configuration table, BFS tree,
// and report totals of an exploration stopped at a level barrier.
// A Snapshot is immutable; any number of Forks may run concurrently
// against it.
type Snapshot struct {
	g           *graph
	maxStates   int
	expanded    int
	level       int
	transitions int
	quiescent   int
	frontierMax int
	batchMax    int
}

// States is the number of configurations interned in the prefix — the
// exploration work each additional Fork reuses instead of redoing.
func (s *Snapshot) States() int { return len(s.g.configs) }

// SnapshotPrefix explores sys for exactly `levels` BFS levels and
// freezes the search at that barrier. The run is silent (no metrics,
// events, or checkpoints) and supports only the plain in-memory
// symmetry-off engine. Callers guarantee that every system later
// passed to Fork executes instructions identical to sys's over the
// snapshot's levels; the prefix levels of enumerate's candidate
// families satisfy this by construction.
func SnapshotPrefix(sys *System, tsk task.Task, levels int, opts Options) (*Snapshot, error) {
	if levels <= 0 {
		return nil, fmt.Errorf("explore: snapshot of %d levels: %w", levels, ErrForkUnsupported)
	}
	if opts.Symmetry != SymmetryOff || opts.Valency || opts.Store.Enabled() ||
		opts.Checkpoint.Path != "" || opts.Cover != nil {
		return nil, fmt.Errorf("explore: snapshot prefixes support only the plain in-memory engine: %w", ErrForkUnsupported)
	}
	opts.Obs = nil
	opts.Events = nil
	opts.HeartbeatEvery = -1
	st, _, err := newSearch(sys, tsk, &opts)
	if err != nil {
		return nil, err
	}
	st.stopLevels = levels
	if err := st.bfs(); err != nil {
		return nil, err
	}
	return &Snapshot{
		g:           st.g,
		maxStates:   opts.MaxStates,
		expanded:    st.expanded,
		level:       st.level,
		transitions: st.rep.Transitions,
		quiescent:   st.rep.Quiescent,
		frontierMax: st.frontierMax,
		batchMax:    st.batchMax,
	}, nil
}

// Fork resumes the snapshot for a forked system — same process count,
// objects, and inputs; programs that agree with the snapshot's over
// every instruction executed in the prefix — and drives the search to
// completion. The forked graph is a copy-on-write view: the prefix
// configuration table, BFS-tree columns, and interning entries are
// shared read-only with the snapshot (and with every concurrent fork),
// and only post-fork growth allocates. Because the prefix executions
// are identical by the caller's guarantee and the merge order is
// canonical, the returned Report — ids, counts, violations, witnesses
// — is byte-identical to a from-scratch Check of the forked system;
// opts.MaxStates must equal the snapshot's so state-limit truncation
// points agree too. Metrics flushed to opts.Obs count the whole
// logical run (prefix included), matching the from-scratch equivalent;
// the work actually saved is States() per reuse.
func (s *Snapshot) Fork(sys *System, opts Options) (*Report, error) {
	base := s.g
	if len(sys.Programs) != len(base.sys.Programs) || len(sys.Inputs) != len(base.sys.Inputs) ||
		len(sys.Objects) != len(base.sys.Objects) {
		return nil, fmt.Errorf("explore: forked system shape differs from snapshot: %w", ErrForkUnsupported)
	}
	for i, in := range sys.Inputs {
		if in != base.sys.Inputs[i] {
			return nil, fmt.Errorf("explore: forked input %d differs from snapshot: %w", i, ErrForkUnsupported)
		}
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 21
	}
	if opts.MaxStates != s.maxStates {
		return nil, fmt.Errorf("explore: fork MaxStates %d differs from snapshot's %d: %w",
			opts.MaxStates, s.maxStates, ErrForkUnsupported)
	}
	if opts.Symmetry != SymmetryOff || opts.Valency || opts.Store.Enabled() || opts.Checkpoint.Path != "" {
		return nil, fmt.Errorf("explore: forks support only the plain in-memory engine: %w", ErrForkUnsupported)
	}
	if opts.HeartbeatEvery == 0 {
		opts.HeartbeatEvery = 1 << 15
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}

	n := len(base.configs)
	edges := make([][]edge, n)
	copy(edges, base.edges)
	g := &graph{
		sys:     sys,
		tsk:     base.tsk,
		configs: base.configs[:n:n],
		ids:     make(map[string]int),
		baseIDs: base.ids,
		edges:   edges,
		parent:  base.parent[:n:n],
		parentE: base.parentE[:n:n],
		canon:   base.canon[:n:n],
	}
	rep := &Report{g: g, Transitions: s.transitions, Quiescent: s.quiescent}
	st := &search{
		g:           g,
		rep:         rep,
		opts:        &opts,
		expanded:    s.expanded,
		frontierMax: s.frontierMax,
		batchMax:    s.batchMax,
		hbNext:      opts.HeartbeatEvery,
		level:       s.level,
	}
	if opts.Cover != nil {
		// Prefix steps never leave the guard PC (the prefix stops before
		// any process reaches its final invocation), so starting the
		// coverage empty here matches a from-scratch recording.
		st.cover = make([]BranchCover, sys.Procs())
		st.coverPC = opts.Cover.GuardPC
		rep.Cover = st.cover
	}
	if opts.Obs != nil {
		st.levelHist = opts.Obs.Histogram("explore.level_ns")
	}
	return st.run()
}

package explore_test

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/programs"
	"setagree/internal/sim"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestQuiescentCountMatchesTerminalRuns: quiescent configurations are
// exactly those where no process can step; a simulated run that
// completes must end in one of them, so running many seeds never
// contradicts a zero quiescent count.
func TestQuiescentCountMatchesTerminalRuns(t *testing.T) {
	t.Parallel()
	prot := programs.ConsensusFromPACM(3, 2, 2)
	sys, err := prot.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.Consensus{N: 2}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quiescent == 0 {
		t.Fatal("wait-free-correct protocol must have quiescent configurations")
	}
	// Every completed simulated run reaches quiescence.
	for seed := uint64(1); seed <= 20; seed++ {
		sys2, err := prot.System([]value.Value{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sys2, task.Consensus{N: 2}, sim.Random(seed), sim.Options{MaxSteps: 128})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: wait-free protocol did not complete", seed)
		}
	}
}

// TestTransitionsCountEdges: transitions = sum over configs of enabled
// (process, branch) pairs; a deterministic single-process system has a
// simple closed form we can pin.
func TestTransitionsCountEdges(t *testing.T) {
	t.Parallel()
	// One process, three writes then decide: configs = 4 (poised at
	// w1, w2, w3, decided), transitions = 3.
	prog := machine.NewBuilder("three-writes", 4).
		Invoke(2, 0, value.MethodWrite, machine.C(1), machine.Operand{}).
		Invoke(2, 0, value.MethodWrite, machine.C(2), machine.Operand{}).
		Invoke(2, 0, value.MethodWrite, machine.C(3), machine.Operand{}).
		Decide(machine.R(machine.RegInput)).
		MustBuild()
	sys := singleProcSystem(prog)
	rep, err := explore.Check(sys, task.Consensus{N: 1}, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.States != 4 || rep.Transitions != 3 || rep.Quiescent != 1 {
		t.Fatalf("states=%d transitions=%d quiescent=%d, want 4/3/1",
			rep.States, rep.Transitions, rep.Quiescent)
	}
	if !rep.Solved() {
		t.Fatal(rep.Violations[0])
	}
}

// TestNondeterministicBranchingCounted: a single 2-SA propose after a
// stored value branches the graph.
func TestNondeterministicBranchingCounted(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2)
	sys, err := prot.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, nil, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With inputs {0,1}: the first stepper stores its value (one
	// branch); the second propose branches two ways (respond 0 or 1).
	// The graph is a tree of 7 configurations:
	//   C0 -> C1 (p1) -> {C3, C4} (p2 branches)
	//      -> C2 (p2) -> {C5, C6} (p1 branches)
	if rep.States != 7 || rep.Transitions != 6 {
		t.Fatalf("states=%d transitions=%d, want 7/6", rep.States, rep.Transitions)
	}
	// Control: the deterministic sticky-consensus variant of the same
	// protocol has no branching — strictly fewer configurations.
	sticky := programs.ConsensusFromSticky(2)
	ssys, err := sticky.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	srep, err := explore.Check(ssys, nil, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if srep.States >= rep.States {
		t.Fatalf("deterministic variant has %d states >= nondeterministic %d", srep.States, rep.States)
	}
}

// TestNilTaskSkipsProperties: Check with a nil task explores only.
func TestNilTaskSkipsProperties(t *testing.T) {
	t.Parallel()
	prot := programs.NaiveTwoSAConsensus(2) // violates consensus, but no task given
	sys, err := prot.System([]value.Value{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, nil, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatal("nil task must report no violations")
	}
}

// TestTaskArityMismatch pins the arity guard.
func TestTaskArityMismatch(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := explore.Check(sys, task.DAC{N: 4, P: 0}, explore.Options{}); err == nil {
		t.Fatal("task/system arity mismatch accepted")
	}
}

// TestValencySuccessorClosure: a configuration's valence is exactly the
// union of its successors' valences plus its immediate decisions — spot
// check via the counts (bivalent configs must have >= 1 successor).
func TestValencySuccessorClosure(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(2, 1)
	sys, err := prot.System([]value.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := explore.Check(sys, task.DAC{N: 2, P: 0}, explore.Options{Valency: true})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Valency
	if v.Bivalent+v.Univalent0+v.Univalent1+v.Null != rep.States {
		t.Fatalf("valence census %d+%d+%d+%d != %d states",
			v.Bivalent, v.Univalent0, v.Univalent1, v.Null, rep.States)
	}
	if v.Null != 0 {
		t.Fatalf("%d null-valent configurations in a correct protocol", v.Null)
	}
	if v.CriticalCount == 0 {
		t.Fatal("no critical configurations despite a bivalent initial configuration")
	}
	if v.CriticalSameObject != v.CriticalCount {
		t.Fatalf("only %d of %d critical configurations cluster on one object",
			v.CriticalSameObject, v.CriticalCount)
	}
}

func singleProcSystem(prog *machine.Program) *explore.System {
	return &explore.System{
		Programs: []*machine.Program{prog},
		Objects:  []spec.Spec{objects.NewRegister()},
		Inputs:   []value.Value{0},
	}
}

package explore

import (
	"bytes"
	"errors"
	"testing"

	"setagree/internal/machine"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// symProg is a minimal value-opaque program over one consensus object:
// propose the input, decide the response. Passes AnalyzeSymmetry.
func symProg(t *testing.T) *machine.Program {
	t.Helper()
	return machine.NewBuilder("sym-propose", 4).
		Invoke(2, 0, value.MethodPropose, machine.R(machine.RegInput), machine.Operand{}).
		Decide(machine.R(2)).
		MustBuild()
}

func symSystem(t *testing.T, inputs ...value.Value) *System {
	t.Helper()
	prog := symProg(t)
	sys := &System{
		Objects: []spec.Spec{consensusSpec(t)},
		Inputs:  inputs,
	}
	for range inputs {
		sys.Programs = append(sys.Programs, prog)
	}
	return sys
}

// consensusSpec pulls the consensus spec without importing the objects
// package into the engine tests twice; the indirection keeps the
// white-box tests decoupled from the zoo's constructors.
func consensusSpec(t *testing.T) spec.Spec {
	t.Helper()
	return testConsensus{}
}

// testConsensus is a tiny single-shot consensus spec whose state
// implements spec.Symmetric, local to the white-box tests.
type testConsensus struct{}

type testConsState struct{ val value.Value }

func (testConsensus) Name() string     { return "test-consensus" }
func (testConsensus) Init() spec.State { return testConsState{val: value.None} }
func (testConsensus) Step(s spec.State, op value.Op) ([]spec.Transition, error) {
	st := s.(testConsState)
	if op.Method != value.MethodPropose {
		return nil, spec.BadOpError("test-consensus", op, "unsupported method")
	}
	if st.val == value.None {
		st.val = op.Arg
	}
	return []spec.Transition{{Next: st, Resp: st.val}}, nil
}

func (s testConsState) Key() string { return s.val.String() }
func (s testConsState) AppendKey(dst []byte) []byte {
	return append(dst, []byte(s.val.String())...)
}
func (s testConsState) AppendKeyUnder(dst []byte, p spec.Perm) []byte {
	return append(dst, []byte(p.Val(s.val).String())...)
}

// TestBuildGroupOrders pins the admissible group orders: ids mode
// groups processes by (program, input); values mode additionally
// matches inputs up to a bijection.
func TestBuildGroupOrders(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		inputs []value.Value
		mode   Symmetry
		order  int
	}{
		{"ids-three-equal", []value.Value{7, 7, 7}, SymmetryIDs, 6},
		{"ids-split", []value.Value{7, 7, 8}, SymmetryIDs, 2},
		{"ids-distinct", []value.Value{7, 8, 9}, SymmetryIDs, 1},
		{"values-distinct", []value.Value{7, 8, 9}, SymmetryValues, 6},
		{"values-multiset", []value.Value{7, 7, 8}, SymmetryValues, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys := symSystem(t, tc.inputs...)
			grp, err := buildGroup(sys, nil, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(grp.perms) != tc.order {
				t.Fatalf("group order %d, want %d", len(grp.perms), tc.order)
			}
			if !grp.perms[0].Identity() {
				t.Fatal("perms[0] is not the identity")
			}
			for a := range grp.perms {
				if grp.comp[a][grp.inv[a]] != 0 || grp.comp[grp.inv[a]][a] != 0 {
					t.Fatalf("inv[%d] = %d is not a two-sided inverse", a, grp.inv[a])
				}
			}
		})
	}
}

// TestBuildGroupFixesDACDistinguished: the DAC distinguished process
// must be a fixed point of every admissible permutation, and 0/1 of
// every value map.
func TestBuildGroupFixesDACDistinguished(t *testing.T) {
	t.Parallel()
	sys := symSystem(t, 0, 0, 0)
	grp, err := buildGroup(sys, task.DAC{N: 3, P: 1}, SymmetryIDs)
	if err != nil {
		t.Fatal(err)
	}
	if len(grp.perms) != 2 {
		t.Fatalf("group order %d, want 2 (procs 0 and 2 exchangeable)", len(grp.perms))
	}
	for k, p := range grp.perms {
		if p.ProcIdx(1) != 1 {
			t.Fatalf("perm %d moves the distinguished process: %v", k, p.Proc)
		}
	}
}

// TestBuildGroupOrderCap: past maxGroupOrder the group is rejected with
// ErrSymmetryUnsupported instead of materializing a huge table.
func TestBuildGroupOrderCap(t *testing.T) {
	t.Parallel()
	inputs := make([]value.Value, 9)
	sys := symSystem(t, inputs...)
	_, err := buildGroup(sys, nil, SymmetryIDs)
	if !errors.Is(err, ErrSymmetryUnsupported) {
		t.Fatalf("9 identical processes (9! orbits) accepted: %v", err)
	}
}

// applySchedule walks a schedule through the successor relation,
// checking each step's (proc, branch, op, resp) labels match, and
// returns the reached configuration.
func applySchedule(t *testing.T, sys *System, from *Config, sched []Step) *Config {
	t.Helper()
	c := from
	for k, s := range sched {
		nexts, steps, err := successors(sys, c, s.Proc)
		if err != nil {
			t.Fatalf("step %d (%v): %v", k, s, err)
		}
		if s.Branch < 0 || s.Branch >= len(nexts) {
			t.Fatalf("step %d (%v): branch out of range (%d offered)", k, s, len(nexts))
		}
		if steps[s.Branch] != s {
			t.Fatalf("step %d: schedule says %v, graph offers %v", k, s, steps[s.Branch])
		}
		c = nexts[s.Branch]
	}
	return c
}

// TestSymmetryEquivariance is the orbit property test: for every
// admissible permutation p and schedule S, replaying the permuted
// schedule permuteStep(S, p) reaches exactly the configuration whose
// concrete key is AppendKeyUnder(C, p) of the original endpoint — the
// encoder renders precisely the state the permuted execution builds.
// Along the way it cross-checks that the pruned canonical() agrees
// with a naive minimum over the full group and that the canonical key
// is orbit-invariant.
func TestSymmetryEquivariance(t *testing.T) {
	t.Parallel()
	for _, mode := range []Symmetry{SymmetryIDs, SymmetryValues} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			inputs := []value.Value{5, 5, 9}
			if mode == SymmetryValues {
				inputs = []value.Value{5, 7, 9}
			}
			sys := symSystem(t, inputs...)
			grp, err := buildGroup(sys, nil, mode)
			if err != nil {
				t.Fatal(err)
			}
			if len(grp.perms) < 2 {
				t.Fatalf("trivial group (order %d) makes this test vacuous", len(grp.perms))
			}
			// Collect every reachable configuration with its discovery
			// schedule via an unreduced exploration.
			rep, err := Check(sys, nil, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			g := rep.g
			root := g.configs[0]
			sc, sc2 := &keyScratch{}, &keyScratch{}
			var naive, under []byte
			for id, c := range g.configs {
				sched := g.pathTo(id)
				aliased, gi, orbit := grp.canonical(sc, c)
				// canonical's result aliases its scratch; keep a stable copy.
				key := append([]byte(nil), aliased...)
				// Pruned minimum == naive minimum over the full group.
				naive = c.AppendKey(naive[:0])
				for k := 1; k < len(grp.perms); k++ {
					under = c.AppendKeyUnder(under[:0], grp.perms[k])
					if bytes.Compare(under, naive) < 0 {
						naive = append(naive[:0], under...)
					}
				}
				if !bytes.Equal(key, naive) {
					t.Fatalf("config %d: canonical() != naive group minimum", id)
				}
				if orbit < 1 || len(grp.perms)%orbit != 0 {
					t.Fatalf("config %d: orbit size %d does not divide group order %d",
						id, orbit, len(grp.perms))
				}
				under = c.AppendKeyUnder(under[:0], grp.perms[gi])
				if !bytes.Equal(under, key) {
					t.Fatalf("config %d: reported minimizer %d does not realize the canonical key", id, gi)
				}
				for k := 1; k < len(grp.perms); k++ {
					p := grp.perms[k]
					// Equivariance: the permuted schedule is executable and
					// lands on the configuration the encoder claims.
					perm := make([]Step, len(sched))
					for j, s := range sched {
						perm[j] = permuteStep(s, p)
					}
					d := applySchedule(t, sys, root, perm)
					under = c.AppendKeyUnder(under[:0], p)
					got := d.AppendKey(nil)
					if !bytes.Equal(got, under) {
						t.Fatalf("config %d, perm %d: permuted execution reaches a different state than AppendKeyUnder renders", id, k)
					}
					// Orbit invariance: the permuted image canonicalizes to
					// the same key.
					dkey, _, dorbit := grp.canonical(sc2, d)
					if !bytes.Equal(dkey, key) {
						t.Fatalf("config %d, perm %d: canonical key not orbit-invariant", id, k)
					}
					if dorbit != orbit {
						t.Fatalf("config %d, perm %d: orbit size %d != %d", id, k, dorbit, orbit)
					}
				}
			}
		})
	}
}

// TestPermuteMask: bits move with the permutation, high bits survive.
func TestPermuteMask(t *testing.T) {
	t.Parallel()
	p := spec.MakePerm([]int{1, 2, 0}, nil)
	if got := permuteMask(0b101, p); got != 0b011 {
		t.Fatalf("permuteMask(0b101) = %b, want 011", got)
	}
	if got := permuteMask(1<<63|1, p); got != 1<<63|2 {
		t.Fatalf("high bit not preserved: %b", got)
	}
	if got := permuteMask(0b111, spec.Perm{}); got != 0b111 {
		t.Fatalf("identity mask changed: %b", got)
	}
}

// Out-of-core exploration: the disk-backed configuration store.
//
// With Options.Store set, the explorer keeps the active BFS frontier
// hot in memory while everything only the post-exploration analyses
// need — the interning table, per-configuration outcome metadata, and
// the encoded edge lists of completed levels — lives in the mmap'd
// append-only arenas of internal/store. Spilled state is written in
// exactly the delta-encoded section format the checkpoint package
// persists, so a snapshot's edge section is served zero-copy from the
// arena's committed prefix, and the completed run's Report, witnesses,
// valency labels, DOT output, and event stream stay byte-identical to
// the in-memory engine at any worker count.
//
// What stays resident per configuration: the BFS tree columns (parent
// id + Step), the canon column, one (nil after spill) *Config pointer,
// and two arena offsets. Everything else is decoded on demand through
// metaAt/edgeIter below.
package explore

import (
	"encoding/binary"
	"fmt"

	"setagree/internal/machine"
	"setagree/internal/store"
	"setagree/internal/task"
	"setagree/internal/value"
)

// diskState is the explorer's view of an open configuration store.
type diskState struct {
	s *store.Store
	// metaOff[id] and edgeOff[id] locate config id's outcome record in
	// the Meta arena and its encoded edge list in the Edges arena; both
	// are written in id order, so each record ends where the next one
	// starts (or at the arena's Len for the last).
	metaOff []int64
	edgeOff []int64
	// edgeDurable is the Edges-arena prefix covered by completed level
	// barriers. Snapshots serialize exactly this prefix; the merge of a
	// partially-failed level may append beyond it, and those bytes never
	// enter a snapshot.
	edgeDurable int64
	// Single-threaded merge/intern scratch.
	edgeRec []byte
	metaRec []byte
}

// lookup probes the interning table for a configuration key. Forked
// graphs (fork.go) probe their own overlay first, then fall through to
// the parent snapshot's frozen table; the two are disjoint, so the
// order only matters for performance (fresh keys dominate post-fork).
func (g *graph) lookup(key []byte) (int, bool) {
	if g.disk != nil {
		return g.disk.s.Lookup(key)
	}
	if id, ok := g.ids[string(key)]; ok {
		return id, true
	}
	if g.baseIDs != nil {
		id, ok := g.baseIDs[string(key)]
		return id, ok
	}
	return 0, false
}

// intern adds a fresh configuration under its binary key (the
// canonical orbit key when symmetry is on; the stored configuration
// stays concrete), recording its BFS parent and the group index gi
// that canonicalizes it, and returns the new id. The caller has
// already verified the key is absent. In-memory the string conversion
// here is the single per-state key allocation; on the disk store the
// key and the outcome metadata record go to the arenas instead.
func (g *graph) intern(key []byte, c *Config, parent int, via Step, gi int) (int, error) {
	id := len(g.configs)
	if d := g.disk; d != nil {
		sid, err := d.s.Intern(key)
		if err != nil {
			return 0, err
		}
		if sid != id {
			return 0, fmt.Errorf("explore: internal: store assigned id %d to configuration %d", sid, id)
		}
		d.metaRec = appendMeta(d.metaRec[:0], g.sys, c)
		off, err := d.s.Meta.Append(d.metaRec)
		if err != nil {
			return 0, err
		}
		d.metaOff = append(d.metaOff, off)
	} else {
		g.ids[string(key)] = id
		g.edges = append(g.edges, nil)
	}
	g.configs = append(g.configs, c)
	g.parent = append(g.parent, parent)
	g.parentE = append(g.parentE, via)
	g.canon = append(g.canon, gi)
	return id, nil
}

// spillExpanded drops the resident *Config of every configuration in
// [start, end) — they have been expanded, and every later read goes
// through the meta arena (or tree replay, for the rare witness-time
// configAt). The root (id 0) always stays resident: the snapshot
// fingerprint and the symmetry root-stability check key it directly.
func (g *graph) spillExpanded(start, end int) {
	if g.disk == nil {
		return
	}
	if start < 1 {
		start = 1
	}
	for id := start; id < end; id++ {
		g.configs[id] = nil
	}
}

// configAt returns the concrete configuration with the given id,
// replaying the BFS tree from the nearest resident ancestor when it
// was spilled. Replay is witness-extraction machinery (stabilizer
// checks), never the hot path.
func (g *graph) configAt(id int) *Config {
	if c := g.configs[id]; c != nil {
		return c
	}
	var chain []int
	at := id
	for g.configs[at] == nil {
		chain = append(chain, at)
		at = g.parent[at]
	}
	c := g.configs[at]
	for k := len(chain) - 1; k >= 0; k-- {
		s := g.parentE[chain[k]]
		nexts, steps, err := successors(g.sys, c, s.Proc)
		if err != nil || s.Branch < 0 || s.Branch >= len(nexts) || steps[s.Branch] != s {
			// The same replay succeeded when the configuration was first
			// interned (or restored), so failure here is memory corruption,
			// not an input error.
			panic(fmt.Sprintf("explore: internal: spilled configuration %d does not replay", chain[k]))
		}
		c = nexts[s.Branch]
	}
	return c
}

// metaRec is the decoded per-configuration outcome record: everything
// the safety, liveness, valency, and DOT passes read from a
// configuration, without the configuration.
type metaRec struct {
	mask     uint64
	status   []machine.Status
	decision []value.Value
	poised   []int // object index process i is poised on, -1 when none
}

// appendMeta encodes c's outcome record: mask uvarint, then per
// process a status byte, decision varint, and poised-object varint.
func appendMeta(dst []byte, sys *System, c *Config) []byte {
	dst = binary.AppendUvarint(dst, c.SteppedMask)
	for i := range c.Procs {
		dst = append(dst, byte(c.Procs[i].Status))
		dst = binary.AppendVarint(dst, int64(c.Procs[i].Decision))
		obj := -1
		if poise, ok := machine.Poised(sys.Programs[i], c.Procs[i]); ok {
			obj = poise.Obj
		}
		dst = binary.AppendVarint(dst, int64(obj))
	}
	return dst
}

// metaAt fills m with config id's outcome record, decoding it from the
// meta arena when the configuration was spilled. m's slices are reused
// across calls; callers keep one metaRec per scan.
func (g *graph) metaAt(id int, m *metaRec) {
	n := g.sys.Procs()
	if len(m.status) != n {
		m.status = make([]machine.Status, n)
		m.decision = make([]value.Value, n)
		m.poised = make([]int, n)
	}
	if c := g.configs[id]; c != nil {
		m.mask = c.SteppedMask
		for i := range c.Procs {
			m.status[i] = c.Procs[i].Status
			m.decision[i] = c.Procs[i].Decision
			m.poised[i] = -1
			if poise, ok := machine.Poised(g.sys.Programs[i], c.Procs[i]); ok {
				m.poised[i] = poise.Obj
			}
		}
		return
	}
	d := g.disk
	start := d.metaOff[id]
	end := d.s.Meta.Len()
	if id+1 < len(d.metaOff) {
		end = d.metaOff[id+1]
	}
	d.s.Meta.FaultSpan(start, end)
	dec := arenaDec{a: d.s.Meta, off: start}
	m.mask = dec.uvarint()
	for i := 0; i < n; i++ {
		m.status[i] = machine.Status(dec.byte())
		m.decision[i] = value.Value(dec.varint())
		m.poised[i] = int(dec.varint())
	}
}

// live reports whether process i is poised to take a step.
func (m *metaRec) live(i int) bool { return m.status[i] == machine.StatusPoised }

// quiescent reports whether no process can take a step.
func (m *metaRec) quiescent() bool {
	for _, s := range m.status {
		if s == machine.StatusPoised {
			return false
		}
	}
	return true
}

// outcome projects the record for task predicates — the twin of
// Config.Outcome.
func (m *metaRec) outcome(inputs []value.Value) task.Outcome {
	o := task.NewOutcome(inputs)
	for i := range m.status {
		switch m.status[i] {
		case machine.StatusDecided:
			o.Decide(i, m.decision[i])
		case machine.StatusAborted:
			o.Aborted[i] = true
		}
		o.Stepped[i] = m.mask&(1<<uint(i)) != 0
	}
	return o
}

// arenaDec decodes store-arena records in place. The records are the
// explorer's own write-once bytes, so there is no error path: a
// malformed record indicates memory corruption and panics via the
// arena's bounds check.
type arenaDec struct {
	a   *store.Arena
	off int64
}

func (d *arenaDec) byte() byte {
	b := d.a.Byte(d.off)
	d.off++
	return b
}

func (d *arenaDec) uvarint() uint64 {
	var x uint64
	var s uint
	for {
		b := d.byte()
		if b < 0x80 {
			return x | uint64(b)<<s
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (d *arenaDec) varint() int64 {
	ux := d.uvarint()
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x
}

// step decodes exactly the bytes appendStep (and the checkpoint
// encoder's putStep) writes.
func (d *arenaDec) step() Step {
	var s Step
	s.Op.Method = value.Method(d.byte())
	s.Op.Arg = value.Value(d.varint())
	s.Op.Label = int(d.varint())
	s.Resp = value.Value(d.varint())
	s.Proc = int(d.varint())
	s.Obj = int(d.varint())
	s.Branch = int(d.varint())
	return s
}

// appendV and appendStep are the append-style twins of the checkpoint
// encoder's putV/putStep, producing byte-identical records — which is
// what lets a snapshot serve its edge section straight from the arena.
func appendV(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendStep(dst []byte, s Step) []byte {
	dst = append(dst, byte(s.Op.Method))
	dst = appendV(dst, int64(s.Op.Arg))
	dst = appendV(dst, int64(s.Op.Label))
	dst = appendV(dst, int64(s.Resp))
	dst = appendV(dst, int64(s.Proc))
	dst = appendV(dst, int64(s.Obj))
	dst = appendV(dst, int64(s.Branch))
	return dst
}

// edgeIter walks one configuration's outgoing edges, from the
// in-memory adjacency list or by decoding the configuration's edge
// record in the Edges arena. Iteration order is identical in both
// modes: the canonical merge order the record was written in.
type edgeIter struct {
	es  []edge // in-memory mode
	i   int
	rem int // remaining records in disk mode; -1 flags in-memory mode
	dec arenaDec
}

// edgeIter returns an iterator over config id's outgoing edges.
// Unexpanded configurations (frontier at an aborted run) have none.
func (g *graph) edgeIter(id int) edgeIter {
	d := g.disk
	if d == nil {
		if id >= len(g.edges) {
			return edgeIter{rem: 0}
		}
		return edgeIter{es: g.edges[id], rem: -1}
	}
	if id >= len(d.edgeOff) {
		return edgeIter{rem: 0}
	}
	start := d.edgeOff[id]
	end := d.s.Edges.Len()
	if id+1 < len(d.edgeOff) {
		end = d.edgeOff[id+1]
	}
	d.s.Edges.FaultSpan(start, end)
	dec := arenaDec{a: d.s.Edges, off: start}
	rem := int(dec.varint())
	return edgeIter{rem: rem, dec: dec}
}

func (it *edgeIter) next() (edge, bool) {
	if it.rem < 0 {
		if it.i >= len(it.es) {
			return edge{}, false
		}
		e := it.es[it.i]
		it.i++
		return e, true
	}
	if it.rem == 0 {
		return edge{}, false
	}
	it.rem--
	var e edge
	e.to = int(it.dec.varint())
	e.step = it.dec.step()
	e.g = int(it.dec.varint())
	return e, true
}

// Close releases the report's disk-backed configuration store,
// unmapping and removing its arena files. It is a no-op (and nil-safe)
// for in-memory explorations, and idempotent. After Close the report's
// counts, violations, and valency summary remain valid, but the graph
// walks — WriteDOT, Adversary — must not be called.
func (r *Report) Close() error {
	if r == nil || r.g == nil || r.g.disk == nil {
		return nil
	}
	d := r.g.disk
	r.g.disk = nil
	return d.s.Close()
}

package explore_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/objects"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// detRun is everything a determinism comparison looks at: the full
// report (counts, violations with witnesses and cycles, valency), the
// DOT rendering, and the event stream with the clock pinned and the
// workers field masked (it is the one field that legitimately differs
// between runs).
type detRun struct {
	rep    *explore.Report
	dot    string
	events []string
}

func runDeterministic(t *testing.T, sys *explore.System, tsk task.Task, workers int, valency bool) detRun {
	t.Helper()
	var evBuf bytes.Buffer
	fixed := time.Date(2017, 7, 25, 0, 0, 0, 0, time.UTC)
	em := obs.NewEmitterAt(&evBuf, func() time.Time { return fixed })
	rep, err := explore.Check(sys, tsk, explore.Options{
		Workers:        workers,
		Valency:        valency,
		Events:         em,
		HeartbeatEvery: 16,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var dot bytes.Buffer
	if err := rep.WriteDOT(&dot, 1<<20); err != nil {
		t.Fatalf("workers=%d: WriteDOT: %v", workers, err)
	}
	return detRun{rep: rep, dot: dot.String(), events: maskWorkersField(t, evBuf.String())}
}

// maskWorkersField re-marshals each JSONL event line without its
// "workers" key so streams from runs at different worker counts can be
// compared byte-for-byte (json.Marshal sorts map keys).
func maskWorkersField(t *testing.T, stream string) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSuffix(stream, "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		delete(m, "workers")
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

// TestWorkersDeterminism: the level-synchronized parallel BFS must be
// byte-identical to the sequential exploration at every worker count —
// same counts, same violation witnesses and cycles, same valency
// labels and critical configurations, same DOT bytes, and the same
// heartbeat/terminal event stream (modulo the workers field).
func TestWorkersDeterminism(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		prot    programs.Protocol
		inputs  []value.Value
		tsk     task.Task
		valency bool
	}{
		{
			// Solved protocol with valency + critical configurations.
			name:    "algorithm2-dac",
			prot:    programs.Algorithm2(3, 1),
			inputs:  []value.Value{1, 0, 0},
			tsk:     task.DAC{N: 3, P: 0},
			valency: true,
		},
		{
			// Safety violation: the witness schedule must be identical.
			name:   "naive-2sa-safety",
			prot:   programs.NaiveTwoSAConsensus(2),
			inputs: []value.Value{0, 1},
			tsk:    task.Consensus{N: 2},
		},
		{
			// Liveness violations: witness + cycle must be identical.
			name:   "oversubscribed-liveness",
			prot:   programs.OverSubscribedConsensus(2),
			inputs: []value.Value{0, 1, 2},
			tsk:    task.Consensus{N: 3},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys, err := tc.prot.System(tc.inputs)
			if err != nil {
				t.Fatal(err)
			}
			base := runDeterministic(t, sys, tc.tsk, 1, tc.valency)
			if base.rep.States == 0 {
				t.Fatal("empty exploration")
			}
			for _, w := range []int{2, 8} {
				got := runDeterministic(t, sys, tc.tsk, w, tc.valency)
				if !reflect.DeepEqual(got.rep, base.rep) {
					t.Errorf("workers=%d: report differs from sequential run:\n got %+v\nwant %+v",
						w, got.rep, base.rep)
				}
				if got.dot != base.dot {
					t.Errorf("workers=%d: DOT output differs from sequential run", w)
				}
				if !reflect.DeepEqual(got.events, base.events) {
					t.Errorf("workers=%d: event stream differs from sequential run:\n got %v\nwant %v",
						w, got.events, base.events)
				}
				if tc.valency && !reflect.DeepEqual(got.rep.Valency, base.rep.Valency) {
					t.Errorf("workers=%d: valency report differs", w)
				}
			}
		})
	}
}

// TestWorkersDeterminismStateLimit: hitting MaxStates mid-level must
// cut at the same configuration regardless of worker count, so the
// partial report and error text are identical too.
func TestWorkersDeterminismStateLimit(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	run := func(workers int) (*explore.Report, string) {
		sys, err := prot.System([]value.Value{1, 0, 0})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := explore.Check(sys, nil, explore.Options{MaxStates: 40, Workers: workers})
		if !errors.Is(err, explore.ErrStateLimit) {
			t.Fatalf("workers=%d: got %v, want ErrStateLimit", workers, err)
		}
		return rep, err.Error()
	}
	baseRep, baseErr := run(1)
	if baseRep.States != 41 {
		t.Fatalf("partial report has %d states, want MaxStates+1 = 41", baseRep.States)
	}
	for _, w := range []int{2, 8} {
		rep, errText := run(w)
		if rep.States != baseRep.States || rep.Transitions != baseRep.Transitions ||
			rep.Quiescent != baseRep.Quiescent {
			t.Errorf("workers=%d: partial report %d/%d/%d differs from sequential %d/%d/%d",
				w, rep.States, rep.Transitions, rep.Quiescent,
				baseRep.States, baseRep.Transitions, baseRep.Quiescent)
		}
		if errText != baseErr {
			t.Errorf("workers=%d: error %q differs from sequential %q", w, errText, baseErr)
		}
	}
}

// TestTooManyProcsRejected: SteppedMask is a uint64, so a 65th process
// must be rejected up front instead of silently overflowing the mask.
func TestTooManyProcsRejected(t *testing.T) {
	t.Parallel()
	prog := machine.NewBuilder("trivial", 4).
		Decide(machine.R(machine.RegInput)).
		MustBuild()
	n := explore.MaxProcs + 1
	sys := &explore.System{
		Programs: make([]*machine.Program, n),
		Inputs:   make([]value.Value, n),
	}
	for i := 0; i < n; i++ {
		sys.Programs[i] = prog
		sys.Inputs[i] = 0
	}
	_, err := explore.Check(sys, nil, explore.Options{})
	if err == nil {
		t.Fatalf("%d processes accepted; SteppedMask would overflow", n)
	}
	if !errors.Is(err, machine.ErrProgram) || !strings.Contains(err.Error(), "64") {
		t.Fatalf("got %v, want an ErrProgram naming the 64-process bound", err)
	}
	// At the bound itself the mask still fits.
	okSys := &explore.System{
		Programs: make([]*machine.Program, explore.MaxProcs),
		Inputs:   make([]value.Value, explore.MaxProcs),
	}
	for i := 0; i < explore.MaxProcs; i++ {
		okSys.Programs[i] = prog
		okSys.Inputs[i] = 0
	}
	if _, err := explore.Check(okSys, nil, explore.Options{}); err != nil {
		t.Fatalf("%d processes rejected: %v", explore.MaxProcs, err)
	}
}

// TestViolationErrorNilErr: a Violation without an Err (e.g. a zero
// value) must render its kind instead of panicking.
func TestViolationErrorNilErr(t *testing.T) {
	t.Parallel()
	var zero explore.Violation
	if got := zero.Error(); got != "violation" {
		t.Fatalf("zero value renders %q, want %q", got, "violation")
	}
	v := &explore.Violation{Kind: explore.ViolationSafety}
	if got := v.Error(); got != "safety" {
		t.Fatalf("nil-Err safety violation renders %q, want %q", got, "safety")
	}
	withErr := &explore.Violation{Kind: explore.ViolationSafety, Err: errors.New("boom")}
	if got := withErr.Error(); got != "safety: boom" {
		t.Fatalf("got %q, want %q", got, "safety: boom")
	}
}

// badObjectSystem is a system whose program passes Validate (object
// indices are only checked for >= 0 there) but references an object the
// system does not have, so expansion fails at depth 2 — after the first
// level has already been merged.
func badObjectSystem() *explore.System {
	prog := machine.NewBuilder("bad-obj", 4).
		Invoke(2, 0, value.MethodWrite, machine.C(1), machine.Operand{}).
		Invoke(2, 5, value.MethodWrite, machine.C(1), machine.Operand{}).
		Decide(machine.C(0)).
		MustBuild()
	return &explore.System{
		Programs: []*machine.Program{prog, prog},
		Objects:  []spec.Spec{objects.NewRegister()},
		Inputs:   []value.Value{0, 1},
	}
}

// TestEngineErrorFlushesObservability: when successor computation fails
// mid-exploration, Check must still emit exactly one terminal event
// (explore.error, with the error text) and flush the partial counters —
// the paths the pre-fix code returned early from, dropping both.
func TestEngineErrorFlushesObservability(t *testing.T) {
	t.Parallel()
	sink := obs.NewSink()
	var evBuf bytes.Buffer
	em := obs.NewEmitter(&evBuf)
	rep, err := explore.Check(badObjectSystem(), nil, explore.Options{Obs: sink, Events: em})
	if err == nil {
		t.Fatal("out-of-range object index not reported")
	}
	if rep == nil {
		t.Fatal("engine error dropped the partial report")
	}
	if rep.States == 0 {
		t.Fatal("partial report lost the states explored before the failure")
	}
	snap := sink.Snapshot()
	if snap.Counters["explore.runs"] != 1 || snap.Counters["explore.errors"] != 1 {
		t.Fatalf("counters runs=%d errors=%d, want 1/1",
			snap.Counters["explore.runs"], snap.Counters["explore.errors"])
	}
	if snap.Counters["explore.states"] != int64(rep.States) {
		t.Fatalf("flushed %d states, report has %d",
			snap.Counters["explore.states"], rep.States)
	}
	lines := strings.Split(strings.TrimSpace(evBuf.String()), "\n")
	last := lines[len(lines)-1]
	var ev map[string]any
	if jsonErr := json.Unmarshal([]byte(last), &ev); jsonErr != nil {
		t.Fatalf("bad terminal event %q: %v", last, jsonErr)
	}
	if ev["event"] != "explore.error" {
		t.Fatalf("terminal event is %v, want explore.error", ev["event"])
	}
	if msg, _ := ev["error"].(string); !strings.Contains(msg, "out of range") {
		t.Fatalf("terminal event error field %q does not carry the engine error", msg)
	}
	if _, ok := ev["workers"]; !ok {
		t.Fatal("terminal event is missing the workers field")
	}
	terminal := 0
	for _, line := range lines {
		if strings.Contains(line, `"event":"explore.done"`) ||
			strings.Contains(line, `"event":"explore.error"`) ||
			strings.Contains(line, `"event":"explore.statelimit"`) {
			terminal++
		}
	}
	if terminal != 1 {
		t.Fatalf("%d terminal events emitted, want exactly 1", terminal)
	}
}

// TestEngineErrorDeterministicAcrossWorkers: the canonical-first error
// rule must surface the same error and the same partial counts at any
// worker count.
func TestEngineErrorDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	run := func(workers int) (*explore.Report, string) {
		rep, err := explore.Check(badObjectSystem(), nil, explore.Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: out-of-range object index not reported", workers)
		}
		return rep, err.Error()
	}
	baseRep, baseErr := run(1)
	for _, w := range []int{2, 8} {
		rep, errText := run(w)
		if errText != baseErr {
			t.Errorf("workers=%d: error %q differs from sequential %q", w, errText, baseErr)
		}
		if rep.States != baseRep.States || rep.Transitions != baseRep.Transitions {
			t.Errorf("workers=%d: partial counts %d/%d differ from sequential %d/%d",
				w, rep.States, rep.Transitions, baseRep.States, baseRep.Transitions)
		}
	}
}

// TestValencyNonBinaryFlushes: a valency request on a non-binary
// protocol fails after the graph is built; the partial report and the
// explore.error terminal event must both survive.
func TestValencyNonBinaryFlushes(t *testing.T) {
	t.Parallel()
	prog := machine.NewBuilder("decide-two", 4).
		Decide(machine.C(2)).
		MustBuild()
	sys := &explore.System{
		Programs: []*machine.Program{prog},
		Inputs:   []value.Value{0},
	}
	var evBuf bytes.Buffer
	em := obs.NewEmitter(&evBuf)
	rep, err := explore.Check(sys, nil, explore.Options{Valency: true, Events: em})
	if !errors.Is(err, explore.ErrNotBinary) {
		t.Fatalf("got %v, want ErrNotBinary", err)
	}
	if rep == nil || rep.States != 1 {
		t.Fatalf("partial report %+v, want the 1 explored state", rep)
	}
	if !strings.Contains(evBuf.String(), `"event":"explore.error"`) {
		t.Fatalf("no explore.error terminal event in %q", evBuf.String())
	}
}

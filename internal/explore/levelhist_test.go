package explore_test

import (
	"testing"

	"setagree/internal/explore"
	"setagree/internal/obs"
	"setagree/internal/programs"
	"setagree/internal/task"
	"setagree/internal/value"
)

// TestLevelLatencyHistogram pins the explorer's per-level latency hook:
// a sinked run records one explore.level_ns observation per completed
// BFS level, and an unsinked run stays unobserved (the nil-safe path).
func TestLevelLatencyHistogram(t *testing.T) {
	t.Parallel()
	prot := programs.Algorithm2(3, 1)
	sys, err := prot.System([]value.Value{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewSink()
	rep, err := explore.Check(sys, task.DAC{N: 3, P: 0}, explore.Options{Obs: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Solved() {
		t.Fatal(rep.Violations[0])
	}
	h := sink.Snapshot().Histograms["explore.level_ns"]
	if h.Count == 0 {
		t.Fatal("no explore.level_ns observations recorded")
	}
	// One observation per level: the deepest schedule bounds the level
	// count, and every level is observed exactly once, so the count is
	// strictly below the state count and above zero.
	if h.Count >= int64(rep.States) {
		t.Errorf("level_ns count %d >= states %d: not per-level", h.Count, rep.States)
	}
	if h.P50 <= 0 || h.P99 < h.P50 {
		t.Errorf("implausible quantiles: p50=%d p99=%d", h.P50, h.P99)
	}
}

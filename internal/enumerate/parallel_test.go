package enumerate_test

import (
	"fmt"
	"reflect"
	"testing"

	"setagree/internal/enumerate"
	"setagree/internal/task"
)

// renderReport flattens a Report into a canonical string with every
// pointer dereferenced, so equality means byte-identical content.
func renderReport(rep *enumerate.Report) string {
	s := fmt.Sprintf("candidates=%d pruned=%d states=%d\nsolvers=%v\ninconclusive=%v\n",
		rep.Candidates, rep.Pruned, rep.States, rep.Solvers, rep.Inconclusive)
	if rep.SampleFailure != nil {
		f := rep.SampleFailure
		s += fmt.Sprintf("failure: %v on %v: %v\nwitness=%v cycle=%v\n",
			f.Assignment.Shapes, f.Inputs, f.Violation.Error(),
			f.Violation.Witness, f.Violation.Cycle)
	}
	return s
}

// TestWorkersDeterminismDAC pins the tentpole contract: the same sweep
// renders a byte-identical Report at every worker count, because
// results are aggregated by candidate index.
func TestWorkersDeterminismDAC(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(3)
	var reports []*enumerate.Report
	for _, w := range []int{1, 2, 8} {
		rep, err := enumerate.FalsifyDAC(f, 3, vectors, enumerate.SweepOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		reports = append(reports, rep)
	}
	base := renderReport(reports[0])
	for i, rep := range reports[1:] {
		if !reflect.DeepEqual(reports[0], rep) {
			t.Errorf("report at workers=%d differs structurally from workers=1", []int{2, 8}[i])
		}
		if got := renderReport(rep); got != base {
			t.Errorf("report at workers=%d renders differently:\n%s\nvs\n%s", []int{2, 8}[i], got, base)
		}
	}
	if reports[0].SampleFailure == nil {
		t.Error("no sample failure recorded")
	}
	if reports[0].States == 0 {
		t.Error("no states tallied")
	}
}

// TestWorkersDeterminismSymmetric repeats the determinism check on the
// symmetric sweep, including the solver list (the positive control has
// solvers, so their order is exercised too).
func TestWorkersDeterminismSymmetric(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(2)
	seq, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, vectors, enumerate.SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, vectors, enumerate.SweepOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("workers=1 and workers=8 reports differ:\n%+v\nvs\n%+v", seq, par)
	}
	if len(seq.Solvers) == 0 {
		t.Fatal("positive control found no solvers")
	}
}

// TestInconclusiveTolerated pins the motivating bugfix: a sweep
// containing state-limit candidates completes, listing them in
// Report.Inconclusive with the triggering input vector, instead of
// aborting with an error.
func TestInconclusiveTolerated(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(3)
	// A 3-process check needs far more than 4 configurations, so every
	// candidate that reaches the model checker blows this limit — unless
	// an early vector refutes it inside the budget.
	rep, err := enumerate.FalsifyDAC(f, 3, vectors, enumerate.SweepOptions{
		MaxStatesPerCandidate: 4,
	})
	if err != nil {
		t.Fatalf("state-limited sweep aborted: %v", err)
	}
	if len(rep.Inconclusive) == 0 {
		t.Fatal("no inconclusive candidates recorded at MaxStatesPerCandidate=4")
	}
	if rep.Candidates == 0 {
		t.Fatal("sweep checked no candidates")
	}
	for i, inc := range rep.Inconclusive {
		if len(inc.Inputs) != 3 {
			t.Fatalf("inconclusive[%d] has inputs %v, want a 3-vector", i, inc.Inputs)
		}
		if len(inc.Assignment.Shapes) != 2 {
			t.Fatalf("inconclusive[%d] has %d shapes, want 2", i, len(inc.Assignment.Shapes))
		}
	}
	if len(rep.Solvers) != 0 {
		t.Errorf("state-limited candidates leaked into Solvers: %v", rep.Solvers)
	}

	// The same sweep with a generous limit settles every candidate.
	full, err := enumerate.FalsifyDAC(f, 3, vectors, enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Inconclusive) != 0 {
		t.Errorf("%d inconclusive candidates at the default limit", len(full.Inconclusive))
	}
	if full.Candidates != rep.Candidates {
		t.Errorf("candidate counts differ: %d (limited) vs %d (full)", rep.Candidates, full.Candidates)
	}
}

// TestInconclusiveDeterminism: the inconclusive list is also
// aggregation-order independent.
func TestInconclusiveDeterminism(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	vectors := binaryVectors(3)
	opts := func(w int) enumerate.SweepOptions {
		return enumerate.SweepOptions{MaxStatesPerCandidate: 4, Workers: w}
	}
	seq, err := enumerate.FalsifyDAC(f, 3, vectors, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := enumerate.FalsifyDAC(f, 3, vectors, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("inconclusive-heavy reports differ between workers=1 and workers=8")
	}
}

// TestProgressCallback checks the progress stream: serialized calls,
// nondecreasing counters, and a final snapshot that agrees with the
// returned Report.
func TestProgressCallback(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	var snaps []enumerate.Progress
	rep, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2),
		enumerate.SweepOptions{
			Workers: 4,
			// The callback is serialized by the sweep, so plain appends
			// are safe even at Workers > 1.
			OnProgress: func(p enumerate.Progress) { snaps = append(snaps, p) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != rep.Candidates {
		t.Fatalf("%d progress calls for %d candidates", len(snaps), rep.Candidates)
	}
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.Candidates != prev.Candidates+1 {
			t.Fatalf("snapshot %d: candidates %d after %d", i, cur.Candidates, prev.Candidates)
		}
		if cur.Inconclusive < prev.Inconclusive || cur.States < prev.States {
			t.Fatalf("snapshot %d not monotone: %+v after %+v", i, cur, prev)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Candidates != rep.Candidates || last.Inconclusive != len(rep.Inconclusive) ||
		last.States != rep.States || last.Pruned != rep.Pruned {
		t.Fatalf("final snapshot %+v disagrees with report (%d candidates, %d inconclusive, %d states, %d pruned)",
			last, rep.Candidates, len(rep.Inconclusive), rep.States, rep.Pruned)
	}
}

// Package enumerate synthesizes bounded families of candidate protocols
// and model-checks every member against a task. Impossibility theorems
// (4.2, 5.2, 7.1) quantify over all algorithms and cannot be established
// by running code; this package reproduces their *shape* executably: for
// a natural finite family of protocols over exactly the object base the
// theorem permits, no member solves the task, and each failure comes
// with a concrete counterexample run (DESIGN.md substitution 1).
//
// A candidate program is a bounded straight-line phase sequence — D
// shared-memory invocations drawn from a menu — followed by a guarded
// final action: one action when the last response is ⊥, another
// otherwise. Actions decide a constant, the input, or a recorded
// response, abort (distinguished n-DAC process only), or retry the whole
// phase sequence (loop).
package enumerate

import (
	"fmt"
	"strconv"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/spec"
	"setagree/internal/value"
)

// ArgSource selects the value operand of a synthesized invocation.
type ArgSource uint8

// Argument sources.
const (
	// ArgInput proposes/writes the process input.
	ArgInput ArgSource = iota + 1
	// ArgZero proposes/writes the constant 0.
	ArgZero
	// ArgOne proposes/writes the constant 1.
	ArgOne
	// ArgPrev proposes/writes the previous invocation's response (the
	// input for the first invocation).
	ArgPrev
)

func (a ArgSource) String() string {
	switch a {
	case ArgInput:
		return "input"
	case ArgZero:
		return "0"
	case ArgOne:
		return "1"
	case ArgPrev:
		return "prev"
	default:
		return "arg(" + strconv.Itoa(int(a)) + ")"
	}
}

// Invoke is one menu entry: an operation template against a fixed
// object index.
type Invoke struct {
	// Obj is the shared-object index in the family's object list.
	Obj int
	// Method is the operation kind.
	Method value.Method
	// Arg selects the value operand for methods that take one.
	Arg ArgSource
	// Label is the constant label for methods that take one.
	Label int
}

func (iv Invoke) String() string {
	s := "obj" + strconv.Itoa(iv.Obj) + "." + iv.Method.String()
	if iv.Method.TakesArg() {
		s += "(" + iv.Arg.String() + ")"
	}
	return s
}

// Action is a synthesized final action.
type Action uint8

// Final actions.
const (
	// ActDecideInput decides the process input.
	ActDecideInput Action = iota + 1
	// ActDecideLast decides the last response.
	ActDecideLast
	// ActDecideFirst decides the first invocation's response.
	ActDecideFirst
	// ActDecideZero and ActDecideOne decide constants.
	ActDecideZero
	ActDecideOne
	// ActAbort aborts (allowed only for the distinguished process).
	ActAbort
	// ActRetry restarts the phase sequence.
	ActRetry
)

func (a Action) String() string {
	switch a {
	case ActDecideInput:
		return "decide(input)"
	case ActDecideLast:
		return "decide(last)"
	case ActDecideFirst:
		return "decide(first)"
	case ActDecideZero:
		return "decide(0)"
	case ActDecideOne:
		return "decide(1)"
	case ActAbort:
		return "abort"
	case ActRetry:
		return "retry"
	default:
		return "act(" + strconv.Itoa(int(a)) + ")"
	}
}

// Shape is one synthesized program shape: the invocation sequence and
// the guarded final action pair.
type Shape struct {
	// Seq is the phase sequence of invocations.
	Seq []Invoke
	// OnBottom runs when the last response is ⊥; OnValue otherwise.
	OnBottom, OnValue Action
}

// String renders the shape compactly.
func (s Shape) String() string {
	out := ""
	for i, iv := range s.Seq {
		if i > 0 {
			out += "; "
		}
		out += iv.String()
	}
	return out + "; if ⊥ " + s.OnBottom.String() + " else " + s.OnValue.String()
}

// Family is a bounded candidate family.
type Family struct {
	// Objects is the permitted object base (the theorem's hypothesis).
	Objects []spec.Spec
	// Menu is the set of invocation templates.
	Menu []Invoke
	// Depth is the exact number of invocations per phase.
	Depth int
	// Actions is the permitted final-action set.
	Actions []Action
	// AllowAbort additionally permits ActAbort (distinguished role).
	AllowAbort bool
}

// Shapes enumerates every program shape of the family.
func (f *Family) Shapes() []Shape {
	actions := f.Actions
	if f.AllowAbort {
		actions = append(append([]Action(nil), actions...), ActAbort)
	}
	var out []Shape
	seq := make([]Invoke, f.Depth)
	var rec func(d int)
	rec = func(d int) {
		if d == f.Depth {
			for _, ob := range actions {
				for _, ov := range actions {
					if ov == ActRetry && ob == ActRetry {
						continue // loops forever without deciding; skip the degenerate shape
					}
					s := Shape{Seq: append([]Invoke(nil), seq...), OnBottom: ob, OnValue: ov}
					out = append(out, s)
				}
			}
			return
		}
		for _, iv := range f.Menu {
			seq[d] = iv
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// respReg returns the register holding invocation i's response.
func respReg(i int) machine.RegID { return machine.RegID(2 + i) }

// Program materializes a shape as a machine program.
func (f *Family) Program(s Shape, name string) (*machine.Program, error) {
	b := machine.NewBuilder(name, 2+f.Depth)
	b.Label("start")
	for i, iv := range s.Seq {
		var arg machine.Operand
		if iv.Method.TakesArg() {
			switch iv.Arg {
			case ArgInput:
				arg = machine.R(machine.RegInput)
			case ArgZero:
				arg = machine.C(0)
			case ArgOne:
				arg = machine.C(1)
			case ArgPrev:
				if i == 0 {
					arg = machine.R(machine.RegInput)
				} else {
					arg = machine.R(respReg(i - 1))
				}
			default:
				return nil, fmt.Errorf("shape %s: bad arg source: %w", s, machine.ErrProgram)
			}
		}
		var label machine.Operand
		if iv.Method.TakesLabel() {
			label = machine.C(value.Value(iv.Label))
		}
		b.Invoke(respReg(i), iv.Obj, iv.Method, arg, label)
	}
	last := machine.R(respReg(f.Depth - 1))
	b.JEq(last, machine.C(value.Bottom), "onbottom")
	if err := emitAction(b, s.OnValue, f.Depth); err != nil {
		return nil, err
	}
	b.Label("onbottom")
	if err := emitAction(b, s.OnBottom, f.Depth); err != nil {
		return nil, err
	}
	return b.Build()
}

func emitAction(b *machine.Builder, a Action, depth int) error {
	switch a {
	case ActDecideInput:
		b.Decide(machine.R(machine.RegInput))
	case ActDecideLast:
		b.Decide(machine.R(respReg(depth - 1)))
	case ActDecideFirst:
		b.Decide(machine.R(respReg(0)))
	case ActDecideZero:
		b.Decide(machine.C(0))
	case ActDecideOne:
		b.Decide(machine.C(1))
	case ActAbort:
		b.Abort()
	case ActRetry:
		b.Jmp("start")
	default:
		return fmt.Errorf("unknown action %d: %w", a, machine.ErrProgram)
	}
	return nil
}

// Assignment pairs one shape per role. Role 0 is the program of the
// distinguished process (or of every process for symmetric tasks).
type Assignment struct {
	// Shapes holds one shape per role.
	Shapes []Shape
}

// Report summarizes a falsification sweep. Its contents depend only on
// the candidate order, never on scheduling: sweeps aggregate worker
// results by candidate index, so the same sweep renders byte-identically
// at any SweepOptions.Workers setting.
type Report struct {
	// Candidates is the number of protocol assignments checked.
	Candidates int
	// Pruned counts assignments rejected by the cheap solo prefilter.
	Pruned int
	// States is the total number of configurations explored across all
	// model checks, partial (state-limited) explorations included.
	States int
	// Solvers lists assignments that passed every check (expected empty
	// for impossibility experiments), in candidate order.
	Solvers []Assignment
	// Inconclusive lists assignments the sweep could not settle: some
	// model check hit SweepOptions.MaxStatesPerCandidate and no input
	// vector refuted the assignment. They are listed in candidate order;
	// re-run with a larger limit to settle them.
	Inconclusive []Inconclusive
	// SampleFailure is the refuted assignment with the lowest candidate
	// index, with its violation, for reporting.
	SampleFailure *Failure
	// SymmetryFallbacks counts candidates that requested symmetry
	// reduction (SweepOptions.Symmetry) but were checked unreduced
	// because their system rejected it (asymmetric objects, or an
	// analysis the quotient does not support). The verdicts for those
	// candidates are exact either way.
	SymmetryFallbacks int
}

// Failure is one refuted candidate.
type Failure struct {
	// Assignment is the refuted candidate.
	Assignment Assignment
	// Violation is the checker's counterexample.
	Violation *explore.Violation
	// Inputs is the input vector it failed on.
	Inputs []value.Value
}

// Inconclusive is one candidate the sweep could not settle: the model
// check exceeded the per-candidate state limit on Inputs, and no other
// input vector refuted the candidate.
type Inconclusive struct {
	// Assignment is the unsettled candidate.
	Assignment Assignment
	// Inputs is the first input vector whose check hit the state limit.
	Inputs []value.Value
}

package enumerate_test

import (
	"testing"

	"setagree/internal/enumerate"
	"setagree/internal/explore"
	"setagree/internal/objects"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// theorem42Family is the object base Theorem 4.2 permits for the
// 3-DAC problem (n = 2): one 2-consensus object, one register, one
// strong 2-SA object.
func theorem42Family(depth int) *enumerate.Family {
	return &enumerate.Family{
		Objects: []spec.Spec{
			objects.NewConsensus(2),
			objects.NewRegister(),
			objects.NewTwoSA(),
		},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
			{Obj: 2, Method: value.MethodPropose, Arg: enumerate.ArgInput},
		},
		Depth: depth,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput,
			enumerate.ActDecideLast,
			enumerate.ActDecideFirst,
			enumerate.ActDecideZero,
			enumerate.ActDecideOne,
			enumerate.ActRetry,
		},
	}
}

func binaryVectors(n int) [][]value.Value {
	var out [][]value.Value
	for mask := 0; mask < 1<<uint(n); mask++ {
		in := make([]value.Value, n)
		for i := range in {
			if mask&(1<<uint(i)) != 0 {
				in[i] = 1
			}
		}
		out = append(out, in)
	}
	return out
}

// TestShapesEnumeration pins the family arithmetic: depth-1 shapes =
// menu * (actions^2 - 1) (the retry/retry pair is skipped).
func TestShapesEnumeration(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	got := len(f.Shapes())
	want := 4 * (6*6 - 1)
	if got != want {
		t.Fatalf("depth-1 shapes = %d, want %d", got, want)
	}
	f.AllowAbort = true
	got = len(f.Shapes())
	want = 4 * (7*7 - 1)
	if got != want {
		t.Fatalf("abort-enabled shapes = %d, want %d", got, want)
	}
}

// TestProgramMaterialization checks a shape compiles into a runnable
// program with the intended structure.
func TestProgramMaterialization(t *testing.T) {
	t.Parallel()
	f := theorem42Family(2)
	s := enumerate.Shape{
		Seq: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgPrev},
		},
		OnBottom: enumerate.ActRetry,
		OnValue:  enumerate.ActDecideFirst,
	}
	prog, err := f.Program(s, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(prog.Instrs) < 4 {
		t.Fatalf("program too short:\n%s", prog.Disassemble())
	}
}

// TestPositiveControlConsensus validates the sweep machinery on a task
// that IS solvable inside the family: 2-consensus from a 2-consensus
// object. The sweep must find at least one solver (propose-input,
// decide-response survives), so an empty solver list in the DAC sweep
// below is meaningful.
func TestPositiveControlConsensus(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	rep, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solvers) == 0 {
		t.Fatalf("no solver found among %d candidates (machinery broken?)", rep.Candidates)
	}
	found := false
	for _, s := range rep.Solvers {
		sh := s.Shapes[0]
		if sh.Seq[0].Obj == 0 && sh.OnValue == enumerate.ActDecideLast {
			found = true
		}
	}
	if !found {
		t.Errorf("expected the canonical propose/decide-response solver; got %v", rep.Solvers)
	}
}

// TestFalsifyThreeConsensusFromTwoConsensus is Theorem 5.2's shape at
// the family scale: no depth-1 candidate solves 3-consensus over
// {2-consensus, register, 2-SA}.
func TestFalsifyThreeConsensusFromTwoConsensus(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	rep, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 3}, binaryVectors(3), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solvers) != 0 {
		t.Fatalf("family contains %d alleged 3-consensus solvers: %v", len(rep.Solvers), rep.Solvers)
	}
	if rep.Candidates == 0 {
		t.Fatal("sweep checked no candidates")
	}
	if rep.SampleFailure == nil {
		t.Fatal("no sample failure recorded")
	}
	if len(rep.SampleFailure.Violation.Witness) == 0 && rep.SampleFailure.Violation.Kind != explore.ViolationHaltUndecided {
		t.Errorf("sample failure lacks a witness: %+v", rep.SampleFailure.Violation)
	}
}

// TestFalsifyDACDepth1 is experiment E3 at depth 1: no candidate in the
// Theorem 4.2 family solves 3-DAC.
func TestFalsifyDACDepth1(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	rep, err := enumerate.FalsifyDAC(f, 3, binaryVectors(3), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solvers) != 0 {
		t.Fatalf("family contains %d alleged 3-DAC solvers: %v", len(rep.Solvers), rep.Solvers)
	}
	if rep.Candidates == 0 {
		t.Fatal("sweep checked no candidates")
	}
	t.Logf("depth-1 sweep: %d candidates, %d pruned by solo filter", rep.Candidates, rep.Pruned)
}

// TestFalsifyDACDepth2 extends E3 to depth-2 phase sequences (the
// family Theorem 4.2 refutes grows to tens of thousands of pairs).
func TestFalsifyDACDepth2(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("large candidate family")
	}
	f := theorem42Family(2)
	rep, err := enumerate.FalsifyDAC(f, 3, [][]value.Value{
		{1, 0, 0}, {0, 1, 1}, {0, 0, 0}, {1, 1, 1}, {0, 1, 0}, {1, 0, 1},
	}, enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solvers) != 0 {
		t.Fatalf("family contains %d alleged 3-DAC solvers: %v", len(rep.Solvers), rep.Solvers)
	}
	t.Logf("depth-2 sweep: %d candidates, %d pruned", rep.Candidates, rep.Pruned)
}

// TestSoloFilterAcceptsCanonical checks the prefilter keeps the obvious
// good citizen and rejects an obvious bad one.
func TestSoloFilterBehaviour(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	// decide(input) after proposing to consensus: survives solo probing.
	rep, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2},
		[][]value.Value{{0, 0}}, enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned == 0 {
		t.Error("solo filter pruned nothing")
	}
	if rep.Candidates == 0 {
		t.Error("solo filter pruned everything")
	}
}

// TestFalsifyConsensusFromTwoSA reproduces the shape of "the 2-SA
// object has consensus number 1" — a fact Lemma 6.4 leans on: no
// depth-2 candidate solves 2-consensus over {2-SA, register} alone.
// (Registers and 2-SA both have consensus number 1.)
func TestFalsifyConsensusFromTwoSA(t *testing.T) {
	t.Parallel()
	f := &enumerate.Family{
		Objects: []spec.Spec{objects.NewTwoSA(), objects.NewRegister()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
		},
		Depth: 2,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
	rep, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solvers) != 0 {
		t.Fatalf("found %d alleged 2-consensus-from-2-SA solvers: %v", len(rep.Solvers), rep.Solvers)
	}
	if rep.Candidates == 0 {
		t.Fatal("nothing checked")
	}
	t.Logf("2-SA consensus sweep: %d candidates, %d pruned", rep.Candidates, rep.Pruned)
}

// TestDisableSoloFilterEquivalence: the ablation knob changes cost, not
// verdicts.
func TestDisableSoloFilterEquivalence(t *testing.T) {
	t.Parallel()
	f := theorem42Family(1)
	on, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 2}, binaryVectors(2),
		enumerate.SweepOptions{DisableSoloFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Solvers) != len(off.Solvers) {
		t.Fatalf("solver counts differ: %d (filter on) vs %d (off)", len(on.Solvers), len(off.Solvers))
	}
	if off.Candidates <= on.Candidates {
		t.Fatalf("filter off checked %d <= %d candidates", off.Candidates, on.Candidates)
	}
	if off.Pruned != 0 {
		t.Fatalf("filter off pruned %d", off.Pruned)
	}
}

// TestFalsifyThreeConsensusFromQueue is the other half of "the queue
// has consensus number exactly 2" (its level >= 2 is the verified
// one-token protocol, programs.ConsensusFromQueue): no depth-2
// candidate solves 3-consensus over {one-token queue, register}.
func TestFalsifyThreeConsensusFromQueue(t *testing.T) {
	t.Parallel()
	f := &enumerate.Family{
		Objects: []spec.Spec{objects.NewQueueWith(99), objects.NewRegister()},
		Menu: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodDequeue},
			{Obj: 0, Method: value.MethodEnqueue, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodWrite, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
		},
		Depth: 2,
		Actions: []enumerate.Action{
			enumerate.ActDecideInput, enumerate.ActDecideLast, enumerate.ActDecideFirst,
			enumerate.ActDecideZero, enumerate.ActDecideOne, enumerate.ActRetry,
		},
	}
	rep, err := enumerate.FalsifySymmetric(f, task.Consensus{N: 3}, binaryVectors(3), enumerate.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Solvers) != 0 {
		t.Fatalf("found %d alleged 3-consensus-from-queue solvers: %v", len(rep.Solvers), rep.Solvers)
	}
	t.Logf("queue 3-consensus sweep: %d candidates, %d pruned", rep.Candidates, rep.Pruned)
}

// TestShapeRendering pins the human-readable forms used in sweep
// reports.
func TestShapeRendering(t *testing.T) {
	t.Parallel()
	s := enumerate.Shape{
		Seq: []enumerate.Invoke{
			{Obj: 0, Method: value.MethodPropose, Arg: enumerate.ArgInput},
			{Obj: 1, Method: value.MethodRead},
		},
		OnBottom: enumerate.ActRetry,
		OnValue:  enumerate.ActDecideLast,
	}
	got := s.String()
	want := "obj0.PROPOSE(input); obj1.READ; if ⊥ retry else decide(last)"
	if got != want {
		t.Errorf("Shape.String() = %q, want %q", got, want)
	}
	for a, name := range map[enumerate.Action]string{
		enumerate.ActDecideInput: "decide(input)",
		enumerate.ActDecideLast:  "decide(last)",
		enumerate.ActDecideFirst: "decide(first)",
		enumerate.ActDecideZero:  "decide(0)",
		enumerate.ActDecideOne:   "decide(1)",
		enumerate.ActAbort:       "abort",
		enumerate.ActRetry:       "retry",
	} {
		if a.String() != name {
			t.Errorf("Action(%d).String() = %q, want %q", a, a.String(), name)
		}
	}
	for src, name := range map[enumerate.ArgSource]string{
		enumerate.ArgInput: "input",
		enumerate.ArgZero:  "0",
		enumerate.ArgOne:   "1",
		enumerate.ArgPrev:  "prev",
	} {
		if src.String() != name {
			t.Errorf("ArgSource(%d).String() = %q, want %q", src, src.String(), name)
		}
	}
}

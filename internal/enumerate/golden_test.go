package enumerate

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// TestPrepareDACGoldenOrder pins the prepared-candidate enumeration
// order of the Theorem 7.1 reference family byte for byte. Everything
// downstream leans on this order being frozen: shard ranges address
// candidates by global index across machines, RangeReports merge by
// index, event streams carry indices, and the memoizer attributes
// equivalence-class verdicts back to indices. A change that reorders
// enumeration (reordering Family.Shapes, the solo prefilter, or the
// p×q nesting in PrepareDAC) is not necessarily wrong — but it is a
// wire-format break for any stored shard state, so it must show up
// here and be made deliberately.
func TestPrepareDACGoldenOrder(t *testing.T) {
	t.Parallel()
	p, err := PrepareDAC(shardFamily(), 3, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Candidates() != 1116 {
		t.Fatalf("candidates = %d, want 1116", p.Candidates())
	}
	if p.RowWidth() != 31 {
		t.Fatalf("row width = %d, want 31 (q-shape survivors; 36 p-shapes x 31 = 1116)", p.RowWidth())
	}

	// Literal spot checks: ends of the list plus one interior index,
	// so a failure here reads as actual programs, not just a hash.
	spot := map[int]string{
		0:    "[obj0.PROPOSE(input); if ⊥ decide(input) else decide(input) obj0.PROPOSE(input); if ⊥ decide(input) else decide(input)]",
		1:    "[obj0.PROPOSE(input); if ⊥ decide(input) else decide(input) obj0.PROPOSE(input); if ⊥ decide(input) else decide(last)]",
		557:  "[obj0.PROPOSE(input); if ⊥ retry else decide(last) obj1.READ; if ⊥ retry else decide(input)]",
		1115: "[obj1.READ; if ⊥ abort else decide(input) obj1.READ; if ⊥ retry else decide(input)]",
	}
	for i, want := range spot {
		if got := fmt.Sprintf("%v", p.Assignment(i).Shapes); got != want {
			t.Errorf("candidate %d = %s, want %s", i, got, want)
		}
	}

	// The full order, hashed. Regenerate by printing every
	// Assignment(i).Shapes line and re-hashing — and bump the stored
	// digest only alongside a deliberate enumeration-order change.
	var b strings.Builder
	for i := 0; i < p.Candidates(); i++ {
		fmt.Fprintf(&b, "%v\n", p.Assignment(i).Shapes)
	}
	sum := sha256.Sum256([]byte(b.String()))
	const want = "1c259eb150391793eccaa310634e623c1baaa530090a67d76bf0818c56da7dca"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("enumeration-order digest = %s, want %s", got, want)
	}
}

// Prefix-trie sweep scheduling and forked explorations.
//
// Candidates of one family differ only late in their programs: the
// first Depth-1 invocations are drawn from the same menu positions, so
// the candidate list factors into a trie of shared instruction
// prefixes. The sweep walks that trie depth-first — candidates are
// claimed in an order that keeps each prefix group contiguous — and
// the first member of a group to need a concrete exploration freezes
// the BFS at the last all-shared level (explore.SnapshotPrefix); every
// later member forks the frozen search (explore.Snapshot.Fork) instead
// of re-exploring the common prefix. Forked reports are byte-identical
// to from-scratch checks, so scheduling stays invisible in every
// Report. At depth 1 there is no shared prefix and the trie degenerates
// to the flat list; the memo layer (memo.go) carries the speedup there.
package enumerate

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/obs"
	"setagree/internal/value"
)

// maxSnapshots caps the number of live prefix snapshots per
// runCandidates call; groups beyond the cap explore from scratch.
const maxSnapshots = 256

// snapEntry is one lazily built prefix snapshot, shared by every
// candidate of a (prefix group, input vector) cell.
type snapEntry struct {
	once sync.Once
	snap *explore.Snapshot
	err  error
	uses atomic.Int64
}

// runStats aggregates the memoization counters of one runCandidates
// call for the terminal sweep event.
type runStats struct {
	memoHits        atomic.Int64
	dedupCandidates atomic.Int64
	forkStatesSaved atomic.Int64
}

// runState is the per-runCandidates sweep engine: the claimed slice of
// candidates, the memo/trie scheduling state, and the resolved metric
// handles. It is shared by the worker goroutines; everything mutable
// is lock- or atomic-protected.
type runState struct {
	p       *Prepared
	cands   []candidate
	vectors [][]value.Value
	opts    SweepOptions

	// useMemo gates the whole memo/fork layer: memoization is on, the
	// sweep is not value-symmetry-reduced (whose quotient interacts
	// with the 0↔1 canonical swap), and the family has the guarded
	// layout the key schema assumes.
	useMemo bool
	// order is the claim order: identity normally, prefix-grouped
	// (trie depth-first) when forking is possible.
	order []int
	// group holds each candidate's prefix-group id, -1 for candidates
	// outside the memoizable layout. Nil when forking is off.
	group []int

	// parts caches each distinct role program's key serializations
	// (identity and 0↔1-swapped) and its swap/id-safety verdicts.
	// Programs are shared across many candidates, so this is built once
	// up front and read-only after.
	parts map[*machine.Program]progMeta
	// memoOK precomputes memoizable() per candidate, so the per-claim
	// dispatch is an index instead of a layout walk. Nil unless useMemo.
	memoOK []bool

	snapMu sync.Mutex
	snaps  map[uint64]*snapEntry

	stats runStats

	// Memo metric handles resolve only when useMemo, so unmemoized
	// sweeps never register memo counters in the sink.
	memoCounter  *obs.Counter
	dedupCounter *obs.Counter
	forkCounter  *obs.Counter
}

func newRunState(p *Prepared, lo, hi int, vectors [][]value.Value, opts SweepOptions) *runState {
	rs := &runState{p: p, cands: p.cands[lo:hi], vectors: vectors, opts: opts}
	rs.order = make([]int, len(rs.cands))
	for i := range rs.order {
		rs.order[i] = i
	}
	rs.useMemo = !opts.DisableMemo && p.memo != nil && p.depth >= 1 &&
		opts.Symmetry != explore.SymmetryValues
	if !rs.useMemo {
		return rs
	}
	rs.memoCounter = opts.Obs.Counter("sweep.memo_hits")
	rs.dedupCounter = opts.Obs.Counter("sweep.dedup_candidates")
	rs.forkCounter = opts.Obs.Counter("sweep.fork_states_saved")
	rs.parts = make(map[*machine.Program]progMeta)
	rs.memoOK = make([]bool, len(rs.cands))
	for i, c := range rs.cands {
		if !rs.memoizable(c) {
			continue
		}
		rs.memoOK[i] = true
		for _, p := range rs.rolesOf(c) {
			if _, ok := rs.parts[p]; !ok {
				rs.parts[p] = progMeta{
					parts: [2]progParts{
						buildProgParts(p, rs.p.depth, false),
						buildProgParts(p, rs.p.depth, true),
					},
					sigmaSafe: programSigmaSafe(p),
					idFree:    programIDFree(p),
				}
			}
		}
	}
	if p.depth >= 2 {
		rs.buildTrie()
	}
	return rs
}

// check dispatches one candidate: the memoized engine when it applies,
// the plain per-candidate checker otherwise. Both produce identical
// verdicts, states, and error wrapping.
func (rs *runState) check(ci int) outcome {
	if !rs.useMemo || !rs.memoOK[ci] {
		return checkCandidate(rs.cands[ci], rs.p.objs, rs.p.tsk, rs.vectors, rs.opts)
	}
	return rs.checkMemo(ci)
}

// prefixKey serializes the instructions every group member shares: the
// first depth-1 invocations of each role program. Keys are built from
// instruction bytes, not shapes, so shape aliases (prev vs input in the
// first slot) land in the same group.
func prefixKey(roles []*machine.Program, depth int) string {
	var dst []byte
	for _, p := range roles {
		dst = binary.AppendUvarint(dst, uint64(p.NumRegs))
		for pc := 0; pc < depth-1; pc++ {
			dst = appendInstrKey(dst, p.Instrs[pc], false)
		}
	}
	return string(dst)
}

// buildTrie assigns each memoizable candidate its prefix group and
// reorders claiming so groups run contiguously (stable within a group:
// ascending candidate index). The permutation affects scheduling only —
// outcomes fold by candidate index — so reports are unchanged.
func (rs *runState) buildTrie() {
	keys := make([]string, len(rs.cands))
	rs.group = make([]int, len(rs.cands))
	gid := make(map[string]int)
	for i, c := range rs.cands {
		if !rs.memoOK[i] {
			rs.group[i] = -1
			continue
		}
		k := prefixKey(rs.rolesOf(c), rs.p.depth)
		keys[i] = k
		id, ok := gid[k]
		if !ok {
			id = len(gid)
			gid[k] = id
		}
		rs.group[i] = id
	}
	sort.SliceStable(rs.order, func(a, b int) bool {
		ia, ib := rs.order[a], rs.order[b]
		if keys[ia] != keys[ib] {
			return keys[ia] < keys[ib]
		}
		return ia < ib
	})
	rs.snaps = make(map[uint64]*snapEntry)
}

// snapshotFor returns the prefix snapshot for the candidate's group on
// vector vi, building it once from the first requester's system (any
// member's prefix levels are identical by the group key). Nil when the
// group is untracked, the cap is reached, or the snapshot itself
// failed (state limit, cancellation) — callers then explore from
// scratch, which reproduces the failure or verdict identically.
func (rs *runState) snapshotFor(ci, vi int, sys *explore.System) *snapEntry {
	if rs.snaps == nil || rs.group[ci] < 0 {
		return nil
	}
	key := uint64(rs.group[ci])<<32 | uint64(vi)
	rs.snapMu.Lock()
	ent, ok := rs.snaps[key]
	if !ok {
		if len(rs.snaps) >= maxSnapshots {
			rs.snapMu.Unlock()
			return nil
		}
		ent = &snapEntry{}
		rs.snaps[key] = ent
	}
	rs.snapMu.Unlock()
	ent.once.Do(func() {
		ent.snap, ent.err = explore.SnapshotPrefix(sys, rs.p.tsk, rs.p.depth-1, explore.Options{
			MaxStates: rs.opts.MaxStatesPerCandidate,
			Ctx:       rs.opts.Ctx,
		})
	})
	if ent.err != nil {
		return nil
	}
	return ent
}

// explore runs one concrete model check, forking the group's prefix
// snapshot when the configuration supports it (plain engine, depth with
// a shareable prefix). Forked and from-scratch reports are
// byte-identical; fork savings are counted from the second use of each
// snapshot (the first had to explore the prefix to build it).
func (rs *runState) explore(ci, vi int, sys *explore.System, effMode explore.Symmetry) (*explore.Report, error) {
	cover := &explore.CoverRequest{GuardPC: rs.p.depth - 1}
	if effMode == explore.SymmetryOff && rs.p.depth >= 2 {
		if ent := rs.snapshotFor(ci, vi, sys); ent != nil {
			r, err := ent.snap.Fork(sys, explore.Options{
				MaxStates:      rs.opts.MaxStatesPerCandidate,
				Obs:            rs.opts.Obs,
				HeartbeatEvery: -1,
				Ctx:            rs.opts.Ctx,
				Cover:          cover,
			})
			if !errors.Is(err, explore.ErrForkUnsupported) {
				if ent.uses.Add(1) > 1 {
					saved := int64(ent.snap.States())
					rs.stats.forkStatesSaved.Add(saved)
					rs.forkCounter.Add(saved)
				}
				return r, err
			}
		}
	}
	return explore.Check(sys, rs.p.tsk, explore.Options{
		MaxStates:      rs.opts.MaxStatesPerCandidate,
		Symmetry:       effMode,
		Obs:            rs.opts.Obs,
		HeartbeatEvery: -1,
		Ctx:            rs.opts.Ctx,
		Cover:          cover,
	})
}

// Cross-candidate memoization for falsification sweeps.
//
// Sweep candidates are massively redundant: distinct shapes often
// materialize into identical programs (decide(last) and decide(first)
// coincide at depth 1, prev and input coincide for the first
// invocation), many pairs are related by the 0↔1 value swap, peer
// processes' input vectors are exchangeable, and an action branch the
// checker never reaches cannot influence the verdict. The memoizer
// collapses all four: every concrete model check is recorded under a
// canonical key — the lexicographic minimum, over the admissible value
// swap, of the serialized (symmetry mode, state cap, role programs,
// canonical input vector) — with the branch slots the check proved dead
// wildcarded out, and later candidates whose canonical key matches any
// recorded entry reuse its verdict class and state count instead of
// exploring.
//
// Soundness rests on three facts, each checked before it is used:
//
//   - Byte-identical live instructions: two systems that agree on every
//     instruction the exploration executes produce the same
//     configuration graph, so masking provably-dead action slots
//     (explore.Report.Cover) is exact.
//   - The 0↔1 swap: when every object is value-oblivious
//     (spec.ValueOblivious) with a swap-fixed initial state, every role
//     program is free of value arithmetic and never reads the id
//     register, and the task declares task.ValueSymmetric01, swapping
//     the constants 0/1 in programs and inputs maps runs bijectively
//     onto runs — States, Transitions, and the verdict class are
//     invariant (the concrete counterexample is not; see
//     materializeViolation).
//   - Peer exchange: when the task declares task.PeerSymmetric and the
//     peer processes share one id-oblivious program, permuting the peer
//     entries of the input vector relabels runs bijectively, so vectors
//     are keyed with their peer suffix sorted.
//
// Entries record the verdict class and state count only. Both are
// exact: a state-limited check always stops at MaxStates+1 interned
// configurations, and the bijections above preserve counts. Violations
// are lazily re-derived by one concrete re-check of the single failure
// a report surfaces.
package enumerate

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"setagree/internal/explore"
	"setagree/internal/machine"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// memoClass is the memoizable part of a verdict.
type memoClass uint8

const (
	// classSolved: the check completed with no violation.
	classSolved memoClass = iota + 1
	// classRefuted: the check found a violation.
	classRefuted
	// classLimit: the check hit the state limit (explore.ErrStateLimit).
	classLimit
)

// memoEntry is one recorded check: its verdict class and the exact
// number of configurations the exploration interned.
type memoEntry struct {
	class  memoClass
	states int
}

// memoTable maps canonical candidate keys to recorded verdicts. One
// table serves a whole Prepared sweep across every CheckRange call and
// worker; first insert wins (duplicates are identical by construction).
// masks is a bitset of the dead-slot masks inserts have actually used,
// so lookups probe only key variants that can possibly exist instead of
// serializing all 2^(2·roles) of them.
type memoTable struct {
	mu    sync.RWMutex
	m     map[string]memoEntry
	masks atomic.Uint32
}

func newMemoTable() *memoTable {
	return &memoTable{m: make(map[string]memoEntry)}
}

// get probes by byte key; the string conversion in the map index does
// not allocate, keeping the (hot) miss-then-hit probe loop cheap.
func (t *memoTable) get(k []byte) (memoEntry, bool) {
	t.mu.RLock()
	e, ok := t.m[string(k)]
	t.mu.RUnlock()
	return e, ok
}

func (t *memoTable) put(k string, mask uint8, e memoEntry) {
	for {
		old := t.masks.Load()
		if old&(1<<mask) != 0 || t.masks.CompareAndSwap(old, old|1<<mask) {
			break
		}
	}
	t.mu.Lock()
	if _, ok := t.m[k]; !ok {
		t.m[k] = e
	}
	t.mu.Unlock()
}

// sigmaPerm is the 0↔1 value swap as a spec permutation (identity on
// processes and every other value).
var sigmaPerm = spec.MakePerm(nil, map[value.Value]value.Value{0: 1, 1: 0})

// sigmaEligible reports whether the family's fixed inputs — objects and
// task — admit the 0↔1 swap: every object declares value obliviousness
// and starts in a swap-fixed state (checked through the symmetry key
// encoder, so objects without spec.Symmetric support are conservatively
// rejected), and the task declares its predicate 0↔1-invariant.
func sigmaEligible(objs []spec.Spec, tsk task.Task) bool {
	if !task.ValueSymmetric01(tsk) {
		return false
	}
	for _, o := range objs {
		if !spec.ValueOblivious(o) {
			return false
		}
		init := o.Init()
		under, ok := spec.AppendStateKeyUnder(nil, init, sigmaPerm)
		if !ok || !bytes.Equal(under, spec.AppendStateKey(nil, init)) {
			return false
		}
	}
	return true
}

// programIDFree reports that no operand reads the process-id register
// R1 — the condition under which a program's behavior is independent of
// which process runs it.
func programIDFree(p *machine.Program) bool {
	for _, in := range p.Instrs {
		if (in.A.IsReg && in.A.Reg == machine.RegID1) ||
			(in.B.IsReg && in.B.Reg == machine.RegID1) {
			return false
		}
	}
	return true
}

// programSigmaSafe reports that the program commutes with the 0↔1
// value swap: only value-oblivious instruction kinds (no arithmetic,
// no order comparisons), no id-register reads, and no register-sourced
// invocation labels (labels name menu entries structurally and are
// exempt from the swap, which is only sound for constants).
func programSigmaSafe(p *machine.Program) bool {
	if !programIDFree(p) {
		return false
	}
	for _, in := range p.Instrs {
		switch in.Kind {
		case machine.InstrInvoke:
			if in.B.IsReg {
				return false
			}
		case machine.InstrJEq, machine.InstrJmp, machine.InstrDecide,
			machine.InstrAbort, machine.InstrHalt:
		default:
			return false
		}
	}
	return true
}

// swap01 applies the 0↔1 swap to one value.
func swap01(v value.Value) value.Value {
	switch v {
	case 0:
		return 1
	case 1:
		return 0
	default:
		return v
	}
}

// maskWildcard replaces a masked action slot in serialized keys. It
// cannot collide with a real instruction, whose leading kind byte is
// always a small enum value.
const maskWildcard = 0xFF

func appendOperandKey(dst []byte, o machine.Operand, swap bool) []byte {
	if o.IsReg {
		return append(dst, 1, byte(o.Reg))
	}
	v := o.Const
	if swap {
		v = swap01(v)
	}
	dst = append(dst, 0)
	return binary.AppendVarint(dst, int64(v))
}

func appendInstrKey(dst []byte, in machine.Instr, swap bool) []byte {
	dst = append(dst, byte(in.Kind), byte(in.Dst), byte(in.Method))
	dst = binary.AppendVarint(dst, int64(in.Obj))
	dst = binary.AppendVarint(dst, int64(in.Target))
	dst = appendOperandKey(dst, in.A, swap)
	// An Invoke's B operand is the constant invocation label, a
	// structural name rather than a data value; it stays unswapped.
	dst = appendOperandKey(dst, in.B, swap && in.Kind != machine.InstrInvoke)
	return dst
}

// progParts is one role program serialized once (under one swap
// choice), with the byte ranges of its two action slots — the
// instruction run when the guarded response is a value (PC depth+1)
// and when it is ⊥ (PC depth+2) — recorded so masked key variants
// assemble by segment copy instead of re-walking the instructions.
type progParts struct {
	full                   []byte
	aOff, aEnd, bOff, bEnd int
}

// progMeta is everything the memoizer precomputes about one distinct
// role program: both key serializations plus the per-program halves of
// the swap and peer-exchange admissibility checks, so per-candidate
// eligibility is a flag AND instead of an instruction walk.
type progMeta struct {
	parts     [2]progParts
	sigmaSafe bool
	idFree    bool
}

func buildProgParts(p *machine.Program, depth int, swap bool) progParts {
	var pp progParts
	dst := binary.AppendUvarint(nil, uint64(p.NumRegs))
	dst = binary.AppendUvarint(dst, uint64(len(p.Instrs)))
	for pc, in := range p.Instrs {
		switch pc {
		case depth + 1:
			pp.aOff = len(dst)
		case depth + 2:
			pp.bOff = len(dst)
		}
		dst = appendInstrKey(dst, in, swap)
		switch pc {
		case depth + 1:
			pp.aEnd = len(dst)
		case depth + 2:
			pp.bEnd = len(dst)
		}
	}
	pp.full = dst
	return pp
}

// keyer builds the canonical memo keys of one candidate. The key
// layout puts the two action slots of every role program at the END —
// header, per-role prefix instructions, input vector, then the slot
// tail — so every dead-slot mask variant shares one serialized prefix:
// a lookup builds the prefix once and emits only the few tail bytes
// per probed mask. The program portion of the prefix is itself reused
// across vectors (it changes only with the effective symmetry mode),
// and role programs are serialized once per sweep (runState.parts)
// and referenced here. Keyers are pooled; one keyer serves one
// candidate at a time on one worker goroutine.
type keyer struct {
	rs            *runState
	sigma, canonV bool
	// parts[0] holds the identity serializations, parts[1] the
	// 0↔1-swapped ones (filled for every role; used only when sigma).
	// Role counts are 1 or 2 by construction, so fixed arrays avoid
	// per-candidate slice allocations.
	nRoles     int
	parts      [2][2]progParts
	buf0, buf1 []byte
	// g0len/g1len end the header+programs portion (valid for lastMode),
	// p0len/p1len the full prefix including the current vector.
	g0len, g1len int
	p0len, p1len int
	haveMode     bool
	lastMode     explore.Symmetry
}

// keyerPool recycles keyers (and their grown key buffers) across
// candidates; newKeyer re-binds every field, so pooled state never
// leaks.
var keyerPool = sync.Pool{New: func() any { return new(keyer) }}

// newKeyer binds a pooled keyer to one memoizable candidate, settling
// its swap and peer-exchange eligibility from the precomputed program
// metadata. The role projection indexes progs directly — progs[0] is
// the distinguished (or only) role, progs[1] the shared peer program —
// so no per-candidate role slice is built.
func (rs *runState) newKeyer(c candidate) *keyer {
	k := keyerPool.Get().(*keyer)
	k.rs = rs
	k.haveMode = false
	k.nRoles = 1
	if rs.p.roles == 2 {
		k.nRoles = 2
	}
	sigmaSafe, idFree := true, true
	for ri := 0; ri < k.nRoles; ri++ {
		m := rs.parts[c.progs[ri]]
		k.parts[0][ri] = m.parts[0]
		k.parts[1][ri] = m.parts[1]
		sigmaSafe = sigmaSafe && m.sigmaSafe
		idFree = idFree && m.idFree
	}
	k.sigma = rs.p.sigmaOK && sigmaSafe
	k.canonV = rs.p.peerOK && idFree
	return k
}

func (k *keyer) release() { keyerPool.Put(k) }

// assembleProg serializes the vector- and mask-independent key head:
// the effective symmetry mode and state cap (both verdict-relevant)
// and every role program with its action slots excised.
func (k *keyer) assembleProg(dst []byte, swapIdx int, effMode explore.Symmetry) []byte {
	dst = append(dst, byte(effMode))
	dst = binary.AppendUvarint(dst, uint64(k.rs.opts.MaxStatesPerCandidate))
	dst = append(dst, byte(k.nRoles))
	for _, pp := range k.parts[swapIdx][:k.nRoles] {
		dst = append(dst, pp.full[:pp.aOff]...)
		dst = append(dst, pp.full[pp.aEnd:pp.bOff]...)
		dst = append(dst, pp.full[pp.bEnd:]...)
	}
	return dst
}

// appendVector emits the input vector — swapped alongside the programs
// and, when canonV, with its peer suffix sorted.
func (k *keyer) appendVector(dst []byte, swapIdx int, in []value.Value) []byte {
	var arr [16]value.Value
	v := arr[:0]
	if len(in) > len(arr) {
		v = make([]value.Value, 0, len(in))
	}
	for _, x := range in {
		if swapIdx == 1 {
			x = swap01(x)
		}
		v = append(v, x)
	}
	if k.canonV {
		peers := v
		if k.rs.p.roles == 2 {
			peers = v[1:]
		}
		// Insertion sort: peer suffixes are tiny and this avoids the
		// allocation sort.Slice pays for its reflect swapper.
		for i := 1; i < len(peers); i++ {
			for j := i; j > 0 && peers[j] < peers[j-1]; j-- {
				peers[j], peers[j-1] = peers[j-1], peers[j]
			}
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, x := range v {
		dst = binary.AppendVarint(dst, int64(x))
	}
	return dst
}

// appendTail emits the mask-dependent slot tail: for each role, its
// value-slot instruction (or the wildcard byte when mask bit 2r is
// set) then its ⊥-slot instruction (or the wildcard at bit 2r+1).
func (k *keyer) appendTail(dst []byte, swapIdx int, mask uint8) []byte {
	for ri, pp := range k.parts[swapIdx][:k.nRoles] {
		if mask&(1<<(2*ri)) != 0 {
			dst = append(dst, maskWildcard)
		} else {
			dst = append(dst, pp.full[pp.aOff:pp.aEnd]...)
		}
		if mask&(1<<(2*ri+1)) != 0 {
			dst = append(dst, maskWildcard)
		} else {
			dst = append(dst, pp.full[pp.bOff:pp.bEnd]...)
		}
	}
	return dst
}

// begin fixes the (effMode, vector) pair and builds its prefixes; key
// then produces canonical keys for any mask until the next begin. The
// program head is rebuilt only when effMode changes (mode only evolves
// on a symmetry fallback), so consecutive vectors pay for their own
// bytes alone.
func (k *keyer) begin(effMode explore.Symmetry, in []value.Value) {
	if !k.haveMode || effMode != k.lastMode {
		k.buf0 = k.assembleProg(k.buf0[:0], 0, effMode)
		k.g0len = len(k.buf0)
		if k.sigma {
			k.buf1 = k.assembleProg(k.buf1[:0], 1, effMode)
			k.g1len = len(k.buf1)
		}
		k.haveMode, k.lastMode = true, effMode
	}
	k.buf0 = k.appendVector(k.buf0[:k.g0len], 0, in)
	k.p0len = len(k.buf0)
	if k.sigma {
		k.buf1 = k.appendVector(k.buf1[:k.g1len], 1, in)
		k.p1len = len(k.buf1)
	}
}

// key is the canonical key for one mask: the lexicographic minimum
// over the admissible swap choices (identity always; the 0↔1 swap when
// sigma). Canonical equality is an equivalence — each candidate
// minimizes over its full orbit under the two-element swap group. The
// returned slice aliases a keyer buffer, valid until the next call.
func (k *keyer) key(mask uint8) []byte {
	k.buf0 = k.appendTail(k.buf0[:k.p0len], 0, mask)
	if !k.sigma {
		return k.buf0
	}
	k.buf1 = k.appendTail(k.buf1[:k.p1len], 1, mask)
	if bytes.Compare(k.buf1, k.buf0) < 0 {
		return k.buf1
	}
	return k.buf0
}

// lookup probes the memo table under every dead-slot mask some insert
// has used, smallest mask first. An entry recorded at mask m matches a
// candidate agreeing on every unmasked byte; since the recorded run
// never executed the masked slots, its class and states transfer
// exactly (concurrent canonical-equal recordings agree, so which mask
// hits first is irrelevant to the result).
func (rs *runState) lookup(k *keyer, effMode explore.Symmetry, in []value.Value) (memoEntry, bool) {
	used := rs.p.memo.masks.Load()
	if used == 0 {
		return memoEntry{}, false
	}
	k.begin(effMode, in)
	for m := 0; m < 1<<(2*k.nRoles); m++ {
		if used&(1<<m) == 0 {
			continue
		}
		if e, ok := rs.p.memo.get(k.key(uint8(m))); ok {
			return e, true
		}
	}
	return memoEntry{}, false
}

// insert records one concrete check under the dead-slot mask its
// coverage proves: an action slot whose branch no process ever took
// cannot have influenced the exploration, so it is wildcarded. Partial
// (state-limited) coverage is sound — it reflects exactly the levels
// the truncated run merged, which any key-equal candidate reproduces.
func (rs *runState) insert(k *keyer, effMode explore.Symmetry,
	in []value.Value, r *explore.Report, class memoClass,
) {
	var mask uint8
	if cov := r.Cover; len(cov) > 0 {
		or := func(cs []explore.BranchCover) (b explore.BranchCover) {
			for _, c := range cs {
				b.Bottom = b.Bottom || c.Bottom
				b.Value = b.Value || c.Value
			}
			return b
		}
		roleCov := []explore.BranchCover{or(cov)}
		if rs.p.roles == 2 {
			roleCov = []explore.BranchCover{cov[0], or(cov[1:])}
		}
		for ri, b := range roleCov {
			if !b.Value {
				mask |= 1 << (2 * ri)
			}
			if !b.Bottom {
				mask |= 1 << (2*ri + 1)
			}
		}
	}
	k.begin(effMode, in)
	rs.p.memo.put(string(k.key(mask)),
		mask, memoEntry{class: class, states: r.States})
}

// rolesOf projects a candidate onto its role programs: the
// distinguished process's and the shared peer program for DAC sweeps,
// the single common program for symmetric ones.
func (rs *runState) rolesOf(c candidate) []*machine.Program {
	if rs.p.roles == 2 && len(c.progs) >= 2 {
		return []*machine.Program{c.progs[0], c.progs[1]}
	}
	return []*machine.Program{c.progs[0]}
}

// memoizable reports whether the candidate has the exact layout the
// key schema assumes: peers sharing one program object (so the role
// projection determines the whole system) and the family's uniform
// depth+3 instruction layout (so action-slot PCs are where masking
// expects them).
func (rs *runState) memoizable(c candidate) bool {
	if len(c.progs) == 0 {
		return false
	}
	shared, first := c.progs[0], 1
	if rs.p.roles == 2 {
		if len(c.progs) < 2 {
			return false
		}
		shared, first = c.progs[1], 2
	}
	for _, p := range c.progs[first:] {
		if p != shared {
			return false
		}
	}
	for _, p := range rs.rolesOf(c) {
		if len(p.Instrs) != rs.p.depth+3 {
			return false
		}
	}
	return true
}

// checkMemo is the memoized counterpart of checkCandidate: identical
// verdicts, states, fallback accounting, and error wrapping, with
// recorded checks elided. Symmetry admissibility is settled per vector
// by explore.ProbeSymmetry — exactly the rejection pipeline a concrete
// check runs first — so the mode evolution (and SymmetryFallbacks)
// matches the unmemoized sweep even when no exploration happens.
// Refutations served from memo carry a nil Violation plus the
// re-derivation mode; sweep folding materializes the one failure it
// reports (materializeViolation).
func (rs *runState) checkMemo(ci int) outcome {
	var (
		out     outcome
		c       = rs.cands[ci]
		keyer   = rs.newKeyer(c)
		mode    = rs.opts.Symmetry
		fullHit = true
		// sysBuf backs the lazily built per-vector System: a memo hit
		// settles a vector without ever touching a concrete system, so
		// none is built until a probe or exploration needs one. Reuse is
		// safe only when no prefix snapshot can retain the pointer
		// (SnapshotPrefix keeps its builder's System), i.e. at depth 1.
		sysBuf explore.System
	)
	defer keyer.release()
	for vi, in := range rs.vectors {
		var sys *explore.System
		mkSys := func() *explore.System {
			if rs.p.depth >= 2 {
				return &explore.System{Programs: c.progs, Objects: rs.p.objs, Inputs: in}
			}
			sysBuf = explore.System{Programs: c.progs, Objects: rs.p.objs, Inputs: in}
			return &sysBuf
		}
		probeOK := true
		if mode != explore.SymmetryOff {
			sys = mkSys()
			switch err := explore.ProbeSymmetry(sys, rs.p.tsk, mode); {
			case err == nil:
			case errors.Is(err, explore.ErrNotSymmetric) || errors.Is(err, explore.ErrSymmetryUnsupported):
				mode = explore.SymmetryOff
				out.symFallback = true
			default:
				// A construction error: let the concrete check surface it
				// with the sweep's exact wrapping; nothing is memoized.
				probeOK = false
			}
		}
		effMode := mode
		if probeOK {
			if e, ok := rs.lookup(keyer, effMode, in); ok {
				rs.stats.memoHits.Add(1)
				rs.memoCounter.Inc()
				out.states += e.states
				switch e.class {
				case classLimit:
					if out.inconclusive == nil {
						out.inconclusive = &Inconclusive{
							Assignment: c.asn,
							Inputs:     append([]value.Value(nil), in...),
						}
					}
				case classRefuted:
					out.failure = &Failure{
						Assignment: c.asn,
						Inputs:     append([]value.Value(nil), in...),
					}
					out.inconclusive = nil
					out.vioPending = true
					out.vioMode = effMode
					out.fullHit = fullHit
					return out
				}
				continue
			}
		}
		fullHit = false
		if sys == nil {
			sys = mkSys()
		}
		r, err := rs.explore(ci, vi, sys, effMode)
		if effMode != explore.SymmetryOff &&
			(errors.Is(err, explore.ErrNotSymmetric) || errors.Is(err, explore.ErrSymmetryUnsupported)) {
			// Defensive mirror of checkCandidate's fallback. ProbeSymmetry
			// replays the same pipeline, so this should be unreachable;
			// if it fires, fall back identically and skip the memo.
			mode, effMode = explore.SymmetryOff, explore.SymmetryOff
			out.symFallback = true
			probeOK = false
			r, err = rs.explore(ci, vi, sys, effMode)
		}
		switch {
		case errors.Is(err, explore.ErrStateLimit):
			out.states += r.States
			if probeOK {
				rs.insert(keyer, effMode, in, r, classLimit)
			}
			if out.inconclusive == nil {
				out.inconclusive = &Inconclusive{
					Assignment: c.asn,
					Inputs:     append([]value.Value(nil), in...),
				}
			}
		case err != nil:
			out.err = fmt.Errorf("candidate %v on %v: %w", c.asn.Shapes, in, err)
			return out
		case !r.Solved():
			out.states += r.States
			if probeOK {
				rs.insert(keyer, effMode, in, r, classRefuted)
			}
			out.failure = &Failure{
				Assignment: c.asn,
				Violation:  r.Violations[0],
				Inputs:     append([]value.Value(nil), in...),
			}
			out.inconclusive = nil
			return out
		default:
			out.states += r.States
			if probeOK {
				rs.insert(keyer, effMode, in, r, classSolved)
			}
		}
	}
	out.solver = out.inconclusive == nil
	out.fullHit = fullHit && len(rs.vectors) > 0
	return out
}

// materializeViolation re-checks a memo-served refutation concretely to
// recover the counterexample the unmemoized sweep reports: recorded
// classes transfer across canonical-equal candidates but concrete
// witnesses do not, so the one failure a report surfaces is re-derived
// by this candidate's own (deterministic) check on its refuting vector.
// The re-check is silent — its states were already attributed through
// the memo entry.
func (p *Prepared) materializeViolation(c candidate, o *outcome, opts SweepOptions) error {
	f := o.failure
	sys := &explore.System{Programs: c.progs, Objects: p.objs, Inputs: f.Inputs}
	r, err := explore.Check(sys, p.tsk, explore.Options{
		MaxStates:      opts.MaxStatesPerCandidate,
		Symmetry:       o.vioMode,
		HeartbeatEvery: -1,
		Ctx:            opts.Ctx,
	})
	if err != nil {
		return fmt.Errorf("candidate %v on %v: materializing memoized refutation: %w",
			c.asn.Shapes, f.Inputs, err)
	}
	if len(r.Violations) == 0 {
		return fmt.Errorf("candidate %v on %v: memoized refutation did not reproduce",
			c.asn.Shapes, f.Inputs)
	}
	f.Violation = r.Violations[0]
	o.vioPending = false
	return nil
}

package enumerate

import (
	"fmt"

	"setagree/internal/machine"
	"setagree/internal/obs"
	"setagree/internal/spec"
	"setagree/internal/task"
	"setagree/internal/value"
)

// Prepared is a materialized sweep: the deterministic, post-prefilter
// candidate list of a FalsifyDAC or FalsifySymmetric call, reusable to
// model-check any sub-range of candidates. Candidate order depends
// only on the family (shape enumeration order is fixed and the solo
// prefilter is deterministic), so two processes that Prepare the same
// family agree on every candidate index — the invariant the
// partitioned checking cluster rests on: shards checked on different
// machines reassemble into the Report a single full sweep produces.
type Prepared struct {
	cands  []candidate
	objs   []spec.Spec
	tsk    task.Task
	pruned int

	// depth is the family's invocation depth: the guarded invocation
	// sits at PC depth-1 and the two action slots at depth+1/depth+2 —
	// the layout facts the memoizer's keys and coverage masks rely on.
	depth int
	// roles is the number of distinct role programs per candidate: 2
	// for DAC sweeps (distinguished + shared peer), 1 for symmetric.
	roles int
	// rowWidth is the number of consecutive candidates sharing each
	// leading (distinguished-role) shape: the q-shape count for DAC
	// sweeps, 1 for symmetric ones. Shard ranges aligned to rowWidth
	// keep prefix groups intact, maximizing snapshot reuse per shard.
	rowWidth int
	// sigmaOK marks the family's objects and task eligible for the 0↔1
	// canonical swap; peerOK marks the task eligible for peer input-
	// vector canonicalization (see memo.go). Both are necessary, not
	// sufficient — per-candidate program checks still apply.
	sigmaOK bool
	peerOK  bool
	// memo is the sweep-wide verdict cache, shared by every CheckRange
	// call against this Prepared.
	memo *memoTable
}

// PrepareDAC materializes the candidate list FalsifyDAC would sweep:
// every (p-shape, q-shape) pair surviving the solo prefilter, in
// enumeration order. Only SweepOptions' prefilter knobs (SoloSteps,
// DisableSoloFilter) matter here.
func PrepareDAC(f *Family, n int, opts SweepOptions) (*Prepared, error) {
	opts.fill()
	pFam := *f
	pFam.AllowAbort = true
	qFam := *f
	qFam.AllowAbort = false

	pShapes, err := survivors(&pFam, opts)
	if err != nil {
		return nil, err
	}
	qShapes, err := survivors(&qFam, opts)
	if err != nil {
		return nil, err
	}

	qProgs := make([]*machine.Program, len(qShapes))
	for qi, qs := range qShapes {
		if qProgs[qi], err = qFam.Program(qs, "cand-q"); err != nil {
			return nil, err
		}
	}

	cands := make([]candidate, 0, len(pShapes)*len(qShapes))
	for _, ps := range pShapes {
		pProg, err := pFam.Program(ps, "cand-p")
		if err != nil {
			return nil, err
		}
		for qi, qs := range qShapes {
			progs := make([]*machine.Program, n)
			progs[0] = pProg
			for i := 1; i < n; i++ {
				progs[i] = qProgs[qi]
			}
			cands = append(cands, candidate{
				asn:   Assignment{Shapes: []Shape{ps, qs}},
				progs: progs,
			})
		}
	}
	tsk := task.DAC{N: n, P: 0}
	rowWidth := len(qShapes)
	if rowWidth < 1 {
		rowWidth = 1
	}
	return &Prepared{
		cands:    cands,
		objs:     f.Objects,
		tsk:      tsk,
		pruned:   (len(pFam.Shapes()) - len(pShapes)) + (len(qFam.Shapes()) - len(qShapes)),
		depth:    f.Depth,
		roles:    2,
		rowWidth: rowWidth,
		sigmaOK:  sigmaEligible(f.Objects, tsk),
		peerOK:   task.PeerSymmetric(tsk),
		memo:     newMemoTable(),
	}, nil
}

// PrepareSymmetric materializes the candidate list FalsifySymmetric
// would sweep: every prefilter survivor, run by all processes.
func PrepareSymmetric(f *Family, tsk task.Task, opts SweepOptions) (*Prepared, error) {
	opts.fill()
	fam := *f
	fam.AllowAbort = false
	shapes, err := survivors(&fam, opts)
	if err != nil {
		return nil, err
	}
	cands := make([]candidate, 0, len(shapes))
	for _, s := range shapes {
		prog, err := fam.Program(s, "cand")
		if err != nil {
			return nil, err
		}
		progs := make([]*machine.Program, tsk.Procs())
		for i := range progs {
			progs[i] = prog
		}
		cands = append(cands, candidate{asn: Assignment{Shapes: []Shape{s}}, progs: progs})
	}
	return &Prepared{
		cands:    cands,
		objs:     f.Objects,
		tsk:      tsk,
		pruned:   len(fam.Shapes()) - len(shapes),
		depth:    f.Depth,
		roles:    1,
		rowWidth: 1,
		sigmaOK:  sigmaEligible(f.Objects, tsk),
		peerOK:   task.PeerSymmetric(tsk),
		memo:     newMemoTable(),
	}, nil
}

// Candidates is the number of materialized candidates (the sweep's
// index space is [0, Candidates())).
func (p *Prepared) Candidates() int { return len(p.cands) }

// Pruned is the number of shapes the solo prefilter rejected.
func (p *Prepared) Pruned() int { return p.pruned }

// RowWidth is the number of consecutive candidates sharing each leading
// shape (the q-shape count of a DAC sweep, 1 for symmetric sweeps).
// Shard boundaries aligned to multiples of RowWidth keep prefix groups
// whole, which maximizes cross-candidate reuse within each shard;
// alignment is an efficiency hint only — verdicts are range-independent.
func (p *Prepared) RowWidth() int { return p.rowWidth }

// Assignment returns candidate i's protocol assignment.
func (p *Prepared) Assignment(i int) Assignment { return p.cands[i].asn }

// RangeSolver is one candidate of a checked range that passed every
// model check.
type RangeSolver struct {
	// Index is the global candidate index.
	Index int
	// Assignment is the solving candidate.
	Assignment Assignment
}

// RangeInconclusive is one candidate of a checked range whose model
// check hit the state limit without any vector refuting it.
type RangeInconclusive struct {
	// Index is the global candidate index.
	Index int
	// Assignment is the unsettled candidate.
	Assignment Assignment
	// Inputs is the first input vector whose check hit the state limit.
	Inputs []value.Value
}

// RangeFailure is the refuted candidate with the lowest index in a
// checked range, with its counterexample rendered.
type RangeFailure struct {
	// Index is the global candidate index.
	Index int
	// Assignment is the refuted candidate.
	Assignment Assignment
	// Inputs is the input vector it failed on.
	Inputs []value.Value
	// Violation is the checker's counterexample, rendered.
	Violation string
}

// RangeReport is the outcome of checking candidates [Lo, Hi) of a
// prepared sweep. It is a pure function of (family, task, vectors,
// range, check options) — no timing or host identity — and carries
// global candidate indices, so disjoint ranges merge deterministically.
type RangeReport struct {
	// Lo and Hi bound the checked range, [Lo, Hi).
	Lo, Hi int
	// Pruned is the sweep-global prefilter count (identical in every
	// range of the same prepared sweep; carried for merge validation).
	Pruned int
	// States is the total number of configurations explored checking
	// this range.
	States int
	// SymmetryFallbacks counts candidates in the range re-checked
	// unreduced (see Report.SymmetryFallbacks).
	SymmetryFallbacks int
	// Solvers lists candidates in the range that passed every check,
	// in candidate order.
	Solvers []RangeSolver
	// Inconclusive lists unsettled candidates in the range, in
	// candidate order.
	Inconclusive []RangeInconclusive
	// Failure is the lowest-indexed refuted candidate in the range,
	// nil when every candidate solved or stayed unsettled.
	Failure *RangeFailure
}

// CheckRange model-checks candidates [lo, hi) on every input vector
// and returns the range's outcome. The per-candidate verdicts are
// identical to the ones a full FalsifyDAC/FalsifySymmetric sweep
// computes (the same checkCandidate runs with the same options), so
// checking a partition of [0, Candidates()) range by range and merging
// reproduces the full sweep's Report exactly. Metrics, events (with
// global candidate indices), progress callbacks, and cancellation all
// behave as in a full sweep; one terminal event (sweep.done or
// sweep.error) is emitted per call.
func (p *Prepared) CheckRange(lo, hi int, inputVectors [][]value.Value, opts SweepOptions) (*RangeReport, error) {
	opts.fill()
	if lo < 0 || hi > len(p.cands) || lo > hi {
		return nil, fmt.Errorf("enumerate: range [%d,%d) outside candidates [0,%d)", lo, hi, len(p.cands))
	}
	outcomes, stats, err := runCandidates(p, lo, hi, inputVectors, opts)
	if err != nil {
		return nil, err
	}
	rr := &RangeReport{Lo: lo, Hi: hi, Pruned: p.pruned}
	var sample *outcome
	sampleIdx := -1
	for i := range outcomes {
		o := &outcomes[i]
		rr.States += o.states
		if o.symFallback {
			rr.SymmetryFallbacks++
		}
		switch {
		case o.failure != nil:
			if rr.Failure == nil {
				sample, sampleIdx = o, lo+i
				rr.Failure = &RangeFailure{
					Index:      lo + i,
					Assignment: o.failure.Assignment,
					Inputs:     o.failure.Inputs,
				}
			}
		case o.inconclusive != nil:
			rr.Inconclusive = append(rr.Inconclusive, RangeInconclusive{
				Index:      lo + i,
				Assignment: o.inconclusive.Assignment,
				Inputs:     o.inconclusive.Inputs,
			})
		case o.solver:
			rr.Solvers = append(rr.Solvers, RangeSolver{Index: lo + i, Assignment: p.cands[lo+i].asn})
		}
	}
	if sample != nil {
		if sample.vioPending {
			if err := p.materializeViolation(p.cands[sampleIdx], sample, opts); err != nil {
				terminalError(opts, stats, err)
				return nil, err
			}
		}
		rr.Failure.Violation = sample.failure.Violation.Error()
	}
	if opts.Events != nil {
		opts.Events.Emit("sweep.done", obs.Fields{
			"lo":                 lo,
			"hi":                 hi,
			"candidates":         hi - lo,
			"states":             rr.States,
			"inconclusive":       len(rr.Inconclusive),
			"solvers":            len(rr.Solvers),
			"symmetry_fallbacks": rr.SymmetryFallbacks,
			"memo_hits":          stats.memoHits,
			"dedup_candidates":   stats.dedupCandidates,
			"fork_states_saved":  stats.forkStatesSaved,
		})
	}
	return rr, nil
}
